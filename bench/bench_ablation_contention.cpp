// Ablation: contention management under skew (DESIGN.md E9; ISSUE 4).
//
// Medley resolves conflicts eagerly (abort the other transaction on
// sight), which guarantees only obstruction freedom; progress under
// contention comes from the execution-policy layer (core/tx_exec.hpp).
// Two sweeps share this binary:
//
//   ablation_contention/...   the original abort-landscape map —
//                             transaction size x key skew (uniform vs
//                             Zipf 0.9 / 0.99) under the default policy
//                             (NoOp contention management);
//   ablation_cm/<CM>/...      the contention-manager comparison: the SAME
//                             skewed workload executed under {NoOp,
//                             ExpBackoff, Karma} x thread counts. Rows
//                             are distinguishable by the CM name in the
//                             benchmark name and the `cm` counter; each
//                             row reports committed throughput plus
//                             aborts/retries per committed transaction
//                             split by reason.
//
// Recorded output: BENCH_ablation_cm.json (see README). The CI smoke step
// runs the cm sweep at MEDLEY_YCSB_SMOKE scale.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ds/michael_hashtable.hpp"
#include "harness.hpp"

namespace mb = medley::bench;
using mb::Config;

namespace {

struct System {
  medley::TxManager mgr;
  medley::TxExecutor exec;
  std::unique_ptr<medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>
      map;

  explicit System(medley::TxPolicy policy = {}) : exec(std::move(policy)) {
    map = std::make_unique<
        medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>(&mgr,
                                                                    2048);
    for (std::uint64_t k = 1; k <= 1024; k += 2) {
      map->insert(k, k);
    }
  }
};
System* g_sys = nullptr;

/// Contention managers under comparison; index = state.range(2) of the cm
/// sweep (0 for the legacy ablation_contention rows).
std::shared_ptr<medley::ContentionManager> make_cm(int which) {
  switch (which) {
    case 1: return std::make_shared<medley::ExpBackoffCM>();
    case 2: return std::make_shared<medley::KarmaCM>();
    default: return std::make_shared<medley::NoOpCM>();
  }
}

void bm_contention(benchmark::State& state) {
  const auto tx_ops = static_cast<std::uint64_t>(state.range(0));
  const double theta = static_cast<double>(state.range(1)) / 100.0;
  // Small key range concentrates conflicts further under skew.
  const std::uint64_t keys = 1024;
  medley::util::ZipfGenerator zipf(keys, theta, mb::thread_seed(state));
  medley::util::Xoshiro256 rng(mb::thread_seed(state) ^ 0x1234);

  medley::TxStats st;
  for (auto _ : state) {
    st += g_sys->exec
              .execute(g_sys->mgr,
                       [&] {
                         for (std::uint64_t i = 0; i < tx_ops; i++) {
                           const std::uint64_t k = zipf.next() + 1;
                           if (rng.next() & 1) {
                             g_sys->map->put(k, k);
                           } else {
                             g_sys->map->get(k);
                           }
                         }
                       })
              .stats;
  }
  state.SetItemsProcessed(state.iterations());
  const auto per_tx = [&](std::uint64_t n) {
    return benchmark::Counter(static_cast<double>(n),
                              benchmark::Counter::kAvgIterations);
  };
  state.counters["aborts_per_tx"] = per_tx(st.aborts());
  state.counters["retries_per_tx"] = per_tx(st.retries);
  state.counters["aborts_conflict"] = per_tx(st.conflict_aborts);
  state.counters["aborts_validation"] = per_tx(st.validation_aborts);
  state.counters["tx_ops"] = static_cast<double>(tx_ops);
  state.counters["zipf_x100"] = static_cast<double>(state.range(1));
  state.counters["cm"] = benchmark::Counter(
      static_cast<double>(state.range(2)), benchmark::Counter::kAvgThreads);
}

void setup_sys(const benchmark::State& state) {
  g_sys = new System(
      medley::TxPolicy::with(make_cm(static_cast<int>(state.range(2)))));
}
void teardown_sys(const benchmark::State&) {
  delete g_sys;
  g_sys = nullptr;
}

/// Legacy abort-landscape map (NoOp policy), unchanged row names.
void register_landscape() {
  for (int ops : {1, 4, 10}) {
    for (int theta : {0, 90, 99}) {
      std::string name = "ablation_contention/ops:" + std::to_string(ops) +
                         "/zipf:0." + (theta == 0 ? "00" : std::to_string(theta));
      auto* b = benchmark::RegisterBenchmark(name.c_str(), bm_contention);
      b->Args({ops, theta, /*cm=*/0});
      b->Setup(setup_sys)->Teardown(teardown_sys);
      b->UseRealTime()->MinTime(Config::get().min_time);
      for (int t : Config::get().threads) b->Threads(t);
    }
  }
}

/// The contention-manager sweep: {NoOp, ExpBackoff, Karma} x threads on
/// the high-contention corners (10-op transactions, Zipf 0.90 and 0.99).
void register_cm_sweep() {
  const bool smoke = [] {
    const char* s = std::getenv("MEDLEY_YCSB_SMOKE");
    return s != nullptr && s[0] == '1';
  }();
  const double min_time = smoke ? 0.05 : Config::get().min_time;
  const std::vector<int> threads =
      smoke ? std::vector<int>{2} : Config::get().threads;
  static const char* kCmNames[] = {"NoOp", "ExpBackoff", "Karma"};
  for (int cm = 0; cm < 3; cm++) {
    for (int theta : {90, 99}) {
      std::string name = std::string("ablation_cm/") + kCmNames[cm] +
                         "/ops:10/zipf:0." + std::to_string(theta);
      auto* b = benchmark::RegisterBenchmark(name.c_str(), bm_contention);
      b->Args({10, theta, cm});
      b->Setup(setup_sys)->Teardown(teardown_sys);
      b->UseRealTime()->MinTime(min_time);
      for (int t : threads) b->Threads(t);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_landscape();
  register_cm_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Ablation: eager contention management under skew (DESIGN.md E9).
//
// Medley resolves conflicts eagerly (abort the other transaction on
// sight), which guarantees only obstruction freedom; the paper defers
// lazy/lock-free contention management to future work. This bench maps
// the abort landscape: transaction size x key skew (uniform vs Zipf 0.9 /
// 0.99) on the Medley hash table, reporting committed throughput and
// aborts per committed transaction.

#include <benchmark/benchmark.h>

#include "ds/michael_hashtable.hpp"
#include "harness.hpp"

namespace mb = medley::bench;
using mb::Config;

namespace {

struct System {
  medley::TxManager mgr;
  std::unique_ptr<medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>
      map;
};
System* g_sys = nullptr;

void bm_contention(benchmark::State& state) {
  const auto tx_ops = static_cast<std::uint64_t>(state.range(0));
  const double theta = static_cast<double>(state.range(1)) / 100.0;
  const Config& cfg = Config::get();
  // Small key range concentrates conflicts further under skew.
  const std::uint64_t keys = 1024;
  medley::util::ZipfGenerator zipf(keys, theta, mb::thread_seed(state));
  medley::util::Xoshiro256 rng(mb::thread_seed(state) ^ 0x1234);
  (void)cfg;

  std::uint64_t aborts = 0;
  for (auto _ : state) {
    for (;;) {
      try {
        g_sys->mgr.txBegin();
        for (std::uint64_t i = 0; i < tx_ops; i++) {
          const std::uint64_t k = zipf.next() + 1;
          if (rng.next() & 1) {
            g_sys->map->put(k, k);
          } else {
            g_sys->map->get(k);
          }
        }
        g_sys->mgr.txEnd();
        break;
      } catch (const medley::TransactionAborted&) {
        aborts++;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["aborts_per_tx"] = benchmark::Counter(
      static_cast<double>(aborts), benchmark::Counter::kAvgIterations);
  state.counters["tx_ops"] = static_cast<double>(tx_ops);
  state.counters["zipf_x100"] = static_cast<double>(state.range(1));
}

void register_all() {
  for (int ops : {1, 4, 10}) {
    for (int theta : {0, 90, 99}) {
      std::string name = "ablation_contention/ops:" + std::to_string(ops) +
                         "/zipf:0." + (theta == 0 ? "00" : std::to_string(theta));
      auto* b = benchmark::RegisterBenchmark(name.c_str(), bm_contention);
      b->Args({ops, theta});
      b->Setup([](const benchmark::State&) {
        g_sys = new System();
        g_sys->map = std::make_unique<
            medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>(
            &g_sys->mgr, 2048);
        for (std::uint64_t k = 1; k <= 1024; k += 2) {
          g_sys->map->insert(k, k);
        }
      });
      b->Teardown([](const benchmark::State&) {
        delete g_sys;
        g_sys = nullptr;
      });
      b->UseRealTime()->MinTime(Config::get().min_time);
      for (int t : Config::get().threads) b->Threads(t);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 8 reproduction: throughput of transactional skiplists.
//
// # PAPER (Fig. 8):
// #  - Medley wins at every thread count; LFTT is the closest rival but
// #    trails 1.4-2x on the write-only mix and 2-2.7x on read-mostly
// #    (visible readers hurt LFTT as the get fraction grows).
// #  - TDSL and OneFile sit roughly an order of magnitude below Medley
// #    and do not scale; TDSL does not beat OneFile (OneFile's read-set-
// #    free reads compensate for its serialization).
// #  - txMontage is nearly as fast as Medley on the skiplist (lower
// #    structural concurrency hides the persistence cost).
//
// Systems: Medley (Fraser skiplist), txMontage (persistent skiplist),
// OneFile / POneFile (sequential skiplist under STM), TDSL (transactional
// skiplist), LFTT (lock-free transactional skiplist, static txs, set
// semantics).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "ds/fraser_skiplist.hpp"
#include "fig_common.hpp"
#include "montage/txmontage.hpp"
#include "stm/lftt_skiplist.hpp"
#include "stm/onefile_map.hpp"
#include "stm/tdsl_skiplist.hpp"

namespace mb = medley::bench;
using mb::Config;
using mb::OpKind;
using mb::Ratio;

namespace {

struct MedleySkipAdapter {
  static const char* name() { return "Medley"; }

  medley::TxManager mgr;
  medley::TxExecutor exec;  // default policy = pure eager retry (the paper)
  std::unique_ptr<medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>>
      map;

  void setup(const Config& cfg) {
    map = std::make_unique<
        medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>>(&mgr);
    mb::preload(cfg, [&](std::uint64_t k) { return map->insert(k, k); });
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    const auto res = exec.execute(mgr, [&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
    });
    return res.stats.aborts();
  }
};

struct TxMontageSkipAdapter {
  static const char* name() { return "txMontage"; }

  std::string path;
  std::unique_ptr<medley::montage::PRegion> region;
  std::unique_ptr<medley::montage::EpochSys> es;
  medley::TxManager mgr;
  // Capacity aborts wait on the epoch advancer; ExpBackoffCM yields to it.
  medley::TxExecutor exec{
      medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>())};
  std::unique_ptr<medley::montage::TxMontageSkiplist> map;

  void setup(const Config& cfg) {
    path = "/tmp/medley_bench_fig8.img";
    std::remove(path.c_str());
    region = std::make_unique<medley::montage::PRegion>(
        path, cfg.keyspace * 2 + (1u << 16));
    es = std::make_unique<medley::montage::EpochSys>(region.get());
    es->attach(&mgr);
    map = std::make_unique<medley::montage::TxMontageSkiplist>(&mgr, es.get(),
                                                               /*sid=*/1);
    mb::preload(cfg, [&](std::uint64_t k) {
      return *exec.execute(mgr, [&] { return map->insert(k, k); }).value;
    });
    es->start_advancer(10);
  }

  ~TxMontageSkipAdapter() {
    if (es) es->stop_advancer();
    map.reset();
    es.reset();
    region.reset();
    std::remove(path.c_str());
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    const auto res = exec.execute(mgr, [&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
    });
    return res.stats.aborts();
  }
};

template <bool kPersistent>
struct OneFileSkipAdapter {
  static const char* name() { return kPersistent ? "POneFile" : "OneFile"; }

  std::unique_ptr<medley::stm::OneFileSTM> stm;
  std::unique_ptr<medley::stm::OFSkipList<std::uint64_t, std::uint64_t>> map;

  void setup(const Config& cfg) {
    stm = std::make_unique<medley::stm::OneFileSTM>(kPersistent);
    map = std::make_unique<
        medley::stm::OFSkipList<std::uint64_t, std::uint64_t>>(stm.get());
    mb::preload(cfg, [&](std::uint64_t k) { return map->insert(k, k); });
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    stm->updateTx([&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
    });
    return 0;
  }
};

struct TdslAdapter {
  static const char* name() { return "TDSL"; }

  std::unique_ptr<medley::stm::TdslSkiplist<std::uint64_t, std::uint64_t>>
      map;

  void setup(const Config& cfg) {
    map = std::make_unique<
        medley::stm::TdslSkiplist<std::uint64_t, std::uint64_t>>();
    mb::preload(cfg, [&](std::uint64_t k) { return map->insert(k, k); });
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    std::uint64_t aborts = 0;
    for (;;) {
      map->txBegin();
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
      if (map->txCommit()) return aborts;
      aborts++;
    }
  }
};

struct LfttAdapter {
  static const char* name() { return "LFTT"; }

  std::unique_ptr<medley::stm::LfttSkiplist> map;

  void setup(const Config& cfg) {
    map = std::make_unique<medley::stm::LfttSkiplist>();
    mb::preload(cfg, [&](std::uint64_t k) { return map->insert(k); });
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    // LFTT supports only static transactions: the op list is fixed up
    // front. A semantically failing op (insert of a present key, etc.)
    // aborts the whole transaction by design — that outcome counts as the
    // transaction completing, exactly as in the LFTT paper's benchmarks.
    const std::uint64_t n = mb::tx_size(rng);
    std::vector<medley::stm::LfttSkiplist::Op> ops;
    ops.reserve(n);
    for (std::uint64_t i = 0; i < n; i++) {
      const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
      switch (mb::pick_op(r, rng)) {
        case OpKind::Get:
          ops.push_back({medley::stm::LfttSkiplist::OpType::Contains, k});
          break;
        case OpKind::Insert:
          ops.push_back({medley::stm::LfttSkiplist::OpType::Insert, k});
          break;
        case OpKind::Remove:
          ops.push_back({medley::stm::LfttSkiplist::OpType::Remove, k});
          break;
      }
    }
    map->executeTx(ops);
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  mb::register_system<MedleySkipAdapter>("fig8");
  mb::register_system<TxMontageSkipAdapter>("fig8");
  mb::register_system<OneFileSkipAdapter<false>>("fig8");
  mb::register_system<OneFileSkipAdapter<true>>("fig8");
  mb::register_system<TdslAdapter>("fig8");
  mb::register_system<LfttAdapter>("fig8");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 9 reproduction: TPC-C (newOrder + payment, 1:1) on skiplists.
//
// # PAPER (Fig. 9):
// #  - Transactions here are large (dozens of ops), which hammers
// #    OneFile's serialized commits: Medley outperforms it by up to 45x
// #    and keeps scaling.
// #  - TDSL sits between OneFile and Medley, without scaling.
// #  - txMontage (payloads on NVM) reaches roughly a fifth of Medley but
// #    still ~4x transient OneFile. (POneFile never finished the paper's
// #    warm-up; we do not run it here either.)
// #  - LFTT cannot express TPC-C (static transactions only) — absent by
// #    construction, as in the paper.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "harness.hpp"
#include "tpcc/tpcc_backend.hpp"
#include "tpcc/tpcc_workload.hpp"

namespace mb = medley::bench;
namespace mt = medley::tpcc;

namespace {

mt::Scale bench_scale() {
  mt::Scale s;
  const char* paper = std::getenv("MEDLEY_PAPER");
  if (paper != nullptr && paper[0] == '1') {
    s.warehouses = 4;
    s.districts_per_wh = 10;
    s.customers_per_district = 3000;
    s.items = 10000;
  } else {
    s.warehouses = 2;
    s.districts_per_wh = 10;
    s.customers_per_district = 100;
    s.items = 500;
  }
  return s;
}

template <typename Backend>
struct TpccSystem {
  std::unique_ptr<Backend> backend;
  std::unique_ptr<mt::Workload<Backend>> workload;
  mt::Scale scale;

  template <typename... Args>
  void setup(Args&&... args) {
    scale = bench_scale();
    backend = std::make_unique<Backend>(std::forward<Args>(args)...);
    workload = std::make_unique<mt::Workload<Backend>>(*backend, scale);
    workload->load();
  }

  /// One committed TPC-C transaction (1:1 mix); the backend's executor
  /// retries internally and returns the attempt accounting.
  medley::TxStats tx(mt::Generator& gen, std::uint64_t tid,
                     std::uint64_t& hseq) {
    return gen.coin() ? workload->new_order(gen)
                      : workload->payment(gen, tid, hseq);
  }
};

template <typename System>
void run_tpcc(benchmark::State& state, System* sys) {
  mt::Generator gen(sys->scale, mb::thread_seed(state));
  std::uint64_t hseq = 0;
  medley::TxStats st;
  const auto tid = static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    st += sys->tx(gen, tid, hseq);
  }
  state.SetItemsProcessed(state.iterations());
  // Aborts split by terminal reason of each failed attempt (OneFile's
  // internal retries are opaque and report zero; TDSL commit failures
  // count as conflicts).
  const auto per_tx = [&](std::uint64_t n) {
    return benchmark::Counter(static_cast<double>(n),
                              benchmark::Counter::kAvgIterations);
  };
  state.counters["aborts_per_tx"] = per_tx(st.aborts());
  state.counters["aborts_conflict"] = per_tx(st.conflict_aborts);
  state.counters["aborts_validation"] = per_tx(st.validation_aborts);
  state.counters["aborts_capacity"] = per_tx(st.capacity_aborts);
}

TpccSystem<mt::MedleyBackend>* g_medley = nullptr;
TpccSystem<mt::OneFileBackend>* g_onefile = nullptr;
TpccSystem<mt::TdslBackend>* g_tdsl = nullptr;
TpccSystem<mt::TxMontageBackend>* g_txmontage = nullptr;
std::unique_ptr<medley::montage::PRegion> g_region;

void register_all() {
  {
    auto* b = benchmark::RegisterBenchmark(
        "fig9/Medley/tpcc",
        [](benchmark::State& s) { run_tpcc(s, g_medley); });
    b->Setup([](const benchmark::State&) {
      g_medley = new TpccSystem<mt::MedleyBackend>();
      g_medley->setup();
    });
    b->Teardown([](const benchmark::State&) {
      delete g_medley;
      g_medley = nullptr;
    });
    mb::apply_thread_sweep(b);
  }
  {
    auto* b = benchmark::RegisterBenchmark(
        "fig9/OneFile/tpcc",
        [](benchmark::State& s) { run_tpcc(s, g_onefile); });
    b->Setup([](const benchmark::State&) {
      g_onefile = new TpccSystem<mt::OneFileBackend>();
      g_onefile->setup();
    });
    b->Teardown([](const benchmark::State&) {
      delete g_onefile;
      g_onefile = nullptr;
    });
    mb::apply_thread_sweep(b);
  }
  {
    auto* b = benchmark::RegisterBenchmark(
        "fig9/TDSL/tpcc", [](benchmark::State& s) { run_tpcc(s, g_tdsl); });
    b->Setup([](const benchmark::State&) {
      g_tdsl = new TpccSystem<mt::TdslBackend>();
      g_tdsl->setup();
    });
    b->Teardown([](const benchmark::State&) {
      delete g_tdsl;
      g_tdsl = nullptr;
    });
    mb::apply_thread_sweep(b);
  }
  {
    auto* b = benchmark::RegisterBenchmark(
        "fig9/txMontage/tpcc",
        [](benchmark::State& s) { run_tpcc(s, g_txmontage); });
    b->Setup([](const benchmark::State&) {
      std::remove("/tmp/medley_bench_fig9.img");
      g_region = std::make_unique<medley::montage::PRegion>(
          "/tmp/medley_bench_fig9.img", 1u << 22);
      g_txmontage = new TpccSystem<mt::TxMontageBackend>();
      g_txmontage->setup(g_region.get());
      g_txmontage->backend->es.start_advancer(10);
    });
    b->Teardown([](const benchmark::State&) {
      g_txmontage->backend->es.stop_advancer();
      delete g_txmontage;
      g_txmontage = nullptr;
      g_region.reset();
      std::remove("/tmp/medley_bench_fig9.img");
    });
    mb::apply_thread_sweep(b);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#pragma once
// Shared registration machinery for the figure benchmarks: each "system"
// is an adapter with
//    void setup(const Config&)            — construct + preload
//    std::uint64_t tx(rng, ratio, cfg)    — run ONE committed transaction
//                                           of 1-10 ops, returning the
//                                           number of aborted attempts
// and gets registered for every ratio x thread-count combination. The
// google-benchmark row name is System/ratio; `items_per_second` is the
// paper's y-axis (committed txn/s), `aborts_per_tx` the contention gauge.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "harness.hpp"
#include "obs/histogram.hpp"
#include "util/timing.hpp"

namespace medley::bench {

/// Tail-latency recorder for the figure benches: one mergeable per-thread
/// obs::Histogram per op kind, one for whole transactions and one for
/// attempts-per-transaction. Threads record with zero shared writes (the
/// histogram's per-thread slots); after its timing loop, thread 0 folds
/// every thread's buckets and attaches p50/p99/p999 counters to the row —
/// which is how the tails land in the google-benchmark JSON
/// (BENCH_latency_tail.json). tx_hist()/attempts_hist() exist to be wired
/// straight into a TxPolicy, so the executor's own instrumentation (one
/// rdtsc pair per transaction) produces the transaction-level tails.
class TailRecorder {
 public:
  /// One individual operation took `ns` nanoseconds end to end.
  void record(OpKind op, std::uint64_t ns) {
    hist_[static_cast<std::size_t>(op)].record(ns);
  }

  /// Wire these into TxPolicy::latency_hist / attempts_hist.
  obs::Histogram* tx_hist() { return &tx_; }
  obs::Histogram* attempts_hist() { return &attempts_; }

  /// Thread 0 calls this once, after its own timing loop. Late samples
  /// from threads still draining their final iterations are the same
  /// accepted raciness as emit_shard_counters (tails move negligibly).
  void emit(benchmark::State& state) const {
    static constexpr const char* kOp[] = {"get", "insert", "remove"};
    for (std::size_t i = 0; i < 3; i++) {
      emit_quantiles(state, kOp[i], "_ns", hist_[i].snapshot());
    }
    emit_quantiles(state, "tx", "_ns", tx_.snapshot());
    emit_quantiles(state, "attempts", "", attempts_.snapshot());
  }

  /// ns per TSC tick, calibrated once — call in setup, never in the loop.
  static double ns_per_tick() { return util::tsc_ns_per_tick(); }

 private:
  static void emit_quantiles(benchmark::State& state, const char* name,
                             const char* unit,
                             const obs::HistogramSnapshot& s) {
    if (s.count == 0) return;
    const std::string base = std::string(name);
    state.counters[base + "_p50" + unit] =
        static_cast<double>(s.quantile(0.50));
    state.counters[base + "_p99" + unit] =
        static_cast<double>(s.quantile(0.99));
    state.counters[base + "_p999" + unit] =
        static_cast<double>(s.quantile(0.999));
  }

  obs::Histogram hist_[3];  // indexed by OpKind
  obs::Histogram tx_;
  obs::Histogram attempts_;
};

template <typename Adapter>
class SystemHolder {
 public:
  static std::unique_ptr<Adapter>& get() {
    static std::unique_ptr<Adapter> sys;
    return sys;
  }
};

template <typename Adapter>
void run_fig_benchmark(benchmark::State& state) {
  Adapter& sys = *SystemHolder<Adapter>::get();
  const Ratio& r = ratios()[static_cast<std::size_t>(state.range(0))];
  const Config& cfg = Config::get();
  util::Xoshiro256 rng(thread_seed(state));
  std::uint64_t aborts = 0;
  for (auto _ : state) {
    aborts += sys.tx(rng, r, cfg);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["aborts_per_tx"] = benchmark::Counter(
      static_cast<double>(aborts), benchmark::Counter::kAvgIterations);
}

template <typename Adapter>
void register_system(const char* figure) {
  for (std::size_t ri = 0; ri < ratios().size(); ri++) {
    std::string name = std::string(figure) + "/" + Adapter::name() +
                       "/ratio:" + ratios()[ri].label;
    auto* b = benchmark::RegisterBenchmark(name.c_str(),
                                           run_fig_benchmark<Adapter>);
    b->Arg(static_cast<int>(ri));
    b->Setup([](const benchmark::State&) {
      auto& slot = SystemHolder<Adapter>::get();
      slot = std::make_unique<Adapter>();
      slot->setup(Config::get());
    });
    b->Teardown(
        [](const benchmark::State&) { SystemHolder<Adapter>::get().reset(); });
    apply_thread_sweep(b);
  }
}

}  // namespace medley::bench

#pragma once
// Shared registration machinery for the figure benchmarks: each "system"
// is an adapter with
//    void setup(const Config&)            — construct + preload
//    std::uint64_t tx(rng, ratio, cfg)    — run ONE committed transaction
//                                           of 1-10 ops, returning the
//                                           number of aborted attempts
// and gets registered for every ratio x thread-count combination. The
// google-benchmark row name is System/ratio; `items_per_second` is the
// paper's y-axis (committed txn/s), `aborts_per_tx` the contention gauge.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "harness.hpp"

namespace medley::bench {

template <typename Adapter>
class SystemHolder {
 public:
  static std::unique_ptr<Adapter>& get() {
    static std::unique_ptr<Adapter> sys;
    return sys;
  }
};

template <typename Adapter>
void run_fig_benchmark(benchmark::State& state) {
  Adapter& sys = *SystemHolder<Adapter>::get();
  const Ratio& r = ratios()[static_cast<std::size_t>(state.range(0))];
  const Config& cfg = Config::get();
  util::Xoshiro256 rng(thread_seed(state));
  std::uint64_t aborts = 0;
  for (auto _ : state) {
    aborts += sys.tx(rng, r, cfg);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["aborts_per_tx"] = benchmark::Counter(
      static_cast<double>(aborts), benchmark::Counter::kAvgIterations);
}

template <typename Adapter>
void register_system(const char* figure) {
  for (std::size_t ri = 0; ri < ratios().size(); ri++) {
    std::string name = std::string(figure) + "/" + Adapter::name() +
                       "/ratio:" + ratios()[ri].label;
    auto* b = benchmark::RegisterBenchmark(name.c_str(),
                                           run_fig_benchmark<Adapter>);
    b->Arg(static_cast<int>(ri));
    b->Setup([](const benchmark::State&) {
      auto& slot = SystemHolder<Adapter>::get();
      slot = std::make_unique<Adapter>();
      slot->setup(Config::get());
    });
    b->Teardown(
        [](const benchmark::State&) { SystemHolder<Adapter>::get().reset(); });
    apply_thread_sweep(b);
  }
}

}  // namespace medley::bench

// YCSB-style serving-layer workloads over MedleyStore (ROADMAP "new
// workloads"): the first benchmark family driving the composed hot path
// (hash primary + ordered secondary + change feed, one transaction per
// store operation).
//
// Workloads (the YCSB core suite; zipfian theta 0.99):
//   A update-heavy   50% read / 50% put
//   B read-mostly    95% read /  5% put
//   C read-only     100% read
//   D read-latest    95% read skewed to recent keys / 5% insert (new keys)
//   E short-ranges   95% scan (length 1..64) / 5% insert
//   F read-modify-write  50% read / 50% atomic rmw
//
// Systems:
//   MedleyStore         — feed enabled; every mutator drains up to 2 feed
//                         entries inline after each mutation (a replication
//                         tap that keeps up), so the feed's totally ordered
//                         tail contention is fully priced in;
//   MedleyStore-nofeed  — identical but feed disabled: the ablation
//                         isolating what the ordered change feed costs;
//   PersistentMedleyStore — txMontage indexes (epoch advancer at 10 ms):
//                         the durability premium on the same workloads;
//   ShardedMedleyStore-{1,4,8} — hash-partitioned shards, one TxManager +
//                         feed per shard under a shared TxDomain: the
//                         contention ablation for the sharding axis
//                         (shards:1 prices the sharded dispatch itself).
//                         Rows carry per-shard + aggregate abort/retry
//                         counters (aborts_shard<i> etc., absolute since
//                         setup) next to the per-thread exact rates;
//   RangeShardedMedleyStore-{4,8} — contiguous key-range shards
//                         (boundaries seeded by sampling the preloaded
//                         keys): scans descend only into the shards their
//                         window intersects, so E is the headline and A-D
//                         confirm point ops don't regress vs the hash
//                         store. Rows additionally carry keys_shard<i>
//                         (commit-exact per-shard key counts), making the
//                         insert-tail skew of workloads D/E — fresh keys
//                         all land in the LAST range shard — observable
//                         in the recorded JSON (BENCH_ycsb_range.json);
//   ShardedMedleyStore-{1,4,8}-comb / RangeShardedMedleyStore-4-comb —
//                         identical stores with StoreConfig::combining on:
//                         top-level point mutations are group-committed in
//                         flat-combining batches (one descriptor + one
//                         commit CAS per batch, src/core/combiner.hpp).
//                         Registered for the write-bearing mixes A/B — the
//                         group-commit ablation (BENCH_ycsb_combining.json);
//                         rows carry combined_{ops,batches}, whose ratio is
//                         the realized amortization factor;
//   MedleyStore-ro / ShardedMedleyStore-{1,4,8}-ro — identical stores
//                         with StoreConfig::read_only_reads: get/scan run
//                         as validation-only snapshot transactions (no
//                         descriptor publication, no read-set tracking).
//                         Registered for the read-heavy mixes B/C only —
//                         the read-path ablation (BENCH_ycsb_readonly.json);
//   RawHash             — an untracked MichaelHashTable probed outside any
//                         transaction: the floor a YCSB-C read can ever
//                         reach. The read-only mode's acceptance bar is
//                         staying within ~2x of this row.
//
// Output is google-benchmark JSON in the same shape as the figure benches:
// items_per_second = committed store operations/s; aborts_per_tx and
// retries_per_tx from exact per-thread StoreStats deltas.
//
// Scale: default is the CI scale; MEDLEY_PAPER=1 for paper scale;
// MEDLEY_YCSB_SMOKE=1 for the CI smoke step (tiny key space, 2 threads).
//
// Observability: rows always carry per-reason abort rates
// (aborts_{conflict,validation,capacity,user}_per_tx, exact per-thread
// StoreStats deltas). MEDLEY_YCSB_METRICS=1 additionally turns on
// StoreConfig::metrics in every store adapter (the overhead A/B knob for
// the paired metrics-on/off acceptance runs), and with MEDLEY_METRICS_OUT
// set, each store's Prometheus exposition is written there at teardown
// (last store wins — the file is a valid single exposition either way),
// which is what CI pipes through tools/check_metrics.py.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "montage/txmontage.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"

namespace mb = medley::bench;
namespace ms = medley::store;
using DramStoreU64 = ms::MedleyStore<std::uint64_t, std::uint64_t>;

namespace {

/// MEDLEY_YCSB_METRICS=1: run every store with the metrics registry on.
bool ycsb_metrics_on() {
  static const bool on = [] {
    const char* v = std::getenv("MEDLEY_YCSB_METRICS");
    return v != nullptr && v[0] == '1';
  }();
  return on;
}

/// With MEDLEY_METRICS_OUT set, persist a store's exposition at teardown.
void maybe_dump_metrics(const std::string& text) {
  const char* path = std::getenv("MEDLEY_METRICS_OUT");
  if (path == nullptr || text.empty()) return;
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
}

constexpr double kZipfTheta = 0.99;     // the YCSB default
constexpr std::uint64_t kLatestWindow = 1024;  // D's "recent keys" horizon
constexpr std::uint64_t kMaxScanLen = 64;

struct YcsbScale {
  std::size_t records;  // preloaded keys 1..records (dense)
  double min_time;
  std::vector<int> threads;

  static const YcsbScale& get() {
    static YcsbScale sc = [] {
      const char* smoke = std::getenv("MEDLEY_YCSB_SMOKE");
      if (smoke != nullptr && smoke[0] == '1') {
        return YcsbScale{512, 0.1, {2}};
      }
      const char* paper = std::getenv("MEDLEY_PAPER");
      if (paper != nullptr && paper[0] == '1') {
        return YcsbScale{500'000, 3.0, {1, 2, 4, 8, 16, 40, 80}};
      }
      return YcsbScale{20'000, 0.15, {1, 2, 4, 8}};
    }();
    return sc;
  }
};

struct Mix {
  const char* label;
  int read_w, put_w, ins_w, scan_w, rmw_w;  // sum to 100
  bool latest;  // reads skew to recently inserted keys (workload D)
};

const std::vector<Mix>& mixes() {
  static const std::vector<Mix> m = {
      {"A", 50, 50, 0, 0, 0, false}, {"B", 95, 5, 0, 0, 0, false},
      {"C", 100, 0, 0, 0, 0, false}, {"D", 95, 0, 5, 0, 0, true},
      {"E", 0, 0, 5, 95, 0, false},  {"F", 50, 0, 0, 0, 50, false},
  };
  return m;
}

/// Per-thread key choosers; insert counters are shared adapter state.
struct KeyDist {
  medley::util::ZipfGenerator zipf;    // rank -> preloaded key
  medley::util::ZipfGenerator recent;  // offset back from newest key
  std::atomic<std::uint64_t>* next_insert;
  std::atomic<std::uint64_t>* max_key;
  std::uint64_t records;
  // 0 = unbounded fresh keys (DRAM). Nonzero bounds the fresh-key window:
  // inserts past records+wrap cycle back and overwrite the oldest fresh
  // keys, so a persistent store's live payload count stays bounded — an
  // unbounded D/E run would otherwise fill the region with never-retired
  // payloads and spin in Capacity retries that nothing can free.
  std::uint64_t insert_wrap;

  std::uint64_t pick(medley::util::Xoshiro256& rng, const Mix& mix) {
    (void)rng;
    if (mix.latest) {
      const std::uint64_t hi = max_key->load(std::memory_order_relaxed);
      const std::uint64_t back = recent.next();
      return back >= hi ? 1 : hi - back;
    }
    return zipf.next() + 1;
  }

  std::uint64_t fresh() {
    std::uint64_t k = next_insert->fetch_add(1, std::memory_order_relaxed);
    if (insert_wrap != 0) {
      k = records + 1 + (k - records - 1) % insert_wrap;
    }
    // Monotonic max (racy fetch_max by CAS; exactness is irrelevant).
    std::uint64_t m = max_key->load(std::memory_order_relaxed);
    while (m < k && !max_key->compare_exchange_weak(
                        m, k, std::memory_order_relaxed)) {
    }
    return k;
  }
};

/// One YCSB operation against any store exposing the MedleyStore API.
/// Mutators drain up to 2 feed entries inline after each mutation (a
/// replication tap that keeps up). A sharded store taps the SHARD it just
/// wrote (poll_feed_local): per-shard change streams are the sharded
/// replication pattern — the totally ordered merged poll_feed() exists
/// for consumers that need it, but putting it on every mutation would
/// reintroduce exactly the global serialization point sharding removes.
template <typename StoreT>
void ycsb_op(StoreT& store, bool feed_on, medley::util::Xoshiro256& rng,
             KeyDist& keys, const Mix& mix) {
  const auto x = static_cast<int>(rng.next_bounded(100));
  std::uint64_t mutated = 0;
  if (x < mix.read_w) {
    benchmark::DoNotOptimize(store.get(keys.pick(rng, mix)));
    return;
  }
  if (x < mix.read_w + mix.put_w) {
    mutated = keys.pick(rng, mix);
    store.put(mutated, rng.next());
  } else if (x < mix.read_w + mix.put_w + mix.ins_w) {
    mutated = keys.fresh();
    store.put(mutated, mutated);
  } else if (x < mix.read_w + mix.put_w + mix.ins_w + mix.scan_w) {
    benchmark::DoNotOptimize(
        store.scan(keys.pick(rng, mix), 1 + rng.next_bounded(kMaxScanLen)));
    return;
  } else {
    mutated = keys.pick(rng, mix);
    store.read_modify_write(
        mutated, [](const std::optional<std::uint64_t>& c) {
          return std::optional<std::uint64_t>(c.value_or(0) + 1);
        });
  }
  if (feed_on) {
    if constexpr (requires { store.poll_feed_local(mutated, 2u); }) {
      store.poll_feed_local(mutated, 2);
    } else {
      store.poll_feed(2);
    }
  }
}

template <bool kFeed, bool kRO = false>
struct MedleyStoreAdapter {
  static const char* name() {
    if constexpr (kRO) return "MedleyStore-ro";
    return kFeed ? "MedleyStore" : "MedleyStore-nofeed";
  }
  static constexpr std::uint64_t kInsertWrap = 0;  // DRAM: unbounded

  medley::TxManager mgr;
  std::unique_ptr<DramStoreU64> store;
  std::atomic<std::uint64_t> next_insert{0}, max_key{0};

  void setup(const YcsbScale& sc) {
    ms::StoreConfig cfg{/*buckets=*/1u << 16, /*feed_enabled=*/kFeed};
    cfg.read_only_reads = kRO;
    cfg.metrics = ycsb_metrics_on();
    store = std::make_unique<DramStoreU64>(&mgr, cfg);
    for (std::uint64_t k = 1; k <= sc.records; k++) store->put(k, k);
    if (kFeed) {
      while (!store->poll_feed(1024).empty()) {  // preload is not traffic
      }
    }
    next_insert.store(sc.records + 1);
    max_key.store(sc.records);
  }

  void op(medley::util::Xoshiro256& rng, KeyDist& keys, const Mix& mix) {
    ycsb_op(*store, kFeed, rng, keys, mix);
  }

  ms::StoreStats::Snapshot stats_mine() const { return store->stats_mine(); }
};

/// Per-shard + aggregate counters for the JSON row (absolute totals since
/// setup; the per-thread exact rates stay in aborts_per_tx). Shared by the
/// hash- and range-sharded adapters; keys_shard<i> is the commit-exact
/// per-shard key count — the partition-imbalance observable.
template <typename ShardedStore>
void emit_shard_counters(benchmark::State& state, const ShardedStore& store,
                         int nshards) {
  double agg_aborts = 0, agg_retries = 0;
  for (int i = 0; i < nshards; i++) {
    const auto st = store.stats_shard(static_cast<std::size_t>(i));
    state.counters["aborts_shard" + std::to_string(i)] =
        static_cast<double>(st.aborts());
    state.counters["retries_shard" + std::to_string(i)] =
        static_cast<double>(st.retries);
    state.counters["keys_shard" + std::to_string(i)] =
        static_cast<double>(st.key_count());
    agg_aborts += static_cast<double>(st.aborts());
    agg_retries += static_cast<double>(st.retries);
  }
  // Group-commit observables (absolute since setup, summed over shards):
  // combined_ops / combined_batches is the realized mean batch size — the
  // amortization factor actually achieved, next to the throughput it buys.
  if (store.combined_batches() > 0) {
    state.counters["combined_batches"] =
        static_cast<double>(store.combined_batches());
    state.counters["combined_ops"] =
        static_cast<double>(store.combined_ops());
  }
  const auto cross = store.stats_cross();
  state.counters["aborts_cross"] = static_cast<double>(cross.aborts());
  state.counters["aborts_agg"] =
      agg_aborts + static_cast<double>(cross.aborts());
  state.counters["retries_agg"] =
      agg_retries + static_cast<double>(cross.retries);
}

template <int kShards, bool kRO = false, bool kComb = false>
struct ShardedStoreAdapter {
  static const char* name() {
    if constexpr (kComb) {
      if constexpr (kShards == 1) return "ShardedMedleyStore-1-comb";
      if constexpr (kShards == 4) return "ShardedMedleyStore-4-comb";
      return "ShardedMedleyStore-8-comb";
    }
    if constexpr (kShards == 1) {
      return kRO ? "ShardedMedleyStore-1-ro" : "ShardedMedleyStore-1";
    }
    if constexpr (kShards == 4) {
      return kRO ? "ShardedMedleyStore-4-ro" : "ShardedMedleyStore-4";
    }
    return kRO ? "ShardedMedleyStore-8-ro" : "ShardedMedleyStore-8";
  }
  static constexpr std::uint64_t kInsertWrap = 0;  // DRAM: unbounded

  using Sharded = ms::ShardedMedleyStore<std::uint64_t, std::uint64_t>;
  std::unique_ptr<Sharded> store;
  std::atomic<std::uint64_t> next_insert{0}, max_key{0};

  void setup(const YcsbScale& sc) {
    ms::StoreConfig cfg{/*buckets=*/1u << 16, /*feed_enabled=*/true};
    cfg.read_only_reads = kRO;
    cfg.combining.enabled = kComb;  // default knobs: 64 slots, batch<=32
    cfg.metrics = ycsb_metrics_on();
    store = std::make_unique<Sharded>(kShards, cfg);
    for (std::uint64_t k = 1; k <= sc.records; k++) store->put(k, k);
    while (!store->poll_feed(1024).empty()) {  // preload is not traffic
    }
    next_insert.store(sc.records + 1);
    max_key.store(sc.records);
  }

  void op(medley::util::Xoshiro256& rng, KeyDist& keys, const Mix& mix) {
    ycsb_op(*store, /*feed_on=*/true, rng, keys, mix);
  }

  ms::StoreStats::Snapshot stats_mine() const { return store->stats_mine(); }

  void emit_counters(benchmark::State& state) const {
    emit_shard_counters(state, *store, kShards);
  }
};

template <int kShards, bool kComb = false>
struct RangeShardedStoreAdapter {
  static const char* name() {
    if constexpr (kComb) {
      if constexpr (kShards == 4) return "RangeShardedMedleyStore-4-comb";
      return "RangeShardedMedleyStore-8-comb";
    }
    if constexpr (kShards == 4) return "RangeShardedMedleyStore-4";
    return "RangeShardedMedleyStore-8";
  }
  static constexpr std::uint64_t kInsertWrap = 0;  // DRAM: unbounded

  using RangeSharded =
      ms::RangeShardedMedleyStore<std::uint64_t, std::uint64_t>;
  std::unique_ptr<RangeSharded> store;
  std::atomic<std::uint64_t> next_insert{0}, max_key{0};

  void setup(const YcsbScale& sc) {
    // Seeding-time splitter: boundaries from a ~4K-key sample of the
    // preloaded key set (equi-depth quantiles). Fresh inserts (D/E) land
    // past sc.records — i.e. in the LAST shard, range partitioning's
    // classic insert-tail hotspot; keys_shard<i> in the row records it.
    std::vector<std::uint64_t> seed;
    const std::uint64_t step = std::max<std::uint64_t>(sc.records / 4096, 1);
    for (std::uint64_t k = 1; k <= sc.records; k += step) seed.push_back(k);
    ms::StoreConfig cfg{/*buckets=*/1u << 16, /*feed_enabled=*/true};
    cfg.combining.enabled = kComb;  // default knobs: 64 slots, batch<=32
    cfg.metrics = ycsb_metrics_on();
    store = std::make_unique<RangeSharded>(kShards, seed, cfg);
    for (std::uint64_t k = 1; k <= sc.records; k++) store->put(k, k);
    while (!store->poll_feed(1024).empty()) {  // preload is not traffic
    }
    next_insert.store(sc.records + 1);
    max_key.store(sc.records);
  }

  void op(medley::util::Xoshiro256& rng, KeyDist& keys, const Mix& mix) {
    ycsb_op(*store, /*feed_on=*/true, rng, keys, mix);
  }

  ms::StoreStats::Snapshot stats_mine() const { return store->stats_mine(); }

  void emit_counters(benchmark::State& state) const {
    emit_shard_counters(state, *store, kShards);
  }
};

struct PersistentStoreAdapter {
  static const char* name() { return "PersistentMedleyStore"; }
  // Bound fresh-key inserts (workloads D/E) so live payloads stay within
  // the region: (records + kInsertWrap) * 2 slots worst case, well under
  // the capacity below, for any run length.
  static constexpr std::uint64_t kInsertWrap = 1u << 15;

  std::string path;
  std::unique_ptr<medley::montage::PRegion> region;
  std::unique_ptr<medley::montage::EpochSys> es;
  medley::TxManager mgr;
  std::unique_ptr<ms::PersistentMedleyStore> store;
  std::atomic<std::uint64_t> next_insert{0}, max_key{0};

  void setup(const YcsbScale& sc) {
    path = "/tmp/medley_bench_ycsb.img";
    std::remove(path.c_str());
    region = std::make_unique<medley::montage::PRegion>(
        path, sc.records * 4 + kInsertWrap * 2 + (1u << 17));
    es = std::make_unique<medley::montage::EpochSys>(region.get());
    es->attach(&mgr);
    ms::StoreConfig cfg{/*buckets=*/1u << 16, /*feed_enabled=*/true};
    cfg.metrics = ycsb_metrics_on();
    store = std::make_unique<ms::PersistentMedleyStore>(&mgr, es.get(),
                                                        /*sid=*/1, cfg);
    for (std::uint64_t k = 1; k <= sc.records; k++) store->put(k, k);
    while (!store->poll_feed(1024).empty()) {
    }
    next_insert.store(sc.records + 1);
    max_key.store(sc.records);
    es->start_advancer(10);
  }

  ~PersistentStoreAdapter() {
    if (es) es->stop_advancer();
    store.reset();
    es.reset();
    region.reset();
    std::remove(path.c_str());
  }

  void op(medley::util::Xoshiro256& rng, KeyDist& keys, const Mix& mix) {
    ycsb_op(*store, /*feed_on=*/true, rng, keys, mix);
  }

  ms::StoreStats::Snapshot stats_mine() const { return store->stats_mine(); }
};

/// The read-path floor: Michael hash table probed with no transaction
/// open — nbtcLoad's null-ctx fast path, no descriptor, no read logging,
/// no validation. Not a store (no secondary index, no feed); it exists
/// purely as the denominator for the read-only mode's "within ~2x of a
/// raw lookup" acceptance bar, so it registers only for mixes B/C and
/// maps B's 5% put straight onto the table.
struct RawHashAdapter {
  static const char* name() { return "RawHash"; }
  static constexpr std::uint64_t kInsertWrap = 0;

  medley::TxManager mgr;
  std::unique_ptr<medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>
      table;
  std::atomic<std::uint64_t> next_insert{0}, max_key{0};

  void setup(const YcsbScale& sc) {
    table = std::make_unique<
        medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>(
        &mgr, /*buckets=*/1u << 16);
    for (std::uint64_t k = 1; k <= sc.records; k++) table->put(k, k);
    next_insert.store(sc.records + 1);
    max_key.store(sc.records);
  }

  void op(medley::util::Xoshiro256& rng, KeyDist& keys, const Mix& mix) {
    const auto x = static_cast<int>(rng.next_bounded(100));
    if (x < mix.read_w) {
      benchmark::DoNotOptimize(table->get(keys.pick(rng, mix)));
      return;
    }
    table->put(keys.pick(rng, mix), rng.next());
  }

  ms::StoreStats::Snapshot stats_mine() const { return {}; }
};

template <typename Adapter>
void run_ycsb_benchmark(benchmark::State& state) {
  Adapter& sys = *mb::SystemHolder<Adapter>::get();
  const Mix& mix = mixes()[static_cast<std::size_t>(state.range(0))];
  const YcsbScale& sc = YcsbScale::get();
  medley::util::Xoshiro256 rng(mb::thread_seed(state));
  KeyDist keys{
      medley::util::ZipfGenerator(sc.records, kZipfTheta,
                                  mb::thread_seed(state) ^ 0x5eedULL),
      medley::util::ZipfGenerator(kLatestWindow, kZipfTheta,
                                  mb::thread_seed(state) ^ 0xfeedULL),
      &sys.next_insert, &sys.max_key, sc.records, Adapter::kInsertWrap};

  const auto before = sys.stats_mine();
  for (auto _ : state) {
    sys.op(rng, keys, mix);
  }
  const auto after = sys.stats_mine();

  if constexpr (requires { sys.emit_counters(state); }) {
    if (state.thread_index() == 0) sys.emit_counters(state);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["aborts_per_tx"] = benchmark::Counter(
      static_cast<double>(after.aborts() - before.aborts()),
      benchmark::Counter::kAvgIterations);
  state.counters["retries_per_tx"] = benchmark::Counter(
      static_cast<double>(after.retries - before.retries),
      benchmark::Counter::kAvgIterations);
  // Per-reason abort rates (same exact per-thread deltas): conflict is
  // descriptor arbitration, validation the read-only/read-set check,
  // capacity a full write set or exhausted region, user explicit txAbort.
  const auto reason_rate = [&](std::uint64_t a, std::uint64_t b) {
    return benchmark::Counter(static_cast<double>(a - b),
                              benchmark::Counter::kAvgIterations);
  };
  state.counters["aborts_conflict_per_tx"] =
      reason_rate(after.conflict_aborts, before.conflict_aborts);
  state.counters["aborts_validation_per_tx"] =
      reason_rate(after.validation_aborts, before.validation_aborts);
  state.counters["aborts_capacity_per_tx"] =
      reason_rate(after.capacity_aborts, before.capacity_aborts);
  state.counters["aborts_user_per_tx"] =
      reason_rate(after.user_aborts, before.user_aborts);
}

/// `only`: optional mix-label filter ("BC" = register B and C rows only)
/// for read-path systems whose A/D/E/F rows would measure nothing new.
template <typename Adapter>
void register_ycsb(const char* only = nullptr) {
  const YcsbScale& sc = YcsbScale::get();
  for (std::size_t mi = 0; mi < mixes().size(); mi++) {
    if (only != nullptr &&
        std::string(only).find(mixes()[mi].label) == std::string::npos) {
      continue;
    }
    std::string name =
        std::string("ycsb/") + Adapter::name() + "/mix:" + mixes()[mi].label;
    auto* b = benchmark::RegisterBenchmark(name.c_str(),
                                           run_ycsb_benchmark<Adapter>);
    b->Arg(static_cast<int>(mi));
    b->Setup([](const benchmark::State&) {
      auto& slot = mb::SystemHolder<Adapter>::get();
      slot = std::make_unique<Adapter>();
      slot->setup(YcsbScale::get());
    });
    b->Teardown([](const benchmark::State&) {
      auto& slot = mb::SystemHolder<Adapter>::get();
      if constexpr (requires { slot->store->dump_metrics(); }) {
        if (slot) maybe_dump_metrics(slot->store->dump_metrics());
      }
      slot.reset();
    });
    b->UseRealTime();
    b->MinTime(sc.min_time);
    for (int t : sc.threads) b->Threads(t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_ycsb<MedleyStoreAdapter<true>>();
  register_ycsb<MedleyStoreAdapter<false>>();
  register_ycsb<ShardedStoreAdapter<1>>();
  register_ycsb<ShardedStoreAdapter<4>>();
  register_ycsb<ShardedStoreAdapter<8>>();
  register_ycsb<RangeShardedStoreAdapter<4>>();
  register_ycsb<RangeShardedStoreAdapter<8>>();
  register_ycsb<PersistentStoreAdapter>();
  // Read-path ablation (BENCH_ycsb_readonly.json): snapshot-read stores
  // vs their full-tx twins above, plus the untracked floor. B/C only.
  register_ycsb<MedleyStoreAdapter<true, true>>("BC");
  register_ycsb<ShardedStoreAdapter<1, true>>("BC");
  register_ycsb<ShardedStoreAdapter<4, true>>("BC");
  register_ycsb<ShardedStoreAdapter<8, true>>("BC");
  register_ycsb<RawHashAdapter>("BC");
  // Group-commit ablation (BENCH_ycsb_combining.json): flat-combining
  // batch layer on vs eager one-tx-per-op twins above. A/B only — the
  // combiner batches mutations, so read-dominated C gains nothing, and
  // the 1-shard / 1-thread rows are the honest-cost floor (every batch
  // is size 1: pure publication + lock overhead).
  register_ycsb<ShardedStoreAdapter<1, false, true>>("AB");
  register_ycsb<ShardedStoreAdapter<4, false, true>>("AB");
  register_ycsb<ShardedStoreAdapter<8, false, true>>("AB");
  register_ycsb<RangeShardedStoreAdapter<4, true>>("AB");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

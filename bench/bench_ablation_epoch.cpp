// Ablation: epoch length vs txMontage throughput (DESIGN.md E10).
//
// Shorter epochs tighten the durability bound (less work lost on crash)
// but advance the epoch cell more often, aborting more straddling
// transactions (epoch validation failures) and paying more write-back
// batches. The paper uses 10-100 ms epochs inherited from nbMontage; this
// sweep shows the trade-off curve. `validation_aborts` counts the
// transactions sacrificed to epoch boundaries (plus ordinary read-set
// invalidations, which are rare in this single-table write mix).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness.hpp"
#include "montage/txmontage.hpp"

namespace mb = medley::bench;
using mb::Config;

namespace {

struct System {
  std::unique_ptr<medley::montage::PRegion> region;
  std::unique_ptr<medley::montage::EpochSys> es;
  medley::TxManager mgr;
  // Capacity aborts wait on the epoch advancer; ExpBackoffCM yields to it.
  medley::TxExecutor exec{
      medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>())};
  std::unique_ptr<medley::montage::TxMontageHashTable> map;

  explicit System(std::uint64_t epoch_ms) {
    std::remove("/tmp/medley_bench_epoch.img");
    // Long epochs hold retired payloads in quarantine for ~2 epochs;
    // with a write-heavy mix the slot demand scales with epoch length,
    // so this sweep provisions generously (the file is sparse).
    region = std::make_unique<medley::montage::PRegion>(
        "/tmp/medley_bench_epoch.img",
        Config::get().keyspace * 2 + (1u << 22));
    es = std::make_unique<medley::montage::EpochSys>(region.get());
    es->attach(&mgr);
    map = std::make_unique<medley::montage::TxMontageHashTable>(
        &mgr, es.get(), 1, Config::get().keyspace);
    mb::preload(Config::get(), [&](std::uint64_t k) {
      return *exec.execute(mgr, [&] { return map->insert(k, k); }).value;
    });
    es->start_advancer(epoch_ms);
  }
  ~System() {
    es->stop_advancer();
    map.reset();
    es.reset();
    region.reset();
    std::remove("/tmp/medley_bench_epoch.img");
  }
};
System* g_sys = nullptr;

void bm_epoch(benchmark::State& state) {
  const Config& cfg = Config::get();
  medley::util::Xoshiro256 rng(mb::thread_seed(state));
  if (state.thread_index() == 0) g_sys->mgr.reset_stats();
  for (auto _ : state) {
    const std::uint64_t n = mb::tx_size(rng);
    g_sys->exec.execute(g_sys->mgr, [&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        if (rng.next() & 1) {
          g_sys->map->insert(k, k);
        } else {
          g_sys->map->remove(k);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    auto stats = g_sys->mgr.stats();
    state.counters["validation_aborts"] =
        static_cast<double>(stats.validation_aborts);
    state.counters["conflict_aborts"] =
        static_cast<double>(stats.conflict_aborts);
  }
}

std::uint64_t g_epoch_ms = 10;

void register_all() {
  for (int ms : {1, 5, 10, 50, 100}) {
    std::string name = "ablation_epoch/epoch_ms:" + std::to_string(ms);
    auto* b = benchmark::RegisterBenchmark(name.c_str(), bm_epoch);
    b->Arg(ms);
    b->Setup([](const benchmark::State& s) {
      g_epoch_ms = static_cast<std::uint64_t>(s.range(0));
      g_sys = new System(g_epoch_ms);
    });
    b->Teardown([](const benchmark::State&) {
      delete g_sys;
      g_sys = nullptr;
    });
    b->UseRealTime()->MinTime(Config::get().min_time);
    b->Threads(Config::get().threads.back());
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Micro-bench: the MSQueue feed-tail cost the combining layer amortizes.
//
// Every store mutation appends one change-feed entry, and every append
// linearizes on the SAME queue tail (one descriptor-installed CAS on
// tail->next plus the tail-swing cleanup — ds/ms_queue.hpp). This bench
// isolates that cost directly, as a function of
//
//   threads      — how hard the tail is contended, and
//   enq_per_tx   — how many enqueues share ONE transaction (descriptor
//                  publication + commit CAS amortized across the batch),
//                  which is exactly what the flat-combining group commit
//                  does for independent ops (core/combiner.hpp).
//
// Read BENCH_feed_tail.json as: time/op at enq_per_tx:1 is the eager
// baseline every mutation pays; the drop from enq_per_tx:1 to 8/32 is the
// amortization headroom group commit can claim, and its shrinkage as
// threads grow shows how much of the per-op cost is the contended tail
// CAS itself (not amortizable — batches still enqueue one entry per op)
// versus the per-transaction protocol (amortizable N×).
//
// Iteration counts are fixed per batch size so total enqueued nodes stay
// bounded (the queue is never drained inside the timed region — a drain
// would put the head CAS on the critical path and muddy the tail story).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/medley.hpp"
#include "ds/ms_queue.hpp"
#include "store/feed.hpp"

namespace {

using Entry = medley::store::FeedEntry<std::uint64_t, std::uint64_t>;

/// Shared fixture: one manager + one queue per benchmark run (all threads
/// of a run contend on the same tail, like all mutators of one shard).
struct Fixture {
  medley::TxManager mgr;
  medley::ds::MSQueue<Entry> q{&mgr};
};
std::unique_ptr<Fixture> g_fix;

void bm_feed_tail(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Fixture& f = *g_fix;
  std::uint64_t seq =
      static_cast<std::uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    medley::execute_tx(f.mgr, [&] {
      for (std::size_t i = 0; i < batch; i++) {
        f.q.enqueue(Entry{medley::store::FeedOp::Put, seq, seq, seq});
        seq++;
      }
    });
  }
  // items/s = enqueues/s: the per-ENQUEUE cost is the comparable number
  // across batch sizes.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["enq_per_tx"] = benchmark::Counter(
      static_cast<double>(batch), benchmark::Counter::kAvgThreads);
}

void register_feed_tail() {
  static constexpr std::size_t kBatches[] = {1, 8, 32};
  static constexpr int kThreads[] = {1, 2, 4, 8};
  for (const std::size_t b : kBatches) {
    for (const int t : kThreads) {
      std::string name = "feed_tail/enq_per_tx:" + std::to_string(b) +
                         "/threads:" + std::to_string(t);
      auto* bench =
          benchmark::RegisterBenchmark(name.c_str(), bm_feed_tail);
      bench->Arg(static_cast<int>(b));
      bench->Threads(t);
      // Fixed per-thread enqueue budget (~40K) so every row enqueues the
      // same work and the queue stays small; rebuilt per run so no row
      // inherits another's nodes.
      bench->Iterations(static_cast<std::int64_t>(40'000 / b));
      bench->Setup([](const benchmark::State&) {
        g_fix = std::make_unique<Fixture>();
      });
      bench->Teardown([](const benchmark::State&) { g_fix.reset(); });
      bench->UseRealTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_feed_tail();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 7 reproduction: throughput of transactional hash tables.
//
// # PAPER (Fig. 7, 2x Xeon Gold 6230 + Optane, 30 s trials):
// #  - Medley outperforms transient OneFile by >10x beyond trivial thread
// #    counts, and the gap widens with write fraction.
// #  - OneFile is competitive at 1 thread (serialized design, no read
// #    sets) but does not scale.
// #  - txMontage tracks Medley closely on read-mostly mixes, and reaches
// #    roughly half of Medley's write-only throughput at mid thread
// #    counts; POneFile (eager per-store write-back) sits ~2 orders of
// #    magnitude below txMontage.
//
// Systems: Medley (Michael hash table), txMontage (persistent hash
// table), OneFile (sequential chained hash table under STM), POneFile
// (same, eager persistence). Workload per harness.hpp (preload 0.5M/1M,
// transactions of 1-10 get/insert/remove ops, ratios 0:1:1, 2:1:1,
// 18:1:1).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "ds/michael_hashtable.hpp"
#include "fig_common.hpp"
#include "montage/txmontage.hpp"
#include "stm/onefile_map.hpp"

namespace mb = medley::bench;
using mb::Config;
using mb::OpKind;
using mb::Ratio;

namespace {

struct MedleyHashAdapter {
  static const char* name() { return "Medley"; }

  medley::TxManager mgr;
  medley::TxExecutor exec;  // default policy = pure eager retry (the paper)
  std::unique_ptr<medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>
      map;

  void setup(const Config& cfg) {
    map = std::make_unique<
        medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>>(
        &mgr, cfg.keyspace);  // paper: 1M buckets for 1M keys
    mb::preload(cfg, [&](std::uint64_t k) { return map->insert(k, k); });
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    const auto res = exec.execute(mgr, [&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
    });
    return res.stats.aborts();
  }
};

struct TxMontageHashAdapter {
  static const char* name() { return "txMontage"; }

  std::string path;
  std::unique_ptr<medley::montage::PRegion> region;
  std::unique_ptr<medley::montage::EpochSys> es;
  medley::TxManager mgr;
  // Capacity aborts wait on the epoch advancer; ExpBackoffCM yields to it
  // instead of spinning through doomed retries (what the hand-rolled loop
  // special-cased before).
  medley::TxExecutor exec{
      medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>())};
  std::unique_ptr<medley::montage::TxMontageHashTable> map;

  void setup(const Config& cfg) {
    path = "/tmp/medley_bench_fig7.img";
    std::remove(path.c_str());
    region = std::make_unique<medley::montage::PRegion>(
        path, cfg.keyspace * 2 + (1u << 16));
    es = std::make_unique<medley::montage::EpochSys>(region.get());
    es->attach(&mgr);
    map = std::make_unique<medley::montage::TxMontageHashTable>(
        &mgr, es.get(), /*sid=*/1, cfg.keyspace);
    mb::preload(cfg, [&](std::uint64_t k) {
      return *exec.execute(mgr, [&] { return map->insert(k, k); }).value;
    });
    es->start_advancer(10);  // paper-style epoch length
  }

  ~TxMontageHashAdapter() {
    if (es) es->stop_advancer();
    map.reset();
    es.reset();
    region.reset();
    std::remove(path.c_str());
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    const auto res = exec.execute(mgr, [&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
    });
    return res.stats.aborts();
  }
};

template <bool kPersistent>
struct OneFileHashAdapter {
  static const char* name() { return kPersistent ? "POneFile" : "OneFile"; }

  std::unique_ptr<medley::stm::OneFileSTM> stm;
  std::unique_ptr<medley::stm::OFHashMap<std::uint64_t, std::uint64_t>> map;

  void setup(const Config& cfg) {
    stm = std::make_unique<medley::stm::OneFileSTM>(kPersistent);
    map = std::make_unique<
        medley::stm::OFHashMap<std::uint64_t, std::uint64_t>>(
        stm.get(), cfg.keyspace);
    mb::preload(cfg, [&](std::uint64_t k) { return map->insert(k, k); });
  }

  std::uint64_t tx(medley::util::Xoshiro256& rng, const Ratio& r,
                   const Config& cfg) {
    const std::uint64_t n = mb::tx_size(rng);
    // OneFile retries internally; compose the whole transaction in one
    // updateTx (readTx when it happens to be all-gets would be cheaper,
    // but op kinds are chosen inside, matching the paper's dynamic mix).
    stm->updateTx([&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        switch (mb::pick_op(r, rng)) {
          case OpKind::Get: map->get(k); break;
          case OpKind::Insert: map->insert(k, k); break;
          case OpKind::Remove: map->remove(k); break;
        }
      }
    });
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  mb::register_system<MedleyHashAdapter>("fig7");
  mb::register_system<TxMontageHashAdapter>("fig7");
  mb::register_system<OneFileHashAdapter<false>>("fig7");
  mb::register_system<OneFileHashAdapter<true>>("fig7");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Ablation (Sec. 6.3 claim): where Medley's ~2.2x marginal overhead goes.
//
// # PAPER: "the more-than-doubled cost of CASes (installing and
// # uninstalling descriptors) accounts for about 2/3 of Medley's
// # overhead."
//
// This bench isolates the ladder: a raw 64-bit CAS, a 128-bit CAS, a
// CASObj plain CAS (value+counter), a non-transactional nbtcCAS, then a
// full MCNS transaction of N critical CASes (install + status CAS +
// validate + uninstall), and read-set validation cost as a function of
// read-set size.

#include <benchmark/benchmark.h>

#include <atomic>

#include "core/medley.hpp"

namespace {

/// Exposes Composable's protected read-set registration for the bench.
struct Harness : medley::Composable {
  explicit Harness(medley::TxManager* m) : Composable(m) {}
  using Composable::addToReadSet;
};

void bm_raw_cas64(benchmark::State& state) {
  std::atomic<std::uint64_t> x{0};
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::uint64_t e = v;
    benchmark::DoNotOptimize(
        x.compare_exchange_strong(e, v + 1, std::memory_order_acq_rel));
    v++;
  }
}
BENCHMARK(bm_raw_cas64);

void bm_cas128(benchmark::State& state) {
  medley::util::Atomic128 x;
  std::uint64_t v = 0;
  for (auto _ : state) {
    medley::util::U128 e{v, v};
    benchmark::DoNotOptimize(x.compare_exchange(e, {v + 1, v + 1}));
    v++;
  }
}
BENCHMARK(bm_cas128);

void bm_casobj_plain_cas(benchmark::State& state) {
  medley::CASObj<std::uint64_t> x(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.CAS(v, v + 1));
    v++;
  }
}
BENCHMARK(bm_casobj_plain_cas);

void bm_nbtc_cas_non_tx(benchmark::State& state) {
  medley::CASObj<std::uint64_t> x(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.nbtcCAS(v, v + 1, true, true));
    v++;
  }
}
BENCHMARK(bm_nbtc_cas_non_tx);

/// One MCNS transaction updating N cells (install N + setReady + commit
/// CAS + uninstall N). Time is per whole transaction.
void bm_mcns_commit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  medley::TxManager mgr;
  std::vector<std::unique_ptr<medley::CASObj<std::uint64_t>>> cells;
  for (std::size_t i = 0; i < n; i++) {
    cells.push_back(std::make_unique<medley::CASObj<std::uint64_t>>(0));
  }
  std::uint64_t v = 0;
  for (auto _ : state) {
    mgr.txBegin();
    for (std::size_t i = 0; i < n; i++) {
      cells[i]->nbtcCAS(v, v + 1, true, true);
    }
    mgr.txEnd();
    v++;
  }
  state.counters["cells"] = static_cast<double>(n);
}
BENCHMARK(bm_mcns_commit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Read-set validation cost: transaction tracking N reads, no writes.
void bm_mcns_read_validate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  medley::TxManager mgr;
  Harness h(&mgr);
  std::vector<std::unique_ptr<medley::CASObj<std::uint64_t>>> cells;
  for (std::size_t i = 0; i < n; i++) {
    cells.push_back(std::make_unique<medley::CASObj<std::uint64_t>>(7));
  }
  for (auto _ : state) {
    mgr.txBegin();
    for (std::size_t i = 0; i < n; i++) {
      auto val = cells[i]->nbtcLoad();
      h.addToReadSet(cells[i].get(), val);
    }
    mgr.txEnd();
  }
  state.counters["reads"] = static_cast<double>(n);
}
BENCHMARK(bm_mcns_read_validate)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Contended install/uninstall: multiple threads MCNS-update disjoint
/// pairs sharing one hot cell — the descriptor resolution path.
void bm_mcns_contended(benchmark::State& state) {
  static medley::TxManager mgr;
  static medley::CASObj<std::uint64_t>* hot = nullptr;
  if (state.thread_index() == 0) hot = new medley::CASObj<std::uint64_t>(0);
  // One attempt per iteration (aborts are the measurement, not retried).
  medley::TxExecutor exec{medley::TxPolicy::bounded(1)};
  for (auto _ : state) {
    exec.execute(mgr, [&] {
      auto v = hot->nbtcLoad();
      hot->nbtcCAS(v, v + 1, true, true);
    });
  }
  if (state.thread_index() == 0) {
    delete hot;
    hot = nullptr;
  }
}
BENCHMARK(bm_mcns_contended)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

#pragma once
// Shared benchmark harness for the paper-reproduction binaries.
//
// The paper's microbenchmark (Sec. 6.1): preload 0.5 M key-value pairs
// from a 1 M key space (8-byte keys and values); each thread then runs
// transactions of 1-10 operations, each operation get/insert/remove on a
// uniformly random key in a configured ratio (0:1:1, 2:1:1, 18:1:1);
// report committed transactions per second.
//
// Machine note (EXPERIMENTS.md): this container exposes ONE hardware
// thread, so the default ("CI") scale trims the preload and thread sweep
// to keep total bench time sane while preserving the relative ordering of
// systems at equal thread counts. Set MEDLEY_PAPER=1 for the paper-scale
// parameters (0.5 M preload, threads up to 80, longer trials).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace medley::bench {

struct Config {
  std::size_t preload;
  std::size_t keyspace;
  double min_time;  // seconds per configuration
  std::vector<int> threads;

  static const Config& get() {
    static Config cfg = [] {
      const char* paper = std::getenv("MEDLEY_PAPER");
      if (paper != nullptr && paper[0] == '1') {
        return Config{500'000, 1'000'000, 3.0, {1, 2, 4, 8, 16, 40, 80}};
      }
      return Config{20'000, 100'000, 0.15, {1, 2, 4, 8}};
    }();
    return cfg;
  }
};

/// get:insert:remove weights.
struct Ratio {
  int get_w, ins_w, rem_w;
  const char* label;
};

inline const std::vector<Ratio>& ratios() {
  static const std::vector<Ratio> r = {
      {0, 1, 1, "0:1:1"}, {2, 1, 1, "2:1:1"}, {18, 1, 1, "18:1:1"}};
  return r;
}

enum class OpKind { Get, Insert, Remove };

inline OpKind pick_op(const Ratio& r, util::Xoshiro256& rng) {
  const int total = r.get_w + r.ins_w + r.rem_w;
  const auto x = static_cast<int>(rng.next_bounded(
      static_cast<std::uint64_t>(total)));
  if (x < r.get_w) return OpKind::Get;
  if (x < r.get_w + r.ins_w) return OpKind::Insert;
  return OpKind::Remove;
}

/// Transaction size: 1..10 operations (paper Sec. 6.1).
inline std::uint64_t tx_size(util::Xoshiro256& rng) {
  return 1 + rng.next_bounded(10);
}

/// Per-thread deterministic seed.
inline std::uint64_t thread_seed(const benchmark::State& state) {
  return 0x9e3779b97f4a7c15ULL ^
         (static_cast<std::uint64_t>(state.thread_index()) + 1) *
             0x2545f4914f6cdd1dULL;
}

/// Preload helper: inserts `cfg.preload` distinct keys drawn from the key
/// space (the paper preloads 0.5 M of 1 M).
template <typename InsertFn>
void preload(const Config& cfg, InsertFn&& ins) {
  util::Xoshiro256 rng(42);
  std::size_t loaded = 0;
  while (loaded < cfg.preload) {
    if (ins(rng.next_bounded(cfg.keyspace) + 1)) loaded++;
  }
}

/// Registers b for the configured thread counts with real-time measurement.
inline void apply_thread_sweep(benchmark::internal::Benchmark* b) {
  const Config& cfg = Config::get();
  b->UseRealTime();
  b->MinTime(cfg.min_time);
  for (int t : cfg.threads) b->Threads(t);
}

}  // namespace medley::bench

// End-to-end serving benchmark for the network subsystem (src/net):
// YCSB-style mixes driven over real TCP connections against the epoll
// server, measuring what the wave -> combiner pipeline buys.
//
// Two drivers, two JSON artifacts:
//
//  1. Closed loop (BENCH_net_ycsb.json): C connections each run a mix
//     either one-request-per-round-trip ("sync") or in pipelined batches
//     of 16 ("pipelined"), against a server whose store has combining on
//     or off — the 2x2 ablation the wire design argues for. Pipelined +
//     combining should win on any write-bearing mix once a few
//     connections stack waves (fewer syscalls AND one commit CAS per
//     wave); the single-connection sync rows are the honest overhead
//     floor (the wire costs two syscalls per op and the publication
//     handshake buys nothing at depth 1).
//
//  2. Open loop (BENCH_net_tail.json): Poisson arrivals at fixed offered
//     loads, one pacing sender + one receiver, latency measured from the
//     SCHEDULED arrival (queueing delay included — the honest open-loop
//     accounting), reported as p50/p99/p999.
//
// This is a standalone driver (no google-benchmark macros): the unit of
// measurement is a whole client/server episode, not a function call.
//
// Scale: MEDLEY_NET_SMOKE=1 trims op counts for CI; the recorded JSONs
// come from the default scale. MEDLEY_METRICS_OUT=<path> additionally
// scrapes the server's METRICS verb over the wire at the end and writes
// the Prometheus text there (tools/check_metrics.py validates it in CI).
// This box exposes ONE hardware thread, so absolute numbers are modest
// and client threads time-share with the server; the relative ordering
// (pipelined vs sync at equal connections) is the result.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "store/store.hpp"
#include "util/rng.hpp"

using medley::TxManager;
using medley::store::MedleyStore;
using medley::store::StoreConfig;
namespace net = medley::net;
using Clock = std::chrono::steady_clock;
using Store = MedleyStore<std::uint64_t, std::uint64_t>;

namespace {

bool smoke() {
  const char* s = std::getenv("MEDLEY_NET_SMOKE");
  return s != nullptr && s[0] == '1';
}

constexpr std::uint64_t kKeyspace = 16384;
constexpr std::size_t kPipelineBatch = 16;

struct Mix {
  const char* name;
  int read_pct;  // reads per 100 ops; the rest are updates (PUT)
};
const Mix kMixes[] = {{"A", 50}, {"C", 100}};

/// One server episode: fresh store (preloaded), fresh server.
struct Episode {
  TxManager mgr;
  std::unique_ptr<Store> store;
  std::unique_ptr<net::StoreAdapter<Store>> adapter;
  std::unique_ptr<net::Server> server;
  std::shared_ptr<medley::obs::MetricsRegistry> registry;
  std::uint64_t base_combined_ops = 0;
  std::uint64_t base_combined_batches = 0;

  explicit Episode(bool combining, bool metrics = false) {
    StoreConfig cfg;
    cfg.buckets = 1u << 12;
    cfg.combining.enabled = combining;
    if (metrics) {
      cfg.metrics = true;
      registry = std::make_shared<medley::obs::MetricsRegistry>();
      cfg.metrics_registry = registry;
    }
    store = std::make_unique<Store>(&mgr, cfg);
    for (std::uint64_t k = 0; k < kKeyspace; k += 2) store->put(k, k);
    // Preload goes through the combiner too (one-op batches); baseline it
    // out so the rows report only the measured traffic's combining.
    base_combined_ops = store->combined_ops();
    base_combined_batches = store->combined_batches();
    net::NetConfig ncfg;
    ncfg.workers = 1;
    ncfg.registry = registry;
    server = std::make_unique<net::Server>(adapter_init(), ncfg);
    server->start();
  }
  net::StoreApi* adapter_init() {
    adapter = std::make_unique<net::StoreAdapter<Store>>(store.get());
    return adapter.get();
  }
  ~Episode() { server->stop(); }
};

// ---- closed loop -----------------------------------------------------------

struct ClosedRow {
  const char* mix;
  const char* mode;
  bool combining;
  int connections;
  std::uint64_t ops;
  double seconds;
  double ops_per_sec;
  std::uint64_t combined_ops;
  std::uint64_t combined_batches;
};

ClosedRow run_closed(const Mix& mix, bool pipelined, bool combining,
                     int connections, std::uint64_t total_ops) {
  Episode ep(combining);
  const std::uint64_t per_conn = total_ops / connections;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < connections; t++) {
    threads.emplace_back([&, t] {
      net::Client c("127.0.0.1", ep.server->port());
      medley::util::Xoshiro256 rng(0xC0FFEE ^ (t * 7919));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (pipelined) {
        std::vector<net::Request> batch;
        for (std::uint64_t done = 0; done < per_conn;
             done += kPipelineBatch) {
          batch.clear();
          for (std::size_t i = 0; i < kPipelineBatch; i++) {
            const std::uint64_t k = rng.next_bounded(kKeyspace);
            if (rng.next_bounded(100) <
                static_cast<std::uint64_t>(mix.read_pct)) {
              batch.push_back(c.make(net::Verb::kGet, k));
            } else {
              batch.push_back(c.make(net::Verb::kPut, k, rng.next()));
            }
          }
          c.send_batch(batch);
        }
      } else {
        for (std::uint64_t i = 0; i < per_conn; i++) {
          const std::uint64_t k = rng.next_bounded(kKeyspace);
          if (rng.next_bounded(100) <
              static_cast<std::uint64_t>(mix.read_pct)) {
            c.get(k);
          } else {
            c.put(k, rng.next());
          }
        }
      }
    });
  }
  while (ready.load() < connections) std::this_thread::yield();
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t ops = per_conn * connections;
  return ClosedRow{mix.name,
                   pipelined ? "pipelined" : "sync",
                   combining,
                   connections,
                   ops,
                   secs,
                   static_cast<double>(ops) / secs,
                   ep.store->combined_ops() - ep.base_combined_ops,
                   ep.store->combined_batches() - ep.base_combined_batches};
}

// ---- open loop -------------------------------------------------------------

struct TailRow {
  const char* mix;
  double offered_rps;
  double achieved_rps;
  std::uint64_t sent;
  double p50_us, p99_us, p999_us;
};

double pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  const std::size_t i =
      std::min(v.size() - 1, static_cast<std::size_t>(q * v.size()));
  return v[i];
}

/// Poisson arrivals at `rps` for `seconds`: the sender writes each
/// request at its scheduled instant (one writev each — open loop, no
/// batching by the driver; waves still form when the server falls
/// behind, which is exactly the combining-under-load story). A receiver
/// thread stamps completions; latency = completion - SCHEDULED arrival.
TailRow run_tail(const Mix& mix, double rps, double seconds) {
  Episode ep(/*combining=*/true);
  net::Client c("127.0.0.1", ep.server->port());

  // Pre-generate the arrival schedule (exponential gaps).
  medley::util::Xoshiro256 rng(0xAB5EED);
  std::vector<double> sched;  // seconds from t0
  double t = 0;
  while (t < seconds) {
    sched.push_back(t);
    const double u =
        (static_cast<double>(rng.next() >> 11) + 1) / 9007199254740993.0;
    t += -std::log(u) / rps;
  }
  const std::size_t n = sched.size();

  std::vector<double> done_at(n, -1);
  std::thread receiver([&] {
    // Responses arrive in request order on the single connection.
    net::FrameBuffer fb;
    const auto t0 = Clock::now();
    std::size_t got = 0;
    std::uint8_t buf[16384];
    while (got < n) {
      const ssize_t r = ::read(c.fd(), buf, sizeof(buf));
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        break;
      }
      fb.append(buf, static_cast<std::size_t>(r));
      bool oversize = false;
      while (auto f = fb.next(net::kDefaultMaxFrame, &oversize)) {
        done_at[got++] =
            std::chrono::duration<double>(Clock::now() - t0).count();
      }
      if (fb.buffered() == 0) fb.compact();
    }
  });

  std::vector<std::uint8_t> frame;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; i++) {
    const auto due =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(sched[i]));
    std::this_thread::sleep_until(due);
    frame.clear();
    net::Request rq;
    rq.id = static_cast<std::uint32_t>(i);
    const std::uint64_t k = rng.next_bounded(kKeyspace);
    if (rng.next_bounded(100) < static_cast<std::uint64_t>(mix.read_pct)) {
      rq.verb = net::Verb::kGet;
      rq.a = k;
    } else {
      rq.verb = net::Verb::kPut;
      rq.a = k;
      rq.b = i;
    }
    net::encode_request(frame, rq);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t w = ::write(c.fd(), frame.data() + off,
                                frame.size() - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        break;
      }
      off += static_cast<std::size_t>(w);
    }
  }
  receiver.join();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> lat;
  lat.reserve(n);
  for (std::size_t i = 0; i < n; i++) {
    if (done_at[i] >= 0) lat.push_back((done_at[i] - sched[i]) * 1e6);
  }
  std::sort(lat.begin(), lat.end());
  return TailRow{mix.name,
                 rps,
                 static_cast<double>(lat.size()) / wall,
                 n,
                 pct(lat, 0.50),
                 pct(lat, 0.99),
                 pct(lat, 0.999)};
}

// ---- output ----------------------------------------------------------------

void write_closed(const std::vector<ClosedRow>& rows) {
  std::ofstream out("BENCH_net_ycsb.json");
  out << "{\n  \"bench\": \"net_ycsb_closed_loop\",\n"
      << "  \"note\": \"C connections over TCP vs one epoll worker on a "
         "1-core box; pipelined = batches of "
      << kPipelineBatch
      << " via send_batch (one writev per batch); combining = "
         "flat-combining group commit in the store\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); i++) {
    const ClosedRow& r = rows[i];
    out << "    {\"mix\": \"" << r.mix << "\", \"mode\": \"" << r.mode
        << "\", \"combining\": " << (r.combining ? "true" : "false")
        << ", \"connections\": " << r.connections << ", \"ops\": " << r.ops
        << ", \"seconds\": " << r.seconds
        << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"combined_ops\": " << r.combined_ops
        << ", \"combined_batches\": " << r.combined_batches << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void write_tail(const std::vector<TailRow>& rows) {
  std::ofstream out("BENCH_net_tail.json");
  out << "{\n  \"bench\": \"net_open_loop_tail\",\n"
      << "  \"note\": \"Poisson arrivals, one connection, latency from "
         "scheduled arrival (queueing included), microseconds\",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); i++) {
    const TailRow& r = rows[i];
    out << "    {\"mix\": \"" << r.mix
        << "\", \"offered_rps\": " << r.offered_rps
        << ", \"achieved_rps\": " << r.achieved_rps
        << ", \"requests\": " << r.sent << ", \"p50_us\": " << r.p50_us
        << ", \"p99_us\": " << r.p99_us << ", \"p999_us\": " << r.p999_us
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void maybe_dump_metrics() {
  const char* path = std::getenv("MEDLEY_METRICS_OUT");
  if (path == nullptr) return;
  // A short metrics-on episode: real traffic, then one METRICS scrape
  // THROUGH THE WIRE, dumped for tools/check_metrics.py.
  Episode ep(/*combining=*/true, /*metrics=*/true);
  net::Client c("127.0.0.1", ep.server->port());
  std::vector<net::Request> batch;
  for (std::uint64_t k = 0; k < 32; k++) {
    batch.push_back(c.make(net::Verb::kPut, k, k));
  }
  c.send_batch(batch);
  for (std::uint64_t k = 0; k < 32; k += 3) c.get(k);
  c.del(1);
  c.rmw_add(2, 5);
  const std::string text = c.metrics();
  std::ofstream(path) << text;
  std::printf("METRICS scrape (%zu bytes) -> %s\n", text.size(), path);
}

}  // namespace

int main() {
  const bool sm = smoke();
  const std::uint64_t closed_ops = sm ? 2'000 : 24'000;
  const double tail_secs = sm ? 0.5 : 3.0;
  const std::vector<double> loads = sm ? std::vector<double>{500, 1500}
                                       : std::vector<double>{2000, 6000};

  std::vector<ClosedRow> closed;
  for (const Mix& mix : kMixes) {
    for (int conns : {1, 2, 4}) {
      for (bool pipelined : {false, true}) {
        for (bool combining : {false, true}) {
          ClosedRow r =
              run_closed(mix, pipelined, combining, conns, closed_ops);
          std::printf(
              "closed mix:%s %9s comb:%d conns:%d  %8.0f ops/s  "
              "(%llu combined in %llu batches)\n",
              r.mix, r.mode, static_cast<int>(r.combining), r.connections,
              r.ops_per_sec,
              static_cast<unsigned long long>(r.combined_ops),
              static_cast<unsigned long long>(r.combined_batches));
          closed.push_back(r);
        }
      }
    }
  }
  write_closed(closed);

  std::vector<TailRow> tail;
  for (double rps : loads) {
    TailRow r = run_tail(kMixes[0], rps, tail_secs);  // A: write-bearing
    std::printf(
        "tail   mix:%s offered:%6.0f/s achieved:%6.0f/s  p50:%7.1fus "
        "p99:%8.1fus p999:%8.1fus\n",
        r.mix, r.offered_rps, r.achieved_rps, r.p50_us, r.p99_us,
        r.p999_us);
    tail.push_back(r);
  }
  write_tail(tail);

  maybe_dump_metrics();
  std::printf("wrote BENCH_net_ycsb.json, BENCH_net_tail.json\n");
  return 0;
}

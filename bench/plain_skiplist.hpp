#pragma once
// "Original" Fraser skiplist: the UN-transformed baseline of Fig. 10 —
// identical algorithm to ds/fraser_skiplist.hpp but on plain 64-bit
// atomics (no CASObj, no descriptors, no read-set plumbing). The latency
// gap between this and the NBTC-transformed structure is the transform's
// marginal cost (the paper's 1.8x / 2.2x numbers).
//
// Reclamation uses the same EBR so memory management costs match.
//
// WHY THIS IS A SEPARATE COPY (and must stay one): the obvious dedup —
// templating ds/fraser_skiplist.hpp over a cell policy (CASObj vs plain
// std::atomic) — would make the *baseline* read every pointer through the
// policy indirection and keep the transform's structural hooks (OpStarter,
// deferred-cleanup closures, Pos::succ0_next) in its instruction stream.
// Fig. 10 exists precisely to measure the cost of those hooks; a shared
// template would fold part of the measured quantity into the yardstick.
// So this file stays a line-for-line transliteration instead. When
// changing the algorithm in ds/fraser_skiplist.hpp, mirror the change
// here. Intentional deltas, so "diff drift" stays auditable:
//   * loads/CASes are raw std::atomic acquire/release, not nbtcLoad/
//     nbtcCAS — that is the experiment;
//   * insert links upper levels inline and remove retires after its own
//     search directly, where the transform defers both via addToCleanups
//     (outside a transaction the transformed code runs them immediately,
//     so behaviour matches);
//   * no read-set registration, no succ0_next, no tNew/tRetire — those
//     ARE the transform;
//   * no range()/scan(): Fig. 10 measures point-op latency only, and the
//     transactional range has no meaning without a read set;
//   * random_level() seeds differ (irrelevant to the measured shape).

#include <atomic>
#include <memory>
#include <optional>

#include "ds/marked_ptr.hpp"
#include "smr/ebr.hpp"
#include "util/rng.hpp"
#include "util/thread_registry.hpp"

namespace medley::bench {

template <typename K, typename V, int kMaxLevel = 20>
class PlainSkiplist {
 public:
  PlainSkiplist() : head_(new Node(K{}, V{}, kMaxLevel)) {}

  ~PlainSkiplist() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = ds::unmark(n->next[0].load());
      delete n;
      n = nx;
    }
  }

  std::optional<V> get(const K& k) {
    smr::EBR::Guard g;
    Pos pos;
    if (find(pos, k)) return pos.succs[0]->val;
    return std::nullopt;
  }

  bool insert(const K& k, const V& v) {
    smr::EBR::Guard g;
    Pos pos;
    Node* node = nullptr;
    for (;;) {
      if (find(pos, k)) {
        delete node;
        return false;
      }
      if (node == nullptr) node = new Node(k, v, random_level());
      for (int i = 0; i < node->level; i++) {
        node->next[i].store(pos.succs[i], std::memory_order_relaxed);
      }
      Node* expected = pos.succs[0];
      if (pos.preds[0]->next[0].compare_exchange_strong(
              expected, node, std::memory_order_acq_rel)) {
        link_upper(node, k);
        return true;
      }
    }
  }

  std::optional<V> remove(const K& k) {
    smr::EBR::Guard g;
    Pos pos;
    for (;;) {
      if (!find(pos, k)) return std::nullopt;
      Node* victim = pos.succs[0];
      for (int lvl = victim->level - 1; lvl >= 1; lvl--) {
        Node* nx = victim->next[lvl].load(std::memory_order_acquire);
        while (!ds::is_marked(nx)) {
          victim->next[lvl].compare_exchange_weak(
              nx, ds::mark(nx), std::memory_order_acq_rel);
        }
      }
      Node* nx0 = victim->next[0].load(std::memory_order_acquire);
      while (!ds::is_marked(nx0)) {
        if (victim->next[0].compare_exchange_strong(
                nx0, ds::mark(nx0), std::memory_order_acq_rel)) {
          V res = victim->val;
          Pos p;
          find(p, k);
          smr::EBR::instance().retire(victim);
          return res;
        }
      }
    }
  }

 private:
  struct Node {
    K key;
    V val;
    int level;
    std::unique_ptr<std::atomic<Node*>[]> next;
    Node(const K& k, const V& v, int lvl)
        : key(k), val(v), level(lvl), next(new std::atomic<Node*>[lvl]) {
      for (int i = 0; i < lvl; i++) next[i].store(nullptr);
    }
  };

  struct Pos {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
  };

  static int random_level() {
    thread_local util::Xoshiro256 rng(
        0x853c49e6748fea9bULL ^
        static_cast<std::uint64_t>(util::ThreadRegistry::tid() + 1));
    int lvl = 1;
    while (lvl < kMaxLevel && (rng.next() & 1)) lvl++;
    return lvl;
  }

  bool find(Pos& pos, const K& k) {
  retry:
    Node* pred = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; lvl--) {
      Node* curr = pred->next[lvl].load(std::memory_order_acquire);
      if (ds::is_marked(curr)) goto retry;
      for (;;) {
        if (curr == nullptr) break;
        Node* raw = curr->next[lvl].load(std::memory_order_acquire);
        if (ds::is_marked(raw)) {
          Node* expected = curr;
          if (!pred->next[lvl].compare_exchange_strong(
                  expected, ds::unmark(raw), std::memory_order_acq_rel)) {
            goto retry;
          }
          curr = ds::unmark(raw);
          continue;
        }
        if (curr->key < k) {
          pred = curr;
          curr = raw;
          continue;
        }
        break;
      }
      pos.preds[lvl] = pred;
      pos.succs[lvl] = curr;
    }
    return pos.succs[0] != nullptr && pos.succs[0]->key == k;
  }

  void link_upper(Node* node, const K& k) {
    bool abandoned = false;
    for (int lvl = 1; lvl < node->level && !abandoned; lvl++) {
      for (;;) {
        Pos pos;
        find(pos, k);
        Node* cur = node->next[lvl].load(std::memory_order_acquire);
        if (ds::is_marked(cur) || pos.succs[0] != node) {
          abandoned = true;
          break;
        }
        if (cur != pos.succs[lvl]) {
          Node* expected = cur;
          if (!node->next[lvl].compare_exchange_strong(
                  expected, pos.succs[lvl], std::memory_order_acq_rel)) {
            abandoned = true;
            break;
          }
        }
        Node* expected = pos.succs[lvl];
        if (pos.preds[lvl]->next[lvl].compare_exchange_strong(
                expected, node, std::memory_order_acq_rel)) {
          break;
        }
      }
    }
    if (ds::is_marked(node->next[0].load(std::memory_order_acquire))) {
      Pos pos;
      find(pos, k);
    }
  }

  Node* head_;
};

}  // namespace medley::bench

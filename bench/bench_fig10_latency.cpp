// Figure 10 reproduction: average latency per transaction on skiplists.
//
// # PAPER (Fig. 10, 40 threads):
// #  (a) DRAM: the NBTC transform costs ~1.8x over the original skiplist
// #      with transactions off (TxOff), ~2.2x with them on (TxOn) — the
// #      doubled CAS cost (install + uninstall) is ~2/3 of the overhead.
// #  (b) payloads on NVM, persistence off: marginal transaction overhead
// #      shrinks (the NVM write bottleneck dominates); the original
// #      skiplist placed entirely on NVM is slowest of all.
// #  (c) persistence on: txMontage pays <5% over (b) for failure
// #      atomicity + durability.
//
// Variants here: Original (plain Fraser skiplist, no instrumentation),
// TxOff (NBTC-transformed, no transactions), TxOn (transactions of 1-10
// ops); then the txMontage skiplist with payloads in the mapped region,
// advancer off (persistence off) and on (persistence on). Latency = time
// per iteration, where one iteration executes one transaction's worth of
// operations. NVM substitution note: the region is DRAM-backed here, so
// (b) compresses toward (a); the (c)-vs-(b) persistence margin is the
// honest part (see EXPERIMENTS.md).
//
// Tail latency: every individual operation is TSC-timed into a shared
// TailRecorder (per-thread obs::Histograms, no shared writes in the
// loop), and the TxOn executors additionally carry the obs wiring in
// their TxPolicy — latency_hist/attempts_hist — so transaction-level
// tails come from the executor's own one-rdtsc-pair instrumentation.
// Thread 0 folds all threads' buckets and attaches
// {get,insert,remove,tx}_p{50,99,999}_ns (+ attempts_p*) counters to
// each row; recording the JSON gives BENCH_latency_tail.json. Inside a
// TxOn body, re-executed ops of aborted attempts are recorded too: that
// is the latency those operations actually exhibit under retry.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ds/fraser_skiplist.hpp"
#include "fig_common.hpp"
#include "montage/txmontage.hpp"
#include "plain_skiplist.hpp"

namespace mb = medley::bench;
using mb::Config;
using mb::OpKind;
using mb::Ratio;

namespace {

// One recorder per benchmark run (variants execute sequentially);
// allocated in each Setup, emitted by thread 0, deleted in Teardown.
mb::TailRecorder* g_tail = nullptr;

template <typename F>
void run_ops(benchmark::State& state, int ratio_idx, F&& one_op) {
  const Ratio& r = mb::ratios()[static_cast<std::size_t>(ratio_idx)];
  const Config& cfg = Config::get();
  medley::util::Xoshiro256 rng(mb::thread_seed(state));
  const double scale = mb::TailRecorder::ns_per_tick();
  for (auto _ : state) {
    const std::uint64_t n = mb::tx_size(rng);
    for (std::uint64_t i = 0; i < n; i++) {
      const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
      const OpKind op = mb::pick_op(r, rng);
      const std::uint64_t t0 = medley::util::tsc_now();
      one_op(op, k);
      const std::uint64_t dt = medley::util::tsc_now() - t0;
      g_tail->record(op, static_cast<std::uint64_t>(
                             static_cast<double>(dt) * scale));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) g_tail->emit(state);
}

// ---- (a) DRAM --------------------------------------------------------

mb::PlainSkiplist<std::uint64_t, std::uint64_t>* g_plain = nullptr;

void bm_original(benchmark::State& state) {
  run_ops(state, static_cast<int>(state.range(0)),
          [&](OpKind op, std::uint64_t k) {
            switch (op) {
              case OpKind::Get: g_plain->get(k); break;
              case OpKind::Insert: g_plain->insert(k, k); break;
              case OpKind::Remove: g_plain->remove(k); break;
            }
          });
}

struct MedleySkip {
  medley::TxManager mgr;
  medley::TxExecutor exec;  // default policy = pure eager retry
  std::unique_ptr<medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>>
      map;
};
MedleySkip* g_medley = nullptr;

void bm_txoff(benchmark::State& state) {
  run_ops(state, static_cast<int>(state.range(0)),
          [&](OpKind op, std::uint64_t k) {
            switch (op) {
              case OpKind::Get: g_medley->map->get(k); break;
              case OpKind::Insert: g_medley->map->insert(k, k); break;
              case OpKind::Remove: g_medley->map->remove(k); break;
            }
          });
}

/// Shared TxOn timing loop: per-op TSC timing inside the body (aborted
/// attempts' re-executions included — that IS the op's retry latency);
/// transaction-level latency and attempts come from the executor's own
/// TxPolicy instrumentation, wired to g_tail in the variant's Setup.
template <typename Exec, typename Mgr, typename Map>
void run_tx_ops(benchmark::State& state, Exec& exec, Mgr& mgr, Map& map) {
  const Ratio& r = mb::ratios()[static_cast<std::size_t>(state.range(0))];
  const Config& cfg = Config::get();
  medley::util::Xoshiro256 rng(mb::thread_seed(state));
  const double scale = mb::TailRecorder::ns_per_tick();
  for (auto _ : state) {
    const std::uint64_t n = mb::tx_size(rng);
    exec.execute(mgr, [&] {
      for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t k = rng.next_bounded(cfg.keyspace) + 1;
        const OpKind op = mb::pick_op(r, rng);
        const std::uint64_t t0 = medley::util::tsc_now();
        switch (op) {
          case OpKind::Get: map.get(k); break;
          case OpKind::Insert: map.insert(k, k); break;
          case OpKind::Remove: map.remove(k); break;
        }
        const std::uint64_t dt = medley::util::tsc_now() - t0;
        g_tail->record(op, static_cast<std::uint64_t>(
                               static_cast<double>(dt) * scale));
      }
    });
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) g_tail->emit(state);
}

void bm_txon(benchmark::State& state) {
  run_tx_ops(state, g_medley->exec, g_medley->mgr, *g_medley->map);
}

// ---- (b)/(c) payloads in the persistent region ------------------------

struct MontageSkip {
  std::unique_ptr<medley::montage::PRegion> region;
  std::unique_ptr<medley::montage::EpochSys> es;
  medley::TxManager mgr;
  // Capacity aborts wait on the epoch advancer; ExpBackoffCM yields to it.
  medley::TxExecutor exec{
      medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>())};
  std::unique_ptr<medley::montage::TxMontageSkiplist> map;
  bool advancer = false;

  void setup(bool persist_on, mb::TailRecorder* tail) {
    std::remove("/tmp/medley_bench_fig10.img");
    region = std::make_unique<medley::montage::PRegion>(
        "/tmp/medley_bench_fig10.img",
        Config::get().keyspace * 2 + (1u << 16));
    es = std::make_unique<medley::montage::EpochSys>(region.get());
    es->attach(&mgr);
    map = std::make_unique<medley::montage::TxMontageSkiplist>(&mgr,
                                                               es.get(), 1);
    mb::preload(Config::get(), [&](std::uint64_t k) {
      return *exec.execute(mgr, [&] { return map->insert(k, k); }).value;
    });
    // Wire the obs instrumentation AFTER the preload so the preload's
    // transactions don't pollute the recorded tails.
    if (tail != nullptr) {
      medley::TxPolicy p =
          medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>());
      p.latency_hist = tail->tx_hist();
      p.attempts_hist = tail->attempts_hist();
      exec = medley::TxExecutor(p);
    }
    advancer = persist_on;
    if (persist_on) es->start_advancer(10);
  }
  ~MontageSkip() {
    if (advancer) es->stop_advancer();
    map.reset();
    es.reset();
    region.reset();
    std::remove("/tmp/medley_bench_fig10.img");
  }
};
MontageSkip* g_montage = nullptr;

void bm_nvm_txoff(benchmark::State& state) {
  run_ops(state, static_cast<int>(state.range(0)),
          [&](OpKind op, std::uint64_t k) {
            switch (op) {
              case OpKind::Get: g_montage->map->get(k); break;
              case OpKind::Insert: g_montage->map->insert(k, k); break;
              case OpKind::Remove: g_montage->map->remove(k); break;
            }
          });
}

void bm_nvm_txon(benchmark::State& state) {
  run_tx_ops(state, g_montage->exec, g_montage->mgr, *g_montage->map);
}

void register_all() {
  // The paper measures at 40 threads; we use the top of the configured
  // sweep (hardware here is a single core — see EXPERIMENTS.md).
  const int threads = Config::get().threads.back();
  const double mt = Config::get().min_time;

  auto reg = [&](const char* name, void (*fn)(benchmark::State&),
                 void (*setup)(const benchmark::State&),
                 void (*teardown)(const benchmark::State&)) {
    for (std::size_t ri = 0; ri < mb::ratios().size(); ri++) {
      std::string full = std::string("fig10/") + name +
                         "/ratio:" + mb::ratios()[ri].label;
      auto* b = benchmark::RegisterBenchmark(full.c_str(), fn);
      b->Arg(static_cast<int>(ri));
      b->Setup(setup);
      b->Teardown(teardown);
      b->UseRealTime()->MinTime(mt)->Threads(threads);
    }
  };

  // Every Setup allocates the recorder first (and pre-calibrates the TSC
  // scale, keeping it off the timed loop); Teardown deletes the adapter
  // BEFORE the recorder because TxOn executors point into it.
  reg(
      "dram/Original", bm_original,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_plain = new mb::PlainSkiplist<std::uint64_t, std::uint64_t>();
        mb::preload(Config::get(),
                    [&](std::uint64_t k) { return g_plain->insert(k, k); });
      },
      [](const benchmark::State&) {
        delete g_plain;
        g_plain = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
  reg(
      "dram/TxOff", bm_txoff,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_medley = new MedleySkip();
        g_medley->map = std::make_unique<
            medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>>(
            &g_medley->mgr);
        mb::preload(Config::get(), [&](std::uint64_t k) {
          return g_medley->map->insert(k, k);
        });
      },
      [](const benchmark::State&) {
        delete g_medley;
        g_medley = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
  reg(
      "dram/TxOn", bm_txon,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_medley = new MedleySkip();
        g_medley->map = std::make_unique<
            medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>>(
            &g_medley->mgr);
        mb::preload(Config::get(), [&](std::uint64_t k) {
          return g_medley->map->insert(k, k);
        });
        // Transaction-level tails via the executor's own instrumentation.
        medley::TxPolicy p;
        p.latency_hist = g_tail->tx_hist();
        p.attempts_hist = g_tail->attempts_hist();
        g_medley->exec = medley::TxExecutor(p);
      },
      [](const benchmark::State&) {
        delete g_medley;
        g_medley = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
  reg(
      "nvm-off/TxOff", bm_nvm_txoff,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_montage = new MontageSkip();
        g_montage->setup(/*persist_on=*/false, nullptr);
      },
      [](const benchmark::State&) {
        delete g_montage;
        g_montage = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
  reg(
      "nvm-off/TxOn", bm_nvm_txon,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_montage = new MontageSkip();
        g_montage->setup(/*persist_on=*/false, g_tail);
      },
      [](const benchmark::State&) {
        delete g_montage;
        g_montage = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
  reg(
      "persist-on/TxOff", bm_nvm_txoff,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_montage = new MontageSkip();
        g_montage->setup(/*persist_on=*/true, nullptr);
      },
      [](const benchmark::State&) {
        delete g_montage;
        g_montage = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
  reg(
      "persist-on/TxOn", bm_nvm_txon,
      [](const benchmark::State&) {
        g_tail = new mb::TailRecorder();
        mb::TailRecorder::ns_per_tick();
        g_montage = new MontageSkip();
        g_montage->setup(/*persist_on=*/true, g_tail);
      },
      [](const benchmark::State&) {
        delete g_montage;
        g_montage = nullptr;
        delete g_tail;
        g_tail = nullptr;
      });
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

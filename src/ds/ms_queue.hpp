#pragma once
// NBTC transform of the Michael & Scott nonblocking queue (PODC '96).
//
// This is the structure that demonstrates NBTC's reach beyond sets and
// mappings (transactional boosting has no inverse for a FIFO dequeue;
// LFTT/DTT cannot express critical nodes for one): the queue composes
// because both operations have immediately identifiable linearization
// points —
//   enqueue: the CAS that links the new node at tail->next (lin = pub);
//   dequeue: the CAS that swings head (update), or the load observing
//            head->next == nullptr (empty: a read-only outcome, validated
//            via the read set).
// Tail swings are benign helping (never linearize anybody by themselves)
// and run as encountered; the post-dequeue retirement of the old dummy is
// cleanup.

#include <optional>

#include "core/medley.hpp"

namespace medley::ds {

template <typename T>
class MSQueue : public core::Composable {
 public:
  explicit MSQueue(core::TxManager* manager) : Composable(manager) {
    Node* dummy = new Node(T{});
    head_.store(dummy);
    tail_.store(dummy);
  }

  ~MSQueue() override {
    Node* n = head_.load();
    while (n != nullptr) {
      Node* nx = n->next.load();
      delete n;
      n = nx;
    }
  }

  void enqueue(const T& v) {
    OpStarter op(mgr);
    Node* node = tNew<Node>(v);
    for (;;) {
      Node* t = tail_.load_tail();
      Node* n = t->next.nbtcLoad();
      if (n != nullptr) {
        // Tail lags: help it forward (benign unless it touches our own
        // speculative state, in which case nbtcCAS promotes it).
        tail_.obj.nbtcCAS(t, n, false, false);
        continue;
      }
      if (t->next.nbtcCAS(nullptr, node, /*lin=*/true, /*pub=*/true)) {
        addToCleanups([this, t, node] { tail_.obj.CAS(t, node); });
        return;
      }
    }
  }

  std::optional<T> dequeue() {
    OpStarter op(mgr);
    for (;;) {
      Node* h = head_.obj.nbtcLoad();
      Node* t = tail_.load_tail();
      Node* n = h->next.nbtcLoad();
      if (h == t) {
        if (n == nullptr) {
          // Empty: h->next == nullptr proves h is the last node, which in
          // turn proves h is still the head (the head can only move past a
          // node whose next is non-null). Validate exactly that load.
          addToReadSet(&h->next, static_cast<Node*>(nullptr));
          return std::nullopt;
        }
        tail_.obj.nbtcCAS(t, n, false, false);  // helping
        continue;
      }
      if (n == nullptr) continue;  // transient: head behind tail snapshot
      T val = n->val;
      if (head_.obj.nbtcCAS(h, n, /*lin=*/true, /*pub=*/true)) {
        addToCleanups([this, h] { tRetire(h); });
        return val;
      }
    }
  }

  /// Front value without dequeuing. Read-only in both outcomes, with the
  /// same evidence as empty(): h->next == nullptr proves emptiness and
  /// pins h's head-ness; for a non-empty queue, n = h->next is write-once,
  /// so validating h's head-ness keeps n the front until commit. The
  /// merged ShardedMedleyStore feed uses this to k-way-merge shard feeds
  /// inside one transaction (peek all heads, dequeue the smallest).
  std::optional<T> peek() {
    OpStarter op(mgr);
    Node* h = head_.obj.nbtcLoad();
    Node* n = h->next.nbtcLoad();
    if (n == nullptr) {
      addToReadSet(&h->next, static_cast<Node*>(nullptr));
      return std::nullopt;
    }
    addToReadSet(&head_.obj, h);
    return n->val;
  }

  /// True iff the queue appears empty. Read-only in both outcomes:
  ///  - empty: validate h->next == nullptr (which also pins h == head,
  ///    since the head can only move past a node with non-null next);
  ///  - non-empty: h->next is write-once, so the evidence that can decay
  ///    is h's head-ness — validate the head cell itself.
  bool empty() {
    OpStarter op(mgr);
    Node* h = head_.obj.nbtcLoad();
    Node* n = h->next.nbtcLoad();
    if (n == nullptr) {
      addToReadSet(&h->next, static_cast<Node*>(nullptr));
      return true;
    }
    addToReadSet(&head_.obj, h);
    return false;
  }

  /// Quiescent count (tests only).
  std::size_t size_slow() {
    OpStarter op(mgr);
    std::size_t c = 0;
    for (Node* n = head_.load()->next.load(); n != nullptr;
         n = n->next.load()) {
      c++;
    }
    return c;
  }

 private:
  struct Node {
    T val;
    core::CASObj<Node*> next;
    explicit Node(const T& v) : val(v), next(nullptr) {}
  };

  // head and tail live on separate cache lines; wrap the CASObj so the
  // padding composes.
  struct alignas(util::kCacheLine) PaddedCell {
    core::CASObj<Node*> obj;
    Node* load() { return obj.load(); }
    Node* load_tail() { return obj.nbtcLoad(); }
    void store(Node* n) { obj.store(n); }
  };

  PaddedCell head_;
  PaddedCell tail_;
};

}  // namespace medley::ds

#pragma once
// NBTC transform of the Natarajan & Mittal lock-free external BST
// (PPoPP '14). This is the paper's example of an operation with a
// *publication point* distinct from its linearization point (Sec. 2.2):
//
//   delete(k) = injection (flag the parent->leaf edge)   — pub_pt
//             + tag the sibling edge                     — inside interval
//             + excision (swing the ancestor edge)       — lin_pt
//
// All three CASes fall in the speculation interval, so inside a
// transaction they are installed together and take effect atomically at
// commit; outside a transaction they execute in the classic NM fashion,
// with other updates helping to finish a published (flagged) delete they
// stumble over. Reads ignore flags (the delete has not linearized until
// the excision), exactly as the paper prescribes.
//
//   insert(k) = single CAS replacing the leaf with a new internal node
//               (lin = pub).
//
// Read validation (see DESIGN.md §5): a read's evidence is the
// parent->leaf edge it terminated through; if that edge carried flag/tag
// bits, the pending excision will land on the *ancestor* edge without
// touching the parent edge, so the read registers the ancestor edge too.
//
// Edge mark bits: FLAG = 1 (leaf below is being deleted),
//                 TAG  = 2 (edge must not change: sibling of a flagged leaf).

#include <optional>
#include <vector>

#include "core/medley.hpp"
#include "ds/marked_ptr.hpp"

namespace medley::ds {

template <typename K, typename V>
class NatarajanBST : public core::Composable {
  static constexpr std::uintptr_t kFlag = 1;
  static constexpr std::uintptr_t kTag = 2;

 public:
  explicit NatarajanBST(core::TxManager* manager) : Composable(manager) {
    Node* leaf1 = new Node(IKey::inf(1), V{});
    Node* leaf2 = new Node(IKey::inf(2), V{});
    Node* leaf3 = new Node(IKey::inf(3), V{});
    s_ = new Node(IKey::inf(2), leaf1, leaf2);
    r_ = new Node(IKey::inf(3), s_, leaf3);
  }

  ~NatarajanBST() override { destroy(r_); }

  std::optional<V> get(const K& k) {
    OpStarter op(mgr);
    Seek sr;
    seek(k, sr);
    std::optional<V> res;
    if (sr.leaf->key.is_real(k)) res = sr.leaf->val;
    register_read_evidence(sr);
    return res;
  }

  bool contains(const K& k) { return get(k).has_value(); }

  bool insert(const K& k, const V& v) {
    OpStarter op(mgr);
    Seek sr;
    Node* new_leaf = nullptr;
    for (;;) {
      seek(k, sr);
      if (sr.leaf->key.is_real(k)) {
        if (new_leaf != nullptr) tDelete(new_leaf);
        register_read_evidence(sr);
        return false;
      }
      if (new_leaf == nullptr) new_leaf = tNew<Node>(IKey::real(k), v);
      // New internal node: routes k and the displaced leaf; its key is the
      // larger of the two, left child the smaller.
      Node* sibling = sr.leaf;
      Node* internal =
          IKey::real(k) < sibling->key
              ? tNew<Node>(sibling->key, new_leaf, sibling)
              : tNew<Node>(IKey::real(k), sibling, new_leaf);
      if (sr.parent_edge->nbtcCAS(sr.leaf, internal, /*lin=*/true,
                                  /*pub=*/true)) {
        return true;
      }
      tDelete(internal);
      // Failed: the edge moved, or carries flag/tag bits from a pending
      // delete — help finish it, then retry.
      Node* raw = sr.parent_edge->nbtcLoad();
      if (unmark(raw) == sr.leaf && mark_bits(raw) != 0) {
        cleanup(k, sr, /*lin=*/false);
      }
    }
  }

  std::optional<V> remove(const K& k) {
    OpStarter op(mgr);
    Seek sr;
    bool injected = false;
    Node* target = nullptr;
    V captured{};
    for (;;) {
      seek(k, sr);
      if (!injected) {
        if (!sr.leaf->key.is_real(k)) {
          register_read_evidence(sr);
          return std::nullopt;
        }
        captured = sr.leaf->val;
        // Injection: publish intent by flagging the parent->leaf edge.
        if (sr.parent_edge->nbtcCAS(sr.leaf, mark(sr.leaf, kFlag),
                                    /*lin=*/false, /*pub=*/true)) {
          injected = true;
          target = sr.leaf;
          if (cleanup(k, sr, /*lin=*/true)) return captured;
        } else {
          Node* raw = sr.parent_edge->nbtcLoad();
          if (unmark(raw) == sr.leaf && mark_bits(raw) != 0) {
            cleanup(k, sr, /*lin=*/false);  // help whoever got there first
          }
        }
      } else {
        // Injection done; finish (or discover a helper finished) excision.
        if (sr.leaf != target) return captured;
        if (cleanup(k, sr, /*lin=*/true)) return captured;
      }
    }
  }

  /// Quiescent scans (tests/diagnostics).
  std::size_t size_slow() {
    OpStarter op(mgr);
    std::size_t n = 0;
    count(r_, n);
    return n;
  }

  std::vector<K> keys_slow() {
    OpStarter op(mgr);
    std::vector<K> out;
    collect(r_, out);
    return out;
  }

  /// Structural audit: external-BST ordering invariant.
  bool invariants_hold_slow() {
    OpStarter op(mgr);
    return check(r_, nullptr, nullptr);
  }

 private:
  template <typename T>
  using CASObj = core::CASObj<T>;

  /// Key with three artificial infinities above all real keys.
  struct IKey {
    K k{};
    int rank = 0;  // 0 = real, 1..3 = infinities
    static IKey real(const K& key) { return IKey{key, 0}; }
    static IKey inf(int r) { return IKey{K{}, r}; }
    bool is_real(const K& key) const { return rank == 0 && k == key; }
    friend bool operator<(const IKey& a, const IKey& b) {
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.rank == 0 && a.k < b.k;
    }
  };

  struct Node {
    IKey key;
    V val;          // meaningful for leaves only
    bool internal;  // immutable after construction
    CASObj<Node*> left, right;
    Node(IKey ik, const V& v)  // leaf
        : key(ik), val(v), internal(false), left(nullptr), right(nullptr) {}
    Node(IKey ik, Node* l, Node* r)  // internal
        : key(ik), val(V{}), internal(true), left(l), right(r) {}
  };

  struct Seek {
    Node* ancestor;
    Node* successor;
    Node* parent;
    Node* leaf;
    CASObj<Node*>* ancestor_edge;  // ancestor's child field on the path
    CASObj<Node*>* parent_edge;    // parent's child field holding leaf
    Node* ancestor_raw;            // raw values as loaded (with bits)
    Node* parent_raw;
  };

  CASObj<Node*>* child_toward(Node* n, const IKey& k) {
    return k < n->key ? &n->left : &n->right;
  }

  /// NM seek: descend to the leaf for k, maintaining the (ancestor,
  /// successor) pair = source and target of the deepest *untagged* edge on
  /// the path (the edge an excision of the current parent would swing).
  void seek(const K& key, Seek& sr) {
    const IKey k = IKey::real(key);
    sr.ancestor = r_;
    sr.ancestor_edge = &r_->left;
    sr.ancestor_raw = r_->left.nbtcLoad();
    sr.successor = unmark(sr.ancestor_raw);
    sr.parent = sr.successor;  // == s_
    Node* parent_field = sr.parent->left.nbtcLoad();  // real keys go left of S
    sr.parent_edge = &sr.parent->left;
    sr.leaf = unmark(parent_field);
    sr.parent_raw = parent_field;

    Node* current = sr.leaf;
    while (current->internal) {
      CASObj<Node*>* edge = child_toward(current, k);
      Node* current_field = edge->nbtcLoad();
      if (!is_marked(parent_field, kTag)) {
        sr.ancestor = sr.parent;
        sr.ancestor_edge = sr.parent_edge;
        sr.ancestor_raw = parent_field;
        sr.successor = sr.leaf;
      }
      sr.parent = sr.leaf;
      sr.parent_edge = edge;
      sr.parent_raw = current_field;
      sr.leaf = unmark(current_field);
      parent_field = current_field;
      current = sr.leaf;
    }
  }

  /// Read evidence: the terminal edge, plus the ancestor edge when the
  /// terminal edge carries bits (a pending delete will linearize by
  /// swinging the ancestor edge without touching the terminal one).
  void register_read_evidence(Seek& sr) {
    addToReadSet(sr.parent_edge, sr.parent_raw);
    if (mark_bits(sr.parent_raw) != 0) {
      addToReadSet(sr.ancestor_edge, sr.ancestor_raw);
    }
  }

  /// Excise the flagged leaf at sr.parent: tag the surviving edge, then
  /// swing the ancestor edge to the surviving subtree. `lin` marks this as
  /// the calling operation's own linearization (deleter) vs pure helping.
  bool cleanup(const K& key, Seek& sr, bool lin) {
    const IKey k = IKey::real(key);
    Node* par = sr.parent;
    CASObj<Node*>* child_edge;
    CASObj<Node*>* sibling_edge;
    if (k < par->key) {
      child_edge = &par->left;
      sibling_edge = &par->right;
    } else {
      child_edge = &par->right;
      sibling_edge = &par->left;
    }
    Node* child_raw = child_edge->nbtcLoad();
    CASObj<Node*>* flagged_edge = child_edge;
    CASObj<Node*>* surviving_edge = sibling_edge;
    if (!is_marked(child_raw, kFlag)) {
      // The delete being helped flagged the *other* side.
      flagged_edge = sibling_edge;
      surviving_edge = child_edge;
      Node* fraw = flagged_edge->nbtcLoad();
      if (!is_marked(fraw, kFlag)) return false;  // nothing to clean anymore
      child_raw = fraw;
    }
    Node* victim_leaf = unmark(child_raw);

    // Tag the surviving edge so no insert can slip under the excision.
    for (;;) {
      Node* s = surviving_edge->nbtcLoad();
      if (is_marked(s, kTag)) break;
      surviving_edge->nbtcCAS(s, mark(s, kTag), false, false);
    }

    // Excision: swing the ancestor edge to the surviving subtree,
    // preserving a flag the surviving edge may itself carry.
    //
    // Retirement policy: the excision may be the deleter's linearizing
    // CAS, and a lin_pt success would clear the speculation flag before
    // we could consult it — misclassifying a speculative (installed)
    // excision as plain and retiring nodes that an abort would re-link
    // (a double-free the ASAN sweeps caught). So: execute the CAS with
    // lin=false, sample the flag afterwards (exact: an installing CAS
    // leaves it set), retire on the matching path, and end the interval
    // manually for the deleter.
    Node* sraw = surviving_edge->nbtcLoad();
    Node* replacement =
        is_marked(sraw, kFlag) ? mark(unmark(sraw), kFlag) : unmark(sraw);
    if (sr.ancestor_edge->nbtcCAS(sr.successor, replacement, /*lin=*/false,
                                  /*pub=*/false)) {
      core::TxManager::ThreadCtx* c = core::TxManager::active_ctx();
      const bool speculative = c != nullptr && c->spec_interval;
      if (speculative) {
        tRetire(par);
        tRetire(victim_leaf);
        if (lin) c->spec_interval = false;  // the delete just linearized
      } else {
        smr::EBR::instance().retire(par);
        smr::EBR::instance().retire(victim_leaf);
      }
      return true;
    }
    return false;
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    if (n->internal) {
      destroy(unmark(n->left.load()));
      destroy(unmark(n->right.load()));
    }
    delete n;
  }

  void count(Node* n, std::size_t& acc) {
    if (n->internal) {
      count(unmark(n->left.load()), acc);
      count(unmark(n->right.load()), acc);
    } else if (n->key.rank == 0) {
      acc++;
    }
  }

  void collect(Node* n, std::vector<K>& out) {
    if (n->internal) {
      collect(unmark(n->left.load()), out);
      collect(unmark(n->right.load()), out);
    } else if (n->key.rank == 0) {
      out.push_back(n->key.k);
    }
  }

  bool check(Node* n, const IKey* lo, const IKey* hi) {
    if (lo != nullptr && n->key < *lo) return false;
    if (hi != nullptr && !(n->key < *hi)) return false;
    if (!n->internal) return true;
    return check(unmark(n->left.load()), lo, &n->key) &&
           check(unmark(n->right.load()), &n->key, hi);
  }

  Node* r_;
  Node* s_;
};

}  // namespace medley::ds

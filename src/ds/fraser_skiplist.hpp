#pragma once
// NBTC transform of Fraser's CAS-based lock-free skiplist (Fraser '03,
// ch. 4; the Herlihy–Shavit presentation). Map semantics, up to 20 levels
// (the paper's configuration).
//
// Linearization points:
//   insert : the CAS linking the new node at level 0 (lin = pub);
//            upper-level linking is post-linearization cleanup.
//   remove : the CAS marking the victim's level-0 next pointer (lin = pub);
//            upper-level marks are benign pre-linearization CASes (they
//            cannot make the remove take effect and merely demote the
//            node), and physical unlinking + retirement is cleanup.
//   get    : the load of curr->next[0] observing curr unmarked (found), or
//            of preds[0]->next[0] observing the gap (absent).
//
// Retirement policy: only the remover retires a node, in its cleanup,
// after one complete search(k) call has ensured the node is unlinked from
// every level (helping searches unlink but never retire). This differs
// from the single-level list, where the successful unlinker retires.

#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/medley.hpp"
#include "ds/marked_ptr.hpp"
#include "util/rng.hpp"
#include "util/thread_registry.hpp"

namespace medley::ds {

template <typename K, typename V, int kMaxLevel = 20>
class FraserSkiplist : public core::Composable {
 public:
  explicit FraserSkiplist(core::TxManager* manager)
      : Composable(manager), head_(new Node(K{}, V{}, kMaxLevel)) {}

  ~FraserSkiplist() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = unmark(n->next[0].load());
      delete n;
      n = nx;
    }
  }

  std::optional<V> get(const K& k) {
    OpStarter op(mgr);
    Pos pos;
    std::optional<V> res;
    if (find(pos, k)) {
      res = pos.succs[0]->val;
      addToReadSet(&pos.succs[0]->next[0], pos.succ0_next);
    } else {
      addToReadSet(&pos.preds[0]->next[0], pos.succs[0]);
    }
    return res;
  }

  /// Existence-only probe: same linearizing evidence as get() (the
  /// level-0 witness link joins the read set) without copying the value.
  bool contains(const K& k) {
    OpStarter op(mgr);
    Pos pos;
    if (find(pos, k)) {
      addToReadSet(&pos.succs[0]->next[0], pos.succ0_next);
      return true;
    }
    addToReadSet(&pos.preds[0]->next[0], pos.succs[0]);
    return false;
  }

  bool insert(const K& k, const V& v) {
    OpStarter op(mgr);
    Pos pos;
    Node* node = nullptr;
    for (;;) {
      if (find(pos, k)) {
        if (node != nullptr) tDelete(node);
        addToReadSet(&pos.succs[0]->next[0], pos.succ0_next);
        return false;
      }
      if (node == nullptr) node = tNew<Node>(k, v, random_level());
      for (int i = 0; i < node->level; i++) node->next[i].store(pos.succs[i]);
      if (pos.preds[0]->next[0].nbtcCAS(pos.succs[0], node, /*lin=*/true,
                                        /*pub=*/true)) {
        if (node->level > 1) {
          addToCleanups([this, node, k] { link_upper(node, k); });
        }
        return true;
      }
    }
  }

  std::optional<V> remove(const K& k) {
    OpStarter op(mgr);
    Pos pos;
    for (;;) {
      if (!find(pos, k)) {
        addToReadSet(&pos.preds[0]->next[0], pos.succs[0]);
        return std::nullopt;
      }
      Node* victim = pos.succs[0];
      // Demote: mark every upper level, top down (benign helping CASes).
      for (int lvl = victim->level - 1; lvl >= 1; lvl--) {
        Node* nx = victim->next[lvl].nbtcLoad();
        while (!is_marked(nx)) {
          victim->next[lvl].nbtcCAS(nx, mark(nx), false, false);
          nx = victim->next[lvl].nbtcLoad();
        }
      }
      // Linearize: mark level 0.
      Node* nx0 = victim->next[0].nbtcLoad();
      while (!is_marked(nx0)) {
        if (victim->next[0].nbtcCAS(nx0, mark(nx0), /*lin=*/true,
                                    /*pub=*/true)) {
          V res = victim->val;
          addToCleanups([this, victim, k] {
            Pos p;
            find(p, k);  // one full search unlinks victim everywhere
            tRetire(victim);
          });
          return res;
        }
        nx0 = victim->next[0].nbtcLoad();
      }
      // Lost the race to another remover: re-evaluate from scratch.
    }
  }

  /// Ordered range query: all live entries with lo <= key <= hi, ascending.
  /// Transactional callers get an atomic snapshot: every level-0 link from
  /// the predecessor of lo through the first key beyond hi joins the read
  /// set, so any insert or remove inside the window between our traversal
  /// and commit fails validation (an insert rewrites a covered next[0], a
  /// remove marks one). Read-set capacity bounds the window (~4K entries;
  /// overflow is a retryable Capacity abort).
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    return scan_impl(
        lo, [&hi](const K& k) { return !(hi < k); },
        std::numeric_limits<std::size_t>::max());
  }

  /// Ordered scan: up to `limit` live entries with key >= lo, ascending.
  /// Same transactional evidence as range() for the visited prefix.
  std::vector<std::pair<K, V>> scan(const K& lo, std::size_t limit) {
    return scan_impl(lo, [](const K&) { return true; }, limit);
  }

  /// Quiescent scans (tests/diagnostics).
  std::size_t size_slow() {
    OpStarter op(mgr);
    std::size_t n = 0;
    for (Node* cur = unmark(head_->next[0].load()); cur != nullptr;
         cur = unmark(cur->next[0].load())) {
      if (!is_marked(cur->next[0].load())) n++;
    }
    return n;
  }

  std::vector<K> keys_slow() {
    OpStarter op(mgr);
    std::vector<K> out;
    for (Node* cur = unmark(head_->next[0].load()); cur != nullptr;
         cur = unmark(cur->next[0].load())) {
      if (!is_marked(cur->next[0].load())) out.push_back(cur->key);
    }
    return out;
  }

  /// Structural audit for property tests: level-0 keys strictly ascending,
  /// and every node linked at level i>0 is also reachable at level 0.
  bool invariants_hold_slow() {
    OpStarter op(mgr);
    // Strict ascent at level 0.
    Node* prev = nullptr;
    for (Node* cur = unmark(head_->next[0].load()); cur != nullptr;
         cur = unmark(cur->next[0].load())) {
      if (prev != nullptr && !(prev->key < cur->key)) return false;
      prev = cur;
    }
    // Upper-level sortedness.
    for (int lvl = 1; lvl < kMaxLevel; lvl++) {
      Node* p = nullptr;
      for (Node* cur = unmark(head_->next[lvl].load()); cur != nullptr;
           cur = unmark(cur->next[lvl].load())) {
        if (p != nullptr && !(p->key < cur->key)) return false;
        p = cur;
      }
    }
    return true;
  }

 private:
  template <typename T>
  using CASObj = core::CASObj<T>;

  struct Node {
    K key;
    V val;
    int level;
    std::unique_ptr<CASObj<Node*>[]> next;
    Node(const K& k, const V& v, int lvl)
        : key(k), val(v), level(lvl), next(new CASObj<Node*>[lvl]) {}
  };

  struct Pos {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    Node* succ0_next = nullptr;  // raw (unmarked) next of succs[0] if found
  };

  static int random_level() {
    thread_local util::Xoshiro256 rng(
        0x9e3779b97f4a7c15ULL ^
        static_cast<std::uint64_t>(util::ThreadRegistry::tid() + 1) *
            0x2545f4914f6cdd1dULL);
    int lvl = 1;
    while (lvl < kMaxLevel && (rng.next() & 1)) lvl++;
    return lvl;
  }

  /// Fraser's search: compute preds/succs at every level for key k,
  /// unlinking marked nodes encountered on the path (restarting from the
  /// top when an unlink CAS fails). Returns true iff succs[0] holds k.
  bool find(Pos& pos, const K& k) {
  retry:
    Node* pred = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; lvl--) {
      Node* curr = pred->next[lvl].nbtcLoad();
      // A marked value here means pred itself was deleted while we were
      // descending from the level above: restart from the head.
      if (is_marked(curr)) goto retry;
      for (;;) {
        if (curr == nullptr) break;
        Node* raw = curr->next[lvl].nbtcLoad();
        if (is_marked(raw)) {
          // curr is logically deleted at this level: help unlink. No
          // retirement here — the remover retires after its own search.
          if (!pred->next[lvl].nbtcCAS(curr, unmark(raw), false, false)) {
            goto retry;
          }
          curr = unmark(raw);
          continue;
        }
        if (curr->key < k) {
          pred = curr;
          curr = raw;
          continue;
        }
        if (lvl == 0) pos.succ0_next = raw;
        break;
      }
      pos.preds[lvl] = pred;
      pos.succs[lvl] = curr;
    }
    return pos.succs[0] != nullptr && pos.succs[0]->key == k;
  }

  /// Shared body of range()/scan(): walk level 0 from the first key >= lo,
  /// collecting live entries while `in_range(key)` holds and the limit is
  /// unspent. Marked nodes encountered mid-walk are helped out exactly as
  /// in find() — including our own speculative removals, whose unlink CAS
  /// promotes into the transaction's write set — and a failed unlink
  /// restarts the walk from scratch (discarding the partial collection).
  /// Entries registered by an abandoned pass stay in the read set; they
  /// can only cause a spurious validation abort, never an unsound commit.
  /// Footprint tuning (YCSB-E): an uncontended walk registers through
  /// plain addToReadSet and pays nothing extra; the first RESTART engages
  /// dedup — seeding the per-transaction registered-cell set from the
  /// read set, then routing registrations through addToReadSetDedup — so
  /// re-walked links are not registered again and the read set grows as
  /// unique links, not links x passes. (A 4K-entry read set otherwise
  /// tolerates only ~read_cap/window_size passes before a spurious
  /// Capacity abort.)
  template <typename InRange>
  std::vector<std::pair<K, V>> scan_impl(const K& lo, InRange&& in_range,
                                         std::size_t limit) {
    OpStarter op(mgr);
    std::vector<std::pair<K, V>> out;
    bool dedup = false;
    auto reg = [&](CASObj<Node*>* cell, Node* val) {
      if (dedup) {
        addToReadSetDedup(cell, val);
      } else {
        addToReadSet(cell, val);
      }
    };
    for (;;) {
      out.clear();
      Pos pos;
      find(pos, lo);
      CASObj<Node*>* pred_cell = &pos.preds[0]->next[0];
      Node* curr = pos.succs[0];
      // Entry evidence: nothing sits between pred(lo) and the first
      // candidate (pins absence for an empty result, too).
      reg(pred_cell, curr);
      bool restart = false;
      while (curr != nullptr && out.size() < limit && in_range(curr->key)) {
        Node* raw = curr->next[0].nbtcLoad();
        if (is_marked(raw)) {
          // curr is logically deleted: help unlink it past pred_cell (no
          // retirement — the remover retires after its own search).
          if (!pred_cell->nbtcCAS(curr, unmark(raw), false, false)) {
            restart = true;
            break;
          }
          // Inside a transaction, a *pre-speculation* help just rewrote a
          // cell this transaction already registered (pred_cell is always
          // in the read set by now), so commit-time validation can no
          // longer pass. Abort here — the retry policy re-runs against
          // the cleaned list — rather than complete a doomed walk. Within speculation
          // the CAS joined our write set instead and validation accepts
          // the own-descriptor overwrite: keep walking.
          if (auto* c = core::TxManager::active_ctx();
              c != nullptr && !c->spec_interval) {
            c->mgr->validateReads();
          }
          curr = unmark(raw);
          continue;
        }
        out.emplace_back(curr->key, curr->val);
        reg(&curr->next[0], raw);  // witnesses curr live + successor
        pred_cell = &curr->next[0];
        curr = raw;
      }
      if (!restart) return out;
      if (!dedup) {
        seedReadSetDedup();
        dedup = true;
      }
    }
  }

  /// Post-linearization cleanup of insert: link `node` at levels 1..h-1.
  /// Abandons a level (and the rest) as soon as the node is found marked.
  void link_upper(Node* node, const K& k) {
    bool abandoned = false;
    for (int lvl = 1; lvl < node->level && !abandoned; lvl++) {
      for (;;) {
        Pos pos;
        find(pos, k);
        Node* cur = node->next[lvl].load();
        if (is_marked(cur) || pos.succs[0] != node) {
          abandoned = true;  // node being/been removed: stop helping it up
          break;
        }
        if (cur != pos.succs[lvl] &&
            !node->next[lvl].CAS(cur, pos.succs[lvl])) {
          abandoned = true;  // concurrently marked
          break;
        }
        if (pos.preds[lvl]->next[lvl].CAS(pos.succs[lvl], node)) break;
        // Predecessor moved: re-find and retry this level.
      }
    }
    // Fraser's closing check: a concurrent remove may have finished its
    // unlinking search *before* one of our tower links landed, leaving the
    // (already retired) node reachable at that level. If the node is
    // marked, run one more search — it unlinks whatever we linked, and it
    // happens before our EBR guard releases, i.e. before the node can be
    // freed.
    if (is_marked(node->next[0].load())) {
      Pos pos;
      find(pos, k);
    }
  }

  Node* head_;
};

}  // namespace medley::ds

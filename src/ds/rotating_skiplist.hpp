#pragma once
// NBTC transform of a simplified rotating skiplist (Dick, Fekete &
// Gramoli, CCPE '16).
//
// Substitution note (DESIGN.md §4): the published structure stores each
// node's tower as a contiguous array ("wheel") for cache locality and uses
// a background thread to rotate/adapt wheel heights. We keep the
// NBTC-relevant properties — inline array towers, one immediately
// identifiable linearizing CAS per update (level 0), loads for reads —
// but derive heights deterministically from a hash of the key instead of
// running a maintenance thread (deterministic tests, no hidden
// concurrency). Traversal, marking and helping follow the same
// Harris-style protocol as the Fraser list, so the Medley transform is
// identical; what differs is the memory layout this structure was designed
// to showcase.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/medley.hpp"
#include "ds/marked_ptr.hpp"

namespace medley::ds {

template <typename K, typename V, int kLevels = 8>
class RotatingSkiplist : public core::Composable {
 public:
  explicit RotatingSkiplist(core::TxManager* manager)
      : Composable(manager), head_(new Node(K{}, V{}, kLevels)) {}

  ~RotatingSkiplist() override {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = unmark(n->wheel[0].load());
      delete n;
      n = nx;
    }
  }

  std::optional<V> get(const K& k) {
    OpStarter op(mgr);
    Pos pos;
    std::optional<V> res;
    if (find(pos, k)) {
      res = pos.succs[0]->val;
      addToReadSet(&pos.succs[0]->wheel[0], pos.succ0_next);
    } else {
      addToReadSet(&pos.preds[0]->wheel[0], pos.succs[0]);
    }
    return res;
  }

  bool contains(const K& k) { return get(k).has_value(); }

  bool insert(const K& k, const V& v) {
    OpStarter op(mgr);
    Pos pos;
    Node* node = nullptr;
    for (;;) {
      if (find(pos, k)) {
        if (node != nullptr) tDelete(node);
        addToReadSet(&pos.succs[0]->wheel[0], pos.succ0_next);
        return false;
      }
      if (node == nullptr) node = tNew<Node>(k, v, height_of(k));
      for (int i = 0; i < node->height; i++) node->wheel[i].store(pos.succs[i]);
      if (pos.preds[0]->wheel[0].nbtcCAS(pos.succs[0], node, /*lin=*/true,
                                         /*pub=*/true)) {
        if (node->height > 1) {
          addToCleanups([this, node, k] { link_upper(node, k); });
        }
        return true;
      }
    }
  }

  std::optional<V> remove(const K& k) {
    OpStarter op(mgr);
    Pos pos;
    for (;;) {
      if (!find(pos, k)) {
        addToReadSet(&pos.preds[0]->wheel[0], pos.succs[0]);
        return std::nullopt;
      }
      Node* victim = pos.succs[0];
      for (int lvl = victim->height - 1; lvl >= 1; lvl--) {
        Node* nx = victim->wheel[lvl].nbtcLoad();
        while (!is_marked(nx)) {
          victim->wheel[lvl].nbtcCAS(nx, mark(nx), false, false);
          nx = victim->wheel[lvl].nbtcLoad();
        }
      }
      Node* nx0 = victim->wheel[0].nbtcLoad();
      while (!is_marked(nx0)) {
        if (victim->wheel[0].nbtcCAS(nx0, mark(nx0), /*lin=*/true,
                                     /*pub=*/true)) {
          V res = victim->val;
          addToCleanups([this, victim, k] {
            Pos p;
            find(p, k);
            tRetire(victim);
          });
          return res;
        }
        nx0 = victim->wheel[0].nbtcLoad();
      }
    }
  }

  std::size_t size_slow() {
    OpStarter op(mgr);
    std::size_t n = 0;
    for (Node* cur = unmark(head_->wheel[0].load()); cur != nullptr;
         cur = unmark(cur->wheel[0].load())) {
      if (!is_marked(cur->wheel[0].load())) n++;
    }
    return n;
  }

  std::vector<K> keys_slow() {
    OpStarter op(mgr);
    std::vector<K> out;
    for (Node* cur = unmark(head_->wheel[0].load()); cur != nullptr;
         cur = unmark(cur->wheel[0].load())) {
      if (!is_marked(cur->wheel[0].load())) out.push_back(cur->key);
    }
    return out;
  }

  bool invariants_hold_slow() {
    OpStarter op(mgr);
    for (int lvl = 0; lvl < kLevels; lvl++) {
      Node* prev = nullptr;
      for (Node* cur = unmark(head_->wheel[lvl].load()); cur != nullptr;
           cur = unmark(cur->wheel[lvl].load())) {
        if (prev != nullptr && !(prev->key < cur->key)) return false;
        prev = cur;
      }
    }
    return true;
  }

 private:
  template <typename T>
  using CASObj = core::CASObj<T>;

  struct Node {
    K key;
    V val;
    int height;
    CASObj<Node*> wheel[kLevels];  // inline tower: the "wheel"
    Node(const K& k, const V& v, int h) : key(k), val(v), height(h) {}
  };

  struct Pos {
    Node* preds[kLevels];
    Node* succs[kLevels];
    Node* succ0_next = nullptr;
  };

  /// Deterministic tower height: geometric in the number of trailing zero
  /// bits of a mixed key hash.
  static int height_of(const K& k) {
    std::uint64_t h = std::hash<K>{}(k) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    int lvl = 1 + __builtin_ctzll(h | (1ULL << (kLevels - 1)));
    return lvl > kLevels ? kLevels : lvl;
  }

  bool find(Pos& pos, const K& k) {
  retry:
    Node* pred = head_;
    for (int lvl = kLevels - 1; lvl >= 0; lvl--) {
      Node* curr = pred->wheel[lvl].nbtcLoad();
      // A marked value here means pred itself was deleted while we were
      // descending from the level above: restart from the head.
      if (is_marked(curr)) goto retry;
      for (;;) {
        if (curr == nullptr) break;
#ifdef MEDLEY_PARANOID
        if ((reinterpret_cast<std::uintptr_t>(curr) & 7) != 0 ||
            curr->height <= lvl) {
          std::fprintf(stderr,
                       "ROTATING CORRUPT: lvl=%d curr=%p pred=%p "
                       "pred->height=%d\n",
                       lvl, (void*)curr, (void*)pred, pred->height);
          std::abort();
        }
#endif
        Node* raw = curr->wheel[lvl].nbtcLoad();
        if (is_marked(raw)) {
          if (!pred->wheel[lvl].nbtcCAS(curr, unmark(raw), false, false)) {
            goto retry;
          }
          curr = unmark(raw);
          continue;
        }
        if (curr->key < k) {
          pred = curr;
          curr = raw;
          continue;
        }
        if (lvl == 0) pos.succ0_next = raw;
        break;
      }
      pos.preds[lvl] = pred;
      pos.succs[lvl] = curr;
    }
    return pos.succs[0] != nullptr && pos.succs[0]->key == k;
  }

  void link_upper(Node* node, const K& k) {
    bool abandoned = false;
    for (int lvl = 1; lvl < node->height && !abandoned; lvl++) {
      for (;;) {
        Pos pos;
        find(pos, k);
        Node* cur = node->wheel[lvl].load();
        if (is_marked(cur) || pos.succs[0] != node) {
          abandoned = true;
          break;
        }
        if (cur != pos.succs[lvl] &&
            !node->wheel[lvl].CAS(cur, pos.succs[lvl])) {
          abandoned = true;
          break;
        }
        if (pos.preds[lvl]->wheel[lvl].CAS(pos.succs[lvl], node)) break;
      }
    }
    // Fraser's closing check (see fraser_skiplist.hpp): ensure no tower
    // link of ours outlives the remover's unlinking search.
    if (is_marked(node->wheel[0].load())) {
      Pos pos;
      find(pos, k);
    }
  }

  Node* head_;
};

}  // namespace medley::ds

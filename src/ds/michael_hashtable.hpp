#pragma once
// NBTC transform of Michael's lock-free chained hash table (paper Fig. 2;
// Michael, SPAA '02). Each bucket is a Harris/Michael ordered linked list
// with mark-bit logical deletion.
//
// Transform summary (the highlighted lines of Fig. 2):
//  * node `next` fields and bucket heads are CASObj<Node*>;
//  * traversal loads are nbtcLoad (they resolve foreign descriptors and
//    return own speculative values, opening the speculation interval);
//  * the linearizing CAS of each update passes lin_pt=pub_pt=true;
//  * read(-only) outcomes register their linearizing load via addToReadSet;
//  * physical unlink + retirement is post-linearization work, deferred via
//    addToCleanups (runs immediately outside transactions);
//  * helping unlinks inside find() use nbtcCAS(false,false) so that they
//    execute plainly when they complete a *committed* removal but become
//    critical when they touch this transaction's own speculative state
//    (the paper's "operation o2 sees earlier operation o1" complication).
//
// One deliberate deviation from the figure as printed: for a *found*
// read, we register the load of `curr->next` (which witnessed curr
// unmarked) rather than `prev` — a concurrent committed remove(k) marks
// curr->next without touching prev, so validating prev alone would let
// a stale read commit. See DESIGN.md §5.

#include <functional>
#include <optional>
#include <vector>

#include "core/medley.hpp"
#include "ds/marked_ptr.hpp"

namespace medley::ds {

template <typename K, typename V, typename Hash = std::hash<K>>
class MichaelHashTable : public core::Composable {
 public:
  explicit MichaelHashTable(core::TxManager* manager,
                            std::size_t buckets = 1u << 20)
      : Composable(manager), nbuckets_(buckets) {
    buckets_ = new core::CASObj<Node*>[nbuckets_];
  }

  ~MichaelHashTable() override {
    for (std::size_t b = 0; b < nbuckets_; b++) {
      Node* n = buckets_[b].load();
      while (n != nullptr) {
        Node* nx = unmark(n->next.load());
        delete n;
        n = nx;
      }
    }
    delete[] buckets_;
  }

  /// Lookup. Linearizes at the load of curr->next (found) or prev->next
  /// (absent); transactional callers get commit-time validation of that
  /// load.
  std::optional<V> get(const K& k) {
    OpStarter op(mgr);
    CASObj<Node*>* prev;
    Node *curr, *next;
    std::optional<V> res;
    if (find(prev, curr, next, k)) {
      res = curr->val;
      addToReadSet(&curr->next, next);
    } else {
      addToReadSet(prev, curr);
    }
    return res;
  }

  /// Existence-only probe: identical linearization evidence to get() —
  /// the witnessing bucket link joins the read set — but the value is
  /// never materialized, so a contains over a large V copies nothing.
  bool contains(const K& k) {
    OpStarter op(mgr);
    CASObj<Node*>* prev;
    Node *curr, *next;
    if (find(prev, curr, next, k)) {
      addToReadSet(&curr->next, next);
      return true;
    }
    addToReadSet(prev, curr);
    return false;
  }

  /// Insert iff absent. Returns false (and registers the read evidence)
  /// when the key already exists.
  bool insert(const K& k, const V& v) {
    OpStarter op(mgr);
    CASObj<Node*>* prev;
    Node *curr, *next;
    Node* node = nullptr;
    for (;;) {
      if (find(prev, curr, next, k)) {
        if (node != nullptr) tDelete(node);
        addToReadSet(&curr->next, next);
        return false;
      }
      if (node == nullptr) node = tNew<Node>(k, v);
      node->next.store(curr);
      if (prev->nbtcCAS(curr, node, /*lin=*/true, /*pub=*/true)) return true;
    }
  }

  /// Insert-or-replace (Fig. 2's put). Returns the previous value if any.
  /// The replace path links the new node *and* marks the old one in a
  /// single linearizing CAS: curr->next goes from `next` to mark(node)
  /// with node->next == next, so traversals splice node in when they
  /// unlink curr.
  std::optional<V> put(const K& k, const V& v) {
    OpStarter op(mgr);
    CASObj<Node*>* prev;
    Node *curr, *next;
    Node* node = tNew<Node>(k, v);
    for (;;) {
      if (find(prev, curr, next, k)) {
        node->next.store(next);
        if (curr->next.nbtcCAS(next, mark(node), /*lin=*/true,
                               /*pub=*/true)) {
          std::optional<V> res = curr->val;
          addToCleanups(make_unlink_cleanup(prev, curr, node, k));
          return res;
        }
      } else {
        node->next.store(curr);
        if (prev->nbtcCAS(curr, node, /*lin=*/true, /*pub=*/true)) {
          return std::nullopt;
        }
      }
    }
  }

  /// Remove. Linearizes at the mark CAS; physical unlink is cleanup.
  std::optional<V> remove(const K& k) {
    OpStarter op(mgr);
    CASObj<Node*>* prev;
    Node *curr, *next;
    for (;;) {
      if (!find(prev, curr, next, k)) {
        addToReadSet(prev, curr);
        return std::nullopt;
      }
      if (curr->next.nbtcCAS(next, mark(next), /*lin=*/true, /*pub=*/true)) {
        std::optional<V> res = curr->val;
        addToCleanups(make_unlink_cleanup(prev, curr, next, k));
        return res;
      }
    }
  }

  /// Quiescent full scan (tests/diagnostics; not linearizable).
  std::size_t size_slow() {
    OpStarter op(mgr);
    std::size_t n = 0;
    for (std::size_t b = 0; b < nbuckets_; b++) {
      for (Node* cur = buckets_[b].load(); cur != nullptr;) {
        Node* raw = cur->next.load();
        if (!is_marked(raw)) n++;
        cur = unmark(raw);
      }
    }
    return n;
  }

  /// Quiescent key enumeration (tests).
  std::vector<K> keys_slow() {
    OpStarter op(mgr);
    std::vector<K> out;
    for (std::size_t b = 0; b < nbuckets_; b++) {
      for (Node* cur = buckets_[b].load(); cur != nullptr;) {
        Node* raw = cur->next.load();
        if (!is_marked(raw)) out.push_back(cur->key);
        cur = unmark(raw);
      }
    }
    return out;
  }

 private:
  template <typename T>
  using CASObj = core::CASObj<T>;

  struct Node {
    K key;
    V val;
    CASObj<Node*> next;
    Node(const K& k, const V& v) : key(k), val(v), next(nullptr) {}
  };

  std::size_t bucket_of(const K& k) const { return Hash{}(k) % nbuckets_; }

  /// Michael's find: position (prev, curr, next) for key k in its bucket,
  /// unlinking any marked (logically deleted) nodes encountered. Returns
  /// true iff curr holds k. Restarts from the bucket head when an unlink
  /// CAS fails.
  bool find(CASObj<Node*>*& prev, Node*& curr, Node*& next, const K& k) {
  retry:
    prev = &buckets_[bucket_of(k)];
    curr = prev->nbtcLoad();
    for (;;) {
      if (curr == nullptr) {
        next = nullptr;
        return false;
      }
      Node* raw = curr->next.nbtcLoad();
      if (is_marked(raw)) {
        Node* target = unmark(raw);
        if (!prev->nbtcCAS(curr, target, false, false)) goto retry;
        tRetireAtUnlink(curr);
        curr = target;
        continue;
      }
      if (!(curr->key < k)) {
        next = raw;
        return curr->key == k;
      }
      prev = &curr->next;
      curr = raw;
    }
  }

  /// Post-linearization physical unlink of `victim` (replaced or removed):
  /// splice prev from victim to `succ`; on failure, converge via find()
  /// (whoever unlinks retires). Runs at commit, or immediately outside a
  /// transaction.
  std::function<void()> make_unlink_cleanup(CASObj<Node*>* prev, Node* victim,
                                            Node* succ, K k) {
    return [this, prev, victim, succ, k] {
      if (prev->CAS(victim, succ)) {
        smr::EBR::instance().retire(victim);
      } else {
        CASObj<Node*>* p;
        Node *c, *n;
        find(p, c, n, k);
      }
    };
  }

  std::size_t nbuckets_;
  CASObj<Node*>* buckets_;
};

}  // namespace medley::ds

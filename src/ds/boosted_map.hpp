#pragma once
// A lock-based hash map incorporated into Medley transactions via
// transactional boosting (paper Sec. 3.1; Herlihy & Koskinen, PPoPP '08).
//
// The underlying object is deliberately mundane — std::unordered_map
// under striped mutexes — the point is the boosting discipline: each
// operation takes the semantic lock for its key (two-phase within a
// transaction), applies immediately, and registers its inverse for
// rollback. get/insert/remove/put on *different* keys commute, so
// transactions conflict only when their key sets overlap, regardless of
// how the hash map arranges memory.
//
// Boosted operations compose with NBTC operations in the same Medley
// transaction; the combined transaction is blocking (it holds semantic
// locks), which is the paper's stated price for boosting.

#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/boosting.hpp"

namespace medley::ds {

template <typename K, typename V>
class BoostedHashMap : public core::BoostedComposable {
 public:
  explicit BoostedHashMap(core::TxManager* manager, std::size_t stripes = 64)
      : BoostedComposable(manager, /*lock stripes=*/1024),
        nstripes_(stripes),
        stripes_(new Stripe[stripes]) {}

  std::optional<V> get(const K& k) {
    OpStarter op(mgr);
    auto lock = boostLock(key_of(k));
    std::lock_guard<std::mutex> g(stripe_of(k).m);
    auto& m = stripe_of(k).map;
    auto it = m.find(k);
    if (it == m.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& k) { return get(k).has_value(); }

  bool insert(const K& k, const V& v) {
    OpStarter op(mgr);
    auto lock = boostLock(key_of(k));
    {
      std::lock_guard<std::mutex> g(stripe_of(k).m);
      auto& m = stripe_of(k).map;
      if (!m.emplace(k, v).second) return false;
    }
    addInverse([this, k] {
      std::lock_guard<std::mutex> g(stripe_of(k).m);
      stripe_of(k).map.erase(k);
    });
    return true;
  }

  std::optional<V> remove(const K& k) {
    OpStarter op(mgr);
    auto lock = boostLock(key_of(k));
    V old{};
    {
      std::lock_guard<std::mutex> g(stripe_of(k).m);
      auto& m = stripe_of(k).map;
      auto it = m.find(k);
      if (it == m.end()) return std::nullopt;
      old = it->second;
      m.erase(it);
    }
    addInverse([this, k, old] {
      std::lock_guard<std::mutex> g(stripe_of(k).m);
      stripe_of(k).map.emplace(k, old);
    });
    return old;
  }

  std::optional<V> put(const K& k, const V& v) {
    OpStarter op(mgr);
    auto lock = boostLock(key_of(k));
    std::optional<V> old;
    {
      std::lock_guard<std::mutex> g(stripe_of(k).m);
      auto& m = stripe_of(k).map;
      auto it = m.find(k);
      if (it != m.end()) {
        old = it->second;
        it->second = v;
      } else {
        m.emplace(k, v);
      }
    }
    addInverse([this, k, old] {
      std::lock_guard<std::mutex> g(stripe_of(k).m);
      auto& m = stripe_of(k).map;
      if (old) {
        m[k] = *old;
      } else {
        m.erase(k);
      }
    });
    return old;
  }

  std::size_t size_slow() {
    std::size_t n = 0;
    for (std::size_t i = 0; i < nstripes_; i++) {
      std::lock_guard<std::mutex> g(stripes_[i].m);
      n += stripes_[i].map.size();
    }
    return n;
  }

 private:
  struct Stripe {
    std::mutex m;
    std::unordered_map<K, V> map;
  };

  static std::uint64_t key_of(const K& k) {
    return static_cast<std::uint64_t>(std::hash<K>{}(k));
  }

  Stripe& stripe_of(const K& k) {
    return stripes_[std::hash<K>{}(k) % nstripes_];
  }

  std::size_t nstripes_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace medley::ds

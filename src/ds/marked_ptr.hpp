#pragma once
// Pointer mark-bit helpers shared by the list-based structures.
//
// Lock-free lists/skiplists steal the low bit(s) of a node's `next` pointer
// to mark the node as logically deleted (Harris/Michael) or to flag/tag
// edges (Natarajan & Mittal). Nodes are new-allocated and at least 8-byte
// aligned, so bits 0-1 are available.

#include <cstdint>

namespace medley::ds {

template <typename Node>
inline Node* mark(Node* p, std::uintptr_t bit = 1) noexcept {
  return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | bit);
}

template <typename Node>
inline Node* unmark(Node* p) noexcept {
  return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                 ~std::uintptr_t{3});
}

template <typename Node>
inline bool is_marked(Node* p, std::uintptr_t bit = 1) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & bit) != 0;
}

template <typename Node>
inline std::uintptr_t mark_bits(Node* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) & 3;
}

}  // namespace medley::ds

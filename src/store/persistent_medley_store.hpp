#pragma once
// PersistentMedleyStore: the BasicMedleyStore façade over the txMontage
// persistent maps — hash primary under sid, skiplist secondary under
// sid+1, both allocating payloads from the same EpochSys/PRegion.
//
// Failure atomicity across the two indexes comes for free from the epoch
// system: a committed store transaction tags the primary's and the
// secondary's payloads with the SAME epoch (MCNS folds the epoch cell
// into the read set, so the transaction cannot straddle an advance), and
// recovery keeps or discards whole epochs. Hence the recovered primary
// and secondary are always mutually consistent — recover() rebuilds both
// indexes from their own payloads and the invariants re-check
// (tests/test_store.cpp).
//
// The change feed is deliberately transient (DRAM MSQueue): it is a
// live-replication tap, not a WAL. After a crash its undelivered suffix
// is gone; a follower must re-sync from a recovered snapshot (range scan)
// before tailing the feed again. Persisting the feed itself is future
// work (montage/tx_queue.hpp has the payload shape a durable feed would
// use).
//
// Keys and values are uint64_t — the payload shape of the persistent
// region (one 64-byte PBlk per mapping entry per index).

#include <vector>

#include "montage/txmontage.hpp"
#include "store/basic_store.hpp"

namespace medley::store {

class PersistentMedleyStore
    : public BasicMedleyStore<std::uint64_t, std::uint64_t,
                              montage::TxMontageHashTable,
                              montage::TxMontageSkiplist> {
  using Base = BasicMedleyStore<std::uint64_t, std::uint64_t,
                                montage::TxMontageHashTable,
                                montage::TxMontageSkiplist>;

 public:
  /// `sid` tags the primary's payloads; sid+1 the secondary's. Reuse the
  /// same pair across restarts of the same store.
  PersistentMedleyStore(core::TxManager* mgr, montage::EpochSys* es,
                        std::uint64_t sid, StoreConfig cfg = {})
      : Base(mgr, &owned_primary_, &owned_secondary_, cfg),
        sid_(sid),
        owned_primary_(mgr, es, sid, cfg.buckets),
        owned_secondary_(mgr, es, sid + 1) {}

  std::uint64_t sid() const { return sid_; }

  /// Rebuild both indexes from the survivors of EpochSys::recover().
  /// Call once, before any operations, on a freshly constructed store.
  void recover_from(
      const std::vector<montage::EpochSys::Recovered>& payloads) {
    owned_primary_.recover_from(payloads);
    owned_secondary_.recover_from(payloads);
  }

 private:
  std::uint64_t sid_;
  montage::TxMontageHashTable owned_primary_;
  montage::TxMontageSkiplist owned_secondary_;
};

}  // namespace medley::store

#pragma once
// BasicMedleyStore: the transactional KV-store façade (ROADMAP "serving
// layer"). Three nonblocking structures share one TxManager and every
// public operation is ONE Medley transaction composing them:
//
//   primary    — hash map, the authoritative key -> value mapping;
//   secondary  — ordered map over the SAME entries (range / scan);
//   change feed — MSQueue of committed mutations, in serialization order.
//
// Because the three writes of a mutation (primary update, secondary
// update, feed append) linearize atomically at MCNS commit, the indexes
// can never be observed out of sync by a committed transaction and the
// feed never shows a mutation that did not happen — without a single lock
// anywhere (paper Layer 2; PAPER.md "Layer 4 — serving").
//
// The façade is parameterized over the structure types so the same
// choreography serves the DRAM store (MedleyStore: MichaelHashTable +
// FraserSkiplist) and the persistent one (PersistentMedleyStore: the
// txMontage maps), which only swap the index implementations.
//
// Interface contract:
//   Primary:   get/put/remove (put returns the previous value);
//   Secondary: insert/remove/range/scan (no put — replace is remove+insert
//              inside the same transaction, which is equivalent and
//              exercises the composition harder).
//
// Nesting: a store operation called while the thread is already inside a
// transaction of the same manager flat-nests into it (its effects commit
// or abort with the enclosing transaction). Top-level calls run under the
// store's TxExecutor (policy = StoreConfig::tx_policy) and record a
// TxStats into the StoreStats block; feed
// push/poll accounting rides the transaction's cleanup list instead, so
// it is exact in BOTH modes — counted once at commit (including an
// enclosing transaction's commit), discarded with an aborted attempt.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/combiner.hpp"
#include "core/medley.hpp"
#include "ds/ms_queue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/feed.hpp"
#include "store/store_stats.hpp"

namespace medley::store {

/// Hard per-transaction ceiling on change-feed pops. Every dequeue costs a
/// descriptor write entry (the head CAS) and the merged drain also a read
/// entry (the re-peek of that head); a drain deeper than the word sets
/// would deterministically Capacity-abort — an abort the retry policy
/// treats as transient and re-runs — and the poll would spin forever.
/// Desc::kWriteCap / 2 leaves half the write set for the peeks and any
/// enclosing transaction's own writes. "Up to max_entries" permits
/// returning fewer; drain loops just call again.
inline constexpr std::size_t kMaxFeedDrainPerTx = core::Desc::kWriteCap / 2;

/// Store-layer contract for an executor call whose policy stopped
/// retrying: a transient terminal abort must not be mistaken for a
/// committed operation, so it is rethrown; a User abort stays silent
/// (store bodies only user-abort on behalf of the caller's own business
/// rule). Shared by BasicMedleyStore::exec and ShardedMedleyStore::transact.
template <typename R>
inline void rethrow_failed_non_user(const TxResult<R>& res) {
  if (!res.committed() && res.terminal &&
      *res.terminal != core::AbortReason::User) {
    throw core::TransactionAborted(*res.terminal);
  }
}

struct StoreConfig {
  std::size_t buckets = 1u << 16;  // primary hash size
  bool feed_enabled = true;        // disable to trade the feed for less
                                   // tail contention (bench ablation)

  /// One poll_feed transaction's drain clamp (≤ kMaxFeedDrainPerTx, which
  /// it defaults to; see that constant for the Capacity-abort-spin this
  /// prevents). Lower it to bound poll latency / feed burst size.
  /// Validated at store construction: 0 throws (it would silently make
  /// poll_feed a permanent no-op), anything above kMaxFeedDrainPerTx is
  /// clamped to it — config() reports the clamped, effective value.
  std::size_t feed_drain_per_tx = kMaxFeedDrainPerTx;

  /// Execution policy for the store's top-level transactions: retry rules
  /// and the ContentionManager pacing them (tx_exec.hpp). The default —
  /// unbounded retry of transient aborts, no backoff — reproduces the
  /// historical run_tx behavior. A store with a bounded policy surfaces
  /// budget exhaustion by rethrowing the terminal TransactionAborted.
  TxPolicy tx_policy{};

  /// Serve top-level get/contains/range/scan as READ-ONLY transactions
  /// (TxExecutor::execute_ro): no descriptor publication, no read-set
  /// tracking, one validation at the end, with a transparent full-
  /// transaction fallback on a torn snapshot. Off by default — the full
  /// path is the historical behavior and the fallback's extra attempt
  /// shows up in stats; read-dominated deployments (YCSB B/C/D) turn it
  /// on. Ambient transactions are unaffected: a store op inside an open
  /// transaction always flat-nests into it, whatever its mode.
  bool read_only_reads = false;

  /// Flat-combining group commit (core/combiner.hpp): top-level put/del/
  /// read_modify_write publish into per-store publication slots and a
  /// lock-holding combiner executes batches of up to combining.max_batch
  /// ops as ONE transaction — one descriptor, one commit CAS — so commit
  /// traffic amortizes under a contended key head, and async_put/async_del
  /// become available for submit-side pipelining. Default OFF: on an
  /// uncontended store the publication handshake is pure overhead (the
  /// honest-cost row in BENCH_ycsb_combining.json); turn it on for
  /// write-contended workloads (YCSB-A-like) or hot shards. Validated at
  /// construction: 0 slots / 0 max_batch throw; slots above
  /// core::kMaxCombinerSlots and max_batch above min(slots,
  /// core::kMaxCombinedBatch) clamp — config() reports effective values.
  /// Reads and ambient (flat-nested) operations never route through the
  /// combiner; cross-shard transactions of the sharded stores bypass it
  /// the same way.
  core::CombinerConfig combining;

  // ---- Observability (src/obs) -----------------------------------------

  /// Master switch for the metrics layer: per-op-type counters, per-op
  /// latency (ns) and attempts histograms recorded by the store's
  /// TxExecutors, abort-reason and RO-fallback counters, and key-count /
  /// feed-depth gauges — all queryable via dump_metrics(). Default OFF;
  /// the metrics-off hot path costs one untaken branch per operation.
  bool metrics = false;

  /// Histogram sampling: the store's executors record latency/attempts
  /// for 1 in 2^metrics_sample_shift operations (TxPolicy::obs_sample_shift).
  /// Counters, gauges, and stats() stay exact — only the histogram sample
  /// stream thins, which leaves quantiles unbiased. The default 1/64 keeps
  /// the TSC read pair (~20ns, >10% of a fast get) off the common path;
  /// set 0 to record every operation (exact-tail benches do).
  std::uint8_t metrics_sample_shift = 6;

  /// Registry the store's instruments live in. Null + metrics → the store
  /// creates a private one. ShardedStoreBase points every shard at ONE
  /// registry (with shard="i" labels) so dump_metrics() is store-wide.
  /// Pull gauges capture the store — a shared registry must not be read
  /// after a store that registered into it is destroyed.
  std::shared_ptr<obs::MetricsRegistry> metrics_registry;

  /// Constant labels stamped on every series this store registers (the
  /// sharded base sets {"shard", "<i>"}; single stores usually leave it
  /// empty).
  obs::Labels metric_labels;

  /// Per-thread capacity of the tx-lifecycle trace ring (obs/trace.hpp);
  /// 0 = tracing off (default). Independent of `metrics`: tracing is a
  /// debugging/post-mortem tool (a few relaxed stores per attempt), the
  /// registry a serving observable.
  std::size_t trace_capacity = 0;

  /// Ring to emit into. Null + trace_capacity → the store creates one.
  /// Sharded stores share one ring so a cross-shard transaction's
  /// lifecycle lands in a single timeline.
  std::shared_ptr<obs::TraceRing> trace_ring;
};

/// Construction-time validation of a StoreConfig (shared by
/// BasicMedleyStore and ShardedStoreBase): feed_drain_per_tx = 0 throws —
/// it would silently turn poll_feed into a permanent no-op — and values
/// above kMaxFeedDrainPerTx clamp to it (the documented contract; the
/// ceiling exists so a drain can never deterministically Capacity-abort).
inline StoreConfig validated(StoreConfig cfg) {
  if (cfg.feed_drain_per_tx == 0) {
    throw std::invalid_argument(
        "StoreConfig::feed_drain_per_tx must be > 0 (0 would make "
        "poll_feed a permanent no-op; disable the feed with feed_enabled "
        "instead)");
  }
  cfg.feed_drain_per_tx =
      std::min(cfg.feed_drain_per_tx, kMaxFeedDrainPerTx);
  if (cfg.combining.enabled) {
    if (cfg.combining.slots == 0) {
      throw std::invalid_argument(
          "StoreConfig::combining.slots must be > 0 when combining is "
          "enabled (0 slots would make every mutation spin forever looking "
          "for a publication slot; disable combining instead)");
    }
    if (cfg.combining.max_batch == 0) {
      throw std::invalid_argument(
          "StoreConfig::combining.max_batch must be > 0 when combining is "
          "enabled (a 0-op batch would make the combiner a no-op and every "
          "waiter wait forever)");
    }
    cfg.combining.slots =
        std::min(cfg.combining.slots, core::kMaxCombinerSlots);
    // A batch can never exceed the slot count, and core::kMaxCombinedBatch
    // keeps a full batch's write entries clear of Desc::kWriteCap (the
    // same deterministic-Capacity-abort spin the feed clamp prevents).
    cfg.combining.max_batch = std::min(
        {cfg.combining.max_batch, cfg.combining.slots,
         core::kMaxCombinedBatch});
  }
  return cfg;
}

template <typename K, typename V, typename Primary, typename Secondary>
class BasicMedleyStore : public core::Composable {
 public:
  using FeedItem = FeedEntry<K, V>;

  /// The store borrows the indexes (owned by the concrete subclass, which
  /// knows how to build them) and owns the feed queue. Composable gives
  /// it addToCleanups for commit-exact feed accounting.
  BasicMedleyStore(core::TxManager* mgr, Primary* primary,
                   Secondary* secondary, const StoreConfig& cfg)
      : Composable(mgr),
        primary_(primary),
        secondary_(secondary),
        cfg_(validated(cfg)),
        exec_(cfg.tx_policy),
        feed_(mgr) {
    init_observability();
    if (cfg_.combining.enabled) {
      combiner_ = std::make_unique<Combiner>(
          cfg_.combining.slots, cfg_.combining.max_batch,
          cfg_.combining.handoff, trace_ring_.get());
    }
  }

  /// Operation types the store instruments (the `op` label of every
  /// per-op metric series).
  enum OpType : int {
    kOpGet = 0,
    kOpContains,
    kOpPut,
    kOpDel,
    kOpRmw,
    kOpMultiPut,
    kOpRange,
    kOpScan,
    kOpPeekFeed,
    kOpPollFeed,
    kOpCross,    // used by ShardedStoreBase for cross-shard transactions
    kOpCombine,  // one combined group-commit batch (N logical ops)
    kOpTypeCount
  };

  static const char* op_name(int op) {
    static constexpr const char* kNames[kOpTypeCount] = {
        "get",   "contains", "put",  "del",       "rmw",       "multi_put",
        "range", "scan",     "peek_feed", "poll_feed", "cross", "combine"};
    return kNames[op];
  }

  // ---- point operations --------------------------------------------------

  std::optional<V> get(const K& k) {
    std::optional<V> res;
    exec_ro(kOpGet, [&] { res = primary_->get(k); });
    return res;
  }

  /// Existence probe. Unlike get(), never materializes the value: the
  /// primary's existence-only lookup registers just the witnessing bucket
  /// link, so a contains over a large value type copies nothing.
  bool contains(const K& k) {
    bool res = false;
    exec_ro(kOpContains, [&] { res = primary_->contains(k); });
    return res;
  }

  /// Insert-or-replace; returns the previous value if any. With combining
  /// enabled, a top-level call publishes into the combiner and the batch
  /// transaction commits it (same return value, same linearization
  /// guarantees — the batch IS one transaction).
  std::optional<V> put(const K& k, const V& v) {
    if (combiner_ && !mgr->in_tx()) {
      return combined_mutate(kOpPut, CombReq{CombReq::kPut, k, v});
    }
    std::optional<V> old;
    exec(kOpPut, [&] { old = put_in_tx(k, v); });
    return old;
  }

  /// Remove; returns the removed value if the key was present.
  std::optional<V> del(const K& k) {
    if (combiner_ && !mgr->in_tx()) {
      return combined_mutate(kOpDel, CombReq{CombReq::kDel, k});
    }
    std::optional<V> old;
    exec(kOpDel, [&] { old = del_in_tx(k); });
    return old;
  }

  /// Atomic read-modify-write: `f(current) -> desired` where nullopt on
  /// either side means absent. Returns the value f chose (nullopt = the
  /// key is now absent). f may run several times (once per tx attempt)
  /// and must be side-effect-free; with combining enabled it may also run
  /// on ANOTHER thread (the combiner executing the batch), though never
  /// after this call returns. An exception out of f fails only this op —
  /// the rest of the batch still commits — and is rethrown here.
  template <typename F>
  std::optional<V> read_modify_write(const K& k, F&& f) {
    if (combiner_ && !mgr->in_tx()) {
      CombReq req{CombReq::kRmw, k, V{}};
      req.ctx = &f;
      req.fn = [](const void* ctx, const std::optional<V>& cur) {
        auto* fp = static_cast<std::remove_reference_t<F>*>(
            const_cast<void*>(ctx));
        return std::optional<V>((*fp)(cur));
      };
      return combined_mutate(kOpRmw, std::move(req));
    }
    std::optional<V> desired;
    exec(kOpRmw, [&] {
      std::optional<V> cur = primary_->get(k);
      desired = f(static_cast<const std::optional<V>&>(cur));
      if (desired) {
        put_in_tx(k, *desired);
      } else if (cur) {
        del_in_tx(k);
      }
    });
    return desired;
  }

  // ---- async submission (pipelining) -------------------------------------
  // Publish a mutation now, harvest its result later: the returned future
  // completes when some combiner's batch commits the op, so a caller can
  // keep submitting (or doing unrelated work) instead of blocking per op.
  // Discipline: resolve futures on the submitting thread, OUTSIDE any open
  // transaction (the future helps execute batches; ready()/get() throw
  // std::logic_error inside one). Harvest every future you submit — a
  // harvested result is the only way to SEE the op's outcome. A future
  // dropped without get() still cleans up after itself: its destructor
  // drives the published op to completion (helping combine if needed),
  // bills it, and discards the result, returning the publication slot to
  // the pool — so exception unwinding between submit and harvest does not
  // degrade capacity. One caveat: a future destroyed INSIDE an open
  // transaction cannot help combine (the batch would nest), so it only
  // reclaims its slot if the op already executed; a still-pending op's
  // slot stays parked — don't carry unharvested futures into a
  // transaction. Lifetime: the future borrows this
  // store and its TxManager — resolve or drop every future before either
  // is destroyed (nothing enforces this; a future that outlives its store
  // dangles). Without combining (or when no slot is free, or under an
  // ambient transaction where batching would break flat-nesting) the op
  // executes eagerly and the future comes back already resolved, so the
  // API is always safe to call.

  using AsyncResult = TxFuture<std::optional<V>>;

  AsyncResult async_put(const K& k, const V& v) {
    return async_mutate(kOpPut, CombReq{CombReq::kPut, k, v});
  }

  AsyncResult async_del(const K& k) {
    return async_mutate(kOpDel, CombReq{CombReq::kDel, k});
  }

  /// All-or-nothing batch upsert (one transaction, one feed entry per
  /// key). Batch size is bounded by the descriptor write set (~1K words).
  void multi_put(const std::vector<std::pair<K, V>>& kvs) {
    exec(kOpMultiPut, [&] {
      for (const auto& [k, v] : kvs) put_in_tx(k, v);
    });
  }

  // ---- ordered operations (secondary index) ------------------------------

  /// Atomic snapshot of all entries with lo <= key <= hi, ascending.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    std::vector<std::pair<K, V>> out;
    exec_ro(kOpRange, [&] { out = secondary_->range(lo, hi); });
    return out;
  }

  /// Atomic snapshot of up to `limit` entries with key >= lo, ascending.
  std::vector<std::pair<K, V>> scan(const K& lo, std::size_t limit) {
    std::vector<std::pair<K, V>> out;
    exec_ro(kOpScan, [&] { out = secondary_->scan(lo, limit); });
    return out;
  }

  // ---- change feed -------------------------------------------------------

  /// Front of the change feed without consuming it (transactional: the
  /// head's identity joins the read set). The sharded store's merged poll
  /// peeks every shard inside one transaction to pick the next entry.
  std::optional<FeedItem> peek_feed() {
    std::optional<FeedItem> out;
    exec(kOpPeekFeed, [&] { out = feed_.peek(); });
    return out;
  }

  /// Atomically drain up to `max_entries` committed mutations, oldest
  /// first. Entries leave the feed exactly once (consumer groups are the
  /// caller's problem). Empty result = feed drained. One call pops at
  /// most feed_drain_per_tx entries (see kMaxFeedDrainPerTx for the
  /// Capacity-abort-spin the clamp prevents) — drain loops just call
  /// again.
  std::vector<FeedItem> poll_feed(std::size_t max_entries) {
    // cfg_ is construction-validated: feed_drain_per_tx is non-zero and
    // already clamped to kMaxFeedDrainPerTx.
    max_entries = std::min(max_entries, cfg_.feed_drain_per_tx);
    std::vector<FeedItem> out;
    exec(kOpPollFeed, [&] {
      out.clear();
      while (out.size() < max_entries) {
        auto e = feed_.dequeue();
        if (!e) break;
        out.push_back(*e);
      }
      if (const std::size_t n = out.size(); n > 0) {
        addToCleanups([this, n] { stats_.note_feed_poll(n); });
      }
    });
    if (feed_drain_hist_ != nullptr) feed_drain_hist_->record(out.size());
    return out;
  }

  // ---- introspection -----------------------------------------------------

  StoreStats::Snapshot stats() const { return stats_.aggregate(); }
  StoreStats::Snapshot stats_mine() const { return stats_.mine(); }

  /// Group-commit batches executed / ops they carried (0 with combining
  /// off). combined_ops() / combined_batches() is the achieved
  /// amortization factor; the full distribution is the
  /// medley_store_combined_batch histogram in dump_metrics().
  std::uint64_t combined_batches() const {
    return combiner_ ? combiner_->batches() : 0;
  }
  std::uint64_t combined_ops() const {
    return combiner_ ? combiner_->combined_ops() : 0;
  }

  /// Publication slots permanently parked by a TxFuture destroyed INSIDE
  /// an open transaction while its op was still pending (the async-API
  /// caveat documented above async_put). Each leak costs one slot of
  /// combiner capacity for the store's lifetime, and its op — which any
  /// later combiner drain will still execute and commit — is never billed
  /// by a submitter, so commits may undercount feed entries by the leaked
  /// amount. There is no online recovery (nothing can safely free a slot
  /// that a batch may be executing); the counter (+ debug-build assert at
  /// the leak site, + the medley_store_combiner_slots_leaked_total metric)
  /// exists so harvest loops like the network server's can prove they
  /// never do this, and so an operator seeing nonzero knows to fix the
  /// caller and recycle the store.
  std::uint64_t combiner_slots_leaked() const {
    return slots_leaked_.load(std::memory_order_relaxed);
  }
  std::uint64_t feed_depth() const { return stats_.feed_depth(); }
  const StoreConfig& config() const { return cfg_; }
  core::TxManager* manager() { return mgr; }
  Primary& primary() { return *primary_; }
  Secondary& secondary() { return *secondary_; }

  /// Prometheus text exposition of every metric this store registered
  /// (empty string when StoreConfig::metrics is off).
  std::string dump_metrics() const {
    return registry_ ? registry_->prometheus() : std::string{};
  }

  /// Same registry as a JSON array (histograms with p50/p90/p99/p999).
  std::string dump_metrics_json() const {
    return registry_ ? registry_->json() : std::string{"[]"};
  }

  /// The registry (null when metrics are off); sharded stores hand every
  /// shard the same one.
  const std::shared_ptr<obs::MetricsRegistry>& metrics_registry() const {
    return registry_;
  }

  /// The tx-lifecycle ring (null when trace_capacity == 0) and its
  /// human-readable dump — post-mortem interleaving analysis.
  const std::shared_ptr<obs::TraceRing>& trace_ring() const {
    return trace_ring_;
  }
  std::string dump_trace() const {
    return trace_ring_ ? trace_ring_->dump_text() : std::string{};
  }

 protected:
  /// Run `body` as this store's transaction: flat-nested into an ambient
  /// transaction, else executed by the store's TxExecutor under the
  /// configured TxPolicy, with the TxStats recorded. (Feed counters are
  /// NOT handled here — they ride the cleanup list so they fire exactly
  /// once, at whichever transaction actually commits the effects.) If a
  /// bounded policy exhausts its budget on a transient reason, the
  /// terminal abort is rethrown so callers never mistake a non-committed
  /// operation for a committed one; a user abort stays silent (the
  /// historical contract — store bodies only user-abort on behalf of the
  /// caller's own business rule).
  template <typename Body>
  void exec(OpType op, Body&& body) {
    if (mgr->in_tx()) {
      body();
      return;
    }
    auto res = instrumented_ ? op_exec_[op].execute(*mgr, body)
                             : exec_.execute(*mgr, body);
    if (registry_) note_result(op, res);
    stats_.record(res.stats);
    rethrow_failed_non_user(res);
  }

  /// exec() for bodies declared read-only (get/contains/range/scan): with
  /// StoreConfig::read_only_reads set, a top-level call takes the
  /// executor's validation-free snapshot path (execute_ro) and falls back
  /// transparently to a full transaction on a torn snapshot; with the
  /// knob off it is exactly exec(). An ambient transaction flat-nests
  /// either way — the enclosing transaction's mode governs, and under an
  /// enclosing READ-ONLY transaction the body's reads join its log.
  template <typename Body>
  void exec_ro(OpType op, Body&& body) {
    if (mgr->in_tx()) {
      body();
      return;
    }
    if (!cfg_.read_only_reads) {
      exec(op, std::forward<Body>(body));
      return;
    }
    auto res = instrumented_ ? op_exec_[op].execute_ro(*mgr, body)
                             : exec_.execute_ro(*mgr, body);
    if (registry_) note_result(op, res);
    stats_.record(res.stats);
    rethrow_failed_non_user(res);
  }

  // ---- flat-combining glue (core/combiner.hpp) ---------------------------

  /// A published mutation. rmw travels type-erased: `fn(ctx, current)`
  /// computes the desired value; ctx points at the caller's callable,
  /// which stays alive for the whole blocking submit (async submission is
  /// put/del only, whose requests are self-contained).
  struct CombReq {
    enum Kind : std::uint8_t { kPut, kDel, kRmw };
    Kind kind = kPut;
    K key{};
    V val{};
    const void* ctx = nullptr;
    std::optional<V> (*fn)(const void*, const std::optional<V>&) = nullptr;
  };
  using Combiner = core::FlatCombiner<CombReq, std::optional<V>>;
  using CombSlot = typename Combiner::Slot;

  /// Apply one published op inside the batch transaction. A user rmw
  /// callback that throws fails only ITS op (op.err; the mutation is
  /// skipped, the batch commits the rest) — but a TransactionAborted out
  /// of it is the transaction's, not the user's, and propagates so the
  /// attempt aborts and retries as a whole.
  void apply_comb_op(typename Combiner::Op& op) {
    op.err = nullptr;  // re-applied fresh on every transaction attempt
    const CombReq& rq = op.req;
    switch (rq.kind) {
      case CombReq::kPut:
        op.res = put_in_tx(rq.key, rq.val);
        break;
      case CombReq::kDel:
        op.res = del_in_tx(rq.key);
        break;
      case CombReq::kRmw: {
        std::optional<V> cur = primary_->get(rq.key);
        std::optional<V> desired;
        try {
          desired = rq.fn(rq.ctx, cur);
        } catch (const core::TransactionAborted&) {
          throw;
        } catch (...) {
          op.err = std::current_exception();
          op.res = std::nullopt;
          return;
        }
        if (desired) {
          put_in_tx(rq.key, *desired);
        } else if (cur) {
          del_in_tx(rq.key);
        }
        op.res = desired;
        break;
      }
    }
  }

  /// The batch executor the combiner runs under its lock: one store
  /// transaction applying every published op, billed so that N combined
  /// ops read as exactly N logical ops — the batch records its abort/
  /// retry stats here with the commit STRIPPED (op="combine" latency and
  /// attempts histograms still see the batch), and each submitter bills
  /// its own commit + op counter on successful completion. A batch that
  /// cannot commit (bounded policy exhausted) throws, which the combiner
  /// fans out to every waiter: all-or-nothing.
  void run_batch(std::vector<CombSlot*>& batch) {
    auto body = [&] {
      for (CombSlot* s : batch) apply_comb_op(s->op);
    };
    auto res = instrumented_ ? op_exec_[kOpCombine].execute(*mgr, body)
                             : exec_.execute(*mgr, body);
    TxStats s = res.stats;
    s.commits = 0;  // each waiter bills its own logical commit
    stats_.record(s);
    if (registry_) note_tx_stats(res.stats);
    if (!res.committed()) {
      throw core::TransactionAborted(
          res.terminal.value_or(core::AbortReason::User));
    }
    if (combined_batch_hist_ != nullptr) {
      combined_batch_hist_->record(batch.size());
    }
    if (combined_ops_counter_ != nullptr) {
      combined_ops_counter_->inc(batch.size());
    }
  }

  /// Submitter side of a combined synchronous mutation: publish, wait (or
  /// combine), bill ONE logical op on success. Errors (batch abort, rmw
  /// callback) propagate without billing a commit — matching exec()'s
  /// contract that a non-committed op is never mistaken for a committed
  /// one.
  std::optional<V> combined_mutate(OpType op, CombReq req) {
    auto fn = [this](std::vector<CombSlot*>& b) { run_batch(b); };
    std::optional<V> out = combiner_->submit(std::move(req), fn);
    TxStats s;
    s.commits = 1;
    stats_.record(s);
    if (registry_) op_counters_[op]->inc();
    return out;
  }

  /// Submitter side of async_put/async_del: publish without waiting and
  /// return a future whose steps poll (help combining if the lock is
  /// free) or wait, then consume + bill. Falls back to an eagerly
  /// executed, already-resolved future when combining is off, the thread
  /// is inside a transaction (batching would break flat-nesting), or no
  /// publication slot is free (bounded pipeline depth, never deadlock).
  AsyncResult async_mutate(OpType op, CombReq req) {
    if (combiner_ && !mgr->in_tx()) {
      // try_publish moves from req only on success: a nullptr return
      // (slot exhaustion) leaves req intact for the eager fallback below.
      if (CombSlot* slot = combiner_->try_publish(std::move(req))) {
        return AsyncResult(
            [this, op, slot](AsyncResult& self, bool block) {
              if (mgr->in_tx()) {
                throw std::logic_error(
                    "resolve store TxFutures outside any open transaction "
                    "(resolving helps execute combiner batches)");
              }
              auto fn = [this](std::vector<CombSlot*>& b) { run_batch(b); };
              if (block) {
                combiner_->wait(slot, fn);
              } else if (!combiner_->done(slot)) {
                combiner_->help(fn);
                if (!combiner_->done(slot)) return false;
              }
              try {
                self.set_value(combiner_->consume(slot));
                TxStats s;
                s.commits = 1;
                stats_.record(s);
                if (registry_) op_counters_[op]->inc();
              } catch (...) {
                self.set_error(std::current_exception());
              }
              return true;
            },
            // Abandoned without get(): drive the published op over the
            // line, bill it (it commits whether or not anyone looks), and
            // discard the result so the slot returns to the pool. Inside
            // an open transaction helping would nest the batch, so only
            // an already-executed op's slot can be reclaimed there.
            [this, op, slot] {
              if (mgr->in_tx()) {
                if (!combiner_->done(slot)) {
                  note_slot_leak();  // parked forever; see the accessor
                  return;
                }
              } else if (!combiner_->done(slot)) {
                auto fn = [this](std::vector<CombSlot*>& b) {
                  run_batch(b);
                };
                combiner_->wait(slot, fn);
              }
              try {
                combiner_->consume(slot);
                TxStats s;
                s.commits = 1;
                stats_.record(s);
                if (registry_) op_counters_[op]->inc();
              } catch (...) {
                // Batch aborted: the op never committed, nothing to bill.
              }
            });
      }
    }
    try {
      std::optional<V> out;
      const OpType eager_op = op;
      switch (req.kind) {
        case CombReq::kPut:
          exec(eager_op, [&] { out = put_in_tx(req.key, req.val); });
          break;
        case CombReq::kDel:
          exec(eager_op, [&] { out = del_in_tx(req.key); });
          break;
        case CombReq::kRmw:
          // Unreachable today (async surface is put/del); kept total so a
          // future async_rmw cannot silently drop the op.
          exec(eager_op, [&] {
            std::optional<V> cur = primary_->get(req.key);
            out = req.fn(req.ctx, cur);
            if (out) {
              put_in_tx(req.key, *out);
            } else if (cur) {
              del_in_tx(req.key);
            }
          });
          break;
      }
      return AsyncResult::ready(std::move(out));
    } catch (...) {
      return AsyncResult::error(std::current_exception());
    }
  }

  /// Account one leaked publication slot (TxFuture abandoned inside an
  /// open transaction with its op still pending). The assert makes the
  /// misuse loud in Debug builds; Release/RelWithDebInfo deployments get
  /// the counter + metric instead of a crash.
  void note_slot_leak() {
    slots_leaked_.fetch_add(1, std::memory_order_relaxed);
    if (slots_leaked_counter_ != nullptr) slots_leaked_counter_->inc();
    assert(!"TxFuture abandoned inside an open transaction: combiner "
            "publication slot leaked (harvest futures before entering a "
            "transaction)");
  }

  std::optional<V> put_in_tx(const K& k, const V& v) {
    std::optional<V> old = primary_->put(k, v);
    if (old) secondary_->remove(k);
    secondary_->insert(k, v);
    feed_append(FeedItem{FeedOp::Put, k, v});
    // Key-count accounting rides the cleanup list like the feed counters:
    // counted once iff the mutation actually commits, so key_count() is
    // the exact live-key total between quiescent points (the sharded
    // stores' partition-imbalance observable).
    if (!old) addToCleanups([this] { stats_.note_key_insert(1); });
    return old;
  }

  std::optional<V> del_in_tx(const K& k) {
    std::optional<V> old = primary_->remove(k);
    if (!old) return std::nullopt;  // read-only outcome, still validated
    secondary_->remove(k);
    feed_append(FeedItem{FeedOp::Del, k, V{}});
    addToCleanups([this] { stats_.note_key_remove(1); });
    return old;
  }

  void feed_append(FeedItem item) {
    if (!cfg_.feed_enabled) return;
    // Stamp inside the transaction: an aborted attempt burns a stamp (gaps
    // are fine); the retry draws a fresh, larger one.
    item.seq = feed_seq_->fetch_add(1, std::memory_order_relaxed);
    feed_.enqueue(item);
    addToCleanups([this] { stats_.note_feed_push(1); });
  }

  /// Build the metrics / tracing plumbing from cfg_. Registration is the
  /// cold path: instruments resolve to raw pointers ONCE here; the hot
  /// path then only bumps per-thread slots. Per-op TxExecutors carry the
  /// per-op-type latency/attempts histograms (and the trace ring) in their
  /// policies, so instrumented and plain execution share one code path.
  void init_observability() {
    if (cfg_.trace_capacity > 0) {
      trace_ring_ = cfg_.trace_ring
                        ? cfg_.trace_ring
                        : std::make_shared<obs::TraceRing>(cfg_.trace_capacity);
    }
    if (cfg_.metrics) {
      registry_ = cfg_.metrics_registry
                      ? cfg_.metrics_registry
                      : std::make_shared<obs::MetricsRegistry>();
      util::tsc_ns_per_tick();  // calibrate now, not on the first op
    }
    instrumented_ = registry_ != nullptr || trace_ring_ != nullptr;
    if (!instrumented_) return;

    auto labeled = [&](const char* k, const char* v) {
      obs::Labels l = cfg_.metric_labels;
      l.emplace_back(k, v);
      return l;
    };
    for (int op = 0; op < kOpTypeCount; op++) {
      TxPolicy p = cfg_.tx_policy;
      p.trace = trace_ring_.get();
      p.obs_sample_shift = cfg_.metrics_sample_shift;
      if (registry_) {
        op_counters_[op] = &registry_->counter(
            "medley_store_ops_total", "Completed top-level store operations",
            labeled("op", op_name(op)));
        p.latency_hist = &registry_->histogram(
            "medley_store_op_latency_ns",
            "End-to-end latency of top-level store operations (ns)",
            labeled("op", op_name(op)));
        p.attempts_hist = &registry_->histogram(
            "medley_store_op_attempts",
            "Transaction attempts consumed per top-level operation",
            labeled("op", op_name(op)));
      }
      op_exec_[op] = TxExecutor(std::move(p));
    }
    if (!registry_) return;
    static constexpr const char* kReasons[] = {"conflict", "validation",
                                               "capacity", "user"};
    for (int r = 0; r < 4; r++) {
      abort_counters_[r] = &registry_->counter(
          "medley_store_aborts_total", "Aborted transaction attempts by reason",
          labeled("reason", kReasons[r]));
    }
    retries_counter_ = &registry_->counter(
        "medley_store_tx_retries_total",
        "Aborted attempts that were re-run under the store's policy",
        cfg_.metric_labels);
    ro_fallback_counters_[0] = &registry_->counter(
        "medley_store_ro_fallbacks_total",
        "Read-only snapshot attempts that fell back to a full transaction",
        labeled("kind", "write"));
    ro_fallback_counters_[1] = &registry_->counter(
        "medley_store_ro_fallbacks_total",
        "Read-only snapshot attempts that fell back to a full transaction",
        labeled("kind", "validation"));
    feed_drain_hist_ = &registry_->histogram(
        "medley_store_feed_drain", "Entries drained per poll_feed call",
        cfg_.metric_labels);
    if (cfg_.combining.enabled) {
      combined_batch_hist_ = &registry_->histogram(
          "medley_store_combined_batch",
          "Ops executed per combined group-commit batch", cfg_.metric_labels);
      combined_ops_counter_ = &registry_->counter(
          "medley_store_combined_ops_total",
          "Store operations committed via combined group-commit batches",
          cfg_.metric_labels);
      slots_leaked_counter_ = &registry_->counter(
          "medley_store_combiner_slots_leaked_total",
          "Combiner publication slots permanently parked by futures "
          "abandoned inside an open transaction",
          cfg_.metric_labels);
    }
    registry_->gauge_fn("medley_store_keys",
                        "Live keys (commit-exact insert minus remove)",
                        cfg_.metric_labels, [this] {
                          return static_cast<double>(
                              stats_.aggregate().key_count());
                        });
    registry_->gauge_fn("medley_store_feed_depth",
                        "Committed feed entries not yet polled",
                        cfg_.metric_labels, [this] {
                          return static_cast<double>(stats_.feed_depth());
                        });
  }

  /// Registry-side accounting of one resolved top-level execute: op count,
  /// per-reason abort counts, retries, RO fallback kind. Counter bumps are
  /// per-thread relaxed adds; the zero checks keep the common uncontended
  /// op at a single increment.
  template <typename R>
  void note_result(OpType op, const TxResult<R>& res) {
    op_counters_[op]->inc();
    note_tx_stats(res.stats);
    if (res.ro_fallback) {
      ro_fallback_counters_[*res.ro_fallback == ROFallback::kWrite ? 0 : 1]
          ->inc();
    }
  }

  /// The abort/retry slice of note_result, shared with the combined-batch
  /// path (which bills the op counts submitter-side instead).
  void note_tx_stats(const TxStats& s) {
    if (s.conflict_aborts) abort_counters_[0]->inc(s.conflict_aborts);
    if (s.validation_aborts) abort_counters_[1]->inc(s.validation_aborts);
    if (s.capacity_aborts) abort_counters_[2]->inc(s.capacity_aborts);
    if (s.user_aborts) abort_counters_[3]->inc(s.user_aborts);
    if (s.retries) retries_counter_->inc(s.retries);
  }

  Primary* primary_;
  Secondary* secondary_;
  StoreConfig cfg_;
  TxExecutor exec_;
  ds::MSQueue<FeedItem> feed_;
  StoreStats stats_;
  std::atomic<std::uint64_t> owned_feed_seq_{0};
  std::atomic<std::uint64_t>* feed_seq_ = &owned_feed_seq_;

  // Observability plumbing (init_observability). Raw instrument pointers
  // stay valid for the registry's lifetime; the store keeps the registry
  // (and ring) alive via shared_ptr.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::TraceRing> trace_ring_;
  bool instrumented_ = false;
  TxExecutor op_exec_[kOpTypeCount];
  obs::Counter* op_counters_[kOpTypeCount] = {};
  obs::Counter* abort_counters_[4] = {};
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* ro_fallback_counters_[2] = {};  // write, validation
  obs::Histogram* feed_drain_hist_ = nullptr;
  obs::Histogram* combined_batch_hist_ = nullptr;
  obs::Counter* combined_ops_counter_ = nullptr;
  obs::Counter* slots_leaked_counter_ = nullptr;
  /// Slots parked forever by futures abandoned inside an open transaction
  /// (see combiner_slots_leaked()). Kept outside the registry so the leak
  /// is countable even with metrics off.
  std::atomic<std::uint64_t> slots_leaked_{0};

  /// The flat combiner (null unless cfg_.combining.enabled). Built after
  /// init_observability so it can emit into the store's trace ring.
  std::unique_ptr<Combiner> combiner_;

 public:
  /// Stamp feed entries from a shared sequencer instead of the store's own
  /// counter. ShardedMedleyStore points every shard at one sequencer so
  /// the merged feed can interleave shards near commit order. Call before
  /// any traffic; the sequencer must outlive the store.
  void share_feed_sequencer(std::atomic<std::uint64_t>* seq) {
    feed_seq_ = seq;
  }

  // ---- sharded-merge internals ------------------------------------------
  // ShardedMedleyStore's merged poll drains the queue directly inside its
  // own (ambient) transaction — bypassing poll_feed's per-call vector and
  // per-entry accounting closure — and defers ONE poll count per shard.

  ds::MSQueue<FeedItem>& feed_queue() { return feed_; }

  /// Commit-exact accounting for `n` entries drained via feed_queue():
  /// counted once iff the enclosing transaction commits.
  void defer_feed_poll_accounting(std::size_t n) {
    if (n > 0) addToCleanups([this, n] { stats_.note_feed_poll(n); });
  }
};

}  // namespace medley::store

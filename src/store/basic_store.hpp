#pragma once
// BasicMedleyStore: the transactional KV-store façade (ROADMAP "serving
// layer"). Three nonblocking structures share one TxManager and every
// public operation is ONE Medley transaction composing them:
//
//   primary    — hash map, the authoritative key -> value mapping;
//   secondary  — ordered map over the SAME entries (range / scan);
//   change feed — MSQueue of committed mutations, in serialization order.
//
// Because the three writes of a mutation (primary update, secondary
// update, feed append) linearize atomically at MCNS commit, the indexes
// can never be observed out of sync by a committed transaction and the
// feed never shows a mutation that did not happen — without a single lock
// anywhere (paper Layer 2; PAPER.md "Layer 4 — serving").
//
// The façade is parameterized over the structure types so the same
// choreography serves the DRAM store (MedleyStore: MichaelHashTable +
// FraserSkiplist) and the persistent one (PersistentMedleyStore: the
// txMontage maps), which only swap the index implementations.
//
// Interface contract:
//   Primary:   get/put/remove (put returns the previous value);
//   Secondary: insert/remove/range/scan (no put — replace is remove+insert
//              inside the same transaction, which is equivalent and
//              exercises the composition harder).
//
// Nesting: a store operation called while the thread is already inside a
// transaction of the same manager flat-nests into it (its effects commit
// or abort with the enclosing transaction). Top-level calls run under the
// store's TxExecutor (policy = StoreConfig::tx_policy) and record a
// TxStats into the StoreStats block; feed
// push/poll accounting rides the transaction's cleanup list instead, so
// it is exact in BOTH modes — counted once at commit (including an
// enclosing transaction's commit), discarded with an aborted attempt.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/medley.hpp"
#include "ds/ms_queue.hpp"
#include "store/feed.hpp"
#include "store/store_stats.hpp"

namespace medley::store {

/// Hard per-transaction ceiling on change-feed pops. Every dequeue costs a
/// descriptor write entry (the head CAS) and the merged drain also a read
/// entry (the re-peek of that head); a drain deeper than the word sets
/// would deterministically Capacity-abort — an abort the retry policy
/// treats as transient and re-runs — and the poll would spin forever.
/// Desc::kWriteCap / 2 leaves half the write set for the peeks and any
/// enclosing transaction's own writes. "Up to max_entries" permits
/// returning fewer; drain loops just call again.
inline constexpr std::size_t kMaxFeedDrainPerTx = core::Desc::kWriteCap / 2;

/// Store-layer contract for an executor call whose policy stopped
/// retrying: a transient terminal abort must not be mistaken for a
/// committed operation, so it is rethrown; a User abort stays silent
/// (store bodies only user-abort on behalf of the caller's own business
/// rule). Shared by BasicMedleyStore::exec and ShardedMedleyStore::transact.
template <typename R>
inline void rethrow_failed_non_user(const TxResult<R>& res) {
  if (!res.committed() && res.terminal &&
      *res.terminal != core::AbortReason::User) {
    throw core::TransactionAborted(*res.terminal);
  }
}

struct StoreConfig {
  std::size_t buckets = 1u << 16;  // primary hash size
  bool feed_enabled = true;        // disable to trade the feed for less
                                   // tail contention (bench ablation)

  /// One poll_feed transaction's drain clamp (≤ kMaxFeedDrainPerTx, which
  /// it defaults to; see that constant for the Capacity-abort-spin this
  /// prevents). Lower it to bound poll latency / feed burst size.
  /// Validated at store construction: 0 throws (it would silently make
  /// poll_feed a permanent no-op), anything above kMaxFeedDrainPerTx is
  /// clamped to it — config() reports the clamped, effective value.
  std::size_t feed_drain_per_tx = kMaxFeedDrainPerTx;

  /// Execution policy for the store's top-level transactions: retry rules
  /// and the ContentionManager pacing them (tx_exec.hpp). The default —
  /// unbounded retry of transient aborts, no backoff — reproduces the
  /// historical run_tx behavior. A store with a bounded policy surfaces
  /// budget exhaustion by rethrowing the terminal TransactionAborted.
  TxPolicy tx_policy{};

  /// Serve top-level get/contains/range/scan as READ-ONLY transactions
  /// (TxExecutor::execute_ro): no descriptor publication, no read-set
  /// tracking, one validation at the end, with a transparent full-
  /// transaction fallback on a torn snapshot. Off by default — the full
  /// path is the historical behavior and the fallback's extra attempt
  /// shows up in stats; read-dominated deployments (YCSB B/C/D) turn it
  /// on. Ambient transactions are unaffected: a store op inside an open
  /// transaction always flat-nests into it, whatever its mode.
  bool read_only_reads = false;
};

/// Construction-time validation of a StoreConfig (shared by
/// BasicMedleyStore and ShardedStoreBase): feed_drain_per_tx = 0 throws —
/// it would silently turn poll_feed into a permanent no-op — and values
/// above kMaxFeedDrainPerTx clamp to it (the documented contract; the
/// ceiling exists so a drain can never deterministically Capacity-abort).
inline StoreConfig validated(StoreConfig cfg) {
  if (cfg.feed_drain_per_tx == 0) {
    throw std::invalid_argument(
        "StoreConfig::feed_drain_per_tx must be > 0 (0 would make "
        "poll_feed a permanent no-op; disable the feed with feed_enabled "
        "instead)");
  }
  cfg.feed_drain_per_tx =
      std::min(cfg.feed_drain_per_tx, kMaxFeedDrainPerTx);
  return cfg;
}

template <typename K, typename V, typename Primary, typename Secondary>
class BasicMedleyStore : public core::Composable {
 public:
  using FeedItem = FeedEntry<K, V>;

  /// The store borrows the indexes (owned by the concrete subclass, which
  /// knows how to build them) and owns the feed queue. Composable gives
  /// it addToCleanups for commit-exact feed accounting.
  BasicMedleyStore(core::TxManager* mgr, Primary* primary,
                   Secondary* secondary, const StoreConfig& cfg)
      : Composable(mgr),
        primary_(primary),
        secondary_(secondary),
        cfg_(validated(cfg)),
        exec_(cfg.tx_policy),
        feed_(mgr) {}

  // ---- point operations --------------------------------------------------

  std::optional<V> get(const K& k) {
    std::optional<V> res;
    exec_ro([&] { res = primary_->get(k); });
    return res;
  }

  /// Existence probe. Unlike get(), never materializes the value: the
  /// primary's existence-only lookup registers just the witnessing bucket
  /// link, so a contains over a large value type copies nothing.
  bool contains(const K& k) {
    bool res = false;
    exec_ro([&] { res = primary_->contains(k); });
    return res;
  }

  /// Insert-or-replace; returns the previous value if any.
  std::optional<V> put(const K& k, const V& v) {
    std::optional<V> old;
    exec([&] { old = put_in_tx(k, v); });
    return old;
  }

  /// Remove; returns the removed value if the key was present.
  std::optional<V> del(const K& k) {
    std::optional<V> old;
    exec([&] { old = del_in_tx(k); });
    return old;
  }

  /// Atomic read-modify-write: `f(current) -> desired` where nullopt on
  /// either side means absent. Returns the value f chose (nullopt = the
  /// key is now absent). f may run several times (once per tx attempt)
  /// and must be side-effect-free.
  template <typename F>
  std::optional<V> read_modify_write(const K& k, F&& f) {
    std::optional<V> desired;
    exec([&] {
      std::optional<V> cur = primary_->get(k);
      desired = f(static_cast<const std::optional<V>&>(cur));
      if (desired) {
        put_in_tx(k, *desired);
      } else if (cur) {
        del_in_tx(k);
      }
    });
    return desired;
  }

  /// All-or-nothing batch upsert (one transaction, one feed entry per
  /// key). Batch size is bounded by the descriptor write set (~1K words).
  void multi_put(const std::vector<std::pair<K, V>>& kvs) {
    exec([&] {
      for (const auto& [k, v] : kvs) put_in_tx(k, v);
    });
  }

  // ---- ordered operations (secondary index) ------------------------------

  /// Atomic snapshot of all entries with lo <= key <= hi, ascending.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    std::vector<std::pair<K, V>> out;
    exec_ro([&] { out = secondary_->range(lo, hi); });
    return out;
  }

  /// Atomic snapshot of up to `limit` entries with key >= lo, ascending.
  std::vector<std::pair<K, V>> scan(const K& lo, std::size_t limit) {
    std::vector<std::pair<K, V>> out;
    exec_ro([&] { out = secondary_->scan(lo, limit); });
    return out;
  }

  // ---- change feed -------------------------------------------------------

  /// Front of the change feed without consuming it (transactional: the
  /// head's identity joins the read set). The sharded store's merged poll
  /// peeks every shard inside one transaction to pick the next entry.
  std::optional<FeedItem> peek_feed() {
    std::optional<FeedItem> out;
    exec([&] { out = feed_.peek(); });
    return out;
  }

  /// Atomically drain up to `max_entries` committed mutations, oldest
  /// first. Entries leave the feed exactly once (consumer groups are the
  /// caller's problem). Empty result = feed drained. One call pops at
  /// most feed_drain_per_tx entries (see kMaxFeedDrainPerTx for the
  /// Capacity-abort-spin the clamp prevents) — drain loops just call
  /// again.
  std::vector<FeedItem> poll_feed(std::size_t max_entries) {
    // cfg_ is construction-validated: feed_drain_per_tx is non-zero and
    // already clamped to kMaxFeedDrainPerTx.
    max_entries = std::min(max_entries, cfg_.feed_drain_per_tx);
    std::vector<FeedItem> out;
    exec([&] {
      out.clear();
      while (out.size() < max_entries) {
        auto e = feed_.dequeue();
        if (!e) break;
        out.push_back(*e);
      }
      if (const std::size_t n = out.size(); n > 0) {
        addToCleanups([this, n] { stats_.note_feed_poll(n); });
      }
    });
    return out;
  }

  // ---- introspection -----------------------------------------------------

  StoreStats::Snapshot stats() const { return stats_.aggregate(); }
  StoreStats::Snapshot stats_mine() const { return stats_.mine(); }
  std::uint64_t feed_depth() const { return stats_.feed_depth(); }
  const StoreConfig& config() const { return cfg_; }
  core::TxManager* manager() { return mgr; }
  Primary& primary() { return *primary_; }
  Secondary& secondary() { return *secondary_; }

 protected:
  /// Run `body` as this store's transaction: flat-nested into an ambient
  /// transaction, else executed by the store's TxExecutor under the
  /// configured TxPolicy, with the TxStats recorded. (Feed counters are
  /// NOT handled here — they ride the cleanup list so they fire exactly
  /// once, at whichever transaction actually commits the effects.) If a
  /// bounded policy exhausts its budget on a transient reason, the
  /// terminal abort is rethrown so callers never mistake a non-committed
  /// operation for a committed one; a user abort stays silent (the
  /// historical contract — store bodies only user-abort on behalf of the
  /// caller's own business rule).
  template <typename Body>
  void exec(Body&& body) {
    if (mgr->in_tx()) {
      body();
      return;
    }
    auto res = exec_.execute(*mgr, std::forward<Body>(body));
    stats_.record(res.stats);
    rethrow_failed_non_user(res);
  }

  /// exec() for bodies declared read-only (get/contains/range/scan): with
  /// StoreConfig::read_only_reads set, a top-level call takes the
  /// executor's validation-free snapshot path (execute_ro) and falls back
  /// transparently to a full transaction on a torn snapshot; with the
  /// knob off it is exactly exec(). An ambient transaction flat-nests
  /// either way — the enclosing transaction's mode governs, and under an
  /// enclosing READ-ONLY transaction the body's reads join its log.
  template <typename Body>
  void exec_ro(Body&& body) {
    if (mgr->in_tx()) {
      body();
      return;
    }
    if (!cfg_.read_only_reads) {
      exec(std::forward<Body>(body));
      return;
    }
    auto res = exec_.execute_ro(*mgr, std::forward<Body>(body));
    stats_.record(res.stats);
    rethrow_failed_non_user(res);
  }

  std::optional<V> put_in_tx(const K& k, const V& v) {
    std::optional<V> old = primary_->put(k, v);
    if (old) secondary_->remove(k);
    secondary_->insert(k, v);
    feed_append(FeedItem{FeedOp::Put, k, v});
    // Key-count accounting rides the cleanup list like the feed counters:
    // counted once iff the mutation actually commits, so key_count() is
    // the exact live-key total between quiescent points (the sharded
    // stores' partition-imbalance observable).
    if (!old) addToCleanups([this] { stats_.note_key_insert(1); });
    return old;
  }

  std::optional<V> del_in_tx(const K& k) {
    std::optional<V> old = primary_->remove(k);
    if (!old) return std::nullopt;  // read-only outcome, still validated
    secondary_->remove(k);
    feed_append(FeedItem{FeedOp::Del, k, V{}});
    addToCleanups([this] { stats_.note_key_remove(1); });
    return old;
  }

  void feed_append(FeedItem item) {
    if (!cfg_.feed_enabled) return;
    // Stamp inside the transaction: an aborted attempt burns a stamp (gaps
    // are fine); the retry draws a fresh, larger one.
    item.seq = feed_seq_->fetch_add(1, std::memory_order_relaxed);
    feed_.enqueue(item);
    addToCleanups([this] { stats_.note_feed_push(1); });
  }

  Primary* primary_;
  Secondary* secondary_;
  StoreConfig cfg_;
  TxExecutor exec_;
  ds::MSQueue<FeedItem> feed_;
  StoreStats stats_;
  std::atomic<std::uint64_t> owned_feed_seq_{0};
  std::atomic<std::uint64_t>* feed_seq_ = &owned_feed_seq_;

 public:
  /// Stamp feed entries from a shared sequencer instead of the store's own
  /// counter. ShardedMedleyStore points every shard at one sequencer so
  /// the merged feed can interleave shards near commit order. Call before
  /// any traffic; the sequencer must outlive the store.
  void share_feed_sequencer(std::atomic<std::uint64_t>* seq) {
    feed_seq_ = seq;
  }

  // ---- sharded-merge internals ------------------------------------------
  // ShardedMedleyStore's merged poll drains the queue directly inside its
  // own (ambient) transaction — bypassing poll_feed's per-call vector and
  // per-entry accounting closure — and defers ONE poll count per shard.

  ds::MSQueue<FeedItem>& feed_queue() { return feed_; }

  /// Commit-exact accounting for `n` entries drained via feed_queue():
  /// counted once iff the enclosing transaction commits.
  void defer_feed_poll_accounting(std::size_t n) {
    if (n > 0) addToCleanups([this, n] { stats_.note_feed_poll(n); });
  }
};

}  // namespace medley::store

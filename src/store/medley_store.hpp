#pragma once
// MedleyStore: the DRAM serving store — BasicMedleyStore over a Michael
// hash table primary and a Fraser skiplist secondary index. See
// basic_store.hpp for the transaction choreography and invariants.

#include "ds/fraser_skiplist.hpp"
#include "ds/michael_hashtable.hpp"
#include "store/basic_store.hpp"

namespace medley::store {

template <typename K, typename V>
class MedleyStore
    : public BasicMedleyStore<K, V, ds::MichaelHashTable<K, V>,
                              ds::FraserSkiplist<K, V>> {
  using Base = BasicMedleyStore<K, V, ds::MichaelHashTable<K, V>,
                                ds::FraserSkiplist<K, V>>;

 public:
  explicit MedleyStore(core::TxManager* mgr, StoreConfig cfg = {})
      : Base(mgr, &owned_primary_, &owned_secondary_, cfg),
        owned_primary_(mgr, cfg.buckets),
        owned_secondary_(mgr) {}

 private:
  // Declared after Base (pointers handed to Base before construction are
  // only dereferenced by operations, never by Base's constructor).
  ds::MichaelHashTable<K, V> owned_primary_;
  ds::FraserSkiplist<K, V> owned_secondary_;
};

}  // namespace medley::store

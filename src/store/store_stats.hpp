#pragma once
// StoreStats: the store's per-thread counter block (the STO exemplar's
// per-transaction perf counters, adapted to Medley's dense thread ids).
// Every top-level store operation folds its executed-transaction TxStats
// into the
// calling thread's padded slot; feed pushes/polls are counted only after
// the enclosing transaction committed, so feed_depth() is exact between
// quiescent points (and never counts an aborted attempt).
//
// Counters are relaxed atomics with a single writer (the slot's owner
// thread); aggregate() and feed_depth() may run concurrently with writers
// and see a slightly stale but tear-free view. mine() reads the calling
// thread's own slot — workload drivers use before/after deltas of it for
// exact per-thread abort accounting.
//
// Slots live in a util::PerThreadSlots block (lazily allocated, leased-tid
// indexed): repeated short-lived threads inherit prior slots and keep
// adding, so aggregate() stays exact across thread churn and the store
// never runs out of slots however many threads come and go.

#include <atomic>
#include <cstdint>

#include "core/medley.hpp"
#include "util/per_thread.hpp"
#include "util/thread_registry.hpp"

namespace medley::store {

class StoreStats {
 public:
  /// TxStats (commits/retries/aborts-by-reason, with aborts()) plus the
  /// store's feed and key-count counters.
  struct Snapshot : TxStats {
    std::uint64_t feed_pushed = 0;
    std::uint64_t feed_polled = 0;
    std::uint64_t keys_inserted = 0;  // committed puts of an ABSENT key
    std::uint64_t keys_removed = 0;   // committed dels of a PRESENT key

    /// Committed live-key count (exact between quiescent points;
    /// saturating for the same mid-flight reason as feed_depth()). This
    /// is the partition-imbalance observable of the sharded stores: a
    /// range-partitioned shard sitting under a hot interval shows up as
    /// a runaway per-shard key_count() long before it shows up as tail
    /// latency. Counts committed traffic only — a store rebuilt by
    /// recovery (PersistentMedleyStore::recover_from) restarts from 0.
    std::uint64_t key_count() const {
      return keys_inserted >= keys_removed ? keys_inserted - keys_removed
                                           : 0;
    }

    /// Aggregation across stores (the sharded stores sum their shards'
    /// snapshots plus the cross-shard block; the YCSB driver sums rows).
    /// Overloads TxStats::operator+= so the feed counters fold too.
    using TxStats::operator+=;
    Snapshot& operator+=(const Snapshot& o) {
      TxStats::operator+=(o);
      feed_pushed += o.feed_pushed;
      feed_polled += o.feed_polled;
      keys_inserted += o.keys_inserted;
      keys_removed += o.keys_removed;
      return *this;
    }
  };

  /// Fold one committed-or-abandoned TxExecutor outcome into my slot.
  void record(const TxStats& st) {
    Slot& s = my_slot();
    add(s.commits, st.commits);
    add(s.retries, st.retries);
    add(s.conflict_aborts, st.conflict_aborts);
    add(s.validation_aborts, st.validation_aborts);
    add(s.capacity_aborts, st.capacity_aborts);
    add(s.user_aborts, st.user_aborts);
  }

  void note_feed_push(std::uint64_t n) { add(my_slot().feed_pushed, n); }
  void note_feed_poll(std::uint64_t n) { add(my_slot().feed_polled, n); }
  void note_key_insert(std::uint64_t n) { add(my_slot().keys_inserted, n); }
  void note_key_remove(std::uint64_t n) { add(my_slot().keys_removed, n); }

  /// Sum over all thread slots.
  Snapshot aggregate() const {
    Snapshot out;
    slots_.for_each([&](const Slot& s) { fold(out, s); });
    return out;
  }

  /// The calling thread's slot only (exact: single writer).
  Snapshot mine() const {
    Snapshot out;
    if (const Slot* s = slots_.get(util::ThreadRegistry::tid())) {
      fold(out, *s);
    }
    return out;
  }

  /// Committed-but-unpolled feed entries (exact once writers quiesce;
  /// saturating, since a mid-flight poll can momentarily observe its own
  /// count before a concurrent pusher's).
  std::uint64_t feed_depth() const {
    Snapshot s = aggregate();
    return s.feed_pushed >= s.feed_polled ? s.feed_pushed - s.feed_polled
                                          : 0;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> conflict_aborts{0};
    std::atomic<std::uint64_t> validation_aborts{0};
    std::atomic<std::uint64_t> capacity_aborts{0};
    std::atomic<std::uint64_t> user_aborts{0};
    std::atomic<std::uint64_t> feed_pushed{0};
    std::atomic<std::uint64_t> feed_polled{0};
    std::atomic<std::uint64_t> keys_inserted{0};
    std::atomic<std::uint64_t> keys_removed{0};
  };

  static void add(std::atomic<std::uint64_t>& c, std::uint64_t n) {
    if (n != 0) c.store(c.load(std::memory_order_relaxed) + n,
                        std::memory_order_relaxed);
  }

  static void fold(Snapshot& out, const Slot& s) {
    TxStats t;
    t.commits = s.commits.load(std::memory_order_relaxed);
    t.retries = s.retries.load(std::memory_order_relaxed);
    t.conflict_aborts = s.conflict_aborts.load(std::memory_order_relaxed);
    t.validation_aborts =
        s.validation_aborts.load(std::memory_order_relaxed);
    t.capacity_aborts = s.capacity_aborts.load(std::memory_order_relaxed);
    t.user_aborts = s.user_aborts.load(std::memory_order_relaxed);
    out += t;
    out.feed_pushed += s.feed_pushed.load(std::memory_order_relaxed);
    out.feed_polled += s.feed_polled.load(std::memory_order_relaxed);
    out.keys_inserted += s.keys_inserted.load(std::memory_order_relaxed);
    out.keys_removed += s.keys_removed.load(std::memory_order_relaxed);
  }

  Slot& my_slot() { return slots_.mine(); }

  util::PerThreadSlots<Slot> slots_;
};

}  // namespace medley::store

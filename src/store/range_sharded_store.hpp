#pragma once
// RangeShardedMedleyStore: contiguous key-range shards for scan-heavy
// workloads (ROADMAP "range-partitioned sharding"; PAPER.md "Layer 5 —
// sharding" has the measured hash-vs-range decision table).
//
// The hash-partitioned store spreads load uniformly but fragments ordered
// locality: adjacent keys land on unrelated shards, so every merged
// range/scan must descend into ALL N skiplists and k-way-merge their runs
// — the measured YCSB-E regression that grows with the shard count. This
// store partitions the key space into N CONTIGUOUS intervals instead:
//
//   RangePartitioner  N-1 sorted boundary keys; shard i owns
//                     [bounds[i-1], bounds[i]) — a boundary key belongs to
//                     the shard to its RIGHT, always (point ops, range
//                     endpoints, and the splitter agree on this, so a
//                     boundary key can never be looked up on one shard and
//                     stored on another);
//   range(lo, hi)     descends only into the shards whose interval
//                     intersects [lo, hi] and CONCATENATES their runs —
//                     contiguous disjoint intervals mean the concatenation
//                     is already globally sorted, no merge;
//   scan(lo, limit)   starts at lo's shard and walks right only until the
//                     limit fills (an empty or short shard just passes
//                     through): a scan of span S touches
//                     ceil(S / shard-span) skiplists, not N.
//
// Everything that is not the partitioning — the per-shard MedleyStore
// stacks under one shared TxDomain, atomic cross-shard
// multi_put/read_modify_write_many/transact, the sequence-stamp-merged
// poll_feed (clamped per transaction by StoreConfig::feed_drain_per_tx /
// kMaxFeedDrainPerTx), and aggregated StoreStats — comes unchanged from
// ShardedStoreBase (sharded_base.hpp), so both sharded stores share one
// correctness argument and one test contract.
//
// The price of contiguity is skew: range partitioning concentrates a hot
// key range (or an append-only insert pattern, which lands every fresh key
// in the LAST shard) on one shard. Two mitigations ship here: the
// seeding-time splitter picks boundaries from a SAMPLE of the initial keys
// (equi-depth quantiles, so a known distribution starts balanced, with an
// explicit uniform fallback when the sample is too thin), and the
// commit-exact per-shard key counts (key_counts() via store_stats.hpp)
// make drift observable before it becomes tail latency. Online
// rebalancing (split/merge of live shards) is queued in ROADMAP.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "store/sharded_base.hpp"

namespace medley::store {

/// Key-space partitioning by N-1 sorted boundary keys: shard i owns the
/// half-open interval [bounds[i-1], bounds[i]) (shard 0 is unbounded
/// below, shard N-1 unbounded above). A key EQUAL to a boundary routes to
/// the shard on the boundary's right — the single convention every caller
/// (point routing, range endpoints, the splitter) shares.
///
/// Immutable after construction; routing is a binary search over the
/// boundary vector (N is small — single-digit to low-double-digit shard
/// counts — so this is a handful of well-predicted compares per op).
template <typename K>
class RangePartitioner {
 public:
  /// `bounds` must be sorted ascending; equal adjacent bounds are legal
  /// and simply make the shard between them empty (the splitter's
  /// degenerate-sample case). bounds.size() + 1 shards result.
  explicit RangePartitioner(std::vector<K> bounds)
      : bounds_(std::move(bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
      throw std::invalid_argument(
          "RangePartitioner: boundaries must be sorted ascending");
    }
  }

  /// Seeding-time splitter: equi-depth boundaries from a sample of the
  /// initial key set — boundary j is the sample's (j+1)/nshards quantile,
  /// so each shard starts with roughly sample_size/nshards keys of the
  /// seeded distribution. Falls back to uniform() over the sample's span
  /// when there are fewer distinct samples than shards (a quantile cut
  /// would just manufacture empty shards); with no usable sample at all
  /// (empty, or a single distinct key), integral keys fall back to
  /// uniform() over the full key domain and non-integral keys throw —
  /// there is nothing principled to cut on.
  static RangePartitioner from_samples(std::vector<K> samples,
                                       std::size_t nshards) {
    if (nshards == 0) {
      throw std::invalid_argument("RangePartitioner: nshards must be > 0");
    }
    if (nshards == 1) return RangePartitioner(std::vector<K>{});
    std::sort(samples.begin(), samples.end());
    samples.erase(std::unique(samples.begin(), samples.end()),
                  samples.end());
    if (samples.size() >= nshards) {
      std::vector<K> bounds;
      bounds.reserve(nshards - 1);
      for (std::size_t j = 0; j + 1 < nshards; j++) {
        bounds.push_back(samples[(j + 1) * samples.size() / nshards]);
      }
      return RangePartitioner(std::move(bounds));
    }
    if constexpr (std::is_integral_v<K>) {
      if (samples.size() >= 2) {
        return uniform(samples.front(), samples.back(), nshards);
      }
      return uniform(std::numeric_limits<K>::min(),
                     std::numeric_limits<K>::max(), nshards);
    } else {
      throw std::invalid_argument(
          "RangePartitioner::from_samples: too few distinct samples and no "
          "uniform fallback for non-integral keys");
    }
  }

  /// Uniform fallback: evenly spaced boundaries over [lo, hi] (integral
  /// keys only — uniformity needs arithmetic). Right for keys known to be
  /// dense in a span; equi-depth from_samples beats it for anything
  /// skewed.
  template <typename KK = K,
            typename = std::enable_if_t<std::is_integral_v<KK>>>
  static RangePartitioner uniform(K lo, K hi, std::size_t nshards) {
    if (nshards == 0) {
      throw std::invalid_argument("RangePartitioner: nshards must be > 0");
    }
    if (hi < lo) std::swap(lo, hi);
    // Offset arithmetic in the unsigned image: correct for signed keys
    // (two's complement wraparound yields the true span) and immune to
    // hi - lo overflow.
    using U = std::make_unsigned_t<K>;
    const U span = static_cast<U>(hi) - static_cast<U>(lo);
    std::vector<K> bounds;
    bounds.reserve(nshards - 1);
    for (std::size_t j = 0; j + 1 < nshards; j++) {
      const U off = span / nshards * (j + 1) +
                    span % nshards * (j + 1) / nshards;
      bounds.push_back(static_cast<K>(static_cast<U>(lo) + off));
    }
    return RangePartitioner(std::move(bounds));
  }

  std::size_t shard_count() const { return bounds_.size() + 1; }

  /// Index of the shard owning `k`: the number of boundaries <= k (a
  /// boundary key routes right). Total and stable — every key always has
  /// exactly one home shard.
  std::size_t shard_of(const K& k) const {
    return static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), k) -
        bounds_.begin());
  }

  /// The contiguous shard interval [first, last] intersecting the
  /// inclusive key interval [lo, hi] — the shards an ordered query must
  /// descend into, and no others.
  std::pair<std::size_t, std::size_t> shard_span(const K& lo,
                                                 const K& hi) const {
    return {shard_of(lo), shard_of(hi)};
  }

  const std::vector<K>& bounds() const { return bounds_; }

 private:
  std::vector<K> bounds_;
};

template <typename K, typename V>
class RangeShardedMedleyStore
    : public ShardedStoreBase<K, V, RangeShardedMedleyStore<K, V>> {
  using Base = ShardedStoreBase<K, V, RangeShardedMedleyStore<K, V>>;
  friend Base;

 public:
  using Shard = typename Base::Shard;
  using FeedItem = typename Base::FeedItem;
  using Partitioner = RangePartitioner<K>;

  /// Explicit partitioning: one shard per interval of `part`.
  explicit RangeShardedMedleyStore(Partitioner part, StoreConfig cfg = {})
      : Base(part.shard_count(), cfg), part_(std::move(part)) {}

  /// Seeding-time splitter ctor: boundaries from a sample of the initial
  /// key set (Partitioner::from_samples — equi-depth quantiles with the
  /// uniform fallback). The sample only PLACES the boundaries; it does not
  /// load any data — seed the store with put/multi_put as usual.
  RangeShardedMedleyStore(std::size_t nshards,
                          const std::vector<K>& seed_keys,
                          StoreConfig cfg = {})
      : RangeShardedMedleyStore(
            Partitioner::from_samples(seed_keys, nshards), cfg) {}

  // ---- partitioning ------------------------------------------------------

  std::size_t shard_of(const K& k) const { return part_.shard_of(k); }
  const Partitioner& partitioner() const { return part_; }

  // ---- ordered operations: interval-pruned, concatenated -----------------

  /// Atomic ordered snapshot of all entries with lo <= key <= hi: only the
  /// shards whose interval intersects [lo, hi] are touched, and their runs
  /// concatenate in shard order — contiguous disjoint intervals make the
  /// concatenation globally sorted with no merge step. A window inside one
  /// shard is that shard's own single-manager transaction.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    if (hi < lo) return {};
    const auto [s0, s1] = part_.shard_span(lo, hi);
    if (s0 == s1) return shards_[s0].store->range(lo, hi);
    std::vector<std::pair<K, V>> out;
    this->cross_exec_ro([&] {
      out.clear();
      for (std::size_t i = s0; i <= s1; i++) {
        auto run = shards_[i].store->range(lo, hi);
        out.insert(out.end(), std::make_move_iterator(run.begin()),
                   std::make_move_iterator(run.end()));
      }
    });
    return out;
  }

  /// Atomic ordered snapshot of up to `limit` entries with key >= lo:
  /// start at lo's shard and walk RIGHT, shard by shard, until the limit
  /// fills or the key space ends. Every shard to the right holds only
  /// larger keys, so appending its run preserves global order, a shard
  /// that turns out empty (or shorter than the remainder) simply passes
  /// through to its neighbor, and shards left of lo are never descended
  /// into. When lo routes to the last shard the whole scan is that
  /// shard's own single-manager transaction.
  std::vector<std::pair<K, V>> scan(const K& lo, std::size_t limit) {
    if (limit == 0) return {};
    const std::size_t n = shards_.size();
    const std::size_t s0 = part_.shard_of(lo);
    if (s0 + 1 == n) return shards_[s0].store->scan(lo, limit);
    std::vector<std::pair<K, V>> out;
    this->cross_exec_ro([&] {
      out.clear();
      for (std::size_t i = s0; i < n && out.size() < limit; i++) {
        auto run = shards_[i].store->scan(lo, limit - out.size());
        out.insert(out.end(), std::make_move_iterator(run.begin()),
                   std::make_move_iterator(run.end()));
      }
    });
    return out;
  }

 private:
  using Base::shards_;

  Partitioner part_;
};

}  // namespace medley::store

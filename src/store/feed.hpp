#pragma once
// Change-feed records for MedleyStore (the seed of replication / WAL
// shipping). Every committed mutating transaction of the store enqueues
// exactly one FeedEntry onto an MSQueue *inside the same transaction*, so
// the queue's FIFO order IS the store's serialization order: draining the
// feed and replaying it over an empty map reproduces the primary index
// exactly (tests/test_store.cpp checks this). A transaction that aborts
// enqueues nothing — the feed never shows phantom mutations.
//
// Consumers drain with poll_feed(max_entries), which returns "up to"
// max_entries: one transaction's drain is clamped to
// StoreConfig::feed_drain_per_tx, itself capped by the descriptor-derived
// kMaxFeedDrainPerTx (basic_store.hpp explains the Capacity-abort spin an
// unclamped deep drain would cause). Drain loops simply call again until
// empty.

#include <cstdint>
#include <map>
#include <vector>

namespace medley::store {

enum class FeedOp : std::uint8_t {
  Put,  // key now maps to val (insert or overwrite)
  Del,  // key removed (val is default-constructed filler)
};

template <typename K, typename V>
struct FeedEntry {
  FeedOp op = FeedOp::Put;
  K key{};
  V val{};
  // Global sequence stamp, drawn from the store's sequencer inside the
  // enqueuing transaction. Within one feed queue, FIFO position — not the
  // stamp — is the authoritative serialization order (a transaction can in
  // principle draw its stamp, stall, and commit after a later-stamped
  // peer); across the queues of a sharded store, the stamp is the merge
  // heuristic that interleaves independent shards near commit order. The
  // sharded merge therefore pops queue HEADS by smallest stamp and never
  // reorders within a queue, so per-key (= per-shard) order is exact.
  std::uint64_t seq = 0;
};

/// Replay a drained feed over a map (tests / recovery of a follower).
template <typename K, typename V>
void replay_feed(const std::vector<FeedEntry<K, V>>& entries,
                 std::map<K, V>& into) {
  for (const auto& e : entries) {
    if (e.op == FeedOp::Put) {
      into[e.key] = e.val;
    } else {
      into.erase(e.key);
    }
  }
}

}  // namespace medley::store

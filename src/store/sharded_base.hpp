#pragma once
// ShardedStoreBase: the partitioning-agnostic machinery shared by every
// sharded MedleyStore — N full shards (each a MedleyStore with its own
// TxManager, hash primary, skiplist secondary, and change feed) under ONE
// TxDomain, so the single-shard fast path never touches another shard's
// metadata while cross-shard operations stay one atomic transaction (one
// thread descriptor, one commit-point status CAS; see tx_domain.hpp — the
// MCNS protocol never cared which manager a cell belonged to).
//
// What lives here is everything that does not depend on HOW keys map to
// shards:
//
//   point ops            — route to the owning shard's fast path via the
//                          derived class's shard_of(k);
//   multi_put / read_modify_write_many / transact
//                        — group by shard; single-shard batches delegate,
//                          anything else runs as one domain transaction
//                          flat-nesting each shard store's ops;
//   poll_feed            — one transaction k-way-merges the shard feeds by
//                          the shared sequence stamp (peek every
//                          non-exhausted head, dequeue the smallest);
//                          per-shard FIFO — the exact per-key serialization
//                          order — is never reordered (feed.hpp);
//   stats                — aggregate = sum(shards) + the cross-shard block,
//                          including the commit-exact per-shard key counts
//                          (store_stats.hpp) that make partition imbalance
//                          observable.
//
// What the derived class provides is the partitioning itself:
//
//   ShardedMedleyStore       hash partitioning — uniform spread, ordered
//                            ops k-way-merge ALL shards
//                            (sharded_store.hpp);
//   RangeShardedMedleyStore  contiguous key ranges — ordered ops descend
//                            only into the shards whose interval
//                            intersects the query and concatenate
//                            (range_sharded_store.hpp).
//
// CRTP contract for Derived:
//   std::size_t shard_of(const K&) const;   // total, stable routing
//   range(lo, hi) / scan(lo, limit);        // partitioning-shaped
//
// Consistency contract (tests/test_sharded_store.cpp,
// tests/test_range_sharded_store.cpp): per shard, the I1-I4 invariants of
// basic_store.hpp; globally, any committed transaction observes all shards
// at one serialization point (a cross-shard multi_put is never
// half-visible), and the merged feed replayed over an empty map reproduces
// the union of the shard primaries.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/medley.hpp"
#include "store/medley_store.hpp"
#include "store/store_stats.hpp"

namespace medley::store {

template <typename K, typename V, typename Derived>
class ShardedStoreBase {
 public:
  using Shard = MedleyStore<K, V>;
  using FeedItem = FeedEntry<K, V>;

  // ---- topology ----------------------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }

  Shard& shard(std::size_t i) { return *shards_[i].store; }
  const Shard& shard(std::size_t i) const { return *shards_[i].store; }
  core::TxManager* manager(std::size_t i) { return shards_[i].mgr.get(); }
  core::TxDomain* domain() { return domain_.get(); }

  // ---- point operations: single-shard fast path --------------------------

  std::optional<V> get(const K& k) { return home(k).get(k); }
  bool contains(const K& k) { return home(k).contains(k); }
  std::optional<V> put(const K& k, const V& v) { return home(k).put(k, v); }
  std::optional<V> del(const K& k) { return home(k).del(k); }

  template <typename F>
  std::optional<V> read_modify_write(const K& k, F&& f) {
    return home(k).read_modify_write(k, std::forward<F>(f));
  }

  // With StoreConfig::combining enabled every shard builds its own
  // combiner (the shard config copy carries the knobs), so the point ops
  // above group-commit per shard — batches never mix shards, and
  // cross-shard transactions (multi_put, transact) bypass combining
  // entirely: their inner shard ops flat-nest into the ambient domain
  // transaction, which in_tx() detects. Async submission routes to the
  // owning shard's combiner the same way.

  typename Shard::AsyncResult async_put(const K& k, const V& v) {
    return home(k).async_put(k, v);
  }
  typename Shard::AsyncResult async_del(const K& k) {
    return home(k).async_del(k);
  }

  // ---- cross-shard atomic operations -------------------------------------

  /// All-or-nothing batch upsert across any number of shards (one
  /// transaction, one commit CAS, one feed entry per key on its shard's
  /// feed). Single-shard batches take that shard's fast path.
  void multi_put(const std::vector<std::pair<K, V>>& kvs) {
    if (kvs.empty()) return;
    if (const auto only = single_shard_of(kvs)) {
      shards_[*only].store->multi_put(kvs);
      return;
    }
    cross_exec([&] {
      for (const auto& [k, v] : kvs) home(k).put(k, v);
    });
  }

  /// Atomic read-modify-write over a key set spanning shards:
  /// `f(key, current) -> desired` per key, nullopt meaning absent on
  /// either side. All reads and all writes belong to one transaction —
  /// a cross-shard transfer is one call. f may run once per attempt and
  /// must be side-effect-free.
  template <typename F>
  void read_modify_write_many(const std::vector<K>& keys, F&& f) {
    if (keys.empty()) return;
    cross_exec([&] {
      for (const K& k : keys) {
        Shard& s = home(k);
        std::optional<V> cur = s.get(k);
        std::optional<V> desired =
            f(k, static_cast<const std::optional<V>&>(cur));
        if (desired) {
          s.put(k, *desired);
        } else if (cur) {
          s.del(k);
        }
      }
    });
  }

  /// Run arbitrary store operations (on this store or its shards) as one
  /// atomic transaction under the configured TxPolicy (same executor
  /// contract as the per-shard ops: a bounded policy that exhausts its
  /// budget rethrows the terminal abort). Returns the executor's TxStats.
  template <typename F>
  TxStats transact(F&& body) {
    if (domain_->in_tx()) {  // flat-nest into an ambient transaction
      body();
      return {};
    }
    auto res = cross_exec_.execute(*root_mgr(), std::forward<F>(body));
    if (registry_) note_cross_result(res);
    cross_stats_.record(res.stats);
    rethrow_failed_non_user(res);
    return res.stats;
  }

  // ---- merged change feed ------------------------------------------------

  /// Atomically drain up to `max_entries` committed mutations across all
  /// shard feeds, merged by sequence stamp (peek every head, pop the
  /// smallest; per-shard FIFO is never reordered). One transaction: either
  /// the whole drained batch leaves the feeds, or none of it.
  ///
  /// Hot-path shape (this is the replication tap, called once per
  /// mutation by the YCSB drivers): the merge works on the raw per-shard
  /// queues inside one transaction — no per-entry sub-poll, no per-entry
  /// accounting closure — and degenerates to a straight drain when zero
  /// or one shard has entries, which is the steady state of a tap that
  /// keeps up.
  std::vector<FeedItem> poll_feed(std::size_t max_entries) {
    const std::size_t n = shards_.size();
    if (n == 1) return shards_[0].store->poll_feed(max_entries);
    // Clamp one transaction's drain to StoreConfig::feed_drain_per_tx
    // (construction-validated: non-zero, capped by kMaxFeedDrainPerTx —
    // basic_store.hpp): every pop costs a descriptor write entry (the
    // dequeue CAS) and, in the merge, a read entry (the re-peek of that
    // head). An unclamped poll_feed(10'000) over deep feeds would
    // deterministically Capacity-abort — which the retry policy treats as
    // transient — and spin. "Up to max_entries" permits returning fewer;
    // drain loops just call again.
    max_entries = std::min(max_entries, cfg_.feed_drain_per_tx);
    std::vector<FeedItem> out;
    // Per-call scratch, reused across calls (sized by shard count).
    thread_local std::vector<std::optional<FeedItem>> heads;
    thread_local std::vector<std::size_t> polled;
    cross_exec([&] {
      out.clear();
      heads.assign(n, std::nullopt);
      polled.assign(n, 0);
      std::size_t nonempty = 0, last = n;
      for (std::size_t i = 0; i < n; i++) {
        heads[i] = shards_[i].store->feed_queue().peek();
        if (heads[i]) {
          nonempty++;
          last = i;
        }
      }
      if (nonempty == 1) {
        // Emptiness of every other shard is transactional evidence from
        // the peeks above, so a straight FIFO drain of the one live queue
        // IS the merged order.
        auto& q = shards_[last].store->feed_queue();
        while (out.size() < max_entries) {
          auto e = q.dequeue();
          if (!e) break;
          out.push_back(*e);
          polled[last]++;
        }
      } else if (nonempty > 1) {
        while (out.size() < max_entries) {
          std::size_t best = n;
          for (std::size_t i = 0; i < n; i++) {
            if (heads[i] &&
                (best == n || heads[i]->seq < heads[best]->seq)) {
              best = i;
            }
          }
          if (best == n) break;  // every feed drained
          auto& q = shards_[best].store->feed_queue();
          auto e = q.dequeue();
          if (!e) break;  // peeked head stolen: tx is doomed, stop merging
          out.push_back(*e);
          polled[best]++;
          heads[best] = q.peek();
        }
      }
      for (std::size_t i = 0; i < n; i++) {
        shards_[i].store->defer_feed_poll_accounting(polled[i]);
      }
    });
    return out;
  }

  /// Per-shard tap: drain up to `max_entries` from the feed of the shard
  /// that owns `k`, entirely inside that shard's manager (no cross-shard
  /// transaction, no merge). This is the hot-path replication pattern for
  /// a sharded store — each shard ships its own change stream and a
  /// total-order consumer uses poll_feed() — and what the YCSB mutators
  /// use to tap the feed they just appended to.
  std::vector<FeedItem> poll_feed_local(const K& k,
                                        std::size_t max_entries) {
    return home(k).poll_feed(max_entries);
  }

  std::uint64_t feed_depth() const {
    std::uint64_t d = 0;
    for (const Slot& s : shards_) d += s.store->feed_depth();
    return d;
  }

  // ---- introspection -----------------------------------------------------

  /// Aggregate across all shards plus the cross-shard transaction block.
  StoreStats::Snapshot stats() const {
    StoreStats::Snapshot agg = cross_stats_.aggregate();
    for (const Slot& s : shards_) agg += s.store->stats();
    return agg;
  }

  /// The calling thread's exact counters (same aggregation).
  StoreStats::Snapshot stats_mine() const {
    StoreStats::Snapshot agg = cross_stats_.mine();
    for (const Slot& s : shards_) agg += s.store->stats_mine();
    return agg;
  }

  StoreStats::Snapshot stats_shard(std::size_t i) const {
    return shards_[i].store->stats();
  }

  /// Group-commit batches / combined ops summed over every shard's
  /// combiner (0 with combining off).
  std::uint64_t combined_batches() const {
    std::uint64_t n = 0;
    for (const Slot& s : shards_) n += s.store->combined_batches();
    return n;
  }
  std::uint64_t combined_ops() const {
    std::uint64_t n = 0;
    for (const Slot& s : shards_) n += s.store->combined_ops();
    return n;
  }
  /// Combiner publication slots permanently parked by futures abandoned
  /// inside an open transaction, summed over every shard.
  std::uint64_t combiner_slots_leaked() const {
    std::uint64_t n = 0;
    for (const Slot& s : shards_) n += s.store->combiner_slots_leaked();
    return n;
  }
  StoreStats::Snapshot stats_cross() const {
    return cross_stats_.aggregate();
  }

  /// Committed key count per shard (insert/remove deltas from
  /// store_stats.hpp, exact between quiescent points): the imbalance
  /// observable — a hot range on a range-partitioned store, or a broken
  /// hash on a hash-partitioned one, shows up here before it shows up as
  /// tail latency.
  std::vector<std::uint64_t> key_counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(shards_.size());
    for (const Slot& s : shards_) out.push_back(s.store->stats().key_count());
    return out;
  }

  /// Store-wide Prometheus exposition: every shard's series (shard="i")
  /// plus the cross-shard block (shard="cross"), one registry. Empty when
  /// StoreConfig::metrics is off.
  std::string dump_metrics() const {
    return registry_ ? registry_->prometheus() : std::string{};
  }
  std::string dump_metrics_json() const {
    return registry_ ? registry_->json() : std::string{"[]"};
  }
  const std::shared_ptr<obs::MetricsRegistry>& metrics_registry() const {
    return registry_;
  }

  /// Shared tx-lifecycle ring (all shards + cross-shard transactions emit
  /// into it); null when trace_capacity == 0.
  const std::shared_ptr<obs::TraceRing>& trace_ring() const {
    return trace_ring_;
  }
  std::string dump_trace() const {
    return trace_ring_ ? trace_ring_->dump_text() : std::string{};
  }

 protected:
  struct Slot {
    std::unique_ptr<core::TxManager> mgr;
    std::unique_ptr<Shard> store;
  };

  explicit ShardedStoreBase(std::size_t nshards, StoreConfig cfg = {})
      : domain_(std::make_shared<core::TxDomain>()),
        cfg_(validated(cfg)),  // throws on feed_drain_per_tx = 0, clamps
        cross_exec_(cfg.tx_policy) {
    if (nshards == 0) {
      throw std::invalid_argument("sharded store: nshards must be > 0");
    }
    // One registry / one trace ring for the whole store: every shard
    // registers its series with a shard="i" label into the shared
    // registry, so dump_metrics() is store-wide and per-shard skew is
    // directly visible; the shared ring lands cross-shard lifecycles in
    // one timeline. Must run before shards are built.
    init_observability();
    // Split the configured primary capacity across shards (the key space
    // is partitioned, not replicated), with a floor for tiny configs.
    // Shards start from the validated copy, so every layer agrees on the
    // effective feed_drain_per_tx.
    StoreConfig shard_cfg = cfg_;
    shard_cfg.buckets = std::max<std::size_t>(cfg_.buckets / nshards, 64);
    shard_cfg.metrics_registry = registry_;
    shard_cfg.trace_ring = trace_ring_;
    shards_.reserve(nshards);
    for (std::size_t i = 0; i < nshards; i++) {
      shard_cfg.metric_labels = cfg_.metric_labels;
      if (registry_ || trace_ring_) {
        shard_cfg.metric_labels.emplace_back("shard", std::to_string(i));
      }
      auto mgr = std::make_unique<core::TxManager>(domain_);
      auto store = std::make_unique<Shard>(mgr.get(), shard_cfg);
      store->share_feed_sequencer(&feed_seq_);
      shards_.push_back(Slot{std::move(mgr), std::move(store)});
    }
  }

  /// Observability plumbing shared with the shards (see the ctor): the
  /// cross-shard executor gets op="cross",shard="cross" instruments so
  /// cross-shard latency/aborts are separable from per-shard traffic.
  void init_observability() {
    if (cfg_.trace_capacity > 0) {
      trace_ring_ = cfg_.trace_ring
                        ? cfg_.trace_ring
                        : std::make_shared<obs::TraceRing>(cfg_.trace_capacity);
    }
    if (cfg_.metrics) {
      registry_ = cfg_.metrics_registry
                      ? cfg_.metrics_registry
                      : std::make_shared<obs::MetricsRegistry>();
    }
    if (!registry_ && !trace_ring_) return;
    TxPolicy p = cfg_.tx_policy;
    p.trace = trace_ring_.get();
    if (registry_) {
      obs::Labels base = cfg_.metric_labels;
      base.emplace_back("shard", "cross");
      auto with = [&](const char* k, const std::string& v) {
        obs::Labels l = base;
        l.emplace_back(k, v);
        return l;
      };
      cross_ops_ = &registry_->counter("medley_store_ops_total",
                                       "Completed top-level store operations",
                                       with("op", "cross"));
      p.latency_hist = &registry_->histogram(
          "medley_store_op_latency_ns",
          "End-to-end latency of top-level store operations (ns)",
          with("op", "cross"));
      p.attempts_hist = &registry_->histogram(
          "medley_store_op_attempts",
          "Transaction attempts consumed per top-level operation",
          with("op", "cross"));
      static constexpr const char* kReasons[] = {"conflict", "validation",
                                                 "capacity", "user"};
      for (int r = 0; r < 4; r++) {
        cross_abort_counters_[r] = &registry_->counter(
            "medley_store_aborts_total",
            "Aborted transaction attempts by reason", with("reason", kReasons[r]));
      }
      cross_retries_ = &registry_->counter(
          "medley_store_tx_retries_total",
          "Aborted attempts that were re-run under the store's policy", base);
      cross_ro_fallback_[0] = &registry_->counter(
          "medley_store_ro_fallbacks_total",
          "Read-only snapshot attempts that fell back to a full transaction",
          with("kind", "write"));
      cross_ro_fallback_[1] = &registry_->counter(
          "medley_store_ro_fallbacks_total",
          "Read-only snapshot attempts that fell back to a full transaction",
          with("kind", "validation"));
    }
    cross_exec_ = TxExecutor(std::move(p));
  }

  Derived& derived() { return static_cast<Derived&>(*this); }
  const Derived& derived() const { return static_cast<const Derived&>(*this); }

  Shard& home(const K& k) { return *shards_[derived().shard_of(k)].store; }

  /// Root manager for cross-shard transactions. Shard 0 by convention:
  /// cross-shard commits/aborts are billed there at the TxManager level
  /// (store-level accounting lands in cross_stats_ regardless).
  core::TxManager* root_mgr() { return shards_[0].mgr.get(); }

  /// One transaction spanning shards — exactly transact()'s choreography
  /// (flat-nest, or the cross-shard executor rooted at shard 0 with the
  /// outcome recorded into cross_stats_).
  template <typename Body>
  void cross_exec(Body&& body) {
    (void)transact(std::forward<Body>(body));
  }

  /// cross_exec() for bodies declared read-only (merged range/scan): with
  /// StoreConfig::read_only_reads set, the cross-shard transaction takes
  /// the executor's validation-free snapshot path (execute_ro, rooted at
  /// shard 0 like every cross-shard transaction) with the transparent
  /// full-transaction fallback; with the knob off it is exactly
  /// cross_exec(). Each shard store's ops flat-nest into the ambient
  /// snapshot, so their reads join one log validated once — the merged
  /// result is one consistent snapshot across all shards.
  template <typename Body>
  void cross_exec_ro(Body&& body) {
    if (domain_->in_tx()) {  // flat-nest into an ambient transaction
      body();
      return;
    }
    if (!cfg_.read_only_reads) {
      cross_exec(std::forward<Body>(body));
      return;
    }
    auto res = cross_exec_.execute_ro(*root_mgr(), std::forward<Body>(body));
    if (registry_) note_cross_result(res);
    cross_stats_.record(res.stats);
    rethrow_failed_non_user(res);
  }

  /// If every key lands on one shard, its index.
  std::optional<std::size_t> single_shard_of(
      const std::vector<std::pair<K, V>>& kvs) const {
    const std::size_t s0 = derived().shard_of(kvs.front().first);
    for (const auto& [k, v] : kvs) {
      if (derived().shard_of(k) != s0) return std::nullopt;
    }
    return s0;
  }

  /// Registry-side accounting of one resolved cross-shard execute (the
  /// sharded twin of BasicMedleyStore::note_result).
  template <typename R>
  void note_cross_result(const TxResult<R>& res) {
    cross_ops_->inc();
    const TxStats& s = res.stats;
    if (s.conflict_aborts) cross_abort_counters_[0]->inc(s.conflict_aborts);
    if (s.validation_aborts) cross_abort_counters_[1]->inc(s.validation_aborts);
    if (s.capacity_aborts) cross_abort_counters_[2]->inc(s.capacity_aborts);
    if (s.user_aborts) cross_abort_counters_[3]->inc(s.user_aborts);
    if (s.retries) cross_retries_->inc(s.retries);
    if (res.ro_fallback) {
      cross_ro_fallback_[*res.ro_fallback == ROFallback::kWrite ? 0 : 1]
          ->inc();
    }
  }

  std::shared_ptr<core::TxDomain> domain_;
  StoreConfig cfg_;         // as configured (shards get the split-bucket copy)
  TxExecutor cross_exec_;   // cross-shard transactions, same policy as shards
  std::vector<Slot> shards_;
  std::atomic<std::uint64_t> feed_seq_{0};
  StoreStats cross_stats_;

  // Observability (init_observability): one registry / ring shared with
  // every shard; cross-shard instruments resolved once.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::TraceRing> trace_ring_;
  obs::Counter* cross_ops_ = nullptr;
  obs::Counter* cross_abort_counters_[4] = {};
  obs::Counter* cross_retries_ = nullptr;
  obs::Counter* cross_ro_fallback_[2] = {};  // write, validation
};

}  // namespace medley::store

#pragma once
// Umbrella header for the MedleyStore serving subsystem.
//
//   #include "store/store.hpp"
//
//   medley::TxManager mgr;
//   medley::store::MedleyStore<uint64_t, uint64_t> kv(&mgr);
//   kv.put(1, 10);
//   auto window = kv.range(0, 100);       // atomic ordered snapshot
//   auto feed = kv.poll_feed(64);         // committed mutations, in order
//
//   // Scaling out: hash-partitioned shards, one TxManager per shard,
//   // cross-shard ops still one atomic transaction.
//   medley::store::ShardedMedleyStore<uint64_t, uint64_t> skv(4);
//   skv.multi_put({{1, 10}, {2, 20}});    // may span shards: all-or-nothing
//   auto all = skv.range(0, 100);         // k-way-merged atomic snapshot
//
//   // Scan-heavy workloads: contiguous key-range shards — ordered ops
//   // descend only into the shards their window intersects.
//   medley::store::RangeShardedMedleyStore<uint64_t, uint64_t>
//       rkv(4, /*seed_keys=*/{...});      // boundaries from a key sample
//   auto win = rkv.range(0, 100);         // concatenated, no k-way merge
//
//   // Observability (off by default; see src/obs/):
//   medley::store::StoreConfig cfg;
//   cfg.metrics = true;                   // counters + latency histograms
//   cfg.trace_capacity = 4096;            // per-thread tx-lifecycle rings
//   medley::store::MedleyStore<uint64_t, uint64_t> okv(&mgr, cfg);
//   std::cout << okv.dump_metrics();      // Prometheus text exposition
//   std::cout << okv.dump_trace();        // merged tx-lifecycle trace
//
// See basic_store.hpp for the design notes, medley_store.hpp for the
// DRAM store, persistent_medley_store.hpp for the crash-surviving one,
// sharded_base.hpp + sharded_store.hpp + range_sharded_store.hpp for the
// partitioned ones (ARCHITECTURE.md maps the whole stack).

#include "store/basic_store.hpp"
#include "store/feed.hpp"
#include "store/medley_store.hpp"
#include "store/persistent_medley_store.hpp"
#include "store/range_sharded_store.hpp"
#include "store/sharded_base.hpp"
#include "store/sharded_store.hpp"
#include "store/store_stats.hpp"

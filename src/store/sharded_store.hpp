#pragma once
// ShardedMedleyStore: hash-partitioned MedleyStore shards under one
// TxDomain (ROADMAP "multi-store sharding with a TxManager per shard").
//
// Each shard owns a full serving stack — a private TxManager, a Michael
// hash primary, a Fraser skiplist secondary, and a change feed — so the
// single-shard fast path (every point op whose key hashes to one shard)
// runs entirely inside the local manager: no other shard's feed tail,
// skiplist head towers, hooks, or stats slots are ever touched. What made
// one store a scalability ceiling was exactly that every thread's mutation
// serialized through ONE feed tail and ONE manager's metadata even when
// the keys never collided; partitioning multiplies those single points by
// the shard count.
//
// The cross-shard machinery (atomic multi_put / read_modify_write_many /
// transact, the sequence-stamp-merged poll_feed — clamped per transaction
// by StoreConfig::feed_drain_per_tx / kMaxFeedDrainPerTx — and the
// aggregated stats) lives in sharded_base.hpp, shared with
// RangeShardedMedleyStore. This class contributes the HASH partitioning
// and the ordered operations it forces:
//
//   shard_of     — finalized hash of the key, masked for power-of-2 shard
//                  counts. Uniform spread, no hotspots, but adjacent keys
//                  land on unrelated shards;
//   range / scan — every shard may hold part of any window, so one
//                  transaction collects each shard's ordered run (level-0
//                  links join the one shared read set) and a k-way merge
//                  produces the global order. A scan therefore pays N
//                  skiplist descents regardless of its span — the measured
//                  YCSB-E cost that RangeShardedMedleyStore
//                  (range_sharded_store.hpp) removes for scan-heavy
//                  workloads. PAPER.md "Layer 5 — sharding" has the
//                  decision table.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "store/sharded_base.hpp"
#include "util/rng.hpp"

namespace medley::store {

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedMedleyStore
    : public ShardedStoreBase<K, V, ShardedMedleyStore<K, V, Hash>> {
  using Base = ShardedStoreBase<K, V, ShardedMedleyStore<K, V, Hash>>;
  friend Base;

 public:
  using Shard = typename Base::Shard;
  using FeedItem = typename Base::FeedItem;

  explicit ShardedMedleyStore(std::size_t nshards, StoreConfig cfg = {})
      : Base(nshards, cfg) {
    shard_mask_ = (nshards & (nshards - 1)) == 0 ? nshards - 1 : 0;
  }

  // ---- partitioning ------------------------------------------------------

  std::size_t shard_of(const K& k) const {
    // Finalize the hash (std::hash over integers is identity on common
    // stdlibs; unmixed, dense keys would stripe rather than spread).
    const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(Hash{}(k)));
    // Power-of-2 shard counts (the common configuration) mask instead of
    // paying a 64-bit division on every point op.
    if (shard_mask_ != 0 || shards_.size() == 1) {
      return static_cast<std::size_t>(h & shard_mask_);
    }
    return static_cast<std::size_t>(h % shards_.size());
  }

  // ---- merged ordered operations -----------------------------------------

  /// Atomic ordered snapshot of all entries with lo <= key <= hi across
  /// every shard: one transaction collects each shard's window, then a
  /// k-way merge of the sorted runs yields global order. Read-set capacity
  /// bounds the total window size (~4K links), same as one shard.
  std::vector<std::pair<K, V>> range(const K& lo, const K& hi) {
    if (shards_.size() == 1) return shards_[0].store->range(lo, hi);
    std::vector<std::vector<std::pair<K, V>>> runs(shards_.size());
    this->cross_exec_ro([&] {
      for (std::size_t i = 0; i < shards_.size(); i++) {
        runs[i] = shards_[i].store->range(lo, hi);
      }
    });
    return merge_runs(runs, std::numeric_limits<std::size_t>::max());
  }

  /// Atomic ordered snapshot of up to `limit` entries with key >= lo.
  /// A shard's share of the global prefix is unknowable in advance, but
  /// hashed keys spread uniformly, so each shard first fetches ~limit/N
  /// (plus slack) and only a shard whose run is consumed to exhaustion
  /// mid-merge fetches deeper — still inside the same transaction, so the
  /// result stays one atomic snapshot. Naively fetching `limit` per shard
  /// would multiply the scan's work and read-set footprint by N (measured
  /// as a YCSB-E collapse at 4+ shards).
  std::vector<std::pair<K, V>> scan(const K& lo, std::size_t limit) {
    const std::size_t n = shards_.size();
    if (limit == 0) return {};
    if (n == 1) return shards_[0].store->scan(lo, limit);
    std::vector<std::pair<K, V>> out;
    this->cross_exec_ro([&] {
      out.clear();
      const std::size_t chunk =
          std::min(limit, limit / n + kScanSlack);
      std::vector<std::vector<std::pair<K, V>>> runs(n);
      std::vector<std::size_t> pos(n, 0);
      // exhausted[i]: the shard truly has no entries past its run's tail
      // (it returned fewer than asked), as opposed to "fetch more".
      std::vector<bool> exhausted(n);
      for (std::size_t i = 0; i < n; i++) {
        runs[i] = shards_[i].store->scan(lo, chunk);
        exhausted[i] = runs[i].size() < chunk;
      }
      while (out.size() < limit) {
        std::size_t best = n;
        for (std::size_t i = 0; i < n; i++) {
          if (pos[i] == runs[i].size()) {
            if (exhausted[i]) continue;
            // Run consumed but the shard may hold more: fetch the next
            // chunk starting at the last seen key (inclusive re-read of
            // a key this transaction already registered; dropped below).
            const K& last = runs[i].back().first;
            auto next = shards_[i].store->scan(last, chunk + 1);
            if (!next.empty() && !(next.front().first < last) &&
                !(last < next.front().first)) {
              next.erase(next.begin());
            }
            exhausted[i] = next.size() < chunk;
            runs[i] = std::move(next);
            pos[i] = 0;
            if (runs[i].empty()) {
              exhausted[i] = true;
              continue;
            }
          }
          if (best == n ||
              runs[i][pos[i]].first < runs[best][pos[best]].first) {
            best = i;
          }
        }
        if (best == n) break;  // every shard exhausted
        out.push_back(runs[best][pos[best]++]);
      }
    });
    return out;
  }

 private:
  using Base::shards_;

  /// Extra per-shard entries fetched beyond limit/N on the first scan
  /// pass: absorbs hash-spread variance (~2.3 sigma for 64-entry scans
  /// over 4 shards) so refills stay rare for the short scans serving
  /// workloads issue, without re-introducing N-fold over-fetch.
  static constexpr std::size_t kScanSlack = 8;

  /// K-way merge of per-shard sorted runs (keys are partitioned, so runs
  /// never share a key); keeps at most `limit` smallest entries.
  static std::vector<std::pair<K, V>> merge_runs(
      std::vector<std::vector<std::pair<K, V>>>& runs, std::size_t limit) {
    std::vector<std::pair<K, V>> out;
    std::vector<std::size_t> pos(runs.size(), 0);
    for (;;) {
      if (out.size() >= limit) break;
      std::size_t best = runs.size();
      for (std::size_t i = 0; i < runs.size(); i++) {
        if (pos[i] < runs[i].size() &&
            (best == runs.size() ||
             runs[i][pos[i]].first < runs[best][pos[best]].first)) {
          best = i;
        }
      }
      if (best == runs.size()) break;
      out.push_back(runs[best][pos[best]++]);
    }
    return out;
  }

  std::size_t shard_mask_ = 0;  // nshards-1 for power-of-2 counts, else 0
};

}  // namespace medley::store

#include "montage/epoch_sys.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>

#include "util/backoff.hpp"
#include "util/flush.hpp"

namespace medley::montage {

namespace {

/// Tiny Composable that exposes read-set registration for the epoch cell.
class EpochFolder : public core::Composable {
 public:
  explicit EpochFolder(core::TxManager* mgr,
                       core::CASObj<std::uint64_t>* cell)
      : Composable(mgr), cell_(cell) {}

  void fold() {
    const std::uint64_t e = cell_->nbtcLoad();
    addToReadSet(cell_, e);
  }

 private:
  core::CASObj<std::uint64_t>* cell_;
};

}  // namespace

EpochSys::EpochSys(PRegion* region) : region_(region) {
  // Resume two past the persisted boundary (a fresh region persists epoch
  // 0, so the clock starts at 2); epochs 0 and 1 are never current.
  epoch_.store(persisted_epoch() + 2);
}

EpochSys::~EpochSys() {
  stop_advancer();
  // No operations are running by contract: release every deferred slot
  // before the region can go away.
  std::lock_guard<std::mutex> g(advance_mutex_);
  for (const PendingFree& p : pending_free_) region_->free(p.blk);
  pending_free_.clear();
}

void EpochSys::attach(core::TxManager* mgr) {
  auto folder = std::make_unique<EpochFolder>(mgr, &epoch_);
  auto* folder_raw = folder.get();
  folder_ = std::move(folder);
  mgr->set_begin_hook([this, folder_raw] {
    enter();
    folder_raw->fold();
  });
  mgr->set_end_hook([this](bool committed) {
    finalize(committed);
    exit();
  });
}

EpochSys::ThreadSlot& EpochSys::my_slot() {
  return *slots_[util::ThreadRegistry::tid()];
}

void EpochSys::enter() {
  ThreadSlot& s = my_slot();
  if (s.nesting++ > 0) return;
  for (;;) {
    const std::uint64_t e = epoch_.load();
    s.announce.store(e, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (epoch_.load() == e) {
      s.my_epoch = e;
      return;
    }
    s.announce.store(kQuiescent, std::memory_order_release);
  }
}

void EpochSys::exit() {
  ThreadSlot& s = my_slot();
  if (--s.nesting == 0) {
    s.announce.store(kQuiescent, std::memory_order_release);
  }
}

PBlk* EpochSys::alloc_payload(std::uint64_t sid, std::uint64_t key,
                              std::uint64_t val, std::uint64_t aux) {
  ThreadSlot& s = my_slot();
  PBlk* b = region_->alloc();
  if (b == nullptr) return nullptr;
  b->key = key;
  b->val = val;
  b->aux = aux;
  b->owner_sid.store(sid, std::memory_order_relaxed);
  b->create_epoch.store(s.my_epoch, std::memory_order_relaxed);
  b->retire_epoch.store(0, std::memory_order_relaxed);
  b->magic.store(PBlk::kMagicLive, std::memory_order_release);
  s.allocs.push_back(b);
  return b;
}

void EpochSys::cancel_payload(PBlk* blk) {
  ThreadSlot& s = my_slot();
  for (std::size_t i = s.allocs.size(); i-- > 0;) {
    if (s.allocs[i] == blk) {
      s.allocs.erase(s.allocs.begin() + static_cast<long>(i));
      break;
    }
  }
  region_->free(blk);
}

void EpochSys::retire_payload(PBlk* blk) {
  my_slot().retires.push_back(blk);
}

void EpochSys::finalize(bool committed) {
  ThreadSlot& s = my_slot();
  if (committed) {
    auto& batch = s.to_persist[s.my_epoch % 4];
    for (PBlk* b : s.allocs) batch.push_back(b);
    for (PBlk* b : s.retires) {
      b->retire_epoch.store(s.my_epoch, std::memory_order_release);
      batch.push_back(b);
      s.quarantine[s.my_epoch % 4].push_back(b);
    }
  } else {
    // Eager, fenced invalidation before the announcement is released: the
    // epoch boundary waits for us, so recovery can never observe these.
    for (PBlk* b : s.allocs) {
      b->magic.store(PBlk::kMagicFree, std::memory_order_release);
      util::clwb(b);
    }
    if (!s.allocs.empty()) util::sfence();
    for (PBlk* b : s.allocs) region_->free(b);
    // Retirements of an aborted transaction never happened.
  }
  s.allocs.clear();
  s.retires.clear();
}

void EpochSys::advance() {
  std::lock_guard<std::mutex> g(advance_mutex_);
  const std::uint64_t e = epoch_.load();
  if (!epoch_.CAS(e, e + 1)) return;  // raced with another advancer

  // Wait for every operation/transaction announced in epoch <= e. This is
  // what makes the boundary a consistent cut: stragglers either commit in
  // e (their payloads join e's batch below) or abort (and invalidate
  // their payloads) before we proceed.
  const int n = util::ThreadRegistry::max_tid();
  for (int i = 0; i < n; i++) {
    util::ExpBackoff backoff;
    for (;;) {
      const std::uint64_t a =
          slots_[i]->announce.load(std::memory_order_acquire);
      if (a == kQuiescent || a > e) break;
      backoff();
    }
  }

  // Batched write-back of everything epoch e produced.
  bool flushed = false;
  for (int i = 0; i < n; i++) {
    auto& batch = slots_[i]->to_persist[e % 4];
    for (PBlk* b : batch) {
      util::flush_range(b, sizeof(PBlk));
      flushed = true;
    }
    batch.clear();
  }
  if (flushed) util::sfence();

  // The boundary is now durable.
  region_->header().persisted_epoch.store(e, std::memory_order_release);
  util::clwb(&region_->header());
  util::sfence();

  // Slots whose retirement persisted with epoch e can be reused — but
  // only after any reader still holding the payload pointer (under an
  // OpGuard's EBR pin) is done. The deferred frees stay owned by this
  // EpochSys so they can never outlive the region.
  auto& ebr = smr::EBR::instance();
  const std::uint64_t ebr_now = ebr.epoch();
  for (int i = 0; i < n; i++) {
    auto& q = slots_[i]->quarantine[e % 4];
    for (PBlk* b : q) pending_free_.push_back({b, ebr_now});
    q.clear();
  }
  ebr.collect();  // nudge the reclamation epoch forward
  const std::uint64_t ebr_after = ebr.epoch();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_free_.size(); i++) {
    if (pending_free_[i].ebr_epoch + 2 <= ebr_after) {
      region_->free(pending_free_[i].blk);
    } else {
      pending_free_[kept++] = pending_free_[i];
    }
  }
  pending_free_.resize(kept);
}

void EpochSys::sync() {
  const std::uint64_t target = epoch_.load();
  while (persisted_epoch() < target) advance();
}

void EpochSys::start_advancer(std::uint64_t interval_ms) {
  stop_advancer();
  advancer_stop_.store(false);
  advancer_ = std::thread([this, interval_ms] {
    while (!advancer_stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      advance();
    }
  });
}

void EpochSys::stop_advancer() {
  if (advancer_.joinable()) {
    advancer_stop_.store(true, std::memory_order_release);
    advancer_.join();
  }
}

std::vector<EpochSys::Recovered> EpochSys::recover() {
  const std::uint64_t pe = persisted_epoch();
  region_->rebuild_freelist([pe](const PBlk& b) {
    if (b.magic.load(std::memory_order_relaxed) != PBlk::kMagicLive) {
      return true;
    }
    const std::uint64_t ce = b.create_epoch.load(std::memory_order_relaxed);
    const std::uint64_t re = b.retire_epoch.load(std::memory_order_relaxed);
    const bool live = ce <= pe && (re == 0 || re > pe);
    return !live;
  });
  std::vector<Recovered> out;
  for (std::size_t i = 0; i < region_->capacity(); i++) {
    PBlk* b = region_->slot(i);
    if (b->magic.load(std::memory_order_relaxed) == PBlk::kMagicLive) {
      // Survivor: clear any unpersisted retirement stamp (it happened
      // after the boundary, i.e. never).
      if (b->retire_epoch.load(std::memory_order_relaxed) > pe) {
        b->retire_epoch.store(0, std::memory_order_relaxed);
      }
      out.push_back({b->owner_sid.load(std::memory_order_relaxed), b->key,
                     b->val, b->aux, b});
    }
  }
  epoch_.store(pe + 2);
  return out;
}

std::size_t EpochSys::durable_payload_count() {
  const std::uint64_t pe = persisted_epoch();
  std::size_t n = 0;
  for (std::size_t i = 0; i < region_->capacity(); i++) {
    PBlk* b = region_->slot(i);
    if (b->magic.load(std::memory_order_relaxed) != PBlk::kMagicLive) {
      continue;
    }
    const std::uint64_t ce = b->create_epoch.load(std::memory_order_relaxed);
    const std::uint64_t re = b->retire_epoch.load(std::memory_order_relaxed);
    if (ce <= pe && (re == 0 || re > pe)) n++;
  }
  return n;
}

}  // namespace medley::montage

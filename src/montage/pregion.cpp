#include "montage/pregion.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "util/flush.hpp"

namespace medley::montage {

PRegion::PRegion(const std::string& path, std::size_t capacity)
    : path_(path), capacity_(capacity) {
  bytes_ = sizeof(RegionHeader) + capacity_ * sizeof(PBlk);
  const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) throw std::runtime_error("PRegion: cannot open " + path_);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("PRegion: fstat failed");
  }
  const bool existed = static_cast<std::size_t>(st.st_size) >= bytes_;
  if (!existed && ::ftruncate(fd, static_cast<off_t>(bytes_)) != 0) {
    ::close(fd);
    throw std::runtime_error("PRegion: ftruncate failed");
  }
  void* base =
      ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) throw std::runtime_error("PRegion: mmap failed");

  header_ = static_cast<RegionHeader*>(base);
  slots_ = reinterpret_cast<PBlk*>(static_cast<char*>(base) +
                                   sizeof(RegionHeader));
  next_free_.reset(new std::atomic<std::uint64_t>[capacity_]);

  fresh_ = !existed ||
           header_->format_magic != RegionHeader::kFormatMagic ||
           header_->capacity != capacity_;
  if (fresh_) {
    std::memset(static_cast<void*>(slots_), 0, capacity_ * sizeof(PBlk));
    header_->format_magic = RegionHeader::kFormatMagic;
    header_->capacity = capacity_;
    header_->persisted_epoch.store(0, std::memory_order_relaxed);
    util::flush_range(header_, sizeof(RegionHeader));
    util::sfence();
  }
  rebuild_freelist([](const PBlk& b) {
    return b.magic.load(std::memory_order_relaxed) != PBlk::kMagicLive;
  });
}

PRegion::~PRegion() {
  if (header_ != nullptr) {
    ::munmap(static_cast<void*>(header_), bytes_);
  }
}

void PRegion::rebuild_freelist(
    const std::function<bool(const PBlk&)>& is_free) {
  free_head_.store(~0ULL, std::memory_order_relaxed);
  // Push free slots in reverse so allocation proceeds from low indices.
  for (std::size_t i = capacity_; i-- > 0;) {
    if (is_free(slots_[i])) {
      slots_[i].magic.store(PBlk::kMagicFree, std::memory_order_relaxed);
      const std::uint64_t head = free_head_.load(std::memory_order_relaxed);
      next_free_[i].store(head, std::memory_order_relaxed);
      free_head_.store(((head >> 32) + 1) << 32 |
                           static_cast<std::uint64_t>(i),
                       std::memory_order_relaxed);
    } else {
      next_free_[i].store(~0ULL, std::memory_order_relaxed);
    }
  }
}

PBlk* PRegion::alloc() {
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint64_t idx = head & 0xffffffffULL;
    if (idx == 0xffffffffULL) return nullptr;  // exhausted
    const std::uint64_t next =
        next_free_[idx].load(std::memory_order_acquire);
    const std::uint64_t desired =
        ((head >> 32) + 1) << 32 | (next & 0xffffffffULL);
    if (free_head_.compare_exchange_weak(head, desired,
                                         std::memory_order_acq_rel)) {
      return &slots_[idx];
    }
  }
}

void PRegion::free(PBlk* blk) {
  blk->magic.store(PBlk::kMagicFree, std::memory_order_release);
  const auto idx = static_cast<std::uint64_t>(blk - slots_);
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    next_free_[idx].store(head, std::memory_order_relaxed);
    const std::uint64_t desired = ((head >> 32) + 1) << 32 | idx;
    if (free_head_.compare_exchange_weak(head, desired,
                                         std::memory_order_acq_rel)) {
      return;
    }
  }
}

void PRegion::reset() {
  std::memset(static_cast<void*>(slots_), 0, capacity_ * sizeof(PBlk));
  header_->persisted_epoch.store(0, std::memory_order_relaxed);
  util::flush_range(header_, sizeof(RegionHeader));
  util::sfence();
  rebuild_freelist([](const PBlk&) { return true; });
}

std::size_t PRegion::live_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < capacity_; i++) {
    if (slots_[i].magic.load(std::memory_order_relaxed) ==
        PBlk::kMagicLive) {
      n++;
    }
  }
  return n;
}

}  // namespace medley::montage

#pragma once
// txMontage data structures (paper Sec. 4.4): Medley structures whose
// semantically significant data ("payloads") live in the persistent
// region while the structure itself — the index — stays in DRAM and is
// rebuilt on recovery. A transaction's payloads are all tagged with the
// transaction's epoch; MCNS commit validation of the folded epoch cell
// guarantees the transaction linearizes in that epoch, so an epoch is
// recovered or lost as a unit: failure atomicity and durability "almost
// for free".
//
// The map's payload is a {key, value} pair (one PBlk per mapping entry);
// the DRAM index maps key -> PBlk*. Values are immutable per payload —
// an update allocates a fresh payload and retires the old one, exactly
// the nbMontage payload discipline.

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ds/fraser_skiplist.hpp"
#include "ds/michael_hashtable.hpp"
#include "montage/epoch_sys.hpp"

namespace medley::montage {

/// Generic persistent map wrapper: `Index` is any Medley map from
/// uint64_t keys to PBlk* values (Michael hash table, Fraser skiplist).
template <typename Index>
class TxMontageMap {
 public:
  template <typename... IndexArgs>
  TxMontageMap(core::TxManager* mgr, EpochSys* es, std::uint64_t sid,
               IndexArgs&&... index_args)
      : es_(es),
        sid_(sid),
        index_(mgr, std::forward<IndexArgs>(index_args)...) {}

  std::optional<std::uint64_t> get(std::uint64_t k) {
    EpochSys::OpGuard g(es_);
    auto blk = index_.get(k);
    if (!blk) return std::nullopt;
    return (*blk)->val;
  }

  /// Existence-only probe: the index's own contains never loads the
  /// payload block, so no persistent value is materialized just to be
  /// dropped.
  bool contains(std::uint64_t k) {
    EpochSys::OpGuard g(es_);
    return index_.contains(k);
  }

  bool insert(std::uint64_t k, std::uint64_t v) {
    EpochSys::OpGuard g(es_);
    PBlk* payload = alloc(k, v);
    if (index_.insert(k, payload)) return true;
    es_->cancel_payload(payload);
    return false;
  }

  std::optional<std::uint64_t> put(std::uint64_t k, std::uint64_t v) {
    EpochSys::OpGuard g(es_);
    PBlk* payload = alloc(k, v);
    auto old = index_.put(k, payload);
    if (!old) return std::nullopt;
    const std::uint64_t old_val = (*old)->val;
    es_->retire_payload(*old);
    return old_val;
  }

  std::optional<std::uint64_t> remove(std::uint64_t k) {
    EpochSys::OpGuard g(es_);
    auto old = index_.remove(k);
    if (!old) return std::nullopt;
    const std::uint64_t old_val = (*old)->val;
    es_->retire_payload(*old);
    return old_val;
  }

  /// Ordered queries — only instantiable when Index is an ordered map
  /// (the Fraser skiplist). The index yields {key, PBlk*}; payloads are
  /// immutable and EBR-protected for the whole operation (OpGuard), so
  /// dereferencing blk->val after the index traversal is safe.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> range(
      std::uint64_t lo, std::uint64_t hi) {
    EpochSys::OpGuard g(es_);
    return resolve(index_.range(lo, hi));
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> scan(
      std::uint64_t lo, std::size_t limit) {
    EpochSys::OpGuard g(es_);
    return resolve(index_.scan(lo, limit));
  }

  /// Rebuild the DRAM index from recovered payloads (call once, before
  /// any operations, with the survivors of EpochSys::recover()).
  void recover_from(const std::vector<EpochSys::Recovered>& payloads) {
    for (const auto& r : payloads) {
      if (r.sid != sid_) continue;
      index_.insert(r.key, r.blk);
    }
  }

  std::size_t size_slow() { return index_.size_slow(); }

  Index& index() { return index_; }

 private:
  static std::vector<std::pair<std::uint64_t, std::uint64_t>> resolve(
      const std::vector<std::pair<std::uint64_t, PBlk*>>& raw) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    out.reserve(raw.size());
    for (const auto& [k, blk] : raw) out.emplace_back(k, blk->val);
    return out;
  }

  PBlk* alloc(std::uint64_t k, std::uint64_t v) {
    PBlk* payload = es_->alloc_payload(sid_, k, v);
    if (payload == nullptr) {
      // Exhaustion is usually transient: retired payloads become free at
      // the next epoch advance. Inside a transaction, surface it as a
      // retryable Capacity abort; outside, the region is genuinely full.
      if (auto* ctx = core::TxManager::active_ctx()) {
        ctx->mgr->txAbortCapacity();
      }
      throw std::runtime_error("txMontage: persistent region exhausted");
    }
    return payload;
  }

  EpochSys* es_;
  std::uint64_t sid_;
  Index index_;
};

using TxMontageHashTable =
    TxMontageMap<ds::MichaelHashTable<std::uint64_t, PBlk*>>;
using TxMontageSkiplist =
    TxMontageMap<ds::FraserSkiplist<std::uint64_t, PBlk*>>;

}  // namespace medley::montage

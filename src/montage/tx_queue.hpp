#pragma once
// txMontage FIFO queue (paper Sec. 4.2: "The payloads of a queue are
// ⟨serial number, item⟩ pairs"). The transient index is the NBTC Michael
// & Scott queue holding payload pointers; each enqueue allocates a
// payload stamped with a monotonically increasing serial, each dequeue
// retires one. Recovery collects the surviving payloads and replays them
// in serial order.
//
// Serial numbers are drawn from an atomic counter at operation start, so
// under concurrent enqueues the serial order can differ from the
// linearization order by bounded local reorderings (the counter draw and
// the linearizing link are separate instructions). nbMontage's queue has
// the same structure; a recovered queue is FIFO with respect to serial
// draws. Transactional enqueues that abort leave serial gaps, which is
// harmless.

#include <algorithm>
#include <atomic>
#include <optional>

#include "ds/ms_queue.hpp"
#include "montage/epoch_sys.hpp"

namespace medley::montage {

class TxMontageQueue {
 public:
  TxMontageQueue(core::TxManager* mgr, EpochSys* es, std::uint64_t sid)
      : es_(es), sid_(sid), q_(mgr) {}

  void enqueue(std::uint64_t v) {
    EpochSys::OpGuard g(es_);
    const std::uint64_t serial =
        serial_.fetch_add(1, std::memory_order_acq_rel);
    PBlk* payload = es_->alloc_payload(sid_, serial, v);
    if (payload == nullptr) {
      // See TxMontageMap::alloc: transient under epoch-deferred frees.
      if (auto* ctx = core::TxManager::active_ctx()) {
        ctx->mgr->txAbortCapacity();
      }
      throw std::runtime_error("txMontage: persistent region exhausted");
    }
    q_.enqueue(payload);
  }

  std::optional<std::uint64_t> dequeue() {
    EpochSys::OpGuard g(es_);
    auto payload = q_.dequeue();
    if (!payload) return std::nullopt;
    const std::uint64_t v = (*payload)->val;
    es_->retire_payload(*payload);
    return v;
  }

  bool empty() { return q_.empty(); }
  std::size_t size_slow() { return q_.size_slow(); }

  /// Rebuild from recovered payloads: this queue's survivors, re-enqueued
  /// in serial order. Call once, quiescent, before any operations.
  void recover_from(const std::vector<EpochSys::Recovered>& payloads) {
    std::vector<const EpochSys::Recovered*> mine;
    for (const auto& r : payloads) {
      if (r.sid == sid_) mine.push_back(&r);
    }
    std::sort(mine.begin(), mine.end(),
              [](const EpochSys::Recovered* a, const EpochSys::Recovered* b) {
                return a->key < b->key;  // key field holds the serial
              });
    for (const auto* r : mine) {
      q_.enqueue(r->blk);
      serial_.store(std::max(serial_.load(std::memory_order_relaxed),
                             r->key + 1),
                    std::memory_order_relaxed);
    }
  }

 private:
  EpochSys* es_;
  std::uint64_t sid_;
  ds::MSQueue<PBlk*> q_;
  std::atomic<std::uint64_t> serial_{1};
};

}  // namespace medley::montage

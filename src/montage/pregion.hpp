#pragma once
// Persistent region: a file-backed mmap'd arena standing in for NVM
// (DESIGN.md §4 substitution: Optane DIMMs -> mmap'd file + real
// clwb/clflushopt/sfence; the write-back instructions execute for real
// against the mapped pages, so eager-vs-batched persistence costs keep
// their relative shape).
//
// The arena hands out fixed-size payload blocks (PBlk slots) with a
// freelist. Block headers carry the epoch tags and lifecycle state that
// nbMontage recovery interprets; see payload.hpp / recovery.hpp.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace medley::montage {

/// One persistent payload slot. 64 bytes: header + a key/value pair, the
/// payload shape of a mapping per the paper ("the payloads of a mapping
/// are simply a pile of key-value pairs"). Queues store
/// {serial number, item} in the same footprint.
struct alignas(64) PBlk {
  static constexpr std::uint64_t kMagicFree = 0;
  static constexpr std::uint64_t kMagicLive = 0x4d4f4e5441474521ULL;

  std::atomic<std::uint64_t> magic{kMagicFree};
  std::atomic<std::uint64_t> create_epoch{0};
  std::atomic<std::uint64_t> retire_epoch{0};  // 0 = still live
  std::atomic<std::uint64_t> owner_sid{0};     // structure id
  std::uint64_t key{0};
  std::uint64_t val{0};
  std::uint64_t aux{0};       // per-structure extra word (e.g. queue serial)
  std::uint64_t reserved{0};
};

static_assert(sizeof(PBlk) == 64);

/// First 64 bytes of the file: recovery metadata.
struct alignas(64) RegionHeader {
  static constexpr std::uint64_t kFormatMagic = 0x7478'4d4f'4e54'4147ULL;
  std::uint64_t format_magic{0};
  std::uint64_t capacity{0};
  /// Highest epoch whose payloads are fully durable; recovery restores
  /// the state as of the end of this epoch.
  std::atomic<std::uint64_t> persisted_epoch{0};
  std::uint64_t reserved[5]{};
};

static_assert(sizeof(RegionHeader) == 64);

class PRegion {
 public:
  /// Map (creating if needed) a persistent region with `capacity` payload
  /// slots at `path`. An existing file is mapped as-is so recovery can
  /// inspect its contents.
  PRegion(const std::string& path, std::size_t capacity);
  ~PRegion();

  PRegion(const PRegion&) = delete;
  PRegion& operator=(const PRegion&) = delete;

  /// Allocate a slot (lock-free freelist over slot indices).
  /// Returns nullptr when the region is exhausted.
  PBlk* alloc();

  /// Return a slot to the freelist (after its retirement persisted).
  void free(PBlk* blk);

  PBlk* slot(std::size_t i) { return &slots_[i]; }
  std::size_t capacity() const { return capacity_; }
  RegionHeader& header() { return *header_; }

  /// Was the mapped file created fresh (true) or did it carry an existing
  /// format header (false -> recovery candidate)?
  bool fresh() const { return fresh_; }

  /// Rebuild the transient freelist: every slot for which `is_free`
  /// returns true becomes allocatable (and is wiped). Called on open and
  /// by recovery.
  void rebuild_freelist(const std::function<bool(const PBlk&)>& is_free);

  /// Wipe all slots to the free state (tests / fresh start).
  void reset();

  /// Number of live (allocated) slots — O(capacity) scan, tests only.
  std::size_t live_count() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t capacity_;
  std::size_t bytes_;
  bool fresh_ = false;
  RegionHeader* header_ = nullptr;
  PBlk* slots_ = nullptr;
  // Transient freelist (rebuilt on open): Treiber stack of slot indices.
  std::unique_ptr<std::atomic<std::uint64_t>[]> next_free_;
  std::atomic<std::uint64_t> free_head_{~0ULL};  // {aba:32, index:32}
};

}  // namespace medley::montage

#pragma once
// nbMontage-style epoch system (Cai et al., DISC '21) and its txMontage
// integration with Medley (paper Sec. 4).
//
// Time is divided into epochs. Payload blocks written during epoch e are
// write-backed in a batch when e closes; the region header's
// persisted_epoch then advances to e. A crash recovers the state as of
// the persisted boundary — payloads with create_epoch > persisted_epoch
// (or retire_epoch <= persisted_epoch) are discarded. This is buffered
// durable linearizability: a bounded recent suffix may be lost, never an
// inconsistent cut.
//
// txMontage fold-in (Sec. 4.4): the current epoch lives in a CASObj; a
// begin-hook on the TxManager loads it into every transaction's read set,
// so MCNS commit validation enforces "all operations of a transaction
// linearize in the payloads' epoch" with no additional mechanism. Epoch
// advance CASes the cell (bumping its counter), which aborts straddling
// transactions — the paper's "operations that take too long are forced
// to abort".
//
// Aborted transactions invalidate their payloads eagerly (store + clwb +
// sfence) *before* releasing their epoch announcement; since the epoch
// boundary waits for announced transactions, a recovered epoch can never
// contain an aborted transaction's payloads.
//
// Simplification (documented; DESIGN.md §4): non-transactional Montage
// operations rely on announcement-straddling rather than nbMontage's
// in-CAS epoch check, so an op that linearizes while the epoch advances
// could in principle land on the wrong side of the cut; all persistence
// benchmarks and crash tests run transactions, where MCNS epoch
// validation closes this window exactly as the paper describes.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/medley.hpp"
#include "montage/pregion.hpp"
#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace medley::montage {

class EpochSys {
 public:
  static constexpr std::uint64_t kQuiescent = ~0ULL;

  explicit EpochSys(PRegion* region);
  ~EpochSys();

  EpochSys(const EpochSys&) = delete;
  EpochSys& operator=(const EpochSys&) = delete;

  /// Wire this epoch system into a Medley TxManager: every transaction
  /// announces its epoch, folds it into its read set, and finalizes its
  /// payloads on commit/abort.
  void attach(core::TxManager* mgr);

  /// The epoch cell (tests / diagnostics).
  core::CASObj<std::uint64_t>& epoch_obj() { return epoch_; }
  std::uint64_t current_epoch() { return epoch_.load(); }
  std::uint64_t persisted_epoch() {
    return region_->header().persisted_epoch.load(
        std::memory_order_acquire);
  }

  /// RAII announcement for one (possibly non-transactional) structure
  /// operation. Inside a transaction it nests under the transaction's
  /// announcement and defers payload finalization to the commit hook.
  /// Also pins the EBR epoch: payload pointers obtained from the index
  /// stay dereferenceable for the whole operation (retired slots are
  /// recycled only after both the persistence quarantine and an EBR grace
  /// period pass).
  class OpGuard {
   public:
    explicit OpGuard(EpochSys* es) : es_(es) { es_->enter(); }
    ~OpGuard() {
      if (core::TxManager::active_ctx() == nullptr) es_->finalize(true);
      es_->exit();
    }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;

   private:
    smr::EBR::Guard ebr_;
    EpochSys* es_;
  };

  // ---- payload lifecycle (call under an announcement) -----------------

  /// Allocate a payload tagged with the caller's announced epoch.
  /// Returns nullptr when the region is exhausted.
  PBlk* alloc_payload(std::uint64_t sid, std::uint64_t key,
                      std::uint64_t val, std::uint64_t aux = 0);

  /// The operation decided not to use the payload after all (e.g. insert
  /// found the key present): release it immediately.
  void cancel_payload(PBlk* blk);

  /// The payload's logical object was removed; stamps the retire epoch at
  /// commit (transactions) or operation end (standalone ops) and frees
  /// the slot once the retirement has persisted.
  void retire_payload(PBlk* blk);

  // ---- epoch machinery -------------------------------------------------

  /// Close the current epoch: advance the cell, wait for stragglers,
  /// write back the closed epoch's payloads, persist the boundary,
  /// release quarantined slots. Serialized internally.
  void advance();

  /// Ensure everything completed before this call is durable.
  void sync();

  /// Periodic advancer ("epoch length" = interval; paper uses 10-100ms).
  void start_advancer(std::uint64_t interval_ms = 10);
  void stop_advancer();

  // ---- recovery ---------------------------------------------------------

  struct Recovered {
    std::uint64_t sid, key, val, aux;
    PBlk* blk;
  };

  /// Apply the recovery predicate to the mapped region: discard payloads
  /// beyond the persisted boundary, return the survivors (for structures
  /// to rebuild their transient indices), and resume the epoch clock past
  /// the boundary. Call before any operations.
  std::vector<Recovered> recover();

  /// Number of payloads that would currently be recovered (tests).
  std::size_t durable_payload_count();

 private:
  struct ThreadSlot {
    std::atomic<std::uint64_t> announce{kQuiescent};
    int nesting = 0;
    std::uint64_t my_epoch = 0;
    std::vector<PBlk*> allocs;   // payloads of the open tx/op
    std::vector<PBlk*> retires;  // retirements of the open tx/op
    // Payloads awaiting the batched write-back of epoch (index % 4).
    std::vector<PBlk*> to_persist[4];
    // Retired payloads whose slots free once their epoch persists.
    std::vector<PBlk*> quarantine[4];
  };

  void enter();
  void exit();
  void finalize(bool committed);
  ThreadSlot& my_slot();

  PRegion* region_;
  core::CASObj<std::uint64_t> epoch_;
  util::Padded<ThreadSlot> slots_[util::ThreadRegistry::kMaxThreads];
  std::mutex advance_mutex_;
  // Retired slots past their persistence quarantine, awaiting an EBR
  // grace period before reuse. Owned by this EpochSys (never handed to
  // the global reclaimer: the free callback dereferences region_, whose
  // lifetime only this object can bound). Guarded by advance_mutex_.
  struct PendingFree {
    PBlk* blk;
    std::uint64_t ebr_epoch;
  };
  std::vector<PendingFree> pending_free_;

  std::unique_ptr<core::Composable> folder_;  // read-set access for the hook
  std::thread advancer_;
  std::atomic<bool> advancer_stop_{false};
};

}  // namespace medley::montage

#pragma once
// Epoll serving front-end: the network layer that feeds whole waves of
// requests into the store's flat-combining submit pipeline (ROADMAP
// "network front-end over the batching substrate"; ARCHITECTURE.md L10).
//
// Design in one paragraph: N worker threads, each with its own
// SO_REUSEPORT listening socket and its own epoll instance (acceptor-less
// — the kernel load-balances accepts), own the connections they accept.
// When a socket turns readable the worker drains it to EAGAIN and decodes
// EVERY complete frame buffered — that run of frames is a *wave*. PUT/DEL
// requests in the wave are issued through the store's async_put/async_del,
// which publish into the combiner's slots without waiting; when the wave
// (or an ordering barrier within it — see below) ends, the worker harvests
// the futures in request order. The first get() takes the combiner lock
// and drains every published slot as ONE transaction — one descriptor,
// one commit CAS for the whole wave — which is the end-to-end version of
// what PR 8's group commit proved in-process: the per-transaction protocol
// cost Ravi's inherent-cost argument says we cannot avoid is paid once per
// WAVE, not once per request. Responses are encoded into one contiguous
// per-connection buffer and flushed with a single writev per wave.
//
// Ordering within a pipelined connection: responses are written in request
// order, and the wire observes program order — a read (GET/RANGE/SCAN),
// an RMW, a MULTI_PUT, or an admin verb acts as a barrier that harvests
// every async mutation issued earlier in the wave before it executes, so
// a client that pipelines PUT(k) then GET(k) always reads its write.
//
// THE INVARIANT this layer adds (ARCHITECTURE.md): the wire never opens an
// ambient transaction. A worker thread is never inside an open transaction
// when it touches the store — every request maps to exactly one top-level
// store call (async mutations resolve via TxFuture::get, outside any tx),
// so the combiner routing, the read-only snapshot path, and flat-nesting
// semantics all behave exactly as the in-process API documents them, and
// graceful shutdown can always drain: a worker that stops between waves
// holds no transaction and no unharvested future.
//
// Acks are commit-proofs: a response is encoded only after its
// transaction's future resolved (TxFuture::get returns post-commit), so
// any byte the client reads as an OK ack refers to a committed mutation —
// the graceful-shutdown test pins "every acked request is in the store".

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/tx_exec.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace medley::net {

/// What the server needs from a store, type-erased so one server
/// implementation (server.cpp) serves any of the store flavors (plain,
/// sharded, range-sharded — the wire serves their common u64 -> u64
/// instantiation). Virtual dispatch costs ~1ns against a syscall-laden
/// request path; StoreAdapter below adapts any store in ~30 lines.
class StoreApi {
 public:
  virtual ~StoreApi() = default;

  using Async = TxFuture<std::optional<Val>>;

  virtual std::optional<Val> get(Key k) = 0;
  /// Publish-now/harvest-later mutations (the wave pipeline). With
  /// combining off these come back already resolved — the server code
  /// path is identical either way.
  virtual Async async_put(Key k, Val v) = 0;
  virtual Async async_del(Key k) = 0;
  virtual Val rmw_add(Key k, Val delta) = 0;
  virtual std::vector<std::pair<Key, Val>> range(Key lo, Key hi) = 0;
  virtual std::vector<std::pair<Key, Val>> scan(Key lo,
                                                std::size_t limit) = 0;
  virtual void multi_put(const std::vector<std::pair<Key, Val>>& kvs) = 0;
  virtual StatsBlob stats_blob() = 0;
  /// Prometheus text for the METRICS verb (empty when metrics are off).
  virtual std::string metrics_text() = 0;
};

/// StoreApi over any of the concrete stores. The store must outlive the
/// adapter; the adapter must outlive the server.
template <typename Store>
class StoreAdapter final : public StoreApi {
 public:
  explicit StoreAdapter(Store* s) : s_(s) {}

  std::optional<Val> get(Key k) override { return s_->get(k); }
  Async async_put(Key k, Val v) override { return s_->async_put(k, v); }
  Async async_del(Key k) override { return s_->async_del(k); }
  Val rmw_add(Key k, Val delta) override {
    auto res = s_->read_modify_write(k, [delta](const std::optional<Val>& c) {
      return std::optional<Val>(c.value_or(0) + delta);
    });
    return res.value_or(0);
  }
  std::vector<std::pair<Key, Val>> range(Key lo, Key hi) override {
    return s_->range(lo, hi);
  }
  std::vector<std::pair<Key, Val>> scan(Key lo, std::size_t limit) override {
    return s_->scan(lo, limit);
  }
  void multi_put(const std::vector<std::pair<Key, Val>>& kvs) override {
    s_->multi_put(kvs);
  }
  StatsBlob stats_blob() override {
    auto st = s_->stats();
    StatsBlob b;
    b.commits = st.commits;
    b.aborts = st.aborts();
    b.keys = st.key_count();
    b.feed_depth = s_->feed_depth();
    b.combined_batches = s_->combined_batches();
    b.combined_ops = s_->combined_ops();
    b.combiner_slots_leaked = s_->combiner_slots_leaked();
    return b;
  }
  std::string metrics_text() override { return s_->dump_metrics(); }

 private:
  Store* s_;
};

struct NetConfig {
  /// Listen address. Port 0 binds an ephemeral port; Server::port()
  /// reports the one the kernel picked (tests and the in-process bench
  /// rely on this).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Worker threads, each with its own SO_REUSEPORT listener + epoll set.
  /// Connections are owned by the worker that accepted them and never
  /// migrate, so per-connection state is single-threaded by construction.
  std::size_t workers = 1;

  /// Frame-size cap (protocol violation above it; see protocol.hpp).
  std::size_t max_frame = kDefaultMaxFrame;

  /// Registry the net_* families register into. Point it at the STORE's
  /// registry so one METRICS scrape exposes the whole request path
  /// (store families + net families); null = no net metrics.
  std::shared_ptr<obs::MetricsRegistry> registry;
};

/// The epoll server. start() binds and spawns the workers; stop() (or the
/// destructor) shuts down gracefully: workers finish the wave they are
/// processing — harvesting every outstanding future, which drains the
/// in-flight combiner batch — flush pending responses, close their
/// connections, and join. Only after stop() returns may the store be torn
/// down. A worker never holds an open transaction or an unharvested
/// future between waves, so the drain needs no handshake with the store.
class Server {
 public:
  Server(StoreApi* store, NetConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on every worker's socket, then spawn the workers.
  /// Throws std::system_error on any socket failure.
  void start();

  /// Graceful shutdown (idempotent): stop accepting, wake every worker,
  /// finish in-progress waves, flush, close, join.
  void stop();

  /// The bound port (after start(); the ephemeral-port case reads it
  /// from the first listener).
  std::uint16_t port() const { return bound_port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Connections currently open across all workers (the net_connections
  /// gauge reads this).
  std::uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Requests served since start, all verbs (errors included).
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;  // server.cpp owns the definition

  void worker_main(Worker& w);
  void init_metrics();

  StoreApi* store_;
  NetConfig cfg_;
  std::atomic<bool> running_{false};
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};

  // net_* instruments (null when cfg_.registry is). Registered once in
  // init_metrics(); workers bump them with per-thread-slot counters /
  // relaxed adds only — the observability-is-passive invariant.
  obs::Counter* req_counters_[10] = {};    // by Verb value (1..9)
  obs::Counter* err_counters_[7] = {};     // 0 = io, 2..6 by Status value
  obs::Histogram* batch_hist_ = nullptr;   // frames per wave
  /// Keep-alive handshake for the net_connections pull gauge: the gauge
  /// closure lives in the (possibly shared, possibly longer-lived)
  /// registry; this flag tells it the server it reads is gone.
  std::shared_ptr<std::atomic<bool>> conn_gauge_alive_;
};

}  // namespace medley::net

// Epoll worker implementation of net::Server — see server.hpp for the
// wave -> combiner design and the ordering/shutdown contracts, and
// ARCHITECTURE.md L10 for the request walkthrough.

#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <unordered_map>

#include "core/tx_domain.hpp"

namespace medley::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// One listening socket: SO_REUSEPORT so every worker binds the same
/// address and the kernel spreads accepts across them (the acceptor-less
/// design — no handoff queue, no shared accept lock).
int make_listener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    ::close(fd);
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    throw_errno("inet_pton");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 256) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind/listen");
  }
  return fd;
}

std::uint16_t bound_port_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

/// One request whose mutation is in flight in the combiner: the future to
/// harvest and the header bytes its response must echo. Kept in request
/// order; harvested in that order, so responses are too.
struct PendingOp {
  Verb verb;
  std::uint32_t id;
  StoreApi::Async fut;
};

/// Per-connection state, owned by exactly one worker thread.
struct Conn {
  explicit Conn(int fd_) : fd(fd_) {}
  int fd;
  FrameBuffer in;
  std::vector<std::uint8_t> out;  // encoded responses, flushed per wave
  std::size_t out_off = 0;        // already written to the socket
  std::vector<PendingOp> pending; // unharvested async mutations (this wave)
  bool want_write = false;        // EPOLLOUT armed (kernel buffer full)
  bool close_after_flush = false; // protocol violation: answer, then close
};

struct Server::Worker {
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;  // eventfd stop() signals
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
};

Server::Server(StoreApi* store, NetConfig cfg)
    : store_(store), cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
}

Server::~Server() { stop(); }

void Server::init_metrics() {
  if (!cfg_.registry) return;
  obs::MetricsRegistry& reg = *cfg_.registry;
  for (int v = 1; v <= 9; v++) {
    req_counters_[v] = &reg.counter(
        "medley_net_requests_total", "Requests served by the network layer",
        {{"op", verb_name(static_cast<Verb>(v))}});
  }
  static constexpr const char* kErrKinds[7] = {
      "io", nullptr, "malformed", "too_big", "aborted", "bad_verb",
      "shutdown"};
  for (int s = 0; s < 7; s++) {
    if (kErrKinds[s] == nullptr) continue;  // kNotFound is not an error
    err_counters_[s] = &reg.counter(
        "medley_net_errors_total",
        "Requests rejected or failed by the network layer",
        {{"kind", kErrKinds[s]}});
  }
  batch_hist_ = &reg.histogram(
      "medley_net_batch_size",
      "Complete frames decoded per ready-socket wave (the group-commit "
      "feeding size)",
      {});
  // Pull gauge over a plain atomic member: the registry may outlive this
  // server (it is usually the store's), so the closure captures a
  // shared_ptr keep-alive for the counter it reads.
  auto conns = std::make_shared<std::atomic<std::uint64_t>*>(&connections_);
  auto alive = std::make_shared<std::atomic<bool>>(true);
  conn_gauge_alive_ = alive;
  reg.gauge_fn("medley_net_connections",
               "Connections currently open across all workers", {},
               [conns, alive] {
                 return alive->load(std::memory_order_acquire)
                            ? static_cast<double>(
                                  (*conns)->load(std::memory_order_relaxed))
                            : 0.0;
               });
}

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  init_metrics();
  workers_.clear();
  threads_.clear();
  // Bind every worker's listener up front (worker 0 resolves an ephemeral
  // port; the rest re-bind the resolved one via SO_REUSEPORT).
  std::uint16_t port = cfg_.port;
  for (std::size_t i = 0; i < cfg_.workers; i++) {
    auto w = std::make_unique<Worker>();
    w->listen_fd = make_listener(cfg_.host, port);
    if (i == 0) {
      bound_port_ = bound_port_of(w->listen_fd);
      port = bound_port_;
    }
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (w->wake_fd < 0) throw_errno("eventfd");
    w->epoll_fd = ::epoll_create1(0);
    if (w->epoll_fd < 0) throw_errno("epoll_create1");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->listen_fd;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->listen_fd, &ev) < 0) {
      throw_errno("epoll_ctl(listen)");
    }
    ev.data.fd = w->wake_fd;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) < 0) {
      throw_errno("epoll_ctl(wake)");
    }
    workers_.push_back(std::move(w));
  }
  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    threads_.emplace_back([this, wp = w.get()] { worker_main(*wp); });
  }
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started, or already stopped: nothing to join.
    if (threads_.empty()) return;
  }
  for (auto& w : workers_) {
    if (w->wake_fd >= 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(w->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& w : workers_) {
    if (w->listen_fd >= 0) ::close(w->listen_fd);
    if (w->wake_fd >= 0) ::close(w->wake_fd);
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    w->listen_fd = w->wake_fd = w->epoll_fd = -1;
  }
  workers_.clear();
  if (conn_gauge_alive_) {
    conn_gauge_alive_->store(false, std::memory_order_release);
  }
}

namespace {

/// Flush a connection's unwritten response bytes with one writev (one
/// syscall per wave on the happy path). Returns false on a dead socket.
bool flush_out(Conn& c) {
  while (c.out_off < c.out.size()) {
    iovec iov{c.out.data() + c.out_off, c.out.size() - c.out_off};
    const ssize_t n = ::writev(c.fd, &iov, 1);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone
  }
  c.out.clear();
  c.out_off = 0;
  return true;
}

}  // namespace

void Server::worker_main(Worker& w) {
  auto note_req = [this](Verb v) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    const int idx = static_cast<int>(v);
    if (idx >= 1 && idx <= 9 && req_counters_[idx] != nullptr) {
      req_counters_[idx]->inc();
    }
  };
  auto note_err = [this](int kind_idx) {
    if (kind_idx >= 0 && kind_idx < 7 && err_counters_[kind_idx] != nullptr) {
      err_counters_[kind_idx]->inc();
    }
  };

  /// Harvest every unharvested async mutation of the wave, in request
  /// order, encoding each response as its transaction resolves. The
  /// first get() typically becomes the combiner and commits the whole
  /// wave as one batch; the rest consume their already-done slots.
  auto harvest = [&](Conn& c) {
    for (PendingOp& p : c.pending) {
      try {
        std::optional<Val> old = p.fut.get();
        encode_value(c.out, p.verb, p.id, old);
      } catch (const core::TransactionAborted&) {
        encode_status(c.out, p.verb, p.id, Status::kAborted);
        note_err(static_cast<int>(Status::kAborted));
      } catch (...) {
        encode_status(c.out, p.verb, p.id, Status::kAborted);
        note_err(static_cast<int>(Status::kAborted));
      }
    }
    c.pending.clear();
  };

  /// Execute one parsed request. PUT/DEL publish into the combiner and
  /// return immediately (response deferred to harvest); every other verb
  /// is an ordering barrier: harvest first, then execute synchronously.
  auto dispatch = [&](Conn& c, const Request& rq) {
    note_req(rq.verb);
    switch (rq.verb) {
      case Verb::kPut:
        c.pending.push_back(
            {rq.verb, rq.id, store_->async_put(rq.a, rq.b)});
        return;
      case Verb::kDel:
        c.pending.push_back({rq.verb, rq.id, store_->async_del(rq.a)});
        return;
      default:
        break;
    }
    harvest(c);
    try {
      switch (rq.verb) {
        case Verb::kGet:
          encode_value(c.out, rq.verb, rq.id, store_->get(rq.a));
          break;
        case Verb::kRmwAdd:
          encode_value(c.out, rq.verb, rq.id, store_->rmw_add(rq.a, rq.b));
          break;
        case Verb::kRange:
          encode_pairs(c.out, rq.verb, rq.id, store_->range(rq.a, rq.b));
          break;
        case Verb::kScan:
          encode_pairs(c.out, rq.verb, rq.id, store_->scan(rq.a, rq.limit));
          break;
        case Verb::kMultiPut: {
          std::vector<std::pair<Key, Val>> kvs;
          kvs.reserve(rq.npairs);
          for (std::uint32_t i = 0; i < rq.npairs; i++) {
            kvs.push_back(rq.pair(i));
          }
          store_->multi_put(kvs);
          encode_status(c.out, rq.verb, rq.id, Status::kOk);
          break;
        }
        case Verb::kStats:
          encode_stats(c.out, rq.id, store_->stats_blob());
          break;
        case Verb::kMetrics:
          encode_text(c.out, rq.id, store_->metrics_text());
          break;
        default:
          break;  // unreachable: PUT/DEL returned above
      }
    } catch (const core::TransactionAborted&) {
      encode_status(c.out, rq.verb, rq.id, Status::kAborted);
      note_err(static_cast<int>(Status::kAborted));
    }
  };

  /// Drain the socket, decode the wave, dispatch every frame, harvest,
  /// flush with one writev. Returns false when the connection must close.
  auto on_readable = [&](Conn& c) -> bool {
    bool peer_closed = false;
    for (;;) {
      std::uint8_t* dst = c.in.writable(16384);
      const ssize_t n = ::read(c.fd, dst, 16384);
      if (n > 0) {
        c.in.commit(static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        peer_closed = true;  // still serve what arrived before EOF
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      note_err(0);  // io
      return false;
    }
    std::size_t wave = 0;
    bool oversize = false;
    while (auto f = c.in.next(cfg_.max_frame, &oversize)) {
      wave++;
      Request rq;
      const Status st = parse_request(*f, rq);
      if (st != Status::kOk) {
        note_req(rq.verb);
        note_err(static_cast<int>(st));
        harvest(c);  // error responses keep request order too
        encode_status(c.out, rq.verb, rq.id, st);
        if (st == Status::kTooBig) c.close_after_flush = true;
        continue;
      }
      dispatch(c, rq);
    }
    if (oversize) {
      // The length prefix itself is the violation; the stream cannot be
      // re-synchronized, so answer and close. (The verb/id of the
      // offending frame may not even be buffered yet — echo zeros.)
      note_err(static_cast<int>(Status::kTooBig));
      encode_status(c.out, Verb::kGet, 0, Status::kTooBig);
      c.close_after_flush = true;
    }
    harvest(c);
    if (wave > 0 && batch_hist_ != nullptr) batch_hist_->record(wave);
    c.in.compact();
    if (!flush_out(c)) return false;
    if (c.close_after_flush && c.out_off >= c.out.size()) return false;
    return !peer_closed;
  };

  auto arm = [&](Conn& c) {
    // (Re-)register interest: EPOLLOUT only while a flush is blocked.
    const bool want_write = c.out_off < c.out.size();
    if (want_write == c.want_write) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
    c.want_write = want_write;
  };

  auto close_conn = [&](int fd) {
    ::epoll_ctl(w.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    w.conns.erase(fd);
    connections_.fetch_sub(1, std::memory_order_relaxed);
  };

  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(w.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; i++) {
      const int fd = events[i].data.fd;
      if (fd == w.wake_fd) {
        std::uint64_t drain;
        [[maybe_unused]] ssize_t r = ::read(w.wake_fd, &drain, sizeof(drain));
        continue;  // running_ re-checked by the loop condition
      }
      if (fd == w.listen_fd) {
        for (;;) {
          const int cfd =
              ::accept4(w.listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
          if (cfd < 0) break;  // EAGAIN or transient
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, cfd, &ev) < 0) {
            ::close(cfd);
            continue;
          }
          w.conns.emplace(cfd, std::make_unique<Conn>(cfd));
          connections_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        alive = false;
      } else {
        if (events[i].events & EPOLLOUT) alive = flush_out(c);
        if (alive && (events[i].events & EPOLLIN)) alive = on_readable(c);
      }
      if (!alive) {
        close_conn(fd);
      } else {
        arm(c);
      }
    }
  }
  // Graceful drain: the loop only exits BETWEEN waves, so there are no
  // unharvested futures and no open transactions on this thread — every
  // in-flight combiner batch this worker fed has committed and its acks
  // are encoded. Flush what the kernel will take, then close. Bytes the
  // peer never receives were never acked as committed-and-read; bytes it
  // does receive are commit-proofs (harvest preceded encode).
  for (auto& [fd, c] : w.conns) {
    flush_out(*c);
    ::close(fd);
    connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  w.conns.clear();
}

}  // namespace medley::net

#pragma once
// The Medley wire protocol: length-prefixed binary frames carrying store
// operations (ROADMAP "network front-end over the batching substrate").
//
// Every frame is  [u32 length][payload of `length` bytes]  with the length
// covering the payload only. A request payload is
//
//   [u8 verb][u32 req_id][verb-specific body]
//
// and a response payload is
//
//   [u8 verb][u32 req_id][u8 status][verb-specific body]
//
// with req_id echoed verbatim so pipelined clients can match responses
// (responses are also always delivered in request order per connection).
// All integers are little-endian, encoded/decoded through the explicit
// helpers below (the codebase already assumes x86-64 for cmpxchg16b, but
// the wire format should not inherit that silently).
//
// The served instantiation is the u64 -> u64 store the YCSB benches and
// the sharded stores use: keys and values are fixed 8-byte integers, so
// the only variable-length payloads are MULTI_PUT requests, RANGE/SCAN
// responses, and the STATS/METRICS admin bodies — which is exactly why
// frames are length-prefixed rather than fixed-size.
//
// Decoding is incremental and allocation-free on the hot path: a
// FrameBuffer accumulates raw socket bytes (one reusable buffer per
// connection, grown once to the high-water mark and then stable) and
// yields complete frames as views into that buffer; request parsing
// (parse_request) writes into a caller-owned Request struct and never
// allocates — MULTI_PUT pairs stay a pointer/count view into the frame.
// A frame whose header announces more than max_frame bytes is a protocol
// violation the decoder reports distinctly (the stream is unrecoverable —
// the server answers with kTooBig and closes); a complete frame whose
// body does not parse is rejected per-frame with kMalformed and the
// connection continues (frame boundaries are still trustworthy).
//
// This header is freestanding (no sockets): the codec is what
// tests/test_net.cpp round-trips byte-by-byte, and both the server and
// the client build on it.

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace medley::net {

using Key = std::uint64_t;
using Val = std::uint64_t;

/// Frame length prefix is u32; frames larger than this default cap are
/// rejected as a protocol violation (NetConfig can lower it, never raise
/// it past what the u32 prefix can express).
inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;  // 1 MiB

/// Bound on MULTI_PUT pairs in one request: a multi_put is one store
/// transaction, so its writes must clear the descriptor write set the
/// same way kMaxCombinedBatch does (~6 write entries per pair). 64 pairs
/// stays comfortably under Desc::kWriteCap/2.
inline constexpr std::uint32_t kMaxMultiPutPairs = 64;

enum class Verb : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kDel = 3,
  kRmwAdd = 4,    // value += delta (absent key reads as 0); returns the sum
  kRange = 5,     // [lo, hi] inclusive, atomic ordered snapshot
  kScan = 6,      // up to `limit` entries with key >= lo
  kMultiPut = 7,  // all-or-nothing batch upsert
  kStats = 8,     // admin: fixed counter block (StatsBlob)
  kMetrics = 9,   // admin: Prometheus text exposition of the registry
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,   // GET/DEL of an absent key (body empty)
  kMalformed = 2,  // body did not parse; this frame is dropped, stream lives
  kTooBig = 3,     // frame or MULTI_PUT over the cap; server closes after
  kAborted = 4,    // the transaction could not commit (bounded policy)
  kBadVerb = 5,    // unknown verb byte
  kShutdown = 6,   // server draining; op was NOT applied
};

inline const char* verb_name(Verb v) {
  switch (v) {
    case Verb::kGet: return "get";
    case Verb::kPut: return "put";
    case Verb::kDel: return "del";
    case Verb::kRmwAdd: return "rmw_add";
    case Verb::kRange: return "range";
    case Verb::kScan: return "scan";
    case Verb::kMultiPut: return "multi_put";
    case Verb::kStats: return "stats";
    case Verb::kMetrics: return "metrics";
  }
  return "?";
}

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kMalformed: return "malformed";
    case Status::kTooBig: return "too_big";
    case Status::kAborted: return "aborted";
    case Status::kBadVerb: return "bad_verb";
    case Status::kShutdown: return "shutdown";
  }
  return "?";
}

// ---- little-endian scalar codecs -----------------------------------------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

// ---- incremental frame decoding ------------------------------------------

/// A complete frame's payload, viewed inside a FrameBuffer. Valid until
/// the buffer's next append()/compact().
struct FrameView {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

/// Reusable per-connection receive buffer + frame splitter. Socket reads
/// land directly in the buffer tail (writable()/commit() — no staging
/// copy); next() peels complete frames off the front, tolerating any
/// split of the byte stream (length prefix and payload may arrive one
/// byte at a time). Consumed bytes are reclaimed by compact(), which the
/// owner calls between waves — amortized O(1), no per-frame allocation.
class FrameBuffer {
 public:
  /// Space for a read of up to `n` more bytes; commit(k) after reading k.
  std::uint8_t* writable(std::size_t n) {
    buf_.resize(end_ + n);
    return buf_.data() + end_;
  }
  void commit(std::size_t n) { end_ += n; }

  /// Append from memory (tests and the client's response path).
  void append(const void* p, std::size_t n) {
    std::memcpy(writable(n), p, n);
    commit(n);
  }

  /// The next complete frame, if one is buffered. Sets *oversize (and
  /// returns nullopt) when the buffered length prefix announces a frame
  /// larger than max_frame — the stream cannot be re-synchronized past
  /// it, so the caller must answer kTooBig and close.
  std::optional<FrameView> next(std::size_t max_frame, bool* oversize) {
    *oversize = false;
    if (end_ - rd_ < 4) return std::nullopt;
    const std::size_t len = get_u32(buf_.data() + rd_);
    if (len > max_frame) {
      *oversize = true;
      return std::nullopt;
    }
    if (end_ - rd_ < 4 + len) return std::nullopt;
    FrameView f{buf_.data() + rd_ + 4, len};
    rd_ += 4 + len;
    return f;
  }

  /// Reclaim consumed bytes. Call only when no FrameView is live.
  void compact() {
    if (rd_ == 0) return;
    const std::size_t live = end_ - rd_;
    if (live > 0) std::memmove(buf_.data(), buf_.data() + rd_, live);
    rd_ = 0;
    end_ = live;
  }

  std::size_t buffered() const { return end_ - rd_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t rd_ = 0;   // consumed prefix
  std::size_t end_ = 0;  // valid bytes
};

// ---- requests ------------------------------------------------------------

/// One parsed request. POD-ish and allocation-free: MULTI_PUT pairs stay
/// a view into the frame (pairs/npairs), valid as long as the FrameView
/// is. `a`/`b` carry the verb's scalars:
///   GET/DEL: a=key        PUT: a=key b=val     RMW_ADD: a=key b=delta
///   RANGE:   a=lo b=hi    SCAN: a=lo limit=n   STATS/METRICS: none
struct Request {
  Verb verb = Verb::kGet;
  std::uint32_t id = 0;
  Key a = 0;
  Val b = 0;
  std::uint32_t limit = 0;
  const std::uint8_t* pairs = nullptr;  // MULTI_PUT: npairs × (u64,u64)
  std::uint32_t npairs = 0;

  std::pair<Key, Val> pair(std::uint32_t i) const {
    return {get_u64(pairs + 16 * i), get_u64(pairs + 16 * i + 8)};
  }
};

/// Append one encoded request frame (length prefix included) to `out`.
/// The client's single-op and pipelined paths both build on this; `kvs`
/// is only read for MULTI_PUT.
inline void encode_request(std::vector<std::uint8_t>& out, const Request& rq,
                           const std::vector<std::pair<Key, Val>>& kvs = {}) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched below
  put_u8(out, static_cast<std::uint8_t>(rq.verb));
  put_u32(out, rq.id);
  switch (rq.verb) {
    case Verb::kGet:
    case Verb::kDel:
      put_u64(out, rq.a);
      break;
    case Verb::kPut:
    case Verb::kRmwAdd:
    case Verb::kRange:
      put_u64(out, rq.a);
      put_u64(out, rq.b);
      break;
    case Verb::kScan:
      put_u64(out, rq.a);
      put_u32(out, rq.limit);
      break;
    case Verb::kMultiPut:
      put_u32(out, static_cast<std::uint32_t>(kvs.size()));
      for (const auto& [k, v] : kvs) {
        put_u64(out, k);
        put_u64(out, v);
      }
      break;
    case Verb::kStats:
    case Verb::kMetrics:
      break;
  }
  const std::uint32_t len =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at] = static_cast<std::uint8_t>(len);
  out[len_at + 1] = static_cast<std::uint8_t>(len >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(len >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(len >> 24);
}

/// Parse a request frame into `rq`. Returns kOk, or the typed rejection
/// the server should answer with: kMalformed for a body that does not
/// match its verb (wrong size, truncated pair array — the decoder never
/// reads past f.len), kBadVerb for an unknown verb byte, kTooBig for a
/// MULTI_PUT over kMaxMultiPutPairs. On any non-kOk outcome rq.verb/rq.id
/// hold whatever header bytes were present (id 0 if even those were
/// missing) so the error response can still echo them.
inline Status parse_request(const FrameView& f, Request& rq) {
  rq = Request{};
  if (f.len < 5) return Status::kMalformed;
  const std::uint8_t vb = f.data[0];
  rq.id = get_u32(f.data + 1);
  if (vb < 1 || vb > 9) return Status::kBadVerb;
  rq.verb = static_cast<Verb>(vb);
  const std::uint8_t* body = f.data + 5;
  const std::size_t blen = f.len - 5;
  switch (rq.verb) {
    case Verb::kGet:
    case Verb::kDel:
      if (blen != 8) return Status::kMalformed;
      rq.a = get_u64(body);
      return Status::kOk;
    case Verb::kPut:
    case Verb::kRmwAdd:
    case Verb::kRange:
      if (blen != 16) return Status::kMalformed;
      rq.a = get_u64(body);
      rq.b = get_u64(body + 8);
      return Status::kOk;
    case Verb::kScan:
      if (blen != 12) return Status::kMalformed;
      rq.a = get_u64(body);
      rq.limit = get_u32(body + 8);
      return Status::kOk;
    case Verb::kMultiPut: {
      if (blen < 4) return Status::kMalformed;
      rq.npairs = get_u32(body);
      if (rq.npairs > kMaxMultiPutPairs) return Status::kTooBig;
      if (blen != 4 + std::size_t{16} * rq.npairs) return Status::kMalformed;
      rq.pairs = body + 4;
      return Status::kOk;
    }
    case Verb::kStats:
    case Verb::kMetrics:
      if (blen != 0) return Status::kMalformed;
      return Status::kOk;
  }
  return Status::kBadVerb;
}

// ---- responses -----------------------------------------------------------

/// The STATS verb's fixed counter block — enough for a load driver or an
/// operator probe to see commits, contention, and combining effectiveness
/// without parsing the full METRICS exposition.
struct StatsBlob {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t keys = 0;
  std::uint64_t feed_depth = 0;
  std::uint64_t combined_batches = 0;
  std::uint64_t combined_ops = 0;
  std::uint64_t combiner_slots_leaked = 0;
};
inline constexpr std::size_t kStatsBlobWire = 7 * 8;

/// One parsed response, decoded by the client. `val` is engaged for OK
/// GET/PUT/DEL/RMW_ADD bodies that carry a value (PUT/DEL: the previous
/// value — absent means the key was fresh/missing); `pairs` carries
/// RANGE/SCAN rows; `text` the METRICS exposition; `stats` the STATS
/// block.
struct Response {
  Verb verb = Verb::kGet;
  std::uint32_t id = 0;
  Status status = Status::kOk;
  std::optional<Val> val;
  std::vector<std::pair<Key, Val>> pairs;
  std::string text;
  StatsBlob stats;
};

namespace detail {
/// Open a response frame; returns the length-prefix offset for patching.
inline std::size_t begin_response(std::vector<std::uint8_t>& out, Verb v,
                                  std::uint32_t id, Status st) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);
  put_u8(out, static_cast<std::uint8_t>(v));
  put_u32(out, id);
  put_u8(out, static_cast<std::uint8_t>(st));
  return len_at;
}
inline void end_response(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::uint32_t len =
      static_cast<std::uint32_t>(out.size() - len_at - 4);
  out[len_at] = static_cast<std::uint8_t>(len);
  out[len_at + 1] = static_cast<std::uint8_t>(len >> 8);
  out[len_at + 2] = static_cast<std::uint8_t>(len >> 16);
  out[len_at + 3] = static_cast<std::uint8_t>(len >> 24);
}
}  // namespace detail

/// Error / empty-bodied response (also used for OK MULTI_PUT acks).
inline void encode_status(std::vector<std::uint8_t>& out, Verb v,
                          std::uint32_t id, Status st) {
  detail::end_response(out, detail::begin_response(out, v, id, st));
}

/// GET/PUT/DEL/RMW_ADD result: kOk with [u8 has][u64 val?]; a GET/DEL of
/// an absent key is kNotFound with an empty body (the idiomatic miss).
inline void encode_value(std::vector<std::uint8_t>& out, Verb v,
                         std::uint32_t id, const std::optional<Val>& val) {
  if (!val && (v == Verb::kGet || v == Verb::kDel)) {
    encode_status(out, v, id, Status::kNotFound);
    return;
  }
  const std::size_t at = detail::begin_response(out, v, id, Status::kOk);
  put_u8(out, val ? 1 : 0);
  if (val) put_u64(out, *val);
  detail::end_response(out, at);
}

inline void encode_pairs(std::vector<std::uint8_t>& out, Verb v,
                         std::uint32_t id,
                         const std::vector<std::pair<Key, Val>>& kvs) {
  const std::size_t at = detail::begin_response(out, v, id, Status::kOk);
  put_u32(out, static_cast<std::uint32_t>(kvs.size()));
  for (const auto& [k, val] : kvs) {
    put_u64(out, k);
    put_u64(out, val);
  }
  detail::end_response(out, at);
}

inline void encode_stats(std::vector<std::uint8_t>& out, std::uint32_t id,
                         const StatsBlob& s) {
  const std::size_t at =
      detail::begin_response(out, Verb::kStats, id, Status::kOk);
  put_u64(out, s.commits);
  put_u64(out, s.aborts);
  put_u64(out, s.keys);
  put_u64(out, s.feed_depth);
  put_u64(out, s.combined_batches);
  put_u64(out, s.combined_ops);
  put_u64(out, s.combiner_slots_leaked);
  detail::end_response(out, at);
}

inline void encode_text(std::vector<std::uint8_t>& out, std::uint32_t id,
                        const std::string& text) {
  const std::size_t at =
      detail::begin_response(out, Verb::kMetrics, id, Status::kOk);
  out.insert(out.end(), text.begin(), text.end());
  detail::end_response(out, at);
}

/// Parse a response frame. Returns false for a frame that does not parse
/// (a broken server — clients treat it as fatal).
inline bool parse_response(const FrameView& f, Response& r) {
  r = Response{};
  if (f.len < 6) return false;
  const std::uint8_t vb = f.data[0];
  if (vb < 1 || vb > 9) return false;
  r.verb = static_cast<Verb>(vb);
  r.id = get_u32(f.data + 1);
  const std::uint8_t sb = f.data[5];
  if (sb > static_cast<std::uint8_t>(Status::kShutdown)) return false;
  r.status = static_cast<Status>(sb);
  const std::uint8_t* body = f.data + 6;
  const std::size_t blen = f.len - 6;
  if (r.status != Status::kOk) return blen == 0;
  switch (r.verb) {
    case Verb::kGet:
    case Verb::kPut:
    case Verb::kDel:
    case Verb::kRmwAdd: {
      if (blen < 1) return false;
      const bool has = body[0] != 0;
      if (blen != (has ? std::size_t{9} : std::size_t{1})) return false;
      if (has) r.val = get_u64(body + 1);
      return true;
    }
    case Verb::kRange:
    case Verb::kScan: {
      if (blen < 4) return false;
      const std::uint32_t n = get_u32(body);
      if (blen != 4 + std::size_t{16} * n) return false;
      r.pairs.reserve(n);
      for (std::uint32_t i = 0; i < n; i++) {
        r.pairs.emplace_back(get_u64(body + 4 + 16 * i),
                             get_u64(body + 4 + 16 * i + 8));
      }
      return true;
    }
    case Verb::kMultiPut:
      return blen == 0;
    case Verb::kStats:
      if (blen != kStatsBlobWire) return false;
      r.stats.commits = get_u64(body);
      r.stats.aborts = get_u64(body + 8);
      r.stats.keys = get_u64(body + 16);
      r.stats.feed_depth = get_u64(body + 24);
      r.stats.combined_batches = get_u64(body + 32);
      r.stats.combined_ops = get_u64(body + 40);
      r.stats.combiner_slots_leaked = get_u64(body + 48);
      return true;
    case Verb::kMetrics:
      r.text.assign(reinterpret_cast<const char*>(body), blen);
      return true;
  }
  return false;
}

}  // namespace medley::net

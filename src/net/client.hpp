#pragma once
// Blocking client for the Medley wire protocol (protocol.hpp): one
// connection, synchronous per-op calls, and a pipelined send_batch that
// writes a whole batch of requests in one syscall and then collects the
// responses in order — the client-side half of the server's wave ->
// combiner pipeline (a batch of B mutations arrives at the server as one
// readable wave, is published into B combiner slots, and commits as one
// transaction; bench/bench_net_ycsb.cpp measures exactly this against
// one-request-per-round-trip).
//
// Not thread-safe: one Client per thread (the protocol interleaves
// responses in request order per connection, so sharing a connection
// would need client-side demux this deliberately thin library omits).

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "net/protocol.hpp"

namespace medley::net {

/// Thrown when the peer misbehaves (connection reset, unparseable
/// response) — distinct from a well-formed error Status, which the
/// ops surface as return values / RequestError.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A well-formed non-OK response to a synchronous op that has no natural
/// miss encoding (kNotFound is NOT raised — absent keys come back as
/// nullopt).
class RequestError : public std::runtime_error {
 public:
  explicit RequestError(Status st)
      : std::runtime_error(std::string("request failed: ") +
                           status_name(st)),
        status_(st) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

class Client {
 public:
  Client(const std::string& host, std::uint16_t port,
         std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::system_error(errno, std::generic_category(),
                                         "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd_);
      throw NetError("bad host: " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int saved = errno;
      ::close(fd_);
      throw std::system_error(saved, std::generic_category(), "connect");
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(Client&& o) noexcept
      : fd_(o.fd_), next_id_(o.next_id_), max_frame_(o.max_frame_) {
    o.fd_ = -1;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;

  // ---- synchronous ops (one round trip each) -----------------------------

  std::optional<Val> get(Key k) {
    return value_of(roundtrip(make(Verb::kGet, k)));
  }
  /// Returns the previous value (nullopt = fresh key).
  std::optional<Val> put(Key k, Val v) {
    return value_of(roundtrip(make(Verb::kPut, k, v)));
  }
  /// Returns the removed value (nullopt = key was absent).
  std::optional<Val> del(Key k) {
    return value_of(roundtrip(make(Verb::kDel, k)));
  }
  /// value += delta (absent reads as 0); returns the new value.
  Val rmw_add(Key k, Val delta) {
    auto v = value_of(roundtrip(make(Verb::kRmwAdd, k, delta)));
    return v.value_or(0);
  }
  std::vector<std::pair<Key, Val>> range(Key lo, Key hi) {
    Response r = roundtrip(make(Verb::kRange, lo, hi));
    check_ok(r);
    return std::move(r.pairs);
  }
  std::vector<std::pair<Key, Val>> scan(Key lo, std::uint32_t limit) {
    Request rq = make(Verb::kScan, lo);
    rq.limit = limit;
    Response r = roundtrip(rq);
    check_ok(r);
    return std::move(r.pairs);
  }
  void multi_put(const std::vector<std::pair<Key, Val>>& kvs) {
    out_.clear();
    Request rq = make(Verb::kMultiPut);
    encode_request(out_, rq, kvs);
    write_all();
    Response r = read_response();
    check_ok(r);
  }
  StatsBlob stats() {
    Response r = roundtrip(make(Verb::kStats));
    check_ok(r);
    return r.stats;
  }
  /// One METRICS scrape: the server's full Prometheus exposition (store
  /// families + net families when they share a registry).
  std::string metrics() {
    Response r = roundtrip(make(Verb::kMetrics));
    check_ok(r);
    return std::move(r.text);
  }

  // ---- pipelining --------------------------------------------------------

  /// Encode every request, send them with ONE writev, then read the
  /// responses (in request order — the server guarantees it). This is
  /// what makes the server see a multi-request wave: B pipelined
  /// mutations become one combiner batch instead of B transactions.
  /// MULTI_PUT requests in a batch are not supported here (their pair
  /// payload lives out-of-band); use multi_put().
  std::vector<Response> send_batch(const std::vector<Request>& reqs) {
    out_.clear();
    for (const Request& rq : reqs) encode_request(out_, rq);
    write_all();
    std::vector<Response> out;
    out.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); i++) {
      out.push_back(read_response());
    }
    return out;
  }

  /// Request builder with an auto-assigned id (echoed in the response).
  Request make(Verb v, Key a = 0, Val b = 0) {
    Request rq;
    rq.verb = v;
    rq.id = next_id_++;
    rq.a = a;
    rq.b = b;
    return rq;
  }

  int fd() const { return fd_; }

 private:
  Response roundtrip(const Request& rq) {
    out_.clear();
    encode_request(out_, rq);
    write_all();
    return read_response();
  }

  static std::optional<Val> value_of(Response r) {
    if (r.status == Status::kNotFound) return std::nullopt;
    if (r.status != Status::kOk) throw RequestError(r.status);
    return r.val;
  }

  static void check_ok(const Response& r) {
    if (r.status != Status::kOk) throw RequestError(r.status);
  }

  void write_all() {
    std::size_t off = 0;
    while (off < out_.size()) {
      iovec iov{out_.data() + off, out_.size() - off};
      const ssize_t n = ::writev(fd_, &iov, 1);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::system_error(errno, std::generic_category(), "writev");
      }
      off += static_cast<std::size_t>(n);
    }
  }

  Response read_response() {
    bool oversize = false;
    for (;;) {
      if (auto f = in_.next(max_frame_, &oversize)) {
        Response r;
        if (!parse_response(*f, r)) {
          throw NetError("unparseable response frame");
        }
        if (in_.buffered() == 0) in_.compact();
        return r;
      }
      if (oversize) throw NetError("oversized response frame");
      std::uint8_t* dst = in_.writable(16384);
      const ssize_t n = ::read(fd_, dst, 16384);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::system_error(errno, std::generic_category(), "read");
      }
      if (n == 0) throw NetError("server closed connection");
      in_.commit(static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  std::size_t max_frame_;
  std::vector<std::uint8_t> out_;  // reused encode buffer
  FrameBuffer in_;
};

}  // namespace medley::net

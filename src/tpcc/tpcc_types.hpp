#pragma once
// TPC-C subset types (paper Sec. 6.1: newOrder + payment in a 1:1 mix,
// following DBx1000's configuration; no range queries). Tables are keyed
// maps from composite 64-bit keys to packed 64-bit row values — the same
// representation for every backend so the comparison is apples-to-apples.
//
// Scale is configurable and defaults well below the official spec (this
// is a concurrency benchmark, not a storage benchmark); the official
// ratios (10 districts per warehouse, NURand customer/item selection,
// 5-15 order lines) are preserved.

#include <cstdint>

namespace medley::tpcc {

struct Scale {
  std::uint64_t warehouses = 2;
  std::uint64_t districts_per_wh = 10;
  std::uint64_t customers_per_district = 300;
  std::uint64_t items = 1000;
};

// ---- composite keys ----------------------------------------------------

inline std::uint64_t wh_key(std::uint64_t w) { return w; }

inline std::uint64_t district_key(std::uint64_t w, std::uint64_t d) {
  return (w << 8) | d;
}

inline std::uint64_t customer_key(std::uint64_t w, std::uint64_t d,
                                  std::uint64_t c) {
  return (w << 24) | (d << 16) | c;
}

inline std::uint64_t item_key(std::uint64_t i) { return i; }

inline std::uint64_t stock_key(std::uint64_t w, std::uint64_t i) {
  return (w << 24) | i;
}

inline std::uint64_t order_key(std::uint64_t w, std::uint64_t d,
                               std::uint64_t o) {
  return (w << 40) | (d << 32) | o;
}

inline std::uint64_t orderline_key(std::uint64_t w, std::uint64_t d,
                                   std::uint64_t o, std::uint64_t l) {
  return (w << 44) | (d << 36) | (o << 4) | l;
}

inline std::uint64_t history_key(std::uint64_t w, std::uint64_t d,
                                 std::uint64_t tid, std::uint64_t seq) {
  return (w << 48) | (d << 40) | (tid << 28) | seq;
}

// ---- packed row values ---------------------------------------------------
// All money amounts are in cents.

/// Warehouse: year-to-date total.
struct WarehouseRow {
  std::uint64_t ytd;
  std::uint64_t pack() const { return ytd; }
  static WarehouseRow unpack(std::uint64_t v) { return {v}; }
};

/// District: next order id (low 32) + ytd (high 32).
struct DistrictRow {
  std::uint32_t next_o_id;
  std::uint32_t ytd;
  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(ytd) << 32) | next_o_id;
  }
  static DistrictRow unpack(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v),
            static_cast<std::uint32_t>(v >> 32)};
  }
};

/// Customer: balance (signed, low 48) + payment count (high 16).
struct CustomerRow {
  std::int64_t balance;  // cents; kept within 47 bits by the workload
  std::uint16_t payment_cnt;
  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(payment_cnt) << 48) |
           (static_cast<std::uint64_t>(balance + (1LL << 46)) &
            ((1ULL << 48) - 1));
  }
  static CustomerRow unpack(std::uint64_t v) {
    return {static_cast<std::int64_t>(v & ((1ULL << 48) - 1)) -
                (1LL << 46),
            static_cast<std::uint16_t>(v >> 48)};
  }
};

/// Stock: quantity (low 32) + ytd quantity (high 32).
struct StockRow {
  std::uint32_t quantity;
  std::uint32_t ytd;
  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(ytd) << 32) | quantity;
  }
  static StockRow unpack(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v),
            static_cast<std::uint32_t>(v >> 32)};
  }
};

/// Item: price in cents (immutable after load).
struct ItemRow {
  std::uint64_t price;
  std::uint64_t pack() const { return price; }
  static ItemRow unpack(std::uint64_t v) { return {v}; }
};

/// Order: customer id (low 24) + line count (next 8).
struct OrderRow {
  std::uint32_t c_id;
  std::uint8_t ol_cnt;
  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(ol_cnt) << 24) | c_id;
  }
  static OrderRow unpack(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v & 0xffffff),
            static_cast<std::uint8_t>(v >> 24)};
  }
};

/// Order line: item id (low 24) + quantity (8) + amount in cents (32).
struct OrderLineRow {
  std::uint32_t i_id;
  std::uint8_t quantity;
  std::uint32_t amount;
  std::uint64_t pack() const {
    return (static_cast<std::uint64_t>(amount) << 32) |
           (static_cast<std::uint64_t>(quantity) << 24) | i_id;
  }
  static OrderLineRow unpack(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v & 0xffffff),
            static_cast<std::uint8_t>((v >> 24) & 0xff),
            static_cast<std::uint32_t>(v >> 32)};
  }
};

}  // namespace medley::tpcc

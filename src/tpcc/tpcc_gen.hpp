#pragma once
// TPC-C input generation: NURand non-uniform selection (spec clause
// 2.1.6), district/customer/item pickers, order-line counts.

#include <cstdint>

#include "tpcc/tpcc_types.hpp"
#include "util/rng.hpp"

namespace medley::tpcc {

class Generator {
 public:
  Generator(const Scale& scale, std::uint64_t seed)
      : scale_(scale), rng_(seed) {}

  /// TPC-C NURand(A, 0, x-1): non-uniform over [0, x).
  std::uint64_t nurand(std::uint64_t A, std::uint64_t x);

  std::uint64_t warehouse() { return rng_.next_bounded(scale_.warehouses); }
  std::uint64_t district() {
    return rng_.next_bounded(scale_.districts_per_wh);
  }
  std::uint64_t customer() {
    return nurand(1023, scale_.customers_per_district);
  }
  std::uint64_t item() { return nurand(8191, scale_.items); }

  /// 5..15 order lines (spec 2.4.1.3).
  std::uint64_t ol_count() { return 5 + rng_.next_bounded(11); }

  /// 1..10 quantity.
  std::uint64_t quantity() { return 1 + rng_.next_bounded(10); }

  /// Payment amount, cents: 1.00 .. 50.00.
  std::uint64_t h_amount() { return 100 + rng_.next_bounded(4901); }

  /// 1% of newOrder payments hit a remote warehouse when W > 1
  /// (simplified from spec 2.4.1.5's 1% remote item supply).
  std::uint64_t supply_warehouse(std::uint64_t home) {
    if (scale_.warehouses > 1 && rng_.next_bounded(100) == 0) {
      std::uint64_t w = rng_.next_bounded(scale_.warehouses - 1);
      return w >= home ? w + 1 : w;
    }
    return home;
  }

  bool coin() { return rng_.next() & 1; }

  util::Xoshiro256& rng() { return rng_; }

 private:
  const Scale scale_;
  util::Xoshiro256 rng_;
  std::uint64_t c_ = 0x3f;  // NURand C constant (any value per spec)
};

}  // namespace medley::tpcc

#pragma once
// TPC-C backends: one adapter per transactional system, all exposing the
// same surface to the generic workload (tpcc_workload.hpp):
//
//   Map& warehouse()/district()/customer()/stock()/item()/order()/
//        neworder()/orderline()/history()       — maps u64 -> u64 with
//                                                 get/insert/remove
//   TxStats exec_tx(F f) — execute f as ONE transaction, retried per the
//                          backend's execution policy until it commits;
//                          returns the attempt accounting (commits /
//                          retries / aborts by reason). The default
//                          policies are unbounded, so a returned TxStats
//                          always has commits == 1.
//
// The four hand-rolled per-backend retry loops this file used to carry are
// gone: both Medley-protocol backends (Medley, txMontage) share ONE
// executor loop (MedleyTxBackendBase over medley::TxExecutor, taking a
// TxPolicy so benches can sweep contention managers), while OneFile and
// TDSL adapt their own STM commit protocols — which neither throw
// TransactionAborted nor expose per-attempt hooks — to the same
// TxStats-returning surface.
//
// Backend notes mirroring the paper's setup (Sec. 6.1):
//  * Medley / txMontage: each table is its own NBTC skiplist; operations
//    compose dynamically across all of them in one MCNS transaction.
//  * OneFile: sequential skiplists under the STM; the whole TPC-C
//    transaction is one updateTx lambda (internal retry — abort counts
//    are opaque to us, reported as zero).
//  * TDSL: the published library scopes a transaction to its structures'
//    shared version clock; we back all tables with ONE transactional
//    skiplist, namespacing keys by a table tag — the standard way to run
//    multi-table workloads on it. Commit failures count as conflicts.

#include <functional>
#include <utility>

#include "core/medley.hpp"
#include "ds/fraser_skiplist.hpp"
#include "montage/txmontage.hpp"
#include "stm/onefile.hpp"
#include "stm/onefile_map.hpp"
#include "stm/tdsl_skiplist.hpp"
#include "tpcc/tpcc_types.hpp"

namespace medley::tpcc {

// ---- shared executor loop (Medley-protocol backends) ----------------------

/// The single transaction-execution loop for every backend that speaks the
/// Medley protocol: a TxExecutor over the backend's TxManager, policy
/// supplied at construction (default: unbounded retry of transient aborts,
/// no backoff — the historical behavior; pass TxPolicy::with(cm) to pace
/// retries or prioritize old transactions under contention).
class MedleyTxBackendBase {
 public:
  explicit MedleyTxBackendBase(TxPolicy policy = {})
      : exec_(std::move(policy)) {}

  template <typename F>
  TxStats exec_tx(F&& f) {
    return exec_.execute(mgr, std::forward<F>(f)).stats;
  }

  const TxExecutor& executor() const { return exec_; }

  core::TxManager mgr;

 private:
  TxExecutor exec_;
};

// ---- Medley -------------------------------------------------------------

class MedleyBackend : public MedleyTxBackendBase {
 public:
  using Map = ds::FraserSkiplist<std::uint64_t, std::uint64_t>;

  explicit MedleyBackend(TxPolicy policy = {})
      : MedleyTxBackendBase(std::move(policy)),
        warehouse_(&mgr), district_(&mgr), customer_(&mgr), stock_(&mgr),
        item_(&mgr), order_(&mgr), neworder_(&mgr), orderline_(&mgr),
        history_(&mgr) {}

  static constexpr const char* name() { return "Medley"; }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

 private:
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

// ---- txMontage ------------------------------------------------------------

class TxMontageBackend : public MedleyTxBackendBase {
 public:
  using Map = montage::TxMontageSkiplist;

  explicit TxMontageBackend(montage::PRegion* region, TxPolicy policy = {})
      : MedleyTxBackendBase(std::move(policy)),
        es(region), warehouse_(&mgr, &es, 1), district_(&mgr, &es, 2),
        customer_(&mgr, &es, 3), stock_(&mgr, &es, 4), item_(&mgr, &es, 5),
        order_(&mgr, &es, 6), neworder_(&mgr, &es, 7),
        orderline_(&mgr, &es, 8), history_(&mgr, &es, 9) {
    es.attach(&mgr);
  }

  static constexpr const char* name() { return "txMontage"; }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

  montage::EpochSys es;

 private:
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

// ---- OneFile --------------------------------------------------------------

class OneFileBackend {
 public:
  using Map = stm::OFSkipList<std::uint64_t, std::uint64_t>;

  explicit OneFileBackend(bool persistent = false)
      : stm(persistent), warehouse_(&stm), district_(&stm), customer_(&stm),
        stock_(&stm), item_(&stm), order_(&stm), neworder_(&stm),
        orderline_(&stm), history_(&stm) {}

  static constexpr const char* name() { return "OneFile"; }

  template <typename F>
  TxStats exec_tx(F&& f) {
    stm.updateTx([&] { f(); });  // internal retry until committed
    TxStats st;
    st.commits = 1;
    return st;
  }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

  stm::OneFileSTM stm;

 private:
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

// ---- TDSL ------------------------------------------------------------------

class TdslBackend {
  using Skiplist = stm::TdslSkiplist<std::uint64_t, std::uint64_t>;

 public:
  /// View of the shared skiplist restricted to one table's key namespace.
  class Map {
   public:
    Map(Skiplist* s, std::uint64_t tag) : s_(s), tag_(tag << 58) {}
    std::optional<std::uint64_t> get(std::uint64_t k) {
      return s_->get(tag_ | k);
    }
    bool insert(std::uint64_t k, std::uint64_t v) {
      return s_->insert(tag_ | k, v);
    }
    std::optional<std::uint64_t> remove(std::uint64_t k) {
      return s_->remove(tag_ | k);
    }

   private:
    Skiplist* s_;
    std::uint64_t tag_;
  };

  TdslBackend()
      : warehouse_(&shared_, 1), district_(&shared_, 2),
        customer_(&shared_, 3), stock_(&shared_, 4), item_(&shared_, 5),
        order_(&shared_, 6), neworder_(&shared_, 7), orderline_(&shared_, 8),
        history_(&shared_, 9) {}

  static constexpr const char* name() { return "TDSL"; }

  template <typename F>
  TxStats exec_tx(F&& f) {
    TxStats st;
    for (;;) {
      shared_.txBegin();
      f();
      if (shared_.txCommit()) {
        st.commits = 1;
        return st;
      }
      // TDSL reports only commit failure; its version-clock validation is
      // closest to a conflict in Medley's taxonomy.
      st.conflict_aborts++;
      st.retries++;
    }
  }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

 private:
  Skiplist shared_;
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

}  // namespace medley::tpcc

#pragma once
// TPC-C backends: one adapter per transactional system, all exposing the
// same surface to the generic workload (tpcc_workload.hpp):
//
//   Map& warehouse()/district()/customer()/stock()/item()/order()/
//        neworder()/orderline()/history()       — maps u64 -> u64 with
//                                                 get/insert/remove
//   bool run_tx(F f)  — execute f as one transaction attempt; true iff it
//                       committed (the caller retries on false). Systems
//                       with internal retry (OneFile) always return true.
//
// Backend notes mirroring the paper's setup (Sec. 6.1):
//  * Medley / txMontage: each table is its own NBTC skiplist; operations
//    compose dynamically across all of them in one MCNS transaction.
//  * OneFile: sequential skiplists under the STM; the whole TPC-C
//    transaction is one updateTx lambda.
//  * TDSL: the published library scopes a transaction to its structures'
//    shared version clock; we back all tables with ONE transactional
//    skiplist, namespacing keys by a table tag — the standard way to run
//    multi-table workloads on it.

#include <functional>

#include "ds/fraser_skiplist.hpp"
#include "montage/txmontage.hpp"
#include "stm/onefile.hpp"
#include "stm/onefile_map.hpp"
#include "stm/tdsl_skiplist.hpp"
#include "tpcc/tpcc_types.hpp"

namespace medley::tpcc {

// ---- Medley -------------------------------------------------------------

class MedleyBackend {
 public:
  using Map = ds::FraserSkiplist<std::uint64_t, std::uint64_t>;

  MedleyBackend()
      : warehouse_(&mgr), district_(&mgr), customer_(&mgr), stock_(&mgr),
        item_(&mgr), order_(&mgr), neworder_(&mgr), orderline_(&mgr),
        history_(&mgr) {}

  static constexpr const char* name() { return "Medley"; }

  template <typename F>
  bool run_tx(F&& f) {
    try {
      mgr.txBegin();
      f();
      mgr.txEnd();
      return true;
    } catch (const core::TransactionAborted&) {
      return false;
    }
  }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

  core::TxManager mgr;

 private:
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

// ---- txMontage ------------------------------------------------------------

class TxMontageBackend {
 public:
  using Map = montage::TxMontageSkiplist;

  TxMontageBackend(montage::PRegion* region)
      : es(region), warehouse_(&mgr, &es, 1), district_(&mgr, &es, 2),
        customer_(&mgr, &es, 3), stock_(&mgr, &es, 4), item_(&mgr, &es, 5),
        order_(&mgr, &es, 6), neworder_(&mgr, &es, 7),
        orderline_(&mgr, &es, 8), history_(&mgr, &es, 9) {
    es.attach(&mgr);
  }

  static constexpr const char* name() { return "txMontage"; }

  template <typename F>
  bool run_tx(F&& f) {
    try {
      mgr.txBegin();
      f();
      mgr.txEnd();
      return true;
    } catch (const core::TransactionAborted&) {
      return false;
    }
  }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

  core::TxManager mgr;
  montage::EpochSys es;

 private:
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

// ---- OneFile --------------------------------------------------------------

class OneFileBackend {
 public:
  using Map = stm::OFSkipList<std::uint64_t, std::uint64_t>;

  explicit OneFileBackend(bool persistent = false)
      : stm(persistent), warehouse_(&stm), district_(&stm), customer_(&stm),
        stock_(&stm), item_(&stm), order_(&stm), neworder_(&stm),
        orderline_(&stm), history_(&stm) {}

  static constexpr const char* name() { return "OneFile"; }

  template <typename F>
  bool run_tx(F&& f) {
    stm.updateTx([&] { f(); });
    return true;  // internal retry until committed
  }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

  stm::OneFileSTM stm;

 private:
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

// ---- TDSL ------------------------------------------------------------------

class TdslBackend {
  using Skiplist = stm::TdslSkiplist<std::uint64_t, std::uint64_t>;

 public:
  /// View of the shared skiplist restricted to one table's key namespace.
  class Map {
   public:
    Map(Skiplist* s, std::uint64_t tag) : s_(s), tag_(tag << 58) {}
    std::optional<std::uint64_t> get(std::uint64_t k) {
      return s_->get(tag_ | k);
    }
    bool insert(std::uint64_t k, std::uint64_t v) {
      return s_->insert(tag_ | k, v);
    }
    std::optional<std::uint64_t> remove(std::uint64_t k) {
      return s_->remove(tag_ | k);
    }

   private:
    Skiplist* s_;
    std::uint64_t tag_;
  };

  TdslBackend()
      : warehouse_(&shared_, 1), district_(&shared_, 2),
        customer_(&shared_, 3), stock_(&shared_, 4), item_(&shared_, 5),
        order_(&shared_, 6), neworder_(&shared_, 7), orderline_(&shared_, 8),
        history_(&shared_, 9) {}

  static constexpr const char* name() { return "TDSL"; }

  template <typename F>
  bool run_tx(F&& f) {
    shared_.txBegin();
    f();
    return shared_.txCommit();
  }

  Map& warehouse() { return warehouse_; }
  Map& district() { return district_; }
  Map& customer() { return customer_; }
  Map& stock() { return stock_; }
  Map& item() { return item_; }
  Map& order() { return order_; }
  Map& neworder() { return neworder_; }
  Map& orderline() { return orderline_; }
  Map& history() { return history_; }

 private:
  Skiplist shared_;
  Map warehouse_, district_, customer_, stock_, item_, order_, neworder_,
      orderline_, history_;
};

}  // namespace medley::tpcc

#include "tpcc/tpcc_gen.hpp"

namespace medley::tpcc {

std::uint64_t Generator::nurand(std::uint64_t A, std::uint64_t x) {
  const std::uint64_t a = rng_.next_bounded(A + 1);
  const std::uint64_t b = rng_.next_bounded(x);
  return (((a | b) + c_) % x);
}

}  // namespace medley::tpcc

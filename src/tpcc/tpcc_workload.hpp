#pragma once
// TPC-C workload, generic over the backend adapter: table loading, the
// newOrder and payment transactions (paper Sec. 6.1: these two in a 1:1
// mix, following DBx1000; no range queries), and consistency audits used
// by the tests (TPC-C spec clause 3.3.2 invariants, adapted to the
// subset).
//
// Row updates are expressed as remove+insert of the packed row — i.e.
// every update is a composition of two structure operations, executed
// atomically by whichever transactional system backs the tables.
//
// Transactions run through the backend's exec_tx (a TxExecutor for the
// Medley-protocol backends), which retries per the backend's policy until
// commit; newOrder/payment return the executor's TxStats so drivers can
// report aborts by reason without owning a retry loop.

#include <cstdint>
#include <stdexcept>

#include "core/tx_exec.hpp"
#include "tpcc/tpcc_gen.hpp"
#include "tpcc/tpcc_types.hpp"

namespace medley::tpcc {

template <typename Backend>
class Workload {
 public:
  Workload(Backend& b, const Scale& scale) : b_(b), scale_(scale) {}

  /// Populate warehouses/districts/customers/items/stock (single thread;
  /// each row insert runs as its own transaction).
  void load() {
    util::Xoshiro256 rng(0xdecafbad);
    for (std::uint64_t w = 0; w < scale_.warehouses; w++) {
      b_.exec_tx([&] {
        b_.warehouse().insert(wh_key(w), WarehouseRow{0}.pack());
      });
      for (std::uint64_t d = 0; d < scale_.districts_per_wh; d++) {
        b_.exec_tx([&] {
          b_.district().insert(district_key(w, d),
                               DistrictRow{1, 0}.pack());
        });
        for (std::uint64_t c = 0; c < scale_.customers_per_district; c++) {
          b_.exec_tx([&] {
            b_.customer().insert(customer_key(w, d, c),
                                 CustomerRow{0, 0}.pack());
          });
        }
      }
      for (std::uint64_t i = 0; i < scale_.items; i++) {
        b_.exec_tx([&] {
          b_.stock().insert(stock_key(w, i),
                            StockRow{static_cast<std::uint32_t>(
                                         10 + rng.next_bounded(91)),
                                     0}
                                .pack());
        });
      }
    }
    for (std::uint64_t i = 0; i < scale_.items; i++) {
      b_.exec_tx([&] {
        b_.item().insert(item_key(i),
                         ItemRow{100 + rng.next_bounded(9900)}.pack());
      });
    }
  }

  /// One committed newOrder transaction (parameters drawn once, attempts
  /// retried by the backend's executor); returns the attempt accounting.
  TxStats new_order(Generator& gen) {
    const std::uint64_t w = gen.warehouse();
    const std::uint64_t d = gen.district();
    const std::uint64_t c = gen.customer();
    const std::uint64_t n = gen.ol_count();
    std::uint64_t items[15], qty[15], supply[15];
    for (std::uint64_t l = 0; l < n; l++) {
      // Distinct items per order (spec 2.4.1.5).
      for (;;) {
        items[l] = gen.item();
        bool dup = false;
        for (std::uint64_t j = 0; j < l; j++) dup |= (items[j] == items[l]);
        if (!dup) break;
      }
      qty[l] = gen.quantity();
      supply[l] = gen.supply_warehouse(w);
    }

    return b_.exec_tx([&] {
      const std::uint64_t dkey = district_key(w, d);
      auto drow = DistrictRow::unpack(must(b_.district().get(dkey)));
      const std::uint64_t o_id = drow.next_o_id;
      drow.next_o_id++;
      update(b_.district(), dkey, drow.pack());

      std::uint64_t total = 0;
      for (std::uint64_t l = 0; l < n; l++) {
        const auto irow =
            ItemRow::unpack(must(b_.item().get(item_key(items[l]))));
        const std::uint64_t skey = stock_key(supply[l], items[l]);
        auto srow = StockRow::unpack(must(b_.stock().get(skey)));
        srow.quantity = srow.quantity >= qty[l] + 10
                            ? srow.quantity - static_cast<std::uint32_t>(qty[l])
                            : srow.quantity + 91 -
                                  static_cast<std::uint32_t>(qty[l]);
        srow.ytd += static_cast<std::uint32_t>(qty[l]);
        update(b_.stock(), skey, srow.pack());

        const std::uint64_t amount = irow.price * qty[l];
        total += amount;
        b_.orderline().insert(
            orderline_key(w, d, o_id, l),
            OrderLineRow{static_cast<std::uint32_t>(items[l]),
                         static_cast<std::uint8_t>(qty[l]),
                         static_cast<std::uint32_t>(amount)}
                .pack());
      }
      (void)total;
      b_.order().insert(order_key(w, d, o_id),
                        OrderRow{static_cast<std::uint32_t>(c),
                                 static_cast<std::uint8_t>(n)}
                            .pack());
      b_.neworder().insert(order_key(w, d, o_id), 1);
    });
  }

  /// One committed payment transaction; bumps `hseq` (the per-driver
  /// history sequence) exactly once. Returns the attempt accounting.
  TxStats payment(Generator& gen, std::uint64_t tid, std::uint64_t& hseq) {
    const std::uint64_t w = gen.warehouse();
    const std::uint64_t d = gen.district();
    const std::uint64_t c = gen.customer();
    const std::uint64_t amount = gen.h_amount();
    const std::uint64_t seq = hseq;

    TxStats st = b_.exec_tx([&] {
      const std::uint64_t wkey = wh_key(w);
      auto wrow = WarehouseRow::unpack(must(b_.warehouse().get(wkey)));
      wrow.ytd += amount;
      update(b_.warehouse(), wkey, wrow.pack());

      const std::uint64_t dkey = district_key(w, d);
      auto drow = DistrictRow::unpack(must(b_.district().get(dkey)));
      drow.ytd += static_cast<std::uint32_t>(amount);
      update(b_.district(), dkey, drow.pack());

      const std::uint64_t ckey = customer_key(w, d, c);
      auto crow = CustomerRow::unpack(must(b_.customer().get(ckey)));
      crow.balance -= static_cast<std::int64_t>(amount);
      crow.payment_cnt++;
      update(b_.customer(), ckey, crow.pack());

      b_.history().insert(history_key(w, d, tid, seq), amount);
    });
    if (st.commits != 0) hseq++;
    return st;
  }

  // ---- consistency audits (tests; quiescent) ---------------------------

  /// Spec 3.3.2.1-ish: district next_o_id agrees with the orders and
  /// order lines present.
  bool orders_consistent() {
    for (std::uint64_t w = 0; w < scale_.warehouses; w++) {
      for (std::uint64_t d = 0; d < scale_.districts_per_wh; d++) {
        const auto drow = DistrictRow::unpack(
            must(b_.district().get(district_key(w, d))));
        for (std::uint64_t o = 1; o < drow.next_o_id; o++) {
          auto orow = b_.order().get(order_key(w, d, o));
          if (!orow) return false;
          const auto order = OrderRow::unpack(*orow);
          if (!b_.neworder().get(order_key(w, d, o))) return false;
          for (std::uint64_t l = 0; l < order.ol_cnt; l++) {
            if (!b_.orderline().get(orderline_key(w, d, o, l))) return false;
          }
          // No extra order line beyond ol_cnt.
          if (b_.orderline().get(orderline_key(w, d, o, order.ol_cnt))) {
            return false;
          }
        }
        if (b_.order().get(order_key(w, d, drow.next_o_id))) return false;
      }
    }
    return true;
  }

  /// Money conservation: sum of warehouse ytd == sum of district ytd ==
  /// total of history rows == -(sum of customer balances).
  bool money_consistent(std::uint64_t history_total) {
    std::uint64_t w_ytd = 0, d_ytd = 0;
    std::int64_t balances = 0;
    for (std::uint64_t w = 0; w < scale_.warehouses; w++) {
      w_ytd += WarehouseRow::unpack(must(b_.warehouse().get(wh_key(w)))).ytd;
      for (std::uint64_t d = 0; d < scale_.districts_per_wh; d++) {
        d_ytd += DistrictRow::unpack(
                     must(b_.district().get(district_key(w, d))))
                     .ytd;
        for (std::uint64_t c = 0; c < scale_.customers_per_district; c++) {
          balances += CustomerRow::unpack(
                          must(b_.customer().get(customer_key(w, d, c))))
                          .balance;
        }
      }
    }
    return w_ytd == history_total && d_ytd == history_total &&
           balances == -static_cast<std::int64_t>(history_total);
  }

 private:
  template <typename M>
  static void update(M& m, std::uint64_t k, std::uint64_t v) {
    m.remove(k);
    m.insert(k, v);
  }

  static std::uint64_t must(const std::optional<std::uint64_t>& v) {
    if (!v) throw std::logic_error("TPC-C: required row missing");
    return *v;
  }

  Backend& b_;
  const Scale scale_;
};

}  // namespace medley::tpcc

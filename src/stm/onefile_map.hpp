#pragma once
// Sequential data structures parallelized with the OneFile STM, matching
// the paper's baseline setup: "In OneFile, we use a sequential chained
// hash table parallelized using STM" and "skiplists derived from Fraser's
// STM-based skiplist".
//
// Operations assume they run inside an updateTx/readTx of the owning STM
// (composed transactions call several ops inside one lambda); each method
// also works standalone by opening a transaction of its own when none is
// active.

#include <optional>
#include <vector>

#include "stm/onefile.hpp"
#include "util/rng.hpp"
#include "util/thread_registry.hpp"

namespace medley::stm {

template <typename K, typename V, typename Hash = std::hash<K>>
class OFHashMap {
 public:
  OFHashMap(OneFileSTM* stm, std::size_t buckets = 1u << 20)
      : stm_(stm), nbuckets_(buckets),
        buckets_(new tmtype<Node*>[buckets]) {}

  ~OFHashMap() {
    for (std::size_t b = 0; b < nbuckets_; b++) {
      Node* n = buckets_[b].load_direct();
      while (n != nullptr) {
        Node* nx = n->next.load_direct();
        delete n;
        n = nx;
      }
    }
  }

  std::optional<V> get(const K& k) {
    return stm_->readTx([&]() -> std::optional<V> {
      Node* cur = buckets_[bucket_of(k)].pload();
      while (cur != nullptr && cur->key < k) cur = cur->next.pload();
      if (cur != nullptr && cur->key == k) return cur->val.pload();
      return std::nullopt;
    });
  }

  bool contains(const K& k) { return get(k).has_value(); }

  bool insert(const K& k, const V& v) {
    return stm_->updateTx([&]() -> bool {
      tmtype<Node*>* prev = &buckets_[bucket_of(k)];
      Node* cur = prev->pload();
      while (cur != nullptr && cur->key < k) {
        prev = &cur->next;
        cur = prev->pload();
      }
      if (cur != nullptr && cur->key == k) return false;
      Node* node = new Node(k, v, cur);
      prev->pstore(node);
      return true;
    });
  }

  /// Insert-or-replace; returns the previous value if any.
  std::optional<V> put(const K& k, const V& v) {
    return stm_->updateTx([&]() -> std::optional<V> {
      tmtype<Node*>* prev = &buckets_[bucket_of(k)];
      Node* cur = prev->pload();
      while (cur != nullptr && cur->key < k) {
        prev = &cur->next;
        cur = prev->pload();
      }
      if (cur != nullptr && cur->key == k) {
        V old = cur->val.pload();
        cur->val.pstore(v);
        return old;
      }
      prev->pstore(new Node(k, v, cur));
      return std::nullopt;
    });
  }

  std::optional<V> remove(const K& k) {
    return stm_->updateTx([&]() -> std::optional<V> {
      tmtype<Node*>* prev = &buckets_[bucket_of(k)];
      Node* cur = prev->pload();
      while (cur != nullptr && cur->key < k) {
        prev = &cur->next;
        cur = prev->pload();
      }
      if (cur == nullptr || !(cur->key == k)) return std::nullopt;
      V old = cur->val.pload();
      prev->pstore(cur->next.pload());
      stm_->retire_after_commit(cur);
      return old;
    });
  }

  std::size_t size_slow() {
    std::size_t n = 0;
    for (std::size_t b = 0; b < nbuckets_; b++) {
      for (Node* cur = buckets_[b].load_direct(); cur != nullptr;
           cur = cur->next.load_direct()) {
        n++;
      }
    }
    return n;
  }

 private:
  struct Node {
    K key;
    tmtype<V> val;
    tmtype<Node*> next;
    Node(const K& k, const V& v, Node* nx) : key(k), val(v), next(nx) {}
  };

  std::size_t bucket_of(const K& k) const { return Hash{}(k) % nbuckets_; }

  OneFileSTM* stm_;
  std::size_t nbuckets_;
  std::unique_ptr<tmtype<Node*>[]> buckets_;
};

template <typename K, typename V, int kMaxLevel = 20>
class OFSkipList {
 public:
  explicit OFSkipList(OneFileSTM* stm)
      : stm_(stm), head_(new Node(K{}, V{}, kMaxLevel)) {}

  ~OFSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next[0].load_direct();
      delete n;
      n = nx;
    }
  }

  std::optional<V> get(const K& k) {
    return stm_->readTx([&]() -> std::optional<V> {
      Node* cur = descend(k, nullptr);
      if (cur != nullptr && cur->key == k) return cur->val.pload();
      return std::nullopt;
    });
  }

  bool contains(const K& k) { return get(k).has_value(); }

  bool insert(const K& k, const V& v) {
    return stm_->updateTx([&]() -> bool {
      Node* preds[kMaxLevel];
      Node* cur = descend(k, preds);
      if (cur != nullptr && cur->key == k) return false;
      Node* node = new Node(k, v, random_level());
      for (int i = 0; i < node->level; i++) {
        node->next[i].store_direct(preds[i]->next[i].pload());
        preds[i]->next[i].pstore(node);
      }
      return true;
    });
  }

  std::optional<V> remove(const K& k) {
    return stm_->updateTx([&]() -> std::optional<V> {
      Node* preds[kMaxLevel];
      Node* cur = descend(k, preds);
      if (cur == nullptr || !(cur->key == k)) return std::nullopt;
      V old = cur->val.pload();
      for (int i = 0; i < cur->level; i++) {
        if (preds[i]->next[i].pload() == cur) {
          preds[i]->next[i].pstore(cur->next[i].pload());
        }
      }
      stm_->retire_after_commit(cur);
      return old;
    });
  }

  std::size_t size_slow() {
    std::size_t n = 0;
    for (Node* cur = head_->next[0].load_direct(); cur != nullptr;
         cur = cur->next[0].load_direct()) {
      n++;
    }
    return n;
  }

 private:
  struct Node {
    K key;
    tmtype<V> val;
    int level;
    std::unique_ptr<tmtype<Node*>[]> next;
    Node(const K& k, const V& v, int lvl)
        : key(k), val(v), level(lvl), next(new tmtype<Node*>[lvl]) {}
  };

  static int random_level() {
    thread_local util::Xoshiro256 rng(
        0xa076'1d64'78bd'642fULL ^
        static_cast<std::uint64_t>(util::ThreadRegistry::tid() + 1));
    int lvl = 1;
    while (lvl < kMaxLevel && (rng.next() & 1)) lvl++;
    return lvl;
  }

  /// Sequential descent; fills preds (if non-null) and returns the level-0
  /// successor candidate.
  Node* descend(const K& k, Node** preds) {
    Node* pred = head_;
    Node* cur = nullptr;
    for (int lvl = kMaxLevel - 1; lvl >= 0; lvl--) {
      cur = pred->next[lvl].pload();
      while (cur != nullptr && cur->key < k) {
        pred = cur;
        cur = pred->next[lvl].pload();
      }
      if (preds != nullptr) preds[lvl] = pred;
    }
    return cur;
  }

  OneFileSTM* stm_;
  Node* head_;
};

}  // namespace medley::stm

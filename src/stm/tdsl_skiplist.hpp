#pragma once
// TDSL-style transactional skiplist (Spiegelman, Golan-Gueta & Keidar,
// PLDI '16), reimplemented to the published design's key properties
// (DESIGN.md §4):
//
//  * *blocking* transactions: commit acquires per-node spinlocks
//    (address-ordered, bounded-spin-then-abort) on the critical nodes;
//  * *semantic read sets*: a traversal records only the critical nodes the
//    outcome depends on (the predecessor, and the found node), each with a
//    version — not every node touched — which is TDSL's central
//    optimization over general STM;
//  * an index (towers) maintained lazily outside the transaction; only the
//    bottom-level list is transactional.
//
// Transactions: txBegin / operations / txCommit (returns false on abort).
// Operations called with no open transaction run as singletons
// (begin+commit internally, retrying until success).

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "smr/ebr.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/thread_registry.hpp"

namespace medley::stm {

template <typename K, typename V, int kIndexLevels = 12>
class TdslSkiplist {
 public:
  TdslSkiplist() : head_(new Node(K{}, V{}, kIndexLevels, /*sentinel=*/true)) {}

  ~TdslSkiplist() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next.load();
      delete n;
      n = nx;
    }
  }

  void txBegin() {
    Ctx& c = ctx();
    c.active = true;
    c.reads.clear();
    c.ops.clear();
    c.overlay.clear();
    c.guard.emplace();
  }

  /// Attempt to commit; on failure the transaction's effects are discarded
  /// and false is returned (caller retries).
  bool txCommit() {
    Ctx& c = ctx();
    bool ok = do_commit(c);
    c.active = false;
    c.guard.reset();
    return ok;
  }

  /// Discard the open transaction without applying it.
  void txAbortLocal() {
    Ctx& c = ctx();
    c.active = false;
    c.reads.clear();
    c.ops.clear();
    c.overlay.clear();
    c.guard.reset();
  }

  bool in_tx() { return ctx().active; }

  std::optional<V> get(const K& k) {
    Ctx& c = ctx();
    if (!c.active) return singleton<std::optional<V>>([&] { return get(k); });
    if (const Overlay* o = c.find_overlay(k)) {
      return o->present ? std::optional<V>(o->val) : std::nullopt;
    }
    Node *pred, *curr;
    traverse(k, pred, curr, c);
    if (curr != nullptr && curr->key == k) {
      c.note_read(curr);
      return curr->val;
    }
    return std::nullopt;
  }

  bool contains(const K& k) { return get(k).has_value(); }

  bool insert(const K& k, const V& v) {
    Ctx& c = ctx();
    if (!c.active) return singleton<bool>([&] { return insert(k, v); });
    if (const Overlay* o = c.find_overlay(k)) {
      if (o->present) return false;
      c.set_overlay(k, true, v);
      c.ops.push_back({OpType::Insert, k, v, nullptr});
      return true;
    }
    Node *pred, *curr;
    traverse(k, pred, curr, c);
    if (curr != nullptr && curr->key == k) {
      c.note_read(curr);
      return false;
    }
    c.ops.push_back({OpType::Insert, k, v, pred});
    c.set_overlay(k, true, v);
    return true;
  }

  std::optional<V> remove(const K& k) {
    Ctx& c = ctx();
    if (!c.active) {
      return singleton<std::optional<V>>([&] { return remove(k); });
    }
    if (const Overlay* o = c.find_overlay(k)) {
      if (!o->present) return std::nullopt;
      V old = o->val;
      c.set_overlay(k, false, V{});
      // Cancel a pending insert of the same key if one exists; otherwise
      // queue a removal of the real node.
      for (std::size_t i = c.ops.size(); i-- > 0;) {
        if (c.ops[i].key == k && c.ops[i].type == OpType::Insert) {
          c.ops.erase(c.ops.begin() + static_cast<long>(i));
          return old;
        }
      }
      c.ops.push_back({OpType::Remove, k, V{}, nullptr});
      return old;
    }
    Node *pred, *curr;
    traverse(k, pred, curr, c);
    if (curr == nullptr || !(curr->key == k)) return std::nullopt;
    c.note_read(curr);
    c.ops.push_back({OpType::Remove, k, V{}, pred});
    c.set_overlay(k, false, V{});
    return curr->val;
  }

  std::size_t size_slow() {
    smr::EBR::Guard g;
    std::size_t n = 0;
    for (Node* cur = head_->next.load(); cur != nullptr;
         cur = cur->next.load()) {
      n++;
    }
    return n;
  }

 private:
  enum class OpType { Insert, Remove };

  struct Node {
    K key;
    V val;
    // bit 0: locked; bits 63..1: version (bumped on every mutation of
    // next/val/unlink).
    std::atomic<std::uint64_t> verlock{0};
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> unlinked{false};
    const bool sentinel;
    const int height;
    std::atomic<Node*> index_next[kIndexLevels];
    Node(const K& k, const V& v, int h, bool s = false)
        : key(k), val(v), sentinel(s), height(h) {
      for (auto& p : index_next) p.store(nullptr, std::memory_order_relaxed);
    }
  };

  struct Overlay {
    K key;
    bool present;
    V val;
  };

  struct PendingOp {
    OpType type;
    K key;
    V val;
    Node* pred;  // position hint from execution time (validated via reads)
  };

  struct Ctx {
    bool active = false;
    std::vector<std::pair<Node*, std::uint64_t>> reads;
    std::vector<PendingOp> ops;
    std::vector<Overlay> overlay;
    std::optional<smr::EBR::Guard> guard;

    /// Record n's version for commit-time validation. Spins past a locked
    /// state (another commit mid-apply) so the version — captured BEFORE
    /// the caller reads n's data — brackets a quiescent snapshot. Yields
    /// periodically: on oversubscribed CPUs the lock holder needs our
    /// timeslice to make progress.
    void note_read(Node* n) {
      std::uint64_t v = n->verlock.load(std::memory_order_acquire);
      int spins = 0;
      while (v & 1) {
        if (++spins > 64) {
          std::this_thread::yield();
          spins = 0;
        } else {
          util::cpu_relax();
        }
        v = n->verlock.load(std::memory_order_acquire);
      }
      reads.emplace_back(n, v);
    }
    const Overlay* find_overlay(const K& k) const {
      for (std::size_t i = overlay.size(); i-- > 0;) {
        if (overlay[i].key == k) return &overlay[i];
      }
      return nullptr;
    }
    void set_overlay(const K& k, bool present, const V& v) {
      overlay.push_back({k, present, v});
    }
  };

  Ctx& ctx() {
    const int tid = util::ThreadRegistry::tid();
    if (!ctxs_[tid]) ctxs_[tid] = std::make_unique<Ctx>();
    return *ctxs_[tid];
  }

  template <typename R, typename F>
  R singleton(F&& f) {
    for (;;) {
      txBegin();
      R r = f();
      if (txCommit()) return r;
    }
  }

  static int height_of(const K& k) {
    std::uint64_t h = std::hash<K>{}(k) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 31;
    int lvl = 1 + __builtin_ctzll(h | (1ULL << (kIndexLevels - 1)));
    return lvl > kIndexLevels ? kIndexLevels : lvl;
  }

  /// Index-accelerated descent to the bottom-level predecessor of k, then
  /// a version-recorded bottom walk. The final step captures the
  /// predecessor's version BEFORE reading its next pointer (seqlock
  /// order), so a read set entry certifies "pred -> curr was the gap for k
  /// from this version onward"; commit-time validation extends that to the
  /// serialization point. Records (pred) — the semantic critical node —
  /// in the read set.
  void traverse(const K& k, Node*& pred, Node*& curr, Ctx& c) {
  restart:
    Node* p = head_;
    for (int lvl = kIndexLevels - 1; lvl >= 0; lvl--) {
      Node* n = p->index_next[lvl].load(std::memory_order_acquire);
      while (n != nullptr && n->key < k) {
        p = n;
        n = p->index_next[lvl].load(std::memory_order_acquire);
      }
    }
    for (;;) {
      std::uint64_t v = p->verlock.load(std::memory_order_acquire);
      int spins = 0;
      while (v & 1) {
        if (++spins > 64) {
          std::this_thread::yield();
          spins = 0;
        } else {
          util::cpu_relax();
        }
        v = p->verlock.load(std::memory_order_acquire);
      }
      if (p->unlinked.load(std::memory_order_acquire)) goto restart;
      Node* cur = p->next.load(std::memory_order_acquire);
      if (cur != nullptr && cur->key < k) {
        p = cur;
        continue;
      }
      pred = p;
      curr = cur;
      c.reads.emplace_back(p, v);
      return;
    }
  }

  static bool locked(std::uint64_t vl) { return vl & 1; }

  bool try_lock(Node* n) {
    std::uint64_t vl = n->verlock.load(std::memory_order_acquire);
    util::ExpBackoff backoff;
    for (int spins = 0; spins < 2048; spins++) {
      if (!locked(vl) &&
          n->verlock.compare_exchange_weak(vl, vl | 1,
                                           std::memory_order_acq_rel)) {
        return true;
      }
      backoff();
      vl = n->verlock.load(std::memory_order_acquire);
    }
    return false;  // give up: abort rather than deadlock on a stuck owner
  }

  void unlock(Node* n, bool modified) {
    const std::uint64_t vl = n->verlock.load(std::memory_order_relaxed);
    n->verlock.store(modified ? (vl | 1) + 1 : (vl & ~1ULL),
                     std::memory_order_release);
  }

  bool do_commit(Ctx& c) {
    if (c.ops.empty()) {
      // Read-only: validate versions once and be done.
      for (auto& [n, v] : c.reads) {
        if (n->verlock.load(std::memory_order_acquire) != v) return false;
      }
      return true;
    }

    // Lock set: every op's predecessor plus removal victims, re-located
    // fresh (the execution-time hints may be stale; validation of the read
    // set is what detects semantic interference).
    std::vector<Node*> locks;
    std::vector<Node*> modified;
    bool ok = true;

    // Stable: same-key operations must apply in program order (an update
    // is remove-then-insert of one key).
    std::stable_sort(c.ops.begin(), c.ops.end(),
                     [](const PendingOp& a, const PendingOp& b) {
                       return a.key < b.key;
                     });
    for (auto& [n, v] : c.reads) {
      (void)v;
      locks.push_back(n);
    }
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());

    std::size_t acquired = 0;
    for (; acquired < locks.size(); acquired++) {
      if (!try_lock(locks[acquired])) {
        ok = false;
        break;
      }
    }

    if (ok) {
      // Validate: every recorded version unchanged (lock bit excluded for
      // nodes we hold).
      for (auto& [n, v] : c.reads) {
        const std::uint64_t cur =
            n->verlock.load(std::memory_order_acquire);
        if ((cur >> 1) != (v >> 1) || n->unlinked.load()) {
          ok = false;
          break;
        }
      }
    }

    std::vector<Node*> retired;
    if (ok) {
      // Apply in key order; walks re-run from the locked, validated
      // predecessors and may traverse nodes created by this transaction.
      for (const PendingOp& op : c.ops) {
        // An earlier op of this same transaction may have unlinked the
        // recorded predecessor (remove of the pred's key): rewalk from the
        // head — the gap around op.key is still protected by our locks.
        Node* p = (op.pred != nullptr && !op.pred->unlinked.load())
                      ? op.pred
                      : head_;
        Node* cur = p->next.load(std::memory_order_acquire);
        while (cur != nullptr && cur->key < op.key) {
          p = cur;
          cur = p->next.load(std::memory_order_acquire);
        }
        if (op.type == OpType::Insert) {
          if (cur != nullptr && cur->key == op.key) {
            ok = false;  // key appeared: semantic conflict slipped through
            break;
          }
          Node* node = new Node(op.key, op.val, height_of(op.key));
          node->next.store(cur, std::memory_order_relaxed);
          p->next.store(node, std::memory_order_release);
          modified.push_back(p);
          index_insert_.push_back(node);
        } else {
          if (cur == nullptr || !(cur->key == op.key)) {
            ok = false;
            break;
          }
          p->next.store(cur->next.load(std::memory_order_acquire),
                        std::memory_order_release);
          cur->unlinked.store(true, std::memory_order_release);
          modified.push_back(p);
          modified.push_back(cur);
          retired.push_back(cur);
        }
      }
    }

    // Unlock (bumping versions of modified nodes).
    std::sort(modified.begin(), modified.end());
    modified.erase(std::unique(modified.begin(), modified.end()),
                   modified.end());
    for (std::size_t i = 0; i < acquired; i++) {
      Node* n = locks[i];
      const bool was_modified =
          std::binary_search(modified.begin(), modified.end(), n);
      unlock(n, was_modified);
    }
    // Version-bump modified nodes we did not have in the lock set (newly
    // discovered victims/preds from the apply walk).
    for (Node* n : modified) {
      if (!std::binary_search(locks.begin(), locks.begin() + static_cast<long>(acquired), n)) {
        n->verlock.fetch_add(2, std::memory_order_acq_rel);
      }
    }

    if (ok) {
      maintain_index(retired);
    } else {
      index_insert_.clear();
    }
    return ok;
  }

  /// Lazy index maintenance (outside the transactional critical path, as
  /// in TDSL): link fresh towers, purge removed nodes, retire them.
  void maintain_index(const std::vector<Node*>& removed) {
    std::lock_guard<std::mutex> g(index_mutex_);
    for (Node* n : removed) {
      for (int lvl = 0; lvl < kIndexLevels; lvl++) {
        Node* p = head_;
        while (p != nullptr) {
          Node* nx = p->index_next[lvl].load(std::memory_order_relaxed);
          if (nx == n) {
            p->index_next[lvl].store(
                n->index_next[lvl].load(std::memory_order_relaxed),
                std::memory_order_release);
            break;
          }
          if (nx == nullptr || n->key < nx->key) break;
          p = nx;
        }
      }
    }
    for (Node* n : index_insert_) {
      if (n->unlinked.load()) continue;
      for (int lvl = 0; lvl < n->height; lvl++) {
        Node* p = head_;
        Node* nx = p->index_next[lvl].load(std::memory_order_relaxed);
        while (nx != nullptr && nx->key < n->key) {
          p = nx;
          nx = p->index_next[lvl].load(std::memory_order_relaxed);
        }
        if (nx == n) continue;  // already linked
        n->index_next[lvl].store(nx, std::memory_order_relaxed);
        p->index_next[lvl].store(n, std::memory_order_release);
      }
    }
    index_insert_.clear();
    auto& ebr = smr::EBR::instance();
    for (Node* n : removed) ebr.retire(n);
  }

  Node* head_;
  std::mutex index_mutex_;
  // Per-commit scratch: nodes inserted by the transaction being committed
  // (thread-confined between apply and maintain_index).
  thread_local static std::vector<Node*> index_insert_;
  std::unique_ptr<Ctx> ctxs_[util::ThreadRegistry::kMaxThreads];
};

template <typename K, typename V, int kIndexLevels>
thread_local std::vector<typename TdslSkiplist<K, V, kIndexLevels>::Node*>
    TdslSkiplist<K, V, kIndexLevels>::index_insert_;

}  // namespace medley::stm

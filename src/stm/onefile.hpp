#pragma once
// OneFile-style nonblocking STM baseline (Ramalhete, Correia, Felber &
// Cohen, DSN '19), reimplemented to the published design's key properties
// (DESIGN.md §4):
//
//  * transactions serialize on a global sequence number — writers publish
//    a redo log and a single writer (plus any helpers) applies it, so
//    there is at most one write transaction in flight;
//  * every mutable word is a {value, sequence} pair updated with a 128-bit
//    CAS, which makes log application idempotent and lets helpers finish a
//    stalled writer (nonblocking progress);
//  * readers need NO read set: a reader pins snapshot s and restarts if it
//    ever observes a word with sequence > s — the serialized writers make
//    any such state a consistent snapshot.
//
// The persistent variant (POneFile) layers eager cache-line write-back on
// the apply path and log persistence on the publish path; see
// onefile_persist note in the class.
//
// API shape: structures built over tmtype<T> fields; user code wraps
// composed operations in updateTx/readTx lambdas, which retry internally
// until they commit (so unlike Medley there is no abort exception to
// handle — matching the original OneFile API).

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "smr/ebr.hpp"
#include "util/align.hpp"
#include "util/atomic128.hpp"
#include "util/flush.hpp"
#include "util/thread_registry.hpp"

namespace medley::stm {

class OneFileSTM;

/// A transactional 64-bit word: {value, sequence}.
template <typename T>
class tmtype {
  static_assert(sizeof(T) <= 8, "tmtype holds word-sized values");

 public:
  tmtype() : pair_(util::U128{0, 0}) {}
  explicit tmtype(T v) : pair_(util::U128{encode(v), 0}) {}

  /// Transactional load/store — must run inside readTx/updateTx.
  T pload() const;
  void pstore(T v);

  /// Non-transactional accessors (initialization, quiescent scans).
  T load_direct() const { return decode(pair_.load().lo); }
  void store_direct(T v) {
    auto cur = pair_.load();
    pair_.store({encode(v), cur.hi});
  }

  static std::uint64_t encode(T v) {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<std::uint64_t>(v);
    } else {
      std::uint64_t out = 0;
      __builtin_memcpy(&out, &v, sizeof(T));
      return out;
    }
  }
  static T decode(std::uint64_t raw) {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<T>(raw);
    } else {
      T out{};
      __builtin_memcpy(&out, &raw, sizeof(T));
      return out;
    }
  }

 private:
  friend class OneFileSTM;
  mutable util::Atomic128 pair_;
};

/// Thrown internally to restart a transaction attempt.
struct OFRestart {};

class OneFileSTM {
 public:
  static constexpr int kMaxWrites = 4096;

  /// `persistent` enables the POneFile behaviour: eager clwb of every
  /// applied word, plus log write-back and fencing before the commit
  /// becomes visible (the cost profile the paper's dotted POneFile lines
  /// show).
  explicit OneFileSTM(bool persistent = false) : persistent_(persistent) {}

  /// Run a write transaction; retries until committed. Returns f's result.
  template <typename F>
  auto updateTx(F&& f) {
    Ctx& c = my_ctx();
    if (c.mode != Mode::None) return f();  // nested: flatten
    for (;;) {
      smr::EBR::Guard g;
      BindScope bind(this);
      c.mode = Mode::Write;
      c.snapshot = gseq_.load(std::memory_order_seq_cst);
      c.log_count = 0;
      c.retires.clear();
      try {
        if constexpr (std::is_void_v<decltype(f())>) {
          f();
          commit_write(c);
          c.mode = Mode::None;
          flush_retires(c);
          return;
        } else {
          auto res = f();
          commit_write(c);
          c.mode = Mode::None;
          flush_retires(c);
          return res;
        }
      } catch (const OFRestart&) {
        c.mode = Mode::None;
        help_current();
      }
    }
  }

  /// Run a read-only transaction; retries until a consistent snapshot is
  /// observed. Returns f's result.
  template <typename F>
  auto readTx(F&& f) {
    Ctx& c = my_ctx();
    if (c.mode != Mode::None) return f();
    for (;;) {
      smr::EBR::Guard g;
      BindScope bind(this);
      c.mode = Mode::Read;
      c.snapshot = gseq_.load(std::memory_order_seq_cst);
      try {
        if constexpr (std::is_void_v<decltype(f())>) {
          f();
          c.mode = Mode::None;
          return;
        } else {
          auto res = f();
          c.mode = Mode::None;
          return res;
        }
      } catch (const OFRestart&) {
        c.mode = Mode::None;
        help_current();
      }
    }
  }

  /// Defer reclamation of a node unlinked by the running write tx until
  /// after the commit (discarded on restart; the unlink never happened).
  template <typename T>
  void retire_after_commit(T* p) {
    my_ctx().retires.push_back(
        {p, [](void* q) { delete static_cast<T*>(q); }});
  }

  std::uint64_t sequence() const {
    return gseq_.load(std::memory_order_acquire);
  }

  // ---- internals shared with tmtype -----------------------------------

  enum class Mode : std::uint8_t { None, Read, Write };

  /// Binds this instance as the thread's current STM for the duration of
  /// one transaction attempt (tmtype accessors route through it).
  class BindScope {
   public:
    explicit BindScope(OneFileSTM* stm);
    ~BindScope();

   private:
    OneFileSTM* prev_;
  };

  struct LogEntry {
    util::Atomic128* addr;
    std::uint64_t val;
  };

  struct Retired {
    void* ptr;
    void (*del)(void*);
  };

  struct Ctx {
    Mode mode = Mode::None;
    std::uint64_t snapshot = 0;
    int log_count = 0;
    LogEntry log[kMaxWrites];
    std::vector<Retired> retires;
  };

  static Ctx& my_ctx() {
    thread_local Ctx ctx;
    return ctx;
  }

  std::uint64_t read_word(util::Atomic128& pair) {
    Ctx& c = my_ctx();
    if (c.mode == Mode::Write) {
      // Read-own-writes through the redo log.
      for (int i = c.log_count - 1; i >= 0; i--) {
        if (c.log[i].addr == &pair) return c.log[i].val;
      }
    }
    util::U128 u = pair.load();
    if (c.mode != Mode::None && u.hi > c.snapshot) throw OFRestart{};
    return u.lo;
  }

  void write_word(util::Atomic128& pair, std::uint64_t val) {
    Ctx& c = my_ctx();
    if (c.mode != Mode::Write) {
      throw std::logic_error("OneFile: pstore outside updateTx");
    }
    for (int i = c.log_count - 1; i >= 0; i--) {
      if (c.log[i].addr == &pair) {
        c.log[i].val = val;
        return;
      }
    }
    // Reading the current pair also validates the snapshot.
    util::U128 u = pair.load();
    if (u.hi > c.snapshot) throw OFRestart{};
    if (c.log_count >= kMaxWrites) {
      throw std::runtime_error("OneFile: redo log overflow");
    }
    c.log[c.log_count++] = {&pair, val};
  }

 private:
  /// Published transaction record; per-thread, seqlock-versioned so
  /// helpers can take a consistent copy. Every field a helper may read
  /// concurrently with the owner's refill is an atomic accessed relaxed —
  /// the version bumps provide the ordering; torn GENERATIONS are
  /// discarded by the version re-check, and the atomics keep the races
  /// out of the C++ memory model (and ThreadSanitizer reports; the plain
  /// fields here were the one data race TSAN found in the seed).
  struct PubTx {
    std::atomic<std::uint64_t> version{0};  // odd while being (re)filled
    std::atomic<std::uint64_t> seq{0};      // commit sequence (snapshot+1)
    std::atomic<int> count{0};
    // Set to `seq` by a helper right BEFORE it advances gseq for this
    // record. While a record is published, cur_tx_ blocks every other
    // writer, so gseq can only move by the record's own helpers — which
    // lets the owner tell "a helper committed MY transaction" (finalized
    // == my seq: done, return success) from "the world moved before I
    // published" (finalized stale: unpublish and restart). Without this
    // the owner restarted a helped-and-committed transaction and applied
    // it twice (caught by OneFile.ConcurrentIncrementsAllLand once the
    // seqlock race above stopped halting TSAN first).
    std::atomic<std::uint64_t> finalized{0};
    struct Slot {
      std::atomic<util::Atomic128*> addr{nullptr};
      std::atomic<std::uint64_t> val{0};
    };
    Slot log[kMaxWrites];
  };

  void commit_write(Ctx& c) {
    if (c.log_count == 0) return;  // read-only after all
    PubTx& tx = my_pub();
    // Fill under an odd version so stale helpers can't copy a torn log.
    tx.version.fetch_add(1, std::memory_order_acq_rel);
    tx.seq.store(c.snapshot + 1, std::memory_order_relaxed);
    tx.count.store(c.log_count, std::memory_order_relaxed);
    for (int i = 0; i < c.log_count; i++) {
      tx.log[i].addr.store(c.log[i].addr, std::memory_order_relaxed);
      tx.log[i].val.store(c.log[i].val, std::memory_order_relaxed);
    }
    if (persistent_) {
      // POneFile: the redo log must be durable before it becomes the
      // recovery point. (Lock-free atomics have the same layout as the
      // plain fields they replaced; flushing the slots is unchanged.)
      util::flush_range(tx.log, sizeof(PubTx::Slot) *
                                    static_cast<std::size_t>(c.log_count));
      util::flush_range(&tx.seq, sizeof(tx.seq));
      util::sfence();
    }
    tx.version.fetch_add(1, std::memory_order_release);

    const std::uint64_t s = c.snapshot + 1;
    for (;;) {
      util::U128 cur = cur_tx_.load();
      if (cur.lo != 0) {
        help(reinterpret_cast<PubTx*>(cur.lo), cur.hi);
        // Somebody else committed meanwhile; our snapshot is stale.
        if (gseq_.load(std::memory_order_seq_cst) != c.snapshot) {
          throw OFRestart{};
        }
        continue;
      }
      // Publish tagged with our sequence: {record, seq} pairs are unique
      // forever (a record's seq strictly increases across its reuses), so
      // a stale helper's unpublish CAS of an older generation can never
      // take down this publication (pointer-ABA on the reused record).
      const util::U128 mine{reinterpret_cast<std::uint64_t>(&tx), s};
      util::U128 expected = cur;
      if (!cur_tx_.compare_exchange(expected, mine)) continue;

      if (gseq_.load(std::memory_order_seq_cst) != c.snapshot) {
        if (tx.finalized.load(std::memory_order_acquire) == s) {
          // A helper finished exactly this transaction (it stamps
          // `finalized` before advancing gseq): committed, not raced.
          // It also unpublishes us; the guarded CAS below is a no-op if
          // it won that race.
          unpublish(mine);
          if (persistent_) {
            util::flush_range(&gseq_, sizeof(gseq_));
            util::sfence();
          }
          return;
        }
        // The world moved between our snapshot and our publication.
        // CAS, not store: a helper may already have finalized us and a
        // new writer published — a blind store would clobber their
        // publication and break writer serialization.
        unpublish(mine);
        throw OFRestart{};
      }
      // The owner applies from its private ctx log (same contents it
      // just published; no need to re-read the shared record).
      apply(c.log, c.log_count, s);
      std::uint64_t e = c.snapshot;
      gseq_.compare_exchange_strong(e, s, std::memory_order_seq_cst);
      if (persistent_) {
        util::flush_range(&gseq_, sizeof(gseq_));
        util::sfence();
      }
      unpublish(mine);
      return;
    }
  }

  /// Retire a publication if (and only if) it is still current — the
  /// tagged pair makes this exact.
  void unpublish(util::U128 pub) { cur_tx_.compare_exchange(pub, {0, pub.hi}); }

  /// Idempotent application: a word is updated only while its sequence is
  /// older than the transaction's.
  void apply(const LogEntry* log, int n, std::uint64_t seq) {
    for (int i = 0; i < n; i++) {
      util::U128 cur = log[i].addr->load();
      while (cur.hi < seq) {
        if (log[i].addr->compare_exchange(cur, {log[i].val, seq})) {
          if (persistent_) util::clwb(log[i].addr);
          break;
        }
      }
    }
    if (persistent_) util::sfence();
  }

  /// Help the transaction published as {t, pub_seq}. Every check pins the
  /// copy to that exact publication: the record generation must carry
  /// pub_seq, and the publication word must still hold the tagged pair.
  void help(PubTx* t, std::uint64_t pub_seq) {
    if (t == nullptr) return;
    const std::uint64_t v1 = t->version.load(std::memory_order_acquire);
    if (v1 & 1) return;  // being refilled
    const std::uint64_t seq = t->seq.load(std::memory_order_relaxed);
    if (seq != pub_seq) return;  // record moved on: stale pairing
    const int n = t->count.load(std::memory_order_relaxed);
    if (n <= 0 || n > kMaxWrites) return;
    thread_local std::vector<LogEntry> copy;
    copy.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++) {
      copy[static_cast<std::size_t>(i)] = {
          t->log[i].addr.load(std::memory_order_relaxed),
          t->log[i].val.load(std::memory_order_relaxed)};
    }
    // Fence, then re-read the version: the copy is only used if the whole
    // record stayed in the generation observed at v1 (seqlock validate).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (t->version.load(std::memory_order_relaxed) != v1) return;
    const util::U128 pub{reinterpret_cast<std::uint64_t>(t), pub_seq};
    if (!(cur_tx_.load() == pub)) return;
    if (gseq_.load(std::memory_order_seq_cst) != seq - 1) return;
    // The copied log is the one currently published: finish it. Stamp
    // `finalized` BEFORE advancing gseq so the owner can attribute the
    // advance (see PubTx::finalized) — raised monotonically, so a helper
    // stalled since an older generation can never clobber a newer stamp.
    apply(copy.data(), n, seq);
    std::uint64_t prev = t->finalized.load(std::memory_order_relaxed);
    while (prev < seq &&
           !t->finalized.compare_exchange_weak(prev, seq,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
    }
    std::uint64_t e = seq - 1;
    gseq_.compare_exchange_strong(e, seq, std::memory_order_seq_cst);
    unpublish(pub);
  }

  void help_current() {
    const util::U128 cur = cur_tx_.load();
    if (cur.lo != 0) help(reinterpret_cast<PubTx*>(cur.lo), cur.hi);
  }

  void flush_retires(Ctx& c) {
    auto& ebr = smr::EBR::instance();
    for (const Retired& r : c.retires) ebr.retire(r.ptr, r.del);
    c.retires.clear();
  }

  PubTx& my_pub() {
    const int tid = util::ThreadRegistry::tid();
    if (!pubs_[tid]) pubs_[tid] = std::make_unique<PubTx>();
    return *pubs_[tid];
  }

  const bool persistent_;
  alignas(util::kCacheLine) std::atomic<std::uint64_t> gseq_{0};
  // The published write transaction, tagged with its commit sequence:
  // {PubTx*, seq}. The tag makes unpublish CASes exact under record reuse
  // (see commit_write).
  alignas(util::kCacheLine) util::Atomic128 cur_tx_{util::U128{0, 0}};
  std::unique_ptr<PubTx> pubs_[util::ThreadRegistry::kMaxThreads];
};

/// tmtype accessors route through the thread's current STM instance,
/// bound for the duration of each transaction attempt by updateTx/readTx.
namespace detail {
inline OneFileSTM*& current_stm() {
  thread_local OneFileSTM* stm = nullptr;
  return stm;
}
}  // namespace detail

inline OneFileSTM::BindScope::BindScope(OneFileSTM* stm)
    : prev_(detail::current_stm()) {
  detail::current_stm() = stm;
}

inline OneFileSTM::BindScope::~BindScope() {
  detail::current_stm() = prev_;
}

template <typename T>
T tmtype<T>::pload() const {
  OneFileSTM* stm = detail::current_stm();
  if (stm == nullptr) return load_direct();
  return decode(stm->read_word(pair_));
}

template <typename T>
void tmtype<T>::pstore(T v) {
  OneFileSTM* stm = detail::current_stm();
  if (stm == nullptr) {
    store_direct(v);
    return;
  }
  stm->write_word(pair_, encode(v));
}

}  // namespace medley::stm

#pragma once
// LFTT-style lock-free transactional skiplist (Zhang & Dechev, SPAA '16),
// reimplemented to the published design's key properties (DESIGN.md §4):
//
//  * *static transactions*: the full list of (op, key) pairs is known up
//    front — exactly the limitation the paper contrasts with Medley's
//    dynamic transactions;
//  * per-node transaction descriptors: every operation publishes its
//    descriptor on the node for its key (its "critical node"); logical set
//    membership is a function of (descriptor status, op type, prior
//    state);
//  * helping by re-execution: a thread that encounters an active foreign
//    descriptor executes that whole transaction's operations before
//    retrying its own — the redundant-planning cost the paper measures;
//  * *visible readers*: contains() publishes a descriptor too, which is
//    why read-mostly workloads suffer (Fig. 8c).
//
// Set semantics over 64-bit keys (the published system is key-only; our
// benches use it as a set, matching the paper's LFTT configuration).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "smr/ebr.hpp"
#include "util/rng.hpp"
#include "util/thread_registry.hpp"

namespace medley::stm {

class LfttSkiplist {
 public:
  enum class OpType : std::uint8_t { Insert, Remove, Contains };

  struct Op {
    OpType type;
    std::uint64_t key;
  };

  static constexpr int kMaxLevel = 20;

  LfttSkiplist() : head_(new Node(0, kMaxLevel)) {}

  ~LfttSkiplist() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = strip(n->next[0].load());
      delete n;
      n = nx;
    }
  }

  /// Execute a static transaction; true iff it committed. A transaction
  /// aborts when any constituent operation fails semantically (insert of
  /// a present key, remove/contains of an absent one) or loses a race.
  bool executeTx(const std::vector<Op>& ops) {
    smr::EBR::Guard g;
    TxDesc* desc = alloc_desc();
    desc->ops = ops;
    desc->status.store(Status::Active, std::memory_order_release);
    return execute_ops(desc);
  }

  /// Singleton conveniences (transactions of one operation).
  bool insert(std::uint64_t k) {
    return executeTx({{OpType::Insert, k}});
  }
  bool remove(std::uint64_t k) {
    return executeTx({{OpType::Remove, k}});
  }
  bool contains(std::uint64_t k) {
    return executeTx({{OpType::Contains, k}});
  }

  std::size_t size_slow() {
    smr::EBR::Guard g;
    std::size_t n = 0;
    for (Node* cur = strip(head_->next[0].load()); cur != nullptr;
         cur = strip(cur->next[0].load())) {
      NodeInfo* info = cur->info.load(std::memory_order_acquire);
      if (logically_present(info)) n++;
    }
    return n;
  }

 private:
  enum class Status : std::uint8_t { Active, Committed, Aborted };

  struct TxDesc {
    std::atomic<Status> status{Status::Aborted};
    std::vector<Op> ops;
  };

  /// Published claim on a node. Presence after the claim's transaction
  /// resolves is precomputed for both outcomes (this subsumes LFTT's
  /// interpretation chain and makes helping idempotent).
  struct NodeInfo {
    TxDesc* desc;
    bool present_if_committed;
    bool present_if_aborted;
  };

  struct Node {
    std::uint64_t key;
    int level;
    std::atomic<NodeInfo*> info{nullptr};
    std::unique_ptr<std::atomic<Node*>[]> next;
    Node(std::uint64_t k, int lvl)
        : key(k), level(lvl), next(new std::atomic<Node*>[lvl]) {
      for (int i = 0; i < lvl; i++) next[i].store(nullptr);
    }
  };

  // ---- descriptor & info management ------------------------------------

  /// Descriptors and node-info records are immortal: nodes keep pointing
  /// at them indefinitely and helpers may hold references long after the
  /// transaction (and even the allocating *thread*) is gone. Per-thread
  /// arenas are therefore owned by a process-global keeper and released
  /// only at process exit — mirroring the published implementation's
  /// reuse-free descriptors (and its memory growth, which the paper notes
  /// as a cost of the approach).
  template <typename T, typename... Args>
  static T* arena_alloc(Args&&... args) {
    using Arena = std::vector<std::unique_ptr<T>>;
    static std::mutex mu;
    static std::vector<std::unique_ptr<Arena>> keeper;
    thread_local Arena* mine = [] {
      auto owned = std::make_unique<Arena>();
      Arena* p = owned.get();
      std::lock_guard<std::mutex> g(mu);
      keeper.push_back(std::move(owned));
      return p;
    }();
    mine->push_back(std::make_unique<T>(std::forward<Args>(args)...));
    return mine->back().get();
  }

  TxDesc* alloc_desc() { return arena_alloc<TxDesc>(); }

  static NodeInfo* make_info(TxDesc* d, bool if_commit, bool if_abort) {
    return arena_alloc<NodeInfo>(NodeInfo{d, if_commit, if_abort});
  }

  static bool logically_present(NodeInfo* info) {
    if (info == nullptr) return false;  // freshly linked by no committed tx
    const Status s = info->desc->status.load(std::memory_order_acquire);
    switch (s) {
      case Status::Committed: return info->present_if_committed;
      case Status::Aborted: return info->present_if_aborted;
      case Status::Active: return false;  // caller resolves first
    }
    return false;
  }

  /// Help an active foreign transaction to completion by re-executing its
  /// operations (LFTT's helping-by-re-execution).
  void help(TxDesc* d) { execute_ops(d); }

  bool execute_ops(TxDesc* d) {
    bool ok = true;
    for (const Op& op : d->ops) {
      if (d->status.load(std::memory_order_acquire) != Status::Active) {
        // Someone (a helper, or us on another path) already finalized it.
        return d->status.load(std::memory_order_acquire) ==
               Status::Committed;
      }
      switch (op.type) {
        case OpType::Insert: ok = do_insert(d, op.key); break;
        case OpType::Remove: ok = do_remove(d, op.key); break;
        case OpType::Contains: ok = do_contains(d, op.key); break;
      }
      if (!ok) break;
    }
    Status expected = Status::Active;
    d->status.compare_exchange_strong(
        expected, ok ? Status::Committed : Status::Aborted,
        std::memory_order_acq_rel);
    return d->status.load(std::memory_order_acquire) == Status::Committed;
  }

  /// Resolve a node's current claim for transaction d. Returns the
  /// logical presence the new claim must build on, or helps and retries
  /// via the out-flag when an active foreign claim is met.
  bool resolve(Node* node, TxDesc* d, NodeInfo*& cur, bool& busy) {
    cur = node->info.load(std::memory_order_acquire);
    busy = false;
    if (cur == nullptr) return false;
    if (cur->desc == d) {
      // Our own earlier op in this tx: chain from its committed outcome.
      return cur->present_if_committed;
    }
    const Status s = cur->desc->status.load(std::memory_order_acquire);
    if (s == Status::Active) {
      help(cur->desc);
      busy = true;
      return false;
    }
    return s == Status::Committed ? cur->present_if_committed
                                  : cur->present_if_aborted;
  }

  bool do_insert(TxDesc* d, std::uint64_t k) {
    for (;;) {
      Node* preds[kMaxLevel];
      Node* found = locate(k, preds);
      if (found != nullptr) {
        NodeInfo* cur;
        bool busy;
        const bool present = resolve(found, d, cur, busy);
        if (busy) continue;
        if (present) return false;  // semantic failure: key already in set
        NodeInfo* ni = make_info(d, /*commit=*/true, /*abort=*/present);
        if (found->info.compare_exchange_strong(
                cur, ni, std::memory_order_acq_rel)) {
          return true;
        }
        continue;  // claim raced; retry
      }
      // Key physically absent: link a node already claimed by us.
      Node* node = new Node(k, random_level());
      node->info.store(make_info(d, true, false),
                       std::memory_order_relaxed);
      if (physical_insert(node, preds)) return true;
      delete node;  // never published
    }
  }

  bool do_remove(TxDesc* d, std::uint64_t k) {
    for (;;) {
      Node* preds[kMaxLevel];
      Node* found = locate(k, preds);
      if (found == nullptr) return false;  // semantic failure
      NodeInfo* cur;
      bool busy;
      const bool present = resolve(found, d, cur, busy);
      if (busy) continue;
      if (!present) return false;
      NodeInfo* ni = make_info(d, /*commit=*/false, /*abort=*/present);
      if (found->info.compare_exchange_strong(cur, ni,
                                              std::memory_order_acq_rel)) {
        return true;
      }
    }
  }

  bool do_contains(TxDesc* d, std::uint64_t k) {
    for (;;) {
      Node* preds[kMaxLevel];
      Node* found = locate(k, preds);
      if (found == nullptr) return false;
      NodeInfo* cur;
      bool busy;
      const bool present = resolve(found, d, cur, busy);
      if (busy) continue;
      if (!present) return false;
      // Visible reader: publish the claim so writers conflict with us.
      NodeInfo* ni = make_info(d, present, present);
      if (found->info.compare_exchange_strong(cur, ni,
                                              std::memory_order_acq_rel)) {
        return true;
      }
    }
  }

  // ---- underlying lock-free skiplist (Fraser-style marking) ------------

  static Node* marked(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1);
  }
  static Node* strip(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }
  static bool is_marked(Node* p) {
    return reinterpret_cast<std::uintptr_t>(p) & 1;
  }

  static int random_level() {
    thread_local util::Xoshiro256 rng(
        0x5851'f42d'4c95'7f2dULL ^
        static_cast<std::uint64_t>(util::ThreadRegistry::tid() + 1));
    int lvl = 1;
    while (lvl < kMaxLevel && (rng.next() & 1)) lvl++;
    return lvl;
  }

  /// Find preds at every level; returns the node holding k if physically
  /// linked (regardless of logical status). Physically unlinks marked
  /// nodes and nodes whose resolved logical status is absent-and-stale
  /// (piggybacked cleanup, as in LFTT).
  Node* locate(std::uint64_t k, Node** preds) {
  retry:
    Node* pred = head_;
    Node* found = nullptr;
    for (int lvl = kMaxLevel - 1; lvl >= 0; lvl--) {
      Node* curr = strip(pred->next[lvl].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        Node* raw = curr->next[lvl].load(std::memory_order_acquire);
        if (is_marked(raw)) {
          if (!pred->next[lvl].compare_exchange_strong(
                  curr, strip(raw), std::memory_order_acq_rel)) {
            goto retry;
          }
          if (lvl == 0) smr::EBR::instance().retire(curr);
          curr = strip(raw);
          continue;
        }
        if (curr->key < k) {
          pred = curr;
          curr = strip(raw);
          continue;
        }
        break;
      }
      preds[lvl] = pred;
      if (lvl == 0 && curr != nullptr && curr->key == k) found = curr;
    }
    return found;
  }

  /// Link `node` (whose info is pre-claimed) at all levels.
  bool physical_insert(Node* node, Node** preds) {
    // Level 0 first: linearizes physical presence.
    Node* succ = strip(preds[0]->next[0].load(std::memory_order_acquire));
    if (succ != nullptr && succ->key == node->key) return false;
    if (succ != nullptr && succ->key < node->key) return false;  // stale
    node->next[0].store(succ, std::memory_order_relaxed);
    Node* expected = succ;
    if (!preds[0]->next[0].compare_exchange_strong(
            expected, node, std::memory_order_acq_rel)) {
      return false;
    }
    // Upper levels: best effort.
    for (int lvl = 1; lvl < node->level; lvl++) {
      for (;;) {
        Node* p = preds[lvl];
        Node* s = strip(p->next[lvl].load(std::memory_order_acquire));
        while (s != nullptr && s->key < node->key) {
          p = s;
          s = strip(p->next[lvl].load(std::memory_order_acquire));
        }
        if (s == node) break;
        node->next[lvl].store(s, std::memory_order_relaxed);
        Node* e = s;
        if (p->next[lvl].compare_exchange_strong(
                e, node, std::memory_order_acq_rel)) {
          break;
        }
        if (is_marked(node->next[0].load())) return true;  // being removed
      }
    }
    return true;
  }

  Node* head_;
};

}  // namespace medley::stm

#include "util/thread_registry.hpp"

#include <atomic>
#include <thread>

#include "util/align.hpp"

namespace medley::util {
namespace {

std::atomic<bool> g_used[ThreadRegistry::kMaxThreads];
std::atomic<int> g_high_water{0};

int acquire_slot() {
  for (;;) {
    for (int i = 0; i < ThreadRegistry::kMaxThreads; i++) {
      bool expected = false;
      if (!g_used[i].load(std::memory_order_relaxed) &&
          g_used[i].compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        int hw = g_high_water.load(std::memory_order_relaxed);
        while (hw < i + 1 && !g_high_water.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        return i;
      }
    }
    // All 256 slots busy: wait for a thread to exit and return its slot.
    // Yield rather than hard-spin so the holders can actually run (on an
    // oversubscribed machine a tight loop here starved the very threads
    // whose exit we were waiting for).
    std::this_thread::yield();
  }
}

// A thread's lease lives in a thread_local whose destructor returns the id.
// id == kDead marks a lease whose destructor has already run: thread_local
// destruction order is unspecified, so another thread_local's destructor may
// still call tid() after ours ran. Writing into `id` at that point would
// leak the slot forever (no destructor remains to release it) — repeated
// short-lived threads would then exhaust the table and wedge acquire_slot().
// Such late calls are instead routed to a *fresh* function-local
// thread_local lease (late_tid below): the C++ runtime runs destructors
// registered during thread exit too (same contract as atexit), so the late
// lease is released as well.
constexpr int kDead = -2;

struct Lease {
  int id = -1;
  ~Lease() {
    if (id >= 0) g_used[id].store(false, std::memory_order_release);
    id = kDead;
  }
};

thread_local Lease t_lease;

int late_tid() {
  thread_local Lease t_late;
  if (t_late.id == -1) t_late.id = acquire_slot();
  if (t_late.id >= 0) return t_late.id;
  // Even the late lease was destroyed (a destructor registered after it ran
  // called back in). Acquire once more and accept the one-slot leak — it is
  // bounded to pathological exit sequences and beats corrupting a live slot.
  t_late.id = acquire_slot();
  return t_late.id;
}

}  // namespace

int ThreadRegistry::tid() {
  if (t_lease.id >= 0) return t_lease.id;
  if (t_lease.id == kDead) return late_tid();
  t_lease.id = acquire_slot();
  return t_lease.id;
}

int ThreadRegistry::max_tid() {
  return g_high_water.load(std::memory_order_acquire);
}

void ThreadRegistry::release_current() {
  if (t_lease.id >= 0) {
    g_used[t_lease.id].store(false, std::memory_order_release);
    t_lease.id = -1;
  }
}

}  // namespace medley::util

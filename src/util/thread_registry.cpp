#include "util/thread_registry.hpp"

#include <atomic>

#include "util/align.hpp"

namespace medley::util {
namespace {

std::atomic<bool> g_used[ThreadRegistry::kMaxThreads];
std::atomic<int> g_high_water{0};

int acquire_slot() {
  for (;;) {
    for (int i = 0; i < ThreadRegistry::kMaxThreads; i++) {
      bool expected = false;
      if (!g_used[i].load(std::memory_order_relaxed) &&
          g_used[i].compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        int hw = g_high_water.load(std::memory_order_relaxed);
        while (hw < i + 1 && !g_high_water.compare_exchange_weak(
                                 hw, i + 1, std::memory_order_acq_rel)) {
        }
        return i;
      }
    }
    // All 256 slots busy: extremely unlikely outside a leak; spin until a
    // thread exits and returns its slot.
  }
}

struct Lease {
  int id = -1;
  ~Lease() {
    if (id >= 0) g_used[id].store(false, std::memory_order_release);
  }
};

thread_local Lease t_lease;

}  // namespace

int ThreadRegistry::tid() {
  if (t_lease.id < 0) t_lease.id = acquire_slot();
  return t_lease.id;
}

int ThreadRegistry::max_tid() {
  return g_high_water.load(std::memory_order_acquire);
}

void ThreadRegistry::release_current() {
  if (t_lease.id >= 0) {
    g_used[t_lease.id].store(false, std::memory_order_release);
    t_lease.id = -1;
  }
}

}  // namespace medley::util

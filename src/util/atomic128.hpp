#pragma once
// 128-bit atomic word built on x86-64 cmpxchg16b (compiled with -mcx16).
//
// Medley's CASObj augments every CAS-able 64-bit field with a 64-bit counter
// (Sec. 3.2 of the paper); the {value, counter} pair must change together,
// atomically, which requires a double-width CAS. We wrap the GCC __atomic
// builtins over unsigned __int128 rather than std::atomic<__int128> so the
// code is explicit about width and memory order at every call site.

#include <atomic>
#include <cstdint>

#if !defined(__SIZEOF_INT128__)
#error \
    "medley requires a target with native 128-bit integers (any 64-bit GCC/Clang target). 32-bit builds are unsupported: the {value, counter} pair of CASObj must be a single double-width atomic."
#endif

namespace medley::util {

/// A pair of 64-bit words manipulated as one 128-bit atomic unit.
/// `lo` carries the value (or descriptor pointer); `hi` carries the counter.
struct U128 {
  std::uint64_t lo{0};
  std::uint64_t hi{0};

  friend bool operator==(const U128& a, const U128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

class Atomic128 {
 public:
  Atomic128() noexcept : raw_(0) {}
  explicit Atomic128(U128 v) noexcept : raw_(pack(v)) {}

  /// Atomic 128-bit read.
  ///
  /// Default: __atomic_load_16, which libatomic resolves (via ifunc) to a
  /// single 16-byte load on CPUs that guarantee its atomicity — the fast
  /// path on every recent x86-64 part, and what the traversal hot loops
  /// want.
  ///
  /// Fallback (-DMEDLEY_SEQLOCK_LOAD): on machines where load_16 lowers
  /// to a bus-locked CMPXCHG16B, exploit the codebase-wide invariant that
  /// every Atomic128 writer bumps the strictly monotonic `hi`
  /// counter/sequence word whenever `lo` changes: two 64-bit acquire
  /// loads of hi bracketing a load of lo certify an untorn snapshot
  /// (equal hi values mean the pair did not change in between).
  U128 load(int order = __ATOMIC_ACQUIRE) const noexcept {
#ifdef MEDLEY_SEQLOCK_LOAD
    (void)order;
    const auto* words =
        reinterpret_cast<const std::atomic<std::uint64_t>*>(&raw_);
    for (;;) {
      const std::uint64_t h1 = words[1].load(std::memory_order_acquire);
      const std::uint64_t lo = words[0].load(std::memory_order_acquire);
      const std::uint64_t h2 = words[1].load(std::memory_order_acquire);
      if (h1 == h2) return U128{lo, h1};
    }
#else
    return unpack(__atomic_load_n(&raw_, order));
#endif
  }

  void store(U128 v, int order = __ATOMIC_RELEASE) noexcept {
    __atomic_store_n(&raw_, pack(v), order);
  }

  /// Single-shot 128-bit compare-exchange. Returns true on success; on
  /// failure `expected` is updated with the observed contents.
  bool compare_exchange(U128& expected, U128 desired,
                        int success = __ATOMIC_ACQ_REL,
                        int failure = __ATOMIC_ACQUIRE) noexcept {
    unsigned __int128 exp = pack(expected);
    bool ok = __atomic_compare_exchange_n(&raw_, &exp, pack(desired),
                                          /*weak=*/false, success, failure);
    if (!ok) expected = unpack(exp);
    return ok;
  }

 private:
  static unsigned __int128 pack(U128 v) noexcept {
    return (static_cast<unsigned __int128>(v.hi) << 64) | v.lo;
  }
  static U128 unpack(unsigned __int128 r) noexcept {
    return U128{static_cast<std::uint64_t>(r),
                static_cast<std::uint64_t>(r >> 64)};
  }

  alignas(16) mutable unsigned __int128 raw_;
};

static_assert(sizeof(Atomic128) == 16);
static_assert(alignof(Atomic128) == 16);

}  // namespace medley::util

#pragma once
// Wall-clock helpers for the benchmark harness and epoch advancer.

#include <chrono>
#include <cstdint>

namespace medley::util {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple stopwatch: elapsed nanoseconds since construction or reset().
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace medley::util

#pragma once
// Wall-clock helpers for the benchmark harness and epoch advancer.

#include <chrono>
#include <cstdint>

namespace medley::util {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raw timestamp counter for low-overhead latency sampling. ~3x cheaper
/// than now_ns() on x86 (no vDSO call); monotone per core and, on every
/// invariant-TSC machine we target, across cores. Falls back to now_ns()
/// elsewhere, in which case tsc_ns_per_tick() calibrates to ~1.0.
inline std::uint64_t tsc_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return now_ns();
#endif
}

/// Nanoseconds per TSC tick, calibrated once per process against the steady
/// clock over a few milliseconds. First call pays the calibration delay;
/// record raw ticks on the hot path and scale at snapshot time.
inline double tsc_ns_per_tick() noexcept {
  static const double scale = [] {
    const std::uint64_t t0 = tsc_now();
    const std::uint64_t n0 = now_ns();
    while (now_ns() - n0 < 2'000'000) {
    }
    const std::uint64_t t1 = tsc_now();
    const std::uint64_t n1 = now_ns();
    return t1 > t0 ? static_cast<double>(n1 - n0) /
                         static_cast<double>(t1 - t0)
                   : 1.0;
  }();
  return scale;
}

/// Simple stopwatch: elapsed nanoseconds since construction or reset().
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace medley::util

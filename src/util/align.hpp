#pragma once
// Cache-line geometry helpers shared by every concurrent module.
//
// All hot shared words in Medley are padded to a cache line to avoid false
// sharing; per-thread slots in global arrays use Padded<T> so that two
// threads never contend on the same line for unrelated data.

#include <cstddef>
#include <new>
#include <utility>

namespace medley::util {

inline constexpr std::size_t kCacheLine = 64;

/// T padded out to a whole number of cache lines.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Guarantee the footprint even when sizeof(T) is a multiple of the line.
  char pad_[kCacheLine - (sizeof(T) % kCacheLine ? sizeof(T) % kCacheLine
                                                 : kCacheLine)]{};
};

static_assert(sizeof(Padded<char>) == kCacheLine);
static_assert(alignof(Padded<char>) == kCacheLine);

}  // namespace medley::util

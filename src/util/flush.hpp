#pragma once
// Cache-line write-back primitives used by the persistence layers
// (txMontage's epoch system and the persistent OneFile baseline).
//
// On this machine clwb/clflushopt are real instructions; we execute them
// against the mapped heap/file pages, so the *relative* cost of eager
// (per-store) versus batched (epoch-boundary) write-back — the phenomenon
// Fig. 7/8/10 of the paper measure — is reproduced with genuine hardware
// latencies even though the backing medium is DRAM (see DESIGN.md §4).

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace medley::util {

inline constexpr std::size_t kFlushLine = 64;

/// Write back one cache line containing `p` (clwb: keeps the line valid).
inline void clwb(const void* p) noexcept {
#if defined(__x86_64__) && defined(__CLWB__)
  _mm_clwb(const_cast<void*>(p));
#elif defined(__x86_64__) && defined(__CLFLUSHOPT__)
  _mm_clflushopt(const_cast<void*>(p));
#elif defined(__x86_64__)
  // Baseline x86-64: clflush is universally available. It invalidates the
  // line (unlike clwb), so batched write-back still pays a realistic cost.
  _mm_clflush(const_cast<void*>(p));
#else
  (void)p;
#endif
}

/// Order all previous write-backs (store fence).
inline void sfence() noexcept {
#if defined(__x86_64__)
  _mm_sfence();
#endif
}

/// Write back an address range, line by line.
inline void flush_range(const void* p, std::size_t bytes) noexcept {
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t end = addr + bytes;
  for (addr &= ~(kFlushLine - 1); addr < end; addr += kFlushLine) {
    clwb(reinterpret_cast<const void*>(addr));
  }
}

}  // namespace medley::util

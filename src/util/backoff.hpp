#pragma once
// Bounded exponential backoff used by retry loops (transaction retry after
// abort, CAS retry under contention). Spins with `pause` to be polite to the
// sibling hyperthread; yields once the spin budget is large so oversubscribed
// runs (more threads than cores) keep making progress.

#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace medley::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class ExpBackoff {
 public:
  explicit ExpBackoff(std::uint32_t min_spins = 4,
                      std::uint32_t max_spins = 1024) noexcept
      : cur_(min_spins), min_(min_spins), max_(max_spins) {}

  void operator()() noexcept {
    if (cur_ >= max_) {
      // Past the spin budget: let the scheduler run somebody else. This is
      // what keeps obstruction-free retry loops live on oversubscribed CPUs.
      std::this_thread::yield();
    } else {
      for (std::uint32_t i = 0; i < cur_; i++) cpu_relax();
      cur_ *= 2;
    }
  }

  void reset() noexcept { cur_ = min_; }

 private:
  std::uint32_t cur_, min_, max_;
};

}  // namespace medley::util

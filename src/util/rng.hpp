#pragma once
// Small fast RNGs for workload generation. Not cryptographic.
//
// xoshiro256** for the main stream (passes BigCrush), splitmix64 for seeding,
// plus the Zipf sampler used by contention ablations (rejection-inversion,
// after W. Hörmann & G. Derflinger).

#include <cmath>
#include <cstdint>

namespace medley::util {

inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// MurmurHash3 fmix64: stateless avalanche of one word. Used wherever a
/// raw value (std::hash of an integer is identity on common stdlibs, a
/// pointer) needs spreading before a modulo/mask — shard routing, flat
/// hash sets.
inline std::uint64_t mix64(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Debiased via Lemire's multiply-shift rejection.
  std::uint64_t next_bounded(std::uint64_t bound) noexcept {
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Zipf(theta) sampler over [0, n). theta = 0 degenerates to uniform.
/// Uses the classic Gray/CLRS power-law inversion with precomputed zeta.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next() noexcept {
    if (theta_ <= 0.0) return rng_.next_bounded(n_);
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; i++)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  Xoshiro256 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace medley::util

#pragma once
// Shared per-thread slot registration, keyed by the dense ThreadRegistry id.
//
// Every "zero shared-write hot path" structure in the repo (StoreStats,
// TxManager stats, the obs histograms/trace rings) follows the same shape:
// each thread bumps plain relaxed atomics in a slot nobody else writes, and
// readers merge all slots into a snapshot. This header is the one
// implementation of that shape so the lifecycle rules live in a single place:
//
//  * Slots are indexed by ThreadRegistry::tid(). Ids are LEASED: when a
//    thread exits its id returns to the pool and a later thread may inherit
//    the same slot. Slot contents must therefore be cumulative and
//    merge-by-sum (counters, histogram buckets) — never "owned" state that a
//    new thread would need zeroed. Aggregates stay exact across thread churn
//    because the sum over slots is the sum over all threads ever.
//  * mine() is single-writer by construction (only the leasing thread maps
//    to the slot), so increments may use relaxed load+store; readers see
//    tear-free values because every field is a std::atomic.
//  * Slots are allocated lazily on first touch, so a structure that holds
//    many histograms (a MetricsRegistry) costs one pointer array per
//    instance, not kMaxThreads eager cache lines.
//
// T must be default-constructible; members should be std::atomic so that
// for_each() from another thread is race-free.

#include <atomic>
#include <memory>

#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace medley::util {

template <typename T>
class PerThreadSlots {
 public:
  PerThreadSlots() = default;
  ~PerThreadSlots() {
    for (auto& p : slots_) delete p.load(std::memory_order_acquire);
  }
  PerThreadSlots(const PerThreadSlots&) = delete;
  PerThreadSlots& operator=(const PerThreadSlots&) = delete;

  /// The calling thread's slot, allocated on first touch. The reference is
  /// stable for the life of this object (slots are never freed early).
  T& mine() { return at(ThreadRegistry::tid()); }

  /// Slot for an explicit id (test hook / resumed-lease paths).
  T& at(int id) {
    Padded<T>* slot = slots_[id].load(std::memory_order_acquire);
    if (slot == nullptr) slot = allocate(id);
    return slot->value;
  }

  /// Read-only view of a slot; nullptr if that id never touched us.
  const T* get(int id) const {
    const Padded<T>* slot = slots_[id].load(std::memory_order_acquire);
    return slot ? &slot->value : nullptr;
  }

  /// Visit every allocated slot (bounded by the registry high-water mark).
  /// Safe concurrently with writers: fields are atomics, slots never die.
  template <typename F>
  void for_each(F&& f) const {
    const int n = ThreadRegistry::max_tid();
    for (int i = 0; i < n; i++) {
      if (const T* s = get(i)) f(*s);
    }
  }

  /// Mutating visit over allocated slots. For quiescent-only maintenance
  /// (stats reset): a concurrent owner-thread load+store bump can overwrite
  /// the mutation, exactly as documented on TxManager::reset_stats.
  template <typename F>
  void for_each_mut(F&& f) {
    const int n = ThreadRegistry::max_tid();
    for (int i = 0; i < n; i++) {
      Padded<T>* slot = slots_[i].load(std::memory_order_acquire);
      if (slot != nullptr) f(slot->value);
    }
  }

 private:
  Padded<T>* allocate(int id) {
    auto* fresh = new Padded<T>();
    Padded<T>* expected = nullptr;
    if (slots_[id].compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel)) {
      return fresh;
    }
    delete fresh;  // another thread (an inherited lease) won the install
    return expected;
  }

  std::atomic<Padded<T>*> slots_[ThreadRegistry::kMaxThreads] = {};
};

}  // namespace medley::util

#pragma once
// Dense thread-id assignment.
//
// Medley, the EBR reclaimer, and the Montage epoch system all keep
// per-thread slots in fixed arrays indexed by a small dense id. Ids are
// leased: a thread acquires the lowest free id on first use and returns it
// at thread exit, so long-running programs that churn threads (tests do!)
// never exhaust the table.

#include <cstdint>

namespace medley::util {

class ThreadRegistry {
 public:
  /// Upper bound on simultaneously registered threads.
  static constexpr int kMaxThreads = 256;

  /// Dense id of the calling thread, assigning one on first call.
  static int tid();

  /// Number of ids ever handed out (high-water mark); callers use this to
  /// bound scans over per-thread arrays.
  static int max_tid();

  /// Test hook: release the calling thread's id immediately (normally done
  /// by a thread_local destructor at thread exit).
  static void release_current();
};

}  // namespace medley::util

#include "smr/ebr.hpp"

namespace medley::smr {

EBR& EBR::instance() {
  static EBR ebr;
  return ebr;
}

EBR::ThreadSlot& EBR::my_slot() {
  return *slots_[util::ThreadRegistry::tid()];
}

void EBR::enter() {
  ThreadSlot& s = my_slot();
  if (s.nesting++ == 0) {
    // The reservation must be globally visible before any subsequent load
    // of shared structure memory, hence seq_cst (a release store could be
    // reordered after the traversal's loads).
    s.reservation.store(global_epoch_.load(std::memory_order_relaxed),
                        std::memory_order_seq_cst);
  }
}

void EBR::exit() {
  ThreadSlot& s = my_slot();
  if (--s.nesting == 0) {
    s.reservation.store(kQuiescent, std::memory_order_release);
  }
}

EBR::Guard::Guard() { EBR::instance().enter(); }
EBR::Guard::~Guard() { EBR::instance().exit(); }

void EBR::retire(void* p, void (*deleter)(void*)) {
  ThreadSlot& s = my_slot();
  s.limbo.push_back(
      {p, deleter, global_epoch_.load(std::memory_order_acquire)});
  if (++s.retire_count >= kCollectPeriod) {
    s.retire_count = 0;
    collect();
  }
}

bool EBR::try_advance() {
  const std::uint64_t cur = global_epoch_.load(std::memory_order_acquire);
  const int n = util::ThreadRegistry::max_tid();
  for (int i = 0; i < n; i++) {
    const std::uint64_t r =
        slots_[i]->reservation.load(std::memory_order_acquire);
    if (r != kQuiescent && r < cur) return false;  // straggler pins cur-1
  }
  std::uint64_t expected = cur;
  global_epoch_.compare_exchange_strong(expected, cur + 1,
                                        std::memory_order_acq_rel);
  return true;  // someone advanced (us or a peer)
}

void EBR::sweep(ThreadSlot& slot) {
  const std::uint64_t cur = global_epoch_.load(std::memory_order_acquire);
  auto& limbo = slot.limbo;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < limbo.size(); i++) {
    if (limbo[i].epoch + 2 <= cur) {
      limbo[i].deleter(limbo[i].ptr);
    } else {
      limbo[kept++] = limbo[i];
    }
  }
  limbo.resize(kept);
}

void EBR::collect() {
  try_advance();
  sweep(my_slot());
}

void EBR::drain() {
  // Two successful advances guarantee everything currently in limbo ages out
  // (provided no other thread is pinned, which is the caller's contract).
  for (int i = 0; i < 4 && !my_slot().limbo.empty(); i++) collect();
}

std::size_t EBR::limbo_size() const {
  return const_cast<EBR*>(this)->my_slot().limbo.size();
}

}  // namespace medley::smr

#pragma once
// Epoch-based safe memory reclamation (EBR), the SMR scheme the paper's
// Composable base class builds on (Sec. 3.1, citing Fraser / Hart et al. /
// RCU).
//
// Protocol: readers pin the global epoch for the duration of a critical
// region (one data structure operation, or one whole Medley transaction —
// see note below). retire(p) tags p with the epoch current at retirement;
// p is freed once the global epoch has advanced by 2, which guarantees every
// thread that could have held a reference has since passed through a
// quiescent state.
//
// Transactional pinning: a Medley transaction keeps CASObj* addresses of
// *other threads' nodes* in its read/write sets between operations, and its
// finalization code performs guarded 128-bit CASes on them. The TxManager
// therefore holds one Guard across the whole transaction; per-operation
// guards (OpStarter) simply nest inside it. This is what makes a descriptor
// that has been force-aborted by a peer still safe to uninstall lazily.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace medley::smr {

class EBR {
 public:
  static constexpr std::uint64_t kQuiescent = ~0ULL;
  /// Retires between collection attempts (per thread).
  static constexpr int kCollectPeriod = 64;

  static EBR& instance();

  /// RAII epoch pin. Nestable; only the outermost pin publishes/retracts
  /// the reservation.
  class Guard {
   public:
    Guard();
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  /// Defer destruction of `p` (via `deleter(p)`) for two grace periods.
  void retire(void* p, void (*deleter)(void*));

  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// Try to advance the epoch and free everything old enough. Called
  /// automatically every kCollectPeriod retires; tests call it directly.
  void collect();

  /// Drain: advance repeatedly until the calling thread's limbo list is
  /// empty (requires no other thread pinned). Test/teardown helper.
  void drain();

  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  /// Outstanding retired-but-unfreed blocks for the calling thread.
  std::size_t limbo_size() const;

 private:
  EBR() = default;

  struct LimboItem {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct ThreadSlot {
    std::atomic<std::uint64_t> reservation{kQuiescent};
    int nesting{0};
    int retire_count{0};
    std::vector<LimboItem> limbo;
  };

  void enter();
  void exit();
  bool try_advance();
  void sweep(ThreadSlot& slot);

  ThreadSlot& my_slot();

  std::atomic<std::uint64_t> global_epoch_{2};  // start >0 so epoch-2 is valid
  util::Padded<ThreadSlot> slots_[util::ThreadRegistry::kMaxThreads];

  friend class Guard;
};

}  // namespace medley::smr

#pragma once
// Read set and write set of a transaction descriptor (paper Fig. 4).
//
// These differ from the paper's `map<...>` sketch in two load-bearing ways
// (both discussed in DESIGN.md §5):
//
//  1. Entries are *serial-tagged*. The owner "clears" its sets at txBegin
//     simply by bumping the descriptor serial; a helper that races with the
//     owner's next incarnation skips entries whose tag does not match the
//     status snapshot it is finalizing. Combined with the per-entry seqlock
//     below, a stale helper can never act on a newer transaction's entry —
//     this closes the descriptor-reuse race left open by the pseudocode's
//     `uninstall(status.load())`.
//
//  2. The read set is append-only rather than last-write-wins. If one
//     transaction reads the same location twice and observes two different
//     committed values, *both* entries are validated at commit and the
//     transaction aborts, as strict serializability requires (an overwrite
//     map would validate only the latest observation).
//
// Concurrency contract: only the owner writes entries; helpers read them
// concurrently. Every field is a relaxed atomic and each entry is published
// by a release-store of its serial tag; readers use an acquire/re-check
// (seqlock) pattern via `snapshot()`.

#include <atomic>
#include <cstdint>

#include "core/cas_cell.hpp"

namespace medley::core {

/// One tracked critical load: the cell, the {value, counter} pair observed.
struct ReadEntry {
  std::atomic<CASCell*> addr{nullptr};
  std::atomic<std::uint64_t> val{0};
  std::atomic<std::uint64_t> cnt{0};
  std::atomic<std::uint64_t> serial{0};  // publication tag; 0 = invalid
};

/// One installed (or about-to-install) critical CAS.
struct WriteEntry {
  std::atomic<CASCell*> addr{nullptr};
  std::atomic<std::uint64_t> old_val{0};
  std::atomic<std::uint64_t> cnt{0};  // counter the install CAS expects
  std::atomic<std::uint64_t> new_val{0};
  std::atomic<std::uint64_t> serial{0};  // publication tag; 0 = invalid
};

struct ReadSnapshot {
  CASCell* addr;
  std::uint64_t val, cnt;
};

struct WriteSnapshot {
  CASCell* addr;
  std::uint64_t old_val, cnt, new_val;
};

/// Seqlock-style consistent read of one entry for serial `ser`.
/// Returns false if the entry is torn, stale, or from another incarnation.
inline bool snapshot(const ReadEntry& e, std::uint64_t ser,
                     ReadSnapshot& out) {
  if (e.serial.load(std::memory_order_acquire) != ser) return false;
  out.addr = e.addr.load(std::memory_order_relaxed);
  out.val = e.val.load(std::memory_order_relaxed);
  out.cnt = e.cnt.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return e.serial.load(std::memory_order_relaxed) == ser && out.addr;
}

inline bool snapshot(const WriteEntry& e, std::uint64_t ser,
                     WriteSnapshot& out) {
  if (e.serial.load(std::memory_order_acquire) != ser) return false;
  out.addr = e.addr.load(std::memory_order_relaxed);
  out.old_val = e.old_val.load(std::memory_order_relaxed);
  out.cnt = e.cnt.load(std::memory_order_relaxed);
  out.new_val = e.new_val.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return e.serial.load(std::memory_order_relaxed) == ser && out.addr;
}

template <typename Entry, int Capacity>
class WordSet {
 public:
  static constexpr int kCapacity = Capacity;

  /// Owner: logical clear (entries of older serials become invisible).
  void reset() { count_.store(0, std::memory_order_relaxed); }

  int count() const { return count_.load(std::memory_order_acquire); }

  Entry& at(int i) { return entries_[i]; }
  const Entry& at(int i) const { return entries_[i]; }

  /// Owner: claim the next slot; returns nullptr when full (the caller
  /// aborts the transaction with a capacity-abort).
  Entry* claim() {
    const int n = count_.load(std::memory_order_relaxed);
    if (n >= Capacity) return nullptr;
    Entry* e = &entries_[n];
    // Invalidate before refilling so a racing stale helper's seqlock fails.
    e->serial.store(0, std::memory_order_relaxed);
    return e;
  }

  /// Owner: publish the most recently claimed slot.
  void publish(Entry* e, std::uint64_t ser) {
    e->serial.store(ser, std::memory_order_release);
    count_.store(count_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
  }

 private:
  std::atomic<int> count_{0};
  Entry entries_[Capacity];
};

}  // namespace medley::core

#pragma once
// FlatCombiner: publication-list combining for group-commit batching
// (ROADMAP "flat-combining hot-spot amortization"; the technique of
// Hendler/Incze/Shavit/Tzafrir's flat combining, shaped here around the
// NBTC commit protocol instead of a sequential object).
//
// Why it exists: every Medley transaction pays one descriptor publication
// and one commit-point status CAS, and every store mutation additionally
// serializes on its shard's feed tail (one MSQueue tail CAS per op —
// bench/bench_feed_tail.cpp measures that cost directly). Under a zipf
// head, those per-transaction costs plus the abort/retry churn of
// optimistic validation dominate useful work. "On the Cost of Concurrency
// in Transactional Memory" (Ravi) formalizes the way out this header
// takes: serialize the CONFLICTING ops through one combiner and pay the
// commit protocol once per batch —
//
//   * threads publish intended ops into cache-line-padded publication
//     slots (one CAS claim + one release store each; no shared tail);
//   * whoever acquires the combiner lock drains up to max_batch pending
//     slots and executes them as ONE transaction of the caller-supplied
//     batch executor: one descriptor, one commit CAS, all feed enqueues
//     inside one commit — descriptor and commit-CAS traffic amortize N×,
//     and the batch's ops can never conflict with each other (they share
//     the transaction);
//   * losers spin briefly, then yield, watching only their OWN slot
//     (combiner "handoff": a waiter whose result was produced by another
//     thread's batch never takes the lock at all).
//
// The combiner is generic over the request/result types: the store glue
// (basic_store.hpp) instantiates it with its put/del/rmw op records and
// supplies a batch executor that runs the whole batch inside one store
// transaction. Publication slots double as the completion cells of the
// async submit path (BasicMedleyStore::async_put / TxExecutor::submit's
// TxFuture): an op can be published without waiting and harvested later,
// which is how callers pipeline instead of blocking per op.
//
// Liveness: a publisher that cannot find a free slot helps combine (sync
// submitters always release their slot on return, so slots cycle as long
// as batches keep executing). Async publishers use try_publish, which
// never blocks: when every slot is parked under an unharvested future the
// caller falls back to eager execution (the store does), so pipeline depth
// is bounded by the slot count, never deadlocked.
//
// This header depends only on util/ and obs/trace.hpp (itself util-only),
// mirroring tx_exec.hpp, so core and store layers can both use it.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/thread_registry.hpp"

namespace medley::core {

/// What the combiner does with the lock after executing one batch.
enum class CombinerHandoff : std::uint8_t {
  /// Keep the lock and keep draining while ops are pending (classic flat
  /// combining: maximum amortization, combiner-biased latency).
  kSticky = 0,
  /// Release after every batch so the combiner role rotates among the
  /// waiters (fairer tail latency under sustained churn; slightly more
  /// lock traffic).
  kRotate = 1,
};

/// Hard ceiling on ops combined into one transaction. Every batched store
/// op costs a handful of descriptor write entries (primary put + secondary
/// remove/insert + feed enqueue), so a batch far larger than this would
/// press against Desc::kWriteCap and Capacity-abort deterministically —
/// an abort the default policy retries forever (the same spin
/// kMaxFeedDrainPerTx guards against on the drain side). Desc::kWriteCap
/// is 1024; 64 ops × ~6 writes stays comfortably under half of it.
inline constexpr std::size_t kMaxCombinedBatch = 64;

/// Ceiling on publication slots (a memory bound, not a concurrency limit:
/// slots beyond the thread count only add async pipeline depth).
inline constexpr std::size_t kMaxCombinerSlots = 1024;

/// The StoreConfig::combining knob block (validated by
/// medley::store::validated(): zero slots / zero max_batch throw, over-cap
/// values clamp, config() reports the effective values).
struct CombinerConfig {
  bool enabled = false;
  /// Publication slots (≈ concurrent publishers + async pipeline depth).
  std::size_t slots = 64;
  /// Ops combined into one transaction (clamped to kMaxCombinedBatch and
  /// to `slots` — a batch can never hold more than every slot).
  std::size_t max_batch = 32;
  CombinerHandoff handoff = CombinerHandoff::kSticky;
};

template <typename Req, typename Res>
class FlatCombiner {
 public:
  /// One published operation, as the batch executor sees it: the request,
  /// the result cell it must fill, and a per-op error it may set for an op
  /// it had to skip (e.g. a user callback that threw). `err` is cleared
  /// before every batch execution so a retried transaction reports only
  /// its final outcome.
  struct Op {
    Req req{};
    Res res{};
    std::exception_ptr err;
  };

  /// A publication slot: the waiter's handle from publish to consume.
  /// Padded to a cache line so waiters spinning on their own slot never
  /// false-share with their neighbors.
  struct alignas(util::kCacheLine) Slot {
    std::atomic<std::uint32_t> state{0};
    Op op;
  };

  FlatCombiner(std::size_t nslots, std::size_t max_batch,
               CombinerHandoff handoff, obs::TraceRing* trace = nullptr)
      : nslots_(nslots), max_batch_(max_batch), handoff_(handoff),
        trace_(trace), slots_(nslots) {
    batch_.reserve(max_batch_);
  }

  FlatCombiner(const FlatCombiner&) = delete;
  FlatCombiner& operator=(const FlatCombiner&) = delete;

  std::size_t slot_count() const { return nslots_; }
  std::size_t max_batch() const { return max_batch_; }
  CombinerHandoff handoff() const { return handoff_; }

  /// Batches executed / ops combined so far (relaxed monotone counters;
  /// the store exposes them as the combined-ops observables).
  std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t combined_ops() const {
    return combined_ops_.load(std::memory_order_relaxed);
  }

  /// Publish `req` and wait until some combiner (possibly this thread)
  /// executed it; returns the result or rethrows the batch's error.
  /// `exec` is the batch executor: void(std::vector<Slot*>&) — run every
  /// slot's op as one transaction, filling op.res (or op.err). An
  /// exception out of `exec` fails the WHOLE batch (all-or-nothing: the
  /// transaction aborted, nothing committed) and is rethrown to every
  /// waiter.
  template <typename ExecBatch>
  Res submit(Req req, ExecBatch&& exec) {
    Slot* s = publish(std::move(req), exec);
    wait(s, exec);
    return consume(s);
  }

  // ---- async surface (the store's TxFuture plumbing) ----------------------

  /// Publish without waiting; nullptr when no slot is free (every slot
  /// claimed by a concurrent publisher or parked under an unharvested
  /// future) — the caller falls back to eager execution. Never blocks.
  /// `req` is moved from ONLY on success: a nullptr return leaves the
  /// caller's request untouched, so it can be retried or executed eagerly
  /// (the store's slot-exhaustion fallback depends on this).
  Slot* try_publish(Req&& req) {
    Slot* s = try_claim();
    if (s == nullptr) return nullptr;
    s->op.req = std::move(req);
    s->state.store(kPending, std::memory_order_release);
    return s;
  }

  /// True once `s` has been executed (result or error is readable).
  bool done(const Slot* s) const {
    return s->state.load(std::memory_order_acquire) == kDone;
  }

  /// Non-blocking progress: become the combiner for one drain if the lock
  /// is free. The poll path of an async future — a lone thread polling
  /// ready() must be able to complete its own op when no other combiner
  /// ever shows up.
  template <typename ExecBatch>
  void help(ExecBatch&& exec) {
    if (try_lock()) {
      combine(nullptr, exec);
      unlock();
    }
  }

  /// Block (helping: become the combiner whenever the lock is free) until
  /// `s` is done.
  template <typename ExecBatch>
  void wait(Slot* s, ExecBatch&& exec) {
    std::uint64_t spins = 0;
    bool combined_myself = false;
    for (;;) {
      const std::uint32_t st = s->state.load(std::memory_order_acquire);
      if (st == kDone) {
        // Another thread's batch carried our op over the line: the
        // combiner handed us a finished result without us ever taking
        // the lock. aux = how many pacing rounds we waited for it.
        if (!combined_myself && trace_ != nullptr) {
          trace_->emit(obs::TraceEvent::kCombinerHandoff, 0,
                       static_cast<std::uint32_t>(spins));
        }
        return;
      }
      if (try_lock()) {
        if (s->state.load(std::memory_order_acquire) != kDone) {
          combine(s, exec);
          combined_myself = true;
        }
        unlock();
        continue;  // our slot is kDone now (combine always includes it)
      }
      pace(spins++);
    }
  }

  /// Take the result of a done slot, free it, rethrow its error.
  Res consume(Slot* s) {
    std::exception_ptr err = std::move(s->op.err);
    s->op.err = nullptr;
    Res out = std::move(s->op.res);
    s->op.res = Res{};
    s->op.req = Req{};
    s->state.store(kFree, std::memory_order_release);
    if (err) std::rethrow_exception(err);
    return out;
  }

 private:
  enum : std::uint32_t { kFree = 0, kClaimed, kPending, kDone };

  /// Publish with a blocking claim: scan from a tid-derived start; if every
  /// slot is taken, help drain (sync waiters free slots on return) and
  /// rescan. Safe to loop on try_publish: a failed attempt never moves
  /// from `req`, so every retry publishes the original request.
  template <typename ExecBatch>
  Slot* publish(Req req, ExecBatch&& exec) {
    for (;;) {
      if (Slot* s = try_publish(std::move(req))) return s;
      // All slots busy: make progress for whoever holds them.
      if (try_lock()) {
        combine(nullptr, exec);
        unlock();
      } else {
        std::this_thread::yield();
      }
    }
  }

  Slot* try_claim() {
    const std::size_t start =
        static_cast<std::size_t>(util::ThreadRegistry::tid());
    for (std::size_t i = 0; i < nslots_; i++) {
      Slot& s = slots_[(start + i) % nslots_];
      std::uint32_t expect = kFree;
      if (s.state.compare_exchange_strong(expect, kClaimed,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return &s;
      }
    }
    return nullptr;
  }

  bool try_lock() {
    return lock_->load(std::memory_order_relaxed) == 0 &&
           lock_->exchange(1, std::memory_order_acquire) == 0;
  }
  void unlock() { lock_->store(0, std::memory_order_release); }

  /// Lock-holding drain: gather up to max_batch pending ops (always
  /// including `mine`, when given and pending), run them through `exec` as
  /// one transaction, post results. kSticky keeps draining while ops keep
  /// arriving; kRotate stops after one batch so the role rotates.
  template <typename ExecBatch>
  void combine(Slot* mine, ExecBatch&& exec) {
    do {
      batch_.clear();
      if (mine != nullptr &&
          mine->state.load(std::memory_order_acquire) == kPending) {
        batch_.push_back(mine);
      }
      for (std::size_t i = 0; i < nslots_ && batch_.size() < max_batch_;
           i++) {
        Slot& s = slots_[i];
        if (&s == mine) continue;
        if (s.state.load(std::memory_order_acquire) == kPending) {
          batch_.push_back(&s);
        }
      }
      if (batch_.empty()) return;
      std::exception_ptr batch_err;
      try {
        for (Slot* s : batch_) s->op.err = nullptr;
        exec(batch_);
      } catch (...) {
        // The batch transaction did not commit: every op failed together
        // (all-or-nothing), and every waiter learns why.
        batch_err = std::current_exception();
      }
      for (Slot* s : batch_) {
        if (batch_err) s->op.err = batch_err;
        s->state.store(kDone, std::memory_order_release);
      }
      batches_.fetch_add(1, std::memory_order_relaxed);
      combined_ops_.fetch_add(batch_.size(), std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->emit(obs::TraceEvent::kCombineBatch, 0,
                     static_cast<std::uint32_t>(batch_.size()));
      }
      mine = nullptr;  // mine is done after the first round
    } while (handoff_ == CombinerHandoff::kSticky);
  }

  /// Waiter pacing: short escalating spin, then yield — the same
  /// oversubscription discipline as the contention managers (on a box
  /// with fewer cores than threads the combiner cannot run unless the
  /// waiters give up their quantum).
  static void pace(std::uint64_t spins) {
    if (spins >= 6) {
      std::this_thread::yield();
      return;
    }
    const std::uint64_t pauses = std::uint64_t{4} << spins;  // 4..128
    for (std::uint64_t i = 0; i < pauses; i++) util::cpu_relax();
  }

  const std::size_t nslots_;
  const std::size_t max_batch_;
  const CombinerHandoff handoff_;
  obs::TraceRing* trace_;
  util::Padded<std::atomic<std::uint32_t>> lock_{};
  std::vector<Slot> slots_;
  std::vector<Slot*> batch_;  // combiner-lock-protected scratch
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> combined_ops_{0};
};

}  // namespace medley::core

#pragma once
// Descriptor status word (paper Fig. 4):
//   bits 63..50 : thread id        (14 bits)
//   bits 49..2  : serial number    (48 bits)
//   bits  1..0  : status           (InPrep | InProg | Committed | Aborted)
//
// A descriptor is reused across transactions of its owner thread; the
// serial number distinguishes incarnations, so a helper holding a stale
// status snapshot can detect that the transaction it meant to finalize is
// long gone (its status CAS fails and the incarnation check mismatches).

#include <cstdint>

namespace medley::core {

enum class TxStatus : std::uint64_t {
  InPrep = 0,
  InProg = 1,
  Committed = 2,
  Aborted = 3,
};

namespace status_word {

inline constexpr std::uint64_t kStatusMask = 3;

inline TxStatus status(std::uint64_t d) noexcept {
  return static_cast<TxStatus>(d & kStatusMask);
}

/// tid and serial together: identifies one transaction incarnation.
inline std::uint64_t incarnation(std::uint64_t d) noexcept {
  return d & ~kStatusMask;
}

inline std::uint64_t serial(std::uint64_t d) noexcept {
  return (d >> 2) & ((1ULL << 48) - 1);
}

inline std::uint64_t make(std::uint64_t tid, std::uint64_t serial,
                          TxStatus s) noexcept {
  return (tid << 50) | ((serial & ((1ULL << 48) - 1)) << 2) |
         static_cast<std::uint64_t>(s);
}

/// Next incarnation: serial+1, status reset to InPrep (paper Fig. 5 line 3).
inline std::uint64_t next_incarnation(std::uint64_t d) noexcept {
  return incarnation(d) + 4;
}

}  // namespace status_word
}  // namespace medley::core

#pragma once
// CASCell: the untyped 128-bit {word, counter} unit behind CASObj<T>
// (paper Fig. 4: `struct CASObj { atomic<uint128> val_cnt; }`).
//
// Invariant (Sec. 3.2): the counter is *odd* while the word holds a pointer
// to a transaction descriptor (a critical CAS "installed" itself) and *even*
// while the word holds a real value. Every install bumps the counter by 1,
// every uninstall by 1, and every plain (non-speculative) CAS by 2 — so the
// counter is strictly monotonic and a given {word, counter} pair identifies
// one unique instant in the cell's history. That uniqueness is what makes
// read-set validation and guarded uninstall CASes ABA-free.

#include <cstdint>

#include "util/atomic128.hpp"

namespace medley::core {

class Desc;  // defined in descriptor.hpp

struct CASCell {
  util::Atomic128 vc;  // {lo = value or Desc*, hi = counter}

  CASCell() = default;
  explicit CASCell(std::uint64_t initial) : vc(util::U128{initial, 0}) {}

  static bool holds_desc(const util::U128& u) noexcept { return u.hi & 1; }

  static Desc* desc_of(const util::U128& u) noexcept {
    return reinterpret_cast<Desc*>(u.lo);
  }

  static std::uint64_t encode_desc(Desc* d) noexcept {
    return reinterpret_cast<std::uint64_t>(d);
  }
};

}  // namespace medley::core

#pragma once
// Composable: base class of all transactional data structures (paper
// Fig. 1). Provides the transaction-aware allocation / reclamation /
// read-tracking / cleanup-deferral services the NBTC transform needs.
//
// All services degrade gracefully outside a transaction: addToReadSet is a
// no-op, addToCleanups runs the closure immediately, tNew/tDelete are plain
// new/delete, and tRetire goes straight to epoch-based reclamation. This is
// what lets one source transform serve both transactional and standalone
// uses (the TxOff configuration of Fig. 10 measures exactly this path).

#include <functional>
#include <utility>

#include "core/cas_obj.hpp"
#include "core/tx_manager.hpp"
#include "smr/ebr.hpp"

namespace medley::core {

class Composable {
 public:
  explicit Composable(TxManager* manager) : mgr(manager) {}
  virtual ~Composable() = default;

  /// Transaction metadata manager shared among all Composables that can
  /// appear in one transaction (paper Fig. 1 line 13).
  TxManager* mgr;

  using OpStarter = core::OpStarter;

 protected:
  /// Register the linearizing load of a read(-only) operation: the cell and
  /// the value the operation acted on. The {value, counter} pair recorded
  /// at load time (kept in the per-thread recent-load ring) joins the read
  /// set for commit-time validation.
  template <typename T>
  void addToReadSet(CASObj<T>* obj, T val) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c == nullptr) return;
    const std::uint64_t expected = CASObj<T>::encode(val);
    if (c->read_only) {
      // Read-only mode: log the {value, counter} pair locally instead of
      // in the (never-published) descriptor. Same ring-then-reread logic
      // as below, minus the own-descriptor clause — a read-only
      // transaction has no installed writes to overwrite.
      std::uint64_t lo, hi;
      if (const auto* r = c->find_recent(obj->cell(), expected)) {
        lo = r->raw_lo;
        hi = r->raw_hi;
      } else {
        util::U128 u = obj->cell()->vc.load();
        if (!CASCell::holds_desc(u) && u.lo == expected) {
          lo = u.lo;
          hi = u.hi;
        } else {
          lo = expected;
          hi = 1;  // odd counter never matches a committed value state
        }
      }
      c->ro_reads.push_back({obj->cell(), lo, hi});
      return;
    }
    std::uint64_t lo, hi;
    if (const auto* r = c->find_recent(obj->cell(), expected)) {
      lo = r->raw_lo;
      hi = r->raw_hi;
    } else {
      // The load aged out of the ring: re-read. If the cell still holds the
      // value the operation returned, the fresh pair is just as good (the
      // value is current *now*, and validation re-checks at commit). If the
      // cell holds *our own* descriptor speculating that value, record the
      // {descriptor, counter} pair — it validates for as long as we remain
      // installed, which is exactly until our own commit. Anything else:
      // poison the entry so commit-time validation fails — the
      // transaction's read is already stale.
      util::U128 u = obj->cell()->vc.load();
      if (!CASCell::holds_desc(u) && u.lo == expected) {
        lo = u.lo;
        hi = u.hi;
      } else if (CASCell::holds_desc(u) && CASCell::desc_of(u) == c->desc) {
        core::WriteEntry* e =
            c->desc->find_write(obj->cell(), c->begin_status);
        if (e != nullptr &&
            e->new_val.load(std::memory_order_relaxed) == expected) {
          lo = u.lo;
          hi = u.hi;
        } else {
          lo = expected;
          hi = 1;
        }
      } else {
        lo = expected;
        hi = 1;  // odd counter never matches a committed value state
      }
    }
    if (!c->desc->record_read(obj->cell(), lo, hi, c->begin_status)) {
      c->mgr->abort_internal(c, AbortReason::Capacity);
    }
  }

  /// addToReadSet for iteration-heavy operations (skiplist range/scan):
  /// skips cells this transaction already tracks in its dedup set, so a
  /// restarted walk (failed help-unlink under contention) does not
  /// re-register its whole footprint — read-set growth is unique links,
  /// not links x passes. Callers engage the mechanism with
  /// seedReadSetDedup() when a walk restarts; an uncontended first pass
  /// uses plain addToReadSet and pays nothing.
  ///
  /// Dropping a duplicate is exactly outcome-preserving, not merely
  /// sound: the earlier entry for the cell stays in the read set for the
  /// rest of the transaction, and cell counters are strictly monotonic, so
  /// at commit either both entries validate (the cell never moved — or
  /// only we moved it, which the own-overwrite clause accepts for both
  /// recorded pairs) or the earlier one already fails and dooms the
  /// transaction with or without the duplicate.
  template <typename T>
  void addToReadSetDedup(CASObj<T>* obj, T val) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c == nullptr) return;
    if (!c->note_dedup_read(obj->cell())) return;  // already registered
    addToReadSet(obj, val);
  }

  /// Seed the transaction's dedup set from every cell its read set
  /// already tracks. O(read set), paid only when a walk restarts; after
  /// this, addToReadSetDedup skips all of them.
  void seedReadSetDedup() {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c == nullptr) return;
    if (c->read_only) {
      for (const auto& r : c->ro_reads) c->dedup_reads.insert(r.cell);
      return;
    }
    c->desc->for_each_read(c->begin_status, [c](CASCell* cell) {
      c->dedup_reads.insert(cell);
    });
  }

  /// Abort the calling thread's transaction immediately (used by boosted
  /// operations for deadlock avoidance). Never returns.
  [[noreturn]] void abortTx(AbortReason r) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    c->mgr->abort_internal(c, r);
  }

  /// Defer post-linearization work (physical unlinks, helping, retirement)
  /// to transaction commit; outside a transaction, run it now.
  void addToCleanups(std::function<void()> f) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c == nullptr) {
      f();
    } else {
      c->cleanups.push_back(std::move(f));
    }
  }

  /// Transactional allocation: the block is reclaimed automatically if the
  /// transaction aborts.
  template <typename T, typename... Args>
  T* tNew(Args&&... args) {
    T* p = new T(std::forward<Args>(args)...);
    if (TxManager::ThreadCtx* c = TxManager::active_ctx()) {
      c->allocs.push_back(
          {p, [](void* q) { delete static_cast<T*>(q); }});
    }
    return p;
  }

  /// Delete a block this operation allocated but never published.
  template <typename T>
  void tDelete(T* p) {
    if (TxManager::ThreadCtx* c = TxManager::active_ctx()) {
      for (std::size_t i = c->allocs.size(); i-- > 0;) {
        if (c->allocs[i].ptr == p) {
          c->allocs.erase(c->allocs.begin() + static_cast<long>(i));
          break;
        }
      }
      // A stale helper may still walk cells inside the block; retire.
      smr::EBR::instance().retire(p);
    } else {
      delete p;
    }
  }

  /// Epoch-based safe retirement of an unlinked node. Inside a transaction
  /// the retirement is deferred to commit (the unlink is speculative until
  /// then); on abort it is discarded.
  template <typename T>
  void tRetire(T* p) {
    if (TxManager::ThreadCtx* c = TxManager::active_ctx()) {
      c->retires.push_back(
          {p, [](void* q) { delete static_cast<T*>(q); }});
    } else {
      smr::EBR::instance().retire(p);
    }
  }

  /// Retirement for *helping* unlinks inside shared traversal code (find /
  /// seek helpers). Exactly one thread's unlink CAS succeeds for a given
  /// node, and that thread retires it. Two cases:
  ///  - the unlink CAS installed speculatively (we are inside a
  ///    transaction's speculation interval): the unlink only becomes real
  ///    if the transaction commits, so retirement rides on the transaction
  ///    (discarded on abort, when the rollback re-links the node);
  ///  - otherwise the unlink already happened for real (the marked node
  ///    belongs to a previously *committed* removal) and the node goes
  ///    straight to EBR regardless of any surrounding transaction's fate.
  /// `spec_interval` after a successful nbtcCAS(..., false, false) is an
  /// exact proxy for which path the CAS took.
  template <typename T>
  void tRetireAtUnlink(T* p) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c != nullptr && c->spec_interval) {
      tRetire(p);
    } else {
      smr::EBR::instance().retire(p);
    }
  }
};

}  // namespace medley::core

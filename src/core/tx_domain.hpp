#pragma once
// TxDomain: the per-thread transaction lifecycle, factored out of TxManager.
//
// A domain owns what is fundamentally *per thread*, not per manager: the
// reusable descriptor (one status word, one read set, one write set) and
// the ThreadCtx holding a transaction's ephemera — the speculation-interval
// flag, the recent-critical-load ring, deferred cleanups/compensations,
// speculative allocations, and deferred retirements. A TxManager is now a
// thin handle over a domain that contributes only what *is* per manager:
// begin/end hooks (txMontage's epoch announcement) and statistics routing.
//
// Why the split: structures registered with different managers can then
// participate in ONE transaction — one descriptor, one commit-point CAS on
// its status word — as long as their managers share a domain. This is what
// lets ShardedMedleyStore give every shard a private TxManager (so
// single-shard traffic never touches another shard's metadata or hooks)
// while cross-shard operations still commit atomically: the MCNS protocol
// (descriptor install / validate / finalize / uninstall) never cared which
// manager a CASObj belonged to, only which descriptor was installed.
//
// Life cycle of one transaction (owner thread):
//   begin(root): new descriptor incarnation, EBR guard pinned, ctx armed,
//                root manager joined (its begin hook fires).
//   ...operations execute; OpStarter joins their managers on first touch
//      (a joined manager's begin hook fires at join, not at begin)...
//   end():      InPrep->InProg, validate reads, commit or abort, uninstall,
//               then cleanups (commit) or compensations + speculative-block
//               retirement (abort); every joined manager's end hook fires
//               with the outcome; commit/abort counters land on the ROOT
//               manager. Aborts surface as TransactionAborted.
//
// Helpers finalize foreign descriptors via Desc::try_finalize; neither the
// domain nor any manager is involved on the helper path.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/descriptor.hpp"
#include "smr/ebr.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"
#include "util/thread_registry.hpp"

namespace medley {
class ContentionManager;  // tx_exec.hpp: retry pacing / priority hooks
}

namespace medley::obs {
class TraceRing;  // obs/trace.hpp: per-thread tx-lifecycle event ring
}

namespace medley::core {

class TxManager;
class TxDomain;

enum class AbortReason : std::uint8_t {
  Conflict,    // a peer aborted us (eager contention management)
  Validation,  // commit-time read validation failed
  Capacity,    // read/write set overflow
  User,        // explicit txAbort()
};

class TransactionAborted : public std::exception {
 public:
  explicit TransactionAborted(AbortReason r) : reason_(r) {}
  AbortReason reason() const noexcept { return reason_; }
  const char* what() const noexcept override {
    switch (reason_) {
      case AbortReason::Conflict: return "transaction aborted: conflict";
      case AbortReason::Validation: return "transaction aborted: validation";
      case AbortReason::Capacity: return "transaction aborted: capacity";
      case AbortReason::User: return "transaction aborted: user";
    }
    return "transaction aborted";
  }

 private:
  AbortReason reason_;
};

/// Thrown when a transaction declared READ-ONLY attempts a write (a
/// critical nbtcCAS, or a boosted lock acquisition — anything that would
/// need the descriptor the read-only mode never published). Deliberately
/// NOT a TransactionAborted: no existing abort handler may swallow it —
/// the one legitimate catcher is TxExecutor::execute_ro, which abandons
/// the read-only attempt (unbilled) and re-runs the body as a full
/// transaction.
class ReadOnlyViolation : public std::logic_error {
 public:
  ReadOnlyViolation()
      : std::logic_error(
            "write attempted inside a read-only Medley transaction") {}
};

/// One deferred block: pointer plus type-erased deleter.
struct TxBlock {
  void* ptr;
  void (*deleter)(void*);
};

/// Flat open-addressing pointer set for per-transaction read-registration
/// dedup (Composable::addToReadSetDedup). Tuned for the scan hot path:
/// no allocation per insert (a contiguous table, grown rarely and kept
/// across transactions) and O(1) clear (a generation stamp instead of
/// touching slots). A std::unordered_set here costs one heap node per
/// link and a bucket sweep per clear — measured 2.6x slower YCSB-E.
class PtrSet {
 public:
  /// O(1): forget all entries by moving to the next generation.
  void reset() {
    gen_++;
    count_ = 0;
  }

  /// True iff p was not yet in the set this generation (and inserts it).
  bool insert(const void* p) {
    if (slots_.empty()) slots_.resize(kInitialSlots);
    if ((count_ + 1) * 2 > slots_.size()) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(p) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {  // empty (this generation)
        s.ptr = p;
        s.gen = gen_;
        count_++;
        return true;
      }
      if (s.ptr == p) return false;
      i = (i + 1) & mask;
    }
  }

  std::size_t size() const { return count_; }

 private:
  struct Slot {
    const void* ptr = nullptr;
    std::uint64_t gen = 0;  // slot live iff gen == set generation
  };
  static constexpr std::size_t kInitialSlots = 1024;  // power of two

  static std::size_t hash(const void* p) {
    return static_cast<std::size_t>(
        util::mix64(reinterpret_cast<std::uintptr_t>(p)));
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.gen != gen_) continue;
      std::size_t i = hash(s.ptr) & mask;
      while (slots_[i].gen == gen_) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::uint64_t gen_ = 1;  // > 0: default slots (gen 0) always read empty
  std::size_t count_ = 0;
};

/// Per-thread transaction context. Public because CASObj<T> (a template)
/// manipulates it inline; treat as library-internal.
struct ThreadCtx {
  TxDomain* domain = nullptr;
  TxManager* mgr = nullptr;  // ROOT manager of the current transaction
  Desc* desc = nullptr;
  std::uint64_t begin_status = 0;  // incarnation at begin
  bool in_tx = false;
  bool spec_interval = false;

  // READ-ONLY transaction mode (TxDomain::begin_ro): no descriptor is
  // published and no read-set entries are recorded — reads are logged
  // locally in `ro_reads` and validated exactly once at end_ro (the TDSL
  // read-only fast path, tdsl_skiplist.hpp do_commit). While this flag is
  // set, `desc` is STALE (left over from the previous full transaction)
  // and must not be consulted.
  bool read_only = false;

  /// One logged read of the read-only mode: the raw {value, counter} pair
  /// observed. Counters are strictly monotonic, so the pair still being
  /// in place at validation proves the cell never changed in between.
  struct RORead {
    CASCell* cell;
    std::uint64_t lo, hi;
  };
  std::vector<RORead> ro_reads;

  // Contention manager of the TxExecutor call currently driving this
  // thread (null when transactions are run by hand). Set around the whole
  // execute() call — NOT cleared by begin() — so intra-attempt hooks
  // (boostLock's semantic-lock wait) see it on every attempt.
  medley::ContentionManager* cm = nullptr;

  // Trace ring of the TxExecutor call currently driving this thread (null
  // when untraced). Set alongside `cm` for the same reason: intra-attempt
  // hooks (CASObj conflict arbitration, boostLock's semantic-lock wait)
  // emit lifecycle events into the same per-thread ring the executor uses.
  medley::obs::TraceRing* trace = nullptr;

  // Managers participating in the current transaction, root first. A
  // manager joins (once) when the first operation of a structure it owns
  // runs inside the transaction; all joined end hooks fire at finish.
  std::vector<TxManager*> joined;

  // Ring of recent critical loads: cell, raw {lo,hi} observed, and the
  // value the load returned (differs from lo when the load hit our own
  // installed descriptor and returned the speculated value).
  static constexpr int kRingSize = 16;
  struct RecentLoad {
    CASCell* cell = nullptr;
    std::uint64_t raw_lo = 0, raw_hi = 0, returned = 0;
  };
  RecentLoad ring[kRingSize];
  int ring_pos = 0;

  std::vector<std::function<void()>> cleanups;
  std::vector<std::function<void()>> compensations;  // run (reversed) on abort
  std::vector<TxBlock> allocs;   // tNew'ed; deleted (via EBR) on abort
  std::vector<TxBlock> retires;  // tRetire'd; passed to EBR on commit
  std::optional<smr::EBR::Guard> guard;

  // Cells already registered through the deduplicating read-set interface
  // (Composable::addToReadSetDedup) in this transaction. Populated only by
  // iteration-heavy operations (skiplist range/scan); point transactions
  // pay exactly one generation bump at txBegin.
  PtrSet dedup_reads;

  void note_load(CASCell* cell, std::uint64_t raw_lo, std::uint64_t raw_hi,
                 std::uint64_t returned) {
    ring[ring_pos] = {cell, raw_lo, raw_hi, returned};
    ring_pos = (ring_pos + 1) % kRingSize;
  }

  const RecentLoad* find_recent(CASCell* cell, std::uint64_t returned) const {
    for (int i = 0; i < kRingSize; i++) {
      int idx = (ring_pos - 1 - i + 2 * kRingSize) % kRingSize;
      if (ring[idx].cell == cell && ring[idx].returned == returned)
        return &ring[idx];
    }
    return nullptr;
  }

  /// First dedup-tracked registration of `cell` this transaction?
  bool note_dedup_read(const CASCell* cell) {
    return dedup_reads.insert(cell);
  }
};

/// The shared transaction substrate. Every TxManager references exactly one
/// domain; managers that may appear in the same transaction must share one
/// (TxManager's default constructor makes a private domain, preserving the
/// one-manager-per-transaction behavior; ShardedMedleyStore hands all its
/// shard managers one shared domain).
class TxDomain {
 public:
  TxDomain();
  ~TxDomain();
  TxDomain(const TxDomain&) = delete;
  TxDomain& operator=(const TxDomain&) = delete;

  /// The calling thread's context if it is inside *any* domain's
  /// transaction, else nullptr. Used by CASObj to decide instrumentation.
  static ThreadCtx* active_ctx() { return tl_active_; }

  /// Optional opacity support (paper Sec. 3.1): throw now if any tracked
  /// read no longer holds, instead of waiting for commit.
  void validateReads();

  /// Conflict arbitration for the eager-resolution path (CASObj nbtcLoad /
  /// nbtcCAS meeting a foreign installed descriptor): should the calling
  /// transaction (`mine`) abort ITSELF instead of finalizing — i.e.
  /// aborting — the installed one (`other`)?
  ///
  /// True only when BOTH descriptors carry a contention-management
  /// priority (KarmaCM timestamps: smaller = older), `other` is strictly
  /// older, and `other` is still InPrep. An InProg peer is help-committed
  /// by try_finalize (productive either way), and a finished one merely
  /// needs uninstalling — yielding there would be pure loss. Unprioritized
  /// transactions keep the paper's pure eager behavior, so mixing managed
  /// and unmanaged call sites degrades gracefully instead of starving the
  /// unmanaged side.
  static bool arbitration_yields(const Desc* mine, const Desc* other) {
    const std::uint64_t op = other->priority();
    if (op == 0) return false;
    const std::uint64_t mp = mine->priority();
    if (mp == 0 || mp <= op) return false;  // unmanaged, older, or self
    return status_word::status(other->status()) == TxStatus::InPrep;
  }

  /// Is the calling thread inside a transaction of this domain?
  bool in_tx() const;

  /// This thread's descriptor (tests & internal use).
  Desc* my_desc();

  ThreadCtx* my_ctx();

 private:
  // Lifecycle entry points are reached through a TxManager (txBegin/txEnd
  // pair on the root manager) or the NBTC instrumentation — not called
  // directly by user code, which would bypass root pairing and billing.
  friend class TxManager;
  friend class Composable;
  template <typename T>
  friend class CASObj;
  friend struct OpStarter;

  /// Start a transaction rooted at `root` on the calling thread. No nesting.
  void begin(TxManager* root);

  /// Attempt to commit the calling thread's transaction; throws
  /// TransactionAborted on failure.
  void end();

  /// Start a READ-ONLY transaction rooted at `root`: the ctx is armed and
  /// the EBR guard pinned exactly as begin(), but the descriptor is never
  /// begun or published — reads log {value, counter} pairs into
  /// ThreadCtx::ro_reads instead of the descriptor's read set. No nesting.
  void begin_ro(TxManager* root);

  /// Validate-once commit of the read-only transaction: every logged pair
  /// must still be in place (counters are monotonic, so equality proves
  /// the cell never changed since its load — all intervals overlap at the
  /// moment validation starts, which is the snapshot's serialization
  /// point). Throws TransactionAborted(Validation) on a torn snapshot.
  void end_ro();

  /// Close an open read-only transaction without billing a commit or an
  /// abort: the executor's write-fallback seam (a body that turned out to
  /// write was mis-declared, not aborted). No-op when the calling thread
  /// has no open read-only transaction of this domain.
  void abandon_ro();

  /// Abort the given (active, owned-by-caller) transaction context.
  [[noreturn]] void abort(ThreadCtx* c, AbortReason r);

  /// Throw if a peer already aborted the running transaction (cheap
  /// self-status check; keeps doomed transactions from wasting work).
  static void self_abort_check(ThreadCtx* c);

  /// Enlist `mgr` in the calling thread's current transaction (idempotent;
  /// fires the manager's begin hook on first join). Throws std::logic_error
  /// if `mgr` belongs to a different domain — structures whose managers do
  /// not share a domain cannot be composed into one transaction.
  void join(ThreadCtx* c, TxManager* mgr);

  void finish_commit(ThreadCtx* c);

  /// Tear down a read-only ctx (compensations reversed, speculative
  /// allocations to EBR, end hooks fire with `committed`); bills nothing.
  void close_ro(ThreadCtx* c, bool committed);

  /// Is every pair logged by the read-only transaction still in place?
  static bool ro_log_valid(ThreadCtx* c);

  std::unique_ptr<ThreadCtx> ctxs_[util::ThreadRegistry::kMaxThreads];
  std::unique_ptr<Desc> descs_[util::ThreadRegistry::kMaxThreads];

  static thread_local ThreadCtx* tl_active_;
};

}  // namespace medley::core

#pragma once
// TxManager: the per-manager face of Medley transactions (paper Fig. 1,
// Figs. 5-6). Since the TxDomain refactor, the per-thread substance of a
// transaction — the descriptor (status word + read/write sets) and the
// ThreadCtx ephemera — lives in tx_domain.hpp; a TxManager contributes
// exactly the things that ARE per manager:
//
//   - lifecycle entry points (txBegin/txEnd/txAbort) that delegate to the
//     domain with `this` as the transaction's root manager;
//   - begin/end hooks (txMontage announces its epoch through these);
//   - statistics: commits and aborts-by-reason are attributed to the root
//     manager of each transaction, in per-thread slots (util::PerThreadSlots:
//     lazily allocated, leased-tid indexed, cumulative across thread churn).
//
// Managers constructed with the default constructor own a private domain,
// which reproduces the historical one-manager-per-transaction behavior
// exactly. Managers constructed over a shared domain (ShardedMedleyStore
// gives one to every shard) can co-occur in a single transaction: whichever
// manager txBegin was called on becomes the root; the others join on the
// first operation of a structure they own (OpStarter below), which fires
// their begin hooks and enrolls their end hooks. The commit point is still
// ONE CAS on the root thread-descriptor's status word — multi-manager
// changes who gets notified and billed, never the MCNS protocol itself.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/tx_domain.hpp"
#include "util/per_thread.hpp"
#include "util/thread_registry.hpp"

namespace medley::core {

class TxManager {
 public:
  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t conflict_aborts = 0;
    std::uint64_t validation_aborts = 0;
    std::uint64_t capacity_aborts = 0;
    std::uint64_t user_aborts = 0;

    Stats& operator+=(const Stats& o) {
      commits += o.commits;
      aborts += o.aborts;
      conflict_aborts += o.conflict_aborts;
      validation_aborts += o.validation_aborts;
      capacity_aborts += o.capacity_aborts;
      user_aborts += o.user_aborts;
      return *this;
    }
  };

  /// Compatibility aliases: ThreadCtx and its Block moved to tx_domain.hpp
  /// with the lifecycle, but data-structure code predating the split still
  /// says TxManager::ThreadCtx.
  using ThreadCtx = core::ThreadCtx;
  using Block = TxBlock;

  /// A manager with a private domain: transactions rooted here can only
  /// touch structures registered with this manager.
  TxManager() : TxManager(std::make_shared<TxDomain>()) {}

  /// A manager over a shared domain: transactions may span every manager
  /// sharing it (one descriptor, one commit CAS).
  explicit TxManager(std::shared_ptr<TxDomain> domain)
      : domain_(std::move(domain)) {}

  TxManager(const TxManager&) = delete;
  TxManager& operator=(const TxManager&) = delete;

  /// Start a transaction rooted at this manager. No nesting.
  void txBegin() { domain_->begin(this); }

  /// Attempt to commit; throws TransactionAborted on failure. Must be
  /// called on the transaction's ROOT manager (begin/end pair on the same
  /// manager — mis-pairing across shard managers is a bug, caught here).
  void txEnd() {
    require_rooted_here("txEnd");
    domain_->end();
  }

  /// Start a READ-ONLY transaction rooted at this manager: no descriptor
  /// is published and no read-set entries are recorded — reads log local
  /// {value, counter} pairs, validated exactly once at txEndRO (the TDSL
  /// read-only fast path; see tx_domain.hpp). Any write attempt inside
  /// (a critical nbtcCAS, a boosted lock) throws ReadOnlyViolation, which
  /// TxExecutor::execute_ro converts into a full-transaction rerun.
  void txBeginRO() { domain_->begin_ro(this); }

  /// Validate-once commit of a read-only transaction; throws
  /// TransactionAborted(Validation) when the snapshot is torn. Must be
  /// called on the transaction's ROOT manager, like txEnd.
  void txEndRO() {
    require_rooted_here("txEndRO");
    domain_->end_ro();
  }

  /// Close an open read-only transaction without billing a commit or an
  /// abort — the executor's write-fallback seam (a mis-declared body is a
  /// mode switch, not an abort). No-op when the calling thread has no
  /// open read-only transaction of this domain.
  void txAbandonRO() { domain_->abandon_ro(); }

  /// Explicitly abort; always throws TransactionAborted(User).
  [[noreturn]] void txAbort() { abort_active(AbortReason::User); }

  /// Abort because a resource ran out mid-transaction (e.g. the Montage
  /// persistent region is exhausted until the next epoch advance frees
  /// retired payloads). Unlike txAbort, the reason is Capacity, which
  /// the default TxPolicy treats as transient and retries (tx_exec.hpp).
  [[noreturn]] void txAbortCapacity() { abort_active(AbortReason::Capacity); }

  /// Optional opacity support (paper Sec. 3.1): throw now if any tracked
  /// read no longer holds, instead of waiting for commit.
  void validateReads() { domain_->validateReads(); }

  /// Is the calling thread inside a transaction this manager could take
  /// part in — i.e. one of its domain? (Before the TxDomain split this
  /// read "a transaction of this manager"; for private-domain managers the
  /// two are the same thing.)
  bool in_tx() const { return domain_->in_tx(); }

  /// The calling thread's context if it is inside *any* domain's
  /// transaction, else nullptr. Used by CASObj to decide instrumentation.
  static ThreadCtx* active_ctx() { return TxDomain::active_ctx(); }

  /// Hook invoked when a transaction enrolls this manager (at txBegin for
  /// the root, at first join for the others; used by txMontage to announce
  /// the epoch and fold it into the read set).
  void set_begin_hook(std::function<void()> hook) {
    begin_hook_ = std::move(hook);
  }

  /// Hook invoked exactly once per enrolled transaction when it finishes,
  /// with the outcome (true = committed). txMontage uses it to finalize
  /// payloads (register for epoch-batched persistence on commit, eagerly
  /// invalidate on abort) and to release the epoch announcement.
  void set_end_hook(std::function<void(bool committed)> hook) {
    end_hook_ = std::move(hook);
  }

  /// Aggregated statistics across all threads whose transactions were
  /// ROOTED at this manager (joined managers see the traffic but are not
  /// billed — one transaction, one bill).
  Stats stats() const {
    Stats agg;
    slots_.for_each([&](const StatsSlot& s) {
      agg.commits += s.commits.load(std::memory_order_relaxed);
      agg.conflict_aborts +=
          s.conflict_aborts.load(std::memory_order_relaxed);
      agg.validation_aborts +=
          s.validation_aborts.load(std::memory_order_relaxed);
      agg.capacity_aborts +=
          s.capacity_aborts.load(std::memory_order_relaxed);
      agg.user_aborts += s.user_aborts.load(std::memory_order_relaxed);
    });
    agg.aborts = agg.conflict_aborts + agg.validation_aborts +
                 agg.capacity_aborts + agg.user_aborts;
    return agg;
  }

  /// Zero all slots. Callers must be quiescent (no in-flight transactions
  /// rooted here): the owner-thread counter bump is load+store, so a
  /// concurrent reset can be overwritten by an owner's in-flight bump.
  void reset_stats() {
    slots_.for_each_mut([](StatsSlot& s) {
      s.commits.store(0, std::memory_order_relaxed);
      s.conflict_aborts.store(0, std::memory_order_relaxed);
      s.validation_aborts.store(0, std::memory_order_relaxed);
      s.capacity_aborts.store(0, std::memory_order_relaxed);
      s.user_aborts.store(0, std::memory_order_relaxed);
    });
  }

  /// This thread's descriptor (tests & internal use).
  Desc* my_desc() { return domain_->my_desc(); }

  /// The transaction substrate this manager participates in.
  TxDomain* domain() const { return domain_.get(); }
  std::shared_ptr<TxDomain> domain_ptr() const { return domain_; }

 private:
  friend class TxDomain;
  friend class Composable;
  template <typename T>
  friend class CASObj;
  friend struct OpStarter;

  // ---- internal entry points (CASObj / Composable / OpStarter) ----------

  /// Throw if a peer already aborted the running transaction (cheap
  /// self-status check; keeps doomed transactions from wasting work).
  void self_abort_check(ThreadCtx* c) { TxDomain::self_abort_check(c); }

  [[noreturn]] void abort_internal(ThreadCtx* c, AbortReason r) {
    c->domain->abort(c, r);
  }

  /// Enlist this manager in the thread's running transaction (idempotent).
  void join_active(ThreadCtx* c) { c->domain->join(c, this); }

  // No alignas: PerThreadSlots pads each slot to its own cache line.
  struct StatsSlot {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> conflict_aborts{0};
    std::atomic<std::uint64_t> validation_aborts{0};
    std::atomic<std::uint64_t> capacity_aborts{0};
    std::atomic<std::uint64_t> user_aborts{0};
  };

  /// The calling thread's transaction must be rooted at THIS manager.
  ThreadCtx* require_rooted_here(const char* what) {
    ThreadCtx* c = TxDomain::active_ctx();
    if (c == nullptr || c->mgr != this) {
      throw std::logic_error(std::string(what) +
                             " outside a transaction rooted here");
    }
    return c;
  }

  [[noreturn]] void abort_active(AbortReason r) {
    domain_->abort(require_rooted_here("txAbort"), r);
  }

  void fire_begin_hook() {
    if (begin_hook_) begin_hook_();
  }
  void fire_end_hook(bool committed) {
    if (end_hook_) end_hook_(committed);
  }

  // Single writer per slot (the owner thread); relaxed atomics make
  // cross-thread stats() reads tear-free (slightly stale is fine).
  StatsSlot& my_slot() { return slots_.mine(); }
  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  void note_commit() { bump(my_slot().commits); }
  void note_abort(AbortReason r) {
    StatsSlot& s = my_slot();
    switch (r) {
      case AbortReason::Conflict: bump(s.conflict_aborts); break;
      case AbortReason::Validation: bump(s.validation_aborts); break;
      case AbortReason::Capacity: bump(s.capacity_aborts); break;
      case AbortReason::User: bump(s.user_aborts); break;
    }
  }

  std::shared_ptr<TxDomain> domain_;
  std::function<void()> begin_hook_;
  std::function<void(bool)> end_hook_;
  util::PerThreadSlots<StatsSlot> slots_;
};

/// RAII marker at the top of every data structure operation (paper Fig. 1).
/// Pins the EBR epoch for the operation, resets the speculation interval,
/// surfaces a pending forced abort early, and — new with TxDomain — joins
/// the structure's manager into an ambient transaction so its hooks fire
/// and cross-manager composition is explicit (a manager from a different
/// domain throws rather than silently mixing substrates). `guard` is
/// declared first so the epoch pin is published before any shared loads in
/// the ctor body.
struct OpStarter {
  smr::EBR::Guard guard;
  ThreadCtx* ctx;

  explicit OpStarter(TxManager* mgr) {
    ctx = TxDomain::active_ctx();
    if (ctx != nullptr) {
      mgr->join_active(ctx);
      ctx->spec_interval = false;
      TxDomain::self_abort_check(ctx);
    }
  }
};

}  // namespace medley::core

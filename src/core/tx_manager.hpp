#pragma once
// TxManager: transaction lifecycle for Medley (paper Fig. 1, Figs. 5-6).
//
// A TxManager instance is shared by all Composable structures that may
// participate in the same transactions. Each registered thread owns one
// reusable descriptor plus a ThreadCtx holding the per-transaction ephemera:
// the speculation-interval flag, the recent-critical-load ring (which lets
// addToReadSet recover the {value, counter} pair of a linearizing load
// without the data structure reasoning about counters), deferred cleanups,
// speculative allocations, and deferred retirements.
//
// Life cycle of one transaction (owner thread):
//   txBegin(): new descriptor incarnation, EBR guard pinned, ctx armed.
//   ...operations execute; critical CASes install the descriptor...
//   txEnd():  InPrep->InProg, validate reads, commit or abort, uninstall,
//             then run cleanups (commit) or retire speculative blocks
//             (abort). Aborts surface as the TransactionAborted exception.
//
// Helpers finalize foreign descriptors via Desc::try_finalize; the manager
// is never involved on the helper path.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/descriptor.hpp"
#include "smr/ebr.hpp"
#include "util/align.hpp"
#include "util/thread_registry.hpp"

namespace medley::core {

enum class AbortReason : std::uint8_t {
  Conflict,    // a peer aborted us (eager contention management)
  Validation,  // commit-time read validation failed
  Capacity,    // read/write set overflow
  User,        // explicit txAbort()
};

class TransactionAborted : public std::exception {
 public:
  explicit TransactionAborted(AbortReason r) : reason_(r) {}
  AbortReason reason() const noexcept { return reason_; }
  const char* what() const noexcept override {
    switch (reason_) {
      case AbortReason::Conflict: return "transaction aborted: conflict";
      case AbortReason::Validation: return "transaction aborted: validation";
      case AbortReason::Capacity: return "transaction aborted: capacity";
      case AbortReason::User: return "transaction aborted: user";
    }
    return "transaction aborted";
  }

 private:
  AbortReason reason_;
};

class TxManager {
 public:
  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t conflict_aborts = 0;
    std::uint64_t validation_aborts = 0;
    std::uint64_t capacity_aborts = 0;
    std::uint64_t user_aborts = 0;
  };

  /// One deferred block: pointer plus type-erased deleter.
  struct Block {
    void* ptr;
    void (*deleter)(void*);
  };

  /// Per-thread transaction context. Public because CASObj<T> (a template)
  /// manipulates it inline; treat as library-internal.
  struct ThreadCtx {
    TxManager* mgr = nullptr;
    Desc* desc = nullptr;
    std::uint64_t begin_status = 0;  // incarnation at txBegin
    bool in_tx = false;
    bool spec_interval = false;

    // Ring of recent critical loads: cell, raw {lo,hi} observed, and the
    // value the load returned (differs from lo when the load hit our own
    // installed descriptor and returned the speculated value).
    static constexpr int kRingSize = 16;
    struct RecentLoad {
      CASCell* cell = nullptr;
      std::uint64_t raw_lo = 0, raw_hi = 0, returned = 0;
    };
    RecentLoad ring[kRingSize];
    int ring_pos = 0;

    std::vector<std::function<void()>> cleanups;
    std::vector<std::function<void()>> compensations;  // run (reversed) on abort
    std::vector<Block> allocs;   // tNew'ed; deleted (via EBR) on abort
    std::vector<Block> retires;  // tRetire'd; passed to EBR on commit
    std::optional<smr::EBR::Guard> guard;

    Stats stats;

    void note_load(CASCell* cell, std::uint64_t raw_lo, std::uint64_t raw_hi,
                   std::uint64_t returned) {
      ring[ring_pos] = {cell, raw_lo, raw_hi, returned};
      ring_pos = (ring_pos + 1) % kRingSize;
    }

    const RecentLoad* find_recent(CASCell* cell, std::uint64_t returned) const {
      for (int i = 0; i < kRingSize; i++) {
        int idx = (ring_pos - 1 - i + 2 * kRingSize) % kRingSize;
        if (ring[idx].cell == cell && ring[idx].returned == returned)
          return &ring[idx];
      }
      return nullptr;
    }
  };

  TxManager();
  ~TxManager();
  TxManager(const TxManager&) = delete;
  TxManager& operator=(const TxManager&) = delete;

  /// Start a transaction on the calling thread. No nesting.
  void txBegin();

  /// Attempt to commit; throws TransactionAborted on failure.
  void txEnd();

  /// Explicitly abort; always throws TransactionAborted(User).
  void txAbort();

  /// Abort because a resource ran out mid-transaction (e.g. the Montage
  /// persistent region is exhausted until the next epoch advance frees
  /// retired payloads). Unlike txAbort, the reason is Capacity, which
  /// run_tx treats as transient and retries.
  [[noreturn]] void txAbortCapacity();

  /// Optional opacity support (paper Sec. 3.1): throw now if any tracked
  /// read no longer holds, instead of waiting for commit.
  void validateReads();

  /// Is the calling thread inside a transaction of this manager?
  bool in_tx() const;

  /// The calling thread's context if it is inside *any* manager's
  /// transaction, else nullptr. Used by CASObj to decide instrumentation.
  static ThreadCtx* active_ctx() { return tl_active_; }

  /// Hook invoked at the end of every txBegin (used by txMontage to
  /// announce the epoch and fold it into the read set).
  void set_begin_hook(std::function<void()> hook) {
    begin_hook_ = std::move(hook);
  }

  /// Hook invoked exactly once when a transaction finishes, with the
  /// outcome (true = committed). txMontage uses it to finalize payloads
  /// (register for epoch-batched persistence on commit, eagerly invalidate
  /// on abort) and to release the epoch announcement.
  void set_end_hook(std::function<void(bool committed)> hook) {
    end_hook_ = std::move(hook);
  }

  /// Aggregated statistics across all threads that used this manager.
  Stats stats() const;
  void reset_stats();

  /// This thread's descriptor (tests & internal use).
  Desc* my_desc();

 private:
  friend class Composable;
  template <typename T>
  friend class CASObj;
  friend struct OpStarter;

  ThreadCtx* my_ctx();

  /// Throw if a peer already aborted the running transaction (cheap
  /// self-status check; keeps doomed transactions from wasting work).
  void self_abort_check(ThreadCtx* c);

  [[noreturn]] void abort_internal(ThreadCtx* c, AbortReason r);
  void finish_commit(ThreadCtx* c);

  std::unique_ptr<ThreadCtx> ctxs_[util::ThreadRegistry::kMaxThreads];
  std::unique_ptr<Desc> descs_[util::ThreadRegistry::kMaxThreads];
  std::atomic<int> ctx_high_water_{0};
  std::function<void()> begin_hook_;
  std::function<void(bool)> end_hook_;

  static thread_local ThreadCtx* tl_active_;
};

/// RAII marker at the top of every data structure operation (paper Fig. 1).
/// Pins the EBR epoch for the operation, resets the speculation interval,
/// and surfaces a pending forced abort early. `guard` is declared first so
/// the epoch pin is published before any shared loads in the ctor body.
struct OpStarter {
  smr::EBR::Guard guard;
  TxManager::ThreadCtx* ctx;

  explicit OpStarter(TxManager* mgr) {
    ctx = TxManager::active_ctx();
    if (ctx != nullptr) {
      ctx->spec_interval = false;
      mgr->self_abort_check(ctx);
    }
  }
};

}  // namespace medley::core

#include "core/tx_domain.hpp"

#include <stdexcept>

#include "core/tx_manager.hpp"

namespace medley::core {

thread_local ThreadCtx* TxDomain::tl_active_ = nullptr;

TxDomain::TxDomain() = default;
TxDomain::~TxDomain() = default;

ThreadCtx* TxDomain::my_ctx() {
  const int tid = util::ThreadRegistry::tid();
  if (!ctxs_[tid]) {
    ctxs_[tid] = std::make_unique<ThreadCtx>();
    descs_[tid] = std::make_unique<Desc>(static_cast<std::uint64_t>(tid));
    ctxs_[tid]->domain = this;
    ctxs_[tid]->desc = descs_[tid].get();
  }
  return ctxs_[tid].get();
}

Desc* TxDomain::my_desc() { return my_ctx()->desc; }

bool TxDomain::in_tx() const {
  ThreadCtx* c = tl_active_;
  return c != nullptr && c->domain == this;
}

void TxDomain::begin(TxManager* root) {
  if (tl_active_ != nullptr) {
    throw std::logic_error("Medley transactions do not nest");
  }
  ThreadCtx* c = my_ctx();
  c->mgr = root;
  c->begin_status = c->desc->begin();
  c->in_tx = true;
  c->spec_interval = false;
  c->joined.clear();
  c->joined.push_back(root);
  c->cleanups.clear();
  c->compensations.clear();
  c->allocs.clear();
  c->retires.clear();
  c->dedup_reads.reset();
  c->ring_pos = 0;
  for (auto& r : c->ring) r = ThreadCtx::RecentLoad{};
  c->guard.emplace();  // pin reclamation for the whole transaction
  tl_active_ = c;
  root->fire_begin_hook();
}

void TxDomain::join(ThreadCtx* c, TxManager* mgr) {
  if (c->mgr == mgr) return;  // root: the overwhelmingly common case
  for (TxManager* m : c->joined) {
    if (m == mgr) return;
  }
  if (mgr->domain() != this) {
    throw std::logic_error(
        "Medley: operation on a structure whose TxManager belongs to a "
        "different TxDomain than the running transaction");
  }
  c->joined.push_back(mgr);
  mgr->fire_begin_hook();
}

void TxDomain::self_abort_check(ThreadCtx* c) {
  // A read-only transaction never publishes a descriptor, so no peer can
  // abort it — and `desc` is stale (the previous full transaction's
  // incarnation may well read Aborted), so the check below would
  // false-positive.
  if (c->read_only) return;
  const std::uint64_t d = c->desc->status();
  if (status_word::incarnation(d) ==
          status_word::incarnation(c->begin_status) &&
      status_word::status(d) == TxStatus::Aborted) {
    c->domain->abort(c, AbortReason::Conflict);
  }
}

void TxDomain::abort(ThreadCtx* c, AbortReason r) {
  // Read-only transactions have no descriptor to finalize or uninstall;
  // tearing down the ctx and billing the root manager is the whole abort.
  if (c->read_only) {
    close_ro(c, /*committed=*/false);
    c->mgr->note_abort(r);
    throw TransactionAborted(r);
  }
  Desc* D = c->desc;
  std::uint64_t d = D->status();
  D->abort_cas(d);  // no-op if a peer beat us to it
  d = D->status();
  D->uninstall(d);

  // Compensations (transactional boosting: inverse operations of boosted
  // lock-based calls, plus semantic-lock releases) run in reverse order,
  // as plain code, once the speculative state is rolled back.
  c->in_tx = false;
  tl_active_ = nullptr;
  for (std::size_t i = c->compensations.size(); i-- > 0;) {
    c->compensations[i]();
  }
  c->compensations.clear();

  // Speculative blocks never became visible (uninstall on abort restores
  // the pre-transaction values), but a *stale helper* may still be walking
  // our write set and touching cells inside them — retire via EBR rather
  // than deleting in place.
  auto& ebr = smr::EBR::instance();
  for (const TxBlock& b : c->allocs) ebr.retire(b.ptr, b.deleter);
  c->allocs.clear();
  c->retires.clear();
  c->cleanups.clear();

  for (TxManager* m : c->joined) m->fire_end_hook(false);
  c->guard.reset();

  c->mgr->note_abort(r);
  throw TransactionAborted(r);
}

void TxDomain::finish_commit(ThreadCtx* c) {
  // Ownership of tNew'ed blocks passes to the structures; deferred
  // retirements enter SMR now that the transaction's links are final.
  auto& ebr = smr::EBR::instance();
  for (const TxBlock& b : c->retires) ebr.retire(b.ptr, b.deleter);
  c->retires.clear();
  c->allocs.clear();

  // Cleanups (post-linearization work, e.g. physical unlinks and helping)
  // run as plain non-transactional code — drop the tx context first but
  // keep the EBR guard: cleanups traverse live nodes.
  c->in_tx = false;
  tl_active_ = nullptr;
  for (TxManager* m : c->joined) m->fire_end_hook(true);
  for (auto& f : c->cleanups) f();
  c->cleanups.clear();
  c->compensations.clear();  // commit: inverses never run

  c->guard.reset();
  c->mgr->note_commit();
}

void TxDomain::end() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->domain != this) {
    throw std::logic_error("txEnd outside a transaction");
  }
  Desc* D = c->desc;

  if (!D->set_ready()) {
    abort(c, AbortReason::Conflict);  // a peer aborted us in InPrep
  }

  std::uint64_t d = D->status();
  const bool valid = D->validate_reads(d);
  if (!valid) {
    D->abort_cas(d);
  } else if (status_word::status(d) == TxStatus::InProg) {
    D->commit_cas(d);
  }

  d = D->status();  // helpers may have finalized us concurrently
  if (status_word::status(d) == TxStatus::Committed) {
    D->uninstall(d);
    finish_commit(c);
  } else {
    abort(c, valid ? AbortReason::Conflict : AbortReason::Validation);
  }
}

void TxDomain::validateReads() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->domain != this) return;  // outside tx: no tracking
  if (c->read_only) {
    if (!ro_log_valid(c)) abort(c, AbortReason::Validation);
    return;
  }
  if (!c->desc->validate_reads(c->desc->status())) {
    abort(c, AbortReason::Validation);
  }
}

// ---- read-only mode -------------------------------------------------------

void TxDomain::begin_ro(TxManager* root) {
  if (tl_active_ != nullptr) {
    throw std::logic_error("Medley transactions do not nest");
  }
  ThreadCtx* c = my_ctx();
  // Everything begin() does EXCEPT desc->begin(): no new incarnation, no
  // publishable descriptor — the whole point of the mode. begin_status is
  // left alone; all descriptor uses are gated on !read_only.
  c->mgr = root;
  c->in_tx = true;
  c->read_only = true;
  c->spec_interval = false;
  c->joined.clear();
  c->joined.push_back(root);
  c->cleanups.clear();
  c->compensations.clear();
  c->allocs.clear();
  c->retires.clear();
  c->dedup_reads.reset();
  c->ro_reads.clear();
  c->ring_pos = 0;
  for (auto& r : c->ring) r = ThreadCtx::RecentLoad{};
  c->guard.emplace();  // pin reclamation for the whole transaction
  tl_active_ = c;
  root->fire_begin_hook();
}

bool TxDomain::ro_log_valid(ThreadCtx* c) {
  for (const ThreadCtx::RORead& r : c->ro_reads) {
    util::U128 u = r.cell->vc.load();
    if (CASCell::holds_desc(u)) {
      // A writer is mid-install on a logged cell: resolve it once and
      // re-read. If the writer committed a change, the counter moved and
      // the recheck fails; if it aborted, the uninstall restored the value
      // but still bumped the counter — conservatively torn, exactly like
      // a full transaction's validate_reads.
      CASCell::desc_of(u)->try_finalize(r.cell, u);
      u = r.cell->vc.load();
    }
    if (CASCell::holds_desc(u) || u.lo != r.lo || u.hi != r.hi) return false;
  }
  return true;
}

void TxDomain::close_ro(ThreadCtx* c, bool committed) {
  c->in_tx = false;
  c->read_only = false;
  tl_active_ = nullptr;
  if (!committed) {
    for (std::size_t i = c->compensations.size(); i-- > 0;) {
      c->compensations[i]();
    }
  }
  c->compensations.clear();
  // A read-only transaction can never have PUBLISHED a block (every
  // linking CAS is a critical one, which throws ReadOnlyViolation), so
  // tNew'ed blocks are reclaimed on both outcomes; deferred retirements
  // can only exist on the committed path (tRetireAtUnlink outside the
  // speculation interval goes straight to EBR) and are honored there.
  auto& ebr = smr::EBR::instance();
  for (const TxBlock& b : c->allocs) ebr.retire(b.ptr, b.deleter);
  c->allocs.clear();
  if (committed) {
    for (const TxBlock& b : c->retires) ebr.retire(b.ptr, b.deleter);
  }
  c->retires.clear();
  for (TxManager* m : c->joined) m->fire_end_hook(committed);
  if (committed) {
    for (auto& f : c->cleanups) f();
  }
  c->cleanups.clear();
  c->ro_reads.clear();
  c->guard.reset();
}

void TxDomain::end_ro() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->domain != this || !c->read_only) {
    throw std::logic_error("txEndRO outside a read-only transaction");
  }
  // The one validation of the mode. Counters are strictly monotonic, so a
  // pair still in place proves its cell unchanged over [load, recheck];
  // every such interval contains the moment this loop starts — the
  // serialization point of the whole snapshot (same argument as
  // Desc::validate_reads, without ever having published anything).
  if (!ro_log_valid(c)) {
    close_ro(c, /*committed=*/false);
    c->mgr->note_abort(AbortReason::Validation);
    throw TransactionAborted(AbortReason::Validation);
  }
  TxManager* root = c->mgr;
  close_ro(c, /*committed=*/true);
  root->note_commit();
}

void TxDomain::abandon_ro() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->domain != this || !c->read_only) return;
  close_ro(c, /*committed=*/false);
}

}  // namespace medley::core

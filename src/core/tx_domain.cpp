#include "core/tx_domain.hpp"

#include <stdexcept>

#include "core/tx_manager.hpp"

namespace medley::core {

thread_local ThreadCtx* TxDomain::tl_active_ = nullptr;

TxDomain::TxDomain() = default;
TxDomain::~TxDomain() = default;

ThreadCtx* TxDomain::my_ctx() {
  const int tid = util::ThreadRegistry::tid();
  if (!ctxs_[tid]) {
    ctxs_[tid] = std::make_unique<ThreadCtx>();
    descs_[tid] = std::make_unique<Desc>(static_cast<std::uint64_t>(tid));
    ctxs_[tid]->domain = this;
    ctxs_[tid]->desc = descs_[tid].get();
  }
  return ctxs_[tid].get();
}

Desc* TxDomain::my_desc() { return my_ctx()->desc; }

bool TxDomain::in_tx() const {
  ThreadCtx* c = tl_active_;
  return c != nullptr && c->domain == this;
}

void TxDomain::begin(TxManager* root) {
  if (tl_active_ != nullptr) {
    throw std::logic_error("Medley transactions do not nest");
  }
  ThreadCtx* c = my_ctx();
  c->mgr = root;
  c->begin_status = c->desc->begin();
  c->in_tx = true;
  c->spec_interval = false;
  c->joined.clear();
  c->joined.push_back(root);
  c->cleanups.clear();
  c->compensations.clear();
  c->allocs.clear();
  c->retires.clear();
  c->dedup_reads.reset();
  c->ring_pos = 0;
  for (auto& r : c->ring) r = ThreadCtx::RecentLoad{};
  c->guard.emplace();  // pin reclamation for the whole transaction
  tl_active_ = c;
  root->fire_begin_hook();
}

void TxDomain::join(ThreadCtx* c, TxManager* mgr) {
  if (c->mgr == mgr) return;  // root: the overwhelmingly common case
  for (TxManager* m : c->joined) {
    if (m == mgr) return;
  }
  if (mgr->domain() != this) {
    throw std::logic_error(
        "Medley: operation on a structure whose TxManager belongs to a "
        "different TxDomain than the running transaction");
  }
  c->joined.push_back(mgr);
  mgr->fire_begin_hook();
}

void TxDomain::self_abort_check(ThreadCtx* c) {
  const std::uint64_t d = c->desc->status();
  if (status_word::incarnation(d) ==
          status_word::incarnation(c->begin_status) &&
      status_word::status(d) == TxStatus::Aborted) {
    c->domain->abort(c, AbortReason::Conflict);
  }
}

void TxDomain::abort(ThreadCtx* c, AbortReason r) {
  Desc* D = c->desc;
  std::uint64_t d = D->status();
  D->abort_cas(d);  // no-op if a peer beat us to it
  d = D->status();
  D->uninstall(d);

  // Compensations (transactional boosting: inverse operations of boosted
  // lock-based calls, plus semantic-lock releases) run in reverse order,
  // as plain code, once the speculative state is rolled back.
  c->in_tx = false;
  tl_active_ = nullptr;
  for (std::size_t i = c->compensations.size(); i-- > 0;) {
    c->compensations[i]();
  }
  c->compensations.clear();

  // Speculative blocks never became visible (uninstall on abort restores
  // the pre-transaction values), but a *stale helper* may still be walking
  // our write set and touching cells inside them — retire via EBR rather
  // than deleting in place.
  auto& ebr = smr::EBR::instance();
  for (const TxBlock& b : c->allocs) ebr.retire(b.ptr, b.deleter);
  c->allocs.clear();
  c->retires.clear();
  c->cleanups.clear();

  for (TxManager* m : c->joined) m->fire_end_hook(false);
  c->guard.reset();

  c->mgr->note_abort(r);
  throw TransactionAborted(r);
}

void TxDomain::finish_commit(ThreadCtx* c) {
  // Ownership of tNew'ed blocks passes to the structures; deferred
  // retirements enter SMR now that the transaction's links are final.
  auto& ebr = smr::EBR::instance();
  for (const TxBlock& b : c->retires) ebr.retire(b.ptr, b.deleter);
  c->retires.clear();
  c->allocs.clear();

  // Cleanups (post-linearization work, e.g. physical unlinks and helping)
  // run as plain non-transactional code — drop the tx context first but
  // keep the EBR guard: cleanups traverse live nodes.
  c->in_tx = false;
  tl_active_ = nullptr;
  for (TxManager* m : c->joined) m->fire_end_hook(true);
  for (auto& f : c->cleanups) f();
  c->cleanups.clear();
  c->compensations.clear();  // commit: inverses never run

  c->guard.reset();
  c->mgr->note_commit();
}

void TxDomain::end() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->domain != this) {
    throw std::logic_error("txEnd outside a transaction");
  }
  Desc* D = c->desc;

  if (!D->set_ready()) {
    abort(c, AbortReason::Conflict);  // a peer aborted us in InPrep
  }

  std::uint64_t d = D->status();
  const bool valid = D->validate_reads(d);
  if (!valid) {
    D->abort_cas(d);
  } else if (status_word::status(d) == TxStatus::InProg) {
    D->commit_cas(d);
  }

  d = D->status();  // helpers may have finalized us concurrently
  if (status_word::status(d) == TxStatus::Committed) {
    D->uninstall(d);
    finish_commit(c);
  } else {
    abort(c, valid ? AbortReason::Conflict : AbortReason::Validation);
  }
}

void TxDomain::validateReads() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->domain != this) return;  // outside tx: no tracking
  if (!c->desc->validate_reads(c->desc->status())) {
    abort(c, AbortReason::Validation);
  }
}

}  // namespace medley::core

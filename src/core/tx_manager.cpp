#include "core/tx_manager.hpp"

#include <stdexcept>

namespace medley::core {

thread_local TxManager::ThreadCtx* TxManager::tl_active_ = nullptr;

TxManager::TxManager() = default;
TxManager::~TxManager() = default;

TxManager::ThreadCtx* TxManager::my_ctx() {
  const int tid = util::ThreadRegistry::tid();
  if (!ctxs_[tid]) {
    ctxs_[tid] = std::make_unique<ThreadCtx>();
    descs_[tid] = std::make_unique<Desc>(static_cast<std::uint64_t>(tid));
    ctxs_[tid]->mgr = this;
    ctxs_[tid]->desc = descs_[tid].get();
    int hw = ctx_high_water_.load(std::memory_order_relaxed);
    while (hw < tid + 1 && !ctx_high_water_.compare_exchange_weak(
                               hw, tid + 1, std::memory_order_acq_rel)) {
    }
  }
  return ctxs_[tid].get();
}

Desc* TxManager::my_desc() { return my_ctx()->desc; }

bool TxManager::in_tx() const {
  ThreadCtx* c = tl_active_;
  return c != nullptr && c->mgr == this;
}

void TxManager::txBegin() {
  if (tl_active_ != nullptr) {
    throw std::logic_error("Medley transactions do not nest");
  }
  ThreadCtx* c = my_ctx();
  c->begin_status = c->desc->begin();
  c->in_tx = true;
  c->spec_interval = false;
  c->cleanups.clear();
  c->compensations.clear();
  c->allocs.clear();
  c->retires.clear();
  c->ring_pos = 0;
  for (auto& r : c->ring) r = ThreadCtx::RecentLoad{};
  c->guard.emplace();  // pin reclamation for the whole transaction
  tl_active_ = c;
  if (begin_hook_) begin_hook_();
}

void TxManager::self_abort_check(ThreadCtx* c) {
  const std::uint64_t d = c->desc->status();
  if (status_word::incarnation(d) ==
          status_word::incarnation(c->begin_status) &&
      status_word::status(d) == TxStatus::Aborted) {
    abort_internal(c, AbortReason::Conflict);
  }
}

void TxManager::abort_internal(ThreadCtx* c, AbortReason r) {
  Desc* D = c->desc;
  std::uint64_t d = D->status();
  D->abort_cas(d);  // no-op if a peer beat us to it
  d = D->status();
  D->uninstall(d);

  // Compensations (transactional boosting: inverse operations of boosted
  // lock-based calls, plus semantic-lock releases) run in reverse order,
  // as plain code, once the speculative state is rolled back.
  c->in_tx = false;
  tl_active_ = nullptr;
  for (std::size_t i = c->compensations.size(); i-- > 0;) {
    c->compensations[i]();
  }
  c->compensations.clear();

  // Speculative blocks never became visible (uninstall on abort restores
  // the pre-transaction values), but a *stale helper* may still be walking
  // our write set and touching cells inside them — retire via EBR rather
  // than deleting in place.
  auto& ebr = smr::EBR::instance();
  for (const Block& b : c->allocs) ebr.retire(b.ptr, b.deleter);
  c->allocs.clear();
  c->retires.clear();
  c->cleanups.clear();

  c->in_tx = false;
  tl_active_ = nullptr;
  if (end_hook_) end_hook_(false);
  c->guard.reset();

  c->stats.aborts++;
  switch (r) {
    case AbortReason::Conflict: c->stats.conflict_aborts++; break;
    case AbortReason::Validation: c->stats.validation_aborts++; break;
    case AbortReason::Capacity: c->stats.capacity_aborts++; break;
    case AbortReason::User: c->stats.user_aborts++; break;
  }
  throw TransactionAborted(r);
}

void TxManager::finish_commit(ThreadCtx* c) {
  // Ownership of tNew'ed blocks passes to the structures; deferred
  // retirements enter SMR now that the transaction's links are final.
  auto& ebr = smr::EBR::instance();
  for (const Block& b : c->retires) ebr.retire(b.ptr, b.deleter);
  c->retires.clear();
  c->allocs.clear();

  // Cleanups (post-linearization work, e.g. physical unlinks and helping)
  // run as plain non-transactional code — drop the tx context first but
  // keep the EBR guard: cleanups traverse live nodes.
  c->in_tx = false;
  tl_active_ = nullptr;
  if (end_hook_) end_hook_(true);
  for (auto& f : c->cleanups) f();
  c->cleanups.clear();
  c->compensations.clear();  // commit: inverses never run

  c->guard.reset();
  c->stats.commits++;
}

void TxManager::txEnd() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->mgr != this) {
    throw std::logic_error("txEnd outside a transaction");
  }
  Desc* D = c->desc;

  if (!D->set_ready()) {
    abort_internal(c, AbortReason::Conflict);  // a peer aborted us in InPrep
  }

  std::uint64_t d = D->status();
  const bool valid = D->validate_reads(d);
  if (!valid) {
    D->abort_cas(d);
  } else if (status_word::status(d) == TxStatus::InProg) {
    D->commit_cas(d);
  }

  d = D->status();  // helpers may have finalized us concurrently
  if (status_word::status(d) == TxStatus::Committed) {
    D->uninstall(d);
    finish_commit(c);
  } else {
    abort_internal(
        c, valid ? AbortReason::Conflict : AbortReason::Validation);
  }
}

void TxManager::txAbort() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->mgr != this) {
    throw std::logic_error("txAbort outside a transaction");
  }
  abort_internal(c, AbortReason::User);
}

void TxManager::txAbortCapacity() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->mgr != this) {
    throw std::logic_error("txAbortCapacity outside a transaction");
  }
  abort_internal(c, AbortReason::Capacity);
}

void TxManager::validateReads() {
  ThreadCtx* c = tl_active_;
  if (c == nullptr || c->mgr != this) return;  // outside tx: nothing tracked
  if (!c->desc->validate_reads(c->desc->status())) {
    abort_internal(c, AbortReason::Validation);
  }
}

TxManager::Stats TxManager::stats() const {
  Stats agg;
  const int n = ctx_high_water_.load(std::memory_order_acquire);
  for (int i = 0; i < n; i++) {
    if (!ctxs_[i]) continue;
    const Stats& s = ctxs_[i]->stats;
    agg.commits += s.commits;
    agg.aborts += s.aborts;
    agg.conflict_aborts += s.conflict_aborts;
    agg.validation_aborts += s.validation_aborts;
    agg.capacity_aborts += s.capacity_aborts;
    agg.user_aborts += s.user_aborts;
  }
  return agg;
}

void TxManager::reset_stats() {
  const int n = ctx_high_water_.load(std::memory_order_acquire);
  for (int i = 0; i < n; i++) {
    if (ctxs_[i]) ctxs_[i]->stats = Stats{};
  }
}

}  // namespace medley::core

#pragma once
// Transaction descriptor and the M-compare-N-swap (MCNS) finalization
// protocol (paper Sec. 3.2, Figs. 4–6).
//
// One descriptor exists per thread per TxManager, reused across that
// thread's transactions (incarnations are told apart by the serial number
// in the status word). Helpers that encounter an installed descriptor drive
// it to completion via tryFinalize(): abort it if still InPrep, help commit
// if InProg, and in all cases uninstall it from the cell where it was found.

#include <atomic>
#include <cstdint>

#include "core/cas_cell.hpp"
#include "core/status_word.hpp"
#include "core/word_sets.hpp"
#include "util/align.hpp"

namespace medley::core {

class Desc {
 public:
  static constexpr int kReadCap = 4096;
  static constexpr int kWriteCap = 1024;

  explicit Desc(std::uint64_t tid) {
    status_.store(status_word::make(tid, 0, TxStatus::Aborted),
                  std::memory_order_relaxed);
  }

  Desc(const Desc&) = delete;
  Desc& operator=(const Desc&) = delete;

  std::uint64_t status() const {
    return status_.load(std::memory_order_acquire);
  }

  std::uint64_t self_encoded() const {
    return CASCell::encode_desc(const_cast<Desc*>(this));
  }

  // ---- contention-management priority ---------------------------------
  // A timestamp-priority ContentionManager (KarmaCM, tx_exec.hpp) stamps
  // the owning thread's current transaction here: smaller = older = wins.
  // 0 means unmanaged (eager resolution). Written by the owner's executor,
  // read racily by transactional peers during conflict arbitration
  // (TxDomain::arbitration_yields) — a stale read can only mis-prioritize
  // one arbitration, never break the MCNS protocol, whose correctness
  // does not depend on who yields.

  void set_priority(std::uint64_t p) {
    priority_.store(p, std::memory_order_relaxed);
  }
  std::uint64_t priority() const {
    return priority_.load(std::memory_order_relaxed);
  }

  // ---- owner-side lifecycle ------------------------------------------

  /// txBegin: new incarnation, empty sets (paper Fig. 5 lines 1-4).
  /// Returns the new status word.
  std::uint64_t begin() {
    reads_.reset();
    writes_.reset();
    const std::uint64_t d = status_.load(std::memory_order_relaxed);
    const std::uint64_t nd = status_word::next_incarnation(d);
    status_.store(nd, std::memory_order_release);
    return nd;
  }

  /// txEnd step 1: InPrep -> InProg (fails iff a helper aborted us).
  bool set_ready() {
    std::uint64_t d = status_.load(std::memory_order_acquire);
    return sts_cas(d, TxStatus::InPrep, TxStatus::InProg);
  }

  bool commit_cas(std::uint64_t d) {
    return sts_cas(d, TxStatus::InProg, TxStatus::Committed);
  }

  /// Abort from whatever live state snapshot d carries (paper Fig. 6
  /// line 6: `stsCAS(d, d & 1, Aborted)`).
  bool abort_cas(std::uint64_t d) {
    return sts_cas(d, static_cast<TxStatus>(d & 1), TxStatus::Aborted);
  }

  // ---- write set (owner) ----------------------------------------------

  /// Record a critical CAS about to install. Returns the entry, or nullptr
  /// on capacity exhaustion.
  WriteEntry* record_write(CASCell* cell, std::uint64_t old_val,
                           std::uint64_t cnt, std::uint64_t new_val,
                           std::uint64_t d) {
    WriteEntry* e = writes_.claim();
    if (!e) return nullptr;
    e->addr.store(cell, std::memory_order_relaxed);
    e->old_val.store(old_val, std::memory_order_relaxed);
    e->cnt.store(cnt, std::memory_order_relaxed);
    e->new_val.store(new_val, std::memory_order_relaxed);
    writes_.publish(e, status_word::incarnation(d));
    return e;
  }

  /// The install CAS failed: retract the entry (paper Fig. 5 line 37).
  void retract_write(WriteEntry* e) {
    e->serial.store(0, std::memory_order_release);
  }

  /// Owner lookup: current speculative value for a cell we installed at.
  /// Linear scan — write sets are small and this path only runs when an
  /// operation re-encounters its own transaction's earlier write.
  WriteEntry* find_write(CASCell* cell, std::uint64_t d) {
    const std::uint64_t ser = status_word::incarnation(d);
    const int n = writes_.count();
    for (int i = n - 1; i >= 0; i--) {  // newest first: most likely match
      WriteEntry& e = writes_.at(i);
      if (e.addr.load(std::memory_order_relaxed) == cell &&
          e.serial.load(std::memory_order_acquire) == ser) {
        return &e;
      }
    }
    return nullptr;
  }

  // ---- read set (owner) -----------------------------------------------

  bool record_read(CASCell* cell, std::uint64_t val, std::uint64_t cnt,
                   std::uint64_t d) {
    ReadEntry* e = reads_.claim();
    if (!e) return false;
    e->addr.store(cell, std::memory_order_relaxed);
    e->val.store(val, std::memory_order_relaxed);
    e->cnt.store(cnt, std::memory_order_relaxed);
    reads_.publish(e, status_word::incarnation(d));
    return true;
  }

  // ---- MCNS finalization (owner or helper) ----------------------------

  /// Every tracked read still holds (paper Fig. 6 lines 23-27). An entry is
  /// also considered valid if the cell now holds *this* descriptor with
  /// counter cnt+1: the transaction installed a write over its own earlier
  /// read (get-then-put in Fig. 3), which does not invalidate the read.
  bool validate_reads(std::uint64_t d) const {
    const std::uint64_t ser = status_word::incarnation(d);
    const std::uint64_t me = self_encoded();
    const int n = reads_.count();
    for (int i = 0; i < n; i++) {
      ReadSnapshot r;
      if (!snapshot(reads_.at(i), ser, r)) continue;  // stale/foreign entry
      const util::U128 cur = r.addr->vc.load();
      const bool unchanged = cur.lo == r.val && cur.hi == r.cnt;
      const bool own_overwrite = cur.lo == me && cur.hi == r.cnt + 1;
      if (!unchanged && !own_overwrite) return false;
    }
    return true;
  }

  /// Replace installed descriptor pointers with the outcome values (paper
  /// Fig. 6 lines 28-35). Guarded per-entry: the 128-bit CAS fires only if
  /// the cell still holds {this, cnt+1} for that entry's install, so stale
  /// or duplicated uninstall attempts are harmless.
  void uninstall(std::uint64_t d) {
    const std::uint64_t ser = status_word::incarnation(d);
    const bool committed = status_word::status(d) == TxStatus::Committed;
    const std::uint64_t me = self_encoded();
    const int n = writes_.count();
    for (int i = 0; i < n; i++) {
      WriteSnapshot w;
      if (!snapshot(writes_.at(i), ser, w)) continue;
      util::U128 expected{me, w.cnt + 1};
      util::U128 desired{committed ? w.new_val : w.old_val, w.cnt + 2};
      w.addr->vc.compare_exchange(expected, desired);
    }
  }

  /// Get this descriptor out of the way of another thread (paper Fig. 6
  /// lines 7-22): called by whoever found `var` (== {this, odd cnt})
  /// installed in `cell`.
  void try_finalize(CASCell* cell, util::U128 var) {
    std::uint64_t d = status_.load(std::memory_order_acquire);
    // If the descriptor is no longer installed where we saw it, d may
    // describe a different incarnation; whoever removed it finished the job.
    if (!(cell->vc.load() == var)) return;
    if (status_word::status(d) == TxStatus::InPrep) {
      abort_cas(d);
      const std::uint64_t nd = status_.load(std::memory_order_acquire);
      if (status_word::incarnation(nd) != status_word::incarnation(d))
        return;  // owner finished and moved on; nothing left to do
      d = nd;
    }
    if (status_word::status(d) == TxStatus::InProg) {
      if (validate_reads(d)) {
        commit_cas(d);
      } else {
        abort_cas(d);
      }
      const std::uint64_t nd = status_.load(std::memory_order_acquire);
      if (status_word::incarnation(nd) != status_word::incarnation(d))
        return;
      d = nd;
    }
    uninstall(d);
  }

  /// Visit the cell of every read entry published under incarnation d
  /// (owner only; used to seed the scan-dedup set when a walk restarts —
  /// everything already tracked need not be registered again).
  template <typename F>
  void for_each_read(std::uint64_t d, F&& f) const {
    const std::uint64_t ser = status_word::incarnation(d);
    const int n = reads_.count();
    for (int i = 0; i < n; i++) {
      ReadSnapshot r;
      if (!snapshot(reads_.at(i), ser, r)) continue;  // stale/foreign entry
      f(r.addr);
    }
  }

  int read_count() const { return reads_.count(); }
  int write_count() const { return writes_.count(); }

 private:
  bool sts_cas(std::uint64_t d, TxStatus expect, TxStatus desired) {
    std::uint64_t e = status_word::incarnation(d) |
                      static_cast<std::uint64_t>(expect);
    return status_.compare_exchange_strong(
        e,
        status_word::incarnation(d) | static_cast<std::uint64_t>(desired),
        std::memory_order_acq_rel);
  }

  alignas(util::kCacheLine) std::atomic<std::uint64_t> status_;
  std::atomic<std::uint64_t> priority_{0};
  WordSet<ReadEntry, kReadCap> reads_;
  WordSet<WriteEntry, kWriteCap> writes_;
};

}  // namespace medley::core

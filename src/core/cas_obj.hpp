#pragma once
// CASObj<T>: the augmented atomic word of the paper (Fig. 1, Fig. 5).
//
// T must fit in 64 bits (pointer or integral): the cell stores
// {encode(T), counter} in one 128-bit atomic. The nbtc* methods implement
// the NBTC instrumentation: they detect installed descriptors and resolve
// them (helping or aborting the owner — eager contention management),
// track the speculation interval, and route critical CASes through the
// transaction's write set. The plain load/store/CAS methods are also
// descriptor-aware (they resolve, never observe, a speculative state) and
// are what cleanup code and non-transactional operations use.
//
// A CASObj is manager-agnostic: instrumentation keys off the calling
// thread's active TxDomain context (one descriptor per thread per domain),
// which is what lets structures registered with different TxManagers of a
// shared domain speculate inside one transaction.

#include <bit>
#include <cassert>
#include <cstdint>
#include <type_traits>

#include "core/cas_cell.hpp"
#include "core/descriptor.hpp"
#include "core/tx_domain.hpp"
#include "core/tx_manager.hpp"
#include "obs/trace.hpp"

namespace medley::core {

template <typename T>
class CASObj {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>,
                "CASObj requires a word-sized trivially copyable type");

 public:
  CASObj() : cell_(0) {}
  explicit CASObj(T initial) : cell_(encode(initial)) {}

  // Not copyable: a CASObj's identity (address) is part of the protocol.
  CASObj(const CASObj&) = delete;
  CASObj& operator=(const CASObj&) = delete;

  // ---- NBTC-instrumented accessors ------------------------------------

  /// Critical load (paper Fig. 5 lines 5-17). Outside a transaction this
  /// degenerates to a descriptor-aware plain load.
  T nbtcLoad() {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c == nullptr) return load();
    if (c->read_only) {
      // Read-only mode: no descriptor of ours exists, no peer can doom
      // us, and arbitration has nothing to arbitrate — resolve foreign
      // descriptors like a plain load, and note the committed {value,
      // counter} pair so addToReadSet can log it for the end_ro check.
      for (;;) {
        util::U128 u = cell_.vc.load();
        if (CASCell::holds_desc(u)) {
          CASCell::desc_of(u)->try_finalize(&cell_, u);
          continue;
        }
        c->note_load(&cell_, u.lo, u.hi, u.lo);
        return decode(u.lo);
      }
    }
    TxDomain::self_abort_check(c);  // doomed? stop wasting work now
    Desc* mine = c->desc;
    for (;;) {
      util::U128 u = cell_.vc.load();
      if (CASCell::holds_desc(u)) {
        Desc* other = CASCell::desc_of(u);
        if (other == mine) {
          // Seeing a value we speculatively wrote earlier in this same
          // transaction starts the speculation interval (Def. 3).
          c->spec_interval = true;
          WriteEntry* e = mine->find_write(&cell_, c->begin_status);
          assert(e && "cell holds our descriptor but write entry missing");
          if (e != nullptr) {
            const std::uint64_t nv =
                e->new_val.load(std::memory_order_relaxed);
            c->note_load(&cell_, u.lo, u.hi, nv);
            return decode(nv);
          }
          continue;  // defensive in release builds
        }
        // Priority arbitration (KarmaCM): a younger managed transaction
        // yields to an older, still-preparing one instead of aborting it.
        if (TxDomain::arbitration_yields(mine, other)) {
          if (c->trace != nullptr)
            c->trace->emit(obs::TraceEvent::kArbitrationYield);
          c->domain->abort(c, AbortReason::Conflict);
        }
        other->try_finalize(&cell_, u);
        TxDomain::self_abort_check(c);
        continue;
      }
      c->note_load(&cell_, u.lo, u.hi, u.lo);
      return decode(u.lo);
    }
  }

  /// Critical/ordinary CAS (paper Fig. 5 lines 22-41). `lin_pt` marks this
  /// as the operation's linearization point if it succeeds; `pub_pt` marks
  /// its publication point (starts the speculation interval).
  bool nbtcCAS(T expected, T desired, bool lin_pt, bool pub_pt) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c == nullptr) return CAS(expected, desired);
    if (c->read_only) {
      // A linearizing or publishing CAS is a write: the body was
      // mis-declared, and the executor re-runs it as a full transaction.
      if (lin_pt || pub_pt) throw ReadOnlyViolation();
      // A plain helping CAS (unlinking a node whose removal already
      // committed — any mark observed after descriptor resolution is a
      // committed mark) is legal and final exactly as outside any
      // transaction. It may rewrite a cell the read log already tracks,
      // in which case validation fails and the fallback re-walks the
      // cleaned list — same doom the full-transaction path accepts.
      return CAS(expected, desired);
    }
    TxDomain::self_abort_check(c);  // doomed? stop wasting work now
    Desc* mine = c->desc;
    const std::uint64_t exp = encode(expected);
    const std::uint64_t des = encode(desired);
    for (;;) {
      util::U128 u = cell_.vc.load();
      if (CASCell::holds_desc(u)) {
        Desc* other = CASCell::desc_of(u);
        if (other != mine) {
          if (TxDomain::arbitration_yields(mine, other)) {
            if (c->trace != nullptr)
              c->trace->emit(obs::TraceEvent::kArbitrationYield);
            c->domain->abort(c, AbortReason::Conflict);
          }
          other->try_finalize(&cell_, u);
          TxDomain::self_abort_check(c);
          continue;
        }
        // Our own speculative write: update it in place.
        c->spec_interval = true;
        WriteEntry* e = mine->find_write(&cell_, c->begin_status);
        assert(e && "cell holds our descriptor but write entry missing");
        if (e == nullptr) continue;
        if (e->new_val.load(std::memory_order_relaxed) != exp) return false;
        e->new_val.store(des, std::memory_order_relaxed);
        if (lin_pt) c->spec_interval = false;
        return true;
      }
      if (u.lo != exp) return false;
      if (pub_pt) c->spec_interval = true;
      if (c->spec_interval) {
        // Critical CAS: install the descriptor (counter goes odd).
        WriteEntry* e = mine->record_write(&cell_, u.lo, u.hi, des,
                                           c->begin_status);
        if (e == nullptr) c->domain->abort(c, AbortReason::Capacity);
        util::U128 expected128 = u;
        if (!cell_.vc.compare_exchange(
                expected128, util::U128{mine->self_encoded(), u.hi + 1})) {
          mine->retract_write(e);
          return false;  // caller's retry loop re-traverses (Fig. 5 l.37)
        }
        if (lin_pt) c->spec_interval = false;
        return true;
      }
      // Pre-speculation CAS: execute on the fly, bump counter by 2.
      util::U128 expected128 = u;
      if (cell_.vc.compare_exchange(expected128,
                                    util::U128{des, u.hi + 2})) {
        return true;
      }
      // Counter moved or a descriptor appeared: re-resolve and retry.
    }
  }

  // ---- plain (descriptor-aware) accessors ------------------------------

  /// Linearizable load that never observes a speculative state.
  T load() {
    for (;;) {
      util::U128 u = cell_.vc.load();
      if (!CASCell::holds_desc(u)) return decode(u.lo);
      CASCell::desc_of(u)->try_finalize(&cell_, u);
    }
  }

  /// Unconditional store (CAS loop so the counter stays coherent).
  void store(T v) {
    const std::uint64_t val = encode(v);
    for (;;) {
      util::U128 u = cell_.vc.load();
      if (CASCell::holds_desc(u)) {
        CASCell::desc_of(u)->try_finalize(&cell_, u);
        continue;
      }
      util::U128 e = u;
      if (cell_.vc.compare_exchange(e, util::U128{val, u.hi + 2})) return;
    }
  }

  /// Plain CAS: fails only on a genuine value mismatch; retries through
  /// counter-only changes and resolves any descriptor it meets.
  bool CAS(T expected, T desired) {
    const std::uint64_t exp = encode(expected);
    const std::uint64_t des = encode(desired);
    for (;;) {
      util::U128 u = cell_.vc.load();
      if (CASCell::holds_desc(u)) {
        CASCell::desc_of(u)->try_finalize(&cell_, u);
        continue;
      }
      if (u.lo != exp) return false;
      util::U128 e = u;
      if (cell_.vc.compare_exchange(e, util::U128{des, u.hi + 2}))
        return true;
    }
  }

  CASCell* cell() { return &cell_; }

  /// Raw {value-or-desc, counter} snapshot (tests, diagnostics).
  util::U128 raw() const { return cell_.vc.load(); }

  // ---- encoding ---------------------------------------------------------

  static std::uint64_t encode(T v) noexcept {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<std::uint64_t>(v);
    } else if constexpr (sizeof(T) == 8) {
      return std::bit_cast<std::uint64_t>(v);
    } else {
      std::uint64_t out = 0;
      __builtin_memcpy(&out, &v, sizeof(T));
      return out;
    }
  }

  static T decode(std::uint64_t raw) noexcept {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<T>(raw);
    } else if constexpr (sizeof(T) == 8) {
      return std::bit_cast<T>(raw);
    } else {
      T out{};
      __builtin_memcpy(&out, &raw, sizeof(T));
      return out;
    }
  }

 private:
  CASCell cell_;
};

}  // namespace medley::core

#pragma once
// Umbrella header: everything a Medley user (or a data structure being
// NBTC-transformed) needs.
//
//   #include "core/medley.hpp"
//
//   medley::TxManager mgr;
//   MHashTable ht1{&mgr}, ht2{&mgr};
//   medley::TxExecutor exec;  // or TxExecutor{policy} with a CM / budget
//   auto r = exec.execute(mgr, [&] {
//     auto v = ht1.get(a1);
//     if (!v || *v < amount) mgr.txAbort();  // business rule: terminal
//     ht1.put(a1, *v - amount);
//     ht2.put(a2, amount + ht2.get(a2).value_or(0));
//   });
//   if (!r.committed()) { /* r.terminal says why */ }

#include "core/cas_obj.hpp"
#include "core/composable.hpp"
#include "core/descriptor.hpp"
#include "core/tx_domain.hpp"
#include "core/tx_exec.hpp"
#include "core/tx_manager.hpp"

namespace medley {

using core::AbortReason;
using core::CASObj;
using core::Composable;
using core::Desc;
using core::OpStarter;
using core::ReadOnlyViolation;
using core::TransactionAborted;
using core::TxDomain;
using core::TxManager;

// TxStats, TxPolicy, TxResult<T>, TxExecutor, execute_tx and the
// ContentionManager family (NoOpCM / ExpBackoffCM / KarmaCM) come from
// core/tx_exec.hpp, already in namespace medley.
//
// The pre-TxExecutor `run_tx` retry loop, kept as a deprecated shim for
// one release after the executor landed, is REMOVED. Migration (also in
// README "Migration note"):
//
//   run_tx(mgr, body)                    -> execute_tx(mgr, body).stats
//   run_tx(mgr, body, /*retry_user=*/x)  -> TxPolicy p; p.retry_user = x;
//                                           execute_tx(mgr, body, p).stats

}  // namespace medley

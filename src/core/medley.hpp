#pragma once
// Umbrella header: everything a Medley user (or a data structure being
// NBTC-transformed) needs.
//
//   #include "core/medley.hpp"
//
//   medley::TxManager mgr;
//   MHashTable ht1{&mgr}, ht2{&mgr};
//   try {
//     mgr.txBegin();
//     auto v = ht1.get(a1);
//     if (!v || *v < amount) mgr.txAbort();
//     ht1.put(a1, *v - amount);
//     ht2.put(a2, amount + ht2.get(a2).value_or(0));
//     mgr.txEnd();
//   } catch (const medley::TransactionAborted&) { /* retry or give up */ }

#include "core/cas_obj.hpp"
#include "core/composable.hpp"
#include "core/descriptor.hpp"
#include "core/tx_manager.hpp"

namespace medley {

using core::AbortReason;
using core::CASObj;
using core::Composable;
using core::Desc;
using core::OpStarter;
using core::TransactionAborted;
using core::TxManager;

/// Convenience retry loop: run `body` as a transaction until it commits.
/// `body` may call mgr.txAbort() to abandon one attempt (counts as retry
/// only if `retry_on_user_abort`). Returns number of aborts encountered.
template <typename F>
std::uint64_t run_tx(TxManager& mgr, F&& body,
                     bool retry_on_user_abort = false) {
  std::uint64_t aborts = 0;
  for (;;) {
    try {
      mgr.txBegin();
      body();
      mgr.txEnd();
      return aborts;
    } catch (const TransactionAborted& e) {
      aborts++;
      if (e.reason() == AbortReason::User && !retry_on_user_abort) {
        return aborts;
      }
    }
  }
}

}  // namespace medley

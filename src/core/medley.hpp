#pragma once
// Umbrella header: everything a Medley user (or a data structure being
// NBTC-transformed) needs.
//
//   #include "core/medley.hpp"
//
//   medley::TxManager mgr;
//   MHashTable ht1{&mgr}, ht2{&mgr};
//   try {
//     mgr.txBegin();
//     auto v = ht1.get(a1);
//     if (!v || *v < amount) mgr.txAbort();
//     ht1.put(a1, *v - amount);
//     ht2.put(a2, amount + ht2.get(a2).value_or(0));
//     mgr.txEnd();
//   } catch (const medley::TransactionAborted&) { /* retry or give up */ }

#include "core/cas_obj.hpp"
#include "core/composable.hpp"
#include "core/descriptor.hpp"
#include "core/tx_domain.hpp"
#include "core/tx_manager.hpp"

namespace medley {

using core::AbortReason;
using core::CASObj;
using core::Composable;
using core::Desc;
using core::OpStarter;
using core::TransactionAborted;
using core::TxDomain;
using core::TxManager;

/// Outcome of one run_tx call: whether it committed, how many aborted
/// attempts it burned (split by reason), and how many of those were
/// retried. Aggregates with += (MedleyStore and the workload drivers sum
/// these into their counter blocks).
struct TxStats {
  std::uint64_t commits = 0;  // 0 or 1 per run_tx call
  std::uint64_t retries = 0;  // aborted attempts that were re-run
  std::uint64_t conflict_aborts = 0;
  std::uint64_t validation_aborts = 0;
  std::uint64_t capacity_aborts = 0;
  std::uint64_t user_aborts = 0;

  std::uint64_t aborts() const {
    return conflict_aborts + validation_aborts + capacity_aborts +
           user_aborts;
  }

  TxStats& operator+=(const TxStats& o) {
    commits += o.commits;
    retries += o.retries;
    conflict_aborts += o.conflict_aborts;
    validation_aborts += o.validation_aborts;
    capacity_aborts += o.capacity_aborts;
    user_aborts += o.user_aborts;
    return *this;
  }
};

/// Convenience retry loop: run `body` as a transaction until it commits.
/// `body` may call mgr.txAbort() to abandon one attempt (retried only if
/// `retry_on_user_abort`); Conflict/Validation/Capacity aborts always
/// retry. Returns the per-call TxStats — commits (0/1), retries, and the
/// abort breakdown by reason.
template <typename F>
TxStats run_tx(TxManager& mgr, F&& body, bool retry_on_user_abort = false) {
  TxStats st;
  for (;;) {
    try {
      mgr.txBegin();
      body();
      mgr.txEnd();
      st.commits = 1;
      return st;
    } catch (const TransactionAborted& e) {
      switch (e.reason()) {
        case AbortReason::Conflict: st.conflict_aborts++; break;
        case AbortReason::Validation: st.validation_aborts++; break;
        case AbortReason::Capacity: st.capacity_aborts++; break;
        case AbortReason::User: st.user_aborts++; break;
      }
      if (e.reason() == AbortReason::User && !retry_on_user_abort) {
        return st;
      }
      st.retries++;
    }
  }
}

}  // namespace medley

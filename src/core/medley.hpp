#pragma once
// Umbrella header: everything a Medley user (or a data structure being
// NBTC-transformed) needs.
//
//   #include "core/medley.hpp"
//
//   medley::TxManager mgr;
//   MHashTable ht1{&mgr}, ht2{&mgr};
//   medley::TxExecutor exec;  // or TxExecutor{policy} with a CM / budget
//   auto r = exec.execute(mgr, [&] {
//     auto v = ht1.get(a1);
//     if (!v || *v < amount) mgr.txAbort();  // business rule: terminal
//     ht1.put(a1, *v - amount);
//     ht2.put(a2, amount + ht2.get(a2).value_or(0));
//   });
//   if (!r.committed()) { /* r.terminal says why */ }

#include "core/cas_obj.hpp"
#include "core/composable.hpp"
#include "core/descriptor.hpp"
#include "core/tx_domain.hpp"
#include "core/tx_exec.hpp"
#include "core/tx_manager.hpp"

namespace medley {

using core::AbortReason;
using core::CASObj;
using core::Composable;
using core::Desc;
using core::OpStarter;
using core::TransactionAborted;
using core::TxDomain;
using core::TxManager;

// TxStats, TxPolicy, TxResult<T>, TxExecutor, execute_tx and the
// ContentionManager family (NoOpCM / ExpBackoffCM / KarmaCM) come from
// core/tx_exec.hpp, already in namespace medley.

/// DEPRECATED shim (one release): the pre-TxExecutor retry loop. Exactly
/// equivalent to executing under a default TxPolicy (retry transient
/// reasons unboundedly with no backoff; stop on user abort unless
/// `retry_on_user_abort`). New code should hold a TxExecutor — it returns
/// the full TxResult (value + terminal reason), takes a ContentionManager,
/// and can bound attempts. Migration:
///
///   medley::run_tx(mgr, body)            -> medley::execute_tx(mgr, body).stats
///   run_tx(mgr, body, /*retry_user=*/x)  -> TxPolicy p; p.retry_user = x;
///                                           TxExecutor{p}.execute(mgr, body)
template <typename F>
TxStats run_tx(TxManager& mgr, F&& body, bool retry_on_user_abort = false) {
  TxPolicy p;
  p.retry_user = retry_on_user_abort;
  return TxExecutor(std::move(p))
      .execute(mgr, std::forward<F>(body))
      .stats;
}

}  // namespace medley

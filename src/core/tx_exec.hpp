#pragma once
// TxExecutor: first-class transaction execution with pluggable contention
// management.
//
// The NBTC commit protocol (descriptor.hpp) fixes *what* a transaction does
// at its commit-point CAS; it deliberately says nothing about *how hard to
// retry* when an attempt aborts. Kuznetsov & Ravi ("Why Transactional
// Memory Should Not Be Obstruction-Free") make the case that progress under
// contention must come from an explicit contention-management layer layered
// over an obstruction-free core — exactly the split implemented here:
//
//   TxPolicy           which abort reasons retry, how many attempts, and
//                      WHICH ContentionManager paces the retries;
//   ContentionManager  hooks around each attempt: pacing after an abort,
//                      priority stamping for conflict arbitration, and the
//                      wait loop of boosted semantic locks (boosting.hpp);
//   TxExecutor         the ONE retry loop in the codebase. Runs a body as
//                      transactions of a TxManager until the policy says
//                      stop, and returns a TxResult instead of looping
//                      forever or leaking TransactionAborted.
//
// Contention managers provided:
//   NoOpCM        immediate retry — the historical run_tx behavior and the
//                 paper's pure eager contention management;
//   ExpBackoffCM  bounded exponential backoff between attempts (yields
//                 when saturated, and immediately for Capacity aborts,
//                 which wait on an external resource such as a Montage
//                 epoch advance — spinning cannot free it);
//   KarmaCM       timestamp priority: the first attempt of an execute()
//                 call draws a monotone timestamp, kept across its retries
//                 (age accumulates — the "karma"), and publishes it on the
//                 thread's Desc. The conflict arbitration in CASObj
//                 (TxDomain::arbitration_yields) then lets a younger
//                 transaction abort ITSELF instead of the older InPrep
//                 transaction it collided with, so old transactions are
//                 never starved by a stream of young ones. Plus backoff.
//
// All three are stateless per call or use only atomics: one instance may be
// shared by every thread (and every shard) of a store.
//
// A TxExecutor is immutable after construction and safe to share across
// threads. execute() must be called OUTSIDE any open transaction (callers
// that flat-nest check in_tx() first, as the stores do).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/descriptor.hpp"
#include "core/tx_domain.hpp"
#include "core/tx_manager.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/timing.hpp"

namespace medley {

using core::AbortReason;

/// Outcome accounting of one executed transaction: whether it committed,
/// how many aborted attempts it burned (split by reason), and how many of
/// those were retried. Aggregates with += (MedleyStore and the workload
/// drivers sum these into their counter blocks).
struct TxStats {
  std::uint64_t commits = 0;  // 0 or 1 per execute() call
  std::uint64_t retries = 0;  // aborted attempts that were re-run
  std::uint64_t conflict_aborts = 0;
  std::uint64_t validation_aborts = 0;
  std::uint64_t capacity_aborts = 0;
  std::uint64_t user_aborts = 0;

  std::uint64_t aborts() const {
    return conflict_aborts + validation_aborts + capacity_aborts +
           user_aborts;
  }

  TxStats& operator+=(const TxStats& o) {
    commits += o.commits;
    retries += o.retries;
    conflict_aborts += o.conflict_aborts;
    validation_aborts += o.validation_aborts;
    capacity_aborts += o.capacity_aborts;
    user_aborts += o.user_aborts;
    return *this;
  }
};

/// Hooks a TxExecutor drives around every transaction attempt. Implement
/// to control pacing (onAbort), priority (onAttemptStart / onFinish via
/// Desc::set_priority), and boosted-lock waits (onLockContended). Methods
/// may run concurrently on different threads — keep state atomic or
/// per-Desc.
class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  virtual const char* name() const = 0;

  /// After txBegin of attempt `attempt` (0-based) of one execute() call.
  virtual void onAttemptStart(core::Desc& d, std::uint64_t attempt) {
    (void)d;
    (void)attempt;
  }

  /// After attempt `attempt` aborted for `r`, before the retry decision.
  /// This is where inter-attempt pacing (backoff) lives.
  virtual void onAbort(core::Desc& d, core::AbortReason r,
                       std::uint64_t attempt) {
    (void)d;
    (void)r;
    (void)attempt;
  }

  /// Exactly once per execute() call, when it resolves (committed or gave
  /// up). Implementations that stamped a priority clear it here.
  virtual void onFinish(core::Desc& d, bool committed) {
    (void)d;
    (void)committed;
  }

  /// Called by a boosted semantic-lock wait (boosting.hpp boostLock) each
  /// time an acquisition poll fails; `spin` counts polls within this wait.
  /// Default: bounded exponential pacing, yielding once saturated so
  /// oversubscribed runs (TSAN on one core) let the lock holder run —
  /// the discipline whose absence made the abort->retry storm a livelock.
  virtual void onLockContended(core::Desc& d, std::uint64_t spin) {
    (void)d;
    if (spin >= 8) {
      std::this_thread::yield();
      return;
    }
    const std::uint64_t pauses = std::uint64_t{4} << spin;  // 4..512
    for (std::uint64_t i = 0; i < pauses; i++) util::cpu_relax();
  }
};

/// Immediate retry: pure eager contention management (obstruction-free but
/// livelock-prone under symmetric contention; the paper's default).
class NoOpCM final : public ContentionManager {
 public:
  const char* name() const override { return "NoOp"; }
};

/// Bounded exponential backoff between attempts. Stateless: the pause
/// budget derives from the attempt index, so one instance serves any
/// number of threads.
class ExpBackoffCM : public ContentionManager {
 public:
  explicit ExpBackoffCM(std::uint32_t min_pauses = 4,
                        std::uint32_t max_pauses = 1024)
      : min_(min_pauses), max_(max_pauses) {}

  const char* name() const override { return "ExpBackoff"; }

  void onAbort(core::Desc& d, core::AbortReason r,
               std::uint64_t attempt) override {
    (void)d;
    if (r == core::AbortReason::Capacity) {
      // Capacity waits on an external resource (e.g. the Montage epoch
      // advancer freeing retired payloads); spinning cannot free it.
      std::this_thread::yield();
      return;
    }
    const std::uint64_t pauses =
        attempt >= 16 ? max_
                      : std::min<std::uint64_t>(
                            max_, std::uint64_t{min_} << attempt);
    if (pauses >= max_) std::this_thread::yield();
    for (std::uint64_t i = 0; i < pauses; i++) util::cpu_relax();
  }

 private:
  std::uint32_t min_, max_;
};

/// Timestamp-priority contention management (Karma family): the first
/// attempt of an execute() call draws a monotone timestamp and publishes
/// it on the thread's descriptor; retries KEEP it, so a transaction's
/// priority grows with the work it has lost. CASObj's conflict path
/// (TxDomain::arbitration_yields) consults these priorities and makes the
/// younger of two prioritized transactions abort itself rather than the
/// older, still-preparing one — older transactions win. Inherits
/// ExpBackoffCM's pacing so the losing side also backs off.
class KarmaCM final : public ExpBackoffCM {
 public:
  using ExpBackoffCM::ExpBackoffCM;

  const char* name() const override { return "Karma"; }

  void onAttemptStart(core::Desc& d, std::uint64_t attempt) override {
    // Only the first attempt draws a stamp: a retry inherits its age.
    if (attempt == 0) {
      d.set_priority(clock_.fetch_add(1, std::memory_order_relaxed) + 1);
    }
  }

  void onFinish(core::Desc& d, bool committed) override {
    (void)committed;
    d.set_priority(0);  // descriptor is reused by unmanaged transactions
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
};

/// How a TxExecutor reacts to aborted attempts. Default-constructed policy
/// reproduces the historical run_tx contract exactly: retry transient
/// reasons (conflict / validation / capacity) without bound and
/// immediately, stop on the first user abort.
struct TxPolicy {
  /// Total attempt budget; 0 = unbounded. When the budget is exhausted the
  /// executor returns a non-committed TxResult (it never throws for this).
  std::uint64_t max_attempts = 0;

  // Per-reason retry rules.
  bool retry_conflict = true;
  bool retry_validation = true;
  bool retry_capacity = true;
  bool retry_user = false;

  /// Declare bodies read-only: execute() then runs one validation-free
  /// snapshot attempt first (execute_ro — no descriptor publication, no
  /// read-set tracking, one validation at the end) and falls back
  /// transparently to full transactions when the snapshot is torn or the
  /// body turns out to write. Meant for dedicated read executors (the
  /// stores build one from StoreConfig::read_only_reads); a store-wide
  /// policy with this flag would pay a wasted snapshot attempt on every
  /// mutation.
  bool read_only = false;

  /// Pacing/priority hooks; null = NoOpCM (immediate retry).
  std::shared_ptr<ContentionManager> cm;

  // ---- Observability (obs/) — all optional, all non-owning. The caller
  // guarantees the instruments outlive every execute() call under this
  // policy (the stores own them via their MetricsRegistry / TraceRing and
  // share one executor per store, so this holds by construction).

  /// End-to-end latency of each execute()/execute_ro() call, recorded in
  /// nanoseconds (TSC-sampled, scaled by util::tsc_ns_per_tick()).
  obs::Histogram* latency_hist = nullptr;

  /// Attempts consumed per call (1 = first-try commit). Read-only snapshot
  /// attempts count; abandoned RO attempts (mis-declared writers) do not,
  /// mirroring the TxStats billing rules.
  obs::Histogram* attempts_hist = nullptr;

  /// Tx-lifecycle event ring (begin / attempt / abort / retry / commit /
  /// RO fallbacks / CM backoff / arbitration yields / boostLock waits).
  /// Published on the ThreadCtx around every attempt, exactly like `cm`.
  obs::TraceRing* trace = nullptr;

  /// Record latency/attempts histogram samples for 1 in 2^obs_sample_shift
  /// calls (0 = every call). The TSC read pair alone costs ~20ns — more
  /// than 10% of a fast store op — so serving deployments sample (the
  /// stores default to 1/64 via StoreConfig::metrics_sample_shift) while
  /// benches recording exact tails keep 0. Quantiles remain unbiased (the
  /// per-thread call counter has no correlation with latency); counters
  /// and TxStats are never sampled, and trace emits stay exact.
  std::uint8_t obs_sample_shift = 0;

  bool retries(core::AbortReason r) const {
    switch (r) {
      case core::AbortReason::Conflict: return retry_conflict;
      case core::AbortReason::Validation: return retry_validation;
      case core::AbortReason::Capacity: return retry_capacity;
      case core::AbortReason::User: return retry_user;
    }
    return false;
  }

  /// Policy with a contention manager and otherwise default rules.
  static TxPolicy with(std::shared_ptr<ContentionManager> manager) {
    TxPolicy p;
    p.cm = std::move(manager);
    return p;
  }

  /// Policy with a bounded attempt budget and otherwise default rules.
  static TxPolicy bounded(std::uint64_t attempts,
                          std::shared_ptr<ContentionManager> manager = {}) {
    TxPolicy p;
    p.max_attempts = attempts;
    p.cm = std::move(manager);
    return p;
  }
};

/// How an execute_ro() snapshot attempt fell back to a full transaction
/// (set on the TxResult so stores can count fallback rates without another
/// clock read): the body turned out to write, or the one-shot snapshot
/// validation failed.
enum class ROFallback : std::uint8_t { kWrite, kValidation };

/// Outcome of one TxExecutor::execute call: the body's return value (iff
/// the transaction committed), the attempt accounting, and — when it did
/// not commit — the terminal abort reason the policy declined to retry.
template <typename T>
struct TxResult {
  std::optional<T> value;  // engaged iff committed()
  TxStats stats;
  std::optional<core::AbortReason> terminal;
  std::optional<ROFallback> ro_fallback;  // execute_ro calls only

  bool committed() const { return stats.commits != 0; }
  explicit operator bool() const { return committed(); }
};

template <>
struct TxResult<void> {
  TxStats stats;
  std::optional<core::AbortReason> terminal;
  std::optional<ROFallback> ro_fallback;  // execute_ro calls only

  bool committed() const { return stats.commits != 0; }
  explicit operator bool() const { return committed(); }
};

/// One-shot future for a submitted transaction (TxExecutor::submit and the
/// stores' async_put/async_del). Deliberately lighter than std::future: no
/// shared state allocation beyond the one std::function, no
/// condition_variable — progress is made by the CALLER's thread driving
/// `step_` (poll on ready(), drive-to-completion on get()), which is the
/// right shape for combiner-backed completion where waiting threads help
/// rather than sleep.
///
/// Single-consumer: poll and resolve from the thread that will consume the
/// value. get() must be called OUTSIDE any open transaction (resolving may
/// run or help run a transaction; nesting would corrupt the ambient one —
/// the store's future steps throw std::logic_error on that misuse).
/// A future abandoned without get() releases its resources on destruction:
/// the step's owned state is dropped, and an issuer that holds external
/// resources (a combiner publication slot) attaches an on_abandon hook
/// that reclaims them — so dropping an unresolved future (e.g. during
/// exception unwinding between submit and harvest) does not leak capacity.
/// The hook runs on the destroying thread and may execute the pending
/// work; see the issuing API for its caveats.
template <typename T>
class TxFuture {
 public:
  TxFuture() = default;

  /// `step(self, block)`: advance the computation; with block=true, do not
  /// return until resolved. Returns true once `self` holds a value or an
  /// error. The step must fill value_/err_ via set_value/set_error.
  /// `on_abandon`, when given, runs if the future is destroyed (or
  /// move-assigned over) before it resolved — the issuer's chance to
  /// reclaim resources the step would have consumed. Exceptions out of it
  /// are swallowed (it runs on destruction paths).
  explicit TxFuture(std::function<bool(TxFuture&, bool)> step,
                    std::function<void()> on_abandon = nullptr)
      : step_(std::move(step)), on_abandon_(std::move(on_abandon)) {}

  ~TxFuture() { abandon(); }

  TxFuture(TxFuture&& o) noexcept
      : step_(std::move(o.step_)), on_abandon_(std::move(o.on_abandon_)),
        value_(std::move(o.value_)), err_(std::move(o.err_)),
        done_(o.done_) {
    // A moved-from std::function is only "valid but unspecified": clear
    // explicitly so the source can never re-run the abandon hook.
    o.step_ = nullptr;
    o.on_abandon_ = nullptr;
  }
  TxFuture& operator=(TxFuture&& o) noexcept {
    if (this != &o) {
      abandon();
      step_ = std::move(o.step_);
      on_abandon_ = std::move(o.on_abandon_);
      value_ = std::move(o.value_);
      err_ = std::move(o.err_);
      done_ = o.done_;
      o.step_ = nullptr;
      o.on_abandon_ = nullptr;
    }
    return *this;
  }
  TxFuture(const TxFuture&) = delete;
  TxFuture& operator=(const TxFuture&) = delete;

  /// An already-resolved future (the eager-fallback path of async stores).
  static TxFuture ready(T value) {
    TxFuture f;
    f.done_ = true;
    f.value_.emplace(std::move(value));
    return f;
  }
  static TxFuture error(std::exception_ptr err) {
    TxFuture f;
    f.done_ = true;
    f.err_ = std::move(err);
    return f;
  }

  bool valid() const { return done_ || static_cast<bool>(step_); }

  /// Non-blocking: advance if possible, report whether get() would return
  /// without waiting.
  bool ready() {
    if (!done_ && step_) done_ = step_(*this, /*block=*/false);
    return done_;
  }

  /// Drive to completion (possibly executing or helping execute the
  /// transaction on this thread), then return the value or rethrow the
  /// transaction's error. Consumes the future.
  T get() {
    while (!done_) {
      if (!step_) throw std::logic_error("TxFuture::get on empty future");
      done_ = step_(*this, /*block=*/true);
    }
    step_ = nullptr;
    on_abandon_ = nullptr;
    if (err_) std::rethrow_exception(err_);
    return std::move(*value_);
  }

  // Resolution interface for step functions.
  void set_value(T v) { value_.emplace(std::move(v)); }
  void set_error(std::exception_ptr e) { err_ = std::move(e); }

 private:
  /// Run the issuer's cleanup hook iff the future never resolved (a
  /// resolved step already consumed its resources). Destruction-path
  /// code: never throws.
  void abandon() noexcept {
    if (!done_ && on_abandon_) {
      try {
        on_abandon_();
      } catch (...) {
      }
    }
    on_abandon_ = nullptr;
  }

  std::function<bool(TxFuture&, bool)> step_;
  std::function<void()> on_abandon_;
  std::optional<T> value_;
  std::exception_ptr err_;
  bool done_ = false;
};

/// The one transaction retry loop. Immutable and shareable across threads;
/// per-call state lives on the stack and the calling thread's ThreadCtx.
class TxExecutor {
 public:
  TxExecutor() = default;
  explicit TxExecutor(TxPolicy policy) : policy_(std::move(policy)) {}

  const TxPolicy& policy() const { return policy_; }

  /// The contention manager attempts run under (the policy's, or the
  /// process-wide NoOp instance).
  ContentionManager& cm() const {
    static NoOpCM noop;
    return policy_.cm ? *policy_.cm : static_cast<ContentionManager&>(noop);
  }

  /// Run `body` as transactions rooted at `mgr` until one commits or the
  /// policy stops retrying. `body` may call mgr.txAbort() /
  /// txAbortCapacity(); TransactionAborted never escapes this call. A
  /// foreign exception thrown by `body` aborts the open attempt and
  /// propagates (the transaction is closed, CM notified). A policy with
  /// read_only set routes through execute_ro (snapshot attempt first).
  template <typename F>
  auto execute(core::TxManager& mgr, F&& body)
      -> TxResult<std::decay_t<std::invoke_result_t<F&>>> {
    using R = std::decay_t<std::invoke_result_t<F&>>;
    if (policy_.read_only) return execute_ro(mgr, std::forward<F>(body));
    const bool sampled = obs_sampled();
    const std::uint64_t t0 =
        sampled && policy_.latency_hist ? util::tsc_now() : 0;
    if (policy_.trace) policy_.trace->emit(obs::TraceEvent::kBegin);
    auto res = run_full<R>(mgr, body, 0);
    note_resolved(sampled, t0, res.stats);
    return res;
  }

  /// Run `body` once as a READ-ONLY transaction of `mgr` — no descriptor
  /// publication, no read-set tracking, one validation at txEndRO — and
  /// fall back transparently to full transactions (run under the policy,
  /// exactly as execute()) when the snapshot attempt cannot commit:
  ///
  ///   ReadOnlyViolation (the body wrote): the attempt is ABANDONED, not
  ///     aborted — nothing is billed at either the TxStats or the
  ///     TxManager level and no attempt-budget slot is consumed; a
  ///     mis-declared body is a mode switch, not contention.
  ///   TransactionAborted (torn snapshot, or the body's own txAbort):
  ///     billed once under its reason — the snapshot attempt consumes
  ///     attempt 0 of the policy budget, and the fallback counts one
  ///     retry for the mode switch. The policy's per-reason rules apply:
  ///     a reason it declines to retry is terminal here too.
  ///
  /// Either way the whole call bills exactly one logical operation: at
  /// most one commit, and each attempt exactly once under its outcome.
  /// Contention-manager hooks do not run around the snapshot attempt
  /// (there is no descriptor for them to stamp or pace); the fallback
  /// runs the full hook lifecycle.
  template <typename F>
  auto execute_ro(core::TxManager& mgr, F&& body)
      -> TxResult<std::decay_t<std::invoke_result_t<F&>>> {
    using R = std::decay_t<std::invoke_result_t<F&>>;
    TxResult<R> res;
    std::uint64_t attempts_used = 0;
    const bool sampled = obs_sampled();
    const std::uint64_t t0 =
        sampled && policy_.latency_hist ? util::tsc_now() : 0;
    if (policy_.trace) {
      policy_.trace->emit(obs::TraceEvent::kBegin);
      policy_.trace->emit(obs::TraceEvent::kROAttempt);
    }
    try {
      mgr.txBeginRO();
      if constexpr (std::is_void_v<R>) {
        body();
      } else {
        res.value = body();
      }
      mgr.txEndRO();
      res.stats.commits = 1;
      if (policy_.trace) policy_.trace->emit(obs::TraceEvent::kROCommit);
      note_resolved(sampled, t0, res.stats);
      return res;
    } catch (const core::ReadOnlyViolation&) {
      mgr.txAbandonRO();
      if constexpr (!std::is_void_v<R>) res.value.reset();
      res.ro_fallback = ROFallback::kWrite;
      if (policy_.trace)
        policy_.trace->emit(obs::TraceEvent::kROFallbackWrite);
    } catch (const core::TransactionAborted& e) {
      if constexpr (!std::is_void_v<R>) res.value.reset();
      switch (e.reason()) {
        case core::AbortReason::Conflict: res.stats.conflict_aborts++; break;
        case core::AbortReason::Validation:
          res.stats.validation_aborts++;
          break;
        case core::AbortReason::Capacity: res.stats.capacity_aborts++; break;
        case core::AbortReason::User: res.stats.user_aborts++; break;
      }
      if (policy_.trace)
        policy_.trace->emit(obs::TraceEvent::kAbort,
                            static_cast<std::uint8_t>(e.reason()), 0);
      const bool budget_left = policy_.max_attempts == 0 ||
                               policy_.max_attempts > 1;
      if (!policy_.retries(e.reason()) || !budget_left) {
        res.terminal = e.reason();
        if (policy_.trace)
          policy_.trace->emit(obs::TraceEvent::kGiveUp,
                              static_cast<std::uint8_t>(e.reason()), 0);
        note_resolved(sampled, t0, res.stats);
        return res;
      }
      res.stats.retries++;
      attempts_used = 1;
      res.ro_fallback = ROFallback::kValidation;
      if (policy_.trace)
        policy_.trace->emit(obs::TraceEvent::kROFallbackValidation,
                            static_cast<std::uint8_t>(e.reason()));
    } catch (...) {
      // Foreign exception out of the body: close the open snapshot
      // attempt (unbilled) and propagate.
      mgr.txAbandonRO();
      throw;
    }
    auto full = run_full<R>(mgr, body, attempts_used);
    res.stats += full.stats;
    res.terminal = full.terminal;
    if constexpr (!std::is_void_v<R>) res.value = std::move(full.value);
    note_resolved(sampled, t0, res.stats);
    return res;
  }

  /// Submit `body` for execution, returning a future for its TxResult so
  /// the caller can pipeline. On a bare executor the future is LAZY: the
  /// transaction runs on the first ready()/get() call, on the resolving
  /// thread (there is no combiner here to run it concurrently — the stores'
  /// async_put/async_del layer this same future over their FlatCombiner,
  /// where a submitted op genuinely progresses while the caller works).
  /// The executor and `mgr` must outlive the future; resolve it outside
  /// any open transaction.
  template <typename F>
  auto submit(core::TxManager& mgr, F body)
      -> TxFuture<TxResult<std::decay_t<std::invoke_result_t<F&>>>> {
    using R = std::decay_t<std::invoke_result_t<F&>>;
    using Fut = TxFuture<TxResult<R>>;
    return Fut([this, &mgr, body = std::move(body)](Fut& self,
                                                    bool) mutable {
      try {
        self.set_value(this->execute(mgr, body));
      } catch (...) {
        self.set_error(std::current_exception());
      }
      return true;
    });
  }

 private:
  /// Record end-of-call instruments (latency in ns, attempts consumed).
  /// Trace events are emitted at the exact transition points instead.
  void note_resolved(bool sampled, std::uint64_t t0, const TxStats& s) const {
    if (!sampled) return;
    if (policy_.latency_hist) {
      const double ns = static_cast<double>(util::tsc_now() - t0) *
                        util::tsc_ns_per_tick();
      policy_.latency_hist->record(
          ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
    if (policy_.attempts_hist)
      policy_.attempts_hist->record(s.aborts() + s.commits);
  }

  /// The 1-in-2^obs_sample_shift histogram-sampling decision for this
  /// call. The counter is a plain process-wide thread_local (shared by
  /// every executor — it only needs to be uncorrelated with latency, and
  /// round-robin over calls is). shift 0 short-circuits to true so
  /// unsampled policies (benches recording exact tails) pay one branch.
  bool obs_sampled() const noexcept {
    if (policy_.obs_sample_shift == 0) return true;
    static thread_local std::uint32_t calls = 0;
    return (calls++ & ((1u << policy_.obs_sample_shift) - 1)) == 0;
  }

  /// The full-transaction retry loop (the historical execute()), with the
  /// attempt counter starting at `attempts_used` so a preceding snapshot
  /// attempt consumes its slot of the policy budget.
  template <typename R, typename F>
  TxResult<R> run_full(core::TxManager& mgr, F& body,
                       std::uint64_t attempts_used) {
    TxResult<R> res;
    ContentionManager& manager = cm();
    obs::TraceRing* trace = policy_.trace;
    core::ThreadCtx* ctx = mgr.domain()->my_ctx();
    core::Desc& d = *ctx->desc;
    // Publish the manager and trace ring for intra-attempt hooks
    // (boostLock's semantic lock wait, CASObj's conflict arbitration);
    // restored whichever way the call ends.
    ContentionManager* prev_cm = ctx->cm;
    obs::TraceRing* prev_trace = ctx->trace;
    ctx->cm = &manager;
    ctx->trace = trace;
    for (std::uint64_t attempt = attempts_used;; attempt++) {
      bool opened = false;
      try {
        if (trace)
          trace->emit(obs::TraceEvent::kAttempt, 0,
                      static_cast<std::uint32_t>(attempt));
        mgr.txBegin();
        opened = true;
        manager.onAttemptStart(d, attempt);
        if constexpr (std::is_void_v<R>) {
          body();
        } else {
          res.value = body();
        }
        mgr.txEnd();
        res.stats.commits = 1;
        res.terminal.reset();
        ctx->cm = prev_cm;
        ctx->trace = prev_trace;
        manager.onFinish(d, true);
        if (trace)
          trace->emit(obs::TraceEvent::kCommit, 0,
                      static_cast<std::uint32_t>(attempt + 1));
        return res;
      } catch (const core::TransactionAborted& e) {
        switch (e.reason()) {
          case core::AbortReason::Conflict: res.stats.conflict_aborts++; break;
          case core::AbortReason::Validation:
            res.stats.validation_aborts++;
            break;
          case core::AbortReason::Capacity: res.stats.capacity_aborts++; break;
          case core::AbortReason::User: res.stats.user_aborts++; break;
        }
        if (trace)
          trace->emit(obs::TraceEvent::kAbort,
                      static_cast<std::uint8_t>(e.reason()),
                      static_cast<std::uint32_t>(attempt));
        manager.onAbort(d, e.reason(), attempt);
        if (trace && policy_.cm)
          trace->emit(obs::TraceEvent::kCMBackoff,
                      static_cast<std::uint8_t>(e.reason()),
                      static_cast<std::uint32_t>(attempt));
        const bool budget_left =
            policy_.max_attempts == 0 || attempt + 1 < policy_.max_attempts;
        if (!policy_.retries(e.reason()) || !budget_left) {
          res.terminal = e.reason();
          if constexpr (!std::is_void_v<R>) res.value.reset();
          ctx->cm = prev_cm;
          ctx->trace = prev_trace;
          manager.onFinish(d, false);
          if (trace)
            trace->emit(obs::TraceEvent::kGiveUp,
                        static_cast<std::uint8_t>(e.reason()),
                        static_cast<std::uint32_t>(attempt + 1));
          return res;
        }
        res.stats.retries++;
        if (trace)
          trace->emit(obs::TraceEvent::kRetry,
                      static_cast<std::uint8_t>(e.reason()),
                      static_cast<std::uint32_t>(attempt + 1));
      } catch (...) {
        // Foreign exception out of the body: close the attempt cleanly
        // (roll back speculative state, release boosted locks) and let it
        // propagate to the caller.
        ctx->cm = prev_cm;
        ctx->trace = prev_trace;
        manager.onFinish(d, false);
        if (opened && mgr.in_tx()) {
          try {
            mgr.txAbort();
          } catch (const core::TransactionAborted&) {
          }
        }
        throw;
      }
    }
  }

  TxPolicy policy_;
};

/// One-shot convenience: execute `body` under `policy` (default policy =
/// historical run_tx semantics with no backoff).
template <typename F>
auto execute_tx(core::TxManager& mgr, F&& body, TxPolicy policy = {}) {
  return TxExecutor(std::move(policy)).execute(mgr, std::forward<F>(body));
}

}  // namespace medley

#pragma once
// Transactional boosting support (paper Sec. 3.1: "Composable also
// provides an API for transactional boosting, which can be used to
// incorporate lock-based operations into Medley transactions (at the
// cost, of course, of nonblocking progress)").
//
// Following Herlihy & Koskinen (PPoPP '08): a *boosted* object is any
// linearizable (here: lock-based) object whose operations commute when
// they touch different abstract keys. Each boosted operation
//   1. acquires the semantic lock for its key for the remainder of the
//      transaction (two-phase; bounded acquisition with abort-on-timeout
//      for deadlock avoidance),
//   2. executes immediately against the underlying object, and
//   3. registers its inverse, which runs (in reverse order) if the
//      transaction aborts.
// On commit the inverses are discarded and the locks released; on abort
// the inverses roll the object back before the locks release.
//
// Boosted operations therefore compose freely with NBTC operations in one
// Medley transaction — but any transaction that touches a boosted object
// is blocking for the duration of its semantic locks.

#include <functional>

#include "core/composable.hpp"
#include "core/tx_exec.hpp"
#include "obs/trace.hpp"
#include "util/align.hpp"
#include "util/backoff.hpp"
#include "util/thread_registry.hpp"

namespace medley::core {

/// Striped table of semantic locks keyed by 64-bit abstract keys.
/// Ownership is per *thread* (a transaction's locks are whatever its
/// thread acquired and not yet released); acquisition is reentrant.
class AbstractLockTable {
 public:
  explicit AbstractLockTable(std::size_t stripes = 1024)
      : mask_(round_up_pow2(stripes) - 1),
        locks_(new Stripe[mask_ + 1]) {}

  /// Try to acquire the lock for `key` on behalf of the calling thread.
  /// Spins a bounded time, invoking `pace(i)` after failed poll i; false
  /// means the caller should abort (deadlock avoidance — the classic
  /// boosting discipline). The pacer is where contention management plugs
  /// in: boostLock routes it through the executing TxPolicy's
  /// ContentionManager (onLockContended).
  template <typename Pacer>
  bool try_acquire(std::uint64_t key, int max_spins, Pacer&& pace) {
    Stripe& s = stripe_of(key);
    const std::uint64_t me =
        static_cast<std::uint64_t>(util::ThreadRegistry::tid()) + 1;
    std::uint64_t cur = s.owner.load(std::memory_order_acquire);
    if (cur == me) {
      s.depth++;
      return true;
    }
    for (int i = 0; i < max_spins; i++) {
      if (cur == 0 && s.owner.compare_exchange_weak(
                          cur, me, std::memory_order_acq_rel)) {
        s.depth = 1;
        return true;
      }
      pace(static_cast<std::uint64_t>(i));
      cur = s.owner.load(std::memory_order_acquire);
      if (cur == me) {  // acquired by an earlier op of this same tx
        s.depth++;
        return true;
      }
    }
    return false;
  }

  /// Default pacing: bounded exponential backoff.
  bool try_acquire(std::uint64_t key, int max_spins = 4096) {
    util::ExpBackoff backoff;
    return try_acquire(key, max_spins,
                       [&](std::uint64_t) { backoff(); });
  }

  /// Release one acquisition of `key` by the calling thread.
  void release(std::uint64_t key) {
    Stripe& s = stripe_of(key);
    const std::uint64_t me =
        static_cast<std::uint64_t>(util::ThreadRegistry::tid()) + 1;
    if (s.owner.load(std::memory_order_relaxed) != me) return;  // defensive
    if (--s.depth == 0) {
      s.owner.store(0, std::memory_order_release);
    }
  }

  bool held_by_me(std::uint64_t key) {
    const std::uint64_t me =
        static_cast<std::uint64_t>(util::ThreadRegistry::tid()) + 1;
    return stripe_of(key).owner.load(std::memory_order_acquire) == me;
  }

 private:
  struct alignas(util::kCacheLine) Stripe {
    std::atomic<std::uint64_t> owner{0};  // tid+1, 0 = free
    int depth = 0;                        // reentrancy count (owner-only)
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Stripe& stripe_of(std::uint64_t key) {
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return locks_[h & mask_];
  }

  const std::size_t mask_;
  std::unique_ptr<Stripe[]> locks_;
};

/// Base class for boosted (lock-based) objects participating in Medley
/// transactions. Derive, then in each operation:
///
///   OpStarter op(mgr);
///   boostLock(key);                 // may throw TransactionAborted
///   ... mutate the underlying object under your own synchronization ...
///   addInverse([=]{ ...undo... });  // for mutators
///
#ifdef __GNUC__
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wnon-virtual-dtor"
#endif
class BoostedComposable : public Composable {
 public:
  BoostedComposable(TxManager* manager, std::size_t stripes = 1024)
      : Composable(manager), locks_(stripes) {}

 protected:
  /// Two-phase semantic lock on `key`. Inside a transaction the lock is
  /// held until commit/abort; outside it is held until the returned guard
  /// dies (end of the operation).
  class BoostGuard {
   public:
    BoostGuard(AbstractLockTable* t, std::uint64_t k) : table_(t), key_(k) {}
    BoostGuard(BoostGuard&& o) noexcept
        : table_(o.table_), key_(o.key_) {
      o.table_ = nullptr;
    }
    ~BoostGuard() {
      if (table_ != nullptr) table_->release(key_);
    }
    BoostGuard(const BoostGuard&) = delete;

   private:
    AbstractLockTable* table_;
    std::uint64_t key_;
  };

  BoostGuard boostLock(std::uint64_t key) {
    TxManager::ThreadCtx* c = TxManager::active_ctx();
    if (c != nullptr && c->read_only) {
      // Boosted operations mutate under semantic locks — there is no
      // snapshot-read story for them. Treat like any other write in a
      // read-only transaction: the executor re-runs the body in full.
      throw core::ReadOnlyViolation();
    }
    if (c == nullptr) {
      // Standalone operation: block until acquired, release at op end.
      while (!locks_.try_acquire(key)) {
      }
      return BoostGuard(&locks_, key);
    }
    // Inside a transaction the bounded wait is contention-managed: when a
    // TxExecutor drives this transaction, every failed poll routes through
    // its ContentionManager (and the post-abort retry of the whole
    // transaction is paced by the same manager — the pair of hooks that
    // turns boosting's abort->retry storm from a livelock into backoff).
    const bool acquired =
        c->cm != nullptr
            ? locks_.try_acquire(key, kTxMaxSpins,
                                 [&](std::uint64_t spin) {
                                   // One lifecycle event per contended wait
                                   // (first failed poll), not per poll.
                                   if (spin == 0 && c->trace != nullptr)
                                     c->trace->emit(
                                         obs::TraceEvent::kLockContended, 1);
                                   c->cm->onLockContended(*c->desc, spin);
                                 })
            : locks_.try_acquire(key, kTxMaxSpins);
    if (!acquired) {
      // Bounded wait expired: deadlock avoidance says abort.
      abortTx(AbortReason::Conflict);
    }
    // Held until the transaction resolves, whichever way.
    AbstractLockTable* t = &locks_;
    c->cleanups.push_back([t, key] { t->release(key); });
    c->compensations.push_back([t, key] { t->release(key); });
    return BoostGuard(nullptr, 0);  // inert: tx hooks own the release
  }

  /// Register the inverse of a just-executed boosted mutation; runs (in
  /// reverse registration order) iff the transaction aborts. Outside a
  /// transaction this is a no-op — the operation is already final.
  void addInverse(std::function<void()> undo) {
    if (TxManager::ThreadCtx* c = TxManager::active_ctx()) {
      c->compensations.push_back(std::move(undo));
    }
  }

 private:
  /// Poll budget of the transactional bounded wait (deadlock avoidance:
  /// a transaction never waits unboundedly on a semantic lock).
  static constexpr int kTxMaxSpins = 4096;

  AbstractLockTable locks_;
};
#ifdef __GNUC__
#pragma GCC diagnostic pop
#endif

}  // namespace medley::core

#pragma once
// MetricsRegistry: named counters / gauges / histograms with label support,
// exportable as Prometheus text exposition or a JSON dump.
//
// Registration (counter()/gauge()/histogram()) is a cold path under a mutex
// and is idempotent: the same (name, labels) pair returns the same object,
// so layers can re-resolve instruments without coordination. Callers resolve
// instruments ONCE at construction and keep raw references — the returned
// references are stable for the registry's lifetime. The hot path (inc(),
// record()) never touches the registry: counters and histograms bump
// lazily allocated per-thread slots (util::PerThreadSlots), gauges are a
// single atomic or a pull callback.
//
// Exposition conventions: counters end in _total, histograms are exported in
// Prometheus summary form (quantile="0.5/0.9/0.99/0.999" series plus _sum
// and _count) because log-bucketed u64 histograms would otherwise emit ~976
// le-buckets per series. Values are unit-agnostic; by repo convention
// latency series carry an _ns suffix and record nanoseconds.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "util/per_thread.hpp"

namespace medley::obs {

/// Label set, e.g. {{"op", "get"}, {"shard", "0"}}. Order-insensitive:
/// the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count; per-thread slots, no shared writes.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    auto& s = slots_.mine();
    s.store(s.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    slots_.for_each([&](const std::atomic<std::uint64_t>& s) {
      total += s.load(std::memory_order_relaxed);
    });
    return total;
  }

 private:
  util::PerThreadSlots<std::atomic<std::uint64_t>> slots_;
};

/// Point-in-time value: either set()/add() on an atomic, or a pull callback
/// bound at registration (bind() before concurrent use — it is not synced).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  void bind(std::function<double()> fn) { fn_ = std::move(fn); }
  double value() const {
    return fn_ ? fn_() : v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
  std::function<double()> fn_;
};

class MetricsRegistry {
 public:
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};

  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {}) {
    return *series(name, help, 'c', std::move(labels)).c;
  }

  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {}) {
    return *series(name, help, 'g', std::move(labels)).g;
  }

  /// Pull-mode gauge: `fn` is invoked at exposition time. It must be safe to
  /// call from any thread for the registry's lifetime.
  Gauge& gauge_fn(const std::string& name, const std::string& help,
                  Labels labels, std::function<double()> fn) {
    Gauge& g = gauge(name, help, std::move(labels));
    g.bind(std::move(fn));
    return g;
  }

  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels = {}) {
    return *series(name, help, 'h', std::move(labels)).h;
  }

  /// Prometheus text exposition (version 0.0.4).
  std::string prometheus() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    for (const auto& [name, fam] : families_) {
      out += "# HELP " + name + " " + escape_help(fam.help) + "\n";
      out += "# TYPE " + name + " " + type_name(fam.type) + "\n";
      for (const auto& sp : series_) {
        if (sp->name != name) continue;
        expose_series(*sp, fam.type, out);
      }
    }
    return out;
  }

  /// JSON dump: an array of series objects with their current values.
  std::string json() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::string out = "[";
    bool first = true;
    for (const auto& sp : series_) {
      if (!first) out += ",";
      first = false;
      const char type = families_.at(sp->name).type;
      out += "{\"name\":\"" + json_escape(sp->name) + "\",\"type\":\"" +
             type_name(type) + "\",\"labels\":{";
      for (std::size_t i = 0; i < sp->labels.size(); i++) {
        if (i) out += ",";
        out += "\"" + json_escape(sp->labels[i].first) + "\":\"" +
               json_escape(sp->labels[i].second) + "\"";
      }
      out += "},";
      if (type == 'c') {
        out += "\"value\":" + std::to_string(sp->c->value());
      } else if (type == 'g') {
        out += "\"value\":" + fmt_double(sp->g->value());
      } else {
        const HistogramSnapshot snap = sp->h->snapshot();
        out += "\"count\":" + std::to_string(snap.count) +
               ",\"sum\":" + std::to_string(snap.sum) +
               ",\"min\":" + std::to_string(snap.count ? snap.min : 0) +
               ",\"max\":" + std::to_string(snap.max) +
               ",\"p50\":" + std::to_string(snap.quantile(0.5)) +
               ",\"p90\":" + std::to_string(snap.quantile(0.9)) +
               ",\"p99\":" + std::to_string(snap.quantile(0.99)) +
               ",\"p999\":" + std::to_string(snap.quantile(0.999));
      }
      out += "}";
    }
    out += "]";
    return out;
  }

 private:
  struct Family {
    std::string help;
    char type;  // 'c' counter, 'g' gauge, 'h' histogram-as-summary
  };
  struct Series {
    std::string name;
    Labels labels;  // canonical (key-sorted)
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Series& series(const std::string& name, const std::string& help, char type,
                 Labels labels) {
    std::sort(labels.begin(), labels.end());
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = families_.try_emplace(name, Family{help, type});
    if (!inserted && it->second.type != type)
      throw std::logic_error("metric '" + name +
                             "' re-registered with a different type");
    for (const auto& sp : series_) {
      if (sp->name == name && sp->labels == labels) return *sp;
    }
    auto sp = std::make_unique<Series>();
    sp->name = name;
    sp->labels = std::move(labels);
    if (type == 'c') sp->c = std::make_unique<Counter>();
    if (type == 'g') sp->g = std::make_unique<Gauge>();
    if (type == 'h') sp->h = std::make_unique<Histogram>();
    series_.push_back(std::move(sp));
    return *series_.back();
  }

  static const char* type_name(char t) {
    return t == 'c' ? "counter" : t == 'g' ? "gauge" : "summary";
  }

  static std::string escape_label(const std::string& v) {
    std::string out;
    for (char c : v) {
      if (c == '\\') out += "\\\\";
      else if (c == '"') out += "\\\"";
      else if (c == '\n') out += "\\n";
      else out += c;
    }
    return out;
  }

  static std::string escape_help(const std::string& v) {
    std::string out;
    for (char c : v) {
      if (c == '\\') out += "\\\\";
      else if (c == '\n') out += "\\n";
      else out += c;
    }
    return out;
  }

  static std::string json_escape(const std::string& v) {
    std::string out;
    for (char c : v) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  }

  static std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
  }

  static std::string label_block(const Labels& labels,
                                 const std::string& extra = {}) {
    if (labels.empty() && extra.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ",";
      first = false;
      out += k + "=\"" + escape_label(v) + "\"";
    }
    if (!extra.empty()) {
      if (!first) out += ",";
      out += extra;
    }
    out += "}";
    return out;
  }

  static void expose_series(const Series& s, char type, std::string& out) {
    if (type == 'c') {
      out += s.name + label_block(s.labels) + " " +
             std::to_string(s.c->value()) + "\n";
    } else if (type == 'g') {
      out += s.name + label_block(s.labels) + " " + fmt_double(s.g->value()) +
             "\n";
    } else {
      const HistogramSnapshot snap = s.h->snapshot();
      for (double q : kQuantiles) {
        out += s.name +
               label_block(s.labels, "quantile=\"" + fmt_double(q) + "\"") +
               " " + std::to_string(snap.quantile(q)) + "\n";
      }
      out += s.name + "_sum" + label_block(s.labels) + " " +
             std::to_string(snap.sum) + "\n";
      out += s.name + "_count" + label_block(s.labels) + " " +
             std::to_string(snap.count) + "\n";
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::unique_ptr<Series>> series_;
};

}  // namespace medley::obs

#pragma once
// Mergeable per-thread log-bucketed latency histogram (HDR-style).
//
// Layout: values below 16 get exact unit buckets; above that, each power-of-
// two octave is split into 16 linear sub-buckets, so any recorded value maps
// to a bucket whose width is at most 1/16 of its magnitude (<= 6.25% relative
// error on quantiles). Counts are EXACT — this is a bucketed census, not a
// probabilistic sketch — which is what makes per-thread slots mergeable by
// plain summation.
//
// Hot path: one branch + shift to find the bucket, then three relaxed
// single-writer atomic bumps in a lazily allocated per-thread slot (the
// StoreStats pattern, via util::PerThreadSlots). There are no shared writes;
// snapshot() merges slots on the reader's side.
//
// The histogram is unit-agnostic: callers record nanoseconds, TSC ticks, or
// attempt counts alike, and scale at exposition time if needed.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "util/per_thread.hpp"

namespace medley::obs {

/// Bucket geometry, shared by Histogram and its snapshots.
struct HistogramBuckets {
  static constexpr int kSubBits = 4;               // 16 sub-buckets per octave
  static constexpr int kSubCount = 1 << kSubBits;  // values < 16 are exact
  static constexpr int kBucketCount =
      ((64 - kSubBits) << kSubBits) + kSubCount;  // 976 for the full u64 range

  static constexpr int bucket_of(std::uint64_t v) noexcept {
    if (v < static_cast<std::uint64_t>(kSubCount)) return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits;
    return ((shift + 1) << kSubBits) +
           static_cast<int>((v >> shift) & (kSubCount - 1));
  }

  /// Smallest value mapping to bucket b.
  static constexpr std::uint64_t lower_bound(int b) noexcept {
    if (b < kSubCount) return static_cast<std::uint64_t>(b);
    const int shift = (b >> kSubBits) - 1;
    return (static_cast<std::uint64_t>(kSubCount + (b & (kSubCount - 1))))
           << shift;
  }

  /// Largest value mapping to bucket b.
  static constexpr std::uint64_t upper_bound(int b) noexcept {
    return b + 1 < kBucketCount ? lower_bound(b + 1) - 1 : ~std::uint64_t{0};
  }
};

/// Point-in-time merge of all per-thread slots. Plain data: copy, add, and
/// query freely off the hot path.
class HistogramSnapshot {
 public:
  std::array<std::uint64_t, HistogramBuckets::kBucketCount> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = ~std::uint64_t{0};  // undefined when count == 0
  std::uint64_t max = 0;

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) {
    for (int i = 0; i < HistogramBuckets::kBucketCount; i++)
      counts[i] += o.counts[i];
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    return *this;
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q*count)-th smallest recorded value, clamped to the observed
  /// max (so quantile(1.0) == max and sub-16 values are exact). 0 if empty.
  std::uint64_t quantile(double q) const {
    if (count == 0) return 0;
    if (q <= 0.0) return min;
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.9999999999);
    rank = std::min(std::max<std::uint64_t>(rank, 1), count);
    std::uint64_t seen = 0;
    for (int b = 0; b < HistogramBuckets::kBucketCount; b++) {
      seen += counts[b];
      if (seen >= rank)
        return std::min(HistogramBuckets::upper_bound(b), max);
    }
    return max;  // unreachable when counts are consistent
  }

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

class Histogram {
 public:
  /// Record one value. Wait-free; no shared writes.
  void record(std::uint64_t v) noexcept {
    Slot& s = slots_.mine();
    const int b = HistogramBuckets::bucket_of(v);
    // Single-writer slots: relaxed load+store beats an RMW on the hot path.
    s.counts[b].store(s.counts[b].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    s.sum.store(s.sum.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
    if (v < s.min.load(std::memory_order_relaxed))
      s.min.store(v, std::memory_order_relaxed);
    if (v > s.max.load(std::memory_order_relaxed))
      s.max.store(v, std::memory_order_relaxed);
  }

  /// Merge every thread's slot. Safe concurrently with writers; each counter
  /// read is tear-free (totals may trail in-flight records by a few).
  HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    slots_.for_each([&](const Slot& s) {
      const std::uint64_t n = slot_count(s, out);
      if (n == 0) return;
      out.count += n;
      out.sum += s.sum.load(std::memory_order_relaxed);
      out.min = std::min(out.min, s.min.load(std::memory_order_relaxed));
      out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    });
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> counts[HistogramBuckets::kBucketCount] = {};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  static std::uint64_t slot_count(const Slot& s, HistogramSnapshot& out) {
    std::uint64_t n = 0;
    for (int i = 0; i < HistogramBuckets::kBucketCount; i++) {
      const std::uint64_t c = s.counts[i].load(std::memory_order_relaxed);
      out.counts[i] += c;
      n += c;
    }
    return n;
  }

  util::PerThreadSlots<Slot> slots_;
};

}  // namespace medley::obs

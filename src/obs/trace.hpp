#pragma once
// Per-thread fixed-capacity ring of transaction-lifecycle events.
//
// Each thread appends two-word records (TSC timestamp + packed payload) into
// its own lazily allocated ring; nothing is shared on the emit path, so a
// traced run perturbs the interleaving it is trying to observe as little as
// possible (~a dozen ns per event). Rings wrap: the newest `capacity` events
// per thread survive, and written() exposes how many were ever emitted so
// dumps can report drops.
//
// This header depends only on util/ so that core headers (TxExecutor, the
// CASObj arbitration path, boosting) can include it without cycles. Abort
// reasons travel as a raw uint8_t for the same reason; callers cast from
// AbortReason.
//
// dump() is race-free at any time (every access is atomic), but an event
// being overwritten mid-read on a wrapped ring can pair a new timestamp with
// an old payload. Dump at quiescence (or after joining workers) for exact
// post-mortem analysis; that is the intended use.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/per_thread.hpp"
#include "util/timing.hpp"

namespace medley::obs {

enum class TraceEvent : std::uint8_t {
  kBegin = 0,         // execute() entered
  kAttempt,           // aux = attempt index (0-based)
  kAbort,             // arg = AbortReason, aux = attempt index
  kCMBackoff,         // CM pacing ran after an abort; arg = reason
  kRetry,             // arg = reason of prior abort, aux = next attempt
  kCommit,            // aux = attempts used (1-based)
  kGiveUp,            // arg = last reason, aux = attempts used
  kROAttempt,         // read-only snapshot attempt
  kROCommit,          // read-only snapshot validated
  kROFallbackWrite,   // RO body wrote; re-running as a full tx
  kROFallbackValidation,  // RO validation failed; falling back to full tx
  kArbitrationYield,  // CASObj met a higher-priority descriptor and yielded
  kLockContended,     // boostLock poll failed; arg = 1 on tx path, aux = spin
  kCombineBatch,      // combiner executed a batch; aux = ops in the batch
  kCombinerHandoff,   // waiter's op completed by another thread's batch;
                      // aux = pacing rounds the waiter spent
};

inline const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kBegin: return "begin";
    case TraceEvent::kAttempt: return "attempt";
    case TraceEvent::kAbort: return "abort";
    case TraceEvent::kCMBackoff: return "cm_backoff";
    case TraceEvent::kRetry: return "retry";
    case TraceEvent::kCommit: return "commit";
    case TraceEvent::kGiveUp: return "give_up";
    case TraceEvent::kROAttempt: return "ro_attempt";
    case TraceEvent::kROCommit: return "ro_commit";
    case TraceEvent::kROFallbackWrite: return "ro_fallback_write";
    case TraceEvent::kROFallbackValidation: return "ro_fallback_validation";
    case TraceEvent::kArbitrationYield: return "arbitration_yield";
    case TraceEvent::kLockContended: return "lock_contended";
    case TraceEvent::kCombineBatch: return "combine_batch";
    case TraceEvent::kCombinerHandoff: return "combiner_handoff";
  }
  return "?";
}

class TraceRing {
 public:
  /// Capacity is per thread, rounded up to a power of two (min 16).
  explicit TraceRing(std::size_t capacity = 1024) {
    std::size_t c = 16;
    while (c < capacity) c <<= 1;
    cap_ = c;
  }

  std::size_t capacity() const noexcept { return cap_; }

  /// Append an event to the calling thread's ring. Wait-free, no shared
  /// writes; ~two relaxed stores plus rdtsc.
  void emit(TraceEvent kind, std::uint8_t arg = 0,
            std::uint32_t aux = 0) noexcept {
    Ring& r = slots_.mine();
    std::atomic<std::uint64_t>* w = r.words.load(std::memory_order_relaxed);
    if (w == nullptr) {
      w = new std::atomic<std::uint64_t>[2 * cap_]();
      r.words.store(w, std::memory_order_release);
    }
    const std::uint64_t seq = r.written.load(std::memory_order_relaxed);
    const std::size_t i = (seq & (cap_ - 1)) * 2;
    w[i].store(util::tsc_now(), std::memory_order_relaxed);
    w[i + 1].store(pack(kind, arg, aux), std::memory_order_relaxed);
    r.written.store(seq + 1, std::memory_order_release);
  }

  struct Event {
    std::uint64_t tsc = 0;
    std::uint64_t seq = 0;  // per-thread emission index (0-based)
    int tid = -1;
    TraceEvent kind{};
    std::uint8_t arg = 0;
    std::uint32_t aux = 0;
  };

  /// Events ever emitted by thread `tid` (including overwritten ones).
  std::uint64_t written(int tid) const {
    const Ring* r = slots_.get(tid);
    return r ? r->written.load(std::memory_order_acquire) : 0;
  }

  /// Events of thread `tid` no longer in the ring.
  std::uint64_t dropped(int tid) const {
    const std::uint64_t n = written(tid);
    return n > cap_ ? n - cap_ : 0;
  }

  /// Merge all threads' surviving events, sorted by timestamp (ties broken
  /// by tid/seq). Exact when writers are quiescent.
  std::vector<Event> dump() const {
    std::vector<Event> out;
    const int n = util::ThreadRegistry::max_tid();
    for (int t = 0; t < n; t++) {
      const Ring* r = slots_.get(t);
      if (r == nullptr) continue;
      const std::uint64_t written = r->written.load(std::memory_order_acquire);
      const std::atomic<std::uint64_t>* w =
          r->words.load(std::memory_order_acquire);
      if (w == nullptr || written == 0) continue;
      const std::uint64_t first = written > cap_ ? written - cap_ : 0;
      for (std::uint64_t s = first; s < written; s++) {
        const std::size_t i = (s & (cap_ - 1)) * 2;
        Event e;
        e.tsc = w[i].load(std::memory_order_relaxed);
        unpack(w[i + 1].load(std::memory_order_relaxed), e);
        e.seq = s;
        e.tid = t;
        out.push_back(e);
      }
    }
    std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
      if (a.tsc != b.tsc) return a.tsc < b.tsc;
      if (a.tid != b.tid) return a.tid < b.tid;
      return a.seq < b.seq;
    });
    return out;
  }

  /// Human-readable dump, one event per line ("tsc tid seq kind arg aux").
  std::string dump_text() const {
    std::string out;
    for (const Event& e : dump()) {
      out += std::to_string(e.tsc);
      out += " t";
      out += std::to_string(e.tid);
      out += " #";
      out += std::to_string(e.seq);
      out += ' ';
      out += to_string(e.kind);
      out += " arg=";
      out += std::to_string(e.arg);
      out += " aux=";
      out += std::to_string(e.aux);
      out += '\n';
    }
    return out;
  }

 private:
  struct Ring {
    std::atomic<std::uint64_t> written{0};
    std::atomic<std::atomic<std::uint64_t>*> words{nullptr};
    ~Ring() { delete[] words.load(std::memory_order_acquire); }
  };

  static std::uint64_t pack(TraceEvent kind, std::uint8_t arg,
                            std::uint32_t aux) noexcept {
    return static_cast<std::uint64_t>(kind) |
           (static_cast<std::uint64_t>(arg) << 8) |
           (static_cast<std::uint64_t>(aux) << 32);
  }

  static void unpack(std::uint64_t word, Event& e) noexcept {
    e.kind = static_cast<TraceEvent>(word & 0xff);
    e.arg = static_cast<std::uint8_t>((word >> 8) & 0xff);
    e.aux = static_cast<std::uint32_t>(word >> 32);
  }

  std::size_t cap_;
  util::PerThreadSlots<Ring> slots_;
};

}  // namespace medley::obs

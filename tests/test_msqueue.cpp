// Michael & Scott queue: FIFO semantics, NBTC transactional composition
// (including the intra-transaction enqueue-then-dequeue dependency), and
// multi-producer/multi-consumer stress.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "ds/michael_hashtable.hpp"
#include "ds/ms_queue.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::ds::MSQueue;
using Q = MSQueue<std::uint64_t>;

TEST(MsQueue, FifoOrder) {
  TxManager mgr;
  Q q(&mgr);
  for (std::uint64_t i = 0; i < 100; i++) q.enqueue(i);
  for (std::uint64_t i = 0; i < 100; i++) {
    ASSERT_EQ(q.dequeue(), std::optional<std::uint64_t>(i));
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MsQueue, EmptyInitially) {
  TxManager mgr;
  Q q(&mgr);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.dequeue().has_value());
  q.enqueue(1);
  EXPECT_FALSE(q.empty());
  q.dequeue();
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, InterleavedEnqDeq) {
  TxManager mgr;
  Q q(&mgr);
  q.enqueue(1);
  q.enqueue(2);
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(1));
  q.enqueue(3);
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(3));
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, SizeSlowCounts) {
  TxManager mgr;
  Q q(&mgr);
  for (int i = 0; i < 10; i++) q.enqueue(static_cast<std::uint64_t>(i));
  EXPECT_EQ(q.size_slow(), 10u);
  q.dequeue();
  EXPECT_EQ(q.size_slow(), 9u);
}

// ---------------------------------------------------------------------
// Transactional semantics. The queue is the structure prior transactional
// transforms could not handle (no inverse, no critical node).

TEST(MsQueueTx, TwoQueueMoveIsAtomic) {
  TxManager mgr;
  Q a(&mgr), b(&mgr);
  a.enqueue(42);
  medley::execute_tx(mgr, [&] {
    auto v = a.dequeue();
    ASSERT_TRUE(v.has_value());
    b.enqueue(*v);
  });
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.dequeue(), std::optional<std::uint64_t>(42));
}

TEST(MsQueueTx, AbortRestoresDequeuedElement) {
  TxManager mgr;
  Q q(&mgr);
  q.enqueue(1);
  q.enqueue(2);
  try {
    mgr.txBegin();
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(1));
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  // Rollback: element 1 still at the front, order intact.
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(2));
}

TEST(MsQueueTx, AbortDiscardsEnqueue) {
  TxManager mgr;
  Q q(&mgr);
  try {
    mgr.txBegin();
    q.enqueue(7);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size_slow(), 0u);
}

TEST(MsQueueTx, EnqueueThenDequeueSameTxSeesOwnElement) {
  // Intra-transaction dependency (paper Sec. 2.2, second complication):
  // the dequeue must observe the same transaction's speculative enqueue.
  TxManager mgr;
  Q q(&mgr);
  medley::execute_tx(mgr, [&] {
    q.enqueue(5);
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5u);
  });
  EXPECT_TRUE(q.empty());
}

TEST(MsQueueTx, EnqueueTwoDequeueOneSameTx) {
  TxManager mgr;
  Q q(&mgr);
  medley::execute_tx(mgr, [&] {
    q.enqueue(1);
    q.enqueue(2);
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(1));
  });
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(2));
  EXPECT_TRUE(q.empty());
}

TEST(MsQueueTx, DequeueThenEnqueueSameTxOnNonEmpty) {
  TxManager mgr;
  Q q(&mgr);
  q.enqueue(10);
  medley::execute_tx(mgr, [&] {
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(10));
    q.enqueue(11);
  });
  EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(11));
}

TEST(MsQueueTx, EmptyReadValidatedAgainstConcurrentEnqueue) {
  TxManager mgr;
  Q q(&mgr);
  bool aborted = false;
  try {
    mgr.txBegin();
    EXPECT_FALSE(q.dequeue().has_value());  // empty read
    std::thread([&] { q.enqueue(1); }).join();  // peer commits an enqueue
    mgr.txEnd();
  } catch (const TransactionAborted&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);  // the "queue was empty" read is stale
  EXPECT_EQ(q.size_slow(), 1u);
}

TEST(MsQueueTx, QueueAndMapComposeInOneTx) {
  // Queue + per-element metadata: the composition pattern LFTT-style
  // systems cannot express.
  TxManager mgr;
  Q q(&mgr);
  medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t> seen(&mgr, 64);
  q.enqueue(3);
  medley::execute_tx(mgr, [&] {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    seen.insert(*v, 1);
  });
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(seen.contains(3));
}

// ---------------------------------------------------------------------
// Concurrency.

TEST(MsQueueConc, MpmcEveryElementExactlyOnce) {
  TxManager mgr;
  Q q(&mgr);
  constexpr int kProducers = 4, kConsumers = 4, kPer = 2000;
  std::atomic<int> consumed{0};
  std::vector<std::atomic<int>> seen(kProducers * kPer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; p++) {
    ts.emplace_back([&, p] {
      for (int i = 0; i < kPer; i++) {
        q.enqueue(static_cast<std::uint64_t>(p * kPer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; c++) {
    ts.emplace_back([&] {
      while (consumed.load() < kProducers * kPer) {
        auto v = q.dequeue();
        if (v) {
          seen[*v].fetch_add(1);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_TRUE(q.empty());
}

TEST(MsQueueConc, PerProducerFifoPreserved) {
  TxManager mgr;
  Q q(&mgr);
  constexpr int kProducers = 3, kPer = 2000;
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  bool order_ok = true;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 1; i <= kPer; i++) {
        q.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  std::thread consumer([&] {
    int got = 0;
    while (got < kProducers * kPer) {
      auto v = q.dequeue();
      if (!v) continue;
      auto p = static_cast<std::size_t>(*v >> 32);
      auto seq = *v & 0xffffffffu;
      if (seq <= last_seen[p]) order_ok = false;
      last_seen[p] = seq;
      got++;
    }
    done = true;
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(order_ok);
}

TEST(MsQueueConc, TransactionalPipelinesConserveElements) {
  // Threads atomically move elements between two queues; total count is
  // invariant and no element is duplicated or lost.
  TxManager mgr;
  Q a(&mgr), b(&mgr);
  constexpr std::uint64_t kElems = 64;
  for (std::uint64_t i = 0; i < kElems; i++) a.enqueue(i);

  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 17);
    for (int i = 0; i < 800; i++) {
      Q& src = (rng.next() & 1) ? a : b;
      Q& dst = (&src == &a) ? b : a;
      try {
        mgr.txBegin();
        auto v = src.dequeue();
        if (v) dst.enqueue(*v);
        mgr.txEnd();
      } catch (const TransactionAborted&) {
      }
    }
  });
  EXPECT_EQ(a.size_slow() + b.size_slow(), kElems);
  // Drain both; all original elements present exactly once.
  std::vector<int> seen(kElems, 0);
  while (auto v = a.dequeue()) seen[*v]++;
  while (auto v = b.dequeue()) seen[*v]++;
  for (auto c : seen) EXPECT_EQ(c, 1);
}

class MsQueueSweep : public ::testing::TestWithParam<int> {};

TEST_P(MsQueueSweep, ConcurrentChurnEndsCoherent) {
  const int threads = GetParam();
  TxManager mgr;
  Q q(&mgr);
  std::atomic<std::int64_t> balance{0};  // enqueues minus dequeues
  medley::test::run_threads(threads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 13 + 5);
    for (int i = 0; i < 2000; i++) {
      if (rng.next() & 1) {
        q.enqueue(rng.next());
        balance.fetch_add(1);
      } else if (q.dequeue().has_value()) {
        balance.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(q.size_slow(), static_cast<std::size_t>(balance.load()));
}

INSTANTIATE_TEST_SUITE_P(Threads, MsQueueSweep, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------
// Harness-driven oracle checks (tests/harness/).

namespace h = medley::test::harness;

TEST(MsQueueOracle, DeterministicInterleavingMatchesStdDeque) {
  TxManager mgr;
  Q q(&mgr);
  h::Recorder rec;
  h::RecordedQueue<Q> rq(&q, &rec);
  h::ScheduleDriver d;
  for (int t = 0; t < 3; t++) {
    std::vector<h::ScheduleDriver::Step> steps;
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 41);
    for (int i = 0; i < 80; i++) {
      const auto v = (static_cast<std::uint64_t>(t) << 32) |
                     static_cast<std::uint64_t>(i);
      if (rng.next_bounded(3) != 0) {
        steps.push_back([&rq, t, v] { rq.enqueue(t, v); });
      } else {
        steps.push_back([&rq, t] { rq.dequeue(t); });
      }
    }
    d.add_thread(std::move(steps));
  }
  d.run(d.shuffled(404));
  EXPECT_TRUE(h::check_sequential_queue(rec.history()));
}

TEST(MsQueueOracle, ConcurrentHistorySatisfiesFifoInvariants) {
  TxManager mgr;
  Q q(&mgr);
  h::Recorder rec;
  h::RecordedQueue<Q> rq(&q, &rec);
  // 3 producers enqueue unique tagged values, 3 consumers drain; checker
  // verifies no loss, no duplication, no invention, and interval-FIFO.
  h::run_seeded(6, 45, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 3) {
      for (int i = 0; i < 2000; i++) {
        rq.enqueue(t, (static_cast<std::uint64_t>(t) << 32) |
                          static_cast<std::uint64_t>(i));
      }
    } else {
      for (int i = 0; i < 2000; i++) {
        rq.dequeue(t);
        if ((rng.next() & 7) == 0) std::this_thread::yield();
      }
    }
  });
  EXPECT_TRUE(h::check_queue_history(rec.history(), {}, h::drain(q)));
}

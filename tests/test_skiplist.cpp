// Fraser-skiplist-specific behaviour: upper-level linking/cleanup,
// tower demotion on remove, behaviour under many levels, plus a
// longer-running concurrent oracle check.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "ds/fraser_skiplist.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using SL = medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>;

TEST(Skiplist, UpperLevelsEventuallyLinked) {
  // After enough sequential inserts, the skiplist must have populated
  // levels above 0 (probability of all-level-1 towers is ~2^-N).
  TxManager mgr;
  SL s(&mgr);
  for (std::uint64_t k = 1; k <= 512; k++) ASSERT_TRUE(s.insert(k, k));
  EXPECT_TRUE(s.invariants_hold_slow());
  // Indirect evidence of multi-level structure: searching is correct for
  // all keys (exercises descent through whatever towers exist).
  for (std::uint64_t k = 1; k <= 512; k++) ASSERT_TRUE(s.contains(k));
}

TEST(Skiplist, RemoveEverythingLeavesCleanList) {
  TxManager mgr;
  SL s(&mgr);
  for (std::uint64_t k = 1; k <= 256; k++) s.insert(k, k);
  for (std::uint64_t k = 1; k <= 256; k++) {
    ASSERT_TRUE(s.remove(k).has_value());
  }
  EXPECT_EQ(s.size_slow(), 0u);
  EXPECT_TRUE(s.invariants_hold_slow());
  // Reuse after full drain.
  EXPECT_TRUE(s.insert(5, 5));
  EXPECT_TRUE(s.contains(5));
}

TEST(Skiplist, AlternatingInsertRemoveKeepsTowersCoherent) {
  TxManager mgr;
  SL s(&mgr);
  for (int round = 0; round < 20; round++) {
    for (std::uint64_t k = 1; k <= 64; k++) ASSERT_TRUE(s.insert(k, k));
    EXPECT_TRUE(s.invariants_hold_slow());
    for (std::uint64_t k = 1; k <= 64; k++) {
      ASSERT_TRUE(s.remove(k).has_value());
    }
    EXPECT_TRUE(s.invariants_hold_slow());
  }
  EXPECT_EQ(s.size_slow(), 0u);
}

TEST(Skiplist, TxAbortedRemoveLeavesKeyFindable) {
  // An aborted remove may leave upper levels of the victim marked
  // (pre-linearization demotion is benign); the key must remain a member
  // and subsequent operations must behave normally.
  TxManager mgr;
  SL s(&mgr);
  for (std::uint64_t k = 1; k <= 32; k++) s.insert(k, k);
  for (std::uint64_t k = 1; k <= 32; k++) {
    try {
      mgr.txBegin();
      ASSERT_TRUE(s.remove(k).has_value());
      mgr.txAbort();
    } catch (const TransactionAborted&) {
    }
  }
  for (std::uint64_t k = 1; k <= 32; k++) {
    EXPECT_TRUE(s.contains(k)) << k;
  }
  // The demoted nodes must still be removable for real.
  for (std::uint64_t k = 1; k <= 32; k++) {
    EXPECT_TRUE(s.remove(k).has_value()) << k;
  }
  EXPECT_EQ(s.size_slow(), 0u);
}

TEST(Skiplist, LargeTransactionManyOps) {
  TxManager mgr;
  SL s(&mgr);
  mgr.txBegin();
  for (std::uint64_t k = 1; k <= 100; k++) ASSERT_TRUE(s.insert(k, k));
  for (std::uint64_t k = 1; k <= 50; k++) {
    ASSERT_TRUE(s.remove(k).has_value());
  }
  mgr.txEnd();
  EXPECT_EQ(s.size_slow(), 50u);
  for (std::uint64_t k = 51; k <= 100; k++) EXPECT_TRUE(s.contains(k));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TEST(Skiplist, ConcurrentOracleAgreement) {
  // Concurrent phase (outcome unknown) followed by a sequential
  // reconciliation: whatever survived must be internally consistent and
  // respond correctly to a full sweep of gets.
  TxManager mgr;
  SL s(&mgr);
  constexpr std::uint64_t kKeys = 128;
  medley::test::run_threads(6, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 5 + 1);
    for (int i = 0; i < 2500; i++) {
      auto k = rng.next_bounded(kKeys) + 1;
      switch (rng.next_bounded(3)) {
        case 0: s.insert(k, k * 2); break;
        case 1: s.remove(k); break;
        default: {
          auto v = s.get(k);
          if (v) {
            ASSERT_EQ(*v, k * 2);  // values always key*2
          }
          break;
        }
      }
    }
  });
  EXPECT_TRUE(s.invariants_hold_slow());
  auto keys = s.keys_slow();
  for (auto k : keys) {
    ASSERT_EQ(s.get(k), std::optional<std::uint64_t>(k * 2));
  }
}

TEST(Skiplist, RangeAndScanSequentialSemantics) {
  TxManager mgr;
  SL s(&mgr);
  for (std::uint64_t k = 10; k <= 100; k += 10) s.insert(k, k * 2);
  // range is inclusive on both bounds, ascending.
  auto r = s.range(20, 50);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.front(), (std::pair<std::uint64_t, std::uint64_t>{20, 40}));
  EXPECT_EQ(r.back(), (std::pair<std::uint64_t, std::uint64_t>{50, 100}));
  // Empty window and beyond-the-end window.
  EXPECT_TRUE(s.range(41, 49).empty());
  EXPECT_TRUE(s.range(101, 200).empty());
  // scan starts at the first key >= lo and honours the limit.
  auto sc = s.scan(35, 3);
  ASSERT_EQ(sc.size(), 3u);
  EXPECT_EQ(sc[0].first, 40u);
  EXPECT_EQ(sc[2].first, 60u);
  EXPECT_EQ(s.scan(95, 10).size(), 1u);  // only 100 remains
}

TEST(Skiplist, RangeInsideTxSeesOwnSpeculativeWrites) {
  TxManager mgr;
  SL s(&mgr);
  for (std::uint64_t k = 1; k <= 8; k++) s.insert(k, k);
  medley::execute_tx(mgr, [&] {
    s.remove(4);
    s.insert(100, 100);
    auto r = s.range(1, 200);
    ASSERT_EQ(r.size(), 8u);  // 1,2,3,5,6,7,8,100
    for (const auto& [k, v] : r) {
      EXPECT_NE(k, 4u);
      EXPECT_EQ(k, v);
    }
    EXPECT_EQ(r.back().first, 100u);
  });
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.contains(100));
}

TEST(Skiplist, MgrStatsSeeTransactionOutcomes) {
  TxManager mgr;
  SL s(&mgr);
  mgr.reset_stats();
  medley::execute_tx(mgr, [&] { s.insert(1, 1); });
  try {
    mgr.txBegin();
    s.insert(2, 2);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  auto st = mgr.stats();
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.user_aborts, 1u);
}

// ---------------------------------------------------------------------
// Harness-driven oracle checks (tests/harness/).

namespace h = medley::test::harness;

TEST(SkiplistOracle, DeterministicInterleavingMatchesStdMap) {
  TxManager mgr;
  SL s(&mgr);
  h::Recorder rec;
  h::RecordedMap<SL> rm(&s, &rec);
  h::ScheduleDriver d;
  for (int t = 0; t < 3; t++) {
    std::vector<h::ScheduleDriver::Step> steps;
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 21);
    for (int i = 0; i < 60; i++) {
      const auto k = rng.next_bounded(10);
      const auto v = rng.next();
      switch (rng.next_bounded(4)) {
        case 0: steps.push_back([&rm, t, k, v] { rm.insert(t, k, v); }); break;
        case 1: steps.push_back([&rm, t, k] { rm.remove(t, k); }); break;
        case 2: steps.push_back([&rm, t, k] { rm.contains(t, k); }); break;
        default: steps.push_back([&rm, t, k] { rm.get(t, k); }); break;
      }
    }
    d.add_thread(std::move(steps));
  }
  d.run(d.shuffled(99));
  EXPECT_TRUE(h::check_sequential_map(rec.history()));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TEST(SkiplistOracle, RangeAgreesWithMapOracleUnderPinnedInterleavings) {
  // Serialized-but-interleaved mixed workload with range queries: steps
  // run one at a time under the ScheduleDriver (real threads, exact
  // interleaving), so a std::map oracle can be advanced in lock-step and
  // every range result compared exactly.
  TxManager mgr;
  SL s(&mgr);
  std::map<std::uint64_t, std::uint64_t> oracle;
  h::ScheduleDriver d;
  for (int t = 0; t < 3; t++) {
    std::vector<h::ScheduleDriver::Step> steps;
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 77);
    for (int i = 0; i < 80; i++) {
      const auto k = rng.next_bounded(24);
      const auto v = rng.next();
      switch (rng.next_bounded(4)) {
        case 0:
          steps.push_back([&s, &oracle, k, v] {
            const bool ins = s.insert(k, v);
            ASSERT_EQ(ins, oracle.emplace(k, v).second);
          });
          break;
        case 1:
          steps.push_back([&s, &oracle, k] {
            auto got = s.remove(k);
            auto it = oracle.find(k);
            ASSERT_EQ(got.has_value(), it != oracle.end());
            if (got) {
              ASSERT_EQ(*got, it->second);
              oracle.erase(it);
            }
          });
          break;
        default:
          steps.push_back([&s, &oracle, k] {
            const auto hi = k + 8;
            auto got = s.range(k, hi);
            std::vector<std::pair<std::uint64_t, std::uint64_t>> want(
                oracle.lower_bound(k), oracle.upper_bound(hi));
            ASSERT_EQ(got, want);
          });
          break;
      }
    }
    d.add_thread(std::move(steps));
  }
  d.run(d.shuffled(1234));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TEST(SkiplistOracle, CommittedRangeIsAtomicSnapshotUnderConcurrency) {
  // Mutators toggle key *pairs* (2k, 2k+1) atomically inside transactions;
  // committed transactional range scans must never observe half a pair,
  // and must always see keys in strictly ascending order.
  TxManager mgr;
  SL s(&mgr);
  constexpr std::uint64_t kPairs = 12;
  for (std::uint64_t p = 0; p < kPairs; p += 2) {  // half start present
    s.insert(2 * p, p);
    s.insert(2 * p + 1, p);
  }
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> snapshots{0};

  h::run_seeded(8, 2027, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 4) {  // mutators
      for (int i = 0; i < 500; i++) {
        const auto p = rng.next_bounded(kPairs);
        try {
          medley::execute_tx(mgr, [&] {
            if (s.remove(2 * p).has_value()) {
              s.remove(2 * p + 1);
            } else {
              s.insert(2 * p, p + 1000 + static_cast<std::uint64_t>(i));
              s.insert(2 * p + 1, p + 1000 + static_cast<std::uint64_t>(i));
            }
          });
        } catch (const TransactionAborted&) {
        }
      }
    } else {  // scanners
      for (int i = 0; i < 500; i++) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> snap;
        try {
          medley::execute_tx(mgr, [&] { snap = s.range(0, 2 * kPairs); });
        } catch (const TransactionAborted&) {
          continue;  // uncommitted attempts may legally be torn
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t j = 1; j < snap.size(); j++) {
          if (!(snap[j - 1].first < snap[j].first)) torn.store(true);
        }
        std::map<std::uint64_t, std::uint64_t> m(snap.begin(), snap.end());
        for (std::uint64_t p = 0; p < kPairs; p++) {
          auto a = m.find(2 * p), b = m.find(2 * p + 1);
          if ((a == m.end()) != (b == m.end())) torn.store(true);
          if (a != m.end() && b != m.end() && a->second != b->second) {
            torn.store(true);
          }
        }
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed range saw a torn pair";
  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_TRUE(s.invariants_hold_slow());
}

TEST(SkiplistOracle, ConcurrentHistorySatisfiesSetInvariants) {
  TxManager mgr;
  SL s(&mgr);
  std::map<std::uint64_t, std::uint64_t> initial;
  for (std::uint64_t k = 0; k < 16; k += 2) {
    s.insert(k, k + 7000);
    initial[k] = k + 7000;
  }
  h::Recorder rec;
  h::RecordedMap<SL> rm(&s, &rec);
  h::run_seeded(6, 43, [&](int t, medley::util::Xoshiro256& rng) {
    for (int i = 0; i < 1200; i++) {
      const auto k = rng.next_bounded(32);
      const auto v = (static_cast<std::uint64_t>(t) << 32) |
                     static_cast<std::uint64_t>(i);
      switch (rng.next_bounded(3)) {
        case 0: rm.insert(t, k, v); break;
        case 1: rm.remove(t, k); break;
        default: rm.get(t, k); break;
      }
    }
  });
  EXPECT_TRUE(
      h::check_set_history(rec.history(), initial, h::observed_state(s)));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TEST(Skiplist, ScanReadSetFootprintSinglePassExact) {
  // The read-set evidence of an uncontended scan over n live entries is
  // EXACTLY n+1 level-0 links (n entry links + the pred(lo) link): the
  // fast path must not pay any dedup bookkeeping, and nothing may be
  // registered twice. The restart path (which multiplies footprint by
  // passes without dedup and is exercised probabilistically under
  // contention) is covered at the mechanism level in
  // TxDomain.DedupReadRegistrationSkipsTrackedCells.
  TxManager mgr;
  SL s(&mgr);
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t k = 1; k <= kN; k++) s.insert(k, k);

  mgr.txBegin();
  auto r1 = s.range(1, kN);
  EXPECT_EQ(r1.size(), kN);
  EXPECT_EQ(mgr.my_desc()->read_count(), static_cast<int>(kN) + 1);
  mgr.txEnd();

  mgr.txBegin();
  auto sc = s.scan(50, 40);
  EXPECT_EQ(sc.size(), 40u);
  EXPECT_EQ(mgr.my_desc()->read_count(), 41);
  mgr.txEnd();
}

// OneFile-style STM: serialized redo-log commits, helping, snapshot
// consistency for read-set-free readers, and the derived hash map /
// skiplist structures.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "stm/onefile.hpp"
#include "stm/onefile_map.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::stm::OFHashMap;
using medley::stm::OFSkipList;
using medley::stm::OneFileSTM;
using medley::stm::tmtype;

TEST(OneFile, TmtypeDirectRoundTrip) {
  tmtype<std::uint64_t> x(5);
  EXPECT_EQ(x.load_direct(), 5u);
  x.store_direct(9);
  EXPECT_EQ(x.load_direct(), 9u);
}

TEST(OneFile, UpdateTxAppliesWrites) {
  OneFileSTM stm;
  tmtype<std::uint64_t> x(1), y(2);
  stm.updateTx([&] {
    x.pstore(10);
    y.pstore(20);
  });
  EXPECT_EQ(x.load_direct(), 10u);
  EXPECT_EQ(y.load_direct(), 20u);
  EXPECT_EQ(stm.sequence(), 1u);
}

TEST(OneFile, ReadOwnWritesInsideTx) {
  OneFileSTM stm;
  tmtype<std::uint64_t> x(1);
  stm.updateTx([&] {
    x.pstore(10);
    EXPECT_EQ(x.pload(), 10u);
    x.pstore(11);
    EXPECT_EQ(x.pload(), 11u);
  });
  EXPECT_EQ(x.load_direct(), 11u);
}

TEST(OneFile, ReadOnlyUpdateTxDoesNotAdvanceSequence) {
  OneFileSTM stm;
  tmtype<std::uint64_t> x(1);
  stm.updateTx([&] { (void)x.pload(); });
  EXPECT_EQ(stm.sequence(), 0u);
}

TEST(OneFile, ReadTxSeesConsistentPairs) {
  // Writers keep x == y; readers must never observe x != y.
  OneFileSTM stm;
  tmtype<std::uint64_t> x(0), y(0);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (std::uint64_t k = 1; k <= 4000; k++) {
      stm.updateTx([&] {
        x.pstore(k);
        y.pstore(k);
      });
    }
    stop = true;
  });
  medley::test::run_threads(3, [&](int) {
    while (!stop.load()) {
      auto [a, b] = stm.readTx([&] {
        return std::pair<std::uint64_t, std::uint64_t>(x.pload(), y.pload());
      });
      if (a != b) torn.fetch_add(1);
    }
  });
  writer.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(x.load_direct(), 4000u);
}

TEST(OneFile, ConcurrentIncrementsAllLand) {
  OneFileSTM stm;
  tmtype<std::uint64_t> ctr(0);
  constexpr int kThreads = 4, kPer = 1000;
  medley::test::run_threads(kThreads, [&](int) {
    for (int i = 0; i < kPer; i++) {
      stm.updateTx([&] { ctr.pstore(ctr.pload() + 1); });
    }
  });
  EXPECT_EQ(ctr.load_direct(),
            static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(stm.sequence(), static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(OneFile, TransfersConserveSum) {
  OneFileSTM stm;
  constexpr int kCells = 8;
  tmtype<std::uint64_t> cells[kCells];
  for (auto& c : cells) c.store_direct(1000);
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
    for (int i = 0; i < 1000; i++) {
      auto from = rng.next_bounded(kCells), to = rng.next_bounded(kCells);
      if (from == to) continue;
      stm.updateTx([&] {
        auto vf = cells[from].pload();
        auto vt = cells[to].pload();
        if (vf > 0) {
          cells[from].pstore(vf - 1);
          cells[to].pstore(vt + 1);
        }
      });
    }
  });
  std::uint64_t sum = 0;
  for (auto& c : cells) sum += c.load_direct();
  EXPECT_EQ(sum, kCells * 1000u);
}

TEST(OneFile, PersistentModeCommitsCorrectly) {
  // POneFile takes the eager write-back path; semantics must not change.
  OneFileSTM stm(/*persistent=*/true);
  tmtype<std::uint64_t> x(0);
  for (int i = 0; i < 100; i++) {
    stm.updateTx([&] { x.pstore(x.pload() + 1); });
  }
  EXPECT_EQ(x.load_direct(), 100u);
}

// ---------------------------------------------------------------------
// Derived structures.

TEST(OneFileMap, HashMapBasics) {
  OneFileSTM stm;
  OFHashMap<std::uint64_t, std::uint64_t> m(&stm, 64);
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.put(1, 12), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.remove(1), std::optional<std::uint64_t>(12));
  EXPECT_FALSE(m.contains(1));
}

TEST(OneFileMap, ComposedTransferBetweenMaps) {
  OneFileSTM stm;
  OFHashMap<std::uint64_t, std::uint64_t> a(&stm, 64), b(&stm, 64);
  a.insert(1, 100);
  stm.updateTx([&] {
    auto v = a.remove(1);
    ASSERT_TRUE(v.has_value());
    b.insert(1, *v);
  });
  EXPECT_FALSE(a.contains(1));
  EXPECT_EQ(b.get(1), std::optional<std::uint64_t>(100));
}

TEST(OneFileMap, HashMapConcurrentChurn) {
  OneFileSTM stm;
  OFHashMap<std::uint64_t, std::uint64_t> m(&stm, 64);
  std::atomic<std::int64_t> net{0};
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 3 + 1);
    for (int i = 0; i < 800; i++) {
      auto k = rng.next_bounded(32);
      if (rng.next() & 1) {
        if (m.insert(k, k)) net.fetch_add(1);
      } else if (m.remove(k).has_value()) {
        net.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(net.load()));
}

TEST(OneFileMap, SkipListBasics) {
  OneFileSTM stm;
  OFSkipList<std::uint64_t, std::uint64_t> s(&stm);
  for (std::uint64_t k = 1; k <= 200; k++) ASSERT_TRUE(s.insert(k, k * 2));
  for (std::uint64_t k = 1; k <= 200; k++) {
    ASSERT_EQ(s.get(k), std::optional<std::uint64_t>(k * 2));
  }
  EXPECT_FALSE(s.insert(100, 0));
  EXPECT_EQ(s.remove(100), std::optional<std::uint64_t>(200));
  EXPECT_FALSE(s.contains(100));
  EXPECT_EQ(s.size_slow(), 199u);
}

TEST(OneFileMap, SkipListConcurrentConservation) {
  OneFileSTM stm;
  OFSkipList<std::uint64_t, std::uint64_t> s(&stm);
  std::atomic<std::int64_t> net{0};
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 5 + 2);
    for (int i = 0; i < 600; i++) {
      auto k = rng.next_bounded(64) + 1;
      if (rng.next() & 1) {
        if (s.insert(k, k)) net.fetch_add(1);
      } else if (s.remove(k).has_value()) {
        net.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(net.load()));
}

TEST(OneFileMap, ComposedMultiOpTransactionIsAtomic) {
  // Transaction of 4 ops across two structures; a concurrent reader
  // observing via readTx must see all or nothing of each commit.
  OneFileSTM stm;
  OFHashMap<std::uint64_t, std::uint64_t> m(&stm, 64);
  OFSkipList<std::uint64_t, std::uint64_t> s(&stm);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 1500; i++) {
      stm.updateTx([&] {
        m.put(1, i);
        s.remove(i - 1);
        s.insert(i, i);
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      stm.readTx([&] {
        auto v = m.get(1);
        if (v && !s.contains(*v)) violations.fetch_add(1);
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}

// nbMontage substrate: persistent region lifecycle, epoch machinery,
// payload tagging/batched write-back, abort invalidation, straddling-
// transaction aborts (epoch folded into the MCNS read set).

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "montage/epoch_sys.hpp"
#include "montage/pregion.hpp"
#include "smr/ebr.hpp"
#include "test_support.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::montage::EpochSys;
using medley::montage::PBlk;
using medley::montage::PRegion;

namespace {
std::string temp_region(const char* name) {
  std::string p = ::testing::TempDir() + "medley_" + name + ".img";
  std::remove(p.c_str());
  return p;
}
}  // namespace

TEST(PRegion, FreshRegionInitialized) {
  auto path = temp_region("fresh");
  PRegion r(path, 128);
  EXPECT_TRUE(r.fresh());
  EXPECT_EQ(r.capacity(), 128u);
  EXPECT_EQ(r.header().persisted_epoch.load(), 0u);
  EXPECT_EQ(r.live_count(), 0u);
  std::remove(path.c_str());
}

TEST(PRegion, AllocFreeCycle) {
  auto path = temp_region("allocfree");
  PRegion r(path, 16);
  PBlk* a = r.alloc();
  ASSERT_NE(a, nullptr);
  a->magic.store(PBlk::kMagicLive);
  EXPECT_EQ(r.live_count(), 1u);
  r.free(a);
  EXPECT_EQ(r.live_count(), 0u);
  std::remove(path.c_str());
}

TEST(PRegion, ExhaustionReturnsNull) {
  auto path = temp_region("exhaust");
  PRegion r(path, 4);
  PBlk* blks[4];
  for (auto& b : blks) {
    b = r.alloc();
    ASSERT_NE(b, nullptr);
    b->magic.store(PBlk::kMagicLive);
  }
  EXPECT_EQ(r.alloc(), nullptr);
  r.free(blks[2]);
  EXPECT_NE(r.alloc(), nullptr);
  std::remove(path.c_str());
}

TEST(PRegion, ContentsSurviveReopen) {
  auto path = temp_region("reopen");
  {
    PRegion r(path, 32);
    PBlk* b = r.alloc();
    b->key = 77;
    b->val = 88;
    b->create_epoch.store(3);
    b->magic.store(PBlk::kMagicLive);
    r.header().persisted_epoch.store(5);
  }
  {
    PRegion r(path, 32);
    EXPECT_FALSE(r.fresh());
    EXPECT_EQ(r.header().persisted_epoch.load(), 5u);
    EXPECT_EQ(r.live_count(), 1u);
    bool found = false;
    for (std::size_t i = 0; i < r.capacity(); i++) {
      if (r.slot(i)->magic.load() == PBlk::kMagicLive) {
        EXPECT_EQ(r.slot(i)->key, 77u);
        EXPECT_EQ(r.slot(i)->val, 88u);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  std::remove(path.c_str());
}

TEST(PRegion, ConcurrentAllocFreeNoDoubleHandout) {
  auto path = temp_region("concalloc");
  PRegion r(path, 256);
  std::atomic<int> collisions{0};
  medley::test::run_threads(4, [&](int) {
    for (int i = 0; i < 500; i++) {
      PBlk* b = r.alloc();
      if (b == nullptr) continue;
      // Claim marker: if another thread holds this block, magic is Live.
      if (b->magic.load() == PBlk::kMagicLive) collisions.fetch_add(1);
      b->magic.store(PBlk::kMagicLive);
      b->magic.store(PBlk::kMagicFree);
      r.free(b);
    }
  });
  EXPECT_EQ(collisions.load(), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------

struct EpochSysTest : ::testing::Test {
  void SetUp() override {
    path = temp_region("epochsys");
    region = std::make_unique<PRegion>(path, 1024);
    es = std::make_unique<EpochSys>(region.get());
  }
  void TearDown() override {
    es.reset();
    region.reset();
    std::remove(path.c_str());
  }
  std::string path;
  std::unique_ptr<PRegion> region;
  std::unique_ptr<EpochSys> es;
};

TEST_F(EpochSysTest, ClockStartsPastPersistedBoundary) {
  EXPECT_EQ(es->current_epoch(), 2u);
  EXPECT_EQ(es->persisted_epoch(), 0u);
}

TEST_F(EpochSysTest, AdvanceMovesClockAndBoundary) {
  const auto e = es->current_epoch();
  es->advance();
  EXPECT_EQ(es->current_epoch(), e + 1);
  EXPECT_EQ(es->persisted_epoch(), e);
}

TEST_F(EpochSysTest, CommittedPayloadBecomesDurableAtBoundary) {
  TxManager mgr;
  es->attach(&mgr);
  medley::execute_tx(mgr, [&] { es->alloc_payload(1, 10, 100); });
  EXPECT_EQ(es->durable_payload_count(), 0u);  // epoch still open
  es->sync();
  EXPECT_EQ(es->durable_payload_count(), 1u);
}

TEST_F(EpochSysTest, AbortedPayloadNeverDurable) {
  TxManager mgr;
  es->attach(&mgr);
  try {
    mgr.txBegin();
    es->alloc_payload(1, 10, 100);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  es->sync();
  EXPECT_EQ(es->durable_payload_count(), 0u);
  EXPECT_EQ(region->live_count(), 0u);  // slot returned
}

TEST_F(EpochSysTest, RetirePersistsAtBoundary) {
  TxManager mgr;
  es->attach(&mgr);
  PBlk* blk = nullptr;
  medley::execute_tx(mgr, [&] { blk = es->alloc_payload(1, 10, 100); });
  es->sync();
  ASSERT_EQ(es->durable_payload_count(), 1u);
  medley::execute_tx(mgr, [&] { es->retire_payload(blk); });
  EXPECT_EQ(es->durable_payload_count(), 1u);  // retire not yet persisted
  es->sync();
  EXPECT_EQ(es->durable_payload_count(), 0u);
}

TEST_F(EpochSysTest, CancelReleasesSlotImmediately) {
  TxManager mgr;
  es->attach(&mgr);
  medley::execute_tx(mgr, [&] {
    PBlk* b = es->alloc_payload(1, 1, 1);
    es->cancel_payload(b);
  });
  es->sync();
  EXPECT_EQ(es->durable_payload_count(), 0u);
  EXPECT_EQ(region->live_count(), 0u);
}

TEST_F(EpochSysTest, EpochAdvanceAbortsStraddlingTx) {
  TxManager mgr;
  es->attach(&mgr);
  const auto e0 = es->current_epoch();
  mgr.txBegin();
  es->alloc_payload(1, 5, 50);
  // Advance from another thread: CASes the epoch cell first (invalidating
  // our folded read), then waits for our announcement to clear. Wait for
  // the CAS (not the boundary — that waits for us) before committing.
  std::thread adv([&] { es->advance(); });
  while (es->current_epoch() == e0) std::this_thread::yield();
  EXPECT_THROW(mgr.txEnd(), TransactionAborted);
  adv.join();
  es->sync();
  EXPECT_EQ(es->durable_payload_count(), 0u);  // aborted: invalidated
}

TEST_F(EpochSysTest, RetryAfterEpochAbortSucceeds) {
  TxManager mgr;
  es->attach(&mgr);
  std::thread adv;
  bool first = true;
  const auto e0 = es->current_epoch();
  medley::execute_tx(mgr, [&] {
    es->alloc_payload(1, 6, 60);
    if (first) {
      first = false;
      adv = std::thread([&] { es->advance(); });
      // Wait only for the epoch CAS (which precedes the advancer's wait
      // for us); waiting for the boundary itself would deadlock, since
      // the boundary waits for this very transaction.
      while (es->current_epoch() == e0) std::this_thread::yield();
    }
  });
  adv.join();
  es->sync();
  EXPECT_EQ(es->durable_payload_count(), 1u);
}

TEST_F(EpochSysTest, QuarantinedSlotReusableAfterGrace) {
  TxManager mgr;
  es->attach(&mgr);
  PBlk* blk = nullptr;
  medley::execute_tx(mgr, [&] { blk = es->alloc_payload(1, 7, 70); });
  medley::execute_tx(mgr, [&] { es->retire_payload(blk); });
  es->sync();
  // The slot frees once the persistence quarantine AND an EBR grace
  // period have both passed; a few advances push both forward.
  for (int i = 0; i < 6; i++) {
    medley::smr::EBR::instance().collect();
    es->advance();
  }
  EXPECT_EQ(region->live_count(), 0u);  // slot back on the freelist
}

TEST_F(EpochSysTest, BackgroundAdvancerMakesProgress) {
  es->start_advancer(1);
  TxManager mgr;
  es->attach(&mgr);
  const auto pe0 = es->persisted_epoch();
  medley::execute_tx(mgr, [&] { es->alloc_payload(1, 9, 90); });
  // The advancer alone must eventually persist the payload's epoch.
  for (int i = 0; i < 2000 && es->durable_payload_count() == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  es->stop_advancer();
  EXPECT_EQ(es->durable_payload_count(), 1u);
  EXPECT_GT(es->persisted_epoch(), pe0);
}

TEST_F(EpochSysTest, RecoverDropsUnpersistedPayloads) {
  TxManager mgr;
  es->attach(&mgr);
  medley::execute_tx(mgr, [&] { es->alloc_payload(1, 1, 11); });
  es->sync();
  medley::execute_tx(mgr, [&] { es->alloc_payload(1, 2, 22); });  // not synced
  auto recovered = es->recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].key, 1u);
  EXPECT_EQ(recovered[0].val, 11u);
}

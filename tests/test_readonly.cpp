// Read-only transaction mode (tx_domain.hpp begin_ro/end_ro,
// TxExecutor::execute_ro, StoreConfig::read_only_reads). Invariants under
// test:
//   R1  a read-only transaction never publishes the thread descriptor:
//       committed snapshot reads leave its status word untouched;
//   R2  write-in-read-only falls back transparently to a full transaction
//       and bills exactly one logical op (one commit, zero aborts, zero
//       retries — a mis-declared body is a mode switch, not contention);
//   R3  a torn snapshot aborts once under Validation, and the fallback's
//       full transaction commits: one validation abort + one retry + one
//       commit, at both the TxStats and the TxManager level;
//   R4  the policy still governs the fallback: a bounded budget or a
//       non-retried reason is terminal, with no hidden extra attempts;
//   R5  under concurrent writers, read-only range/scan snapshots are never
//       torn — pair-sum conservation holds in every committed snapshot,
//       single-store and sharded (merged range) alike;
//   R6  StoreConfig::feed_drain_per_tx is construction-validated: 0
//       throws, values above kMaxFeedDrainPerTx clamp (satellite bugfix).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "ds/michael_hashtable.hpp"
#include "store/range_sharded_store.hpp"
#include "store/sharded_store.hpp"
#include "store/store.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::AbortReason;
using medley::ReadOnlyViolation;
using medley::TransactionAborted;
using medley::TxExecutor;
using medley::TxPolicy;
using medley::core::TxManager;
using medley::store::kMaxFeedDrainPerTx;
using medley::store::MedleyStore;
using medley::store::RangeShardedMedleyStore;
using medley::store::ShardedMedleyStore;
using medley::store::StoreConfig;
using medley::test::run_threads;

namespace h = medley::test::harness;

using Map = medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>;
using Store = MedleyStore<std::uint64_t, std::uint64_t>;

namespace {

StoreConfig ro_cfg(std::size_t buckets = 256) {
  StoreConfig cfg;
  cfg.buckets = buckets;
  cfg.read_only_reads = true;
  return cfg;
}

// ---- R1: no descriptor publication ----------------------------------------

TEST(ReadOnly, SnapshotReadsLeaveDescriptorUntouched) {
  TxManager mgr;
  Store s(&mgr, ro_cfg());
  for (std::uint64_t k = 0; k < 16; k++) s.put(k, k * 10);

  const std::uint64_t status_before = mgr.my_desc()->status();
  mgr.reset_stats();

  for (std::uint64_t k = 0; k < 16; k++) {
    auto v = s.get(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k * 10);
  }
  EXPECT_FALSE(s.get(999).has_value());
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(999));
  auto r = s.range(2, 5);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.front().second, 20u);

  // Every read committed as a read-only transaction: the descriptor was
  // never begun (same status word — no new incarnation), yet the root
  // manager was billed one commit per operation and no aborts.
  EXPECT_EQ(mgr.my_desc()->status(), status_before);
  auto st = mgr.stats();
  EXPECT_EQ(st.commits, 20u);
  EXPECT_EQ(st.aborts, 0u);
}

TEST(ReadOnly, ExecutorRunsReadOnlyBody) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.put(1, 10);
  m.put(2, 20);

  TxExecutor ex;
  auto res = ex.execute_ro(mgr, [&] {
    return m.get(1).value_or(0) + m.get(2).value_or(0);
  });
  ASSERT_TRUE(res.committed());
  EXPECT_EQ(*res.value, 30u);
  EXPECT_EQ(res.stats.commits, 1u);
  EXPECT_EQ(res.stats.aborts(), 0u);
  EXPECT_EQ(res.stats.retries, 0u);
}

TEST(ReadOnly, PolicyFlagRoutesExecuteThroughSnapshotPath) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.put(7, 70);

  TxPolicy p;
  p.read_only = true;
  TxExecutor ex(p);
  const std::uint64_t status_before = mgr.my_desc()->status();
  auto res = ex.execute(mgr, [&] { return m.get(7).value_or(0); });
  ASSERT_TRUE(res.committed());
  EXPECT_EQ(*res.value, 70u);
  EXPECT_EQ(mgr.my_desc()->status(), status_before)
      << "execute() with a read_only policy published a descriptor";
}

// ---- R2: write-in-read-only fallback --------------------------------------

TEST(ReadOnly, WriteInReadOnlyFallsBackUnbilled) {
  TxManager mgr;
  Map m(&mgr, 64);
  mgr.reset_stats();

  TxExecutor ex;
  auto res = ex.execute_ro(mgr, [&] {
    // Reads first, so the snapshot attempt makes real progress before the
    // write surfaces the mis-declaration.
    auto v = m.get(5).value_or(0);
    m.put(5, v + 1);
  });
  ASSERT_TRUE(res.committed());
  EXPECT_EQ(m.get(5).value_or(0), 1u);

  // Exactly one logical op: the abandoned snapshot attempt is billed
  // nowhere — not as an abort, not as a retry, not at the manager.
  EXPECT_EQ(res.stats.commits, 1u);
  EXPECT_EQ(res.stats.aborts(), 0u);
  EXPECT_EQ(res.stats.retries, 0u);
  auto st = mgr.stats();
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.aborts, 0u);
}

TEST(ReadOnly, StoreWriteInsideAmbientReadOnlyFallsBack) {
  TxManager mgr;
  Store s(&mgr, ro_cfg());
  s.put(1, 100);
  mgr.reset_stats();

  // A store op inside an open snapshot flat-nests; its write throws
  // ReadOnlyViolation out of the body and the executor re-runs in full.
  TxExecutor ex;
  auto res = ex.execute_ro(mgr, [&] {
    auto v = s.get(1);
    s.put(2, v.value_or(0) + 1);
  });
  ASSERT_TRUE(res.committed());
  EXPECT_EQ(s.get(2).value_or(0), 101u);
  EXPECT_EQ(res.stats.commits, 1u);
  EXPECT_EQ(res.stats.aborts(), 0u);
  EXPECT_EQ(mgr.stats().aborts, 0u);
}

TEST(ReadOnly, UserAbortInsideSnapshotIsTerminal) {
  TxManager mgr;
  Map m(&mgr, 64);
  mgr.reset_stats();

  TxExecutor ex;
  auto res = ex.execute_ro(mgr, [&]() -> std::uint64_t {
    if (!m.get(1)) mgr.txAbort();  // business rule, not a write
    return *m.get(1);
  });
  EXPECT_FALSE(res.committed());
  ASSERT_TRUE(res.terminal.has_value());
  EXPECT_EQ(*res.terminal, AbortReason::User);
  EXPECT_EQ(res.stats.user_aborts, 1u);
  EXPECT_EQ(res.stats.retries, 0u);
  auto st = mgr.stats();
  EXPECT_EQ(st.user_aborts, 1u);
  EXPECT_EQ(st.commits, 0u);
}

TEST(ReadOnly, ForeignExceptionClosesSnapshotAttempt) {
  TxManager mgr;
  Map m(&mgr, 64);

  TxExecutor ex;
  EXPECT_THROW(ex.execute_ro(mgr,
                             [&] {
                               (void)m.get(1);
                               throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  EXPECT_FALSE(mgr.in_tx()) << "snapshot attempt leaked an open transaction";
  // The thread is reusable for both modes afterwards.
  EXPECT_TRUE(ex.execute_ro(mgr, [&] { (void)m.get(1); }).committed());
  EXPECT_TRUE(ex.execute(mgr, [&] { m.put(1, 1); }).committed());
}

// ---- R3: torn snapshot -> one validation abort + one retried full tx ------

TEST(ReadOnly, ValidationFailureFallsBackBilledOnce) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.put(1, 1);
  // The conflicting writer roots at a second manager of the same domain,
  // so `mgr`'s billing isolates the reader's side exactly.
  TxManager wmgr(mgr.domain_ptr());
  mgr.reset_stats();

  bool first_attempt = true;
  TxExecutor ex;
  auto res = ex.execute_ro(mgr, [&]() -> std::uint64_t {
    auto v = m.get(1).value_or(0);
    if (first_attempt) {
      first_attempt = false;
      // Commit a conflicting write between the snapshot's read and its
      // validation: the logged {value, counter} pair is now stale.
      std::thread t(
          [&] { medley::execute_tx(wmgr, [&] { m.put(1, 99); }); });
      t.join();
    }
    return v;
  });

  ASSERT_TRUE(res.committed());
  EXPECT_EQ(*res.value, 99u) << "fallback did not observe the new value";
  // One logical op across the mode switch: the snapshot attempt bills one
  // validation abort and one retry, the full transaction one commit.
  EXPECT_EQ(res.stats.commits, 1u);
  EXPECT_EQ(res.stats.validation_aborts, 1u);
  EXPECT_EQ(res.stats.conflict_aborts, 0u);
  EXPECT_EQ(res.stats.retries, 1u);
  auto st = mgr.stats();
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.validation_aborts, 1u);
  EXPECT_EQ(st.aborts, 1u);
}

TEST(ReadOnly, SchedulePinnedValidationFailureRetry) {
  // t0 opens a read-only transaction and reads k; t1 commits a conflicting
  // put mid-flight; t0's txEndRO must fail validation, and the full-mode
  // retry then observes the writer's value. Deterministic interleaving.
  TxManager mgr;
  Map m(&mgr, 64);
  m.put(1, 1);
  TxManager wmgr(mgr.domain_ptr());
  mgr.reset_stats();

  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> retried_value{0};

  h::ScheduleDriver d;
  d.add_thread({
      [&] {
        mgr.txBeginRO();
        (void)m.get(1);
      },
      [&] {
        try {
          mgr.txEndRO();
        } catch (const TransactionAborted& e) {
          torn.store(e.reason() == AbortReason::Validation);
        }
        // The retry a TxExecutor would issue: a full transaction.
        auto res = medley::execute_tx(mgr, [&] { return *m.get(1); });
        retried_value.store(*res.value);
      },
  });
  d.add_thread({
      [&] { medley::execute_tx(wmgr, [&] { m.put(1, 77); }); },
  });
  d.run({0, 1, 0});

  EXPECT_TRUE(torn.load())
      << "txEndRO validated a snapshot a writer tore mid-flight";
  EXPECT_EQ(retried_value.load(), 77u);
  auto st = mgr.stats();
  EXPECT_EQ(st.validation_aborts, 1u);
  EXPECT_EQ(st.commits, 1u);
}

// ---- R4: the policy governs the fallback ----------------------------------

TEST(ReadOnly, BoundedBudgetMakesTornSnapshotTerminal) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.put(1, 1);
  TxManager wmgr(mgr.domain_ptr());

  for (const TxPolicy& p :
       {TxPolicy::bounded(1), [] {
          TxPolicy q;
          q.retry_validation = false;
          return q;
        }()}) {
    mgr.reset_stats();
    bool first_attempt = true;
    TxExecutor ex(p);
    auto res = ex.execute_ro(mgr, [&]() -> std::uint64_t {
      auto v = m.get(1).value_or(0);
      if (first_attempt) {
        first_attempt = false;
        std::thread t(
            [&] { medley::execute_tx(wmgr, [&] { m.put(1, v + 1); }); });
        t.join();
      }
      return v;
    });
    EXPECT_FALSE(res.committed());
    ASSERT_TRUE(res.terminal.has_value());
    EXPECT_EQ(*res.terminal, AbortReason::Validation);
    EXPECT_EQ(res.stats.validation_aborts, 1u);
    EXPECT_EQ(res.stats.retries, 0u);
    EXPECT_EQ(mgr.stats().commits, 0u);
  }
}

TEST(ReadOnly, SnapshotAttemptConsumesOneBudgetSlot) {
  // max_attempts = 2: the torn snapshot is attempt 0, the fallback full
  // transaction attempt 1 — it commits, and no third attempt exists.
  TxManager mgr;
  Map m(&mgr, 64);
  m.put(1, 1);
  TxManager wmgr(mgr.domain_ptr());

  bool first_attempt = true;
  TxExecutor ex(TxPolicy::bounded(2));
  auto res = ex.execute_ro(mgr, [&]() -> std::uint64_t {
    auto v = m.get(1).value_or(0);
    if (first_attempt) {
      first_attempt = false;
      std::thread t(
          [&] { medley::execute_tx(wmgr, [&] { m.put(1, 42); }); });
      t.join();
    }
    return v;
  });
  ASSERT_TRUE(res.committed());
  EXPECT_EQ(*res.value, 42u);
  EXPECT_EQ(res.stats.validation_aborts + res.stats.retries, 2u);
}

// ---- R5: snapshot consistency under concurrent writers --------------------

TEST(ReadOnly, TornSnapshotNeverObservedUnderWriters) {
  // Pair-sum conservation: keys {2i, 2i+1} always sum to kSum. Writers
  // rebalance pairs atomically (multi_put); 8 threads of read-only range
  // snapshots must never see a half-applied pair. A churn writer inserts
  // and removes keys in a disjoint band so snapshot walks also cross
  // marked nodes (the help-unlink -> validation-abort -> fallback path).
  constexpr std::uint64_t kPairs = 16;
  constexpr std::uint64_t kSum = 1000;
  constexpr std::uint64_t kChurnBase = 1000;
  constexpr int kIters = 300;

  TxManager mgr;
  Store s(&mgr, ro_cfg(512));
  for (std::uint64_t i = 0; i < kPairs; i++) {
    s.multi_put({{2 * i, kSum / 2}, {2 * i + 1, kSum - kSum / 2}});
  }

  std::atomic<bool> torn{false};
  run_threads(8, [&](int t) {
    medley::util::Xoshiro256 rng(0x9e3779b9u + static_cast<std::uint64_t>(t));
    if (t < 3) {  // pair rebalancers
      for (int it = 0; it < kIters; it++) {
        const std::uint64_t i = rng.next() % kPairs;
        const std::uint64_t x = rng.next() % (kSum + 1);
        s.multi_put({{2 * i, x}, {2 * i + 1, kSum - x}});
      }
    } else if (t == 3) {  // churn in the disjoint band
      for (int it = 0; it < kIters; it++) {
        const std::uint64_t k = kChurnBase + rng.next() % 32;
        s.put(k, k);
        s.del(k);
      }
    } else {  // read-only snapshot readers
      for (int it = 0; it < kIters; it++) {
        const std::uint64_t i = rng.next() % kPairs;
        auto pair = s.range(2 * i, 2 * i + 1);
        if (pair.size() != 2 ||
            pair[0].second + pair[1].second != kSum) {
          torn.store(true);
        }
        auto all = s.scan(0, 2 * kPairs);
        std::uint64_t total = 0;
        std::uint64_t in_band = 0;
        for (const auto& [k, v] : all) {
          if (k < 2 * kPairs) {
            total += v;
            in_band++;
          } else if (v != k) {
            torn.store(true);  // churn key with a foreign value
          }
        }
        if (in_band == 2 * kPairs && total != kPairs * kSum) {
          torn.store(true);
        }
      }
    }
  });
  EXPECT_FALSE(torn.load()) << "a read-only snapshot observed a torn state";
  auto st = s.stats();
  EXPECT_GE(st.commits, 8u * kIters);
}

template <typename Sharded>
void merged_snapshot_conservation(Sharded& s, std::uint64_t nkeys) {
  // Total-sum conservation across shards: transfers move value between
  // two random keys inside one cross-shard transaction; merged read-only
  // range/scan snapshots must always total nkeys * 100.
  constexpr int kIters = 200;
  const std::uint64_t expected_total = nkeys * 100;
  for (std::uint64_t k = 0; k < nkeys; k++) s.put(k, 100);

  std::atomic<bool> torn{false};
  run_threads(8, [&](int t) {
    medley::util::Xoshiro256 rng(0xdecafbad + static_cast<std::uint64_t>(t));
    if (t < 4) {  // transfer writers
      for (int it = 0; it < kIters; it++) {
        const std::uint64_t a = rng.next() % nkeys;
        const std::uint64_t b = rng.next() % nkeys;
        if (a == b) continue;
        s.transact([&] {
          const std::uint64_t va = *s.get(a);
          const std::uint64_t vb = *s.get(b);
          if (va == 0) return;
          s.put(a, va - 1);
          s.put(b, vb + 1);
        });
      }
    } else {  // merged snapshot readers
      for (int it = 0; it < kIters; it++) {
        auto all = (it & 1) ? s.range(0, nkeys - 1) : s.scan(0, nkeys);
        if (all.size() != nkeys) {
          torn.store(true);
          continue;
        }
        std::uint64_t total = 0;
        for (const auto& [k, v] : all) total += v;
        if (total != expected_total) torn.store(true);
      }
    }
  });
  EXPECT_FALSE(torn.load())
      << "a merged read-only snapshot observed a torn cross-shard state";
}

TEST(ReadOnly, ShardedMergedRangeSnapshotConsistent) {
  ShardedMedleyStore<std::uint64_t, std::uint64_t> s(4, ro_cfg(512));
  merged_snapshot_conservation(s, 24);
}

TEST(ReadOnly, RangeShardedMergedRangeSnapshotConsistent) {
  RangeShardedMedleyStore<std::uint64_t, std::uint64_t> s(
      RangeShardedMedleyStore<std::uint64_t, std::uint64_t>::
          Partitioner::uniform(0, 24, 4),
      ro_cfg(512));
  merged_snapshot_conservation(s, 24);
}

// ---- R6: StoreConfig::feed_drain_per_tx validation (satellite) ------------

TEST(StoreConfigValidation, FeedDrainZeroThrows) {
  TxManager mgr;
  StoreConfig cfg;
  cfg.feed_drain_per_tx = 0;
  EXPECT_THROW(Store(&mgr, cfg), std::invalid_argument);
  EXPECT_THROW((ShardedMedleyStore<std::uint64_t, std::uint64_t>(2, cfg)),
               std::invalid_argument);
}

TEST(StoreConfigValidation, FeedDrainAboveCapClampsWithContract) {
  TxManager mgr;
  StoreConfig cfg;
  cfg.feed_drain_per_tx = kMaxFeedDrainPerTx * 10;
  Store s(&mgr, cfg);
  EXPECT_EQ(s.config().feed_drain_per_tx, kMaxFeedDrainPerTx)
      << "config() must report the clamped, effective drain";

  ShardedMedleyStore<std::uint64_t, std::uint64_t> sh(2, cfg);
  EXPECT_EQ(sh.shard(0).config().feed_drain_per_tx, kMaxFeedDrainPerTx);

  // The clamped value drains: a burst deeper than one transaction's clamp
  // comes out across calls, never zero-at-a-time.
  for (std::uint64_t k = 0; k < 8; k++) s.put(k, k);
  EXPECT_EQ(s.poll_feed(100).size(), 8u);
}

}  // namespace

// LFTT-style transactional skiplist: static transactions, all-or-nothing
// semantic failures, helping by re-execution, visible readers.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "stm/lftt_skiplist.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::stm::LfttSkiplist;
using Op = LfttSkiplist::Op;
using OpType = LfttSkiplist::OpType;

TEST(Lftt, SingletonBasics) {
  LfttSkiplist s;
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(1));
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.remove(1));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.remove(1));
}

TEST(Lftt, ReinsertAfterRemoveReusesNode) {
  LfttSkiplist s;
  EXPECT_TRUE(s.insert(7));
  EXPECT_TRUE(s.remove(7));
  EXPECT_TRUE(s.insert(7));  // logical reinsertion on the physical node
  EXPECT_TRUE(s.contains(7));
  EXPECT_EQ(s.size_slow(), 1u);
}

TEST(Lftt, StaticTxAllOpsCommitTogether) {
  LfttSkiplist s;
  EXPECT_TRUE(s.executeTx({{OpType::Insert, 1}, {OpType::Insert, 2},
                           {OpType::Insert, 3}}));
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.size_slow(), 3u);
}

TEST(Lftt, SemanticFailureAbortsWholeTx) {
  LfttSkiplist s;
  s.insert(2);
  // Second op fails (2 already present): the whole tx aborts, so 1 must
  // NOT be inserted.
  EXPECT_FALSE(s.executeTx({{OpType::Insert, 1}, {OpType::Insert, 2}}));
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
}

TEST(Lftt, RemoveAbsentAbortsWholeTx) {
  LfttSkiplist s;
  s.insert(1);
  EXPECT_FALSE(s.executeTx({{OpType::Remove, 1}, {OpType::Remove, 9}}));
  EXPECT_TRUE(s.contains(1));  // first remove rolled back (never committed)
}

TEST(Lftt, ContainsInsideTxIsValidated) {
  LfttSkiplist s;
  s.insert(5);
  EXPECT_TRUE(s.executeTx({{OpType::Contains, 5}, {OpType::Insert, 6}}));
  EXPECT_TRUE(s.contains(6));
  // Contains of an absent key aborts the tx.
  EXPECT_FALSE(s.executeTx({{OpType::Contains, 99}, {OpType::Insert, 7}}));
  EXPECT_FALSE(s.contains(7));
}

TEST(Lftt, InsertRemoveSameKeyInOneTx) {
  LfttSkiplist s;
  EXPECT_TRUE(s.executeTx({{OpType::Insert, 4}, {OpType::Remove, 4}}));
  EXPECT_FALSE(s.contains(4));
}

TEST(Lftt, ConcurrentDisjointTxsAllCommit) {
  LfttSkiplist s;
  constexpr int kThreads = 4, kPer = 200;
  std::atomic<int> committed{0};
  medley::test::run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPer; i++) {
      auto base = static_cast<std::uint64_t>(t * kPer + i) * 2 + 1;
      if (s.executeTx({{OpType::Insert, base}, {OpType::Insert, base + 1}})) {
        committed.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(committed.load(), kThreads * kPer);
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(kThreads * kPer * 2));
}

TEST(Lftt, ConflictingTxsMaintainAtomicity) {
  // Threads move key 1 <-> key 2 presence atomically: exactly one of the
  // two keys is present at any quiescent point.
  LfttSkiplist s;
  s.insert(1);
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 3);
    for (int i = 0; i < 400; i++) {
      if (rng.next() & 1) {
        s.executeTx({{OpType::Remove, 1}, {OpType::Insert, 2}});
      } else {
        s.executeTx({{OpType::Remove, 2}, {OpType::Insert, 1}});
      }
    }
  });
  int present = (s.contains(1) ? 1 : 0) + (s.contains(2) ? 1 : 0);
  EXPECT_EQ(present, 1);
}

TEST(Lftt, ChurnConservation) {
  LfttSkiplist s;
  std::atomic<std::int64_t> net{0};
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 11 + 6);
    for (int i = 0; i < 800; i++) {
      auto k = rng.next_bounded(32) + 1;
      if (rng.next() & 1) {
        if (s.insert(k)) net.fetch_add(1);
      } else if (s.remove(k)) {
        net.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(net.load()));
}

// Typed property suite over the three ordered-map structures (Fraser
// skiplist, rotating skiplist, Natarajan-Mittal BST): identical map
// semantics, NBTC transactional behaviour, an std::map oracle under random
// workloads, and concurrent conservation invariants. Each test runs once
// per structure via TYPED_TEST.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "ds/fraser_skiplist.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/rotating_skiplist.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;

template <typename S>
class OrderedMap : public ::testing::Test {
 protected:
  TxManager mgr;
};

using Structures =
    ::testing::Types<medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>,
                     medley::ds::RotatingSkiplist<std::uint64_t, std::uint64_t>,
                     medley::ds::NatarajanBST<std::uint64_t, std::uint64_t>>;
TYPED_TEST_SUITE(OrderedMap, Structures);

TYPED_TEST(OrderedMap, InsertGetRoundTrip) {
  TypeParam s(&this->mgr);
  EXPECT_TRUE(s.insert(10, 100));
  EXPECT_EQ(s.get(10), std::optional<std::uint64_t>(100));
  EXPECT_FALSE(s.get(11).has_value());
}

TYPED_TEST(OrderedMap, InsertDuplicateFails) {
  TypeParam s(&this->mgr);
  EXPECT_TRUE(s.insert(10, 100));
  EXPECT_FALSE(s.insert(10, 200));
  EXPECT_EQ(s.get(10), std::optional<std::uint64_t>(100));
  EXPECT_EQ(s.size_slow(), 1u);
}

TYPED_TEST(OrderedMap, RemoveSemantics) {
  TypeParam s(&this->mgr);
  EXPECT_FALSE(s.remove(5).has_value());
  s.insert(5, 50);
  EXPECT_EQ(s.remove(5), std::optional<std::uint64_t>(50));
  EXPECT_FALSE(s.contains(5));
  EXPECT_FALSE(s.remove(5).has_value());
}

TYPED_TEST(OrderedMap, ReinsertAfterRemove) {
  TypeParam s(&this->mgr);
  s.insert(5, 50);
  s.remove(5);
  EXPECT_TRUE(s.insert(5, 51));
  EXPECT_EQ(s.get(5), std::optional<std::uint64_t>(51));
}

TYPED_TEST(OrderedMap, AscendingInsertionAllRetrievable) {
  TypeParam s(&this->mgr);
  for (std::uint64_t k = 1; k <= 500; k++) ASSERT_TRUE(s.insert(k, k * 3));
  for (std::uint64_t k = 1; k <= 500; k++) {
    ASSERT_EQ(s.get(k), std::optional<std::uint64_t>(k * 3)) << k;
  }
  EXPECT_EQ(s.size_slow(), 500u);
  EXPECT_TRUE(s.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, DescendingInsertionAllRetrievable) {
  TypeParam s(&this->mgr);
  for (std::uint64_t k = 500; k >= 1; k--) ASSERT_TRUE(s.insert(k, k));
  EXPECT_EQ(s.size_slow(), 500u);
  EXPECT_TRUE(s.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, KeysSlowSortedAndUnique) {
  TypeParam s(&this->mgr);
  medley::util::Xoshiro256 rng(3);
  std::set<std::uint64_t> oracle;
  for (int i = 0; i < 400; i++) {
    auto k = rng.next_bounded(1000);
    if (s.insert(k, k)) oracle.insert(k);
  }
  auto keys = s.keys_slow();
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(keys.size(), oracle.size());
  std::size_t i = 0;
  for (auto k : oracle) EXPECT_EQ(keys[i++], k);
}

TYPED_TEST(OrderedMap, OracleAgreementUnderRandomOps) {
  // 6000 random ops mirrored into std::map; every result must agree.
  TypeParam s(&this->mgr);
  std::map<std::uint64_t, std::uint64_t> oracle;
  medley::util::Xoshiro256 rng(42);
  for (int i = 0; i < 6000; i++) {
    auto k = rng.next_bounded(200);
    switch (rng.next_bounded(3)) {
      case 0: {
        bool ours = s.insert(k, i);
        bool theirs = oracle.emplace(k, i).second;
        ASSERT_EQ(ours, theirs) << "insert " << k << " @" << i;
        break;
      }
      case 1: {
        auto ours = s.remove(k);
        auto it = oracle.find(k);
        if (it == oracle.end()) {
          ASSERT_FALSE(ours.has_value()) << "remove " << k << " @" << i;
        } else {
          ASSERT_EQ(ours, std::optional<std::uint64_t>(it->second));
          oracle.erase(it);
        }
        break;
      }
      default: {
        auto ours = s.get(k);
        auto it = oracle.find(k);
        if (it == oracle.end()) {
          ASSERT_FALSE(ours.has_value()) << "get " << k << " @" << i;
        } else {
          ASSERT_EQ(ours, std::optional<std::uint64_t>(it->second));
        }
        break;
      }
    }
  }
  EXPECT_EQ(s.size_slow(), oracle.size());
  EXPECT_TRUE(s.invariants_hold_slow());
}

// ---------------------------------------------------------------------
// Transactional semantics.

TYPED_TEST(OrderedMap, TxTwoInsertsCommitTogether) {
  TypeParam s(&this->mgr);
  this->mgr.txBegin();
  EXPECT_TRUE(s.insert(1, 10));
  EXPECT_TRUE(s.insert(2, 20));
  this->mgr.txEnd();
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, TxAbortRollsBackInsert) {
  TypeParam s(&this->mgr);
  try {
    this->mgr.txBegin();
    s.insert(1, 10);
    this->mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size_slow(), 0u);
}

TYPED_TEST(OrderedMap, TxAbortRollsBackRemove) {
  TypeParam s(&this->mgr);
  s.insert(1, 10);
  try {
    this->mgr.txBegin();
    EXPECT_EQ(s.remove(1), std::optional<std::uint64_t>(10));
    this->mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, TxReadOwnInsert) {
  TypeParam s(&this->mgr);
  this->mgr.txBegin();
  s.insert(7, 70);
  EXPECT_EQ(s.get(7), std::optional<std::uint64_t>(70));
  EXPECT_FALSE(s.insert(7, 71));
  this->mgr.txEnd();
  EXPECT_EQ(s.get(7), std::optional<std::uint64_t>(70));
}

TYPED_TEST(OrderedMap, TxReadOwnRemove) {
  TypeParam s(&this->mgr);
  s.insert(7, 70);
  this->mgr.txBegin();
  EXPECT_EQ(s.remove(7), std::optional<std::uint64_t>(70));
  EXPECT_FALSE(s.get(7).has_value());
  this->mgr.txEnd();
  EXPECT_FALSE(s.contains(7));
}

TYPED_TEST(OrderedMap, TxInsertThenRemoveNetsNothing) {
  TypeParam s(&this->mgr);
  this->mgr.txBegin();
  EXPECT_TRUE(s.insert(3, 30));
  EXPECT_EQ(s.remove(3), std::optional<std::uint64_t>(30));
  this->mgr.txEnd();
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size_slow(), 0u);
  EXPECT_TRUE(s.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, TxRemoveThenReinsertSameKey) {
  TypeParam s(&this->mgr);
  s.insert(3, 30);
  this->mgr.txBegin();
  s.remove(3);
  EXPECT_TRUE(s.insert(3, 31));
  this->mgr.txEnd();
  EXPECT_EQ(s.get(3), std::optional<std::uint64_t>(31));
  EXPECT_EQ(s.size_slow(), 1u);
}

TYPED_TEST(OrderedMap, TxMoveBetweenTwoInstances) {
  TypeParam a(&this->mgr), b(&this->mgr);
  a.insert(9, 90);
  medley::execute_tx(this->mgr, [&] {
    auto v = a.remove(9);
    if (v) b.insert(9, *v);
  });
  EXPECT_FALSE(a.contains(9));
  EXPECT_EQ(b.get(9), std::optional<std::uint64_t>(90));
}

TYPED_TEST(OrderedMap, TxStaleReadAbortsAtCommit) {
  TypeParam s(&this->mgr);
  s.insert(1, 10);
  bool aborted = false;
  try {
    this->mgr.txBegin();
    ASSERT_TRUE(s.get(1).has_value());
    std::thread([&] { EXPECT_TRUE(s.remove(1).has_value()); }).join();
    this->mgr.txEnd();
  } catch (const TransactionAborted&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
}

TYPED_TEST(OrderedMap, TxAbsenceReadAbortsWhenKeyAppears) {
  TypeParam s(&this->mgr);
  bool aborted = false;
  try {
    this->mgr.txBegin();
    EXPECT_FALSE(s.get(1).has_value());
    std::thread([&] { EXPECT_TRUE(s.insert(1, 11)); }).join();
    this->mgr.txEnd();
  } catch (const TransactionAborted&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
}

// ---------------------------------------------------------------------
// Concurrency.

TYPED_TEST(OrderedMap, ConcDisjointInsertsAllLand) {
  TypeParam s(&this->mgr);
  constexpr int kThreads = 6, kPer = 300;
  medley::test::run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPer; i++) {
      auto k = static_cast<std::uint64_t>(t) * kPer +
               static_cast<std::uint64_t>(i) + 1;
      ASSERT_TRUE(s.insert(k, k));
    }
  });
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_TRUE(s.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, ConcChurnConservation) {
  TypeParam s(&this->mgr);
  constexpr int kThreads = 6, kOps = 1200;
  constexpr std::uint64_t kKeys = 48;
  std::atomic<std::int64_t> net{0};
  medley::test::run_threads(kThreads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7 + 3);
    for (int i = 0; i < kOps; i++) {
      auto k = rng.next_bounded(kKeys) + 1;
      if (rng.next() & 1) {
        if (s.insert(k, k)) net.fetch_add(1);
      } else if (s.remove(k).has_value()) {
        net.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_TRUE(s.invariants_hold_slow());
  auto keys = s.keys_slow();
  std::set<std::uint64_t> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size());
}

TYPED_TEST(OrderedMap, ConcTransactionalKeyMigration) {
  // Keys migrate atomically between two instances; at the end each key
  // lives in exactly one of them.
  TypeParam a(&this->mgr), b(&this->mgr);
  constexpr std::uint64_t kKeys = 32;
  for (std::uint64_t k = 1; k <= kKeys; k++) a.insert(k, k);
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 11);
    for (int i = 0; i < 400; i++) {
      auto k = rng.next_bounded(kKeys) + 1;
      TypeParam& src = (rng.next() & 1) ? a : b;
      TypeParam& dst = (&src == &a) ? b : a;
      try {
        this->mgr.txBegin();
        auto v = src.remove(k);
        if (v) dst.insert(k, *v);
        this->mgr.txEnd();
      } catch (const TransactionAborted&) {
      }
    }
  });
  for (std::uint64_t k = 1; k <= kKeys; k++) {
    int copies = (a.contains(k) ? 1 : 0) + (b.contains(k) ? 1 : 0);
    EXPECT_EQ(copies, 1) << "key " << k;
  }
  EXPECT_TRUE(a.invariants_hold_slow());
  EXPECT_TRUE(b.invariants_hold_slow());
}

TYPED_TEST(OrderedMap, ConcReadersNeverSeeTornState) {
  // Writers atomically swap key k between two instances; readers in
  // transactions must always observe exactly one copy.
  TypeParam a(&this->mgr), b(&this->mgr);
  a.insert(1, 1);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (int i = 0; i < 600; i++) {
      medley::execute_tx(this->mgr, [&] {
        if (auto v = a.remove(1)) {
          b.insert(1, *v);
        } else if (auto w = b.remove(1)) {
          a.insert(1, *w);
        }
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      try {
        this->mgr.txBegin();
        bool in_a = a.contains(1);
        bool in_b = b.contains(1);
        this->mgr.txEnd();
        if (in_a == in_b) torn.fetch_add(1);  // both or neither: torn
      } catch (const TransactionAborted&) {
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

// Unit tests for the util substrate: 128-bit atomics, padding, RNGs,
// thread registry.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "test_support.hpp"
#include "util/align.hpp"
#include "util/atomic128.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace mu = medley::util;

TEST(Atomic128, DefaultZero) {
  mu::Atomic128 a;
  auto v = a.load();
  EXPECT_EQ(v.lo, 0u);
  EXPECT_EQ(v.hi, 0u);
}

TEST(Atomic128, StoreLoadRoundTrip) {
  mu::Atomic128 a;
  a.store({0xdeadbeefULL, 0x1234'5678'9abc'def0ULL});
  auto v = a.load();
  EXPECT_EQ(v.lo, 0xdeadbeefULL);
  EXPECT_EQ(v.hi, 0x1234'5678'9abc'def0ULL);
}

TEST(Atomic128, CasSucceedsOnMatch) {
  mu::Atomic128 a(mu::U128{1, 2});
  mu::U128 expected{1, 2};
  EXPECT_TRUE(a.compare_exchange(expected, {3, 4}));
  auto v = a.load();
  EXPECT_EQ(v.lo, 3u);
  EXPECT_EQ(v.hi, 4u);
}

TEST(Atomic128, CasFailsOnLoMismatchAndReportsActual) {
  mu::Atomic128 a(mu::U128{1, 2});
  mu::U128 expected{9, 2};
  EXPECT_FALSE(a.compare_exchange(expected, {3, 4}));
  EXPECT_EQ(expected.lo, 1u);
  EXPECT_EQ(expected.hi, 2u);
}

TEST(Atomic128, CasFailsOnHiMismatch) {
  mu::Atomic128 a(mu::U128{1, 2});
  mu::U128 expected{1, 9};
  EXPECT_FALSE(a.compare_exchange(expected, {3, 4}));
  EXPECT_EQ(expected.hi, 2u);
}

TEST(Atomic128, BothHalvesChangeTogetherUnderContention) {
  // Each thread repeatedly CASes {x, x} -> {x+1, x+1}; the two halves must
  // never be observed out of sync.
  mu::Atomic128 a(mu::U128{0, 0});
  std::atomic<bool> violation{false};
  medley::test::run_threads(4, [&](int) {
    for (int i = 0; i < 20000; i++) {
      auto v = a.load();
      if (v.lo != v.hi) violation.store(true);
      mu::U128 want{v.lo + 1, v.hi + 1};
      a.compare_exchange(v, want);
    }
  });
  EXPECT_FALSE(violation.load());
  auto v = a.load();
  EXPECT_EQ(v.lo, v.hi);
}

TEST(Padded, FootprintIsWholeCacheLines) {
  EXPECT_EQ(sizeof(mu::Padded<std::uint64_t>), mu::kCacheLine);
  struct Big {
    char b[70];
  };
  EXPECT_EQ(sizeof(mu::Padded<Big>) % mu::kCacheLine, 0u);
  EXPECT_GE(sizeof(mu::Padded<Big>), sizeof(Big));
}

TEST(Rng, DeterministicForSeed) {
  mu::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  mu::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange) {
  mu::Xoshiro256 r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; i++) EXPECT_LT(r.next_bounded(bound), bound);
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  mu::Xoshiro256 r(11);
  constexpr int kBuckets = 10, kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; i++) counts[r.next_bounded(kBuckets)]++;
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  mu::Xoshiro256 r(3);
  for (int i = 0; i < 1000; i++) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, ZeroThetaIsUniformish) {
  mu::ZipfGenerator z(100, 0.0, 5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; i++) counts[z.next()]++;
  // Every key should appear; uniform expectation is 1000 each.
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(Zipf, HighThetaSkewsToHead) {
  mu::ZipfGenerator z(1000, 0.99, 5);
  int head = 0, total = 100000;
  for (int i = 0; i < total; i++) head += (z.next() < 10);
  // With theta=.99 the top-10 keys draw a large fraction of mass.
  EXPECT_GT(head, total / 4);
}

TEST(Zipf, StaysInRange) {
  mu::ZipfGenerator z(17, 0.8, 9);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.next(), 17u);
}

TEST(ThreadRegistry, StableWithinThread) {
  int a = mu::ThreadRegistry::tid();
  int b = mu::ThreadRegistry::tid();
  EXPECT_EQ(a, b);
}

TEST(ThreadRegistry, DistinctAcrossLiveThreads) {
  // Ids are leased: a thread that exits returns its id, so distinctness is
  // only guaranteed among *concurrently live* threads. Hold all 8 at a
  // barrier while collecting.
  std::set<int> ids;
  std::mutex m;
  std::atomic<int> arrived{0};
  medley::test::run_threads(8, [&](int) {
    int id = mu::ThreadRegistry::tid();
    {
      std::lock_guard<std::mutex> g(m);
      ids.insert(id);
    }
    arrived.fetch_add(1);
    while (arrived.load() < 8) std::this_thread::yield();
  });
  EXPECT_EQ(ids.size(), 8u);
}

TEST(ThreadRegistry, MaxTidBoundsSeenIds) {
  medley::test::run_threads(4, [&](int) { mu::ThreadRegistry::tid(); });
  EXPECT_GE(mu::ThreadRegistry::max_tid(), 1);
  EXPECT_LE(mu::ThreadRegistry::max_tid(), mu::ThreadRegistry::kMaxThreads);
}

TEST(Backoff, CompletesAndResets) {
  mu::ExpBackoff b(2, 16);
  for (int i = 0; i < 10; i++) b();
  b.reset();
  b();
  SUCCEED();
}

TEST(Timing, StopwatchMonotone) {
  mu::Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(sw.elapsed_ns(), 1'000'000u);
  EXPECT_GT(sw.elapsed_s(), 0.0);
}

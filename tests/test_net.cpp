// The network serving subsystem (src/net): wire codec, epoll server,
// client. Contracts under test:
//   N1  codec: every verb's request and every response shape round-trips
//       byte-exactly, through any split of the byte stream (the decoder
//       tolerates one-byte-at-a-time arrival and never over-reads);
//   N2  rejection: malformed bodies, unknown verbs, over-cap MULTI_PUTs
//       and oversized length prefixes are rejected with their typed
//       Status — per-frame for malformed (stream lives), stream-fatal
//       for oversize;
//   N3  e2e: a live server over a real store agrees with a std::map
//       oracle for mixed sync traffic, and a pipelined client that sends
//       PUT(k) ... GET(k) in one batch reads its own write (the wave's
//       ordering barrier);
//   N4  shutdown drain: stopping the server mid-load loses no acked
//       mutation — every OK-acked PUT is in the store afterwards, and
//       replaying the change feed reproduces the primary exactly (waves
//       are fully harvested before a worker exits, so no combiner state
//       is abandoned);
//   N5  observability: one METRICS scrape through the wire exposes both
//       the store families and the net families.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "store/feed.hpp"
#include "store/store.hpp"

using medley::TxManager;
using medley::store::MedleyStore;
using medley::store::StoreConfig;
namespace net = medley::net;
using net::FrameBuffer;
using net::FrameView;
using net::Request;
using net::Response;
using net::Status;
using net::Verb;

using Store = MedleyStore<std::uint64_t, std::uint64_t>;

namespace {

// ---- N1: codec round trips -------------------------------------------------

/// Feed `bytes` into a FrameBuffer `step` bytes at a time, collecting
/// every complete frame as an owned copy (FrameViews die on append).
std::vector<std::vector<std::uint8_t>> reassemble(
    const std::vector<std::uint8_t>& bytes, std::size_t step) {
  FrameBuffer fb;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t off = 0; off < bytes.size(); off += step) {
    const std::size_t n = std::min(step, bytes.size() - off);
    fb.append(bytes.data() + off, n);
    bool oversize = false;
    while (auto f = fb.next(net::kDefaultMaxFrame, &oversize)) {
      frames.emplace_back(f->data, f->data + f->len);
    }
    EXPECT_FALSE(oversize);
  }
  return frames;
}

Request req(Verb v, std::uint32_t id, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint32_t limit = 0) {
  Request rq;
  rq.verb = v;
  rq.id = id;
  rq.a = a;
  rq.b = b;
  rq.limit = limit;
  return rq;
}

TEST(NetCodec, EveryVerbRoundTripsThroughAnyStreamSplit) {
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> kvs = {
      {1, 10}, {2, 20}, {3, 30}};
  std::vector<std::uint8_t> stream;
  net::encode_request(stream, req(Verb::kGet, 1, 42));
  net::encode_request(stream, req(Verb::kPut, 2, 42, 77));
  net::encode_request(stream, req(Verb::kDel, 3, 42));
  net::encode_request(stream, req(Verb::kRmwAdd, 4, 42, 5));
  net::encode_request(stream, req(Verb::kRange, 5, 10, 20));
  net::encode_request(stream, req(Verb::kScan, 6, 10, 0, 7));
  net::encode_request(stream, req(Verb::kMultiPut, 7), kvs);
  net::encode_request(stream, req(Verb::kStats, 8));
  net::encode_request(stream, req(Verb::kMetrics, 9));

  // Every split granularity must yield the identical frame sequence —
  // one byte at a time included (N1's partial-frame reassembly).
  for (std::size_t step : {std::size_t{1}, std::size_t{3}, stream.size()}) {
    auto frames = reassemble(stream, step);
    ASSERT_EQ(frames.size(), 9u) << "step=" << step;
    Request rq;
    auto parse = [&](std::size_t i) {
      FrameView f{frames[i].data(), frames[i].size()};
      return net::parse_request(f, rq);
    };
    ASSERT_EQ(parse(0), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kGet);
    EXPECT_EQ(rq.id, 1u);
    EXPECT_EQ(rq.a, 42u);
    ASSERT_EQ(parse(1), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kPut);
    EXPECT_EQ(rq.a, 42u);
    EXPECT_EQ(rq.b, 77u);
    ASSERT_EQ(parse(2), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kDel);
    ASSERT_EQ(parse(3), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kRmwAdd);
    EXPECT_EQ(rq.b, 5u);
    ASSERT_EQ(parse(4), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kRange);
    EXPECT_EQ(rq.a, 10u);
    EXPECT_EQ(rq.b, 20u);
    ASSERT_EQ(parse(5), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kScan);
    EXPECT_EQ(rq.limit, 7u);
    ASSERT_EQ(parse(6), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kMultiPut);
    ASSERT_EQ(rq.npairs, 3u);
    for (std::uint32_t i = 0; i < 3; i++) {
      EXPECT_EQ(rq.pair(i), kvs[i]);
    }
    ASSERT_EQ(parse(7), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kStats);
    ASSERT_EQ(parse(8), Status::kOk);
    EXPECT_EQ(rq.verb, Verb::kMetrics);
  }
}

TEST(NetCodec, ResponsesRoundTrip) {
  std::vector<std::uint8_t> stream;
  net::encode_value(stream, Verb::kGet, 1, std::uint64_t{99});
  net::encode_value(stream, Verb::kGet, 2, std::nullopt);  // -> kNotFound
  net::encode_value(stream, Verb::kPut, 3, std::nullopt);  // fresh key: OK
  net::encode_pairs(stream, Verb::kRange, 4, {{5, 50}, {6, 60}});
  net::StatsBlob blob;
  blob.commits = 7;
  blob.aborts = 1;
  blob.keys = 3;
  blob.feed_depth = 2;
  blob.combined_batches = 4;
  blob.combined_ops = 9;
  blob.combiner_slots_leaked = 1;
  net::encode_stats(stream, 5, blob);
  net::encode_text(stream, 6, "# HELP x y\n");
  net::encode_status(stream, Verb::kPut, 7, Status::kAborted);

  auto frames = reassemble(stream, 1);
  ASSERT_EQ(frames.size(), 7u);
  Response r;
  auto parse = [&](std::size_t i) {
    FrameView f{frames[i].data(), frames[i].size()};
    return net::parse_response(f, r);
  };
  ASSERT_TRUE(parse(0));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.val, std::optional<std::uint64_t>(99));
  ASSERT_TRUE(parse(1));
  EXPECT_EQ(r.status, Status::kNotFound);
  EXPECT_EQ(r.id, 2u);
  ASSERT_TRUE(parse(2));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_FALSE(r.val.has_value());
  ASSERT_TRUE(parse(3));
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_EQ(r.pairs[1], (std::pair<std::uint64_t, std::uint64_t>{6, 60}));
  ASSERT_TRUE(parse(4));
  EXPECT_EQ(r.stats.commits, 7u);
  EXPECT_EQ(r.stats.combined_ops, 9u);
  EXPECT_EQ(r.stats.combiner_slots_leaked, 1u);
  ASSERT_TRUE(parse(5));
  EXPECT_EQ(r.text, "# HELP x y\n");
  ASSERT_TRUE(parse(6));
  EXPECT_EQ(r.status, Status::kAborted);
  EXPECT_EQ(r.verb, Verb::kPut);
  EXPECT_EQ(r.id, 7u);
}

// ---- N2: rejection ---------------------------------------------------------

TEST(NetCodec, MalformedBodiesAreRejectedWithoutOverreading) {
  Request rq;
  // GET with a truncated key.
  std::vector<std::uint8_t> f = {static_cast<std::uint8_t>(Verb::kGet),
                                 1, 0, 0, 0, 0xAA, 0xBB};
  EXPECT_EQ(net::parse_request({f.data(), f.size()}, rq),
            Status::kMalformed);
  EXPECT_EQ(rq.id, 1u) << "header echoed for the error response";

  // Unknown verb byte.
  f = {0x7F, 2, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(net::parse_request({f.data(), f.size()}, rq), Status::kBadVerb);
  EXPECT_EQ(rq.id, 2u);

  // MULTI_PUT whose pair count promises more bytes than the frame holds:
  // the parser must reject (kMalformed), not read past f.len.
  f.clear();
  net::put_u8(f, static_cast<std::uint8_t>(Verb::kMultiPut));
  net::put_u32(f, 3);
  net::put_u32(f, 4);       // claims 4 pairs = 64 bytes...
  net::put_u64(f, 1);
  net::put_u64(f, 10);      // ...delivers 1
  EXPECT_EQ(net::parse_request({f.data(), f.size()}, rq),
            Status::kMalformed);

  // MULTI_PUT over the pair cap is its own (stream-fatal) status.
  f.clear();
  net::put_u8(f, static_cast<std::uint8_t>(Verb::kMultiPut));
  net::put_u32(f, 4);
  net::put_u32(f, net::kMaxMultiPutPairs + 1);
  EXPECT_EQ(net::parse_request({f.data(), f.size()}, rq), Status::kTooBig);

  // Sub-header frame.
  f = {static_cast<std::uint8_t>(Verb::kGet), 0};
  EXPECT_EQ(net::parse_request({f.data(), f.size()}, rq),
            Status::kMalformed);
}

TEST(NetCodec, OversizedLengthPrefixIsStreamFatal) {
  FrameBuffer fb;
  std::vector<std::uint8_t> bytes;
  net::put_u32(bytes, 1u << 24);  // frame "length" far over the cap
  fb.append(bytes.data(), bytes.size());
  bool oversize = false;
  EXPECT_FALSE(fb.next(1 << 20, &oversize).has_value());
  EXPECT_TRUE(oversize);
}

TEST(NetCodec, DecoderNeverYieldsIncompleteFrames) {
  // A complete frame followed by a partial one: the partial bytes stay
  // buffered, untouched, until their tail arrives.
  std::vector<std::uint8_t> bytes;
  net::encode_request(bytes, req(Verb::kGet, 1, 5));
  const std::size_t first = bytes.size();
  net::encode_request(bytes, req(Verb::kPut, 2, 6, 7));

  FrameBuffer fb;
  fb.append(bytes.data(), first + 3);  // second frame: 3 of its bytes
  bool oversize = false;
  ASSERT_TRUE(fb.next(net::kDefaultMaxFrame, &oversize).has_value());
  EXPECT_FALSE(fb.next(net::kDefaultMaxFrame, &oversize).has_value());
  EXPECT_EQ(fb.buffered(), 3u);
  fb.compact();  // mid-stream compaction must preserve the partial bytes
  fb.append(bytes.data() + first + 3, bytes.size() - first - 3);
  auto f = fb.next(net::kDefaultMaxFrame, &oversize);
  ASSERT_TRUE(f.has_value());
  Request rq;
  ASSERT_EQ(net::parse_request(*f, rq), Status::kOk);
  EXPECT_EQ(rq.verb, Verb::kPut);
  EXPECT_EQ(rq.a, 6u);
  EXPECT_EQ(rq.b, 7u);
}

// ---- live-server fixture ---------------------------------------------------

struct LiveServer {
  TxManager mgr;
  std::shared_ptr<medley::obs::MetricsRegistry> registry;
  std::unique_ptr<Store> store;
  std::unique_ptr<net::StoreAdapter<Store>> adapter;
  std::unique_ptr<net::Server> server;

  explicit LiveServer(std::size_t workers = 1, bool combining = true) {
    registry = std::make_shared<medley::obs::MetricsRegistry>();
    StoreConfig cfg;
    cfg.buckets = 1u << 10;
    cfg.combining.enabled = combining;
    cfg.metrics = true;
    cfg.metrics_registry = registry;
    store = std::make_unique<Store>(&mgr, cfg);
    adapter = std::make_unique<net::StoreAdapter<Store>>(store.get());
    net::NetConfig ncfg;
    ncfg.workers = workers;
    ncfg.registry = registry;
    server = std::make_unique<net::Server>(adapter.get(), ncfg);
    server->start();
  }
  ~LiveServer() { server->stop(); }

  net::Client connect() {
    return net::Client("127.0.0.1", server->port());
  }
};

// ---- N3: end-to-end against an oracle --------------------------------------

TEST(NetServer, SyncOpsAgreeWithOracle) {
  LiveServer ls;
  net::Client c = ls.connect();
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  auto rnd = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int i = 0; i < 400; i++) {
    const std::uint64_t k = rnd() % 64;
    switch (rnd() % 4) {
      case 0: {
        const std::uint64_t v = rnd();
        auto prev = c.put(k, v);
        auto it = oracle.find(k);
        EXPECT_EQ(prev, it == oracle.end()
                            ? std::nullopt
                            : std::optional<std::uint64_t>(it->second));
        oracle[k] = v;
        break;
      }
      case 1: {
        auto prev = c.del(k);
        auto it = oracle.find(k);
        EXPECT_EQ(prev, it == oracle.end()
                            ? std::nullopt
                            : std::optional<std::uint64_t>(it->second));
        oracle.erase(k);
        break;
      }
      case 2: {
        auto got = c.get(k);
        auto it = oracle.find(k);
        EXPECT_EQ(got, it == oracle.end()
                           ? std::nullopt
                           : std::optional<std::uint64_t>(it->second));
        break;
      }
      case 3: {
        const std::uint64_t d = rnd() % 1000;
        const std::uint64_t expect =
            (oracle.count(k) ? oracle[k] : 0) + d;
        EXPECT_EQ(c.rmw_add(k, d), expect);
        oracle[k] = expect;
        break;
      }
    }
  }
  // Ordered reads agree with the oracle wholesale.
  auto rows = c.range(0, ~0ull);
  ASSERT_EQ(rows.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : rows) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
  auto head = c.scan(0, 5);
  EXPECT_EQ(head.size(), std::min<std::size_t>(5, oracle.size()));

  c.multi_put({{1000, 1}, {1001, 2}, {1002, 3}});
  EXPECT_EQ(c.get(1001), std::optional<std::uint64_t>(2));

  auto stats = c.stats();
  EXPECT_GT(stats.commits, 0u);
  EXPECT_EQ(stats.keys, oracle.size() + 3);
  EXPECT_EQ(stats.combiner_slots_leaked, 0u);
}

TEST(NetServer, PipelinedWaveReadsItsOwnWrites) {
  LiveServer ls;
  net::Client c = ls.connect();
  // One batch: 16 PUTs then a GET of each key — the GETs are ordering
  // barriers, so each must observe the PUT that preceded it in the wave.
  std::vector<Request> batch;
  for (std::uint64_t k = 0; k < 16; k++) {
    batch.push_back(c.make(Verb::kPut, k, k * 100));
  }
  for (std::uint64_t k = 0; k < 16; k++) {
    batch.push_back(c.make(Verb::kGet, k));
  }
  auto rs = c.send_batch(batch);
  ASSERT_EQ(rs.size(), 32u);
  for (std::size_t i = 0; i < 32; i++) {
    EXPECT_EQ(rs[i].id, batch[i].id) << "responses arrive in request order";
  }
  for (std::uint64_t k = 0; k < 16; k++) {
    EXPECT_EQ(rs[16 + k].status, Status::kOk);
    EXPECT_EQ(rs[16 + k].val, std::optional<std::uint64_t>(k * 100));
  }
  // DELs pipeline the same way; a deleted key's GET misses.
  batch.clear();
  batch.push_back(c.make(Verb::kDel, 3));
  batch.push_back(c.make(Verb::kGet, 3));
  rs = c.send_batch(batch);
  EXPECT_EQ(rs[0].val, std::optional<std::uint64_t>(300));
  EXPECT_EQ(rs[1].status, Status::kNotFound);
}

TEST(NetServer, PipelinedWavesFormCombinedBatches) {
  LiveServer ls;
  net::Client c = ls.connect();
  std::vector<Request> batch;
  for (std::uint64_t k = 0; k < 32; k++) {
    batch.push_back(c.make(Verb::kPut, k, k));
  }
  auto rs = c.send_batch(batch);
  for (const auto& r : rs) EXPECT_EQ(r.status, Status::kOk);
  auto stats = c.stats();
  EXPECT_GT(stats.combined_ops, 0u)
      << "a pipelined wave of PUTs should commit via the combiner";
  EXPECT_LT(stats.combined_batches, stats.combined_ops)
      << "waves should batch (fewer batches than ops)";
}

TEST(NetServer, MalformedFrameGetsTypedErrorAndStreamSurvives) {
  LiveServer ls;
  net::Client c = ls.connect();
  // Hand-craft: a valid PUT, a malformed GET (truncated key), a valid
  // GET. The middle frame must draw kMalformed; the others must work.
  std::vector<std::uint8_t> raw;
  net::encode_request(raw, req(Verb::kPut, 1, 5, 50));
  net::put_u32(raw, 7);  // frame: verb + id + 2 bytes (too short for GET)
  net::put_u8(raw, static_cast<std::uint8_t>(Verb::kGet));
  net::put_u32(raw, 2);
  net::put_u8(raw, 0xDE);
  net::put_u8(raw, 0xAD);
  net::encode_request(raw, req(Verb::kGet, 3, 5));
  ssize_t n = ::write(c.fd(), raw.data(), raw.size());
  ASSERT_EQ(n, static_cast<ssize_t>(raw.size()));

  FrameBuffer fb;
  std::vector<Response> got;
  while (got.size() < 3) {
    std::uint8_t buf[4096];
    n = ::read(c.fd(), buf, sizeof(buf));
    ASSERT_GT(n, 0);
    fb.append(buf, static_cast<std::size_t>(n));
    bool oversize = false;
    while (auto f = fb.next(net::kDefaultMaxFrame, &oversize)) {
      Response r;
      ASSERT_TRUE(net::parse_response(*f, r));
      got.push_back(r);
    }
  }
  EXPECT_EQ(got[0].status, Status::kOk);
  EXPECT_EQ(got[1].status, Status::kMalformed);
  EXPECT_EQ(got[1].id, 2u) << "error echoes the offending request id";
  EXPECT_EQ(got[2].status, Status::kOk);
  EXPECT_EQ(got[2].val, std::optional<std::uint64_t>(50))
      << "the stream keeps serving after a per-frame rejection";
}

// ---- N4: graceful-shutdown drain -------------------------------------------

TEST(NetServer, ShutdownMidLoadLosesNoAckedMutation) {
  LiveServer ls(/*workers=*/1, /*combining=*/true);
  constexpr int kClients = 3;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  // acked[t] = number of OK-acked puts by thread t; thread t writes keys
  // t*1'000'000 + i = i, in order, so "acked" is a prefix count.
  std::vector<std::atomic<std::uint64_t>> acked(kClients);
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      try {
        net::Client c = ls.connect();
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::uint64_t i = 0;; i++) {
          c.put(t * 1'000'000ull + i, i);
          // put() returned => the OK ack arrived => committed.
          acked[t].fetch_add(1, std::memory_order_release);
        }
      } catch (...) {
        // Server went away mid-call: everything acked so far stands.
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Let real load build, then yank the server mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ls.server->stop();
  for (auto& th : threads) th.join();

  // Every acked PUT is in the store (acks are commit-proofs).
  std::uint64_t total_acked = 0;
  for (int t = 0; t < kClients; t++) {
    const std::uint64_t n = acked[t].load(std::memory_order_acquire);
    total_acked += n;
    for (std::uint64_t i = 0; i < n; i++) {
      ASSERT_EQ(ls.store->get(t * 1'000'000ull + i),
                std::optional<std::uint64_t>(i))
          << "acked put lost: client " << t << " op " << i;
    }
  }
  EXPECT_GT(total_acked, 0u) << "the load never started; test is vacuous";

  // Feed replay reproduces the primary exactly: no combiner batch was
  // abandoned half-committed by the shutdown. (Compared key-by-key — a
  // whole-store range() at this size would deterministically Capacity-
  // abort; the feed's length vs the store's key count pins the sizes.)
  std::map<std::uint64_t, std::uint64_t> replayed;
  for (;;) {
    auto entries = ls.store->poll_feed(256);
    if (entries.empty()) break;
    medley::store::replay_feed(entries, replayed);
  }
  ASSERT_EQ(replayed.size(), ls.store->stats().key_count());
  for (const auto& [k, v] : replayed) {
    ASSERT_EQ(ls.store->get(k), std::optional<std::uint64_t>(v))
        << "feed disagrees with primary at key " << k;
  }
}

// ---- N5: METRICS through the wire ------------------------------------------

TEST(NetServer, MetricsScrapeExposesStoreAndNetFamilies) {
  LiveServer ls(/*workers=*/2);
  net::Client c = ls.connect();
  for (std::uint64_t k = 0; k < 10; k++) c.put(k, k);
  c.get(3);
  const std::string text = c.metrics();
  for (const char* family :
       {"medley_store_ops_total", "medley_store_op_latency_ns",
        "medley_store_aborts_total", "medley_store_keys",
        "medley_store_feed_depth", "medley_net_requests_total",
        "medley_net_errors_total", "medley_net_batch_size",
        "medley_net_connections",
        "medley_store_combiner_slots_leaked_total"}) {
    EXPECT_NE(text.find(family), std::string::npos)
        << "family missing from wire scrape: " << family;
  }
  EXPECT_NE(text.find("# HELP"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("op=\"put\""), std::string::npos)
      << "net request counters are per-verb";
}

TEST(NetServer, ServesWithCombiningOff) {
  // The server's code path is identical with combining off (async ops
  // come back pre-resolved); the wire behavior must be too.
  LiveServer ls(/*workers=*/1, /*combining=*/false);
  net::Client c = ls.connect();
  std::vector<Request> batch;
  for (std::uint64_t k = 0; k < 8; k++) {
    batch.push_back(c.make(Verb::kPut, k, k + 1));
  }
  batch.push_back(c.make(Verb::kGet, 4));
  auto rs = c.send_batch(batch);
  EXPECT_EQ(rs.back().val, std::optional<std::uint64_t>(5));
  EXPECT_EQ(c.stats().combined_ops, 0u);
}

}  // namespace

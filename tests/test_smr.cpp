// Epoch-based reclamation: grace-period discipline, guard pinning, nesting.
//
// The EBR singleton is process-global, so tests use drain() to reach a
// clean state and counting deleters to observe frees.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "smr/ebr.hpp"
#include "test_support.hpp"

using medley::smr::EBR;

namespace {
std::atomic<int> g_freed{0};

struct Tracked {
  ~Tracked() { g_freed.fetch_add(1); }
};
}  // namespace

TEST(Ebr, RetireDoesNotFreeImmediately) {
  auto& ebr = EBR::instance();
  ebr.drain();
  g_freed = 0;
  ebr.retire(new Tracked);
  EXPECT_EQ(g_freed.load(), 0);  // needs two epoch advances
  ebr.drain();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Ebr, DrainFreesBacklog) {
  auto& ebr = EBR::instance();
  ebr.drain();
  g_freed = 0;
  for (int i = 0; i < 100; i++) ebr.retire(new Tracked);
  ebr.drain();
  EXPECT_EQ(g_freed.load(), 100);
  EXPECT_EQ(ebr.limbo_size(), 0u);
}

TEST(Ebr, GuardBlocksAdvanceSoRetiredStayAlive) {
  auto& ebr = EBR::instance();
  ebr.drain();
  g_freed = 0;

  std::atomic<bool> pinned{false}, release{false};
  std::thread reader([&] {
    EBR::Guard g;
    pinned = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  ebr.retire(new Tracked);
  for (int i = 0; i < 8; i++) ebr.collect();
  EXPECT_EQ(g_freed.load(), 0);  // reader's pin froze the epoch

  release = true;
  reader.join();
  ebr.drain();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Ebr, NestedGuardsReleaseOnlyAtOutermost) {
  auto& ebr = EBR::instance();
  ebr.drain();
  g_freed = 0;
  {
    EBR::Guard outer;
    {
      EBR::Guard inner;
    }
    // Still pinned by `outer`: a retire in another thread must not free.
    std::thread([&] {
      ebr.retire(new Tracked);
      for (int i = 0; i < 8; i++) ebr.collect();
    }).join();
    EXPECT_EQ(g_freed.load(), 0);
  }
  ebr.drain();
  // The other thread's limbo item frees on ITS next collect; force it from
  // a fresh thread sharing the slot is not guaranteed, so sweep globally by
  // retiring from this thread and draining.
  std::thread([&] { EBR::instance().drain(); }).join();
  // Item may still sit in the (exited) thread's limbo bag until its slot is
  // reused; all we assert here is no premature free above.
}

TEST(Ebr, EpochMonotone) {
  auto& ebr = EBR::instance();
  auto e0 = ebr.epoch();
  ebr.collect();
  ebr.collect();
  EXPECT_GE(ebr.epoch(), e0);
}

TEST(Ebr, ManyThreadsRetireConcurrently) {
  auto& ebr = EBR::instance();
  ebr.drain();
  g_freed = 0;
  constexpr int kThreads = 8, kPerThread = 500;
  medley::test::run_threads(kThreads, [&](int) {
    for (int i = 0; i < kPerThread; i++) {
      EBR::Guard g;
      EBR::instance().retire(new Tracked);
    }
    EBR::instance().drain();
  });
  // Exited threads may leave limbo bags behind; thread ids (and with them
  // the bags) are leased to the next generation of threads, whose drain()
  // sweeps what they inherited. Two generations make the count exact.
  for (int round = 0; round < 2; round++) {
    medley::test::run_threads(kThreads, [&](int) {
      EBR::instance().drain();
    });
    ebr.drain();
  }
  EXPECT_EQ(g_freed.load(), kThreads * kPerThread);
}

TEST(Ebr, ReaderNeverSeesFreedMemory) {
  // Single-cell hand-off: writer publishes new nodes and retires old ones;
  // readers dereference under a guard. A use-after-free here would crash
  // or produce a torn magic value.
  struct Node {
    std::uint64_t magic = 0xfeedfacecafebeefULL;
    ~Node() { magic = 0; }
  };
  std::atomic<Node*> slot{new Node};
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::thread writer([&] {
    for (int i = 0; i < 20000; i++) {
      Node* fresh = new Node;
      Node* old = slot.exchange(fresh);
      EBR::instance().retire(old);
    }
    stop = true;
  });
  medley::test::run_threads(3, [&](int) {
    while (!stop.load()) {
      EBR::Guard g;
      Node* n = slot.load();
      if (n->magic != 0xfeedfacecafebeefULL) bad.fetch_add(1);
    }
  });
  writer.join();
  EXPECT_EQ(bad.load(), 0);
  EBR::instance().retire(slot.load());
  EBR::instance().drain();
}

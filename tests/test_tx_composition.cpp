// Cross-structure transactional composition: the paper's core promise is
// that *any* mix of NBTC structures composes — queue + hash table +
// skiplist + BST in a single transaction, with strict serializability
// across all of them. These tests drive exactly that, plus opacity
// (validateReads), liveness under oversubscription, and parameterized
// conservation sweeps.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ds/fraser_skiplist.hpp"
#include "ds/michael_hashtable.hpp"
#include "ds/ms_queue.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/rotating_skiplist.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::AbortReason;
using medley::TransactionAborted;
using medley::TxManager;
using Queue = medley::ds::MSQueue<std::uint64_t>;
using Hash = medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>;
using Skip = medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>;
using Rot = medley::ds::RotatingSkiplist<std::uint64_t, std::uint64_t>;
using Bst = medley::ds::NatarajanBST<std::uint64_t, std::uint64_t>;

TEST(Composition, FourStructuresOneTransaction) {
  TxManager mgr;
  Queue q(&mgr);
  Hash h(&mgr, 64);
  Skip s(&mgr);
  Bst b(&mgr);

  q.enqueue(1);
  medley::execute_tx(mgr, [&] {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    h.insert(*v, 100);
    s.insert(*v, 200);
    b.insert(*v, 300);
  });
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(h.get(1), std::optional<std::uint64_t>(100));
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(200));
  EXPECT_EQ(b.get(1), std::optional<std::uint64_t>(300));
}

TEST(Composition, FourStructuresAbortRollsBackAll) {
  TxManager mgr;
  Queue q(&mgr);
  Hash h(&mgr, 64);
  Skip s(&mgr);
  Bst b(&mgr);
  q.enqueue(1);
  try {
    mgr.txBegin();
    auto v = q.dequeue();
    h.insert(*v, 100);
    s.insert(*v, 200);
    b.insert(*v, 300);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(q.empty());  // element restored
  EXPECT_FALSE(h.contains(1));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(b.contains(1));
}

TEST(Composition, ChainedMovesAcrossFiveStructures) {
  // value hops queue -> hash -> fraser -> rotating -> bst, one tx per hop;
  // at every quiescent point it exists in exactly one place.
  TxManager mgr;
  Queue q(&mgr);
  Hash h(&mgr, 64);
  Skip s(&mgr);
  Rot r(&mgr);
  Bst b(&mgr);

  q.enqueue(42);
  medley::execute_tx(mgr, [&] {
    auto v = q.dequeue();
    h.insert(42, *v);
  });
  medley::execute_tx(mgr, [&] {
    auto v = h.remove(42);
    s.insert(42, *v);
  });
  medley::execute_tx(mgr, [&] {
    auto v = s.remove(42);
    r.insert(42, *v);
  });
  medley::execute_tx(mgr, [&] {
    auto v = r.remove(42);
    b.insert(42, *v);
  });
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(h.contains(42));
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(r.contains(42));
  EXPECT_EQ(b.get(42), std::optional<std::uint64_t>(42));
}

TEST(Composition, ReadOnlySnapshotAcrossStructures) {
  // A transactional reader sees one consistent cut across three
  // structures being updated together.
  TxManager mgr;
  Hash h(&mgr, 64);
  Skip s(&mgr);
  Bst b(&mgr);
  h.insert(1, 0);
  s.insert(1, 0);
  b.insert(1, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 1200; i++) {
      medley::execute_tx(mgr, [&] {
        h.remove(1);
        h.insert(1, i);
        s.remove(1);
        s.insert(1, i);
        b.remove(1);
        b.insert(1, i);
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      try {
        mgr.txBegin();
        auto vh = h.get(1);
        auto vs = s.get(1);
        auto vb = b.get(1);
        mgr.txEnd();
        if (!(vh == vs && vs == vb)) torn.fetch_add(1);
      } catch (const TransactionAborted&) {
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(Composition, OpacityValidateReadsMidTransaction) {
  TxManager mgr;
  Hash h(&mgr, 64);
  Skip s(&mgr);
  h.insert(1, 10);
  bool threw = false;
  try {
    mgr.txBegin();
    auto v = h.get(1);
    ASSERT_TRUE(v.has_value());
    std::thread([&] { h.put(1, 99); }).join();  // peer invalidates us
    mgr.validateReads();  // opacity: detect now rather than at commit
    s.insert(2, *v);      // never reached
    mgr.txEnd();
  } catch (const TransactionAborted& e) {
    threw = true;
    EXPECT_EQ(e.reason(), AbortReason::Validation);
  }
  EXPECT_TRUE(threw);
  EXPECT_FALSE(s.contains(2));
}

TEST(Composition, QueueLedgerMatchesMapState) {
  // Classic producer/consumer with a ledger: each consume tx moves an
  // element from the queue into the map AND appends an audit record to a
  // second queue. #records == #map entries always.
  TxManager mgr;
  Queue work(&mgr), audit(&mgr);
  Hash done(&mgr, 256);
  constexpr int kItems = 200;
  for (std::uint64_t i = 1; i <= kItems; i++) work.enqueue(i);

  medley::test::run_threads(4, [&](int) {
    for (;;) {
      bool drained = false;
      try {
        mgr.txBegin();
        auto v = work.dequeue();
        if (!v) {
          drained = true;
        } else {
          done.insert(*v, 1);
          audit.enqueue(*v);
        }
        mgr.txEnd();
      } catch (const TransactionAborted&) {
        continue;
      }
      if (drained) break;
    }
  });
  EXPECT_EQ(done.size_slow(), static_cast<std::size_t>(kItems));
  EXPECT_EQ(audit.size_slow(), static_cast<std::size_t>(kItems));
  // Audit queue contains each item exactly once.
  std::vector<int> seen(kItems + 1, 0);
  while (auto v = audit.dequeue()) seen[*v]++;
  for (int i = 1; i <= kItems; i++) EXPECT_EQ(seen[i], 1) << i;
}

TEST(Composition, LivenessUnderHeavyOversubscription) {
  // 16 threads on (at most a few) cores hammering two hot keys across two
  // structures: obstruction freedom + retry must guarantee global
  // progress; the test completing at all is the assertion.
  TxManager mgr;
  Hash h(&mgr, 8);
  Skip s(&mgr);
  h.insert(1, 0);
  s.insert(1, 0);
  std::atomic<std::uint64_t> commits{0};
  medley::test::run_threads(16, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 5);
    for (int i = 0; i < 150; i++) {
      medley::execute_tx(mgr, [&] {
        auto vh = h.get(1).value_or(0);
        auto vs = s.get(1).value_or(0);
        h.put(1, vh + 1);
        s.remove(1);
        s.insert(1, vs + 1);
      });
      commits.fetch_add(1);
    }
  });
  EXPECT_EQ(commits.load(), 16u * 150u);
  // Both counters saw every committed increment.
  EXPECT_EQ(h.get(1), std::optional<std::uint64_t>(16 * 150));
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(16 * 150));
}

TEST(Composition, LargeTransactionAcrossAllStructures) {
  TxManager mgr;
  Queue q(&mgr);
  Hash h(&mgr, 256);
  Skip s(&mgr);
  Rot r(&mgr);
  Bst b(&mgr);
  medley::execute_tx(mgr, [&] {
    for (std::uint64_t k = 1; k <= 40; k++) {
      q.enqueue(k);
      h.insert(k, k);
      s.insert(k, k);
      r.insert(k, k);
      b.insert(k, k);
    }
  });
  EXPECT_EQ(q.size_slow(), 40u);
  EXPECT_EQ(h.size_slow(), 40u);
  EXPECT_EQ(s.size_slow(), 40u);
  EXPECT_EQ(r.size_slow(), 40u);
  EXPECT_EQ(b.size_slow(), 40u);
  EXPECT_TRUE(s.invariants_hold_slow());
  EXPECT_TRUE(r.invariants_hold_slow());
  EXPECT_TRUE(b.invariants_hold_slow());
}

// Parameterized conservation sweep: tokens distributed across a ring of
// heterogeneous structures; random transactional moves along the ring;
// total token count invariant.
class CompositionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompositionSweep, TokenRingConservation) {
  const int threads = std::get<0>(GetParam());
  const int moves = std::get<1>(GetParam());
  TxManager mgr;
  Hash h(&mgr, 64);
  Skip s(&mgr);
  Bst b(&mgr);
  constexpr std::uint64_t kTokens = 30;
  for (std::uint64_t k = 1; k <= kTokens; k++) h.insert(k, k);

  auto contains_in = [&](std::uint64_t k) {
    return (h.contains(k) ? 1 : 0) + (s.contains(k) ? 1 : 0) +
           (b.contains(k) ? 1 : 0);
  };

  medley::test::run_threads(threads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 37 + 3);
    for (int i = 0; i < moves; i++) {
      auto k = rng.next_bounded(kTokens) + 1;
      try {
        mgr.txBegin();
        // Move token k one step along the ring h -> s -> b -> h.
        if (auto v = h.remove(k)) {
          s.insert(k, *v);
        } else if (auto w = s.remove(k)) {
          b.insert(k, *w);
        } else if (auto u = b.remove(k)) {
          h.insert(k, *u);
        }
        mgr.txEnd();
      } catch (const TransactionAborted&) {
      }
    }
  });

  for (std::uint64_t k = 1; k <= kTokens; k++) {
    EXPECT_EQ(contains_in(k), 1) << "token " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompositionSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(100, 400)));

// ---------------------------------------------------------------------
// Harness-driven oracle checks at *transaction* granularity: each step of
// the deterministic schedule is one whole transaction over a queue + two
// maps, mirrored into the sequential oracles only when it commits. Because
// ScheduleDriver serializes steps, the committed-transaction order is a
// legal serialization and the final structure states must match the
// oracles exactly.

namespace h = medley::test::harness;

TEST(CompositionOracle, CommittedTransactionsReplayAgainstOracles) {
  TxManager mgr;
  Queue q(&mgr);
  Hash ht(&mgr, 32);
  Skip sl(&mgr);
  h::MapOracle ht_oracle, sl_oracle;
  h::QueueOracle q_oracle;

  auto mirror_map = [](h::MapOracle& o, h::OpKind kind, std::uint64_t k,
                       std::uint64_t v) {
    o.apply(h::OpRecord{0, kind, k, v, false, 0, 0, 0});
  };

  h::ScheduleDriver d;
  for (int t = 0; t < 4; t++) {
    std::vector<h::ScheduleDriver::Step> steps;
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 55);
    for (int i = 0; i < 40; i++) {
      const auto k = rng.next_bounded(16);
      const auto v = (static_cast<std::uint64_t>(t) << 32) |
                     static_cast<std::uint64_t>(i);
      const auto choice = rng.next_bounded(4);
      steps.push_back([&, k, v, choice] {
        try {
          mgr.txBegin();
          switch (choice) {
            case 0:  // enqueue + tag both maps
              q.enqueue(v);
              ht.put(k, v);
              sl.insert(k, v);
              break;
            case 1: {  // move head of queue into the hash table
              auto head = q.dequeue();
              if (!head) mgr.txAbort();
              ht.put(*head % 16, *head);
              break;
            }
            case 2:  // cross-structure swap: remove from skiplist into ht
              if (auto sv = sl.remove(k)) ht.put(k, *sv + 1);
              break;
            default:  // read-mostly tx with a deliberate user abort
              ht.get(k);
              sl.get(k);
              mgr.txAbort();
          }
          mgr.txEnd();
          // Committed: replay identical effects into the oracles.
          switch (choice) {
            case 0:
              q_oracle.apply(h::OpRecord{0, h::OpKind::Enqueue, v, 0, false,
                                         0, 0, 0});
              mirror_map(ht_oracle, h::OpKind::Put, k, v);
              mirror_map(sl_oracle, h::OpKind::Insert, k, v);
              break;
            case 1: {
              auto head = q_oracle.apply(
                  h::OpRecord{0, h::OpKind::Dequeue, 0, 0, false, 0, 0, 0});
              ASSERT_TRUE(head.ok);  // structure committed, so oracle must pop
              mirror_map(ht_oracle, h::OpKind::Put, head.out % 16, head.out);
              break;
            }
            case 2: {
              auto rem = sl_oracle.apply(
                  h::OpRecord{0, h::OpKind::Remove, k, 0, false, 0, 0, 0});
              if (rem.ok) mirror_map(ht_oracle, h::OpKind::Put, k, rem.out + 1);
              break;
            }
            default:
              break;
          }
        } catch (const TransactionAborted&) {
          // Aborted: no effects, oracles untouched.
        }
      });
    }
    d.add_thread(std::move(steps));
  }
  d.run(d.shuffled(606));

  // Final states must coincide exactly with the sequential specs.
  std::map<std::uint64_t, std::uint64_t> ht_state, sl_state;
  for (auto k : ht.keys_slow()) ht_state[k] = *ht.get(k);
  for (auto k : sl.keys_slow()) sl_state[k] = *sl.get(k);
  EXPECT_EQ(ht_state, ht_oracle.state());
  EXPECT_EQ(sl_state, sl_oracle.state());
  std::deque<std::uint64_t> q_state;
  while (auto v = q.dequeue()) q_state.push_back(*v);
  EXPECT_EQ(q_state, q_oracle.state());
}

TEST(CompositionOracle, ConcurrentTransfersKeepHistoriesSound) {
  // Free-running transactional churn between a hash table and a skiplist,
  // recorded at operation granularity *outside* transactions (each step is
  // its own implicit transaction), checked with the concurrent invariants.
  TxManager mgr;
  Hash ht(&mgr, 64);
  h::Recorder rec;
  h::RecordedMap<Hash> rm(&ht, &rec);
  std::map<std::uint64_t, std::uint64_t> initial;
  for (std::uint64_t k = 0; k < 12; k++) {
    ht.insert(k, k);
    initial[k] = k;
  }
  h::run_seeded(5, 77, [&](int t, medley::util::Xoshiro256& rng) {
    for (int i = 0; i < 900; i++) {
      const auto k = rng.next_bounded(20);
      const auto v = (static_cast<std::uint64_t>(t) << 32) |
                     static_cast<std::uint64_t>(i);
      switch (rng.next_bounded(4)) {
        case 0: rm.insert(t, k, v); break;
        case 1: rm.remove(t, k); break;
        case 2: rm.put(t, k, v); break;
        default: rm.get(t, k); break;
      }
    }
  });
  EXPECT_TRUE(
      h::check_set_history(rec.history(), initial, h::observed_state(ht)));
}

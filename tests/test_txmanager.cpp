// TxManager lifecycle: begin/end/abort state machine, cleanup deferral,
// speculative allocation bookkeeping, opacity validation, statistics.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/medley.hpp"
#include "smr/ebr.hpp"
#include "test_support.hpp"

using medley::AbortReason;
using medley::CASObj;
using medley::TransactionAborted;
using medley::TxManager;
using medley::test::Harness;
using U64Obj = CASObj<std::uint64_t>;

TEST(TxManager, EmptyTransactionCommits) {
  TxManager mgr;
  mgr.txBegin();
  mgr.txEnd();
  EXPECT_EQ(mgr.stats().commits, 1u);
  EXPECT_EQ(mgr.stats().aborts, 0u);
}

TEST(TxManager, NestingThrowsLogicError) {
  TxManager mgr;
  mgr.txBegin();
  EXPECT_THROW(mgr.txBegin(), std::logic_error);
  mgr.txEnd();
}

TEST(TxManager, EndOutsideTxThrowsLogicError) {
  TxManager mgr;
  EXPECT_THROW(mgr.txEnd(), std::logic_error);
}

TEST(TxManager, AbortOutsideTxThrowsLogicError) {
  TxManager mgr;
  EXPECT_THROW(mgr.txAbort(), std::logic_error);
}

TEST(TxManager, InTxReflectsState) {
  TxManager mgr;
  EXPECT_FALSE(mgr.in_tx());
  mgr.txBegin();
  EXPECT_TRUE(mgr.in_tx());
  mgr.txEnd();
  EXPECT_FALSE(mgr.in_tx());
}

TEST(TxManager, InTxFalseAfterAbort) {
  TxManager mgr;
  try {
    mgr.txBegin();
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(mgr.in_tx());
}

TEST(TxManager, TwoManagersIndependentState) {
  TxManager m1, m2;
  m1.txBegin();
  EXPECT_TRUE(m1.in_tx());
  EXPECT_FALSE(m2.in_tx());
  m1.txEnd();
}

TEST(TxManager, CleanupsDeferredToCommitInOrder) {
  TxManager mgr;
  Harness h(&mgr);
  std::vector<int> order;
  mgr.txBegin();
  h.addToCleanups([&] { order.push_back(1); });
  h.addToCleanups([&] { order.push_back(2); });
  EXPECT_TRUE(order.empty());  // not yet
  mgr.txEnd();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(TxManager, CleanupsDiscardedOnAbort) {
  TxManager mgr;
  Harness h(&mgr);
  bool ran = false;
  try {
    mgr.txBegin();
    h.addToCleanups([&] { ran = true; });
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(ran);
}

TEST(TxManager, CleanupOutsideTxRunsImmediately) {
  TxManager mgr;
  Harness h(&mgr);
  bool ran = false;
  h.addToCleanups([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(TxManager, CleanupsRunOutsideTransactionContext) {
  // Cleanup code must execute as plain code: active_ctx() == nullptr.
  TxManager mgr;
  Harness h(&mgr);
  bool was_plain = false;
  mgr.txBegin();
  h.addToCleanups(
      [&] { was_plain = (TxManager::active_ctx() == nullptr); });
  mgr.txEnd();
  EXPECT_TRUE(was_plain);
}

namespace {
std::atomic<int> g_live{0};
struct Counted {
  Counted() { g_live.fetch_add(1); }
  ~Counted() { g_live.fetch_sub(1); }
};
}  // namespace

TEST(TxManager, TNewReclaimedOnAbort) {
  TxManager mgr;
  Harness h(&mgr);
  medley::smr::EBR::instance().drain();
  int before = g_live.load();
  try {
    mgr.txBegin();
    h.tNew<Counted>();
    h.tNew<Counted>();
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  medley::smr::EBR::instance().drain();  // abort path retires via EBR
  EXPECT_EQ(g_live.load(), before);
}

TEST(TxManager, TNewSurvivesCommit) {
  TxManager mgr;
  Harness h(&mgr);
  int before = g_live.load();
  Counted* p = nullptr;
  mgr.txBegin();
  p = h.tNew<Counted>();
  mgr.txEnd();
  medley::smr::EBR::instance().drain();
  EXPECT_EQ(g_live.load(), before + 1);  // ownership passed to caller
  delete p;
}

TEST(TxManager, TDeleteInsideTxReclaims) {
  TxManager mgr;
  Harness h(&mgr);
  medley::smr::EBR::instance().drain();
  int before = g_live.load();
  mgr.txBegin();
  auto* p = h.tNew<Counted>();
  h.tDelete(p);
  mgr.txEnd();
  medley::smr::EBR::instance().drain();
  EXPECT_EQ(g_live.load(), before);
}

TEST(TxManager, TRetireDeferredToCommit) {
  TxManager mgr;
  Harness h(&mgr);
  medley::smr::EBR::instance().drain();
  int before = g_live.load();
  auto* p = new Counted;  // pre-existing node being unlinked by the tx
  mgr.txBegin();
  h.tRetire(p);
  EXPECT_EQ(g_live.load(), before + 1);  // still alive inside the tx
  mgr.txEnd();
  medley::smr::EBR::instance().drain();
  EXPECT_EQ(g_live.load(), before);
}

TEST(TxManager, TRetireDiscardedOnAbort) {
  TxManager mgr;
  Harness h(&mgr);
  medley::smr::EBR::instance().drain();
  auto* p = new Counted;
  int with_p = g_live.load();
  try {
    mgr.txBegin();
    h.tRetire(p);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  medley::smr::EBR::instance().drain();
  EXPECT_EQ(g_live.load(), with_p);  // abort => the unlink never happened
  delete p;
}

TEST(TxManager, ValidateReadsThrowsOnStaleRead) {
  TxManager mgr;
  Harness h(&mgr);
  U64Obj a(7);
  bool threw = false;
  try {
    mgr.txBegin();
    auto v = a.nbtcLoad();
    h.addToReadSet(&a, v);
    std::thread([&] { ASSERT_TRUE(a.CAS(7, 8)); }).join();
    mgr.validateReads();  // opacity: abort now, not at commit
  } catch (const TransactionAborted& e) {
    threw = true;
    EXPECT_EQ(e.reason(), AbortReason::Validation);
  }
  EXPECT_TRUE(threw);
}

TEST(TxManager, ValidateReadsPassesWhenFresh) {
  TxManager mgr;
  Harness h(&mgr);
  U64Obj a(7);
  mgr.txBegin();
  auto v = a.nbtcLoad();
  h.addToReadSet(&a, v);
  mgr.validateReads();  // must not throw
  mgr.txEnd();
  EXPECT_EQ(mgr.stats().commits, 1u);
}

TEST(TxManager, RunTxRetriesUntilCommit) {
  TxManager mgr;
  U64Obj a(0);
  std::atomic<int> attempts{0};
  // Interfering thread keeps flipping `a` for a while.
  std::atomic<bool> stop{false};
  std::thread noise([&] {
    while (!stop.load()) {
      auto v = a.load();
      a.CAS(v, v);  // counter churn: forces occasional validation failures
    }
  });
  auto aborts = medley::execute_tx(mgr, [&] {
    attempts.fetch_add(1);
    auto v = a.nbtcLoad();
    if (!a.nbtcCAS(v, v + 1, true, true)) mgr.txAbort();
  }).stats;
  stop = true;
  noise.join();
  EXPECT_EQ(a.load(), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(attempts.load()), aborts.aborts() + 1);
  EXPECT_EQ(aborts.commits, 1u);
  EXPECT_EQ(aborts.retries, aborts.aborts());
}

TEST(TxManager, BeginHookRunsInsideTx) {
  TxManager mgr;
  bool hook_in_tx = false;
  mgr.set_begin_hook([&] { hook_in_tx = (TxManager::active_ctx() != nullptr); });
  mgr.txBegin();
  mgr.txEnd();
  EXPECT_TRUE(hook_in_tx);
}

TEST(TxManager, StatsAggregateAcrossThreads) {
  TxManager mgr;
  medley::test::run_threads(4, [&](int) {
    for (int i = 0; i < 10; i++) {
      mgr.txBegin();
      mgr.txEnd();
    }
  });
  EXPECT_EQ(mgr.stats().commits, 40u);
  mgr.reset_stats();
  EXPECT_EQ(mgr.stats().commits, 0u);
}

TEST(TxManager, AbortReasonTaxonomyReported) {
  TxManager mgr;
  try {
    mgr.txBegin();
    mgr.txAbort();
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::User);
    EXPECT_NE(std::string(e.what()).find("user"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// Abort paths: explicit user aborts, conflict-induced aborts pinned down
// with the deterministic schedule driver, and run_tx retry accounting.

namespace h = medley::test::harness;

TEST(TxAbortPaths, ExplicitAbortRollsBackAndCounts) {
  TxManager mgr;
  mgr.reset_stats();
  U64Obj a(5);
  try {
    mgr.txBegin();
    auto v = a.nbtcLoad();
    EXPECT_TRUE(a.nbtcCAS(v, v + 100, true, true));
    mgr.txAbort();
    FAIL() << "txAbort must throw";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::User);
  }
  EXPECT_EQ(a.load(), 5u);  // speculative write rolled back
  auto st = mgr.stats();
  EXPECT_EQ(st.aborts, 1u);
  EXPECT_EQ(st.user_aborts, 1u);
  EXPECT_EQ(st.commits, 0u);
}

TEST(TxAbortPaths, DeterministicValidationAbort) {
  // t0 reads inside a transaction; t1 overwrites the cell and commits
  // before t0 reaches txEnd. The exact interleaving is pinned by the
  // schedule driver, so the abort is guaranteed, not probabilistic.
  TxManager mgr;
  Harness hx(&mgr);
  mgr.reset_stats();
  U64Obj a(1);
  std::optional<AbortReason> reason;

  h::ScheduleDriver d;
  d.add_thread({
      [&] {
        mgr.txBegin();
        auto v = a.nbtcLoad();
        EXPECT_EQ(v, 1u);
        hx.addToReadSet(&a, v);  // the linearizing read of a lookup
      },
      [&] {
        try {
          mgr.txEnd();
        } catch (const TransactionAborted& e) {
          reason = e.reason();
        }
      },
  });
  d.add_thread({
      [&] { EXPECT_TRUE(a.CAS(1, 2)); },  // non-transactional interference
  });
  d.run({0, 1, 0});

  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, AbortReason::Validation);
  EXPECT_EQ(a.load(), 2u);  // the interferer's value survived
  auto st = mgr.stats();
  EXPECT_EQ(st.validation_aborts, 1u);
  EXPECT_EQ(st.commits, 0u);
}

TEST(TxAbortPaths, DeterministicConflictAbortViaHelper) {
  // t0 installs its descriptor on `a` (speculative CAS), then t1 touches
  // the same cell from outside any transaction. The helper path must
  // finalize t0's InPrep descriptor as Aborted; t0 then discovers the
  // forced abort at commit.
  TxManager mgr;
  mgr.reset_stats();
  U64Obj a(10);
  std::optional<AbortReason> reason;
  std::uint64_t t1_observed = 0;

  h::ScheduleDriver d;
  d.add_thread({
      [&] {
        mgr.txBegin();
        auto v = a.nbtcLoad();
        EXPECT_TRUE(a.nbtcCAS(v, v + 1, true, true));  // descriptor installed
      },
      [&] {
        try {
          mgr.txEnd();
        } catch (const TransactionAborted& e) {
          reason = e.reason();
        }
      },
  });
  d.add_thread({
      [&] { t1_observed = a.load(); },  // helps: finalizes t0's descriptor
  });
  d.run({0, 1, 0});

  // The helper aborted the InPrep transaction, so t1 read the old value.
  EXPECT_EQ(t1_observed, 10u);
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, AbortReason::Conflict);
  EXPECT_EQ(a.load(), 10u);
  EXPECT_EQ(mgr.stats().conflict_aborts, 1u);
}

TEST(TxAbortPaths, RunTxUserAbortNotRetriedByDefault) {
  TxManager mgr;
  mgr.reset_stats();
  int attempts = 0;
  auto aborts = medley::execute_tx(mgr, [&] {
    attempts++;
    mgr.txAbort();
  }).stats;
  EXPECT_EQ(attempts, 1);  // user abort: give up, don't retry
  EXPECT_EQ(aborts.user_aborts, 1u);
  EXPECT_EQ(aborts.retries, 0u);
  EXPECT_EQ(aborts.commits, 0u);
  EXPECT_EQ(mgr.stats().user_aborts, 1u);
}

TEST(TxAbortPaths, RunTxRetriesUserAbortWhenAsked) {
  TxManager mgr;
  mgr.reset_stats();
  int attempts = 0;
  medley::TxPolicy retry_user;
  retry_user.retry_user = true;
  auto aborts = medley::execute_tx(
                    mgr,
                    [&] {
                      attempts++;
                      if (attempts < 4) mgr.txAbort();  // bail 3x, then commit
                    },
                    retry_user)
                    .stats;
  EXPECT_EQ(attempts, 4);
  EXPECT_EQ(aborts.user_aborts, 3u);
  EXPECT_EQ(aborts.retries, 3u);
  EXPECT_EQ(aborts.commits, 1u);
  auto st = mgr.stats();
  EXPECT_EQ(st.user_aborts, 3u);
  EXPECT_EQ(st.commits, 1u);
}

TEST(TxAbortPaths, RunTxCountsConflictRetries) {
  // Deterministically force exactly one validation abort, then commit:
  // run_tx must report exactly one retry.
  TxManager mgr;
  Harness hx(&mgr);
  mgr.reset_stats();
  U64Obj a(0);
  int attempts = 0;

  h::ScheduleDriver d;
  d.add_thread({
      [&] {
        // Attempt 1 spans two steps via a manual begin/read...
        mgr.txBegin();
        attempts++;
        hx.addToReadSet(&a, a.nbtcLoad());
      },
      [&] {
        // ...its txEnd fails (t1 interfered), then run_tx-style retry
        // commits cleanly in the same step.
        bool first_failed = false;
        try {
          mgr.txEnd();
        } catch (const TransactionAborted&) {
          first_failed = true;
        }
        EXPECT_TRUE(first_failed);
        auto aborts = medley::execute_tx(mgr, [&] {
          attempts++;
          auto v = a.nbtcLoad();
          EXPECT_TRUE(a.nbtcCAS(v, v + 1, true, true));
        }).stats;
        EXPECT_EQ(aborts.aborts(), 0u);
        EXPECT_EQ(aborts.commits, 1u);
      },
  });
  d.add_thread({
      [&] { EXPECT_TRUE(a.CAS(0, 7)); },
  });
  d.run({0, 1, 0});

  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(a.load(), 8u);
  auto st = mgr.stats();
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.validation_aborts, 1u);
}

TEST(TxAbortPaths, AbortedTransactionLeavesThreadReusable) {
  // After every flavour of abort the thread must be able to run a fresh
  // committing transaction.
  TxManager mgr;
  U64Obj a(0);
  for (int round = 0; round < 3; round++) {
    try {
      mgr.txBegin();
      auto v = a.nbtcLoad();
      a.nbtcCAS(v, v + 1, true, true);
      mgr.txAbort();
    } catch (const TransactionAborted&) {
    }
    EXPECT_FALSE(mgr.in_tx());
    medley::execute_tx(mgr, [&] {
      auto v = a.nbtcLoad();
      EXPECT_TRUE(a.nbtcCAS(v, v + 10, true, true));
    });
  }
  EXPECT_EQ(a.load(), 30u);
}

TEST(TxAbortPaths, CapacityAbortIsRetriedByRunTx) {
  // txAbortCapacity models transient resource exhaustion (e.g. Montage
  // region full until the next epoch advance); run_tx must retry it even
  // with default settings, unlike a user abort.
  TxManager mgr;
  mgr.reset_stats();
  int attempts = 0;
  auto aborts = medley::execute_tx(mgr, [&] {
    if (++attempts < 3) mgr.txAbortCapacity();
  }).stats;
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(aborts.capacity_aborts, 2u);
  EXPECT_EQ(aborts.retries, 2u);
  auto st = mgr.stats();
  EXPECT_EQ(st.capacity_aborts, 2u);
  EXPECT_EQ(st.commits, 1u);
  EXPECT_THROW(mgr.txAbortCapacity(), std::logic_error);  // outside any tx
}

// ---------------------------------------------------------------------
// TxDomain: managers sharing a domain compose into one transaction; a
// manager from a foreign domain refuses to.

TEST(TxDomain, SharedDomainManagersComposeIntoOneTransaction) {
  auto domain = std::make_shared<medley::TxDomain>();
  TxManager mgr_a(domain), mgr_b(domain);
  U64Obj xa{1}, xb{2};
  Harness ha(&mgr_a), hb(&mgr_b);

  // One transaction rooted at A writes cells of structures under BOTH
  // managers; the commit is one status-word CAS, so either both values
  // land or neither.
  mgr_a.txBegin();
  {
    medley::OpStarter op_a(&mgr_a);
    medley::core::TxDomain::active_ctx()->spec_interval = true;
    EXPECT_TRUE(xa.nbtcCAS(1, 10, false, false));
  }
  {
    medley::OpStarter op_b(&mgr_b);  // joins B into A's transaction
    medley::core::TxDomain::active_ctx()->spec_interval = true;
    EXPECT_TRUE(xb.nbtcCAS(2, 20, false, false));
  }
  // Mid-flight, neither speculative value is observable by plain loads
  // from this thread's perspective pre-commit... they are our own writes,
  // so verify via the descriptor instead: both writes, ONE write set.
  EXPECT_EQ(mgr_a.my_desc()->write_count(), 2);
  EXPECT_EQ(mgr_a.my_desc(), mgr_b.my_desc()) << "one thread, one desc";
  mgr_a.txEnd();

  EXPECT_EQ(xa.load(), 10u);
  EXPECT_EQ(xb.load(), 20u);
  // Billing: the transaction is rooted at A; B saw traffic but no bill.
  EXPECT_EQ(mgr_a.stats().commits, 1u);
  EXPECT_EQ(mgr_b.stats().commits, 0u);
}

TEST(TxDomain, SharedDomainAbortRollsBackAcrossManagers) {
  auto domain = std::make_shared<medley::TxDomain>();
  TxManager mgr_a(domain), mgr_b(domain);
  U64Obj xa{1}, xb{2};

  try {
    mgr_a.txBegin();
    {
      medley::OpStarter op(&mgr_a);
      medley::core::TxDomain::active_ctx()->spec_interval = true;
      EXPECT_TRUE(xa.nbtcCAS(1, 10, false, false));
    }
    {
      medley::OpStarter op(&mgr_b);
      medley::core::TxDomain::active_ctx()->spec_interval = true;
      EXPECT_TRUE(xb.nbtcCAS(2, 20, false, false));
    }
    mgr_a.txAbort();
    FAIL() << "txAbort must throw";
  } catch (const TransactionAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::User);
  }
  EXPECT_EQ(xa.load(), 1u) << "manager-A write survived the abort";
  EXPECT_EQ(xb.load(), 2u) << "manager-B write survived the abort";
  EXPECT_EQ(mgr_a.stats().user_aborts, 1u);
  EXPECT_EQ(mgr_b.stats().aborts, 0u);
}

TEST(TxDomain, ForeignDomainManagerThrowsInsteadOfSilentlyMixing) {
  TxManager mgr_a;  // private domain
  TxManager mgr_b;  // different private domain
  mgr_a.txBegin();
  EXPECT_THROW({ medley::OpStarter op(&mgr_b); }, std::logic_error);
  mgr_a.txEnd();
}

TEST(TxDomain, JoinedManagerHooksFireOncePerTransaction) {
  auto domain = std::make_shared<medley::TxDomain>();
  TxManager mgr_a(domain), mgr_b(domain);
  int b_begins = 0, b_commits = 0, b_aborts = 0;
  mgr_b.set_begin_hook([&] { b_begins++; });
  mgr_b.set_end_hook([&](bool committed) {
    (committed ? b_commits : b_aborts)++;
  });

  // B untouched: its hooks stay silent.
  mgr_a.txBegin();
  mgr_a.txEnd();
  EXPECT_EQ(b_begins, 0);
  EXPECT_EQ(b_commits, 0);

  // B touched twice in one transaction: begin hook fires once (at join),
  // end hook once (at commit).
  mgr_a.txBegin();
  { medley::OpStarter op(&mgr_b); }
  { medley::OpStarter op(&mgr_b); }
  mgr_a.txEnd();
  EXPECT_EQ(b_begins, 1);
  EXPECT_EQ(b_commits, 1);
  EXPECT_EQ(b_aborts, 0);

  // And the abort path reports the outcome to every joined manager.
  try {
    mgr_a.txBegin();
    { medley::OpStarter op(&mgr_b); }
    mgr_a.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_EQ(b_begins, 2);
  EXPECT_EQ(b_aborts, 1);
}

TEST(TxDomain, DedupReadRegistrationSkipsTrackedCells) {
  // The mechanism behind FraserSkiplist's restarted-scan footprint bound:
  // seedReadSetDedup folds every already-tracked cell into the dedup set,
  // after which addToReadSetDedup registers only NEW cells. Scope is one
  // transaction (the set is generation-cleared at txBegin, O(1)).
  TxManager mgr;
  Harness h(&mgr);
  U64Obj x{5}, y{6};

  mgr.txBegin();
  h.addToReadSet(&x, x.nbtcLoad());
  h.addToReadSet(&x, x.nbtcLoad());  // plain interface never dedups
  EXPECT_EQ(mgr.my_desc()->read_count(), 2);

  h.seedReadSetDedup();  // engage: x is now tracked
  h.addToReadSetDedup(&x, x.nbtcLoad());
  EXPECT_EQ(mgr.my_desc()->read_count(), 2) << "tracked cell re-registered";
  h.addToReadSetDedup(&y, y.nbtcLoad());  // new cell: registered + tracked
  EXPECT_EQ(mgr.my_desc()->read_count(), 3);
  h.addToReadSetDedup(&y, y.nbtcLoad());
  EXPECT_EQ(mgr.my_desc()->read_count(), 3);
  mgr.txEnd();

  // Fresh transaction: the dedup set is reset and registration is fresh.
  mgr.txBegin();
  h.addToReadSetDedup(&x, x.nbtcLoad());
  EXPECT_EQ(mgr.my_desc()->read_count(), 1);
  mgr.txEnd();
}

// CASObj<T>: encoding, plain descriptor-aware accessors, counter discipline,
// and non-transactional behaviour of the nbtc* instrumented methods.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/medley.hpp"
#include "test_support.hpp"

using medley::CASObj;
using medley::TxManager;

TEST(CasObjEncoding, PointerRoundTrip) {
  int x = 7;
  auto raw = CASObj<int*>::encode(&x);
  EXPECT_EQ(CASObj<int*>::decode(raw), &x);
  EXPECT_EQ(CASObj<int*>::decode(CASObj<int*>::encode(nullptr)), nullptr);
}

TEST(CasObjEncoding, IntegralRoundTrip) {
  EXPECT_EQ(CASObj<std::uint64_t>::decode(
                CASObj<std::uint64_t>::encode(0xabcdef0123456789ULL)),
            0xabcdef0123456789ULL);
  EXPECT_EQ(CASObj<std::int64_t>::decode(CASObj<std::int64_t>::encode(-5)),
            -5);
  EXPECT_EQ(CASObj<std::uint32_t>::decode(CASObj<std::uint32_t>::encode(42u)),
            42u);
}

TEST(CasObj, InitialValueAndCounterZero) {
  CASObj<std::uint64_t> o(123);
  EXPECT_EQ(o.load(), 123u);
  auto r = o.raw();
  EXPECT_EQ(r.hi, 0u);  // even counter: real value
}

TEST(CasObj, StoreBumpsCounterByTwo) {
  CASObj<std::uint64_t> o(1);
  o.store(2);
  o.store(3);
  auto r = o.raw();
  EXPECT_EQ(o.load(), 3u);
  EXPECT_EQ(r.hi, 4u);
  EXPECT_EQ(r.hi % 2, 0u);
}

TEST(CasObj, PlainCasSemantics) {
  CASObj<std::uint64_t> o(10);
  EXPECT_FALSE(o.CAS(11, 20));  // wrong expected
  EXPECT_EQ(o.load(), 10u);
  EXPECT_TRUE(o.CAS(10, 20));
  EXPECT_EQ(o.load(), 20u);
  auto r = o.raw();
  EXPECT_EQ(r.hi, 2u);
}

TEST(CasObj, NbtcOpsOutsideTxBehavePlain) {
  TxManager mgr;
  CASObj<std::uint64_t> o(5);
  EXPECT_EQ(o.nbtcLoad(), 5u);                    // no ctx: plain load
  EXPECT_TRUE(o.nbtcCAS(5, 6, true, true));       // no ctx: plain CAS
  EXPECT_FALSE(o.nbtcCAS(5, 7, true, true));
  EXPECT_EQ(o.load(), 6u);
  auto r = o.raw();
  EXPECT_EQ(r.hi % 2, 0u);  // never left a descriptor behind
}

TEST(CasObj, CounterMonotoneUnderContention) {
  CASObj<std::uint64_t> o(0);
  medley::test::run_threads(4, [&](int) {
    for (int i = 0; i < 5000; i++) {
      auto v = o.load();
      o.CAS(v, v + 1);
    }
  });
  auto r = o.raw();
  EXPECT_EQ(r.hi % 2, 0u);           // counter parity preserved
  EXPECT_EQ(r.hi / 2, o.load());     // exactly one bump per successful CAS
  EXPECT_GT(o.load(), 0u);
}

TEST(CasObj, CasRetriesThroughCounterOnlyChange) {
  // Two threads CAS between the same two values; a failed 128-bit CAS due
  // to a counter bump with an unchanged value must be retried internally,
  // so the only way plain CAS returns false is a genuine value mismatch.
  CASObj<std::uint64_t> o(0);
  std::atomic<int> false_fails{0};
  medley::test::run_threads(2, [&](int t) {
    for (int i = 0; i < 10000; i++) {
      if (t == 0) {
        o.CAS(0, 1);
        o.CAS(1, 0);
      } else {
        // value is always 0 or 1
        auto v = o.load();
        if (!o.CAS(v, v) && o.load() == v) false_fails.fetch_add(1);
      }
    }
  });
  // o.CAS(v,v) failing while value still v would mean a spurious failure
  // leaked through (racy re-check, so tolerate the odd blip).
  EXPECT_LE(false_fails.load(), 1);
}

TEST(CasObj, RawExposesValueCounterPair) {
  CASObj<std::uint64_t> o(9);
  auto r = o.raw();
  EXPECT_EQ(r.lo, 9u);
  o.store(10);
  auto r2 = o.raw();
  EXPECT_EQ(r2.lo, 10u);
  EXPECT_GT(r2.hi, r.hi);
}

// Observability layer (src/obs/): histogram bucket geometry and quantiles
// against a sorted-vector oracle, trace-ring wraparound and multi-thread
// dump consistency, metrics-registry label aggregation, the pinned
// conflict-abort-retry-commit trace sequence, per-thread slot lifecycle
// under thread churn, and the store-level end-to-end dump (which doubles
// as the CI exposition producer via MEDLEY_METRICS_OUT).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/medley.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::AbortReason;
using medley::CASObj;
using medley::TransactionAborted;
using medley::TxExecutor;
using medley::TxManager;
using medley::TxPolicy;
namespace obs = medley::obs;
namespace ms = medley::store;
namespace mu = medley::util;
using medley::test::run_threads;
using U64Obj = CASObj<std::uint64_t>;

namespace h = medley::test::harness;

using B = obs::HistogramBuckets;

// ---------------------------------------------------------------------
// Histogram: bucket geometry.

TEST(Histogram, BucketGeometryInvariants) {
  // Exact below kSubCount: one bucket per value.
  for (std::uint64_t v = 0; v < B::kSubCount; v++) {
    const int b = B::bucket_of(v);
    EXPECT_EQ(B::lower_bound(b), v);
    EXPECT_EQ(B::upper_bound(b), v);
  }
  // Every value lies inside its bucket, buckets are monotone in value,
  // and the relative width never exceeds 1/kSubCount (6.25%).
  std::uint64_t probes[] = {16,      17,      255,        256,
                            999,     4096,    123456789,  1u << 31,
                            ~0ull / 3, ~0ull - 1, ~0ull};
  int prev = -1;
  for (std::uint64_t v : probes) {
    const int b = B::bucket_of(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, B::kBucketCount);
    EXPECT_LE(B::lower_bound(b), v);
    EXPECT_GE(B::upper_bound(b), v);
    EXPECT_GE(b, prev);
    prev = b;
    if (v >= B::kSubCount && b + 1 < B::kBucketCount) {
      const double width =
          static_cast<double>(B::upper_bound(b) - B::lower_bound(b) + 1);
      EXPECT_LE(width / static_cast<double>(B::lower_bound(b)),
                1.0 / B::kSubCount + 1e-9)
          << "bucket " << b << " too wide for v=" << v;
    }
  }
  // Bucket edges tile the axis: upper(b) + 1 == lower(b+1).
  for (int b = 0; b + 1 < B::kBucketCount; b++) {
    ASSERT_EQ(B::upper_bound(b) + 1, B::lower_bound(b + 1)) << "bucket " << b;
  }
}

// ---------------------------------------------------------------------
// Histogram: quantiles against a sorted-vector oracle.

TEST(Histogram, QuantilesMatchSortedOracle) {
  obs::Histogram hist;
  std::vector<std::uint64_t> vals;
  mu::Xoshiro256 rng(42);
  for (int i = 0; i < 10'000; i++) {
    // Log-uniform-ish spread: exercise many octaves, not one decade.
    const std::uint64_t v = rng.next() >> (rng.next_bounded(50));
    vals.push_back(v);
    hist.record(v);
  }
  std::sort(vals.begin(), vals.end());
  const auto s = hist.snapshot();
  ASSERT_EQ(s.count, vals.size());
  EXPECT_EQ(s.min, vals.front());
  EXPECT_EQ(s.max, vals.back());

  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::uint64_t rank =
        q <= 0.0 ? 1
                 : static_cast<std::uint64_t>(
                       q * static_cast<double>(vals.size()) + 0.9999999999);
    rank = std::min<std::uint64_t>(std::max<std::uint64_t>(rank, 1),
                                   vals.size());
    const std::uint64_t oracle = vals[rank - 1];
    // The rank-th smallest value determines the answering bucket exactly,
    // so the histogram's answer is that bucket's upper bound clamped to
    // the observed max — never below the oracle, never beyond its bucket.
    const std::uint64_t expected =
        q <= 0.0 ? s.min
                 : std::min(B::upper_bound(B::bucket_of(oracle)), s.max);
    EXPECT_EQ(hist.snapshot().quantile(q), expected) << "q=" << q;
    EXPECT_GE(expected, oracle);
  }
}

TEST(Histogram, ExactBelowSixteen) {
  obs::Histogram hist;
  for (std::uint64_t v = 0; v < 16; v++) {
    for (std::uint64_t i = 0; i <= v; i++) hist.record(v);  // v+1 copies
  }
  const auto s = hist.snapshot();
  ASSERT_EQ(s.count, 16u * 17u / 2u);
  // Counts 1,2,...,16 for values 0..15: rank 68 falls in value 11's bucket
  // (cumulative 66 through value 10, 78 through 11) — and below 16 the
  // bucket IS the value.
  EXPECT_EQ(s.quantile(0.5), 11u);
  EXPECT_EQ(s.quantile(0.0), 0u);
  EXPECT_EQ(s.quantile(1.0), 15u);
}

TEST(Histogram, MergesThreadSlotsExactly) {
  obs::Histogram hist;
  constexpr int kThreads = 4, kPer = 1000;
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPer; i++) {
      hist.record(static_cast<std::uint64_t>(t) * 10'000 + i);
    }
  });
  const auto s = hist.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPer));
  std::uint64_t sum = 0;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPer; i++) {
      sum += static_cast<std::uint64_t>(t) * 10'000 + i;
    }
  }
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 3u * 10'000 + kPer - 1);
  // Snapshots aggregate across histograms too (the sharded-store path).
  auto twice = s;
  twice += s;
  EXPECT_EQ(twice.count, 2 * s.count);
  EXPECT_EQ(twice.sum, 2 * s.sum);
  EXPECT_EQ(twice.max, s.max);
}

// ---------------------------------------------------------------------
// TraceRing: wraparound and multi-thread dumps.

TEST(TraceRing, WrapAroundKeepsNewestEvents) {
  obs::TraceRing ring(16);
  ASSERT_EQ(ring.capacity(), 16u);
  constexpr std::uint64_t kEmitted = 40;
  for (std::uint64_t i = 0; i < kEmitted; i++) {
    ring.emit(obs::TraceEvent::kAttempt, 0, static_cast<std::uint32_t>(i));
  }
  const int tid = mu::ThreadRegistry::tid();
  EXPECT_EQ(ring.written(tid), kEmitted);
  EXPECT_EQ(ring.dropped(tid), kEmitted - 16);
  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, kEmitted - 16 + i);
    EXPECT_EQ(events[i].aux, kEmitted - 16 + i);
    EXPECT_EQ(events[i].kind, obs::TraceEvent::kAttempt);
    EXPECT_EQ(events[i].tid, tid);
  }
  EXPECT_NE(ring.dump_text().find("attempt"), std::string::npos);
}

TEST(TraceRing, MultiThreadDumpIsCompleteAndOrdered) {
  obs::TraceRing ring(128);
  constexpr int kThreads = 4, kPer = 100;
  // Barrier AFTER acquiring the registry lease: if a thread could finish
  // before the next one started, the next would inherit its leased tid and
  // append to the same ring (the documented reuse contract) — here we want
  // four distinct concurrent rings.
  std::atomic<int> ready{0};
  run_threads(kThreads, [&](int) {
    medley::util::ThreadRegistry::tid();
    ready.fetch_add(1);
    while (ready.load() < kThreads) std::this_thread::yield();
    for (int i = 0; i < kPer; i++) {
      ring.emit(obs::TraceEvent::kCommit, 0, static_cast<std::uint32_t>(i));
    }
  });
  const auto events = ring.dump();  // writers joined: exact
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPer));
  // Per-thread sequences are contiguous 0..kPer-1; the merged dump is
  // sorted by timestamp.
  std::vector<std::vector<std::uint64_t>> per_tid;
  for (std::size_t i = 1; i < events.size(); i++) {
    EXPECT_GE(events[i].tsc, events[i - 1].tsc);
  }
  for (const auto& e : events) {
    ASSERT_GE(e.tid, 0);
    if (per_tid.size() <= static_cast<std::size_t>(e.tid)) {
      per_tid.resize(static_cast<std::size_t>(e.tid) + 1);
    }
    per_tid[static_cast<std::size_t>(e.tid)].push_back(e.seq);
  }
  int emitters = 0;
  for (auto& seqs : per_tid) {
    if (seqs.empty()) continue;
    emitters++;
    std::sort(seqs.begin(), seqs.end());
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kPer));
    for (int i = 0; i < kPer; i++) {
      EXPECT_EQ(seqs[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_EQ(emitters, kThreads);
}

// ---------------------------------------------------------------------
// MetricsRegistry: label aggregation, idempotence, exposition.

TEST(MetricsRegistry, LabelAggregationAndIdempotentRegistration) {
  obs::MetricsRegistry reg;
  auto& c1 = reg.counter("ops_total", "ops", {{"op", "get"}});
  auto& c2 = reg.counter("ops_total", "ops", {{"op", "get"}});
  EXPECT_EQ(&c1, &c2) << "same name+labels must be the same series";
  auto& c3 = reg.counter("ops_total", "ops", {{"op", "put"}});
  EXPECT_NE(&c1, &c3);
  // Label-order insensitivity: keys are canonicalized.
  auto& c4 = reg.counter("multi", "m", {{"a", "1"}, {"b", "2"}});
  auto& c5 = reg.counter("multi", "m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c4, &c5);
  // A name registered as one type cannot come back as another.
  EXPECT_THROW(reg.gauge("ops_total", "oops"), std::logic_error);
  EXPECT_THROW(reg.histogram("ops_total", "oops"), std::logic_error);

  c1.inc();
  c1.inc();
  c3.inc(5);
  EXPECT_EQ(c1.value(), 2u);
  EXPECT_EQ(c3.value(), 5u);

  auto& g = reg.gauge_fn("depth", "queue depth", {}, [] { return 7.5; });
  EXPECT_DOUBLE_EQ(g.value(), 7.5);

  auto& hist = reg.histogram("lat_ns", "latency", {{"op", "get"}});
  for (std::uint64_t i = 1; i <= 100; i++) hist.record(i);

  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("# TYPE ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("ops_total{op=\"get\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ops_total{op=\"put\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum{op=\"get\"} 5050"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count{op=\"get\"} 100"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);

  const std::string json = reg.json();
  EXPECT_NE(json.find("\"name\":\"ops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Pinned trace sequence: conflict -> abort -> retry -> commit.

namespace {

/// Attempt 0 runs managed and YOUNGER than the pinned transaction
/// (priority 100 vs 1), so arbitration yields; attempt 1 runs unmanaged
/// (priority 0), i.e. the eager default: it finalizes the older InPrep
/// descriptor as aborted and commits.
struct YieldThenEagerCM : medley::ContentionManager {
  const char* name() const override { return "YieldThenEager"; }
  void onAttemptStart(medley::Desc& d, std::uint64_t attempt) override {
    d.set_priority(attempt == 0 ? 100 : 0);
  }
  void onFinish(medley::Desc& d, bool) override { d.set_priority(0); }
};

}  // namespace

TEST(TxTrace, PinnedConflictAbortRetryCommitSequence) {
  TxManager mgr;
  obs::TraceRing ring(64);
  U64Obj a(5);

  h::ScheduleDriver d;
  // t0: the OLDER pinned transaction — begins, stamps the oldest priority,
  // installs its descriptor on `a`, and stays InPrep across t1's run.
  d.add_thread({
      [&] {
        mgr.txBegin();
        mgr.my_desc()->set_priority(1);
        auto v = a.nbtcLoad();
        EXPECT_TRUE(a.nbtcCAS(v, v + 1, true, true));
      },
      [&] {
        // t1's second attempt finalized us as aborted.
        EXPECT_THROW(mgr.txEnd(), TransactionAborted);
      },
  });
  // t1: a traced, bounded(2) executor run. Attempt 0 meets t0's InPrep
  // descriptor and yields (Conflict); attempt 1 goes eager and commits.
  d.add_thread({
      [&] {
        TxPolicy p = TxPolicy::bounded(2, std::make_shared<YieldThenEagerCM>());
        p.trace = &ring;
        TxExecutor exec{p};
        auto r = exec.execute(mgr, [&] {
          auto v = a.nbtcLoad();
          a.nbtcCAS(v, v + 100, true, true);
        });
        EXPECT_TRUE(r.committed());
        EXPECT_EQ(r.stats.conflict_aborts, 1u);
        EXPECT_EQ(r.stats.retries, 1u);
      },
  });
  d.run({0, 1, 0});
  EXPECT_EQ(a.load(), 105u);

  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 8u) << ring.dump_text();
  using TE = obs::TraceEvent;
  const TE expected_kinds[] = {TE::kBegin,     TE::kAttempt,
                               TE::kArbitrationYield, TE::kAbort,
                               TE::kCMBackoff, TE::kRetry,
                               TE::kAttempt,   TE::kCommit};
  for (std::size_t i = 0; i < 8; i++) {
    EXPECT_EQ(events[i].kind, expected_kinds[i])
        << "event " << i << ":\n" << ring.dump_text();
  }
  const auto conflict = static_cast<std::uint8_t>(AbortReason::Conflict);
  EXPECT_EQ(events[1].aux, 0u);        // attempt 0
  EXPECT_EQ(events[3].arg, conflict);  // abort{reason=conflict}
  EXPECT_EQ(events[3].aux, 0u);
  EXPECT_EQ(events[4].arg, conflict);  // CM backoff after that abort
  EXPECT_EQ(events[5].aux, 1u);        // retry into attempt 1
  EXPECT_EQ(events[6].aux, 1u);        // attempt 1
  EXPECT_EQ(events[7].aux, 2u);        // committed on the 2nd attempt
}

// ---------------------------------------------------------------------
// Per-thread slot lifecycle: hundreds of short-lived threads.

TEST(PerThreadSlots, ThreadChurnKeepsAggregatesExact) {
  ms::StoreStats stats;
  TxManager mgr;
  TxExecutor exec;
  constexpr int kChurn = 2 * mu::ThreadRegistry::kMaxThreads;  // 512 births
  for (int i = 0; i < kChurn; i++) {
    std::thread([&] {
      medley::TxStats t;
      t.commits = 1;
      t.conflict_aborts = 2;
      stats.record(t);
      stats.note_feed_push(1);
      // The TxManager slots share the same lifecycle helper: every one of
      // the short-lived threads is billed a commit.
      EXPECT_TRUE(exec.execute(mgr, [] {}).committed());
    }).join();
  }
  const auto s = stats.aggregate();
  EXPECT_EQ(s.commits, static_cast<std::uint64_t>(kChurn));
  EXPECT_EQ(s.conflict_aborts, static_cast<std::uint64_t>(2 * kChurn));
  EXPECT_EQ(s.feed_pushed, static_cast<std::uint64_t>(kChurn));
  EXPECT_EQ(mgr.stats().commits, static_cast<std::uint64_t>(kChurn));
  // Leases were recycled: the registry high-water mark stays far below
  // one id per birth (exhaustion would deadlock acquire_slot instead).
  EXPECT_LT(mu::ThreadRegistry::max_tid(), mu::ThreadRegistry::kMaxThreads);
}

// ---------------------------------------------------------------------
// Store-level end-to-end: counters, gauges, summaries, trace — and the
// CI exposition producer (MEDLEY_METRICS_OUT).

TEST(StoreObs, EndToEndDumpMetricsAndTrace) {
  TxManager mgr;
  ms::StoreConfig cfg{/*buckets=*/1u << 10, /*feed_enabled=*/true};
  cfg.metrics = true;
  cfg.trace_capacity = 1024;
  ms::MedleyStore<std::uint64_t, std::uint64_t> store(&mgr, cfg);

  constexpr int kThreads = 4, kKeys = 64;
  run_threads(kThreads, [&](int t) {
    for (std::uint64_t i = 1; i <= kKeys; i++) {
      const std::uint64_t k = static_cast<std::uint64_t>(t) * kKeys + i;
      store.put(k, k);
      store.get(k);
      store.read_modify_write(k, [](const std::optional<std::uint64_t>& c) {
        return std::optional<std::uint64_t>(c.value_or(0) + 1);
      });
      if (i % 4 == 0) store.del(k);
      if (i % 8 == 0) store.scan(1, 8);
    }
    store.poll_feed(32);
  });

  // Exact counter values through the registry handles (registration is
  // idempotent: same name+labels yields the live series).
  auto reg = store.metrics_registry();
  ASSERT_TRUE(reg != nullptr);
  EXPECT_EQ(reg->counter("medley_store_ops_total", "", {{"op", "put"}}).value(),
            static_cast<std::uint64_t>(kThreads * kKeys));
  EXPECT_EQ(reg->counter("medley_store_ops_total", "", {{"op", "get"}}).value(),
            static_cast<std::uint64_t>(kThreads * kKeys));
  EXPECT_EQ(reg->counter("medley_store_ops_total", "", {{"op", "rmw"}}).value(),
            static_cast<std::uint64_t>(kThreads * kKeys));
  EXPECT_EQ(reg->counter("medley_store_ops_total", "", {{"op", "del"}}).value(),
            static_cast<std::uint64_t>(kThreads * (kKeys / 4)));

  const std::string text = store.dump_metrics();
  for (const char* family :
       {"medley_store_ops_total", "medley_store_op_latency_ns",
        "medley_store_op_attempts", "medley_store_aborts_total",
        "medley_store_keys", "medley_store_feed_depth"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family), std::string::npos)
        << "family missing: " << family;
  }
  EXPECT_NE(text.find("medley_store_op_latency_ns_count{op=\"put\""),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.999\""), std::string::npos);
  // The keys gauge reflects committed inserts minus committed deletes.
  const auto agg = store.stats();
  EXPECT_EQ(agg.key_count(),
            static_cast<std::uint64_t>(kThreads * (kKeys - kKeys / 4)));

  const std::string json = store.dump_metrics_json();
  EXPECT_NE(json.find("medley_store_ops_total"), std::string::npos);

  // Lifecycle tracing rode along on the same transactions.
  ASSERT_TRUE(store.trace_ring() != nullptr);
  const auto events = store.trace_ring()->dump();
  EXPECT_FALSE(events.empty());
  bool saw_commit = false;
  for (const auto& e : events) {
    if (e.kind == obs::TraceEvent::kCommit) saw_commit = true;
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_NE(store.dump_trace().find("commit"), std::string::npos);

  // CI hook: persist the exposition for tools/check_metrics.py (the TSAN
  // job points MEDLEY_METRICS_OUT at a temp file and validates it).
  if (const char* out = std::getenv("MEDLEY_METRICS_OUT")) {
    std::ofstream f(out);
    f << text;
  }
}

TEST(StoreObs, MetricsOffByDefaultAndRoFallbackCounted) {
  TxManager mgr;
  ms::StoreConfig off{/*buckets=*/1u << 8, /*feed_enabled=*/false};
  ms::MedleyStore<std::uint64_t, std::uint64_t> plain(&mgr, off);
  plain.put(1, 1);
  EXPECT_TRUE(plain.dump_metrics().empty());
  EXPECT_TRUE(plain.metrics_registry() == nullptr);
  EXPECT_TRUE(plain.trace_ring() == nullptr);

  // Read-only mode + metrics: a get on a quiescent store commits on the
  // snapshot path; no write fallback is billed.
  TxManager mgr2;
  ms::StoreConfig cfg{/*buckets=*/1u << 8, /*feed_enabled=*/false};
  cfg.metrics = true;
  cfg.read_only_reads = true;
  ms::MedleyStore<std::uint64_t, std::uint64_t> store(&mgr2, cfg);
  store.put(7, 70);
  EXPECT_EQ(store.get(7), std::optional<std::uint64_t>(70));
  auto reg = store.metrics_registry();
  EXPECT_EQ(
      reg->counter("medley_store_ro_fallbacks_total", "", {{"kind", "write"}})
          .value(),
      0u);
  EXPECT_EQ(reg->counter("medley_store_ops_total", "", {{"op", "get"}}).value(),
            1u);
}

TEST(StoreObs, SamplingThinsHistogramsButCountersStayExact) {
  // shift 0: every op lands in the latency histogram (exact-tail mode).
  TxManager mgr;
  ms::StoreConfig every{/*buckets=*/1u << 8, /*feed_enabled=*/false};
  every.metrics = true;
  every.metrics_sample_shift = 0;
  ms::MedleyStore<std::uint64_t, std::uint64_t> full(&mgr, every);
  constexpr std::uint64_t kOps = 200;
  for (std::uint64_t i = 0; i < kOps; i++) full.put(i, i);
  auto reg = full.metrics_registry();
  EXPECT_EQ(reg->counter("medley_store_ops_total", "", {{"op", "put"}}).value(),
            kOps);
  EXPECT_EQ(reg->histogram("medley_store_op_latency_ns", "", {{"op", "put"}})
                .snapshot()
                .count,
            kOps);

  // The shipping default (1/64) thins the sample stream — strictly fewer
  // records than ops — while the op counter stays exact. (The per-thread
  // sampling counter is process-wide round-robin, so the exact sample
  // count depends on prior activity; only the bound is contractual.)
  TxManager mgr2;
  ms::StoreConfig sampled{/*buckets=*/1u << 8, /*feed_enabled=*/false};
  sampled.metrics = true;
  ms::MedleyStore<std::uint64_t, std::uint64_t> thin(&mgr2, sampled);
  for (std::uint64_t i = 0; i < kOps; i++) thin.put(i, i);
  auto reg2 = thin.metrics_registry();
  EXPECT_EQ(
      reg2->counter("medley_store_ops_total", "", {{"op", "put"}}).value(),
      kOps);
  const auto snap =
      reg2->histogram("medley_store_op_latency_ns", "", {{"op", "put"}})
          .snapshot();
  EXPECT_LE(snap.count, kOps / 64 + 1);
}

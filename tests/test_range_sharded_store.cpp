// RangeShardedMedleyStore: contiguous key-range shards under a shared
// TxDomain (range_sharded_store.hpp over sharded_base.hpp). Invariants
// under test, mirroring test_sharded_store.cpp's S1-S5 with the
// partitioning swapped:
//   R1  the partitioner is total and consistent: every key routes to
//       exactly one shard, a boundary key always routes to the shard on
//       its RIGHT, and point ops, range endpoints, and the splitter agree;
//   R2  cross-boundary transactions (multi_put / transact) are atomic —
//       a committed reader sees all of a write group or none of it, even
//       under pinned interleavings that stop the writer halfway;
//   R3  range/scan are interval-pruned: a window spanning one / two / all
//       shards returns exactly the oracle's contents in global order
//       (concatenation, no merge), and an empty shard in the middle of a
//       scan passes through to its right neighbor (refill);
//   R4  the merged feed replayed over an empty map reproduces the union
//       of the shard primaries (base machinery, re-checked under range
//       partitioning);
//   R5  per-shard key counts (store_stats.hpp key_count()) are exact
//       between quiescent points — the imbalance observable.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "store/store.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::store::RangePartitioner;
using medley::store::RangeShardedMedleyStore;
using Store = RangeShardedMedleyStore<std::uint64_t, std::uint64_t>;
using Part = RangePartitioner<std::uint64_t>;

namespace h = medley::test::harness;

namespace {

/// Four shards with pinned boundaries: [0,100) [100,200) [200,300) [300,inf).
Store make4(medley::store::StoreConfig cfg = {.buckets = 256}) {
  return Store(Part({100, 200, 300}), cfg);
}

/// R1 + basic_store I1 per shard, checked quiescently: every key lives on
/// the one shard its range owns, primary == secondary.
::testing::AssertionResult shards_mutually_consistent(Store& s) {
  for (std::size_t i = 0; i < s.shard_count(); i++) {
    auto& shard = s.shard(i);
    auto snapshot = shard.range(0, ~0ULL);
    for (const auto& [k, v] : snapshot) {
      if (s.shard_of(k) != i) {
        return ::testing::AssertionFailure()
               << "key " << k << " stored on shard " << i
               << " but its range is shard " << s.shard_of(k);
      }
      auto p = shard.get(k);
      if (!p || *p != v) {
        return ::testing::AssertionFailure()
               << "shard " << i << " key " << k
               << ": primary/secondary split";
      }
    }
    if (shard.primary().size_slow() != snapshot.size()) {
      return ::testing::AssertionFailure()
             << "shard " << i << ": primary holds "
             << shard.primary().size_slow() << " keys, secondary "
             << snapshot.size();
    }
  }
  return ::testing::AssertionSuccess();
}

std::map<std::uint64_t, std::uint64_t> primary_union(Store& s) {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const auto& [k, v] : s.range(0, ~0ULL)) out[k] = v;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Partitioner unit tests (R1)
// ---------------------------------------------------------------------------

TEST(RangePartitioner, BoundaryKeysRouteConsistently) {
  Part p({100, 200, 300});
  EXPECT_EQ(p.shard_count(), 4u);
  // Interior keys.
  EXPECT_EQ(p.shard_of(0), 0u);
  EXPECT_EQ(p.shard_of(99), 0u);
  EXPECT_EQ(p.shard_of(150), 1u);
  EXPECT_EQ(p.shard_of(299), 2u);
  EXPECT_EQ(p.shard_of(1'000'000), 3u);
  // A boundary key belongs to the shard on its RIGHT — the one convention
  // point routing, range endpoints, and the splitter all share.
  EXPECT_EQ(p.shard_of(100), 1u);
  EXPECT_EQ(p.shard_of(200), 2u);
  EXPECT_EQ(p.shard_of(300), 3u);
  // shard_span is the inclusive shard interval a query descends into.
  EXPECT_EQ(p.shard_span(0, 99), std::make_pair(std::size_t{0}, std::size_t{0}));
  EXPECT_EQ(p.shard_span(99, 100), std::make_pair(std::size_t{0}, std::size_t{1}));
  EXPECT_EQ(p.shard_span(100, 299), std::make_pair(std::size_t{1}, std::size_t{2}));
  EXPECT_EQ(p.shard_span(0, ~0ULL), std::make_pair(std::size_t{0}, std::size_t{3}));
}

TEST(RangePartitioner, FromSamplesPicksEquiDepthQuantiles) {
  // 0..99 sampled densely, 4 shards: boundaries at the 25/50/75 quantiles.
  std::vector<std::uint64_t> samples;
  for (std::uint64_t k = 0; k < 100; k++) samples.push_back(k);
  auto p = Part::from_samples(samples, 4);
  ASSERT_EQ(p.bounds().size(), 3u);
  EXPECT_EQ(p.bounds()[0], 25u);
  EXPECT_EQ(p.bounds()[1], 50u);
  EXPECT_EQ(p.bounds()[2], 75u);
  // Equi-depth on a skewed sample: boundaries follow the mass, not the
  // span — 3/4 of the samples below 10 pull every boundary below 10.
  std::vector<std::uint64_t> skew;
  for (std::uint64_t k = 0; k < 9; k++) skew.push_back(k);
  skew.push_back(1'000'000);
  auto q = Part::from_samples(skew, 4);
  ASSERT_EQ(q.bounds().size(), 3u);
  EXPECT_LT(q.bounds()[2], 10u);
}

TEST(RangePartitioner, UniformFallbackWhenSampleTooThin) {
  // Two distinct samples, four shards: quantile cutting is impossible, so
  // the splitter falls back to uniform boundaries over the sample span.
  auto p = Part::from_samples({0, 400, 400, 0}, 4);
  ASSERT_EQ(p.bounds().size(), 3u);
  EXPECT_EQ(p.bounds()[0], 100u);
  EXPECT_EQ(p.bounds()[1], 200u);
  EXPECT_EQ(p.bounds()[2], 300u);
  // No usable sample at all: uniform over the full integral key domain.
  auto q = Part::from_samples({}, 4);
  ASSERT_EQ(q.bounds().size(), 3u);
  EXPECT_GT(q.bounds()[0], 0u);
  EXPECT_LT(q.bounds()[2], std::numeric_limits<std::uint64_t>::max());
  EXPECT_LT(q.bounds()[0], q.bounds()[1]);
  EXPECT_LT(q.bounds()[1], q.bounds()[2]);
  // Single-shard degenerate case needs no boundaries from any sample.
  EXPECT_TRUE(Part::from_samples({}, 1).bounds().empty());
  // Unsorted explicit boundaries are rejected, not silently misrouted.
  EXPECT_THROW(Part({5, 3}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Store behavior
// ---------------------------------------------------------------------------

TEST(RangeShardedStore, PointOpsRouteByRangeAndCompose) {
  Store s = make4();
  for (std::uint64_t k = 0; k < 400; k += 25) {
    EXPECT_FALSE(s.put(k, k * 10).has_value());
  }
  for (std::uint64_t k = 0; k < 400; k += 25) {
    EXPECT_EQ(s.get(k), std::optional<std::uint64_t>(k * 10));
    EXPECT_EQ(s.shard_of(k), k / 100);  // dense keys land by interval
  }
  EXPECT_EQ(s.put(100, 1001), std::optional<std::uint64_t>(1000));
  EXPECT_EQ(s.del(125), std::optional<std::uint64_t>(1250));
  EXPECT_FALSE(s.contains(125));
  EXPECT_EQ(s.read_modify_write(
                100,
                [](const std::optional<std::uint64_t>& c) {
                  return std::optional<std::uint64_t>(c.value_or(0) + 1);
                }),
            std::optional<std::uint64_t>(1002));
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(RangeShardedStore, RangeSpansOneTwoAllShards) {
  Store s = make4();
  std::map<std::uint64_t, std::uint64_t> oracle;
  medley::util::Xoshiro256 rng(99);
  for (int i = 0; i < 400; i++) {
    const std::uint64_t k = rng.next_bounded(400);
    if (rng.next_bounded(4) == 0) {
      s.del(k);
      oracle.erase(k);
    } else {
      const std::uint64_t v = rng.next();
      s.put(k, v);
      oracle[k] = v;
    }
  }

  auto want = [&](std::uint64_t lo, std::uint64_t hi) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> w;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it) {
      w.emplace_back(it->first, it->second);
    }
    return w;
  };

  // Exactly one shard (single-manager fast path), two shards (one
  // boundary crossed), and all four (concatenation must stay globally
  // sorted and exact).
  EXPECT_EQ(s.range(10, 90), want(10, 90));
  EXPECT_EQ(s.range(150, 250), want(150, 250));
  EXPECT_EQ(s.range(0, 399), want(0, 399));
  // Boundary endpoints: hi == a boundary key must include it (it lives on
  // the right shard), and an inverted window is empty.
  EXPECT_EQ(s.range(50, 100), want(50, 100));
  EXPECT_EQ(s.range(200, 200), want(200, 200));
  EXPECT_TRUE(s.range(300, 200).empty());
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(RangeShardedStore, ScanSpansAndRefillsThroughEmptyShards) {
  Store s = make4();
  // Shards 0 and 2 populated; shard 1 ([100,200)) left EMPTY: a scan
  // walking right from shard 0 must pass through it and refill from
  // shard 2. Shard 3 holds the tail.
  std::map<std::uint64_t, std::uint64_t> oracle;
  for (std::uint64_t k = 0; k < 100; k += 10) {
    s.put(k, k);
    oracle[k] = k;
  }
  for (std::uint64_t k = 200; k < 400; k += 10) {
    s.put(k, k);
    oracle[k] = k;
  }

  auto want = [&](std::uint64_t lo, std::size_t limit) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> w;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && w.size() < limit; ++it) {
      w.emplace_back(it->first, it->second);
    }
    return w;
  };

  EXPECT_EQ(s.scan(0, 5), want(0, 5));      // inside shard 0
  EXPECT_EQ(s.scan(50, 10), want(50, 10));  // crosses the empty shard 1
  EXPECT_EQ(s.scan(100, 4), want(100, 4));  // starts IN the empty shard
  EXPECT_EQ(s.scan(0, 64), want(0, 64));    // all shards, exhausts the map
  EXPECT_EQ(s.scan(350, 64), want(350, 64));  // last shard: local fast path
  EXPECT_TRUE(s.scan(0, 0).empty());
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(RangeShardedStore, SchedulePinnedCrossBoundaryMultiPutIsAtomic) {
  // The acceptance scenario, range edition: a write group spanning the
  // shard-1/shard-2 boundary is interrupted halfway by a reader
  // transaction touching both shards. Eager contention management
  // finalizes (aborts) the half-done writer, so the reader must see
  // NEITHER key; had the writer finished first, it would see BOTH. Never
  // one.
  Store s = make4();
  const std::uint64_t ka = 150, kb = 250;  // shards 1 and 2 by construction
  ASSERT_NE(s.shard_of(ka), s.shard_of(kb));

  std::atomic<bool> writer_committed{false};
  std::atomic<bool> saw_a{false}, saw_b{false};
  auto* root = s.manager(s.shard_of(ka));

  h::ScheduleDriver d;
  d.add_thread({
      [&] { root->txBegin(); },
      [&] {
        try {
          s.put(ka, 111);  // flat-nests into the open domain transaction
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          s.put(kb, 222);  // discovers the forced abort, if any
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          // The reader's probe may already have finalized us; the context
          // is then torn down and there is nothing left to end.
          if (s.domain()->in_tx()) {
            root->txEnd();
            writer_committed.store(true);
          }
        } catch (const TransactionAborted&) {
        }
      },
  });
  d.add_thread({
      [&] {
        // One committed reader transaction across both shards.
        medley::execute_tx(*s.manager(0), [&] {
          saw_a.store(s.get(ka).has_value());
          saw_b.store(s.get(kb).has_value());
        });
      },
  });
  // Reader fires between the two speculative puts: half-done writer state.
  d.run({0, 0, 1, 0, 0});

  EXPECT_EQ(saw_a.load(), saw_b.load())
      << "reader observed a torn cross-boundary multi_put";
  EXPECT_FALSE(writer_committed.load());
  EXPECT_FALSE(saw_a.load());
  EXPECT_FALSE(s.contains(ka));
  EXPECT_FALSE(s.contains(kb));
  EXPECT_TRUE(s.poll_feed(10).empty()) << "aborted group leaked a feed entry";

  // Control schedule: the same group completes first; a reader
  // transaction then sees the WHOLE group.
  std::atomic<bool> saw_a2{false}, saw_b2{false};
  h::ScheduleDriver d2;
  d2.add_thread({[&] { s.multi_put({{ka, 111}, {kb, 222}}); }});
  d2.add_thread({[&] {
    medley::execute_tx(*s.manager(0), [&] {
      saw_a2.store(s.get(ka).has_value());
      saw_b2.store(s.get(kb).has_value());
    });
  }});
  d2.run({0, 1});
  EXPECT_TRUE(saw_a2.load());
  EXPECT_TRUE(saw_b2.load());
  EXPECT_EQ(s.poll_feed(10).size(), 2u);
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(RangeShardedStore, MixedWorkloadMergedSnapshotsMatchOracle8Threads) {
  // 5 mutators (point ops + cross-boundary groups), 2 snapshot readers
  // whose merged ranges must always be globally sorted and internally
  // consistent, one merged-feed consumer. Afterwards R1/R4/R5 and the
  // conservation-style oracle: the final primary union equals a replay of
  // everything the feed shipped.
  Store s = make4();
  constexpr std::uint64_t kKeys = 380;  // spans all four shards
  constexpr int kOps = 500;
  std::atomic<bool> torn{false};
  std::vector<Store::FeedItem> log;

  h::run_seeded(8, 7117, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 5) {  // mutators
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        switch (rng.next_bounded(5)) {
          case 0: s.put(k, rng.next_bounded(1u << 20)); break;
          case 1: s.del(k); break;
          case 2:
            s.read_modify_write(
                k, [](const std::optional<std::uint64_t>& c) {
                  return std::optional<std::uint64_t>(c.value_or(0) + 1);
                });
            break;
          case 3:
            // Cross-boundary group: k and its far neighbor get the same
            // generation, atomically.
            s.multi_put({{k, i * 8u}, {(k + 173) % kKeys, i * 8u}});
            break;
          default:
            s.read_modify_write_many(
                {k, (k + 211) % kKeys},
                [](std::uint64_t, const std::optional<std::uint64_t>& c) {
                  return std::optional<std::uint64_t>(c.value_or(0) + 2);
                });
            break;
        }
      }
    } else if (t == 7) {  // merged feed consumer
      for (int i = 0; i < kOps; i++) {
        auto batch = s.poll_feed(8);
        log.insert(log.end(), batch.begin(), batch.end());
      }
    } else {  // readers: committed merged-range snapshots
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        std::optional<std::uint64_t> p;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> r;
        s.transact([&] {
          p = s.get(k);
          r = s.shard(s.shard_of(k)).range(k, k);
        });
        const bool in_secondary = !r.empty();
        if (p.has_value() != in_secondary) torn.store(true);
        if (p && in_secondary && *p != r[0].second) torn.store(true);
        auto window = s.range(k, k + 120);  // usually crosses a boundary
        for (std::size_t j = 1; j < window.size(); j++) {
          if (!(window[j - 1].first < window[j].first)) torn.store(true);
        }
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed snapshot saw torn state";
  EXPECT_TRUE(shards_mutually_consistent(s));

  // R4 at scale: polled prefix + final drain replays to the union of the
  // shard primaries.
  for (;;) {
    auto batch = s.poll_feed(64);
    if (batch.empty()) break;
    log.insert(log.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(s.feed_depth(), 0u);
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(log, replayed);
  EXPECT_EQ(replayed, primary_union(s));

  // R5: per-shard key counts are exact and sum to the live total; the
  // aggregate folds shards + the cross block.
  const auto counts = s.key_counts();
  ASSERT_EQ(counts.size(), s.shard_count());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < s.shard_count(); i++) {
    EXPECT_EQ(counts[i], s.shard(i).primary().size_slow())
        << "shard " << i << " key_count drifted from the live structure";
    total += counts[i];
  }
  EXPECT_EQ(total, primary_union(s).size());
  EXPECT_EQ(s.stats().key_count(), total);

  auto agg = s.stats();
  medley::store::StoreStats::Snapshot sum = s.stats_cross();
  for (std::size_t i = 0; i < s.shard_count(); i++) sum += s.stats_shard(i);
  EXPECT_EQ(agg.commits, sum.commits);
  EXPECT_EQ(agg.feed_pushed, log.size());
  EXPECT_EQ(agg.feed_polled, log.size());
}

TEST(RangeShardedStore, SeededSplitterBalancesAndSingleShardDegenerates) {
  // Seeding-time splitter end to end: boundaries from a sample of the
  // load, then the loaded store's per-shard key counts stay within a
  // loose band of records/nshards (equi-depth on the seeded
  // distribution).
  constexpr std::uint64_t kRecords = 800;
  std::vector<std::uint64_t> seed;
  for (std::uint64_t k = 1; k <= kRecords; k += 7) seed.push_back(k);
  Store s(4, seed, {.buckets = 256});
  for (std::uint64_t k = 1; k <= kRecords; k++) s.put(k, k);
  const auto counts = s.key_counts();
  for (std::size_t i = 0; i < 4; i++) {
    EXPECT_GT(counts[i], kRecords / 8) << "shard " << i << " starved";
    EXPECT_LT(counts[i], kRecords / 2) << "shard " << i << " overloaded";
  }
  EXPECT_TRUE(shards_mutually_consistent(s));

  // One shard: everything degenerates to the single MedleyStore paths.
  Store one(Part(std::vector<std::uint64_t>{}), {.buckets = 64});
  one.multi_put({{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(one.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(one.range(0, 10).size(), 3u);
  EXPECT_EQ(one.scan(0, 10).size(), 3u);
  auto feed = one.poll_feed(10);
  ASSERT_EQ(feed.size(), 3u);
  EXPECT_LT(feed[0].seq, feed[1].seq);
  EXPECT_EQ(one.key_counts(), std::vector<std::uint64_t>{3});
}

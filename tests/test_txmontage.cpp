// txMontage: ACID transactions over persistent Medley structures —
// isolation/consistency from Medley, failure atomicity + durability from
// the epoch system. Crash simulation: the DRAM side (index, EpochSys,
// TxManager) is discarded; the mmap'd region survives; recovery trusts
// only the persisted boundary, exactly like a machine restart would.

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "montage/txmontage.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::montage::EpochSys;
using medley::montage::PRegion;
using medley::montage::TxMontageHashTable;
using medley::montage::TxMontageSkiplist;

namespace {
std::string temp_region(const char* name) {
  std::string p = ::testing::TempDir() + "medley_" + name + ".img";
  std::remove(p.c_str());
  return p;
}
}  // namespace

TEST(TxMontage, MapBasics) {
  auto path = temp_region("txm_basic");
  PRegion region(path, 1024);
  TxManager mgr;
  EpochSys es(&region);
  es.attach(&mgr);
  TxMontageHashTable m(&mgr, &es, /*sid=*/1, /*buckets=*/64);

  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.put(1, 12), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.remove(1), std::optional<std::uint64_t>(12));
  EXPECT_FALSE(m.contains(1));
  std::remove(path.c_str());
}

TEST(TxMontage, TransactionAcrossTwoPersistentMaps) {
  auto path = temp_region("txm_twomaps");
  PRegion region(path, 1024);
  TxManager mgr;
  EpochSys es(&region);
  es.attach(&mgr);
  TxMontageHashTable a(&mgr, &es, 1, 64);
  TxMontageSkiplist b(&mgr, &es, 2);

  a.insert(5, 500);
  medley::execute_tx(mgr, [&] {
    auto v = a.remove(5);
    ASSERT_TRUE(v.has_value());
    b.insert(5, *v);
  });
  EXPECT_FALSE(a.contains(5));
  EXPECT_EQ(b.get(5), std::optional<std::uint64_t>(500));
  std::remove(path.c_str());
}

TEST(TxMontage, AbortLeavesNoPersistentTrace) {
  auto path = temp_region("txm_abort");
  PRegion region(path, 1024);
  TxManager mgr;
  EpochSys es(&region);
  es.attach(&mgr);
  TxMontageHashTable m(&mgr, &es, 1, 64);

  try {
    mgr.txBegin();
    m.insert(9, 90);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  es.sync();
  EXPECT_FALSE(m.contains(9));
  EXPECT_EQ(es.durable_payload_count(), 0u);
  std::remove(path.c_str());
}

TEST(TxMontage, SyncedDataSurvivesCrash) {
  auto path = temp_region("txm_crash1");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    for (std::uint64_t k = 1; k <= 20; k++) {
      medley::execute_tx(mgr, [&] { m.insert(k, k * 10); });
    }
    es.sync();
  }  // crash: all DRAM state gone
  {
    PRegion region(path, 1024);
    ASSERT_FALSE(region.fresh());
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    m.recover_from(recovered);
    for (std::uint64_t k = 1; k <= 20; k++) {
      EXPECT_EQ(m.get(k), std::optional<std::uint64_t>(k * 10)) << k;
    }
    EXPECT_EQ(m.size_slow(), 20u);
  }
  std::remove(path.c_str());
}

TEST(TxMontage, UnsyncedSuffixLostAtomically) {
  auto path = temp_region("txm_crash2");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    medley::execute_tx(mgr, [&] {
      m.insert(1, 10);
      m.insert(2, 20);
    });
    es.sync();
    // Post-sync transaction: committed in DRAM, never persisted.
    medley::execute_tx(mgr, [&] {
      m.insert(3, 30);
      m.insert(4, 40);
    });
    EXPECT_TRUE(m.contains(3));
  }
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    m.recover_from(recovered);
    // The synced transaction survives whole...
    EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
    EXPECT_EQ(m.get(2), std::optional<std::uint64_t>(20));
    // ...the unsynced one disappears whole (buffered durability: a recent
    // suffix may be lost, but never a torn transaction).
    EXPECT_FALSE(m.contains(3));
    EXPECT_FALSE(m.contains(4));
  }
  std::remove(path.c_str());
}

TEST(TxMontage, RemoveBeforeCrashWithoutSyncResurrects) {
  auto path = temp_region("txm_crash3");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    medley::execute_tx(mgr, [&] { m.insert(1, 10); });
    es.sync();
    medley::execute_tx(mgr, [&] { m.remove(1); });  // not synced
  }
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    m.recover_from(recovered);
    // The unsynced remove is part of the lost suffix.
    EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
  }
  std::remove(path.c_str());
}

TEST(TxMontage, SyncedRemoveStaysRemoved) {
  auto path = temp_region("txm_crash4");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    medley::execute_tx(mgr, [&] { m.insert(1, 10); });
    medley::execute_tx(mgr, [&] { m.remove(1); });
    es.sync();
  }
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    m.recover_from(recovered);
    EXPECT_FALSE(m.contains(1));
    EXPECT_EQ(m.size_slow(), 0u);
  }
  std::remove(path.c_str());
}

TEST(TxMontage, TwoStructuresRecoverIndependentlyBySid) {
  auto path = temp_region("txm_sids");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable a(&mgr, &es, 1, 64);
    TxMontageSkiplist b(&mgr, &es, 2);
    medley::execute_tx(mgr, [&] {
      a.insert(1, 100);
      b.insert(1, 111);
    });
    es.sync();
  }
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable a(&mgr, &es, 1, 64);
    TxMontageSkiplist b(&mgr, &es, 2);
    a.recover_from(recovered);
    b.recover_from(recovered);
    EXPECT_EQ(a.get(1), std::optional<std::uint64_t>(100));
    EXPECT_EQ(b.get(1), std::optional<std::uint64_t>(111));
    EXPECT_EQ(a.size_slow(), 1u);
    EXPECT_EQ(b.size_slow(), 1u);
  }
  std::remove(path.c_str());
}

TEST(TxMontage, ConcurrentTransfersConserveAcrossCrash) {
  // The flagship BDSS property: concurrent transactional transfers with a
  // periodic advancer, then a crash; the recovered state must be a
  // consistent prefix — total balance conserved exactly.
  auto path = temp_region("txm_bank");
  constexpr std::uint64_t kAccounts = 16, kInitial = 100;
  {
    PRegion region(path, 8192);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    for (std::uint64_t k = 0; k < kAccounts; k++) {
      medley::execute_tx(mgr, [&] { m.insert(k, kInitial); });
    }
    es.sync();
    es.start_advancer(2);
    medley::test::run_threads(4, [&](int t) {
      medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 400; i++) {
        auto from = rng.next_bounded(kAccounts);
        auto to = rng.next_bounded(kAccounts);
        if (from == to) continue;
        medley::execute_tx(mgr, [&] {
          auto vf = m.get(from);
          auto vt = m.get(to);
          if (!vf || *vf == 0) mgr.txAbort();
          m.put(from, *vf - 1);
          m.put(to, *vt + 1);
        });
      }
    });
    es.stop_advancer();
  }  // crash at an arbitrary persisted boundary
  {
    PRegion region(path, 8192);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageHashTable m(&mgr, &es, 1, 64);
    m.recover_from(recovered);
    std::uint64_t total = 0;
    std::size_t present = 0;
    for (std::uint64_t k = 0; k < kAccounts; k++) {
      auto v = m.get(k);
      if (v) {
        total += *v;
        present++;
      }
    }
    EXPECT_EQ(present, kAccounts);  // initial inserts were synced
    EXPECT_EQ(total, kAccounts * kInitial);  // transfers atomic at boundary
  }
  std::remove(path.c_str());
}

#pragma once
// Sequential-specification oracles: the reference semantics the concurrent
// structures are checked against. A MapOracle is a plain std::map, a
// QueueOracle a plain std::deque; apply() executes one recorded operation
// against the reference state and reports the result the specification
// demands. The checkers compare that to what the real structure returned.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "harness/history.hpp"

namespace medley::test::harness {

/// Result of applying one operation to an oracle, in OpRecord encoding.
struct OracleResult {
  bool ok = false;
  std::uint64_t out = 0;
};

/// Sequential map/set-with-values specification over std::map.
class MapOracle {
 public:
  MapOracle() = default;
  explicit MapOracle(std::map<std::uint64_t, std::uint64_t> initial)
      : m_(std::move(initial)) {}

  OracleResult apply(const OpRecord& r) {
    switch (r.kind) {
      case OpKind::Get: {
        auto it = m_.find(r.key);
        if (it == m_.end()) return {false, 0};
        return {true, it->second};
      }
      case OpKind::Contains:
        return {m_.count(r.key) != 0, 0};
      case OpKind::Insert: {
        auto [it, inserted] = m_.emplace(r.key, r.val);
        (void)it;
        return {inserted, 0};
      }
      case OpKind::Remove: {
        auto it = m_.find(r.key);
        if (it == m_.end()) return {false, 0};
        OracleResult res{true, it->second};
        m_.erase(it);
        return res;
      }
      case OpKind::Put: {
        auto it = m_.find(r.key);
        if (it == m_.end()) {
          m_.emplace(r.key, r.val);
          return {false, 0};
        }
        OracleResult res{true, it->second};
        it->second = r.val;
        return res;
      }
      default:
        return {false, 0};  // queue ops are not map ops
    }
  }

  const std::map<std::uint64_t, std::uint64_t>& state() const { return m_; }

 private:
  std::map<std::uint64_t, std::uint64_t> m_;
};

/// Sequential FIFO specification over std::deque.
class QueueOracle {
 public:
  QueueOracle() = default;
  explicit QueueOracle(std::deque<std::uint64_t> initial)
      : q_(std::move(initial)) {}

  OracleResult apply(const OpRecord& r) {
    switch (r.kind) {
      case OpKind::Enqueue:
        q_.push_back(r.key);
        return {true, 0};
      case OpKind::Dequeue: {
        if (q_.empty()) return {false, 0};
        OracleResult res{true, q_.front()};
        q_.pop_front();
        return res;
      }
      default:
        return {false, 0};  // map ops are not queue ops
    }
  }

  const std::deque<std::uint64_t>& state() const { return q_; }

 private:
  std::deque<std::uint64_t> q_;
};

}  // namespace medley::test::harness

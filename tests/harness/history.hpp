#pragma once
// Operation-log recorder: the first third of the concurrent-correctness
// harness (recorder -> oracle -> checker).
//
// Worker threads record every data-structure operation they perform as an
// OpRecord carrying the operation, its arguments, its observed result, and
// a [start, end] interval stamped from one global atomic clock. The merged
// log is a *concurrent history* in the Herlihy/Wing sense: intervals may
// overlap, and the checkers in checker.hpp decide what can soundly be
// concluded from it.
//
// Logs are kept per worker slot so recording adds one fetch_add per
// timestamp and no shared-vector contention.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace medley::test::harness {

enum class OpKind : std::uint8_t {
  Get,       // ok = found, out = value
  Contains,  // ok = found
  Insert,    // ok = inserted (key was absent)
  Remove,    // ok = removed (key was present), out = old value
  Put,       // ok = replaced (key was present), out = old value
  Enqueue,   // ok = true, key = value enqueued
  Dequeue,   // ok = non-empty, out = value dequeued
};

inline const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::Get: return "get";
    case OpKind::Contains: return "contains";
    case OpKind::Insert: return "insert";
    case OpKind::Remove: return "remove";
    case OpKind::Put: return "put";
    case OpKind::Enqueue: return "enqueue";
    case OpKind::Dequeue: return "dequeue";
  }
  return "?";
}

struct OpRecord {
  int thread = 0;
  OpKind kind = OpKind::Get;
  std::uint64_t key = 0;  // map key, or the value passed to enqueue
  std::uint64_t val = 0;  // value argument of insert/put
  bool ok = false;        // see OpKind comments
  std::uint64_t out = 0;  // returned value when ok
  std::uint64_t start = 0, end = 0;  // global clock interval
};

class Recorder {
 public:
  static constexpr int kMaxSlots = 64;

  explicit Recorder(int slots = kMaxSlots) : slots_(slots) {
    if (slots < 0 || slots > kMaxSlots) {
      throw std::invalid_argument("Recorder: slots out of range");
    }
  }

  std::uint64_t tick() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  /// Append a finished record to worker `slot`'s private log.
  void log(int slot, const OpRecord& r) { logs_[slot].push_back(r); }

  /// Merged history, ordered by start tick. Call after workers have joined.
  std::vector<OpRecord> history() const {
    std::vector<OpRecord> h;
    for (int s = 0; s < slots_; s++) {
      h.insert(h.end(), logs_[s].begin(), logs_[s].end());
    }
    std::sort(h.begin(), h.end(),
              [](const OpRecord& a, const OpRecord& b) {
                return a.start < b.start;
              });
    return h;
  }

  void clear() {
    for (auto& l : logs_) l.clear();
    clock_.store(0, std::memory_order_release);
  }

 private:
  int slots_;
  std::atomic<std::uint64_t> clock_{0};
  std::vector<OpRecord> logs_[kMaxSlots];
};

}  // namespace medley::test::harness

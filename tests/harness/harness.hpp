#pragma once
// Umbrella for the concurrent-correctness harness:
//
//   Recorder / OpRecord   (history.hpp)  — operation-log recorder
//   MapOracle/QueueOracle (oracle.hpp)   — sequential specs (std::map/deque)
//   check_*               (checker.hpp)  — exact replay + sound invariants
//   ScheduleDriver        (schedule.hpp) — deterministic interleavings
//   RecordedMap/Queue     (recorded.hpp) — structure adapters
//
// Typical uses:
//
//   // 1. Deterministic interleaving, exact oracle check:
//   Recorder rec;
//   RecordedMap<Map> rm(&m, &rec);
//   ScheduleDriver d;
//   d.add_thread({[&]{ rm.insert(0, 1, 10); }, [&]{ rm.remove(0, 1); }});
//   d.add_thread({[&]{ rm.get(1, 1); }});
//   d.run({0, 1, 0});                       // t0 insert, t1 get, t0 remove
//   EXPECT_TRUE(check_sequential_map(rec.history()));
//
//   // 2. Free-running stress, sound concurrent invariants:
//   run_seeded(8, 42, [&](int t, auto& rng) { ... rm.insert(t, k, v) ... });
//   EXPECT_TRUE(check_set_history(rec.history(), initial,
//                                 observed_state(m)));

#include "harness/checker.hpp"
#include "harness/history.hpp"
#include "harness/oracle.hpp"
#include "harness/recorded.hpp"
#include "harness/schedule.hpp"

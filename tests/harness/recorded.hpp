#pragma once
// Recording adapters: wrap a structure-under-test so every operation a
// worker performs lands in the Recorder with its observed result and its
// global-clock interval. The adapters are interface templates — any map
// with insert/get/remove(/put/contains) or queue with enqueue/dequeue in
// the repo's common shape works (MichaelHashTable, FraserSkiplist,
// NatarajanBST, RotatingSkiplist, MSQueue, ...).
//
// The `slot` argument is the worker's log slot (0..threads-1), not the
// dense ThreadRegistry id: logs are owned by the test, not the runtime.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "harness/history.hpp"

namespace medley::test::harness {

template <typename M>
class RecordedMap {
 public:
  RecordedMap(M* m, Recorder* rec) : m_(m), rec_(rec) {}

  std::optional<std::uint64_t> get(int slot, std::uint64_t k) {
    OpRecord r{slot, OpKind::Get, k, 0, false, 0, rec_->tick(), 0};
    auto v = m_->get(k);
    r.end = rec_->tick();
    r.ok = v.has_value();
    r.out = v.value_or(0);
    rec_->log(slot, r);
    return v;
  }

  bool contains(int slot, std::uint64_t k) {
    OpRecord r{slot, OpKind::Contains, k, 0, false, 0, rec_->tick(), 0};
    r.ok = m_->contains(k);
    r.end = rec_->tick();
    rec_->log(slot, r);
    return r.ok;
  }

  bool insert(int slot, std::uint64_t k, std::uint64_t v) {
    OpRecord r{slot, OpKind::Insert, k, v, false, 0, rec_->tick(), 0};
    r.ok = m_->insert(k, v);
    r.end = rec_->tick();
    rec_->log(slot, r);
    return r.ok;
  }

  std::optional<std::uint64_t> remove(int slot, std::uint64_t k) {
    OpRecord r{slot, OpKind::Remove, k, 0, false, 0, rec_->tick(), 0};
    auto v = m_->remove(k);
    r.end = rec_->tick();
    r.ok = v.has_value();
    r.out = v.value_or(0);
    rec_->log(slot, r);
    return v;
  }

  std::optional<std::uint64_t> put(int slot, std::uint64_t k,
                                   std::uint64_t v) {
    OpRecord r{slot, OpKind::Put, k, v, false, 0, rec_->tick(), 0};
    auto prev = m_->put(k, v);
    r.end = rec_->tick();
    r.ok = prev.has_value();
    r.out = prev.value_or(0);
    rec_->log(slot, r);
    return prev;
  }

 private:
  M* m_;
  Recorder* rec_;
};

template <typename Q>
class RecordedQueue {
 public:
  RecordedQueue(Q* q, Recorder* rec) : q_(q), rec_(rec) {}

  void enqueue(int slot, std::uint64_t v) {
    OpRecord r{slot, OpKind::Enqueue, v, 0, true, 0, rec_->tick(), 0};
    q_->enqueue(v);
    r.end = rec_->tick();
    rec_->log(slot, r);
  }

  std::optional<std::uint64_t> dequeue(int slot) {
    OpRecord r{slot, OpKind::Dequeue, 0, 0, false, 0, rec_->tick(), 0};
    auto v = q_->dequeue();
    r.end = rec_->tick();
    r.ok = v.has_value();
    r.out = v.value_or(0);
    rec_->log(slot, r);
    return v;
  }

 private:
  Q* q_;
  Recorder* rec_;
};

/// Rebuild a map's observable state (for check_set_history's final_state)
/// from its slow iteration helpers.
template <typename M>
std::map<std::uint64_t, std::uint64_t> observed_state(M& m) {
  std::map<std::uint64_t, std::uint64_t> s;
  for (auto k : m.keys_slow()) {
    auto v = m.get(k);
    if (v) s[k] = *v;
  }
  return s;
}

/// Drain a queue to emptiness (for check_queue_history's final_drain).
template <typename Q>
std::vector<std::uint64_t> drain(Q& q) {
  std::vector<std::uint64_t> out;
  while (auto v = q.dequeue()) out.push_back(*v);
  return out;
}

}  // namespace medley::test::harness

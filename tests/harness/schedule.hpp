#pragma once
// Deterministic multi-threaded schedule driver.
//
// ScheduleDriver runs N *real* OS threads (so thread-local transaction
// contexts, EBR slots, and dense thread ids are all genuine) but steps them
// one operation at a time according to an explicit interleaving: entry j of
// the schedule names the logical thread that executes its next step at
// global step j. The resulting history is serialized — operation intervals
// never overlap — so the exact sequential-spec checkers apply, while the
// interleaving across threads is still chosen freely. This is how tests pin
// down conflict scenarios ("t0 reads, t1 commits a remove, t0 tries to
// commit") that a free-running stress test only hits by luck.
//
// Steps must not block waiting for another logical thread's step (they run
// under mutual exclusion). A step that throws marks its thread failed; the
// driver skips the thread's remaining steps, finishes the schedule, and
// rethrows the first failure from run(). Steps that expect
// TransactionAborted should catch it themselves.
//
// run_seeded() is the reproducible *free-running* counterpart used with the
// concurrent invariant checkers: per-thread RNGs derive from one seed, so a
// failure reproduces by re-running the same seed (modulo OS scheduling).

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace medley::test::harness {

class ScheduleDriver {
 public:
  using Step = std::function<void()>;

  /// Register a logical thread; returns its index (used in schedules).
  int add_thread(std::vector<Step> steps) {
    threads_.push_back(std::move(steps));
    return static_cast<int>(threads_.size()) - 1;
  }

  /// Execute the given interleaving. Every thread's steps must be consumed
  /// exactly once, in thread-local order.
  void run(const std::vector<int>& schedule) {
    validate(schedule);
    std::vector<std::thread> workers;
    workers.reserve(threads_.size());
    cursor_ = 0;
    failed_.assign(threads_.size(), false);
    first_error_ = nullptr;
    schedule_ = &schedule;
    for (std::size_t t = 0; t < threads_.size(); t++) {
      workers.emplace_back([this, t] { worker(static_cast<int>(t)); });
    }
    for (auto& w : workers) w.join();
    schedule_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

  /// Round-robin schedule over the registered threads.
  std::vector<int> round_robin() const {
    std::vector<std::size_t> next(threads_.size(), 0);
    std::vector<int> s;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t t = 0; t < threads_.size(); t++) {
        if (next[t] < threads_[t].size()) {
          s.push_back(static_cast<int>(t));
          next[t]++;
          progress = true;
        }
      }
    }
    return s;
  }

  /// Seeded random interleaving (deterministic given the seed).
  std::vector<int> shuffled(std::uint64_t seed) const {
    std::vector<int> s;
    for (std::size_t t = 0; t < threads_.size(); t++) {
      s.insert(s.end(), threads_[t].size(), static_cast<int>(t));
    }
    util::Xoshiro256 rng(seed);
    for (std::size_t i = s.size(); i > 1; i--) {
      std::swap(s[i - 1], s[rng.next_bounded(i)]);
    }
    return s;
  }

 private:
  void validate(const std::vector<int>& schedule) const {
    std::vector<std::size_t> counts(threads_.size(), 0);
    for (int t : schedule) {
      if (t < 0 || static_cast<std::size_t>(t) >= threads_.size()) {
        throw std::invalid_argument("schedule names unknown thread");
      }
      counts[static_cast<std::size_t>(t)]++;
    }
    for (std::size_t t = 0; t < threads_.size(); t++) {
      if (counts[t] != threads_[t].size()) {
        throw std::invalid_argument(
            "schedule step count does not match thread's steps");
      }
    }
  }

  void worker(int me) {
    std::size_t next_step = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] {
        return cursor_ >= schedule_->size() || (*schedule_)[cursor_] == me;
      });
      if (cursor_ >= schedule_->size()) return;
      if (next_step >= threads_[static_cast<std::size_t>(me)].size()) return;
      Step& step = threads_[static_cast<std::size_t>(me)][next_step++];
      if (!failed_[static_cast<std::size_t>(me)]) {
        // Run the step under the lock: serialization is the whole point.
        try {
          step();
        } catch (...) {
          failed_[static_cast<std::size_t>(me)] = true;
          if (!first_error_) first_error_ = std::current_exception();
        }
      }
      cursor_++;
      cv_.notify_all();
      if (next_step == threads_[static_cast<std::size_t>(me)].size()) return;
    }
  }

  std::vector<std::vector<Step>> threads_;
  const std::vector<int>* schedule_ = nullptr;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t cursor_ = 0;
  std::vector<bool> failed_;
  std::exception_ptr first_error_;
};

/// Reproducible free run: `body(tid, rng)` on `n` threads, each rng seeded
/// deterministically from `seed` and the thread index.
inline void run_seeded(
    int n, std::uint64_t seed,
    const std::function<void(int, util::Xoshiro256&)>& body) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; i++) {
    ts.emplace_back([&, i] {
      util::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL +
                           static_cast<std::uint64_t>(i) + 1);
      body(i, rng);
    });
  }
  for (auto& t : ts) t.join();
}

}  // namespace medley::test::harness

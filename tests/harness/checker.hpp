#pragma once
// Sequential-spec checkers over recorded histories.
//
// Two strengths of check, matched to two ways of running:
//
// 1. check_sequential_map / check_sequential_queue — *exact* replay. Valid
//    only for histories whose operation intervals do not overlap (single
//    thread, or multiple threads stepped one-at-a-time by ScheduleDriver).
//    Every recorded result must equal what the std::map / std::deque oracle
//    produces in the same order; the real structure must behave, op for op,
//    like the reference.
//
// 2. check_set_history / check_queue_history — *sound* invariants for truly
//    concurrent (overlapping) histories, where the linearization order is
//    unknown. These check only consequences that hold for EVERY possible
//    linearization of a correct object, so a failure is always a real bug:
//      maps:   per-key presence arithmetic (a successful insert requires
//              absence, a successful remove requires presence, so
//              init + inserts + creating-puts - removes == final presence),
//              and every value read or left behind was actually written.
//      queues: no value invented, none duplicated, none lost (multiset
//              conservation against the final drain), and FIFO order for
//              enqueue pairs whose intervals don't overlap — if e1 finished
//              before e2 began, v2's dequeue may not finish before v1's
//              begins.
//
// All checkers return ::testing::AssertionResult so failures carry the
// offending operation; use them as EXPECT_TRUE(check_...).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/history.hpp"
#include "harness/oracle.hpp"

namespace medley::test::harness {

inline std::string describe(const OpRecord& r) {
  std::ostringstream os;
  os << "t" << r.thread << " " << to_string(r.kind) << "(" << r.key;
  if (r.kind == OpKind::Insert || r.kind == OpKind::Put) os << ", " << r.val;
  os << ") -> " << (r.ok ? "ok" : "miss");
  if (r.ok && (r.kind == OpKind::Get || r.kind == OpKind::Remove ||
               r.kind == OpKind::Put || r.kind == OpKind::Dequeue)) {
    os << " [" << r.out << "]";
  }
  os << " @[" << r.start << "," << r.end << "]";
  return os.str();
}

namespace detail {

inline bool intervals_sequential(const std::vector<OpRecord>& h,
                                 std::string* err) {
  for (std::size_t i = 1; i < h.size(); i++) {
    if (h[i].start < h[i - 1].end) {
      std::ostringstream os;
      os << "history is not sequential: " << describe(h[i - 1]) << " overlaps "
         << describe(h[i]) << " — use the concurrent invariant checkers";
      *err = os.str();
      return false;
    }
  }
  return true;
}

template <typename Oracle>
::testing::AssertionResult replay(const std::vector<OpRecord>& history,
                                  Oracle oracle) {
  std::string err;
  if (!intervals_sequential(history, &err)) {
    return ::testing::AssertionFailure() << err;
  }
  for (std::size_t i = 0; i < history.size(); i++) {
    const OpRecord& r = history[i];
    const OracleResult want = oracle.apply(r);
    if (r.ok != want.ok) {
      return ::testing::AssertionFailure()
             << "op " << i << ": " << describe(r) << " — oracle says "
             << (want.ok ? "ok" : "miss");
    }
    const bool has_out = r.ok && (r.kind == OpKind::Get ||
                                  r.kind == OpKind::Remove ||
                                  r.kind == OpKind::Put ||
                                  r.kind == OpKind::Dequeue);
    if (has_out && r.out != want.out) {
      return ::testing::AssertionFailure()
             << "op " << i << ": " << describe(r) << " — oracle value "
             << want.out;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace detail

/// Exact replay of a non-overlapping history against the std::map spec.
/// `history` must be ordered by start tick (Recorder::history() is).
inline ::testing::AssertionResult check_sequential_map(
    const std::vector<OpRecord>& history,
    std::map<std::uint64_t, std::uint64_t> initial = {}) {
  return detail::replay(history, MapOracle(std::move(initial)));
}

/// Exact replay of a non-overlapping history against the std::deque spec.
inline ::testing::AssertionResult check_sequential_queue(
    const std::vector<OpRecord>& history,
    std::deque<std::uint64_t> initial = {}) {
  return detail::replay(history, QueueOracle(std::move(initial)));
}

/// Sound invariants for a concurrent map/set history.
/// `initial` is the state before the run; `final_state` the state observed
/// after all workers joined (e.g. rebuilt from keys_slow() + get()).
inline ::testing::AssertionResult check_set_history(
    const std::vector<OpRecord>& history,
    const std::map<std::uint64_t, std::uint64_t>& initial,
    const std::map<std::uint64_t, std::uint64_t>& final_state) {
  struct PerKey {
    long creates = 0;  // successful inserts + puts that found nothing
    long removes = 0;  // successful removes
    // Values stored by insert/put, with the tick at which the writing
    // operation began. A read may only observe a value from a write that
    // had already begun when the read completed.
    std::map<std::uint64_t, std::uint64_t> written;  // value -> min start
  };
  std::map<std::uint64_t, PerKey> keys;
  for (const auto& [k, v] : initial) keys[k].written.emplace(v, 0);

  // Pass 1: tally effects and collect every write.
  for (const OpRecord& r : history) {
    PerKey& pk = keys[r.key];
    switch (r.kind) {
      case OpKind::Insert:
        if (r.ok) {
          pk.creates++;
          auto [it, fresh] = pk.written.emplace(r.val, r.start);
          if (!fresh) it->second = std::min(it->second, r.start);
        }
        break;
      case OpKind::Put: {
        if (!r.ok) pk.creates++;
        auto [it, fresh] = pk.written.emplace(r.val, r.start);
        if (!fresh) it->second = std::min(it->second, r.start);
        break;
      }
      case OpKind::Remove:
        if (r.ok) pk.removes++;
        break;
      case OpKind::Get:
      case OpKind::Contains:
        break;
      default:
        return ::testing::AssertionFailure()
               << "queue operation in a map history: " << describe(r);
    }
  }

  // Pass 2: every observed value must stem from a write that began before
  // the observing operation ended (initial values count as tick 0).
  for (const OpRecord& r : history) {
    const bool observes =
        r.ok && (r.kind == OpKind::Get || r.kind == OpKind::Remove ||
                 r.kind == OpKind::Put);  // put's ok carries the old value
    if (!observes) continue;
    const PerKey& pk = keys[r.key];
    auto it = pk.written.find(r.out);
    if (it == pk.written.end()) {
      return ::testing::AssertionFailure()
             << "observed never-written value: " << describe(r);
    }
    if (it->second > r.end) {
      return ::testing::AssertionFailure()
             << "observed value before it was written (write began at tick "
             << it->second << "): " << describe(r);
    }
  }

  for (const auto& [k, pk] : keys) {
    const long init_present = initial.count(k) ? 1 : 0;
    const long final_present = final_state.count(k) ? 1 : 0;
    if (init_present + pk.creates - pk.removes != final_present) {
      return ::testing::AssertionFailure()
             << "key " << k << ": presence arithmetic broken — initial "
             << init_present << " + creates " << pk.creates << " - removes "
             << pk.removes << " != final " << final_present;
    }
  }
  for (const auto& [k, v] : final_state) {
    auto it = keys.find(k);
    if (it == keys.end()) {
      return ::testing::AssertionFailure()
             << "final state holds key " << k << " that no operation touched";
    }
    if (!it->second.written.count(v)) {
      return ::testing::AssertionFailure()
             << "final value of key " << k << " (" << v
             << ") was never written";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Sound invariants for a concurrent FIFO history. Requires all enqueued
/// values (plus `initial`) to be pairwise distinct so dequeues can be
/// matched to enqueues. `final_drain` is what a post-join drain returned,
/// in order.
inline ::testing::AssertionResult check_queue_history(
    const std::vector<OpRecord>& history,
    const std::vector<std::uint64_t>& initial,
    const std::vector<std::uint64_t>& final_drain) {
  std::map<std::uint64_t, const OpRecord*> enq;  // value -> enqueue record
  std::map<std::uint64_t, const OpRecord*> deq;  // value -> dequeue record
  std::set<std::uint64_t> known(initial.begin(), initial.end());

  for (const OpRecord& r : history) {
    switch (r.kind) {
      case OpKind::Enqueue:
        if (!known.insert(r.key).second) {
          return ::testing::AssertionFailure()
                 << "duplicate enqueue value (harness requires unique "
                    "values): "
                 << describe(r);
        }
        enq.emplace(r.key, &r);
        break;
      case OpKind::Dequeue:
        if (!r.ok) break;
        if (!known.count(r.out)) {
          return ::testing::AssertionFailure()
                 << "dequeue invented a value: " << describe(r);
        }
        if (!deq.emplace(r.out, &r).second) {
          return ::testing::AssertionFailure()
                 << "value dequeued twice: " << describe(r);
        }
        break;
      default:
        return ::testing::AssertionFailure()
               << "map operation in a queue history: " << describe(r);
    }
  }

  // Conservation: everything enqueued-but-not-dequeued is in the drain,
  // nothing else is, and nothing is drained twice.
  std::set<std::uint64_t> drained;
  for (std::uint64_t v : final_drain) {
    if (!known.count(v)) {
      return ::testing::AssertionFailure()
             << "drain produced never-enqueued value " << v;
    }
    if (deq.count(v)) {
      return ::testing::AssertionFailure()
             << "value " << v << " dequeued during the run AND drained";
    }
    if (!drained.insert(v).second) {
      return ::testing::AssertionFailure() << "value " << v
                                           << " drained twice";
    }
  }
  if (drained.size() + deq.size() != known.size()) {
    return ::testing::AssertionFailure()
           << "queue lost values: " << known.size() << " enqueued, "
           << deq.size() << " dequeued, " << drained.size() << " drained";
  }

  // FIFO: when one enqueue finished before another began, their dequeues
  // must not be observed in inverted, non-overlapping order. Pair scan is
  // O(E^2) in the worst case but each pair costs only map lookups; the
  // drain position lookup is precomputed (a linear std::find here made the
  // whole pass cubic on large histories).
  std::map<std::uint64_t, std::size_t> drain_pos;
  for (std::size_t i = 0; i < final_drain.size(); i++) {
    drain_pos.emplace(final_drain[i], i);
  }
  std::vector<const OpRecord*> enqs;
  enqs.reserve(enq.size());
  for (const auto& [v, r] : enq) enqs.push_back(r);
  for (const OpRecord* e1 : enqs) {
    for (const OpRecord* e2 : enqs) {
      if (e1->end >= e2->start) continue;  // overlapping or later: no order
      auto d1 = deq.find(e1->key), d2 = deq.find(e2->key);
      if (d1 != deq.end() && d2 != deq.end() &&
          d2->second->end < d1->second->start) {
        return ::testing::AssertionFailure()
               << "FIFO violation: " << describe(*e1) << " preceded "
               << describe(*e2) << " but " << describe(*d2->second)
               << " completed before " << describe(*d1->second) << " began";
      }
      // An undrained e1 whose successor e2 was dequeued is fine (another
      // dequeue may still be in flight conceptually), but if e1 reached the
      // final drain while e2 was dequeued during the run, order still holds
      // (run dequeues precede the drain), so nothing to check.
      if (d1 == deq.end() && d2 == deq.end()) {
        // Both in the drain: drain order must respect enqueue order.
        auto p1 = drain_pos.find(e1->key);
        auto p2 = drain_pos.find(e2->key);
        if (p1 != drain_pos.end() && p2 != drain_pos.end() &&
            p2->second < p1->second) {
          return ::testing::AssertionFailure()
                 << "FIFO violation in drain: " << describe(*e1)
                 << " preceded " << describe(*e2)
                 << " but drained after it";
        }
      }
      if (d1 == deq.end() && d2 != deq.end()) {
        return ::testing::AssertionFailure()
               << "FIFO violation: " << describe(*e1) << " preceded "
               << describe(*e2) << ", e2 was dequeued ("
               << describe(*d2->second)
               << ") but e1 was still in the queue at the end";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace medley::test::harness

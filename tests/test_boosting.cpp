// Transactional boosting (paper Sec. 3.1): semantic locks, inverse-based
// rollback, composition of a boosted lock-based map with NBTC structures
// in one Medley transaction, deadlock avoidance via bounded lock
// acquisition, and contention management of the abort->retry loop (the
// policy layer that turns boosting's historical livelock into backoff).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "core/boosting.hpp"
#include "ds/boosted_map.hpp"
#include "ds/michael_hashtable.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::core::AbstractLockTable;
using BMap = medley::ds::BoostedHashMap<std::uint64_t, std::uint64_t>;

TEST(AbstractLocks, AcquireReleaseCycle) {
  AbstractLockTable t(64);
  EXPECT_TRUE(t.try_acquire(7));
  EXPECT_TRUE(t.held_by_me(7));
  t.release(7);
  EXPECT_FALSE(t.held_by_me(7));
}

TEST(AbstractLocks, ReentrantAcquisition) {
  AbstractLockTable t(64);
  EXPECT_TRUE(t.try_acquire(7));
  EXPECT_TRUE(t.try_acquire(7));  // same thread: reentrant
  t.release(7);
  EXPECT_TRUE(t.held_by_me(7));  // depth 2: still held
  t.release(7);
  EXPECT_FALSE(t.held_by_me(7));
}

TEST(AbstractLocks, ContendedAcquisitionTimesOut) {
  AbstractLockTable t(64);
  ASSERT_TRUE(t.try_acquire(3));
  std::atomic<bool> got{true};
  std::thread([&] { got = t.try_acquire(3, /*max_spins=*/64); }).join();
  EXPECT_FALSE(got.load());  // bounded wait expired
  t.release(3);
  std::thread([&] { got = t.try_acquire(3, 64); }).join();
  EXPECT_TRUE(got.load());
}

TEST(Boosting, MapBasicsOutsideTx) {
  TxManager mgr;
  BMap m(&mgr);
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.put(1, 12), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.remove(1), std::optional<std::uint64_t>(12));
  EXPECT_FALSE(m.contains(1));
}

TEST(Boosting, CommitKeepsBoostedEffects) {
  TxManager mgr;
  BMap m(&mgr);
  mgr.txBegin();
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  mgr.txEnd();
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
}

TEST(Boosting, AbortRunsInversesInReverse) {
  TxManager mgr;
  BMap m(&mgr);
  m.insert(5, 50);
  try {
    mgr.txBegin();
    EXPECT_EQ(m.put(5, 51), std::optional<std::uint64_t>(50));
    EXPECT_EQ(m.remove(5), std::optional<std::uint64_t>(51));
    EXPECT_TRUE(m.insert(5, 52));
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  // Rolled back through three inverses to the original value.
  EXPECT_EQ(m.get(5), std::optional<std::uint64_t>(50));
  EXPECT_EQ(m.size_slow(), 1u);
}

TEST(Boosting, LocksReleasedAfterCommitAndAbort) {
  TxManager mgr;
  BMap m(&mgr);
  mgr.txBegin();
  m.insert(9, 90);
  mgr.txEnd();
  // Another thread can operate on key 9 immediately: locks were released.
  std::thread([&] { EXPECT_EQ(m.remove(9), std::optional<std::uint64_t>(90)); })
      .join();

  try {
    mgr.txBegin();
    m.insert(9, 91);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  std::thread([&] { EXPECT_TRUE(m.insert(9, 92)); }).join();
  EXPECT_EQ(m.get(9), std::optional<std::uint64_t>(92));
}

TEST(Boosting, ComposesWithNbtcStructureAtomically) {
  // Boosted map + lock-free hash table in ONE transaction: both effects
  // or neither.
  TxManager mgr;
  BMap boosted(&mgr);
  medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t> nbtc(&mgr, 64);
  boosted.insert(1, 100);

  medley::execute_tx(mgr, [&] {
    auto v = boosted.remove(1);
    ASSERT_TRUE(v.has_value());
    nbtc.insert(1, *v);
  });
  EXPECT_FALSE(boosted.contains(1));
  EXPECT_EQ(nbtc.get(1), std::optional<std::uint64_t>(100));

  // And the abort direction: NBTC rollback + boosted inverse together.
  try {
    mgr.txBegin();
    auto v = nbtc.remove(1);
    boosted.insert(1, *v);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_EQ(nbtc.get(1), std::optional<std::uint64_t>(100));
  EXPECT_FALSE(boosted.contains(1));
}

TEST(Boosting, ConflictingTxAbortsViaLockTimeout) {
  TxManager mgr;
  BMap m(&mgr);
  m.insert(1, 10);
  mgr.txBegin();
  m.put(1, 11);  // holds the semantic lock for key 1 until commit
  std::atomic<bool> aborted{false};
  std::thread([&] {
    try {
      mgr.txBegin();
      m.put(1, 12);  // bounded wait on the same semantic lock
      mgr.txEnd();
    } catch (const TransactionAborted&) {
      aborted = true;
    }
  }).join();
  EXPECT_TRUE(aborted.load());  // deadlock avoidance: loser aborts
  mgr.txEnd();
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(11));
}

TEST(Boosting, DisjointKeysDoNotConflict) {
  // The semantic-lock point of boosting: same underlying stripe-locked
  // map, but transactions on different keys proceed concurrently.
  TxManager mgr;
  BMap m(&mgr);
  std::atomic<std::uint64_t> commits{0};
  medley::test::run_threads(4, [&](int t) {
    const std::uint64_t base = static_cast<std::uint64_t>(t) * 1000;
    for (int i = 0; i < 200; i++) {
      medley::execute_tx(mgr, [&] {
        m.insert(base + static_cast<std::uint64_t>(i), 1);
        m.put(base + static_cast<std::uint64_t>(i), 2);
      });
      commits.fetch_add(1);
    }
  });
  EXPECT_EQ(commits.load(), 4u * 200u);
  EXPECT_EQ(m.size_slow(), 4u * 200u);
}

TEST(Boosting, TransfersConserveUnderContention) {
  // Boosting's bounded-wait locks give deadlock avoidance, not livelock
  // freedom: before the execution-policy layer, this test needed a
  // hand-rolled test-side backoff to terminate under TSAN on one core.
  // Now the policy's ContentionManager paces BOTH the semantic-lock wait
  // (boostLock -> onLockContended) and the post-abort retry (onAbort) —
  // the real fix, exercised here with no workaround.
  TxManager mgr;
  BMap m(&mgr);
  medley::TxExecutor exec{
      medley::TxPolicy::with(std::make_shared<medley::ExpBackoffCM>())};
  constexpr std::uint64_t kAccounts = 8, kInitial = 1000;
  for (std::uint64_t a = 0; a < kAccounts; a++) m.insert(a, kInitial);
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 21);
    for (int i = 0; i < 400; i++) {
      auto from = rng.next_bounded(kAccounts);
      auto to = rng.next_bounded(kAccounts);
      if (from == to) continue;
      exec.execute(mgr, [&] {
        auto vf = m.get(from);
        auto vt = m.get(to);
        if (*vf == 0) {
          mgr.txAbort();  // broke: terminal under the default policy
        }
        m.put(from, *vf - 1);
        m.put(to, *vt + 1);
      });
    }
  });
  std::uint64_t total = 0;
  for (std::uint64_t a = 0; a < kAccounts; a++) total += *m.get(a);
  EXPECT_EQ(total, kAccounts * kInitial);
}

namespace {
/// Counts boostLock's semantic-lock wait polls routed through the policy.
struct LockWaitProbeCM final : medley::ContentionManager {
  std::atomic<std::uint64_t> lock_waits{0};
  const char* name() const override { return "LockWaitProbe"; }
  void onLockContended(medley::Desc&, std::uint64_t) override {
    lock_waits.fetch_add(1, std::memory_order_relaxed);
  }
};
}  // namespace

TEST(Boosting, LockWaitRoutedThroughContentionManager) {
  // t0 holds key 1's semantic lock inside an open transaction; a second
  // thread's executor-driven transaction must spin through the POLICY's
  // onLockContended hook (not a private backoff) before aborting.
  TxManager mgr;
  BMap m(&mgr);
  m.insert(1, 10);
  mgr.txBegin();
  m.put(1, 11);  // holds the semantic lock for key 1 until commit
  auto probe = std::make_shared<LockWaitProbeCM>();
  std::optional<medley::AbortReason> terminal;
  std::thread([&] {
    medley::TxExecutor exec{medley::TxPolicy::bounded(1, probe)};
    auto r = exec.execute(mgr, [&] { m.put(1, 12); });
    EXPECT_FALSE(r.committed());
    terminal = r.terminal;
  }).join();
  ASSERT_TRUE(terminal.has_value());
  EXPECT_EQ(*terminal, medley::AbortReason::Conflict);
  EXPECT_GT(probe->lock_waits.load(), 0u);
  mgr.txEnd();
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(11));
}

// TxExecutor / TxPolicy / ContentionManager (core/tx_exec.hpp): attempt
// budgets, per-reason retry rules, deterministic CM hook ordering, KarmaCM
// priority arbitration pinned with the schedule driver, TxResult<T> value
// plumbing, and the run_tx compatibility shim.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/medley.hpp"
#include "test_support.hpp"

using medley::AbortReason;
using medley::CASObj;
using medley::ContentionManager;
using medley::ExpBackoffCM;
using medley::KarmaCM;
using medley::NoOpCM;
using medley::TransactionAborted;
using medley::TxExecutor;
using medley::TxManager;
using medley::TxPolicy;
using medley::test::Harness;
using U64Obj = CASObj<std::uint64_t>;

namespace h = medley::test::harness;

namespace {

/// Records every hook invocation in order — the "deterministic fake CM".
struct FakeCM : ContentionManager {
  std::vector<std::string> log;
  std::atomic<std::uint64_t> lock_waits{0};

  const char* name() const override { return "Fake"; }
  void onAttemptStart(medley::Desc&, std::uint64_t attempt) override {
    log.push_back("start:" + std::to_string(attempt));
  }
  void onAbort(medley::Desc&, AbortReason r, std::uint64_t attempt) override {
    const char* reason = r == AbortReason::Conflict     ? "conflict"
                         : r == AbortReason::Validation ? "validation"
                         : r == AbortReason::Capacity   ? "capacity"
                                                        : "user";
    log.push_back(std::string("abort:") + reason + ":" +
                  std::to_string(attempt));
  }
  void onFinish(medley::Desc&, bool committed) override {
    log.push_back(committed ? "finish:commit" : "finish:giveup");
  }
  void onLockContended(medley::Desc&, std::uint64_t) override {
    lock_waits.fetch_add(1);
  }
};

}  // namespace

// ---------------------------------------------------------------------
// Attempt budgets and per-reason retry rules.

TEST(TxExecutor, MaxAttemptsExhaustionReturnsResultWithoutThrowing) {
  TxManager mgr;
  TxExecutor exec{TxPolicy::bounded(3)};
  int attempts = 0;
  medley::TxResult<void> r;
  // Capacity is transient (retried by default) — only the budget stops it.
  ASSERT_NO_THROW(r = exec.execute(mgr, [&] {
    attempts++;
    mgr.txAbortCapacity();
  }));
  EXPECT_EQ(attempts, 3);
  EXPECT_FALSE(r.committed());
  EXPECT_FALSE(static_cast<bool>(r));
  ASSERT_TRUE(r.terminal.has_value());
  EXPECT_EQ(*r.terminal, AbortReason::Capacity);
  EXPECT_EQ(r.stats.commits, 0u);
  EXPECT_EQ(r.stats.capacity_aborts, 3u);
  EXPECT_EQ(r.stats.retries, 2u);  // third attempt was terminal, not retried
  EXPECT_FALSE(mgr.in_tx());       // the thread is reusable
  EXPECT_EQ(exec.execute(mgr, [] {}).stats.commits, 1u);
}

TEST(TxExecutor, PerReasonRuleStopsCapacityWhenDisabled) {
  TxManager mgr;
  TxPolicy p;
  p.retry_capacity = false;
  TxExecutor exec{p};
  int attempts = 0;
  auto r = exec.execute(mgr, [&] {
    attempts++;
    mgr.txAbortCapacity();
  });
  EXPECT_EQ(attempts, 1);  // first capacity abort is terminal under this policy
  EXPECT_FALSE(r.committed());
  EXPECT_EQ(*r.terminal, AbortReason::Capacity);
  EXPECT_EQ(r.stats.retries, 0u);
}

TEST(TxExecutor, PerReasonRuleRetriesUserWhenEnabled) {
  TxManager mgr;
  TxPolicy p;
  p.retry_user = true;
  TxExecutor exec{p};
  int attempts = 0;
  auto r = exec.execute(mgr, [&] {
    if (++attempts < 4) mgr.txAbort();
  });
  EXPECT_EQ(attempts, 4);
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.stats.user_aborts, 3u);
  EXPECT_EQ(r.stats.retries, 3u);
  EXPECT_FALSE(r.terminal.has_value());
}

TEST(TxExecutor, UserAbortTerminalByDefault) {
  TxManager mgr;
  TxExecutor exec;
  int attempts = 0;
  auto r = exec.execute(mgr, [&] {
    attempts++;
    mgr.txAbort();
  });
  EXPECT_EQ(attempts, 1);
  EXPECT_FALSE(r.committed());
  EXPECT_EQ(*r.terminal, AbortReason::User);
}

// ---------------------------------------------------------------------
// Contention-manager hook ordering.

TEST(TxExecutor, FakeCmSeesDeterministicHookOrdering) {
  TxManager mgr;
  auto cm = std::make_shared<FakeCM>();
  TxExecutor exec{TxPolicy::with(cm)};
  int attempts = 0;
  auto r = exec.execute(mgr, [&] {
    if (++attempts < 3) mgr.txAbortCapacity();
  });
  EXPECT_TRUE(r.committed());
  const std::vector<std::string> expected = {
      "start:0", "abort:capacity:0", "start:1", "abort:capacity:1",
      "start:2", "finish:commit"};
  EXPECT_EQ(cm->log, expected);

  // Give-up path: onAbort of the terminal attempt still fires, then the
  // single finish:giveup.
  cm->log.clear();
  TxExecutor bounded{TxPolicy::bounded(2, cm)};
  bounded.execute(mgr, [&] { mgr.txAbortCapacity(); });
  const std::vector<std::string> expected2 = {
      "start:0", "abort:capacity:0", "start:1", "abort:capacity:1",
      "finish:giveup"};
  EXPECT_EQ(cm->log, expected2);
}

TEST(TxExecutor, ForeignExceptionClosesTransactionAndNotifiesCm) {
  TxManager mgr;
  auto cm = std::make_shared<FakeCM>();
  TxExecutor exec{TxPolicy::with(cm)};
  U64Obj a(1);
  EXPECT_THROW(exec.execute(mgr, [&] {
    auto v = a.nbtcLoad();
    a.nbtcCAS(v, v + 1, true, true);
    throw std::runtime_error("boom");
  }),
               std::runtime_error);
  EXPECT_FALSE(mgr.in_tx());
  EXPECT_EQ(a.load(), 1u);  // speculative write rolled back
  ASSERT_FALSE(cm->log.empty());
  EXPECT_EQ(cm->log.back(), "finish:giveup");
  // The thread (and executor) remain usable.
  EXPECT_EQ(exec.execute(mgr, [] {}).stats.commits, 1u);
}

// ---------------------------------------------------------------------
// KarmaCM: the older transaction survives a pinned conflict.

TEST(TxExecutor, KarmaOlderTransactionWinsPinnedConflict) {
  TxManager mgr;
  auto karma = std::make_shared<KarmaCM>();
  U64Obj a(5);
  std::optional<AbortReason> young_terminal;

  h::ScheduleDriver d;
  // t0, the OLDER transaction: begins first (smaller Karma timestamp) and
  // installs its descriptor on `a`, then commits in its second step.
  d.add_thread({
      [&] {
        mgr.txBegin();
        karma->onAttemptStart(*mgr.my_desc(), 0);  // stamp: oldest
        auto v = a.nbtcLoad();
        EXPECT_TRUE(a.nbtcCAS(v, v + 1, true, true));  // descriptor installed
      },
      [&] { mgr.txEnd(); },  // must succeed: the young tx yielded
  });
  // t1, the YOUNGER transaction: a full executor run under the same Karma
  // instance. Its single attempt meets t0's InPrep descriptor and must
  // abort ITSELF (Conflict) instead of finalizing-as-aborted t0.
  d.add_thread({
      [&] {
        TxExecutor exec{TxPolicy::bounded(1, karma)};
        auto r = exec.execute(mgr, [&] {
          auto v = a.nbtcLoad();
          a.nbtcCAS(v, v + 100, true, true);
        });
        EXPECT_FALSE(r.committed());
        young_terminal = r.terminal;
      },
  });
  d.run({0, 1, 0});

  ASSERT_TRUE(young_terminal.has_value());
  EXPECT_EQ(*young_terminal, AbortReason::Conflict);
  EXPECT_EQ(a.load(), 6u) << "the older transaction's write must survive";
  auto st = mgr.stats();
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.conflict_aborts, 1u);
}

TEST(TxExecutor, EagerDefaultYoungerAbortsOlderInSameSchedule) {
  // Control for the Karma test: with no priorities (default policy), the
  // exact same interleaving resolves the other way — the second
  // transaction finalizes the first one's InPrep descriptor as Aborted.
  TxManager mgr;
  U64Obj a(5);
  std::optional<AbortReason> old_terminal;

  h::ScheduleDriver d;
  d.add_thread({
      [&] {
        mgr.txBegin();
        auto v = a.nbtcLoad();
        EXPECT_TRUE(a.nbtcCAS(v, v + 1, true, true));
      },
      [&] {
        try {
          mgr.txEnd();
        } catch (const TransactionAborted& e) {
          old_terminal = e.reason();
        }
      },
  });
  d.add_thread({
      [&] {
        TxExecutor exec;  // eager: aborts the installed transaction
        auto r = exec.execute(mgr, [&] {
          auto v = a.nbtcLoad();
          EXPECT_TRUE(a.nbtcCAS(v, v + 100, true, true));
        });
        EXPECT_TRUE(r.committed());
      },
  });
  d.run({0, 1, 0});

  ASSERT_TRUE(old_terminal.has_value());
  EXPECT_EQ(*old_terminal, AbortReason::Conflict);
  EXPECT_EQ(a.load(), 105u) << "the second transaction's write wins";
}

TEST(TxExecutor, KarmaClockMonotoneAndClearedOnFinish) {
  TxManager mgr;
  auto karma = std::make_shared<KarmaCM>();
  TxExecutor exec{TxPolicy::with(karma)};
  std::uint64_t p1 = 0, p2 = 0;
  exec.execute(mgr, [&] { p1 = mgr.my_desc()->priority(); });
  exec.execute(mgr, [&] { p2 = mgr.my_desc()->priority(); });
  EXPECT_NE(p1, 0u);
  EXPECT_LT(p1, p2) << "later transactions are younger (larger stamp)";
  EXPECT_EQ(mgr.my_desc()->priority(), 0u);

  // A retry KEEPS its stamp (age accumulates) rather than redrawing.
  std::vector<std::uint64_t> seen;
  int attempts = 0;
  exec.execute(mgr, [&] {
    seen.push_back(mgr.my_desc()->priority());
    if (++attempts < 3) mgr.txAbortCapacity();
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[1], seen[2]);
}

// ---------------------------------------------------------------------
// TxResult<T> value plumbing.

TEST(TxExecutor, ValuePlumbingOnCommitAndGiveUp) {
  TxManager mgr;
  TxExecutor exec;
  U64Obj a(7);

  auto r = exec.execute(mgr, [&]() -> std::uint64_t { return a.nbtcLoad(); });
  EXPECT_TRUE(r.committed());
  ASSERT_TRUE(r.value.has_value());
  EXPECT_EQ(*r.value, 7u);

  // Non-committed call: the value computed by the failed attempt must NOT
  // leak out.
  TxExecutor bounded{TxPolicy::bounded(2)};
  auto r2 = bounded.execute(mgr, [&]() -> std::uint64_t {
    mgr.txAbortCapacity();
  });
  EXPECT_FALSE(r2.committed());
  EXPECT_FALSE(r2.value.has_value());
  EXPECT_EQ(*r2.terminal, AbortReason::Capacity);

  // A value assigned on an aborted attempt is replaced by the committed
  // attempt's value.
  int attempts = 0;
  auto r3 = exec.execute(mgr, [&]() -> int {
    if (++attempts < 2) mgr.txAbortCapacity();
    return attempts;
  });
  EXPECT_TRUE(r3.committed());
  EXPECT_EQ(*r3.value, 2);
}

TEST(TxExecutor, ExecuteTxFreeFunctionDefaultPolicy) {
  TxManager mgr;
  U64Obj a(0);
  auto r = medley::execute_tx(mgr, [&] {
    auto v = a.nbtcLoad();
    EXPECT_TRUE(a.nbtcCAS(v, v + 1, true, true));
  });
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(a.load(), 1u);

  // The default policy preserves the historical (pre-executor run_tx)
  // TxStats contract: a user abort is terminal, not retried.
  auto st = medley::execute_tx(mgr, [&] { mgr.txAbort(); }).stats;
  EXPECT_EQ(st.commits, 0u);
  EXPECT_EQ(st.user_aborts, 1u);
}

// ---------------------------------------------------------------------
// Executor against real structure traffic under contention (smoke).

TEST(TxExecutor, SharedExecutorCountsExactlyUnderContention) {
  TxManager mgr;
  U64Obj counter(0);
  auto cm = std::make_shared<ExpBackoffCM>();
  TxExecutor exec{TxPolicy::with(cm)};  // shared by all threads
  constexpr int kThreads = 4, kIncr = 200;
  medley::test::run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIncr; i++) {
      auto r = exec.execute(mgr, [&] {
        auto v = counter.nbtcLoad();
        if (!counter.nbtcCAS(v, v + 1, true, true)) mgr.txAbortCapacity();
      });
      EXPECT_TRUE(r.committed());
    }
  });
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kThreads * kIncr));
}

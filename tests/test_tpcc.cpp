// TPC-C subset over all four transactional backends: loading, newOrder /
// payment correctness, spec-style consistency audits (order counts, money
// conservation) under sequential and concurrent execution.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "test_support.hpp"
#include "tpcc/tpcc_backend.hpp"
#include "tpcc/tpcc_workload.hpp"

using namespace medley::tpcc;

namespace {

Scale small_scale() {
  Scale s;
  s.warehouses = 2;
  s.districts_per_wh = 4;
  s.customers_per_district = 32;
  s.items = 64;
  return s;
}

/// Sequential smoke: load, a few newOrders and payments, audits.
template <typename B>
void sequential_audit(B& backend) {
  const Scale scale = small_scale();
  Workload<B> w(backend, scale);
  w.load();

  Generator gen(scale, 7);
  std::uint64_t committed_orders = 0, aborted_attempts = 0;
  for (int i = 0; i < 50; i++) {
    const auto st = w.new_order(gen);
    committed_orders += st.commits;
    aborted_attempts += st.aborts();
  }
  EXPECT_EQ(committed_orders, 50u);
  EXPECT_EQ(aborted_attempts, 0u);  // no concurrency: first attempts commit

  std::uint64_t hseq = 0, total = 0;
  for (int i = 0; i < 50; i++) {
    Generator probe(scale, 100 + i);
    // Deterministic amount accounting: re-run generator stream inside.
    std::uint64_t before = hseq;
    EXPECT_EQ(w.payment(probe, /*tid=*/0, hseq).commits, 1u);
    ASSERT_EQ(hseq, before + 1);
    // Amount is consumed inside; recompute from an identical generator.
    Generator replay(scale, 100 + i);
    replay.warehouse();
    replay.district();
    replay.customer();
    total += replay.h_amount();
  }
  EXPECT_TRUE(w.orders_consistent());
  EXPECT_TRUE(w.money_consistent(total));
}

/// Concurrent 1:1 newOrder/payment mix (the paper's Fig. 9 workload),
/// then full audits.
template <typename B>
void concurrent_audit(B& backend, int threads, int tx_per_thread) {
  const Scale scale = small_scale();
  Workload<B> w(backend, scale);
  w.load();

  std::atomic<std::uint64_t> history_total{0};
  medley::test::run_threads(threads, [&](int t) {
    Generator gen(scale, static_cast<std::uint64_t>(t) * 977 + 13);
    std::uint64_t hseq = 0;
    for (int i = 0; i < tx_per_thread; i++) {
      if (gen.coin()) {
        // The backend's executor retries until commit.
        EXPECT_EQ(w.new_order(gen).commits, 1u);
      } else {
        // Track committed payment amounts for the money audit: the
        // parameters are drawn from a seeded generator whose amount we
        // recapture via replay after the (internally retried) commit.
        const std::uint64_t seed = gen.rng().next();
        Generator attempt(scale, seed);
        std::uint64_t before = hseq;
        EXPECT_EQ(
            w.payment(attempt, static_cast<std::uint64_t>(t), hseq).commits,
            1u);
        ASSERT_EQ(hseq, before + 1);
        Generator replay(scale, seed);
        replay.warehouse();
        replay.district();
        replay.customer();
        history_total.fetch_add(replay.h_amount());
      }
    }
  });

  EXPECT_TRUE(w.orders_consistent());
  EXPECT_TRUE(w.money_consistent(history_total.load()));
}

}  // namespace

TEST(TpccMedley, SequentialAudit) {
  MedleyBackend b;
  sequential_audit(b);
}

TEST(TpccMedley, ConcurrentAudit) {
  MedleyBackend b;
  concurrent_audit(b, 4, 60);
}

TEST(TpccOneFile, SequentialAudit) {
  OneFileBackend b;
  sequential_audit(b);
}

TEST(TpccOneFile, ConcurrentAudit) {
  OneFileBackend b;
  concurrent_audit(b, 4, 60);
}

TEST(TpccTdsl, SequentialAudit) {
  TdslBackend b;
  sequential_audit(b);
}

TEST(TpccTdsl, ConcurrentAudit) {
  TdslBackend b;
  concurrent_audit(b, 4, 60);
}

TEST(TpccTxMontage, SequentialAudit) {
  std::string path = ::testing::TempDir() + "medley_tpcc_seq.img";
  std::remove(path.c_str());
  {
    medley::montage::PRegion region(path, 1u << 16);
    TxMontageBackend b(&region);
    sequential_audit(b);
  }
  std::remove(path.c_str());
}

TEST(TpccTxMontage, ConcurrentAuditWithAdvancer) {
  std::string path = ::testing::TempDir() + "medley_tpcc_conc.img";
  std::remove(path.c_str());
  {
    medley::montage::PRegion region(path, 1u << 17);
    TxMontageBackend b(&region);
    b.es.start_advancer(5);
    concurrent_audit(b, 4, 40);
    b.es.stop_advancer();
  }
  std::remove(path.c_str());
}

TEST(TpccTxMontage, StateRecoversAfterCrash) {
  // Run a loaded workload, sync, crash, recover, re-audit consistency.
  std::string path = ::testing::TempDir() + "medley_tpcc_crash.img";
  std::remove(path.c_str());
  const Scale scale = small_scale();
  std::uint64_t synced_orders = 0;
  {
    medley::montage::PRegion region(path, 1u << 16);
    TxMontageBackend b(&region);
    Workload<TxMontageBackend> w(b, scale);
    w.load();
    Generator gen(scale, 3);
    for (int i = 0; i < 20; i++) synced_orders += w.new_order(gen).commits;
    b.es.sync();
    for (int i = 0; i < 10; i++) w.new_order(gen);  // unsynced suffix
  }
  {
    medley::montage::PRegion region(path, 1u << 16);
    TxMontageBackend b(&region);
    auto recovered = b.es.recover();
    b.warehouse().recover_from(recovered);
    b.district().recover_from(recovered);
    b.customer().recover_from(recovered);
    b.stock().recover_from(recovered);
    b.item().recover_from(recovered);
    b.order().recover_from(recovered);
    b.neworder().recover_from(recovered);
    b.orderline().recover_from(recovered);
    b.history().recover_from(recovered);
    Workload<TxMontageBackend> w(b, scale);
    // The recovered state is the synced prefix: exactly synced_orders
    // orders, each internally complete.
    EXPECT_TRUE(w.orders_consistent());
    std::uint64_t orders = 0;
    for (std::uint64_t wh = 0; wh < scale.warehouses; wh++) {
      for (std::uint64_t d = 0; d < scale.districts_per_wh; d++) {
        orders += DistrictRow::unpack(
                      *b.district().get(district_key(wh, d)))
                      .next_o_id -
                  1;
      }
    }
    EXPECT_EQ(orders, synced_orders);
  }
  std::remove(path.c_str());
}

// TDSL-style transactional skiplist: singleton semantics, transactional
// composition with read-own-writes, commit-time validation, blocking
// commit under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "stm/tdsl_skiplist.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using Tdsl = medley::stm::TdslSkiplist<std::uint64_t, std::uint64_t>;

TEST(Tdsl, SingletonBasics) {
  Tdsl s;
  EXPECT_TRUE(s.insert(1, 10));
  EXPECT_FALSE(s.insert(1, 11));
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(s.remove(1), std::optional<std::uint64_t>(10));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.remove(1).has_value());
}

TEST(Tdsl, ManyKeysViaIndex) {
  Tdsl s;
  for (std::uint64_t k = 1; k <= 1000; k++) ASSERT_TRUE(s.insert(k, k * 3));
  for (std::uint64_t k = 1; k <= 1000; k++) {
    ASSERT_EQ(s.get(k), std::optional<std::uint64_t>(k * 3)) << k;
  }
  EXPECT_EQ(s.size_slow(), 1000u);
}

TEST(Tdsl, TxCommitAppliesAll) {
  Tdsl s;
  s.txBegin();
  EXPECT_TRUE(s.insert(1, 10));
  EXPECT_TRUE(s.insert(2, 20));
  ASSERT_TRUE(s.txCommit());
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
}

TEST(Tdsl, TxLocalAbortDiscardsAll) {
  Tdsl s;
  s.txBegin();
  s.insert(1, 10);
  s.insert(2, 20);
  s.txAbortLocal();
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size_slow(), 0u);
}

TEST(Tdsl, ReadOwnWritesInsideTx) {
  Tdsl s;
  s.txBegin();
  EXPECT_TRUE(s.insert(5, 50));
  EXPECT_EQ(s.get(5), std::optional<std::uint64_t>(50));
  EXPECT_FALSE(s.insert(5, 51));
  EXPECT_EQ(s.remove(5), std::optional<std::uint64_t>(50));
  EXPECT_FALSE(s.get(5).has_value());
  ASSERT_TRUE(s.txCommit());
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size_slow(), 0u);
}

TEST(Tdsl, RemoveThenInsertInOneTx) {
  Tdsl s;
  s.insert(3, 30);
  s.txBegin();
  EXPECT_EQ(s.remove(3), std::optional<std::uint64_t>(30));
  EXPECT_TRUE(s.insert(3, 31));
  ASSERT_TRUE(s.txCommit());
  EXPECT_EQ(s.get(3), std::optional<std::uint64_t>(31));
  EXPECT_EQ(s.size_slow(), 1u);
}

TEST(Tdsl, StaleReadFailsCommit) {
  Tdsl s;
  s.insert(1, 10);
  s.txBegin();
  ASSERT_TRUE(s.get(1).has_value());
  std::thread([&] { EXPECT_TRUE(s.remove(1).has_value()); }).join();
  EXPECT_FALSE(s.txCommit());  // version of the read node changed
}

TEST(Tdsl, AbsenceInvalidatedByConcurrentInsert) {
  Tdsl s;
  s.txBegin();
  EXPECT_FALSE(s.get(7).has_value());
  std::thread([&] { EXPECT_TRUE(s.insert(7, 70)); }).join();
  EXPECT_FALSE(s.txCommit());  // pred's version changed
}

TEST(Tdsl, ConcurrentChurnConservation) {
  Tdsl s;
  std::atomic<std::int64_t> net{0};
  medley::test::run_threads(6, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 9 + 4);
    for (int i = 0; i < 1000; i++) {
      auto k = rng.next_bounded(48) + 1;
      if (rng.next() & 1) {
        if (s.insert(k, k)) net.fetch_add(1);
      } else if (s.remove(k).has_value()) {
        net.fetch_sub(1);
      }
    }
  });
  EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(net.load()));
}

TEST(Tdsl, TransactionalTransfersConserveKeys) {
  Tdsl a, b;
  constexpr std::uint64_t kKeys = 24;
  for (std::uint64_t k = 1; k <= kKeys; k++) a.insert(k, k);
  medley::test::run_threads(4, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 31);
    for (int i = 0; i < 300; i++) {
      auto k = rng.next_bounded(kKeys) + 1;
      Tdsl& src = (rng.next() & 1) ? a : b;
      Tdsl& dst = (&src == &a) ? b : a;
      // Cross-structure transactions in TDSL require committing both
      // structures' write sets together; our reimplementation scopes a tx
      // to one structure (as the authors' library largely does), so the
      // move is two dependent singleton ops with a compensation path.
      auto v = src.remove(k);
      if (v && !dst.insert(k, *v)) src.insert(k, *v);
    }
  });
  for (std::uint64_t k = 1; k <= kKeys; k++) {
    int copies = (a.contains(k) ? 1 : 0) + (b.contains(k) ? 1 : 0);
    EXPECT_EQ(copies, 1) << k;
  }
}

TEST(Tdsl, HighContentionCommitsEventuallySucceed) {
  // Blocking commit with bounded spin: threads hammer the same keys in
  // transactions; every thread must finish (no deadlock/livelock) and net
  // effect must be coherent.
  Tdsl s;
  std::atomic<int> committed{0};
  medley::test::run_threads(6, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 17 + 8);
    for (int i = 0; i < 300; i++) {
      for (;;) {
        s.txBegin();
        auto k = rng.next_bounded(4) + 1;
        if (!s.contains(k)) s.insert(k, k);
        auto k2 = rng.next_bounded(4) + 1;
        s.remove(k2);
        if (s.txCommit()) {
          committed.fetch_add(1);
          break;
        }
      }
    }
  });
  EXPECT_EQ(committed.load(), 6 * 300);
  EXPECT_LE(s.size_slow(), 4u);
}

// txMontage persistent queue: FIFO semantics, transactional composition
// with persistent maps, and serial-ordered crash recovery.

#include <gtest/gtest.h>

#include <cstdio>

#include "montage/tx_queue.hpp"
#include "montage/txmontage.hpp"
#include "test_support.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::montage::EpochSys;
using medley::montage::PRegion;
using medley::montage::TxMontageHashTable;
using medley::montage::TxMontageQueue;

namespace {
std::string temp_region(const char* name) {
  std::string p = ::testing::TempDir() + "medley_" + name + ".img";
  std::remove(p.c_str());
  return p;
}
}  // namespace

TEST(TxMontageQueue, FifoBasics) {
  auto path = temp_region("pq_basic");
  PRegion region(path, 1024);
  TxManager mgr;
  EpochSys es(&region);
  es.attach(&mgr);
  TxMontageQueue q(&mgr, &es, 1);
  for (std::uint64_t i = 1; i <= 50; i++) q.enqueue(i * 3);
  for (std::uint64_t i = 1; i <= 50; i++) {
    ASSERT_EQ(q.dequeue(), std::optional<std::uint64_t>(i * 3));
  }
  EXPECT_FALSE(q.dequeue().has_value());
  std::remove(path.c_str());
}

TEST(TxMontageQueue, TxComposesWithPersistentMap) {
  auto path = temp_region("pq_compose");
  PRegion region(path, 1024);
  TxManager mgr;
  EpochSys es(&region);
  es.attach(&mgr);
  TxMontageQueue q(&mgr, &es, 1);
  TxMontageHashTable m(&mgr, &es, 2, 64);

  q.enqueue(7);
  medley::execute_tx(mgr, [&] {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    m.insert(*v, 1);
  });
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(m.contains(7));

  // Abort direction: dequeue + insert both roll back, payloads intact.
  q.enqueue(8);
  try {
    mgr.txBegin();
    auto v = q.dequeue();
    m.insert(*v, 1);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_EQ(q.size_slow(), 1u);
  EXPECT_FALSE(m.contains(8));
  std::remove(path.c_str());
}

TEST(TxMontageQueue, SyncedContentsSurviveCrashInOrder) {
  auto path = temp_region("pq_crash");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageQueue q(&mgr, &es, 1);
    for (std::uint64_t i = 1; i <= 10; i++) {
      medley::execute_tx(mgr, [&] { q.enqueue(i); });
    }
    medley::execute_tx(mgr, [&] { q.dequeue(); });  // consume "1"
    es.sync();
    medley::execute_tx(mgr, [&] { q.enqueue(99); });  // unsynced
  }
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageQueue q(&mgr, &es, 1);
    q.recover_from(recovered);
    // 2..10 survive (the dequeue of 1 was synced); 99 is lost.
    EXPECT_EQ(q.size_slow(), 9u);
    for (std::uint64_t i = 2; i <= 10; i++) {
      ASSERT_EQ(q.dequeue(), std::optional<std::uint64_t>(i)) << i;
    }
    EXPECT_FALSE(q.dequeue().has_value());
  }
  std::remove(path.c_str());
}

TEST(TxMontageQueue, UnsyncedDequeueResurrects) {
  auto path = temp_region("pq_resurrect");
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageQueue q(&mgr, &es, 1);
    medley::execute_tx(mgr, [&] { q.enqueue(42); });
    es.sync();
    medley::execute_tx(mgr, [&] { q.dequeue(); });  // unsynced removal
  }
  {
    PRegion region(path, 1024);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageQueue q(&mgr, &es, 1);
    q.recover_from(recovered);
    EXPECT_EQ(q.dequeue(), std::optional<std::uint64_t>(42));
  }
  std::remove(path.c_str());
}

TEST(TxMontageQueue, ConcurrentTransfersConserveAcrossCrash) {
  auto path = temp_region("pq_conc");
  constexpr std::uint64_t kElems = 24;
  {
    PRegion region(path, 4096);
    TxManager mgr;
    EpochSys es(&region);
    es.attach(&mgr);
    TxMontageQueue a(&mgr, &es, 1), b(&mgr, &es, 2);
    for (std::uint64_t i = 1; i <= kElems; i++) {
      medley::execute_tx(mgr, [&] { a.enqueue(i); });
    }
    es.sync();
    es.start_advancer(2);
    medley::test::run_threads(4, [&](int t) {
      medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 9);
      for (int i = 0; i < 200; i++) {
        TxMontageQueue& src = (rng.next() & 1) ? a : b;
        TxMontageQueue& dst = (&src == &a) ? b : a;
        try {
          mgr.txBegin();
          auto v = src.dequeue();
          if (v) dst.enqueue(*v);
          mgr.txEnd();
        } catch (const TransactionAborted&) {
        }
      }
    });
    es.stop_advancer();
  }
  {
    PRegion region(path, 4096);
    TxManager mgr;
    EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    TxMontageQueue a(&mgr, &es, 1), b(&mgr, &es, 2);
    a.recover_from(recovered);
    b.recover_from(recovered);
    // Transfers were atomic: at the recovered boundary every element
    // lives in exactly one queue.
    std::vector<int> seen(kElems + 1, 0);
    while (auto v = a.dequeue()) seen[*v]++;
    while (auto v = b.dequeue()) seen[*v]++;
    for (std::uint64_t i = 1; i <= kElems; i++) {
      EXPECT_EQ(seen[i], 1) << "element " << i;
    }
  }
  std::remove(path.c_str());
}

// Michael hash table: sequential map semantics, NBTC transactional
// composition, rollback, read-own-writes, validation, concurrent stress.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "ds/michael_hashtable.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::ds::MichaelHashTable;
using Map = MichaelHashTable<std::uint64_t, std::uint64_t>;

/// All keys collide into one bucket: exercises the ordered-list machinery.
struct DegenerateHash {
  std::size_t operator()(std::uint64_t) const { return 0; }
};
using ListMap = MichaelHashTable<std::uint64_t, std::uint64_t, DegenerateHash>;

TEST(HashTable, InsertGetRoundTrip) {
  TxManager mgr;
  Map m(&mgr, 64);
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(100));
  EXPECT_FALSE(m.get(2).has_value());
}

TEST(HashTable, InsertDuplicateFails) {
  TxManager mgr;
  Map m(&mgr, 64);
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_FALSE(m.insert(1, 200));
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(100));
}

TEST(HashTable, RemovePresentReturnsValue) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(1, 100);
  EXPECT_EQ(m.remove(1), std::optional<std::uint64_t>(100));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.remove(1).has_value());
}

TEST(HashTable, PutInsertsThenReplaces) {
  TxManager mgr;
  Map m(&mgr, 64);
  EXPECT_FALSE(m.put(5, 50).has_value());
  EXPECT_EQ(m.put(5, 51), std::optional<std::uint64_t>(50));
  EXPECT_EQ(m.get(5), std::optional<std::uint64_t>(51));
  EXPECT_EQ(m.size_slow(), 1u);
}

TEST(HashTable, ContainsTracksMembership) {
  TxManager mgr;
  Map m(&mgr, 64);
  EXPECT_FALSE(m.contains(9));
  m.insert(9, 1);
  EXPECT_TRUE(m.contains(9));
  m.remove(9);
  EXPECT_FALSE(m.contains(9));
}

TEST(HashTable, ManyKeysAllRetrievable) {
  TxManager mgr;
  Map m(&mgr, 256);
  for (std::uint64_t k = 0; k < 2000; k++) ASSERT_TRUE(m.insert(k, k * 7));
  for (std::uint64_t k = 0; k < 2000; k++) {
    ASSERT_EQ(m.get(k), std::optional<std::uint64_t>(k * 7));
  }
  EXPECT_EQ(m.size_slow(), 2000u);
}

TEST(HashTable, DegenerateBucketKeepsSortedSemantics) {
  TxManager mgr;
  ListMap m(&mgr, 8);
  // Insert out of order into a single chain.
  for (std::uint64_t k : {5u, 1u, 9u, 3u, 7u, 2u, 8u, 4u, 6u, 0u}) {
    ASSERT_TRUE(m.insert(k, k));
  }
  for (std::uint64_t k = 0; k < 10; k++) EXPECT_TRUE(m.contains(k));
  auto keys = m.keys_slow();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys.size(), 10u);
  for (std::uint64_t k = 0; k < 10; k++) EXPECT_EQ(keys[k], k);
  // Remove alternating keys; chain must stay coherent.
  for (std::uint64_t k = 0; k < 10; k += 2) {
    EXPECT_TRUE(m.remove(k).has_value());
  }
  EXPECT_EQ(m.size_slow(), 5u);
  for (std::uint64_t k = 1; k < 10; k += 2) EXPECT_TRUE(m.contains(k));
}

// ---------------------------------------------------------------------
// Transactional semantics.

TEST(HashTableTx, TwoInsertsCommitTogether) {
  TxManager mgr;
  Map m(&mgr, 64);
  mgr.txBegin();
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  mgr.txEnd();
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.get(2), std::optional<std::uint64_t>(20));
}

TEST(HashTableTx, AbortRollsBackInserts) {
  TxManager mgr;
  Map m(&mgr, 64);
  try {
    mgr.txBegin();
    m.insert(1, 10);
    m.insert(2, 20);
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.size_slow(), 0u);
}

TEST(HashTableTx, AbortRollsBackRemove) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(1, 10);
  try {
    mgr.txBegin();
    EXPECT_EQ(m.remove(1), std::optional<std::uint64_t>(10));
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
}

TEST(HashTableTx, AbortRollsBackPutReplace) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(1, 10);
  try {
    mgr.txBegin();
    EXPECT_EQ(m.put(1, 99), std::optional<std::uint64_t>(10));
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.size_slow(), 1u);
}

TEST(HashTableTx, ReadOwnInsert) {
  TxManager mgr;
  Map m(&mgr, 64);
  mgr.txBegin();
  m.insert(7, 70);
  EXPECT_EQ(m.get(7), std::optional<std::uint64_t>(70));  // speculative read
  EXPECT_FALSE(m.insert(7, 71));  // own insert visible to own ops
  mgr.txEnd();
  EXPECT_EQ(m.get(7), std::optional<std::uint64_t>(70));
}

TEST(HashTableTx, ReadOwnRemove) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(7, 70);
  mgr.txBegin();
  EXPECT_EQ(m.remove(7), std::optional<std::uint64_t>(70));
  EXPECT_FALSE(m.get(7).has_value());  // own remove visible to own read
  mgr.txEnd();
  EXPECT_FALSE(m.contains(7));
}

TEST(HashTableTx, InsertThenRemoveSameTxNetsNothing) {
  TxManager mgr;
  Map m(&mgr, 64);
  mgr.txBegin();
  EXPECT_TRUE(m.insert(3, 30));
  EXPECT_EQ(m.remove(3), std::optional<std::uint64_t>(30));
  mgr.txEnd();
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.size_slow(), 0u);
}

TEST(HashTableTx, RemoveThenReinsertSameTx) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(3, 30);
  mgr.txBegin();
  m.remove(3);
  EXPECT_TRUE(m.insert(3, 31));
  mgr.txEnd();
  EXPECT_EQ(m.get(3), std::optional<std::uint64_t>(31));
  EXPECT_EQ(m.size_slow(), 1u);
}

TEST(HashTableTx, Fig3TransferBetweenTables) {
  // The paper's running example: move value v from account a1 in ht1 to
  // account a2 in ht2, atomically.
  TxManager mgr;
  Map ht1(&mgr, 64), ht2(&mgr, 64);
  ht1.insert(1, 100);
  ht2.insert(2, 5);
  medley::execute_tx(mgr, [&] {
    auto v1 = ht1.get(1);
    auto v2 = ht2.get(2);
    if (!v1 || *v1 < 30) mgr.txAbort();
    ht1.put(1, *v1 - 30);
    ht2.put(2, 30 + v2.value_or(0));
  });
  EXPECT_EQ(ht1.get(1), std::optional<std::uint64_t>(70));
  EXPECT_EQ(ht2.get(2), std::optional<std::uint64_t>(35));
}

TEST(HashTableTx, StaleReadAbortsAtCommit) {
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(1, 10);
  bool aborted = false;
  try {
    mgr.txBegin();
    auto v = m.get(1);
    ASSERT_TRUE(v.has_value());
    // A peer removes key 1 and commits before we do.
    std::thread([&] { EXPECT_TRUE(m.remove(1).has_value()); }).join();
    mgr.txEnd();
  } catch (const TransactionAborted&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
}

TEST(HashTableTx, AbsenceReadAbortsWhenKeyAppears) {
  TxManager mgr;
  Map m(&mgr, 64);
  bool aborted = false;
  try {
    mgr.txBegin();
    EXPECT_FALSE(m.get(1).has_value());
    std::thread([&] { EXPECT_TRUE(m.insert(1, 11)); }).join();
    mgr.txEnd();
  } catch (const TransactionAborted&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
}

// ---------------------------------------------------------------------
// Concurrency.

TEST(HashTableConc, DisjointInsertsAllLand) {
  TxManager mgr;
  Map m(&mgr, 512);
  constexpr int kThreads = 8, kPer = 500;
  medley::test::run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPer; i++) {
      auto k = static_cast<std::uint64_t>(t) * kPer + static_cast<std::uint64_t>(i);
      ASSERT_TRUE(m.insert(k, k));
    }
  });
  EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(kThreads * kPer));
  for (std::uint64_t k = 0; k < kThreads * kPer; k++) {
    ASSERT_EQ(m.get(k), std::optional<std::uint64_t>(k));
  }
}

TEST(HashTableConc, InsertRemoveChurnOnSharedKeys) {
  TxManager mgr;
  ListMap m(&mgr, 4);  // single chain: maximal contention
  constexpr int kThreads = 6, kOps = 3000, kKeys = 16;
  std::atomic<int> inserted{0}, removed{0};
  medley::test::run_threads(kThreads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
    for (int i = 0; i < kOps; i++) {
      auto k = rng.next_bounded(kKeys);
      if (rng.next() & 1) {
        if (m.insert(k, k)) inserted.fetch_add(1);
      } else {
        if (m.remove(k).has_value()) removed.fetch_add(1);
      }
    }
  });
  // Conservation: live = inserted - removed.
  EXPECT_EQ(m.size_slow(),
            static_cast<std::size_t>(inserted.load() - removed.load()));
  // Every live key retrievable, no duplicates.
  auto keys = m.keys_slow();
  std::set<std::uint64_t> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size());
}

TEST(HashTableConc, TransactionalTransfersConserveTotal) {
  // Bank invariant across two tables under contention; the flagship
  // strict-serializability property test.
  TxManager mgr;
  Map a(&mgr, 64), b(&mgr, 64);
  constexpr std::uint64_t kAccounts = 8, kInitial = 1000;
  for (std::uint64_t k = 0; k < kAccounts; k++) {
    a.insert(k, kInitial);
    b.insert(k, kInitial);
  }
  constexpr int kThreads = 4, kTx = 1500;
  medley::test::run_threads(kThreads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 7);
    for (int i = 0; i < kTx; i++) {
      auto from = rng.next_bounded(kAccounts);
      auto to = rng.next_bounded(kAccounts);
      Map& src = (rng.next() & 1) ? a : b;
      Map& dst = (&src == &a) ? b : a;
      medley::execute_tx(mgr, [&] {
        auto v1 = src.get(from);
        auto v2 = dst.get(to);
        if (!v1 || *v1 == 0) mgr.txAbort();
        src.put(from, *v1 - 1);
        dst.put(to, v2.value_or(0) + 1);
      });
    }
  });
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < kAccounts; k++) {
    total += a.get(k).value_or(0) + b.get(k).value_or(0);
  }
  EXPECT_EQ(total, 2 * kAccounts * kInitial);
}

// Parameterized sweep: the conservation invariant must hold across thread
// counts and table shapes.
class HashTableSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HashTableSweep, MixedOpsKeepStructureCoherent) {
  const int threads = std::get<0>(GetParam());
  const int buckets = std::get<1>(GetParam());
  TxManager mgr;
  Map m(&mgr, static_cast<std::size_t>(buckets));
  constexpr int kOps = 1200;
  constexpr std::uint64_t kKeys = 64;
  medley::test::run_threads(threads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 1);
    for (int i = 0; i < kOps; i++) {
      auto k = rng.next_bounded(kKeys);
      switch (rng.next_bounded(4)) {
        case 0: m.insert(k, k); break;
        case 1: m.remove(k); break;
        case 2: m.put(k, k + 1); break;
        default: m.get(k); break;
      }
    }
  });
  auto keys = m.keys_slow();
  std::set<std::uint64_t> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size());  // no duplicate keys survive
  for (auto k : uniq) EXPECT_LT(k, kKeys);
  EXPECT_EQ(m.size_slow(), keys.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HashTableSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 16, 256)));

// ---------------------------------------------------------------------
// Harness-driven oracle checks (tests/harness/): exact sequential-spec
// replay under a deterministic interleaving, then sound invariants over a
// genuinely concurrent history.

namespace h = medley::test::harness;

TEST(HashTableOracle, DeterministicInterleavingMatchesStdMap) {
  TxManager mgr;
  Map m(&mgr, 32);
  h::Recorder rec;
  h::RecordedMap<Map> rm(&m, &rec);
  h::ScheduleDriver d;
  for (int t = 0; t < 3; t++) {
    std::vector<h::ScheduleDriver::Step> steps;
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 11);
    for (int i = 0; i < 60; i++) {
      const auto k = rng.next_bounded(12);
      const auto v = rng.next();
      switch (rng.next_bounded(5)) {
        case 0: steps.push_back([&rm, t, k, v] { rm.insert(t, k, v); }); break;
        case 1: steps.push_back([&rm, t, k] { rm.remove(t, k); }); break;
        case 2: steps.push_back([&rm, t, k, v] { rm.put(t, k, v); }); break;
        case 3: steps.push_back([&rm, t, k] { rm.contains(t, k); }); break;
        default: steps.push_back([&rm, t, k] { rm.get(t, k); }); break;
      }
    }
    d.add_thread(std::move(steps));
  }
  d.run(d.shuffled(2026));
  EXPECT_TRUE(h::check_sequential_map(rec.history()));
}

TEST(HashTableOracle, ConcurrentHistorySatisfiesSetInvariants) {
  TxManager mgr;
  ListMap m(&mgr, 4);  // degenerate buckets: maximal interleaving
  std::map<std::uint64_t, std::uint64_t> initial;
  for (std::uint64_t k = 0; k < 8; k++) {
    m.insert(k, k + 5000);
    initial[k] = k + 5000;
  }
  h::Recorder rec;
  h::RecordedMap<ListMap> rm(&m, &rec);
  h::run_seeded(6, 42, [&](int t, medley::util::Xoshiro256& rng) {
    for (int i = 0; i < 1500; i++) {
      const auto k = rng.next_bounded(24);
      const auto v = (static_cast<std::uint64_t>(t) << 32) |
                     static_cast<std::uint64_t>(i);
      switch (rng.next_bounded(4)) {
        case 0: rm.insert(t, k, v); break;
        case 1: rm.remove(t, k); break;
        case 2: rm.put(t, k, v); break;
        default: rm.get(t, k); break;
      }
    }
  });
  EXPECT_TRUE(
      h::check_set_history(rec.history(), initial, h::observed_state(m)));
}

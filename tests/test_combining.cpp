// Flat-combining group commit (core/combiner.hpp + StoreConfig::combining).
// Contracts under test:
//   C1  semantics: combined put/del/rmw return and apply exactly what the
//       eager path would — a batch IS one transaction (all-or-nothing),
//       and every publishing thread gets ITS op's result;
//   C2  handoff: a waiter whose op was executed by another thread's batch
//       completes without ever taking the combiner lock, under both
//       handoff policies and under churn;
//   C3  invariants: the store's I1-I3 (primary/secondary/feed mutual
//       consistency) hold with combining on, including at 8 threads;
//   C4  billing: N combined ops read as exactly N logical ops in
//       StoreStats and the metrics registry (the batch bills its aborts,
//       each submitter its commit), and the batch-size histogram is
//       visible in dump_metrics();
//   C5  validation: the combining knobs obey the feed_drain_per_tx
//       contract (zero throws, over-cap clamps, config() reports the
//       effective values);
//   C6  async: TxFuture pipelining — deferred resolution, slot-exhaustion
//       fallback to eager execution, error propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "store/range_sharded_store.hpp"
#include "store/sharded_store.hpp"
#include "store/store.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxExecutor;
using medley::TxManager;
using medley::TxPolicy;
using medley::core::CombinerHandoff;
using medley::store::MedleyStore;
using medley::store::RangeShardedMedleyStore;
using medley::store::ShardedMedleyStore;
using medley::store::StoreConfig;
using Store = MedleyStore<std::uint64_t, std::uint64_t>;
using Sharded = ShardedMedleyStore<std::uint64_t, std::uint64_t>;

namespace h = medley::test::harness;

namespace {

StoreConfig comb_cfg(std::size_t buckets = 128,
                     CombinerHandoff handoff = CombinerHandoff::kSticky) {
  StoreConfig cfg;
  cfg.buckets = buckets;
  cfg.combining.enabled = true;
  cfg.combining.handoff = handoff;
  return cfg;
}

/// I1 checked quiescently (the test_store helper, local to each TU).
template <typename S>
::testing::AssertionResult mutually_consistent(S& store) {
  auto snapshot = store.range(0, ~0ULL);
  for (const auto& [k, v] : snapshot) {
    auto p = store.get(k);
    if (!p) {
      return ::testing::AssertionFailure()
             << "key " << k << " in secondary but not primary";
    }
    if (*p != v) {
      return ::testing::AssertionFailure()
             << "key " << k << ": primary=" << *p << " secondary=" << v;
    }
  }
  const std::size_t psize = store.primary().size_slow();
  if (psize != snapshot.size()) {
    return ::testing::AssertionFailure()
           << "primary holds " << psize << " keys, secondary "
           << snapshot.size();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace

// ---- C5: StoreConfig::combining validation --------------------------------

TEST(CombiningConfig, ZeroSlotsThrows) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg();
  cfg.combining.slots = 0;
  EXPECT_THROW(Store(&mgr, cfg), std::invalid_argument);
  EXPECT_THROW((Sharded(2, cfg)), std::invalid_argument);
}

TEST(CombiningConfig, ZeroMaxBatchThrows) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg();
  cfg.combining.max_batch = 0;
  EXPECT_THROW(Store(&mgr, cfg), std::invalid_argument);
}

TEST(CombiningConfig, OverCapKnobsClampWithContract) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg();
  cfg.combining.slots = medley::core::kMaxCombinerSlots * 4;
  cfg.combining.max_batch = medley::core::kMaxCombinedBatch * 100;
  Store s(&mgr, cfg);
  EXPECT_EQ(s.config().combining.slots, medley::core::kMaxCombinerSlots)
      << "config() must report the clamped, effective slot count";
  EXPECT_EQ(s.config().combining.max_batch, medley::core::kMaxCombinedBatch)
      << "config() must report the clamped, effective batch cap";

  // max_batch can also never exceed the slot count.
  StoreConfig tiny = comb_cfg();
  tiny.combining.slots = 4;
  tiny.combining.max_batch = 32;
  TxManager mgr2;
  Store t(&mgr2, tiny);
  EXPECT_EQ(t.config().combining.max_batch, 4u);

  // Shards inherit the validated copy.
  Sharded sh(2, cfg);
  EXPECT_EQ(sh.shard(0).config().combining.slots,
            medley::core::kMaxCombinerSlots);
  EXPECT_EQ(sh.shard(0).config().combining.max_batch,
            medley::core::kMaxCombinedBatch);

  // Combining off: the knobs are inert, nothing throws.
  StoreConfig off;
  off.combining.slots = 0;
  TxManager mgr3;
  Store u(&mgr3, off);
  EXPECT_EQ(u.combined_batches(), 0u);
}

// ---- C1: semantics --------------------------------------------------------

TEST(Combining, SingleThreadSemanticsMatchOracle) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(64);
  cfg.metrics = true;
  cfg.metrics_sample_shift = 0;
  Store s(&mgr, cfg);
  std::map<std::uint64_t, std::uint64_t> oracle;
  medley::util::Xoshiro256 rng(7);
  std::uint64_t mutations = 0;

  for (int i = 0; i < 600; i++) {
    const std::uint64_t k = rng.next_bounded(32);
    switch (rng.next_bounded(3)) {
      case 0: {
        const std::uint64_t v = rng.next_bounded(1u << 20);
        auto it = oracle.find(k);
        std::optional<std::uint64_t> want =
            it == oracle.end() ? std::nullopt
                               : std::optional<std::uint64_t>(it->second);
        EXPECT_EQ(s.put(k, v), want);
        oracle[k] = v;
        mutations++;
        break;
      }
      case 1: {
        auto it = oracle.find(k);
        std::optional<std::uint64_t> want =
            it == oracle.end() ? std::nullopt
                               : std::optional<std::uint64_t>(it->second);
        EXPECT_EQ(s.del(k), want);
        if (it != oracle.end()) oracle.erase(it);
        mutations++;
        break;
      }
      default: {
        auto got = s.read_modify_write(
            k, [](const std::optional<std::uint64_t>& c) {
              return std::optional<std::uint64_t>(c.value_or(0) + 1);
            });
        auto it = oracle.find(k);
        const std::uint64_t want =
            (it == oracle.end() ? 0 : it->second) + 1;
        EXPECT_EQ(got, std::optional<std::uint64_t>(want));
        oracle[k] = want;
        mutations++;
        break;
      }
    }
  }
  // Single-threaded, every mutation self-combined as a batch of one —
  // still N logical ops, each billing exactly one commit (no reads ran
  // yet, so the commit count is exactly the mutation count).
  EXPECT_EQ(s.combined_ops(), mutations);
  EXPECT_EQ(s.combined_batches(), mutations);
  EXPECT_EQ(s.stats().commits, mutations);
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(s.get(k), std::optional<std::uint64_t>(v));
  }
  EXPECT_TRUE(mutually_consistent(s));
  // C4: the batch-size histogram is part of the exposition.
  const std::string prom = s.dump_metrics();
  EXPECT_NE(prom.find("medley_store_combined_batch"), std::string::npos);
  EXPECT_NE(prom.find("medley_store_combined_ops_total"), std::string::npos);
}

TEST(Combining, RmwCallbackExceptionFailsOnlyItsOp) {
  TxManager mgr;
  Store s(&mgr, comb_cfg(64));
  s.put(5, 50);

  // Pipeline a put into the same (future) batch, then throw from a sync
  // rmw: the rmw's op fails, the batch (and the piggybacked put) commits.
  auto fut = s.async_put(6, 60);
  EXPECT_THROW(s.read_modify_write(
                   5,
                   [](const std::optional<std::uint64_t>&)
                       -> std::optional<std::uint64_t> {
                     throw std::runtime_error("user callback");
                   }),
               std::runtime_error);
  EXPECT_FALSE(fut.get().has_value());  // 6 was absent
  EXPECT_EQ(s.get(5), std::optional<std::uint64_t>(50)) << "failed rmw leaked";
  EXPECT_EQ(s.get(6), std::optional<std::uint64_t>(60));
  EXPECT_TRUE(mutually_consistent(s));
}

// ---- C1/C3: batch atomicity under a pinned conflict -----------------------

TEST(Combining, ConflictMidBatchRetriesWholeBatch) {
  // Thread A's combined rmw parks inside its user callback (handshake)
  // while thread B commits a conflicting write through a second manager
  // of the same domain (bypassing the combiner). A's batch transaction
  // must abort and re-run AS A WHOLE, and the retried rmw must see B's
  // value — the combined op linearizes after the conflicting commit.
  auto domain = std::make_shared<medley::core::TxDomain>();
  TxManager mgr(domain);
  TxManager mgr2(domain);
  Store s(&mgr, comb_cfg(64));
  constexpr std::uint64_t kKey = 3;
  std::atomic<bool> in_callback{false};
  std::atomic<bool> b_committed{false};

  std::thread b([&] {
    while (!in_callback.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    medley::execute_tx(mgr2, [&] { s.put(kKey, 100); });
    b_committed.store(true, std::memory_order_release);
  });

  auto got = s.read_modify_write(
      kKey, [&](const std::optional<std::uint64_t>& cur) {
        in_callback.store(true, std::memory_order_release);
        while (!b_committed.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        return std::optional<std::uint64_t>(cur.value_or(0) + 1);
      });
  b.join();

  // First attempt read kKey as absent and lost to B; the retry read 100.
  EXPECT_EQ(got, std::optional<std::uint64_t>(101));
  EXPECT_EQ(s.get(kKey), std::optional<std::uint64_t>(101));
  const auto st = s.stats();
  EXPECT_GE(st.conflict_aborts + st.validation_aborts, 1u)
      << "the batch transaction never observed the conflict";
  // Feed order == serialization order: B's 100 strictly before A's 101.
  auto feed = s.poll_feed(16);
  ASSERT_EQ(feed.size(), 2u);
  EXPECT_EQ(feed[0].val, 100u);
  EXPECT_EQ(feed[1].val, 101u);
  EXPECT_TRUE(mutually_consistent(s));
}

TEST(Combining, BoundedPolicyAbortsWholeBatchAllOrNothing) {
  // Same handshake, but the store's policy grants ONE attempt: the batch
  // — a parked rmw plus two piggybacked async puts — terminally aborts,
  // and ALL THREE ops must fail together with nothing visible.
  auto domain = std::make_shared<medley::core::TxDomain>();
  TxManager mgr(domain);
  TxManager mgr2(domain);
  StoreConfig cfg = comb_cfg(64);
  cfg.tx_policy = TxPolicy::bounded(1);
  Store s(&mgr, cfg);
  constexpr std::uint64_t kKey = 3;
  std::atomic<bool> in_callback{false};
  std::atomic<bool> b_committed{false};

  std::thread b([&] {
    while (!in_callback.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    medley::execute_tx(mgr2, [&] { s.put(kKey, 100); });
    b_committed.store(true, std::memory_order_release);
  });

  auto f1 = s.async_put(70, 7);
  auto f2 = s.async_put(71, 7);
  EXPECT_THROW(
      s.read_modify_write(kKey,
                          [&](const std::optional<std::uint64_t>& cur) {
                            in_callback.store(true,
                                              std::memory_order_release);
                            while (!b_committed.load(
                                std::memory_order_acquire)) {
                              std::this_thread::yield();
                            }
                            return std::optional<std::uint64_t>(
                                cur.value_or(0) + 1);
                          }),
      TransactionAborted);
  b.join();
  EXPECT_THROW(f1.get(), TransactionAborted);
  EXPECT_THROW(f2.get(), TransactionAborted);

  // All-or-nothing: only B's write exists.
  EXPECT_EQ(s.get(kKey), std::optional<std::uint64_t>(100));
  EXPECT_FALSE(s.get(70).has_value());
  EXPECT_FALSE(s.get(71).has_value());
  auto feed = s.poll_feed(16);
  ASSERT_EQ(feed.size(), 1u);
  EXPECT_EQ(feed[0].val, 100u);
  EXPECT_TRUE(mutually_consistent(s));
}

// ---- C2: handoff ----------------------------------------------------------

TEST(Combining, SchedulePinnedHandoffDeliversResultWithoutLock) {
  // t0 publishes asynchronously (no lock taken); t1's synchronous put
  // becomes the combiner and drains BOTH ops as one batch; t0 then
  // harvests a result it never computed — the handoff. Deterministic via
  // the schedule driver (each step is self-sufficient: t1's sync put
  // combines its own batch, so no step blocks on another thread's step).
  TxManager mgr;
  StoreConfig cfg = comb_cfg(64);
  cfg.trace_capacity = 256;
  Store s(&mgr, cfg);
  Store::AsyncResult fut;
  std::optional<std::uint64_t> harvested;

  h::ScheduleDriver d;
  d.add_thread({
      [&] { fut = s.async_put(1, 10); },
      [&] { harvested = fut.get().value_or(99); },
  });
  d.add_thread({
      [&] { s.put(2, 20); },
  });
  d.run({0, 1, 0});

  EXPECT_EQ(harvested, std::optional<std::uint64_t>(99))
      << "async fresh insert must report no previous value";
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(s.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(s.combined_batches(), 1u) << "both ops must share one batch";
  EXPECT_EQ(s.combined_ops(), 2u);

  // Trace evidence: one combine_batch of 2, and a combiner_handoff for
  // t0's harvested op.
  bool saw_batch2 = false, saw_handoff = false;
  for (const auto& e : s.trace_ring()->dump()) {
    if (e.kind == medley::obs::TraceEvent::kCombineBatch && e.aux == 2) {
      saw_batch2 = true;
    }
    if (e.kind == medley::obs::TraceEvent::kCombinerHandoff) {
      saw_handoff = true;
    }
  }
  EXPECT_TRUE(saw_batch2);
  EXPECT_TRUE(saw_handoff);
}

TEST(Combining, HandoffUnderChurnBothPolicies) {
  for (const auto handoff :
       {CombinerHandoff::kSticky, CombinerHandoff::kRotate}) {
    TxManager mgr;
    StoreConfig cfg = comb_cfg(128, handoff);
    cfg.trace_capacity = 1024;
    Store s(&mgr, cfg);
    constexpr int kThreads = 8;
    constexpr int kOps = 400;
    constexpr std::uint64_t kKeys = 16;  // hot: force real batching

    h::run_seeded(kThreads, 1234 + static_cast<int>(handoff),
                  [&](int t, medley::util::Xoshiro256& rng) {
                    (void)t;
                    for (int i = 0; i < kOps; i++) {
                      const std::uint64_t k = rng.next_bounded(kKeys);
                      if (rng.next_bounded(2) == 0) {
                        s.put(k, rng.next_bounded(1u << 16));
                      } else {
                        s.read_modify_write(
                            k, [](const std::optional<std::uint64_t>& c) {
                              return std::optional<std::uint64_t>(
                                  c.value_or(0) + 1);
                            });
                      }
                    }
                  });

    // Every mutation went through the combiner and completed: exactly
    // N logical commits (C4), and since batches can hold several ops,
    // at most as many batches as ops.
    const std::uint64_t total = kThreads * kOps;
    EXPECT_EQ(s.combined_ops(), total);
    EXPECT_LE(s.combined_batches(), total);
    EXPECT_GT(s.combined_batches(), 0u);
    EXPECT_EQ(s.stats().commits, total);
    EXPECT_EQ(s.stats().feed_pushed, total);
    bool saw_batch = false;
    for (const auto& e : s.trace_ring()->dump()) {
      if (e.kind == medley::obs::TraceEvent::kCombineBatch) saw_batch = true;
    }
    EXPECT_TRUE(saw_batch);
    EXPECT_TRUE(mutually_consistent(s));
  }
}

// ---- C3: the store invariants at 8 threads with combining on --------------

TEST(Combining, MixedWorkloadMutualConsistency8Threads) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(128);
  cfg.metrics = true;
  Store s(&mgr, cfg);
  constexpr std::uint64_t kKeys = 48;
  constexpr int kOps = 700;
  std::atomic<bool> torn{false};
  std::vector<medley::store::FeedEntry<std::uint64_t, std::uint64_t>> log;

  h::run_seeded(8, 4242, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 5) {  // mutators, combined sync + async pipelining
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        switch (rng.next_bounded(4)) {
          case 0:
            s.put(k, rng.next_bounded(1u << 20));
            break;
          case 1:
            s.del(k);
            break;
          case 2:
            s.read_modify_write(k, [](const std::optional<std::uint64_t>& c) {
              return std::optional<std::uint64_t>(c.value_or(0) + 1);
            });
            break;
          default: {  // submit a pipelined pair, then harvest both
            auto f1 = s.async_put(k, k * 3);
            auto f2 = s.async_put((k + 7) % kKeys, k * 3);
            f1.get();
            f2.get();
            i++;  // two logical ops
            break;
          }
        }
      }
    } else if (t == 7) {  // feed consumer
      for (int i = 0; i < kOps; i++) {
        auto batch = s.poll_feed(8);
        log.insert(log.end(), batch.begin(), batch.end());
      }
    } else {  // readers: committed cross-index snapshots (I3)
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        std::optional<std::uint64_t> p;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> r;
        medley::execute_tx(mgr, [&] {
          p = s.get(k);
          r = s.range(k, k);
        });
        const bool in_secondary = !r.empty();
        if (p.has_value() != in_secondary) torn.store(true);
        if (p && in_secondary && *p != r[0].second) torn.store(true);
        auto window = s.scan(k, 8);
        for (std::size_t j = 1; j < window.size(); j++) {
          if (!(window[j - 1].first < window[j].first)) torn.store(true);
        }
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed snapshot saw torn indexes";
  EXPECT_TRUE(mutually_consistent(s));

  // I2 at scale: polled prefix + final drain replays to the primary.
  for (;;) {
    auto batch = s.poll_feed(64);
    if (batch.empty()) break;
    log.insert(log.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(s.feed_depth(), 0u);
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(log, replayed);
  std::map<std::uint64_t, std::uint64_t> primary_now;
  for (const auto& [k, v] : s.range(0, ~0ULL)) primary_now[k] = v;
  EXPECT_EQ(replayed, primary_now);

  const auto st = s.stats();
  EXPECT_GT(st.commits, 0u);
  EXPECT_EQ(st.feed_pushed, log.size());
  EXPECT_EQ(st.feed_polled, log.size());
  EXPECT_GT(s.combined_ops(), 0u);
}

// ---- C4: billing exactness ------------------------------------------------

TEST(Combining, StatsBillNCombinedOpsAsNLogicalOps) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(256);
  cfg.metrics = true;
  cfg.metrics_sample_shift = 0;
  Store s(&mgr, cfg);
  constexpr int kThreads = 4;
  constexpr int kOps = 500;

  h::run_seeded(kThreads, 99, [&](int t, medley::util::Xoshiro256& rng) {
    for (int i = 0; i < kOps; i++) {
      s.put(static_cast<std::uint64_t>(t) * kOps + i, rng.next());
    }
  });

  constexpr std::uint64_t total = kThreads * kOps;
  const auto st = s.stats();
  EXPECT_EQ(st.commits, total) << "each combined op bills exactly 1 commit";
  EXPECT_EQ(st.feed_pushed, total);
  EXPECT_EQ(st.key_count(), total);
  EXPECT_EQ(s.combined_ops(), total)
      << "every top-level mutation routes through the combiner";
  EXPECT_LE(s.combined_batches(), s.combined_ops());

  // Registry view agrees: ops_total{op="put"} == N, combined_ops_total
  // == N (batches themselves never inflate the logical op count).
  const std::string json = s.dump_metrics_json();
  EXPECT_NE(json.find("medley_store_combined_ops_total"), std::string::npos);
  const std::string prom = s.dump_metrics();
  EXPECT_NE(
      prom.find("medley_store_ops_total{op=\"put\"} " + std::to_string(total)),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("medley_store_combined_ops_total " +
                      std::to_string(total)),
            std::string::npos)
      << prom;
}

// ---- C6: async futures ----------------------------------------------------

TEST(Combining, ExecutorSubmitIsDeferredAndPropagatesErrors) {
  TxManager mgr;
  TxExecutor ex;
  std::atomic<int> runs{0};

  auto fut = ex.submit(mgr, [&] {
    runs.fetch_add(1);
    return 42;
  });
  EXPECT_EQ(runs.load(), 0) << "bare-executor submit is lazy";
  auto res = fut.get();
  EXPECT_EQ(runs.load(), 1);
  ASSERT_TRUE(res.committed());
  EXPECT_EQ(res.value, std::optional<int>(42));

  auto bad = ex.submit(mgr, [&]() -> int {
    throw std::runtime_error("body failed");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);

  medley::TxFuture<int> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.get(), std::logic_error);
}

TEST(Combining, AsyncSlotExhaustionFallsBackToEager) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(64);
  cfg.combining.slots = 2;  // max_batch clamps to 2 as well
  Store s(&mgr, cfg);
  ASSERT_EQ(s.config().combining.max_batch, 2u);

  // Two futures park both slots; the third submission must execute
  // eagerly (already-resolved future) instead of deadlocking.
  auto f1 = s.async_put(1, 10);
  auto f2 = s.async_put(2, 20);
  auto f3 = s.async_put(3, 30);
  EXPECT_TRUE(f3.ready());
  EXPECT_EQ(s.get(3), std::optional<std::uint64_t>(30))
      << "slot-exhausted submission executes eagerly";

  // Harvesting drives the parked batch (a lone thread must be able to
  // complete its own pipeline).
  EXPECT_FALSE(f1.get().has_value());
  EXPECT_FALSE(f2.get().has_value());
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(s.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(s.stats().commits, 6u) << "3 mutations + the 3 reads above";
  EXPECT_TRUE(mutually_consistent(s));
}

TEST(Combining, FutureResolutionInsideTransactionThrows) {
  TxManager mgr;
  Store s(&mgr, comb_cfg(64));
  auto fut = s.async_put(1, 10);
  mgr.txBegin();
  EXPECT_THROW(fut.get(), std::logic_error)
      << "resolving would nest a batch transaction into the ambient one";
  try {
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(fut.get().has_value());  // fine outside
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
}

TEST(Combining, AbandonInsideTransactionLeaksSlotButIsCounted) {
#ifndef NDEBUG
  GTEST_SKIP() << "the misuse trips a debug assert by design; the "
                  "counter path is Release-only";
#else
  TxManager mgr;
  Store s(&mgr, comb_cfg(64));
  EXPECT_EQ(s.combiner_slots_leaked(), 0u);
  {
    auto fut = s.async_put(1, 10);  // publishes a slot (outside any tx)
    mgr.txBegin();
    // Destroying the future inside the open transaction cannot help the
    // combiner (helping would nest the batch transaction), so its still-
    // pending slot is parked forever — the leak this counter surfaces.
    { auto doomed = std::move(fut); }
    EXPECT_EQ(s.combiner_slots_leaked(), 1u);
    try {
      mgr.txAbort();
    } catch (const TransactionAborted&) {
    }
  }
  // The OP is not lost — the next combine pass drains every published
  // slot, parked ones included — only the slot's reusability is. Its
  // commit goes unbilled (nobody consumes the result), which is why the
  // recovery story is "restart the store", not an online reclaim.
  auto f2 = s.async_put(2, 20);
  EXPECT_FALSE(f2.get().has_value());
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10))
      << "a later combine should still execute the parked op";
  EXPECT_EQ(s.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(s.combiner_slots_leaked(), 1u) << "counted once, not per pass";
#endif
}

// ---- moved-from-request regressions (string K/V) --------------------------
// uint64_t K/V cannot catch a moved-from request (trivial types stay
// bitwise-intact after std::move); std::string goes empty, so these tests
// fail loudly if any publish/fallback path executes a request it already
// moved from (try_publish's contract: moved from ONLY on success).

using StrStore = MedleyStore<std::string, std::string>;

TEST(Combining, StringKVSlotExhaustionExecutesCallersRequest) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(64);
  cfg.combining.slots = 2;
  StrStore s(&mgr, cfg);

  auto f1 = s.async_put("alpha", "first");
  auto f2 = s.async_put("beta", "second");
  // Both slots parked: this submission takes the eager fallback, which
  // must see the ORIGINAL request (a failed try_publish may not move it).
  auto f3 = s.async_put("gamma", "third");
  EXPECT_TRUE(f3.ready());
  EXPECT_FALSE(f3.get().has_value());
  EXPECT_EQ(s.get("gamma"), std::optional<std::string>("third"))
      << "slot-exhausted fallback executed a moved-from request";
  EXPECT_FALSE(s.get("").has_value())
      << "a moved-from (empty) key was committed";

  EXPECT_FALSE(f1.get().has_value());
  EXPECT_FALSE(f2.get().has_value());
  EXPECT_EQ(s.get("alpha"), std::optional<std::string>("first"));
  EXPECT_EQ(s.get("beta"), std::optional<std::string>("second"));
}

TEST(Combining, StringKVPublishRetryPreservesRequests) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(128);
  cfg.combining.slots = 1;  // every publish contends for the single slot
  StrStore s(&mgr, cfg);
  ASSERT_EQ(s.config().combining.max_batch, 1u);
  constexpr int kThreads = 4;
  constexpr int kOps = 200;

  h::run_seeded(kThreads, 31, [&](int t, medley::util::Xoshiro256& rng) {
    (void)rng;
    for (int i = 0; i < kOps; i++) {
      const std::string k = "k" + std::to_string(t) + "_" + std::to_string(i);
      if (i % 8 == 7) {
        s.del(k);  // absent delete still routes through the combiner
      } else {
        s.put(k, "v" + std::to_string(t * kOps + i));
      }
    }
  });

  // Every request that retried publish() under slot contention must have
  // arrived intact: each key maps to exactly its own value, and no empty
  // (moved-from) key was ever committed.
  EXPECT_FALSE(s.get("").has_value());
  std::uint64_t live = 0;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kOps; i++) {
      const std::string k = "k" + std::to_string(t) + "_" + std::to_string(i);
      auto v = s.get(k);
      if (i % 8 == 7) {
        EXPECT_FALSE(v.has_value()) << k;
      } else {
        ASSERT_TRUE(v.has_value()) << k;
        EXPECT_EQ(*v, "v" + std::to_string(t * kOps + i));
        live++;
      }
    }
  }
  EXPECT_EQ(s.stats().key_count(), live);
  EXPECT_EQ(s.combined_ops(), static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(Combining, AbandonedFutureReclaimsSlotAndBillsCommit) {
  TxManager mgr;
  StoreConfig cfg = comb_cfg(64);
  cfg.combining.slots = 2;
  StrStore s(&mgr, cfg);

  {
    auto f1 = s.async_put("a", "1");
    auto f2 = s.async_put("b", "2");
    // Dropped without get(): the destructors drive both ops to
    // completion, bill them, and free the publication slots.
  }
  EXPECT_EQ(s.get("a"), std::optional<std::string>("1"))
      << "an abandoned future's op must still commit";
  EXPECT_EQ(s.get("b"), std::optional<std::string>("2"));
  EXPECT_EQ(s.combined_ops(), 2u);
  EXPECT_EQ(s.stats().commits, 4u) << "2 abandoned puts + 2 reads";

  // Both slots are free again: the next pipelined pair publishes into the
  // combiner (combined_ops keeps counting) instead of falling back eager.
  auto f3 = s.async_put("c", "3");
  auto f4 = s.async_put("d", "4");
  EXPECT_EQ(f3.get(), std::nullopt);
  EXPECT_EQ(f4.get(), std::nullopt);
  EXPECT_EQ(s.combined_ops(), 4u)
      << "slots parked by abandoned futures were not reclaimed";
  EXPECT_EQ(s.get("c"), std::optional<std::string>("3"));
  EXPECT_EQ(s.get("d"), std::optional<std::string>("4"));
}

// ---- sharded stores -------------------------------------------------------

TEST(Combining, ShardedPointOpsCombinePerShardCrossShardBypasses) {
  StoreConfig cfg = comb_cfg(256);
  Sharded s(4, cfg);
  constexpr int kThreads = 4;
  constexpr int kOps = 300;

  h::run_seeded(kThreads, 77, [&](int t, medley::util::Xoshiro256& rng) {
    (void)t;
    for (int i = 0; i < kOps; i++) {
      const std::uint64_t k = rng.next_bounded(64);
      if (rng.next_bounded(2) == 0) {
        s.put(k, k + 1);
      } else {
        auto f = s.async_put(k, k + 2);
        f.get();
      }
    }
  });
  // Every point mutation combined on its home shard.
  EXPECT_EQ(s.combined_ops(),
            static_cast<std::uint64_t>(kThreads) * kOps);

  // Cross-shard multi_put bypasses the combiners (it must stay ONE atomic
  // domain transaction) yet remains all-or-nothing.
  const std::uint64_t before = s.combined_ops();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
  for (std::uint64_t k = 100; k < 116; k++) batch.emplace_back(k, k * 10);
  s.multi_put(batch);
  EXPECT_EQ(s.combined_ops(), before)
      << "cross-shard transactions must not route through the combiner";
  for (std::uint64_t k = 100; k < 116; k++) {
    EXPECT_EQ(s.get(k), std::optional<std::uint64_t>(k * 10));
  }
}

TEST(Combining, RangeShardedCombinedScanConsistency) {
  using RStore = RangeShardedMedleyStore<std::uint64_t, std::uint64_t>;
  StoreConfig cfg = comb_cfg(256);
  RStore s(RStore::Partitioner::uniform(0, 4096, 4), cfg);

  h::run_seeded(4, 5150, [&](int t, medley::util::Xoshiro256& rng) {
    (void)t;
    for (int i = 0; i < 300; i++) {
      s.put(rng.next_bounded(4096), rng.next());
    }
  });
  EXPECT_EQ(s.combined_ops(), 4u * 300u);

  // Ordered reads over the combined writes: sorted, deduplicated, and
  // primary-consistent across shard boundaries.
  auto all = s.range(0, 4096);
  for (std::size_t i = 1; i < all.size(); i++) {
    EXPECT_LT(all[i - 1].first, all[i].first);
  }
  for (const auto& [k, v] : all) {
    EXPECT_EQ(s.get(k), std::optional<std::uint64_t>(v));
  }
}

// Cross-structure transactional isolation: the paper's flagship composition
// scenario. Accounts live half in a Michael hash table and half in a Fraser
// skiplist; threads move money between arbitrary pairs of accounts — often
// crossing the structure boundary — inside NBTC transactions. Strict
// serializability demands the global sum is conserved at every instant a
// transaction could observe, and the harness's invariant checkers validate
// the recorded effect histories.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include "ds/fraser_skiplist.hpp"
#include "ds/michael_hashtable.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using Hash = medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>;
using Skip = medley::ds::FraserSkiplist<std::uint64_t, std::uint64_t>;

namespace h = medley::test::harness;

namespace {

constexpr std::uint64_t kAccounts = 16;   // ids [0, 16): even->hash, odd->skip
constexpr std::uint64_t kInitial = 1000;  // per-account opening balance

struct Bank {
  Hash hash;
  Skip skip;

  explicit Bank(TxManager* mgr) : hash(mgr, 64), skip(mgr) {
    for (std::uint64_t a = 0; a < kAccounts; a++) {
      if (a % 2 == 0) {
        hash.insert(a, kInitial);
      } else {
        skip.insert(a, kInitial);
      }
    }
  }

  std::optional<std::uint64_t> read(std::uint64_t a) {
    return (a % 2 == 0) ? hash.get(a) : skip.get(a);
  }

  void write(std::uint64_t a, std::uint64_t v) {
    if (a % 2 == 0) {
      hash.put(a, v);
    } else {
      // Fraser skiplist has no put; remove+insert inside the transaction
      // is equivalent and exercises the composition harder.
      skip.remove(a);
      skip.insert(a, v);
    }
  }

  std::uint64_t total() {
    std::uint64_t sum = 0;
    for (std::uint64_t a = 0; a < kAccounts; a++) {
      sum += read(a).value_or(0);
    }
    return sum;
  }
};

}  // namespace

TEST(TxIsolation, SumConservedUnderMixedStructureTransfers) {
  TxManager mgr;
  Bank bank(&mgr);
  constexpr int kThreads = 8, kTransfers = 1200;
  std::atomic<std::uint64_t> committed{0};

  h::run_seeded(kThreads, 2026, [&](int t, medley::util::Xoshiro256& rng) {
    (void)t;
    for (int i = 0; i < kTransfers; i++) {
      const auto from = rng.next_bounded(kAccounts);
      const auto to = rng.next_bounded(kAccounts);
      if (from == to) continue;
      const auto amount = 1 + rng.next_bounded(5);
      try {
        medley::execute_tx(mgr, [&] {
          auto src = bank.read(from);
          auto dst = bank.read(to);
          ASSERT_TRUE(src.has_value());
          ASSERT_TRUE(dst.has_value());
          if (*src < amount) mgr.txAbort();  // insufficient funds
          bank.write(from, *src - amount);
          bank.write(to, *dst + amount);
        });
        committed.fetch_add(1, std::memory_order_relaxed);
      } catch (const TransactionAborted&) {
        // user abort without retry: transfer skipped, no partial effects
      }
    }
  });

  EXPECT_EQ(bank.total(), kAccounts * kInitial);
  EXPECT_GT(committed.load(), 0u);
  // Every account must still exist (remove+insert never leaks an account).
  for (std::uint64_t a = 0; a < kAccounts; a++) {
    EXPECT_TRUE(bank.read(a).has_value()) << "account " << a;
  }
}

TEST(TxIsolation, ConcurrentReadersNeverSeeTornTransfers) {
  // Writers shuttle money between one hash account and one skiplist
  // account; readers snapshot both inside transactions. Any committed
  // reader snapshot must show the invariant sum — a torn (non-isolated)
  // read would surface as a different total.
  TxManager mgr;
  Bank bank(&mgr);
  constexpr std::uint64_t kA = 0, kB = 1;  // hash resp. skiplist account
  const std::uint64_t expected =
      bank.read(kA).value() + bank.read(kB).value();
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> snapshots{0};

  h::run_seeded(8, 7, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 4) {  // writers
      for (int i = 0; i < 800; i++) {
        const auto amount = 1 + rng.next_bounded(3);
        try {
          medley::execute_tx(mgr, [&] {
            auto a = bank.read(kA);
            auto b = bank.read(kB);
            if (!a || *a < amount) mgr.txAbort();
            bank.write(kA, *a - amount);
            bank.write(kB, b.value_or(0) + amount);
          });
        } catch (const TransactionAborted&) {
        }
      }
    } else {  // readers
      for (int i = 0; i < 800; i++) {
        // A read attempt that later aborts MAY legally observe a torn
        // pair (reads validate at commit, not at load) — only the
        // attempt run_tx actually commits counts as a snapshot.
        std::uint64_t sum = 0;
        try {
          medley::execute_tx(mgr, [&] {
            auto a = bank.read(kA);
            auto b = bank.read(kB);
            sum = a.value_or(0) + b.value_or(0);
          });
          if (sum != expected) torn.store(true);
          snapshots.fetch_add(1, std::memory_order_relaxed);
        } catch (const TransactionAborted&) {
        }
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed reader saw a torn transfer";
  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_EQ(bank.total(), kAccounts * kInitial);
}

TEST(TxIsolation, DeterministicConflictIsSerializable) {
  // Pin the exact interleaving with the schedule driver: t0 begins a
  // cross-structure transfer, t1 commits a competing transfer to the same
  // accounts mid-flight, t0 tries to commit. Whatever the outcome (t0 may
  // conflict-abort), the final state must equal SOME serial order — with
  // disjoint amounts the reachable states are enumerable.
  TxManager mgr;
  Bank bank(&mgr);
  std::atomic<bool> t0_committed{false};

  h::ScheduleDriver d;
  d.add_thread({
      [&] { mgr.txBegin(); },
      [&] {
        try {
          auto v = bank.read(0);
          bank.write(0, *v - 10);
          bank.write(1, *bank.read(1) + 10);
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          mgr.txEnd();
          t0_committed.store(true);
        } catch (const TransactionAborted&) {
        }
      },
  });
  d.add_thread({
      [&] {
        try {
          medley::execute_tx(mgr, [&] {
            auto v = bank.read(0);
            bank.write(0, *v - 100);
            bank.write(1, *bank.read(1) + 100);
          });
        } catch (const TransactionAborted&) {
        }
      },
  });
  // t0 begins and executes its body, t1 commits a full transfer, t0 ends.
  d.run({0, 0, 1, 0});

  const auto a0 = bank.read(0).value();
  const auto a1 = bank.read(1).value();
  EXPECT_EQ(a0 + a1, 2 * kInitial);
  if (t0_committed.load()) {
    EXPECT_EQ(a0, kInitial - 110);
  } else {
    EXPECT_EQ(a0, kInitial - 100);  // only t1's transfer landed
  }
  EXPECT_EQ(bank.total(), kAccounts * kInitial);
}

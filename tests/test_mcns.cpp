// MCNS semantics through CASObj + TxManager: atomic multi-cell commit,
// abort rollback, helping/eager conflict resolution, read validation,
// speculation-interval tracking, descriptor reuse across serials.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/medley.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::AbortReason;
using medley::CASObj;
using medley::TransactionAborted;
using medley::TxManager;
using medley::core::CASCell;
using U64Obj = CASObj<std::uint64_t>;

namespace {

/// Begin a tx, run body, commit. Returns true on commit, false on abort.
bool try_tx(TxManager& mgr, const std::function<void()>& body) {
  try {
    mgr.txBegin();
    body();
    mgr.txEnd();
    return true;
  } catch (const TransactionAborted&) {
    return false;
  }
}

}  // namespace

TEST(Mcns, TwoCellCommitIsAtomicAndVisible) {
  TxManager mgr;
  U64Obj a(1), b(2);
  ASSERT_TRUE(try_tx(mgr, [&] {
    EXPECT_TRUE(a.nbtcCAS(1, 10, true, true));
    EXPECT_TRUE(b.nbtcCAS(2, 20, true, true));
  }));
  EXPECT_EQ(a.load(), 10u);
  EXPECT_EQ(b.load(), 20u);
  // Descriptors uninstalled: counters even again.
  EXPECT_EQ(a.raw().hi % 2, 0u);
  EXPECT_EQ(b.raw().hi % 2, 0u);
}

TEST(Mcns, SpeculativeStateHoldsDescriptorUntilCommit) {
  TxManager mgr;
  U64Obj a(1);
  mgr.txBegin();
  ASSERT_TRUE(a.nbtcCAS(1, 10, true, true));
  EXPECT_EQ(a.raw().hi % 2, 1u);  // installed: odd counter
  mgr.txEnd();
  EXPECT_EQ(a.raw().hi % 2, 0u);
  EXPECT_EQ(a.load(), 10u);
}

TEST(Mcns, UserAbortRollsBackAllWrites) {
  TxManager mgr;
  U64Obj a(1), b(2);
  EXPECT_THROW(
      {
        mgr.txBegin();
        a.nbtcCAS(1, 10, true, true);
        b.nbtcCAS(2, 20, true, true);
        mgr.txAbort();
      },
      TransactionAborted);
  EXPECT_EQ(a.load(), 1u);
  EXPECT_EQ(b.load(), 2u);
  EXPECT_EQ(a.raw().hi % 2, 0u);  // uninstalled
  EXPECT_EQ(mgr.stats().user_aborts, 1u);
}

TEST(Mcns, WriteThenReadSeesOwnSpeculativeValue) {
  TxManager mgr;
  U64Obj a(1);
  ASSERT_TRUE(try_tx(mgr, [&] {
    ASSERT_TRUE(a.nbtcCAS(1, 42, true, true));
    EXPECT_EQ(a.nbtcLoad(), 42u);  // read-own-write through the write set
  }));
  EXPECT_EQ(a.load(), 42u);
}

TEST(Mcns, WriteThenCasAgainUpdatesWriteSetInPlace) {
  TxManager mgr;
  U64Obj a(1);
  ASSERT_TRUE(try_tx(mgr, [&] {
    ASSERT_TRUE(a.nbtcCAS(1, 2, true, true));
    EXPECT_FALSE(a.nbtcCAS(1, 3, true, true));  // expected must be spec val
    EXPECT_TRUE(a.nbtcCAS(2, 3, true, true));
  }));
  EXPECT_EQ(a.load(), 3u);
}

TEST(Mcns, ReadThenWriteSameCellCommits) {
  // The Fig. 3 pattern: get(a1) then put(a1). The read entry must validate
  // against our own installed descriptor (DESIGN.md §5).
  TxManager mgr;
  medley::test::Harness h(&mgr);
  U64Obj a(7);
  ASSERT_TRUE(try_tx(mgr, [&] {
    auto v = a.nbtcLoad();
    h.addToReadSet(&a, v);
    ASSERT_TRUE(a.nbtcCAS(v, v + 1, true, true));
  }));
  EXPECT_EQ(a.load(), 8u);
}

TEST(Mcns, StaleReadFailsValidationAtCommit) {
  TxManager mgr;
  medley::test::Harness h(&mgr);
  U64Obj a(7);
  bool committed = try_tx(mgr, [&] {
    auto v = a.nbtcLoad();
    h.addToReadSet(&a, v);
    // A peer commits a change to `a` before we reach txEnd.
    std::thread([&] { ASSERT_TRUE(a.CAS(7, 99)); }).join();
  });
  EXPECT_FALSE(committed);
  EXPECT_EQ(mgr.stats().validation_aborts, 1u);
  EXPECT_EQ(a.load(), 99u);
}

TEST(Mcns, UnchangedReadValidates) {
  TxManager mgr;
  medley::test::Harness h(&mgr);
  U64Obj a(7);
  EXPECT_TRUE(try_tx(mgr, [&] {
    auto v = a.nbtcLoad();
    h.addToReadSet(&a, v);
  }));
  EXPECT_EQ(mgr.stats().commits, 1u);
}

TEST(Mcns, AbaOnValueIsCaughtByCounter) {
  // Value changes away and back between our read and commit: the value
  // matches but the counter does not — validation must fail.
  TxManager mgr;
  medley::test::Harness h(&mgr);
  U64Obj a(7);
  bool committed = try_tx(mgr, [&] {
    auto v = a.nbtcLoad();
    h.addToReadSet(&a, v);
    std::thread([&] {
      ASSERT_TRUE(a.CAS(7, 99));
      ASSERT_TRUE(a.CAS(99, 7));  // back to the same value
    }).join();
  });
  EXPECT_FALSE(committed);
}

TEST(Mcns, PlainLoadByPeerForcesAbortOfInPrepTx) {
  // Eager contention management: a peer that merely *loads* through an
  // installed descriptor finalizes it — aborting an InPrep transaction.
  TxManager mgr;
  U64Obj a(1);
  mgr.txBegin();
  ASSERT_TRUE(a.nbtcCAS(1, 10, true, true));
  std::thread([&] {
    EXPECT_EQ(a.load(), 1u);  // resolves to the pre-tx value
  }).join();
  EXPECT_THROW(mgr.txEnd(), TransactionAborted);
  EXPECT_EQ(a.load(), 1u);
  EXPECT_EQ(mgr.stats().conflict_aborts, 1u);
}

TEST(Mcns, PeerNbtcCasForcesAbortAndProceeds) {
  TxManager mgr;
  U64Obj a(1);
  mgr.txBegin();
  ASSERT_TRUE(a.nbtcCAS(1, 10, true, true));
  std::thread([&] {
    // Non-transactional CAS from a peer: resolves our descriptor (abort)
    // and then applies over the restored value.
    EXPECT_TRUE(a.CAS(1, 5));
  }).join();
  EXPECT_THROW(mgr.txEnd(), TransactionAborted);
  EXPECT_EQ(a.load(), 5u);
}

TEST(Mcns, SelfAbortDiscoveredAtNextAccess) {
  TxManager mgr;
  U64Obj a(1), b(2);
  mgr.txBegin();
  ASSERT_TRUE(a.nbtcCAS(1, 10, true, true));
  std::thread([&] { (void)a.load(); }).join();  // peer aborts us
  // The next instrumented access notices the doomed status and throws.
  EXPECT_THROW(b.nbtcCAS(2, 20, true, true), TransactionAborted);
  EXPECT_EQ(a.load(), 1u);
  EXPECT_EQ(b.load(), 2u);
}

TEST(Mcns, NonCriticalCasOutsideSpeculationExecutesOnTheFly) {
  TxManager mgr;
  U64Obj a(1);
  mgr.txBegin();
  // pub_pt=false and speculation not started: plain CAS, immediate effect.
  ASSERT_TRUE(a.nbtcCAS(1, 2, false, false));
  EXPECT_EQ(a.raw().hi % 2, 0u);  // no descriptor installed
  std::thread([&] { EXPECT_EQ(a.load(), 2u); }).join();  // visible pre-commit
  mgr.txEnd();
  EXPECT_EQ(a.load(), 2u);
}

TEST(Mcns, LinPtEndsSpeculationInterval) {
  TxManager mgr;
  U64Obj a(1), helper(5);
  mgr.txBegin();
  ASSERT_TRUE(a.nbtcCAS(1, 2, /*lin=*/true, /*pub=*/true));
  // Interval ended at the lin point: this helping CAS is non-critical.
  ASSERT_TRUE(helper.nbtcCAS(5, 6, false, false));
  EXPECT_EQ(helper.raw().hi % 2, 0u);
  mgr.txEnd();
  EXPECT_EQ(a.load(), 2u);
  EXPECT_EQ(helper.load(), 6u);
}

TEST(Mcns, PubWithoutLinKeepsIntervalOpen) {
  TxManager mgr;
  U64Obj a(1), b(2);
  mgr.txBegin();
  ASSERT_TRUE(a.nbtcCAS(1, 10, /*lin=*/false, /*pub=*/true));
  // Interval still open: the next CAS is critical even without pub_pt.
  ASSERT_TRUE(b.nbtcCAS(2, 20, /*lin=*/true, /*pub=*/false));
  EXPECT_EQ(b.raw().hi % 2, 1u);  // installed
  mgr.txEnd();
  EXPECT_EQ(a.load(), 10u);
  EXPECT_EQ(b.load(), 20u);
}

TEST(Mcns, CapacityOverflowAborts) {
  TxManager mgr;
  constexpr int kN = medley::Desc::kWriteCap + 1;
  std::vector<std::unique_ptr<U64Obj>> cells;
  cells.reserve(kN);
  for (int i = 0; i < kN; i++) cells.push_back(std::make_unique<U64Obj>(0));
  bool aborted = false;
  try {
    mgr.txBegin();
    for (int i = 0; i < kN; i++) {
      cells[static_cast<std::size_t>(i)]->nbtcCAS(0, 1, false, true);
    }
    mgr.txEnd();
  } catch (const TransactionAborted& e) {
    aborted = true;
    EXPECT_EQ(e.reason(), AbortReason::Capacity);
  }
  EXPECT_TRUE(aborted);
  // Rollback must have restored every installed cell.
  for (auto& c : cells) EXPECT_EQ(c->load(), 0u);
}

TEST(Mcns, DescriptorReusedAcrossManySerials) {
  TxManager mgr;
  U64Obj a(0);
  for (std::uint64_t i = 0; i < 2000; i++) {
    ASSERT_TRUE(try_tx(mgr, [&] {
      ASSERT_TRUE(a.nbtcCAS(i, i + 1, true, true));
    }));
  }
  EXPECT_EQ(a.load(), 2000u);
  EXPECT_EQ(mgr.stats().commits, 2000u);
}

TEST(Mcns, ConservationUnderConcurrentTransfers) {
  // N cells each start with 1000; every transaction moves 1 unit between
  // two random cells with both updates critical. The sum is invariant.
  constexpr int kCells = 8, kThreads = 4, kTxPerThread = 2000;
  TxManager mgr;
  std::vector<std::unique_ptr<U64Obj>> cells;
  for (int i = 0; i < kCells; i++)
    cells.push_back(std::make_unique<U64Obj>(1000));

  medley::test::run_threads(kThreads, [&](int t) {
    medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
    for (int i = 0; i < kTxPerThread; i++) {
      auto from = rng.next_bounded(kCells);
      auto to = rng.next_bounded(kCells);
      if (from == to) continue;
      medley::execute_tx(mgr, [&] {
        auto vf = cells[from]->nbtcLoad();
        auto vt = cells[to]->nbtcLoad();
        if (vf == 0) mgr.txAbort();
        if (!cells[from]->nbtcCAS(vf, vf - 1, true, true)) mgr.txAbort();
        if (!cells[to]->nbtcCAS(vt, vt + 1, true, true)) mgr.txAbort();
      });
    }
  });

  std::uint64_t sum = 0;
  for (auto& c : cells) sum += c->load();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kCells) * 1000u);
  // No descriptor left behind.
  for (auto& c : cells) EXPECT_EQ(c->raw().hi % 2, 0u);
}

TEST(Mcns, ObstructionFreedomSoloThreadAlwaysCommits) {
  // With no concurrency, a transaction that retries on abort must commit
  // in one round (Theorem 4).
  TxManager mgr;
  U64Obj a(0), b(0);
  auto aborts = medley::execute_tx(mgr, [&] {
    ASSERT_TRUE(a.nbtcCAS(a.nbtcLoad(), 1, true, true));
    ASSERT_TRUE(b.nbtcCAS(b.nbtcLoad(), 1, true, true));
  }).stats;
  EXPECT_EQ(aborts.aborts(), 0u);
  EXPECT_EQ(a.load(), 1u);
  EXPECT_EQ(b.load(), 1u);
}

TEST(Mcns, TornMultiCellStateNeverObservable) {
  // Writer transactions set {x, y} to {k, k}; readers (transactionally,
  // with validation) must never observe x != y.
  TxManager mgr;
  U64Obj x(0), y(0);
  medley::test::Harness h(&mgr);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    for (std::uint64_t k = 1; k <= 3000; k++) {
      medley::execute_tx(mgr, [&] {
        auto vx = x.nbtcLoad();
        auto vy = y.nbtcLoad();
        if (!x.nbtcCAS(vx, k, true, true)) mgr.txAbort();
        if (!y.nbtcCAS(vy, k, true, true)) mgr.txAbort();
      });
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      try {
        mgr.txBegin();
        auto vx = x.nbtcLoad();
        h.addToReadSet(&x, vx);
        auto vy = y.nbtcLoad();
        h.addToReadSet(&y, vy);
        mgr.txEnd();
        if (vx != vy) torn.fetch_add(1);
      } catch (const TransactionAborted&) {
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(x.load(), 3000u);
  EXPECT_EQ(y.load(), 3000u);
}

// Self-tests for the concurrent-correctness harness: the oracles implement
// the sequential specs, the checkers accept correct histories and reject
// planted bugs, and the schedule driver really serializes and really
// follows the requested interleaving.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <optional>

#include "ds/michael_hashtable.hpp"
#include "ds/ms_queue.hpp"
#include "test_support.hpp"

namespace h = medley::test::harness;
using medley::TxManager;

// ---------------------------------------------------------------------
// Oracles.

TEST(MapOracle, FollowsStdMapSemantics) {
  h::MapOracle o;
  EXPECT_FALSE(o.apply({0, h::OpKind::Get, 1, 0, false, 0, 0, 0}).ok);
  EXPECT_TRUE(o.apply({0, h::OpKind::Insert, 1, 10, false, 0, 0, 0}).ok);
  EXPECT_FALSE(o.apply({0, h::OpKind::Insert, 1, 11, false, 0, 0, 0}).ok);
  auto g = o.apply({0, h::OpKind::Get, 1, 0, false, 0, 0, 0});
  EXPECT_TRUE(g.ok);
  EXPECT_EQ(g.out, 10u);
  auto p = o.apply({0, h::OpKind::Put, 1, 12, false, 0, 0, 0});
  EXPECT_TRUE(p.ok);
  EXPECT_EQ(p.out, 10u);  // put returns the replaced value
  EXPECT_FALSE(o.apply({0, h::OpKind::Put, 2, 20, false, 0, 0, 0}).ok);
  auto r = o.apply({0, h::OpKind::Remove, 1, 0, false, 0, 0, 0});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.out, 12u);
  EXPECT_FALSE(o.apply({0, h::OpKind::Remove, 1, 0, false, 0, 0, 0}).ok);
  EXPECT_EQ(o.state().size(), 1u);  // key 2 remains
}

TEST(QueueOracle, FollowsStdDequeSemantics) {
  h::QueueOracle o;
  EXPECT_FALSE(o.apply({0, h::OpKind::Dequeue, 0, 0, false, 0, 0, 0}).ok);
  o.apply({0, h::OpKind::Enqueue, 7, 0, false, 0, 0, 0});
  o.apply({0, h::OpKind::Enqueue, 8, 0, false, 0, 0, 0});
  auto d = o.apply({0, h::OpKind::Dequeue, 0, 0, false, 0, 0, 0});
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.out, 7u);
  EXPECT_EQ(o.state().size(), 1u);
}

// ---------------------------------------------------------------------
// Sequential checker.

TEST(SequentialChecker, AcceptsCorrectHistory) {
  h::Recorder rec;
  TxManager mgr;
  medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t> m(&mgr, 16);
  h::RecordedMap<decltype(m)> rm(&m, &rec);
  rm.insert(0, 1, 10);
  rm.insert(0, 1, 11);
  rm.get(0, 1);
  rm.put(0, 1, 12);
  rm.remove(0, 1);
  rm.remove(0, 1);
  EXPECT_TRUE(h::check_sequential_map(rec.history()));
}

TEST(SequentialChecker, RejectsPlantedWrongResult) {
  // Hand-build a history claiming get(1) found a value in an empty map.
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Get, 1, 0, true, 99, 0, 1},
  };
  EXPECT_FALSE(h::check_sequential_map(hist));
}

TEST(SequentialChecker, RejectsPlantedWrongValue) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Insert, 1, 10, true, 0, 0, 1},
      {0, h::OpKind::Get, 1, 0, true, 11, 2, 3},  // wrong: should read 10
  };
  EXPECT_FALSE(h::check_sequential_map(hist));
}

TEST(SequentialChecker, RejectsOverlappingHistory) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Insert, 1, 10, true, 0, 0, 5},
      {1, h::OpKind::Get, 1, 0, true, 10, 2, 3},  // inside the insert
  };
  EXPECT_FALSE(h::check_sequential_map(hist));
}

TEST(SequentialChecker, QueueReplayExact) {
  h::Recorder rec;
  TxManager mgr;
  medley::ds::MSQueue<std::uint64_t> q(&mgr);
  h::RecordedQueue<decltype(q)> rq(&q, &rec);
  rq.dequeue(0);  // empty
  rq.enqueue(0, 1);
  rq.enqueue(0, 2);
  rq.dequeue(0);
  rq.enqueue(0, 3);
  rq.dequeue(0);
  rq.dequeue(0);
  rq.dequeue(0);  // empty again
  EXPECT_TRUE(h::check_sequential_queue(rec.history()));
}

// ---------------------------------------------------------------------
// Concurrent invariant checkers: planted violations must be caught.

TEST(SetInvariants, CatchesLostInsert) {
  // insert(1) succeeded but the final state doesn't have key 1.
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Insert, 1, 10, true, 0, 0, 3},
  };
  EXPECT_FALSE(h::check_set_history(hist, {}, {}));
  EXPECT_TRUE(h::check_set_history(hist, {}, {{1, 10}}));
}

TEST(SetInvariants, CatchesDoubleSuccessfulInsert) {
  // Two successful inserts of one key with no remove: impossible.
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Insert, 1, 10, true, 0, 0, 1},
      {1, h::OpKind::Insert, 1, 11, true, 0, 0, 1},
  };
  EXPECT_FALSE(h::check_set_history(hist, {}, {{1, 10}}));
}

TEST(SetInvariants, CatchesNeverWrittenRead) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Insert, 1, 10, true, 0, 0, 1},
      {1, h::OpKind::Get, 1, 0, true, 42, 2, 3},  // 42 was never written
  };
  EXPECT_FALSE(h::check_set_history(hist, {}, {{1, 10}}));
}

TEST(SetInvariants, PutCreateCountsTowardPresence) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Put, 1, 10, false, 0, 0, 1},  // created
      {0, h::OpKind::Put, 1, 11, true, 10, 2, 3},  // replaced
  };
  EXPECT_TRUE(h::check_set_history(hist, {}, {{1, 11}}));
  EXPECT_FALSE(h::check_set_history(hist, {}, {}));
}

TEST(QueueInvariants, CatchesDuplicatedValue) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Enqueue, 5, 0, true, 0, 0, 1},
      {1, h::OpKind::Dequeue, 0, 0, true, 5, 2, 3},
      {2, h::OpKind::Dequeue, 0, 0, true, 5, 4, 5},  // 5 dequeued twice
  };
  EXPECT_FALSE(h::check_queue_history(hist, {}, {}));
}

TEST(QueueInvariants, CatchesLostValue) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Enqueue, 5, 0, true, 0, 1, 2},
  };
  // Value 5 neither dequeued nor in the final drain: lost.
  EXPECT_FALSE(h::check_queue_history(hist, {}, {}));
  EXPECT_TRUE(h::check_queue_history(hist, {}, {5}));
}

TEST(QueueInvariants, CatchesFifoInversion) {
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Enqueue, 1, 0, true, 0, 0, 1},
      {0, h::OpKind::Enqueue, 2, 0, true, 0, 2, 3},
      {1, h::OpKind::Dequeue, 0, 0, true, 2, 4, 5},   // 2 out first...
      {1, h::OpKind::Dequeue, 0, 0, true, 1, 6, 7},   // ...then 1: inverted
  };
  EXPECT_FALSE(h::check_queue_history(hist, {}, {}));
  std::vector<h::OpRecord> good{
      {0, h::OpKind::Enqueue, 1, 0, true, 0, 0, 1},
      {0, h::OpKind::Enqueue, 2, 0, true, 0, 2, 3},
      {1, h::OpKind::Dequeue, 0, 0, true, 1, 4, 5},
      {1, h::OpKind::Dequeue, 0, 0, true, 2, 6, 7},
  };
  EXPECT_TRUE(h::check_queue_history(good, {}, {}));
}

TEST(QueueInvariants, CatchesOvertakenStrandedValue) {
  // 1 enqueued strictly before 2; 2 was dequeued while 1 stayed queued.
  std::vector<h::OpRecord> hist{
      {0, h::OpKind::Enqueue, 1, 0, true, 0, 0, 1},
      {0, h::OpKind::Enqueue, 2, 0, true, 0, 2, 3},
      {1, h::OpKind::Dequeue, 0, 0, true, 2, 4, 5},
  };
  EXPECT_FALSE(h::check_queue_history(hist, {}, {1}));
}

// ---------------------------------------------------------------------
// Schedule driver.

TEST(ScheduleDriver, FollowsExactInterleaving) {
  h::ScheduleDriver d;
  std::vector<int> order;
  d.add_thread({[&] { order.push_back(0); }, [&] { order.push_back(1); }});
  d.add_thread({[&] { order.push_back(10); }, [&] { order.push_back(11); }});
  d.run({1, 0, 0, 1});
  EXPECT_EQ(order, (std::vector<int>{10, 0, 1, 11}));
}

TEST(ScheduleDriver, StepsAreMutuallyExclusive) {
  h::ScheduleDriver d;
  std::atomic<int> inside{0};
  bool overlapped = false;
  auto step = [&] {
    if (inside.fetch_add(1) != 0) overlapped = true;
    inside.fetch_sub(1);
  };
  for (int t = 0; t < 4; t++) {
    d.add_thread({step, step, step});
  }
  d.run(d.shuffled(123));
  EXPECT_FALSE(overlapped);
}

TEST(ScheduleDriver, RejectsMalformedSchedule) {
  h::ScheduleDriver d;
  d.add_thread({[] {}});
  EXPECT_THROW(d.run({0, 0}), std::invalid_argument);
  EXPECT_THROW(d.run({1}), std::invalid_argument);
}

TEST(ScheduleDriver, PropagatesStepException) {
  h::ScheduleDriver d;
  bool later_ran = false;
  d.add_thread({[] { throw std::runtime_error("boom"); },
                [&] { later_ran = true; }});
  d.add_thread({[] {}});
  EXPECT_THROW(d.run({0, 1, 0}), std::runtime_error);
  EXPECT_FALSE(later_ran);  // failed thread's remaining steps are skipped
}

TEST(ScheduleDriver, ShuffledIsDeterministic) {
  h::ScheduleDriver d;
  for (int t = 0; t < 3; t++) d.add_thread({[] {}, [] {}, [] {}});
  EXPECT_EQ(d.shuffled(7), d.shuffled(7));
  EXPECT_EQ(d.round_robin(), (std::vector<int>{0, 1, 2, 0, 1, 2, 0, 1, 2}));
}

// ---------------------------------------------------------------------
// End-to-end: recorded real structure under the driver, exact replay.

TEST(HarnessEndToEnd, DeterministicInterleavingExactCheck) {
  TxManager mgr;
  medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t> m(&mgr, 16);
  h::Recorder rec;
  h::RecordedMap<decltype(m)> rm(&m, &rec);

  h::ScheduleDriver d;
  d.add_thread({[&] { rm.insert(0, 1, 10); },
                [&] { rm.put(0, 1, 11); },
                [&] { rm.remove(0, 2); }});
  d.add_thread({[&] { rm.get(1, 1); },
                [&] { rm.insert(1, 2, 20); },
                [&] { rm.get(1, 2); }});
  d.run({0, 1, 0, 1, 1, 0});
  EXPECT_TRUE(h::check_sequential_map(rec.history()));
  EXPECT_EQ(m.get(1), std::optional<std::uint64_t>(11));
  EXPECT_FALSE(m.contains(2));  // t0's remove(2) ran after t1's insert? No:
  // schedule {0,1,0,1,1,0}: t0 insert, t1 get, t0 put, t1 insert(2),
  // t1 get(2), t0 remove(2) — so key 2 was inserted then removed.
}

// MedleyStore: the serving-layer subsystem where all three structure
// families compose in one transaction on a hot path. Invariants under
// test ("mutual consistency"):
//   I1  primary and secondary index the same key -> value mapping;
//   I2  the change feed, replayed over an empty map, reproduces the
//       primary exactly (feed order == serialization order);
//   I3  a committed transaction can never observe I1 broken (no torn
//       composite writes), even under contention or pinned interleavings;
//   I4  the persistent variant recovers primary+secondary consistently
//       from a crash at an arbitrary persisted boundary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "store/store.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using medley::store::FeedOp;
using medley::store::MedleyStore;
using medley::store::PersistentMedleyStore;
using medley::store::StoreConfig;
using Store = MedleyStore<std::uint64_t, std::uint64_t>;

namespace h = medley::test::harness;

namespace {

/// I1 checked quiescently: every secondary entry matches primary.get and
/// the sizes agree (set equality via inclusion + cardinality).
template <typename S>
::testing::AssertionResult mutually_consistent(S& store) {
  auto snapshot = store.range(0, ~0ULL);
  for (const auto& [k, v] : snapshot) {
    auto p = store.get(k);
    if (!p) {
      return ::testing::AssertionFailure()
             << "key " << k << " in secondary but not primary";
    }
    if (*p != v) {
      return ::testing::AssertionFailure()
             << "key " << k << ": primary=" << *p << " secondary=" << v;
    }
  }
  const std::size_t psize = store.primary().size_slow();
  if (psize != snapshot.size()) {
    return ::testing::AssertionFailure()
           << "primary holds " << psize << " keys, secondary "
           << snapshot.size();
  }
  return ::testing::AssertionSuccess();
}

std::string temp_region(const char* name) {
  std::string p = ::testing::TempDir() + "medley_store_" + name + ".img";
  std::remove(p.c_str());
  return p;
}

}  // namespace

TEST(Store, PointOpSemantics) {
  TxManager mgr;
  Store s(&mgr, {.buckets = 64});

  EXPECT_FALSE(s.get(1).has_value());
  EXPECT_FALSE(s.put(1, 10).has_value());           // fresh insert
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(s.put(1, 11), std::optional<std::uint64_t>(10));  // replace
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.del(2).has_value());               // absent
  EXPECT_EQ(s.del(1), std::optional<std::uint64_t>(11));
  EXPECT_FALSE(s.contains(1));

  // read_modify_write: counter upsert, then deletion via nullopt.
  auto inc = [](const std::optional<std::uint64_t>& cur) {
    return std::optional<std::uint64_t>(cur.value_or(0) + 1);
  };
  EXPECT_EQ(s.read_modify_write(7, inc), std::optional<std::uint64_t>(1));
  EXPECT_EQ(s.read_modify_write(7, inc), std::optional<std::uint64_t>(2));
  auto erase = [](const std::optional<std::uint64_t>&) {
    return std::optional<std::uint64_t>();
  };
  EXPECT_FALSE(s.read_modify_write(7, erase).has_value());
  EXPECT_FALSE(s.contains(7));
  EXPECT_TRUE(mutually_consistent(s));

  auto st = s.stats();
  EXPECT_GT(st.commits, 0u);
}

TEST(Store, RangeScanAndMultiPut) {
  TxManager mgr;
  Store s(&mgr, {.buckets = 64});
  s.multi_put({{30, 300}, {10, 100}, {20, 200}, {40, 400}});

  auto r = s.range(10, 30);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (std::pair<std::uint64_t, std::uint64_t>{10, 100}));
  EXPECT_EQ(r[2], (std::pair<std::uint64_t, std::uint64_t>{30, 300}));

  auto sc = s.scan(15, 2);
  ASSERT_EQ(sc.size(), 2u);
  EXPECT_EQ(sc[0].first, 20u);
  EXPECT_EQ(sc[1].first, 30u);

  EXPECT_TRUE(s.range(41, 1000).empty());
  EXPECT_TRUE(mutually_consistent(s));
}

TEST(Store, FeedMirrorsCommittedMutationsInOrder) {
  TxManager mgr;
  Store s(&mgr, {.buckets = 64});

  s.put(1, 10);
  s.put(2, 20);
  s.put(1, 11);
  s.del(2);
  s.multi_put({{3, 30}, {4, 40}});
  EXPECT_EQ(s.feed_depth(), 6u);

  auto feed = s.poll_feed(100);
  ASSERT_EQ(feed.size(), 6u);
  EXPECT_EQ(feed[0].op, FeedOp::Put);
  EXPECT_EQ(feed[0].key, 1u);
  EXPECT_EQ(feed[0].val, 10u);
  EXPECT_EQ(feed[3].op, FeedOp::Del);
  EXPECT_EQ(feed[3].key, 2u);
  EXPECT_EQ(s.feed_depth(), 0u);
  EXPECT_TRUE(s.poll_feed(4).empty());

  // I2: replay reproduces the primary.
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(feed, replayed);
  std::map<std::uint64_t, std::uint64_t> want{{1, 11}, {3, 30}, {4, 40}};
  EXPECT_EQ(replayed, want);
  EXPECT_TRUE(mutually_consistent(s));
}

TEST(Store, FlatNestingComposesIntoAmbientTransaction) {
  TxManager mgr;
  Store s(&mgr, {.buckets = 64});
  s.put(1, 10);
  s.poll_feed(10);

  // Store ops inside an open transaction join it: an abort rolls back
  // every index and the feed entry together.
  try {
    mgr.txBegin();
    s.put(5, 50);
    EXPECT_EQ(s.get(5), std::optional<std::uint64_t>(50));  // own write
    s.del(1);
    EXPECT_FALSE(s.contains(1));
    mgr.txAbort();
  } catch (const TransactionAborted&) {
  }
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.get(1), std::optional<std::uint64_t>(10));
  EXPECT_TRUE(s.poll_feed(10).empty()) << "aborted tx leaked a feed entry";

  // And a commit applies all of it atomically.
  medley::execute_tx(mgr, [&] {
    s.put(6, 60);
    auto v = s.get(1);
    s.put(7, *v + 100);
  });
  EXPECT_EQ(s.get(6), std::optional<std::uint64_t>(60));
  EXPECT_EQ(s.get(7), std::optional<std::uint64_t>(110));
  EXPECT_EQ(s.feed_depth(), 2u);  // nested pushes counted at commit
  EXPECT_EQ(s.poll_feed(10).size(), 2u);
  EXPECT_EQ(s.feed_depth(), 0u);
  EXPECT_TRUE(mutually_consistent(s));
}

TEST(Store, MixedWorkloadMutualConsistency8Threads) {
  TxManager mgr;
  Store s(&mgr, {.buckets = 128});
  constexpr std::uint64_t kKeys = 48;
  constexpr int kOps = 900;
  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> snapshots{0};
  // Single consumer: thread 7 tails the feed; its polled prefix plus the
  // final drain is the full serialization-order mutation log.
  std::vector<medley::store::FeedEntry<std::uint64_t, std::uint64_t>> log;

  h::run_seeded(8, 4242, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 5) {  // mutators
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        switch (rng.next_bounded(4)) {
          case 0:
            s.put(k, rng.next_bounded(1u << 20));
            break;
          case 1:
            s.del(k);
            break;
          case 2:
            s.read_modify_write(k, [](const std::optional<std::uint64_t>& c) {
              return std::optional<std::uint64_t>(c.value_or(0) + 1);
            });
            break;
          default:
            s.multi_put({{k, k * 3}, {(k + 7) % kKeys, k * 3}});
            break;
        }
      }
    } else if (t == 7) {  // feed consumer
      for (int i = 0; i < kOps; i++) {
        auto batch = s.poll_feed(8);
        log.insert(log.end(), batch.begin(), batch.end());
      }
    } else {  // readers: committed cross-index snapshots (I3)
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        std::optional<std::uint64_t> p;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> r;
        medley::execute_tx(mgr, [&] {
          p = s.get(k);
          r = s.range(k, k);
        });
        snapshots.fetch_add(1, std::memory_order_relaxed);
        const bool in_secondary = !r.empty();
        if (p.has_value() != in_secondary) torn.store(true);
        if (p && in_secondary && *p != r[0].second) torn.store(true);
        auto window = s.scan(k, 8);
        for (std::size_t j = 1; j < window.size(); j++) {
          if (!(window[j - 1].first < window[j].first)) torn.store(true);
        }
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed snapshot saw torn indexes";
  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_TRUE(mutually_consistent(s));

  // I2 at scale: polled prefix + final drain replays to the primary.
  for (;;) {
    auto batch = s.poll_feed(64);
    if (batch.empty()) break;
    log.insert(log.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(s.feed_depth(), 0u);
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(log, replayed);
  std::map<std::uint64_t, std::uint64_t> primary_now;
  for (const auto& [k, v] : s.range(0, ~0ULL)) primary_now[k] = v;
  EXPECT_EQ(replayed, primary_now);

  auto st = s.stats();
  EXPECT_GT(st.commits, 0u);
  EXPECT_EQ(st.feed_pushed, log.size());
  EXPECT_EQ(st.feed_polled, log.size());
}

TEST(Store, SchedulePinnedCrossIndexConflictAbortsNotTears) {
  // t0 opens a transaction and flat-nests a store put; t1 commits a full
  // put to the same key mid-flight; t0 tries to commit. Eager contention
  // management means t0 usually conflict-aborts — but whichever way it
  // goes, the result must equal SOME serial order: primary, secondary
  // and feed all agree, never a torn composite write.
  TxManager mgr;
  Store s(&mgr, {.buckets = 64});
  constexpr std::uint64_t kKey = 9;
  std::atomic<bool> t0_committed{false};

  h::ScheduleDriver d;
  d.add_thread({
      [&] { mgr.txBegin(); },
      [&] {
        try {
          s.put(kKey, 111);
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          mgr.txEnd();
          t0_committed.store(true);
        } catch (const TransactionAborted&) {
        }
      },
  });
  d.add_thread({
      [&] { s.put(kKey, 222); },
  });
  d.run({0, 0, 1, 0});

  const auto final_val = t0_committed.load() ? 111u : 222u;
  EXPECT_EQ(s.get(kKey), std::optional<std::uint64_t>(final_val));
  auto r = s.range(kKey, kKey);
  ASSERT_EQ(r.size(), 1u) << "secondary disagrees with primary on presence";
  EXPECT_EQ(r[0].second, final_val);

  auto feed = s.poll_feed(10);
  ASSERT_EQ(feed.size(), t0_committed.load() ? 2u : 1u);
  EXPECT_EQ(feed.back().val, final_val) << "feed order != serial order";
  EXPECT_TRUE(mutually_consistent(s));
}

// ---------------------------------------------------------------------
// PersistentMedleyStore: same façade, crash-surviving indexes (I4).

TEST(PersistentStore, BasicsSurviveCrashAndRecovery) {
  auto path = temp_region("basic");
  {
    medley::montage::PRegion region(path, 2048);
    TxManager mgr;
    medley::montage::EpochSys es(&region);
    es.attach(&mgr);
    PersistentMedleyStore s(&mgr, &es, /*sid=*/1, {.buckets = 64});
    for (std::uint64_t k = 1; k <= 30; k++) s.put(k, k * 10);
    s.del(15);
    s.read_modify_write(20, [](const std::optional<std::uint64_t>& c) {
      return std::optional<std::uint64_t>(c.value_or(0) + 5);
    });
    auto r = s.range(10, 13);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0].second, 100u);
    EXPECT_TRUE(mutually_consistent(s));
    es.sync();
  }  // crash: every DRAM structure is gone
  {
    medley::montage::PRegion region(path, 2048);
    ASSERT_FALSE(region.fresh());
    TxManager mgr;
    medley::montage::EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    PersistentMedleyStore s(&mgr, &es, /*sid=*/1, {.buckets = 64});
    s.recover_from(recovered);

    EXPECT_FALSE(s.contains(15));
    EXPECT_EQ(s.get(20), std::optional<std::uint64_t>(205));
    EXPECT_EQ(s.range(1, 30).size(), 29u);
    EXPECT_TRUE(mutually_consistent(s));
    // The store remains fully operational post-recovery.
    s.put(100, 1000);
    EXPECT_EQ(s.scan(99, 2).size(), 1u);
    EXPECT_TRUE(mutually_consistent(s));
  }
  std::remove(path.c_str());
}

TEST(PersistentStore, ConcurrentCrashRecoveryKeepsIndexesConsistent) {
  // Threads write key PAIRS (k, k+1000) atomically via multi_put while
  // the epoch advancer runs; the process then "crashes" mid-stream. The
  // recovered store must be a consistent prefix: both indexes identical,
  // and every pair present-or-absent as a unit with equal values.
  auto path = temp_region("pairs");
  constexpr std::uint64_t kKeys = 24;
  {
    medley::montage::PRegion region(path, 16384);
    TxManager mgr;
    medley::montage::EpochSys es(&region);
    es.attach(&mgr);
    PersistentMedleyStore s(&mgr, &es, /*sid=*/7, {.buckets = 64});
    es.start_advancer(2);
    h::run_seeded(4, 99, [&](int t, medley::util::Xoshiro256& rng) {
      (void)t;
      for (int i = 0; i < 250; i++) {
        const auto k = rng.next_bounded(kKeys);
        const auto gen = rng.next_bounded(1u << 16);
        if (rng.next_bounded(5) == 0) {
          medley::execute_tx(mgr, [&] {
            s.del(k);
            s.del(k + 1000);
          });
        } else {
          s.multi_put({{k, gen}, {k + 1000, gen}});
        }
      }
    });
    es.stop_advancer();
  }  // crash at whatever boundary last persisted
  {
    medley::montage::PRegion region(path, 16384);
    TxManager mgr;
    medley::montage::EpochSys es(&region);
    auto recovered = es.recover();
    es.attach(&mgr);
    PersistentMedleyStore s(&mgr, &es, /*sid=*/7, {.buckets = 64});
    s.recover_from(recovered);

    EXPECT_TRUE(mutually_consistent(s));
    for (std::uint64_t k = 0; k < kKeys; k++) {
      auto a = s.get(k);
      auto b = s.get(k + 1000);
      EXPECT_EQ(a.has_value(), b.has_value()) << "torn pair at key " << k;
      if (a && b) EXPECT_EQ(*a, *b) << "pair generations differ at " << k;
    }
  }
  std::remove(path.c_str());
}

TEST(PersistentStore, CapacityAbortsAreTransientUnderChurn) {
  // A deliberately tight region: updates retire old payloads, and slots
  // only free after an epoch advance, so put() hits Capacity aborts that
  // run_tx must absorb (retry until the advancer catches up) without the
  // caller ever seeing a failure.
  auto path = temp_region("tight");
  medley::montage::PRegion region(path, 640);
  TxManager mgr;
  medley::montage::EpochSys es(&region);
  es.attach(&mgr);
  PersistentMedleyStore s(&mgr, &es, /*sid=*/1, {.buckets = 32});
  es.start_advancer(1);
  constexpr std::uint64_t kKeys = 16;
  for (int round = 0; round < 40; round++) {
    for (std::uint64_t k = 0; k < kKeys; k++) {
      s.put(k, static_cast<std::uint64_t>(round));
    }
  }
  es.stop_advancer();
  for (std::uint64_t k = 0; k < kKeys; k++) {
    EXPECT_EQ(s.get(k), std::optional<std::uint64_t>(39));
  }
  EXPECT_TRUE(mutually_consistent(s));
  auto st = s.stats();
  EXPECT_GE(st.commits, 40u * kKeys);  // every put eventually committed
  std::remove(path.c_str());
}

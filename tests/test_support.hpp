#pragma once
// Shared helpers for the test suite.

#include <functional>
#include <thread>
#include <vector>

#include "core/medley.hpp"
#include "harness/harness.hpp"

namespace medley::test {

/// Exposes Composable's protected services so core-level tests can drive
/// the NBTC machinery without a full data structure.
struct Harness : core::Composable {
  explicit Harness(core::TxManager* m) : Composable(m) {}
  using Composable::addToCleanups;
  using Composable::addToReadSet;
  using Composable::addToReadSetDedup;
  using Composable::seedReadSetDedup;
  using Composable::tDelete;
  using Composable::tNew;
  using Composable::tRetire;
};

/// Run `fn(thread_index)` on `n` threads and join.
inline void run_threads(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; i++) ts.emplace_back(fn, i);
  for (auto& t : ts) t.join();
}

}  // namespace medley::test

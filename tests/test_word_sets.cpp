// Low-level units of the MCNS machinery: status-word packing, the
// serial-tagged word sets with their seqlock snapshot discipline, and the
// descriptor's record/find/retract/validate primitives — exercised
// directly, below the CASObj layer.

#include <gtest/gtest.h>

#include <thread>

#include "core/descriptor.hpp"
#include "core/status_word.hpp"
#include "core/word_sets.hpp"
#include "test_support.hpp"

using namespace medley::core;
namespace sw = medley::core::status_word;

TEST(StatusWord, PackUnpackRoundTrip) {
  const std::uint64_t d = sw::make(5, 1234, TxStatus::InProg);
  EXPECT_EQ(sw::status(d), TxStatus::InProg);
  EXPECT_EQ(sw::serial(d), 1234u);
  EXPECT_EQ(d >> 50, 5u);  // tid field
}

TEST(StatusWord, IncarnationIgnoresStatus) {
  const std::uint64_t a = sw::make(1, 7, TxStatus::InPrep);
  const std::uint64_t b = sw::make(1, 7, TxStatus::Aborted);
  EXPECT_EQ(sw::incarnation(a), sw::incarnation(b));
  EXPECT_NE(sw::incarnation(a), sw::incarnation(sw::make(1, 8, TxStatus::InPrep)));
}

TEST(StatusWord, NextIncarnationBumpsSerialResetsStatus) {
  const std::uint64_t d = sw::make(3, 41, TxStatus::Committed);
  const std::uint64_t n = sw::next_incarnation(d);
  EXPECT_EQ(sw::serial(n), 42u);
  EXPECT_EQ(sw::status(n), TxStatus::InPrep);
  EXPECT_EQ(n >> 50, 3u);  // tid preserved
}

TEST(WordSets, ClaimPublishVisibleToSnapshot) {
  WordSet<ReadEntry, 8> set;
  CASCell cell(7);
  ReadEntry* e = set.claim();
  ASSERT_NE(e, nullptr);
  e->addr.store(&cell);
  e->val.store(7);
  e->cnt.store(0);
  set.publish(e, /*serial=*/100);
  EXPECT_EQ(set.count(), 1);
  ReadSnapshot snap;
  EXPECT_TRUE(snapshot(set.at(0), 100, snap));
  EXPECT_EQ(snap.addr, &cell);
  EXPECT_EQ(snap.val, 7u);
}

TEST(WordSets, SnapshotRejectsForeignSerial) {
  WordSet<ReadEntry, 8> set;
  CASCell cell(7);
  ReadEntry* e = set.claim();
  e->addr.store(&cell);
  set.publish(e, 100);
  ReadSnapshot snap;
  EXPECT_FALSE(snapshot(set.at(0), 101, snap));  // different incarnation
  EXPECT_FALSE(snapshot(set.at(0), 0, snap));    // invalid tag
}

TEST(WordSets, ResetHidesEntriesLogically) {
  WordSet<WriteEntry, 8> set;
  CASCell cell(1);
  WriteEntry* e = set.claim();
  e->addr.store(&cell);
  set.publish(e, 4);
  EXPECT_EQ(set.count(), 1);
  set.reset();
  EXPECT_EQ(set.count(), 0);  // stale entries invisible via count
}

TEST(WordSets, CapacityExhaustionReturnsNull) {
  WordSet<ReadEntry, 2> set;
  CASCell c1(0), c2(0);
  ReadEntry* a = set.claim();
  a->addr.store(&c1);
  set.publish(a, 8);
  ReadEntry* b = set.claim();
  b->addr.store(&c2);
  set.publish(b, 8);
  EXPECT_EQ(set.claim(), nullptr);
}

TEST(Descriptor, RecordAndFindWrite) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  WriteEntry* e = d.record_write(&cell, 10, 0, 20, st);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(d.find_write(&cell, st), e);
  CASCell other(0);
  EXPECT_EQ(d.find_write(&other, st), nullptr);
}

TEST(Descriptor, RetractedWriteInvisible) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  WriteEntry* e = d.record_write(&cell, 10, 0, 20, st);
  d.retract_write(e);
  EXPECT_EQ(d.find_write(&cell, st), nullptr);
}

TEST(Descriptor, StaleSerialEntriesInvisibleAfterBegin) {
  Desc d(1);
  std::uint64_t st = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, st);
  st = d.begin();  // new incarnation
  EXPECT_EQ(d.find_write(&cell, st), nullptr);
  EXPECT_EQ(d.write_count(), 0);
}

TEST(Descriptor, ValidateReadsAgainstLiveCells) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  ASSERT_TRUE(d.record_read(&cell, 10, 0, st));
  EXPECT_TRUE(d.validate_reads(st));
  // Change the cell (value + counter move together).
  cell.vc.store({11, 2});
  EXPECT_FALSE(d.validate_reads(st));
}

TEST(Descriptor, ValidateAcceptsOwnInstalledOverwrite) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  ASSERT_TRUE(d.record_read(&cell, 10, 0, st));
  // Simulate our own install over the read: {desc, cnt+1}.
  cell.vc.store({d.self_encoded(), 1});
  EXPECT_TRUE(d.validate_reads(st));
  // A FOREIGN descriptor at the same counter must not validate.
  Desc other(2);
  cell.vc.store({other.self_encoded(), 1});
  EXPECT_FALSE(d.validate_reads(st));
}

TEST(Descriptor, StatusTransitionsFollowProtocol) {
  Desc d(1);
  std::uint64_t st = d.begin();
  EXPECT_EQ(sw::status(d.status()), TxStatus::InPrep);
  EXPECT_TRUE(d.set_ready());
  EXPECT_EQ(sw::status(d.status()), TxStatus::InProg);
  EXPECT_FALSE(d.set_ready());  // only from InPrep
  EXPECT_TRUE(d.commit_cas(d.status()));
  EXPECT_EQ(sw::status(d.status()), TxStatus::Committed);
  // abort_cas from a Committed snapshot must fail.
  EXPECT_FALSE(d.abort_cas(d.status()));
  st = d.begin();
  EXPECT_TRUE(d.abort_cas(st));
  EXPECT_EQ(sw::status(d.status()), TxStatus::Aborted);
}

TEST(Descriptor, UninstallRestoresOldValuesOnAbort) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, st);
  // Simulate the install.
  cell.vc.store({d.self_encoded(), 1});
  ASSERT_TRUE(d.abort_cas(st));
  d.uninstall(d.status());
  auto u = cell.vc.load();
  EXPECT_EQ(u.lo, 10u);  // old value restored
  EXPECT_EQ(u.hi, 2u);   // counter advanced past the install round
}

TEST(Descriptor, UninstallPublishesNewValuesOnCommit) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, st);
  cell.vc.store({d.self_encoded(), 1});
  ASSERT_TRUE(d.set_ready());
  ASSERT_TRUE(d.commit_cas(d.status()));
  d.uninstall(d.status());
  auto u = cell.vc.load();
  EXPECT_EQ(u.lo, 20u);
  EXPECT_EQ(u.hi, 2u);
}

TEST(Descriptor, StaleHelperSnapshotSkipsNewIncarnation) {
  // A helper holding serial s must not touch entries of serial s+1:
  // snapshot() refuses them.
  Desc d(1);
  const std::uint64_t s1 = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, s1);
  const std::uint64_t s2 = d.begin();  // owner moved on
  CASCell cell2(30);
  d.record_write(&cell2, 30, 0, 40, s2);
  // Helper iterates with the OLD status snapshot: sees nothing valid
  // (count was reset; and even a racing read of the refilled slot fails
  // the serial check).
  WriteSnapshot w;
  EXPECT_FALSE(snapshot(*d.find_write(&cell2, s2), sw::incarnation(s1), w));
  EXPECT_TRUE(snapshot(*d.find_write(&cell2, s2), sw::incarnation(s2), w));
  EXPECT_EQ(w.new_val, 40u);
}

TEST(Descriptor, TryFinalizeAbortsInPrepOwner) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, st);
  cell.vc.store({d.self_encoded(), 1});
  // A helper that finds the descriptor installed finalizes it: InPrep ->
  // Aborted, cell restored.
  d.try_finalize(&cell, cell.vc.load());
  EXPECT_EQ(sw::status(d.status()), TxStatus::Aborted);
  EXPECT_EQ(cell.vc.load().lo, 10u);
}

TEST(Descriptor, TryFinalizeHelpsInProgOwnerCommit) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, st);
  cell.vc.store({d.self_encoded(), 1});
  ASSERT_TRUE(d.set_ready());  // owner reached txEnd
  d.try_finalize(&cell, cell.vc.load());
  EXPECT_EQ(sw::status(d.status()), TxStatus::Committed);
  EXPECT_EQ(cell.vc.load().lo, 20u);
}

TEST(Descriptor, TryFinalizeIgnoresStaleCellSnapshot) {
  Desc d(1);
  const std::uint64_t st = d.begin();
  CASCell cell(10);
  d.record_write(&cell, 10, 0, 20, st);
  cell.vc.store({d.self_encoded(), 1});
  medley::util::U128 stale{d.self_encoded(), 3};  // wrong counter
  d.try_finalize(&cell, stale);
  // Nothing happened: the descriptor is no longer (never was) installed
  // with that exact pair.
  EXPECT_EQ(sw::status(d.status()), TxStatus::InPrep);
  EXPECT_EQ(cell.vc.load().lo, d.self_encoded());
}

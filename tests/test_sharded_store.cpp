// ShardedMedleyStore: hash-partitioned shards (one TxManager each) under a
// shared TxDomain. Invariants under test:
//   S1  every shard satisfies the single-store invariants I1-I3 of
//       basic_store.hpp (primary == secondary, feed == serialization
//       order, no torn composite writes), and only holds keys that hash
//       to it;
//   S2  cross-shard transactions (multi_put / read_modify_write_many /
//       transact) are atomic: a committed reader transaction sees either
//       all of a cross-shard write group or none of it — including under
//       pinned interleavings that stop the writer halfway;
//   S3  the MERGED feed, replayed over an empty map, reproduces the union
//       of the shard primaries (per-shard FIFO preserved by the k-way
//       merge; see feed.hpp);
//   S4  merged range/scan return globally ordered atomic snapshots that
//       match a sequential oracle;
//   S5  stats aggregate exactly: aggregate == sum(shards) + cross block,
//       and the feed counters account for every merged entry.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "store/store.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::store::ShardedMedleyStore;
using Store = ShardedMedleyStore<std::uint64_t, std::uint64_t>;

namespace h = medley::test::harness;

namespace {

/// S1 per shard, checked quiescently.
::testing::AssertionResult shards_mutually_consistent(Store& s) {
  for (std::size_t i = 0; i < s.shard_count(); i++) {
    auto& shard = s.shard(i);
    auto snapshot = shard.range(0, ~0ULL);
    for (const auto& [k, v] : snapshot) {
      if (s.shard_of(k) != i) {
        return ::testing::AssertionFailure()
               << "key " << k << " stored on shard " << i
               << " but hashes to " << s.shard_of(k);
      }
      auto p = shard.get(k);
      if (!p || *p != v) {
        return ::testing::AssertionFailure()
               << "shard " << i << " key " << k
               << ": primary/secondary split";
      }
    }
    if (shard.primary().size_slow() != snapshot.size()) {
      return ::testing::AssertionFailure()
             << "shard " << i << ": primary holds "
             << shard.primary().size_slow() << " keys, secondary "
             << snapshot.size();
    }
  }
  return ::testing::AssertionSuccess();
}

/// Union of the shard primaries (via the merged atomic range).
std::map<std::uint64_t, std::uint64_t> primary_union(Store& s) {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const auto& [k, v] : s.range(0, ~0ULL)) out[k] = v;
  return out;
}

/// Two keys guaranteed to live on different shards (dense probing).
std::pair<std::uint64_t, std::uint64_t> cross_shard_pair(Store& s) {
  const std::uint64_t a = 1;
  for (std::uint64_t b = 2; b < 256; b++) {
    if (s.shard_of(b) != s.shard_of(a)) return {a, b};
  }
  return {1, 2};  // unreachable for shard_count > 1 and a sane hash
}

}  // namespace

TEST(ShardedStore, PointOpsRouteAndCompose) {
  Store s(4, {.buckets = 256});
  EXPECT_EQ(s.shard_count(), 4u);

  for (std::uint64_t k = 0; k < 64; k++) {
    EXPECT_FALSE(s.put(k, k * 10).has_value());
  }
  for (std::uint64_t k = 0; k < 64; k++) {
    EXPECT_EQ(s.get(k), std::optional<std::uint64_t>(k * 10));
    EXPECT_LT(s.shard_of(k), 4u);
  }
  EXPECT_EQ(s.put(7, 71), std::optional<std::uint64_t>(70));
  EXPECT_EQ(s.del(8), std::optional<std::uint64_t>(80));
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.read_modify_write(
                7,
                [](const std::optional<std::uint64_t>& c) {
                  return std::optional<std::uint64_t>(c.value_or(0) + 1);
                }),
            std::optional<std::uint64_t>(72));

  // Every shard took some keys (64 dense keys over 4 shards; a stuck hash
  // would put them all on one).
  int populated = 0;
  for (std::size_t i = 0; i < s.shard_count(); i++) {
    if (s.shard(i).primary().size_slow() > 0) populated++;
  }
  EXPECT_EQ(populated, 4);
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(ShardedStore, MergedRangeScanMatchOracle) {
  Store s(4, {.buckets = 256});
  std::map<std::uint64_t, std::uint64_t> oracle;
  medley::util::Xoshiro256 rng(77);
  for (int i = 0; i < 300; i++) {
    const std::uint64_t k = rng.next_bounded(500);
    if (rng.next_bounded(4) == 0) {
      s.del(k);
      oracle.erase(k);
    } else {
      const std::uint64_t v = rng.next();
      s.put(k, v);
      oracle[k] = v;
    }
  }

  auto r = s.range(100, 400);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
  for (auto it = oracle.lower_bound(100);
       it != oracle.end() && it->first <= 400; ++it) {
    want.emplace_back(it->first, it->second);
  }
  EXPECT_EQ(r, want);  // globally ordered, exact contents (S4)

  auto sc = s.scan(250, 17);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> want_sc;
  for (auto it = oracle.lower_bound(250);
       it != oracle.end() && want_sc.size() < 17; ++it) {
    want_sc.emplace_back(it->first, it->second);
  }
  EXPECT_EQ(sc, want_sc);
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(ShardedStore, MergedFeedReplaysToPrimaryUnion) {
  Store s(4, {.buckets = 256});
  s.put(1, 10);
  s.multi_put({{2, 20}, {3, 30}, {4, 40}, {5, 50}});  // spans shards
  s.put(2, 21);
  s.del(3);
  s.read_modify_write_many(
      {1, 4}, [](std::uint64_t, const std::optional<std::uint64_t>& c) {
        return std::optional<std::uint64_t>(c.value_or(0) + 5);
      });
  EXPECT_EQ(s.feed_depth(), 9u);

  auto feed = s.poll_feed(100);
  ASSERT_EQ(feed.size(), 9u);
  EXPECT_EQ(s.feed_depth(), 0u);
  EXPECT_TRUE(s.poll_feed(4).empty());

  // S3: merged replay == union of primaries.
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(feed, replayed);
  EXPECT_EQ(replayed, primary_union(s));

  // Per-key order is exact: key 2 must appear as 20 then 21.
  std::vector<std::uint64_t> key2_vals;
  for (const auto& e : feed) {
    if (e.key == 2) key2_vals.push_back(e.val);
  }
  EXPECT_EQ(key2_vals, (std::vector<std::uint64_t>{20, 21}));
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(ShardedStore, SchedulePinnedCrossShardMultiPutIsAtomic) {
  // The acceptance scenario: a cross-shard write group interrupted halfway
  // by a reader transaction touching BOTH shards. Eager contention
  // management finalizes (aborts) the half-done writer, so the reader must
  // see NEITHER key; had the writer finished first, it would see BOTH.
  // Never one.
  Store s(4, {.buckets = 256});
  const auto [ka, kb] = cross_shard_pair(s);
  ASSERT_NE(s.shard_of(ka), s.shard_of(kb));

  std::atomic<bool> writer_committed{false};
  std::atomic<bool> saw_a{false}, saw_b{false};
  auto* root = s.manager(s.shard_of(ka));

  h::ScheduleDriver d;
  d.add_thread({
      [&] { root->txBegin(); },
      [&] {
        try {
          s.put(ka, 111);  // flat-nests into the open domain transaction
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          s.put(kb, 222);  // discovers the forced abort, if any
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          // The reader's probe may already have finalized us; the context
          // is then torn down and there is nothing left to end.
          if (s.domain()->in_tx()) {
            root->txEnd();
            writer_committed.store(true);
          }
        } catch (const TransactionAborted&) {
        }
      },
  });
  d.add_thread({
      [&] {
        // One committed reader transaction across both shards.
        medley::execute_tx(*s.manager(0), [&] {
          saw_a.store(s.get(ka).has_value());
          saw_b.store(s.get(kb).has_value());
        });
      },
  });
  // Reader fires between the two speculative puts: half-done writer state.
  d.run({0, 0, 1, 0, 0});

  EXPECT_EQ(saw_a.load(), saw_b.load())
      << "reader observed a torn cross-shard multi_put";
  // The reader's mid-flight probe finalizes the InPrep writer: it cannot
  // commit afterwards, and nothing of the group may remain visible.
  EXPECT_FALSE(writer_committed.load());
  EXPECT_FALSE(saw_a.load());
  EXPECT_FALSE(s.contains(ka));
  EXPECT_FALSE(s.contains(kb));
  EXPECT_TRUE(s.poll_feed(10).empty()) << "aborted group leaked a feed entry";

  // Control schedule: the same group runs to completion first; a reader
  // transaction then sees the WHOLE group.
  std::atomic<bool> saw_a2{false}, saw_b2{false};
  h::ScheduleDriver d2;
  d2.add_thread({[&] { s.multi_put({{ka, 111}, {kb, 222}}); }});
  d2.add_thread({[&] {
    medley::execute_tx(*s.manager(0), [&] {
      saw_a2.store(s.get(ka).has_value());
      saw_b2.store(s.get(kb).has_value());
    });
  }});
  d2.run({0, 1});
  EXPECT_TRUE(saw_a2.load());
  EXPECT_TRUE(saw_b2.load());
  EXPECT_EQ(s.poll_feed(10).size(), 2u);
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(ShardedStore, SchedulePinnedCrossShardConflictAbortsNotTears) {
  // t0 runs a cross-shard group {ka, kb}; t1 commits a plain put to ka
  // mid-flight (aborting t0 by eager contention management, or losing to
  // it). Exactly one serial order results; both shards and the feed agree.
  Store s(4, {.buckets = 256});
  const auto [ka, kb] = cross_shard_pair(s);
  std::atomic<bool> t0_committed{false};

  h::ScheduleDriver d;
  d.add_thread({
      [&] { s.manager(0)->txBegin(); },
      [&] {
        try {
          s.put(ka, 111);
          s.put(kb, 111);
        } catch (const TransactionAborted&) {
        }
      },
      [&] {
        try {
          if (s.domain()->in_tx()) {
            s.manager(0)->txEnd();
            t0_committed.store(true);
          }
        } catch (const TransactionAborted&) {
        }
      },
  });
  d.add_thread({
      [&] { s.put(ka, 222); },  // full committed store op
  });
  d.run({0, 0, 1, 0});

  if (t0_committed.load()) {
    // t0 serialized after t1: the group won both keys.
    EXPECT_EQ(s.get(ka), std::optional<std::uint64_t>(111));
    EXPECT_EQ(s.get(kb), std::optional<std::uint64_t>(111));
  } else {
    // t1's eager finalization killed t0: the group left NOTHING behind.
    EXPECT_EQ(s.get(ka), std::optional<std::uint64_t>(222));
    EXPECT_FALSE(s.contains(kb))
        << "half of an aborted cross-shard group remained visible";
  }
  auto feed = s.poll_feed(10);
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(feed, replayed);
  EXPECT_EQ(replayed, primary_union(s));
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(ShardedStore, CrossShardTransfersConserveTotal8Threads) {
  // transact() as a cross-shard transfer: 6 writer threads move amounts
  // between random accounts, 2 reader threads take atomic whole-store
  // snapshots (merged range). Every committed snapshot must show the
  // exact initial grand total — a torn cross-shard transfer would not.
  Store s(4, {.buckets = 256});
  constexpr std::uint64_t kAccounts = 32;
  constexpr std::uint64_t kInitial = 1000;
  constexpr std::uint64_t kTotal = kAccounts * kInitial;
  for (std::uint64_t a = 0; a < kAccounts; a++) s.put(a, kInitial);
  s.poll_feed(1000);  // preload is not traffic
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> snapshots{0};

  h::run_seeded(8, 2026, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 6) {
      for (int i = 0; i < 250; i++) {
        const std::uint64_t from = rng.next_bounded(kAccounts);
        std::uint64_t to = rng.next_bounded(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const std::uint64_t amt = rng.next_bounded(10);
        s.transact([&] {
          const std::uint64_t a = s.get(from).value_or(0);
          if (a >= amt) {
            s.put(from, a - amt);
            s.put(to, s.get(to).value_or(0) + amt);
          }
        });
      }
    } else {
      for (int i = 0; i < 60; i++) {
        std::uint64_t sum = 0;
        s.transact([&] {
          sum = 0;
          for (const auto& [k, v] : s.range(0, kAccounts)) sum += v;
        });
        snapshots.fetch_add(1, std::memory_order_relaxed);
        if (sum != kTotal) violation.store(true);
      }
    }
  });

  EXPECT_FALSE(violation.load())
      << "an atomic snapshot saw a non-conserved total";
  EXPECT_GT(snapshots.load(), 0u);
  std::uint64_t final_sum = 0;
  for (const auto& [k, v] : primary_union(s)) final_sum += v;
  EXPECT_EQ(final_sum, kTotal);
  EXPECT_TRUE(shards_mutually_consistent(s));
}

TEST(ShardedStore, MixedWorkloadInvariants8Threads) {
  // The sharded analogue of Store.MixedWorkloadMutualConsistency8Threads:
  // 5 mutators (point ops + cross-shard groups), 2 snapshot readers, one
  // merged-feed consumer. Afterwards: S1 per shard, S3 globally, S5 exact.
  Store s(4, {.buckets = 256});
  constexpr std::uint64_t kKeys = 48;
  constexpr int kOps = 600;
  std::atomic<bool> torn{false};
  std::vector<Store::FeedItem> log;

  h::run_seeded(8, 4242, [&](int t, medley::util::Xoshiro256& rng) {
    if (t < 5) {  // mutators
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        switch (rng.next_bounded(5)) {
          case 0: s.put(k, rng.next_bounded(1u << 20)); break;
          case 1: s.del(k); break;
          case 2:
            s.read_modify_write(
                k, [](const std::optional<std::uint64_t>& c) {
                  return std::optional<std::uint64_t>(c.value_or(0) + 1);
                });
            break;
          case 3:
            // Cross-shard group: same generation on both keys.
            s.multi_put({{k, i * 8u}, {(k + 7) % kKeys, i * 8u}});
            break;
          default:
            s.read_modify_write_many(
                {k, (k + 13) % kKeys},
                [](std::uint64_t, const std::optional<std::uint64_t>& c) {
                  return std::optional<std::uint64_t>(c.value_or(0) + 2);
                });
            break;
        }
      }
    } else if (t == 7) {  // merged feed consumer
      for (int i = 0; i < kOps; i++) {
        auto batch = s.poll_feed(8);
        log.insert(log.end(), batch.begin(), batch.end());
      }
    } else {  // readers: committed cross-shard snapshots (S2)
      for (int i = 0; i < kOps; i++) {
        const auto k = rng.next_bounded(kKeys);
        std::optional<std::uint64_t> p;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> r;
        s.transact([&] {
          p = s.get(k);
          r = s.shard(s.shard_of(k)).range(k, k);
        });
        const bool in_secondary = !r.empty();
        if (p.has_value() != in_secondary) torn.store(true);
        if (p && in_secondary && *p != r[0].second) torn.store(true);
        auto window = s.scan(k, 8);
        for (std::size_t j = 1; j < window.size(); j++) {
          if (!(window[j - 1].first < window[j].first)) torn.store(true);
        }
      }
    }
  });

  EXPECT_FALSE(torn.load()) << "a committed snapshot saw torn state";
  EXPECT_TRUE(shards_mutually_consistent(s));

  // S3 at scale: polled prefix + final drain replays to the union of the
  // shard primaries (per-key order exactness is implied by equality).
  for (;;) {
    auto batch = s.poll_feed(64);
    if (batch.empty()) break;
    log.insert(log.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(s.feed_depth(), 0u);
  std::map<std::uint64_t, std::uint64_t> replayed;
  medley::store::replay_feed(log, replayed);
  EXPECT_EQ(replayed, primary_union(s));

  // S5: aggregate == sum of shards + cross block, feed fully accounted.
  auto agg = s.stats();
  medley::store::StoreStats::Snapshot sum = s.stats_cross();
  for (std::size_t i = 0; i < s.shard_count(); i++) {
    sum += s.stats_shard(i);
  }
  EXPECT_EQ(agg.commits, sum.commits);
  EXPECT_EQ(agg.aborts(), sum.aborts());
  EXPECT_EQ(agg.feed_pushed, log.size());
  EXPECT_EQ(agg.feed_polled, log.size());
  EXPECT_GT(agg.commits, 0u);
}

TEST(ShardedStore, SingleShardDegeneratesToMedleyStore) {
  Store s(1, {.buckets = 64});
  s.multi_put({{1, 10}, {2, 20}, {3, 30}});
  EXPECT_EQ(s.get(2), std::optional<std::uint64_t>(20));
  EXPECT_EQ(s.range(0, 10).size(), 3u);
  auto feed = s.poll_feed(10);
  ASSERT_EQ(feed.size(), 3u);
  EXPECT_LT(feed[0].seq, feed[1].seq);  // one shard: stamps follow FIFO
  EXPECT_TRUE(shards_mutually_consistent(s));
}

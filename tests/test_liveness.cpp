// Liveness properties (paper Sec. 5.2, Theorem 4): Medley is obstruction
// free — any thread running in isolation completes; a stalled transaction
// never blocks peers (eager contention management lets them finalize it);
// and the system as a whole keeps committing under adversarial abort
// pressure.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "ds/michael_hashtable.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

using medley::TransactionAborted;
using medley::TxManager;
using Map = medley::ds::MichaelHashTable<std::uint64_t, std::uint64_t>;

TEST(Liveness, StalledInPrepTxDoesNotBlockPeers) {
  // A transaction installs a descriptor and then stalls indefinitely.
  // Peers that run into it must finalize it (abort) and proceed — the
  // essence of nonblocking progress that lock-based TM cannot offer.
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(1, 10);

  std::mutex mu;
  std::condition_variable cv;
  bool installed = false, release_staller = false;

  std::thread staller([&] {
    try {
      mgr.txBegin();
      m.put(1, 11);  // installs on key 1's cells
      {
        std::lock_guard<std::mutex> g(mu);
        installed = true;
      }
      cv.notify_all();
      {
        std::unique_lock<std::mutex> g(mu);
        cv.wait(g, [&] { return release_staller; });
      }
      mgr.txEnd();
      ADD_FAILURE() << "stalled tx should have been aborted by peers";
    } catch (const TransactionAborted&) {
      // expected: a peer finalized us while we were stalled
    }
  });

  {
    std::unique_lock<std::mutex> g(mu);
    cv.wait(g, [&] { return installed; });
  }

  // Peers make progress — bounded time, no help from the staller.
  for (int i = 0; i < 100; i++) {
    medley::execute_tx(mgr, [&] {
      auto v = m.get(1);
      m.put(1, v.value_or(0) + 1);
    });
  }
  EXPECT_GE(*m.get(1), 100u);

  {
    std::lock_guard<std::mutex> g(mu);
    release_staller = true;
  }
  cv.notify_all();
  staller.join();
}

TEST(Liveness, SoloThreadRetryCommitsInOneRound) {
  // Obstruction freedom, constructive form: with all contention gone, a
  // retrying transaction commits on its next attempt (Theorem 4's "one
  // round of a brand new MCNS must commit").
  TxManager mgr;
  Map m(&mgr, 64);
  m.insert(1, 0);
  mgr.reset_stats();
  for (int i = 0; i < 500; i++) {
    auto aborts = medley::execute_tx(mgr, [&] {
      auto v = m.get(1);
      m.put(1, *v + 1);
    }).stats;
    EXPECT_EQ(aborts.aborts(), 0u)
        << "solo transaction aborted at iteration " << i;
  }
  EXPECT_EQ(*m.get(1), 500u);
}

TEST(Liveness, AbortStormTerminates) {
  // Threads deliberately collide on one key with long transactions; every
  // thread must finish its quota (global progress despite obstruction-
  // freedom's lack of per-thread guarantees, thanks to retry + preemption).
  TxManager mgr;
  Map m(&mgr, 8);
  m.insert(1, 0);
  std::atomic<std::uint64_t> done{0};
  medley::test::run_threads(8, [&](int) {
    for (int i = 0; i < 100; i++) {
      medley::execute_tx(mgr, [&] {
        auto v = m.get(1);
        m.put(1, *v + 1);
        // widen the conflict window with extra reads
        for (std::uint64_t k = 2; k < 8; k++) m.get(k);
      });
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), 800u);
  EXPECT_EQ(*m.get(1), 800u);
  auto stats = mgr.stats();
  EXPECT_EQ(stats.commits, 800u);  // the initial insert was non-tx
}

TEST(Liveness, ReaderOnlyTransactionsNeverStopWriters) {
  // Invisible readers (the paper's design choice vs LFTT): a storm of
  // read-only transactions imposes no writes on shared cells, so a writer
  // thread retains full progress.
  TxManager mgr;
  Map m(&mgr, 64);
  for (std::uint64_t k = 1; k <= 32; k++) m.insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 6; r++) {
    // NB: r by value — a [&] capture races with the loop increment (TSAN).
    readers.emplace_back([&, r] {
      medley::util::Xoshiro256 rng(static_cast<std::uint64_t>(r) + 77);
      while (!stop.load()) {
        try {
          mgr.txBegin();
          for (int i = 0; i < 5; i++) m.get(rng.next_bounded(32) + 1);
          mgr.txEnd();
          reads.fetch_add(1);
        } catch (const TransactionAborted&) {
        }
      }
    });
  }
  std::uint64_t writer_commits = 0;
  for (int i = 0; i < 500; i++) {
    medley::execute_tx(mgr, [&] {
      m.put(1 + (static_cast<std::uint64_t>(i) % 32), 999);
    });
    writer_commits++;
  }
  // On one core the writer may finish before any reader was scheduled;
  // give the readers a chance to demonstrate progress before stopping.
  while (reads.load() == 0) std::this_thread::yield();
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(writer_commits, 500u);
  EXPECT_GT(reads.load(), 0u);
}
